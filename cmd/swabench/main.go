// Command swabench regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	swabench [-preset quick|paper|unit] [-table N] [-figure N]
//	swabench -preset quick -bench-out BENCH_pipeline.json
//	swabench -check-bench BENCH_pipeline.json
//
// With no selection flags it prints everything. Tables I-III and the lemma
// checks are analytic and instant; Table IV measures the CPU engines on the
// chosen preset (the "paper" preset runs the full 32K-pair workload and
// takes hours on the CPU side, exactly as the paper's own CPU columns did)
// and extrapolates the GPU simulator's exact kernel statistics to the
// paper's scale.
//
// -bench-out runs only the bitwise pipeline over the preset's n-sweep and
// writes a machine-readable JSON document (schema repro/bench-pipeline/v1:
// workload shape, per-stage simulated ns, wall ns, GCUPS, host info) instead
// of the human-readable tables. -backends additionally serves the same sweep
// through the named execution backends (striped, bitwise-sim, wordwise-sim,
// cpu-ref) on the wall clock, with every score re-checked against the scalar
// reference, and records the striped-vs-bitwise-sim speedup. -search
// additionally sweeps the corpus-search prefilter over k-mer lengths 4, 6
// and 8 on a deterministic synthetic corpus, recording per-k selectivity
// and verifying every prefiltered top-K against a scan-all baseline.
// -check-bench validates such a file and exits nonzero if it is malformed —
// CI's bench-smoke job uses the two together, with -require-backends,
// -min-striped-speedup and -require-search gating the wall-clock win and
// the prefilter's selectivity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/tables"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "quick", "workload preset: quick, paper or unit")
	table := flag.Int("table", 0, "print only table N (1-5); 0 = all")
	figure := flag.Int("figure", 0, "print only figure N (1-2); 0 = all selected by -table")
	ablations := flag.Bool("ablations", false, "also run the DESIGN.md §5 ablations")
	benchOut := flag.String("bench-out", "", "write a bench-pipeline JSON document to FILE and exit (skips the tables)")
	devices := flag.Int("devices", 0, "with -bench-out: also sweep a fleet of N simulated devices and record per-device utilisation")
	deviceSpecs := flag.String("device-specs", "titanx", "with -devices: comma-separated perf specs cycled over the fleet members")
	peers := flag.Int("peers", 0, "with -bench-out: also sweep a cluster of N peer nodes and record routing, peer cache hit ratio and re-homes")
	backends := flag.String("backends", "", "with -bench-out: comma-separated execution backends to sweep on the wall clock (e.g. striped,bitwise-sim,cpu-ref)")
	search := flag.Bool("search", false, "with -bench-out: also sweep the corpus-search prefilter selectivity across k-mer lengths 4, 6 and 8")
	searchSeqs := flag.Int("search-seqs", 4000, "with -search: synthetic corpus size in sequences")
	searchBackend := flag.String("search-backend", "striped", "with -search: scoring backend for the search sweep")
	checkBench := flag.String("check-bench", "", "validate a bench-pipeline JSON document and exit")
	requireFleet := flag.Bool("require-fleet", false, "with -check-bench: fail unless the document carries a fleet section")
	requireCluster := flag.Bool("require-cluster", false, "with -check-bench: fail unless the document carries a cluster section")
	requireBackends := flag.String("require-backends", "", "with -check-bench: fail unless the document carries a section for each comma-separated backend")
	requireSearch := flag.Bool("require-search", false, "with -check-bench: fail unless the document carries a search section whose default-k pass rate is under 0.2")
	minStripedSpeedup := flag.Float64("min-striped-speedup", 0, "with -check-bench: fail unless striped beats bitwise-sim on the wall clock by at least this factor")
	metricsOut := flag.String("metrics-out", "", "with -bench-out: also dump the run's Prometheus metrics to FILE (- = stderr)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *checkBench != "" {
		f, err := bench.ReadFile(*checkBench)
		if err == nil {
			err = f.Validate()
		}
		if err == nil && *requireFleet && f.Fleet == nil {
			err = fmt.Errorf("%s has no fleet section (regenerate with -devices N)", *checkBench)
		}
		if err == nil && *requireCluster && f.Cluster == nil {
			err = fmt.Errorf("%s has no cluster section (regenerate with -peers N)", *checkBench)
		}
		if err == nil && *requireBackends != "" {
			have := make(map[string]bool)
			for _, sec := range f.Backends {
				have[sec.Name] = true
			}
			for _, name := range strings.Split(*requireBackends, ",") {
				if name = strings.TrimSpace(name); name != "" && !have[name] {
					err = fmt.Errorf("%s has no %q backend section (regenerate with -backends)", *checkBench, name)
					break
				}
			}
		}
		if err == nil && *requireSearch {
			if f.Search == nil {
				err = fmt.Errorf("%s has no search section (regenerate with -search)", *checkBench)
			} else if r := f.Search.SearchRunAt(corpus.DefaultK); r == nil {
				err = fmt.Errorf("%s search section has no k=%d run", *checkBench, corpus.DefaultK)
			} else if r.PassRate >= 0.2 {
				err = fmt.Errorf("%s: prefilter pass rate %.3f at k=%d, gate requires < 0.2",
					*checkBench, r.PassRate, corpus.DefaultK)
			}
		}
		if err == nil && *minStripedSpeedup > 0 && f.SpeedupStripedVsBitwiseSim < *minStripedSpeedup {
			err = fmt.Errorf("%s: striped is %.1fx bitwise-sim on the wall clock, gate requires >= %.1fx",
				*checkBench, f.SpeedupStripedVsBitwiseSim, *minStripedSpeedup)
		}
		if err != nil {
			cli.Exitf(1, "swabench: %v", err)
		}
		fleetNote := ""
		if f.Fleet != nil {
			fleetNote = fmt.Sprintf(", fleet of %d", len(f.Fleet.Devices))
		}
		if f.Cluster != nil {
			fleetNote += fmt.Sprintf(", cluster of %d", f.Cluster.Nodes)
		}
		if len(f.Backends) > 0 {
			fleetNote += fmt.Sprintf(", %d backend(s)", len(f.Backends))
		}
		if f.Search != nil {
			fleetNote += fmt.Sprintf(", search sweep over %d k(s)", len(f.Search.Runs))
		}
		fmt.Printf("swabench: %s ok (%s workload, %d runs%s)\n", *checkBench, f.Workload, len(f.Runs), fleetNote)
		return
	}

	spec, err := workload.ByName(*preset)
	if err != nil {
		cli.Exitf(2, "%v", err)
	}

	// Ctrl-C / SIGTERM cancels the pipeline context so long CPU sweeps and
	// simulated GPU runs stop at the next measurement or kernel block.
	ctx, stop := cli.SignalContext()
	defer stop()

	if *benchOut != "" {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "... bench: bitwise pipeline over preset %q (%d pairs, %d shapes)\n",
				spec.Name, spec.Pairs, len(spec.NList))
		}
		reg := obs.NewRegistry()
		f, err := bench.Collect(ctx, spec, pipeline.Config{Metrics: reg})
		if err != nil {
			cli.Die(fmt.Errorf("swabench: bench: %w", err))
		}
		if *devices > 0 {
			var specs []perfmodel.DeviceSpec
			for _, name := range strings.Split(*deviceSpecs, ",") {
				s, ok := perfmodel.SpecByName(strings.TrimSpace(name))
				if !ok {
					cli.Exitf(2, "swabench: -device-specs: unknown spec %q (have %s)",
						name, strings.Join(perfmodel.SpecNames(), ", "))
				}
				specs = append(specs, s)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "... bench: fleet sweep across %d device(s) + cpu\n", *devices)
			}
			if err := f.CollectFleet(ctx, spec, pipeline.Config{Metrics: reg}, *devices, specs); err != nil {
				cli.Die(fmt.Errorf("swabench: bench: %w", err))
			}
		}
		if *peers > 0 {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "... bench: cluster sweep across %d peer node(s)\n", *peers)
			}
			if err := f.CollectCluster(ctx, spec, *peers); err != nil {
				cli.Die(fmt.Errorf("swabench: bench: %w", err))
			}
		}
		if *backends != "" {
			var names []string
			for _, name := range strings.Split(*backends, ",") {
				if name = strings.TrimSpace(name); name != "" {
					names = append(names, name)
				}
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "... bench: wall-clock sweep across backends %s\n", strings.Join(names, ", "))
			}
			if err := f.CollectBackends(ctx, spec, pipeline.Config{Metrics: reg}, 0, names); err != nil {
				cli.Die(fmt.Errorf("swabench: bench: %w", err))
			}
		}
		if *search {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "... bench: corpus-search selectivity sweep (%d seqs, k = 4, 6, 8)\n", *searchSeqs)
			}
			if err := f.CollectSearch(ctx, *searchSeqs, nil, *searchBackend); err != nil {
				cli.Die(fmt.Errorf("swabench: bench: %w", err))
			}
		}
		if err := f.WriteFile(*benchOut); err != nil {
			cli.Die(fmt.Errorf("swabench: bench: %w", err))
		}
		if *metricsOut != "" {
			if err := cli.MetricsDump(*metricsOut, reg); err != nil {
				cli.Die(fmt.Errorf("swabench: metrics: %w", err))
			}
		}
		for _, r := range f.Runs {
			fmt.Printf("bench m=%d n=%d pairs=%d lanes=%d gcups=%.2f\n", r.M, r.N, r.Pairs, r.Lanes, r.GCUPS)
		}
		if f.Fleet != nil {
			for _, d := range f.Fleet.Devices {
				fmt.Printf("fleet %s shards=%d pairs=%d util=%.2f steals=%d\n",
					d.Name, d.Shards, d.Pairs, d.Utilization, d.Steals)
			}
			fmt.Printf("fleet aggregate wall_gcups=%.4f over %d shards\n",
				f.Fleet.AggregateGCUPS, f.Fleet.Shards)
		}
		if c := f.Cluster; c != nil {
			fmt.Printf("cluster nodes=%d forwarded=%d warm_hit_ratio=%.2f fallbacks=%d rehomes=%d (killed %s)\n",
				c.Nodes, c.ForwardedPairs, c.WarmHitRatio, c.FallbackPairs, c.Rehomes, c.KilledNode)
		}
		for _, sec := range f.Backends {
			fmt.Printf("backend %s wall_gcups=%.4f runs=%d\n", sec.Name, sec.AggregateWallGCUPS, len(sec.Runs))
		}
		if f.Search != nil {
			for _, r := range f.Search.Runs {
				fmt.Printf("search k=%d kmer_rate=%.3f pass_rate=%.4f cands/query=%.1f wall_gcups=%.3f exact=%v\n",
					r.K, r.KmerPassRate, r.PassRate, r.CandidatesPerQuery, r.WallGCUPS, r.ExactTopK)
			}
		}
		if f.SpeedupStripedVsBitwiseSim > 0 {
			fmt.Printf("backend speedup striped/bitwise-sim=%.1fx\n", f.SpeedupStripedVsBitwiseSim)
		}
		fmt.Printf("swabench: wrote %s\n", *benchOut)
		return
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "... %s\n", msg)
		}
	}

	want := func(n int) bool { return *table == 0 && *figure == 0 || *table == n }
	wantFig := func(n int) bool { return *table == 0 && *figure == 0 || *figure == n }

	if want(1) {
		fmt.Println(tables.RenderTableI())
		fmt.Println(tables.RenderLemmas())
	}
	if want(2) {
		fmt.Println(tables.RenderTableII())
	}
	if want(3) {
		fmt.Println(tables.RenderTableIII())
	}
	if wantFig(1) {
		fmt.Println(tables.RenderFigure1())
	}
	if wantFig(2) {
		fmt.Println(tables.RenderFigure2())
	}
	if want(4) || want(5) {
		iv, err := tables.BuildTableIV(ctx, spec, progress)
		if err != nil {
			cli.Die(fmt.Errorf("table IV: %w", err))
		}
		if want(4) {
			fmt.Println(tables.RenderTableIV(iv))
			if spec.Name != "paper" {
				fmt.Printf("CPU columns measured on preset %q (%d pairs, n up to %d) and rescaled\n"+
					"to the paper's 32K pairs; rows beyond the preset's n sweep extrapolate the\n"+
					"largest measured n linearly. Run -preset paper for fully measured CPU columns.\n\n",
					spec.Name, spec.Pairs, spec.NList[len(spec.NList)-1])
			}
		}
		if want(5) {
			fmt.Println(tables.RenderTableV(tables.BuildTableV(iv)))
		}
	}
	if *ablations {
		progress("ablations")
		rows, err := tables.BuildAblations(ctx, spec)
		if err != nil {
			cli.Die(fmt.Errorf("ablations: %w", err))
		}
		fmt.Println(tables.RenderAblations(rows))
	}
}
