package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/server"
	"repro/internal/swa"
)

// TestSIGTERMDrainsInFlight is the end-to-end graceful-shutdown check on
// the real binary: under load, kill -TERM must flip /readyz to not-ready,
// let the in-flight request complete with exact scores, and exit 0 within
// the grace period. Skipped with -short (it builds and runs the binary).
func TestSIGTERMDrainsInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "swaserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Launch failures + long backoffs (breaker disabled) make every align
	// spend ~300-600ms sleeping in the retry ladder before the CPU rung
	// serves it — a deterministic "slow" request for the drain window.
	// -backend=bitwise-sim: the retry-ladder timing below only exists on
	// the simulated backend; the striped default would serve instantly.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-backend", "bitwise-sim",
		"-fault-launch", "1",
		"-breaker-failures", "-1",
		"-max-attempts", "4",
		"-base-backoff", "100ms",
		"-max-backoff", "100ms",
		"-grace", "10s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listening line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	base := "http://" + addr
	go io.Copy(io.Discard, stdout)

	rng := rand.New(rand.NewPCG(21, 0))
	pairs := dna.RandomPairs(rng, 16, 8, 16)
	want := make([]int, len(pairs))
	req := server.AlignRequest{Pairs: make([]server.PairJSON, len(pairs))}
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		req.Pairs[i] = server.PairJSON{X: p.X.String(), Y: p.Y.String()}
	}
	body, _ := json.Marshal(req)

	type result struct {
		status int
		raw    []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/align", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, raw, err}
	}()

	// Wait until the request is in flight, then send SIGTERM.
	if err := waitFor(5*time.Second, func() bool {
		var st server.StatszResponse
		return getJSON(base+"/statsz", &st) == nil && st.Server.InFlight >= 1
	}); err != nil {
		t.Fatalf("request never became in-flight: %v; stderr:\n%s", err, stderr.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// /readyz must flip to 503 while the request drains.
	if err := waitFor(3*time.Second, func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusServiceUnavailable
	}); err != nil {
		t.Fatalf("/readyz never reported not-ready during drain: %v", err)
	}

	// The in-flight request completes with exact scores.
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request = %d during drain, want 200: %s", r.status, r.raw)
	}
	var res server.AlignResponse
	if err := json.Unmarshal(r.raw, &res); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("drained score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}

	// And the process exits 0 within the grace period.
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("swaserver exited non-zero: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("swaserver did not exit within the grace period; stderr:\n%s", stderr.String())
	}
}

func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not met within %v", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
