package main

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSlowlorisHeaderTimeout is the connection-hardening regression test: a
// client that opens a connection and dribbles an incomplete header block
// must be cut off by ReadHeaderTimeout instead of pinning a connection
// forever, and service to well-behaved clients must be unaffected while the
// stalled connection is alive. Skipped with -short (builds the binary).
func TestSlowlorisHeaderTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	bin := buildSwaserver(t)
	cmd, base, stderr := startSwaserver(t, bin,
		"-addr", "127.0.0.1:0",
		"-read-header-timeout", "500ms",
	)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Open a raw connection and stall after half a request line: never send
	// the terminating blank line, so only ReadHeaderTimeout can end it.
	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The dribble is a valid prefix (an unterminated header line), so the
	// parser cannot reject it eagerly — only the timeout can end the wait.
	start := time.Now()
	if _, err := fmt.Fprintf(conn, "POST /align HTTP/1.1\r\nHost: x\r\nX-Slow: lori"); err != nil {
		t.Fatal(err)
	}

	// The server must stay fully available to real clients meanwhile.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz while slowloris in flight: %v\nstderr:\n%s", err, stderr.String())
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while slowloris in flight = %d", resp.StatusCode)
	}

	// The stalled connection must be ended by the server shortly after the
	// 500ms header deadline (net/http aborts the header read and closes,
	// usually after writing a terse error). Drain until EOF — a read
	// deadline firing instead means the connection was left open, which is
	// exactly the slowloris regression. The generous ceiling keeps the
	// assertion robust on slow CI machines.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 512)
	for {
		_, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("connection still open %v after a 500ms ReadHeaderTimeout", time.Since(start))
			}
			break // EOF or reset: the server hung up, as required
		}
	}
	elapsed := time.Since(start)
	if elapsed < 400*time.Millisecond {
		t.Fatalf("connection ended after only %v — rejected eagerly, not by the header timeout", elapsed)
	}
	if elapsed > 9*time.Second {
		t.Fatalf("connection closed only after %v", elapsed)
	}
}
