package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/server"
	"repro/internal/swa"
)

// TestSIGTERMDrainsMultiTenantFlood extends the graceful-shutdown e2e to
// multi-tenant queue pressure on the real binary: while a hostile tenant
// floods its queue (and is shed with 429 + Retry-After), two well-behaved
// tenants each hold an in-flight request. kill -TERM must complete both
// in-flight requests with exact scores, answer new work with the typed
// draining error, and exit 0 within the grace period. Skipped with -short.
func TestSIGTERMDrainsMultiTenantFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "swaserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Keyless tenants so the test only needs X-SWA-Tenant: a short-queued
	// weight-1 flooder and two weight-2 steady tenants.
	tenantsFile := filepath.Join(dir, "tenants.json")
	cfg := `{"tenants":[
		{"id":"flood","weight":1,"max_queued":3},
		{"id":"steady-a","weight":2},
		{"id":"steady-b","weight":2}
	]}`
	if err := os.WriteFile(tenantsFile, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	// Same deterministic slow-request recipe as the single-tenant drain
	// test: every align spends ~300-600ms in the retry ladder. The score
	// cache is off — every client posts the same batch, and a cache hit
	// would serve it instantly, destroying the queue pressure under test.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-backend", "bitwise-sim",
		"-fault-launch", "1",
		"-breaker-failures", "-1",
		"-max-attempts", "4",
		"-base-backoff", "100ms",
		"-max-backoff", "100ms",
		"-cache-bytes", "0",
		"-inflight", "3",
		"-queued", "6",
		"-grace", "10s",
		"-tenants", tenantsFile,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listening line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	base := "http://" + line[strings.LastIndex(line, " ")+1:]
	go io.Copy(io.Discard, stdout)

	rng := rand.New(rand.NewPCG(33, 0))
	pairs := dna.RandomPairs(rng, 8, 8, 16)
	want := make([]int, len(pairs))
	req := server.AlignRequest{Pairs: make([]server.PairJSON, len(pairs))}
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		req.Pairs[i] = server.PairJSON{X: p.X.String(), Y: p.Y.String()}
	}
	body, _ := json.Marshal(req)

	post := func(tenantID string) (int, http.Header, []byte, error) {
		hreq, err := http.NewRequest(http.MethodPost, base+"/align", bytes.NewReader(body))
		if err != nil {
			return 0, nil, nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(server.TenantHeader, tenantID)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, raw, err
	}

	// The flood: 6 unpaced loops on the short-queued tenant.
	var (
		floodShed     atomic.Int64
		floodDrained  atomic.Int64
		badRetryAfter atomic.Int64
		stop          = make(chan struct{})
		wg            sync.WaitGroup
	)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, hdr, raw, err := post("flood")
				if err != nil {
					return // listener closed after shutdown
				}
				switch status {
				case http.StatusTooManyRequests:
					floodShed.Add(1)
					if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
						badRetryAfter.Add(1)
					}
					time.Sleep(5 * time.Millisecond)
				case http.StatusServiceUnavailable:
					var e server.ErrorResponse
					if json.Unmarshal(raw, &e) == nil && e.Code == server.CodeDraining {
						floodDrained.Add(1)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}()
	}

	// The steady tenants: one closed loop each, recording every outcome so
	// the drain assertions can find the request that was in flight when the
	// signal arrived.
	type result struct {
		status     int
		raw        []byte
		start, end time.Time
	}
	var (
		steadyMu  sync.Mutex
		steadyLog = map[string][]result{}
	)
	for _, id := range []string{"steady-a", "steady-b"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				status, _, raw, err := post(id)
				if err != nil {
					return // listener closed after shutdown
				}
				steadyMu.Lock()
				steadyLog[id] = append(steadyLog[id], result{status, raw, start, time.Now()})
				steadyMu.Unlock()
				if status != http.StatusOK {
					time.Sleep(5 * time.Millisecond)
				}
			}
		}()
	}

	// Wait until both steady tenants hold execution slots and the flooder
	// has already been shed at least once — sustained multi-tenant pressure.
	if err := waitFor(10*time.Second, func() bool {
		var st server.StatszResponse
		if getJSON(base+"/statsz", &st) != nil {
			return false
		}
		return st.Tenants["steady-a"].InFlight >= 1 &&
			st.Tenants["steady-b"].InFlight >= 1 &&
			floodShed.Load() >= 1
	}); err != nil {
		t.Fatalf("multi-tenant pressure never built up: %v; stderr:\n%s", err, stderr.String())
	}
	signalAt := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Let the drain and the flood overlap, then stop the clients once the
	// process has exited (below) and judge the logs.
	checkSteady := func(id string) {
		steadyMu.Lock()
		log := steadyLog[id]
		steadyMu.Unlock()
		inFlightCompleted := false
		for _, r := range log {
			switch r.status {
			case http.StatusOK:
				var res server.AlignResponse
				if err := json.Unmarshal(r.raw, &res); err != nil {
					t.Fatalf("%s: bad 200 body: %v", id, err)
				}
				for i := range want {
					if res.Scores[i] != want[i] {
						t.Fatalf("%s score[%d] = %d, want %d", id, i, res.Scores[i], want[i])
					}
				}
				if r.end.After(signalAt) {
					// Admitted before the drain began (it answered 200, not
					// 503) and completed after it: the in-flight guarantee.
					inFlightCompleted = true
				}
			case http.StatusServiceUnavailable:
				var e server.ErrorResponse
				if json.Unmarshal(r.raw, &e) != nil || e.Code != server.CodeDraining {
					t.Fatalf("%s: 503 without the typed draining code: %s", id, r.raw)
				}
			case http.StatusTooManyRequests:
				// Possible under flood spillover; fine.
			default:
				t.Fatalf("%s: unexpected status %d: %s", id, r.status, r.raw)
			}
		}
		if !inFlightCompleted {
			t.Errorf("%s: no in-flight request completed with 200 during the drain", id)
		}
	}

	// The process exits 0 within grace, flood still hammering.
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("swaserver exited non-zero: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("swaserver did not exit within the grace period; stderr:\n%s", stderr.String())
	}
	close(stop)
	wg.Wait()

	checkSteady("steady-a")
	checkSteady("steady-b")
	if floodShed.Load() == 0 {
		t.Error("the flooding tenant was never shed with 429")
	}
	if n := badRetryAfter.Load(); n != 0 {
		t.Errorf("%d flood 429s carried a missing or out-of-range Retry-After", n)
	}
	if floodDrained.Load() == 0 {
		t.Error("the flood never observed a typed draining rejection after SIGTERM")
	}
}
