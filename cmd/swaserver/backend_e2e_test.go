package main

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"syscall"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/server"
	"repro/internal/swa"
)

// TestBackendFlagEndToEnd boots the real binary with the striped default
// and checks the whole backend seam over HTTP: exact scores served by the
// striped tier, /statsz carrying the backend name and striped counters, a
// per-request X-SWA-Backend override landing on the cpu-ref rung, and an
// unknown header rejected as bad_backend. Skipped with -short.
func TestBackendFlagEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	bin := buildSwaserver(t)
	// -cache-bytes=0: the score cache is shared across backends by design,
	// so with it on, the second request would be served from cache and never
	// reach the overridden engine — this test wants to see the tiers.
	cmd, base, stderr := startSwaserver(t, bin,
		"-addr", "127.0.0.1:0",
		"-backend", "striped",
		"-cache-bytes", "0",
		"-grace", "5s",
	)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	rng := rand.New(rand.NewPCG(7, 0))
	pairs := dna.RandomPairs(rng, 12, 24, 48)
	req := server.AlignRequest{Pairs: make([]server.PairJSON, len(pairs))}
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		req.Pairs[i] = server.PairJSON{X: p.X.String(), Y: p.Y.String()}
	}
	body, _ := json.Marshal(req)

	post := func(backend string) (*http.Response, server.AlignResponse) {
		t.Helper()
		hreq, err := http.NewRequest(http.MethodPost, base+"/align", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		if backend != "" {
			hreq.Header.Set(server.BackendHeader, backend)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatalf("align: %v; stderr:\n%s", err, stderr.String())
		}
		defer resp.Body.Close()
		var out server.AlignResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp, out
	}

	// Default path: the striped engine serves with exact scores.
	resp, out := post("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align: status %d; stderr:\n%s", resp.StatusCode, stderr.String())
	}
	for i := range want {
		if out.Scores[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, out.Scores[i], want[i])
		}
	}
	if out.Report.Tier.String() != "striped" {
		t.Fatalf("served by %v, want striped", out.Report.Tier)
	}

	// Per-request override to the scalar reference.
	resp, out = post("cpu-ref")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override: status %d", resp.StatusCode)
	}
	if out.Report.Tier.String() != "cpu" {
		t.Fatalf("override served by %v, want cpu", out.Report.Tier)
	}
	for i := range want {
		if out.Scores[i] != want[i] {
			t.Fatalf("override score[%d] = %d, want %d", i, out.Scores[i], want[i])
		}
	}

	// Unknown backend is a 400 before any work runs.
	if resp, _ := post("hyperdrive"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d, want 400", resp.StatusCode)
	}

	// /statsz reports the default backend and the striped counters.
	sresp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statsz struct {
		Service struct {
			Backend string `json:"backend"`
			Striped struct {
				Pairs int64 `json:"pairs"`
			} `json:"striped"`
		} `json:"service"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&statsz); err != nil {
		t.Fatal(err)
	}
	if statsz.Service.Backend != "striped" {
		t.Fatalf("/statsz backend = %q, want striped", statsz.Service.Backend)
	}
	if statsz.Service.Striped.Pairs != int64(len(pairs)) {
		t.Fatalf("/statsz striped pairs = %d, want %d (cpu-ref override must not count)",
			statsz.Service.Striped.Pairs, len(pairs))
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
}
