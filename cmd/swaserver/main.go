// Command swaserver runs the HTTP alignment server: alignsvc.Service (the
// retry/degradation ladder over pluggable execution backends) behind
// internal/server's admission control.
//
// -backend selects the default serving engine: striped (the native
// Farrar-style SIMD CPU engine, the wall-clock default), bitwise-sim /
// wordwise-sim (the paper's simulated GPU pipelines, with the classic
// retry/degradation ladder and fault injection), or cpu-ref (the scalar
// reference). A single request can override it with the X-SWA-Backend
// header; all backends return byte-identical scores, so the score cache and
// cluster routing are shared across them.
//
// Endpoints: POST /align, GET /healthz, /readyz, /statsz, /metricsz
// (Prometheus text). On SIGINT/SIGTERM the server stops admitting work
// (/readyz flips to 503), drains in-flight batches for -grace, then exits 0.
//
// -data-dir enables the durable async job API (POST /jobs, GET /jobs/{id},
// GET /jobs/{id}/result, DELETE /jobs/{id}): submitted batches are persisted
// to a write-ahead log in that directory before the 202 goes out and are
// executed chunk by chunk, each completed chunk checkpointed. On startup the
// WAL is replayed — incomplete jobs resume from their last checkpoint, so a
// crash (even SIGKILL) costs at most the chunk that was in flight. On
// SIGTERM, running jobs are checkpointed and requeued rather than awaited.
//
// -tenants loads a JSON tenant config (API keys, weights, rate limits,
// concurrency and job quotas) and turns on multi-tenant admission: requests
// authenticate with X-SWA-API-Key (or X-SWA-Tenant for keyless tenants),
// execution slots are divided weighted-fair between backlogged tenants, and
// jobs belong to the tenant that submitted them. GET /jobs/{id}/events
// streams live job progress as Server-Sent Events.
//
// -corpus name=dir (repeatable) mounts reference corpora built with
// dbfilter -build (or corpus.Build): POST /search answers ranked top-K
// queries — a k-mer/bitap prefilter narrows the corpus, then the exact
// Smith-Waterman backend named by -search-backend scores the survivors —
// and, combined with -data-dir, POST /jobs accepts kind "search" for
// durable chunk-checkpointed searches (-search-chunk-size sequences per
// checkpoint) that resume from the WAL after a crash. /statsz gains a
// search section with per-corpus inventory and funnel counters.
//
// -ops-addr starts a second listener with the operational endpoints —
// /metricsz, /tracez (recent request traces) and net/http/pprof under
// /debug/pprof/. It is off by default and should stay firewalled: pprof can
// dump heap contents.
//
// Usage:
//
//	swaserver [-backend striped|bitwise-sim|wordwise-sim|cpu-ref]
//	          [-addr :8468] [-ops-addr :8469] [-workers N] [-inflight N]
//	          [-queued N] [-tenants tenants.json]
//	          [-grace 15s] [-timeout 30s] [-lanes 32]
//	          [-devices 4 -device-specs titanx,titanx-half]
//	          [-quarantine-after 3 -probe-interval 1s -hedge-after 0]
//	          [-node-id n1 -peers n2=http://h2:8468,n3=http://h3:8468]
//	          [-peer-timeout 5s -peer-hedge-after 0 -peer-probe-interval 1s]
//	          [-data-dir /var/lib/swa -wal-sync always -chunk-size 64]
//	          [-corpus ref=/var/lib/swa/corpus -search-backend striped]
//	          [-search-chunk-size 4096]
//	          [-read-header-timeout 10s -read-timeout 2m -idle-timeout 2m]
//	          [-fault-launch 0.3 -fault-bitflip 0.2 ...]   (chaos mode)
//
// -peers turns N swaserver processes into one coordinator-free logical
// service: a consistent-hash ring over the score-cache content address
// routes each pair to its owner node for cache locality, with circuit
// breakers, health probing (dead peers leave the ring, readmitted ones
// rejoin) and unconditional fallback to local execution. On drain the node
// hands its hot key arcs to the surviving owners. /statsz gains a cluster
// section and /metricsz cluster_* gauges.
//
// -devices N (N > 0) runs the GPU tiers on a fleet of N simulated devices
// plus a CPU last-resort member: batches shard across the fleet with
// work-stealing, per-device health tracking (suspect → quarantine → probe →
// readmit) and shard-level re-dispatch when a device fails or is killed
// mid-batch. -device-specs cycles performance models over the members;
// /statsz gains a service.fleet section and /metricsz per-device gauges.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"slices"
	"strings"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/cudasim"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8468", "listen address (host:port; port 0 picks a free one)")
	backend := flag.String("backend", alignsvc.BackendStriped,
		"default execution backend: "+strings.Join(alignsvc.BackendNames(), ", "))
	opsAddr := flag.String("ops-addr", "", "ops listen address for /metricsz, /tracez and pprof (empty = disabled)")
	workers := flag.Int("workers", 0, "service worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "service queue depth (0 = workers)")
	lanes := flag.Int("lanes", 32, "bitwise lane width: 32 or 64")
	maxAttempts := flag.Int("max-attempts", 3, "attempts per GPU tier before degrading")
	validate := flag.Float64("validate", 0.05, "fraction of scores re-checked on the CPU (>=1 checks all)")
	baseBackoff := flag.Duration("base-backoff", time.Millisecond, "base retry backoff")
	maxBackoff := flag.Duration("max-backoff", 50*time.Millisecond, "retry backoff cap")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive tier failures tripping the circuit breaker (<0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 500*time.Millisecond, "open-breaker cooldown before the half-open probe")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "score-cache size bound in bytes (0 disables the cache)")
	cacheTTL := flag.Duration("cache-ttl", 10*time.Minute, "score-cache entry lifetime (0 = no expiry)")
	cacheShards := flag.Int("cache-shards", 16, "score-cache shard count")

	devices := flag.Int("devices", 0, "simulated GPU fleet size (0 = single-device pipelines, no fleet)")
	deviceSpecs := flag.String("device-specs", "titanx", "comma-separated perf specs cycled over the fleet members")
	quarantineAfter := flag.Int("quarantine-after", 3, "consecutive shard failures that quarantine a fleet device")
	probeInterval := flag.Duration("probe-interval", time.Second, "quarantine cooldown before a readmission probe")
	hedgeAfter := flag.Duration("hedge-after", 0, "re-dispatch a shard still running after this long (0 disables hedging)")

	nodeID := flag.String("node-id", "", "this node's stable cluster identity (required with -peers)")
	peers := flag.String("peers", "", "static cluster peers as id=url,id=url (empty = single node, no cluster)")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "per-attempt deadline for forwards and health probes")
	peerHedgeAfter := flag.Duration("peer-hedge-after", 0, "race local execution against a forward still running after this long (0 disables)")
	peerProbeInterval := flag.Duration("peer-probe-interval", time.Second, "peer health-probe cadence and quarantine cooldown")

	inflight := flag.Int("inflight", 0, "max align requests executing concurrently (0 = 2×GOMAXPROCS)")
	queued := flag.Int("queued", 0, "max align requests waiting for a slot before 429 (0 = inflight)")
	tenantsFile := flag.String("tenants", "", "JSON tenant config enabling multi-tenant admission (empty = single anonymous tenant)")
	maxPairs := flag.Int("max-pairs", 4096, "max pairs per batch")
	maxSeqLen := flag.Int("max-seqlen", 16384, "max sequence length")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "how long a client may take to send request headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "how long a client may take to send a whole request (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is kept open")

	dataDir := flag.String("data-dir", "", "WAL directory for durable async jobs (empty = /jobs API disabled)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval or never")
	walSyncEvery := flag.Duration("wal-sync-every", 100*time.Millisecond, "fsync period for -wal-sync interval")
	walSegBytes := flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation size")
	chunkSize := flag.Int("chunk-size", 64, "pairs per job chunk (the checkpoint granularity)")
	jobConcurrency := flag.Int("job-concurrency", 2, "jobs executing concurrently")
	jobQueue := flag.Int("job-queue", 64, "jobs waiting in the queue before 429")
	jobTTL := flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay queryable before GC")
	jobChunkTimeout := flag.Duration("job-chunk-timeout", time.Minute, "per-chunk execution deadline")

	var corpusMounts mountFlags
	flag.Var(&corpusMounts, "corpus", "mount a corpus index as name=dir (repeatable; enables POST /search)")
	searchBackend := flag.String("search-backend", alignsvc.BackendStriped,
		"exact scoring backend for corpus search: "+strings.Join(alignsvc.BackendNames(), ", "))
	searchChunkSize := flag.Int("search-chunk-size", 4096, "corpus sequences per search-job chunk (the checkpoint granularity)")

	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed")
	faultHtoD := flag.Float64("fault-htod", 0, "HtoD transfer failure rate [0,1]")
	faultDtoH := flag.Float64("fault-dtoh", 0, "DtoH transfer failure rate [0,1]")
	faultAlloc := flag.Float64("fault-alloc", 0, "device allocation failure rate [0,1]")
	faultLaunch := flag.Float64("fault-launch", 0, "kernel launch failure rate [0,1]")
	faultBitFlip := flag.Float64("fault-bitflip", 0, "silent bit-flip rate per transfer [0,1]")
	flag.Parse()

	if flag.NArg() != 0 {
		flag.PrintDefaults()
		cli.Exitf(2, "swaserver: unexpected arguments %v", flag.Args())
	}
	if *lanes != 32 && *lanes != 64 {
		cli.Exitf(2, "swaserver: -lanes must be 32 or 64, got %d", *lanes)
	}
	if !slices.Contains(alignsvc.BackendNames(), *backend) {
		cli.Exitf(2, "swaserver: -backend: unknown backend %q (have %s)",
			*backend, strings.Join(alignsvc.BackendNames(), ", "))
	}
	if *grace <= 0 {
		cli.Exitf(2, "swaserver: -grace must be positive, got %v", *grace)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"-validate", *validate}, {"-fault-htod", *faultHtoD}, {"-fault-dtoh", *faultDtoH},
		{"-fault-alloc", *faultAlloc}, {"-fault-launch", *faultLaunch}, {"-fault-bitflip", *faultBitFlip},
	} {
		if r.name != "-validate" && (r.v < 0 || r.v > 1) {
			cli.Exitf(2, "swaserver: %s must be in [0,1], got %v", r.name, r.v)
		}
	}

	// Multi-tenant admission: -tenants loads the API-key registry that the
	// server (rate limits, weighted-fair queueing) and the job manager
	// (ownership, running-job quotas) share. Without it, every request is
	// the anonymous tenant and admission behaves exactly as untenanted.
	var reg *tenant.Registry
	if *tenantsFile != "" {
		var err error
		reg, err = tenant.LoadFile(*tenantsFile)
		if err != nil {
			cli.Exitf(2, "swaserver: -tenants: %v", err)
		}
		log.Printf("swaserver: multi-tenant admission enabled: %d tenant(s) from %s",
			reg.Len(), *tenantsFile)
	}

	// The content-addressed score cache: identical (pattern, text, scoring,
	// lanes) pairs across requests and job chunks compute once. -cache-bytes=0
	// turns it off, leaving the serving path byte-identical to the uncached
	// build.
	cache := aligncache.New(aligncache.Config{
		MaxBytes: *cacheBytes,
		TTL:      *cacheTTL,
		Shards:   *cacheShards,
	})
	if cache.Enabled() {
		log.Printf("swaserver: score cache enabled: %d MiB, ttl %v, %d shards",
			*cacheBytes>>20, *cacheTTL, *cacheShards)
	}

	// The device fleet: -devices N shards every GPU-tier batch across N
	// simulated cards (specs cycled from -device-specs) plus a CPU
	// last-resort member, with health tracking and kill survival. The
	// 12 GiB per-member capacity is backed lazily, so idle members cost
	// nothing until their shards actually allocate.
	var fl *fleet.Scheduler
	if *devices > 0 {
		var specs []perfmodel.DeviceSpec
		for _, name := range strings.Split(*deviceSpecs, ",") {
			spec, ok := perfmodel.SpecByName(strings.TrimSpace(name))
			if !ok {
				cli.Exitf(2, "swaserver: -device-specs: unknown spec %q (have %s)",
					name, strings.Join(perfmodel.SpecNames(), ", "))
			}
			specs = append(specs, spec)
		}
		members := make([]fleet.DeviceConfig, 0, *devices+1)
		for i := 0; i < *devices; i++ {
			members = append(members, fleet.DeviceConfig{
				Name:        fmt.Sprintf("gpu%d", i),
				Spec:        specs[i%len(specs)],
				GlobalBytes: 12 << 30,
			})
		}
		members = append(members, fleet.DeviceConfig{Name: "cpu", CPU: true})
		var err error
		fl, err = fleet.New(fleet.Config{
			Devices:         members,
			QuarantineAfter: *quarantineAfter,
			ProbeInterval:   *probeInterval,
			HedgeAfter:      *hedgeAfter,
			Metrics:         obs.Default(),
			Seed:            *faultSeed,
		})
		cli.Check(err)
		log.Printf("swaserver: fleet enabled: %d device(s) + cpu, quarantine after %d, probe every %v",
			*devices, *quarantineAfter, *probeInterval)
	}

	svc := alignsvc.New(alignsvc.Config{
		Backend:         *backend,
		Cache:           cache,
		Fleet:           fl,
		Lanes:           *lanes,
		Workers:         *workers,
		Queue:           *queue,
		MaxAttempts:     *maxAttempts,
		ValidateFrac:    *validate,
		BaseBackoff:     *baseBackoff,
		MaxBackoff:      *maxBackoff,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		Seed:            *faultSeed,
		Faults: cudasim.FaultConfig{
			Seed:    *faultSeed,
			HtoD:    *faultHtoD,
			DtoH:    *faultDtoH,
			Alloc:   *faultAlloc,
			Launch:  *faultLaunch,
			BitFlip: *faultBitFlip,
		},
	})
	// Reference corpora: each -corpus name=dir opens a CRC-checked index
	// built by dbfilter -build, and all mounts share one exact scoring
	// backend (-search-backend). The registry is handed to both the server
	// (POST /search) and the job manager (kind "search" jobs).
	var corpora *corpus.Registry
	if len(corpusMounts) > 0 {
		if !slices.Contains(alignsvc.BackendNames(), *searchBackend) {
			cli.Exitf(2, "swaserver: -search-backend: unknown backend %q (have %s)",
				*searchBackend, strings.Join(alignsvc.BackendNames(), ", "))
		}
		be, err := alignsvc.NewBackend(*searchBackend, pipeline.Config{}, *lanes)
		cli.Check(err)
		corpora = corpus.NewRegistry()
		for _, m := range corpusMounts {
			c, err := corpus.Open(m.dir)
			if err != nil {
				cli.Exitf(2, "swaserver: -corpus %s=%s: %v", m.name, m.dir, err)
			}
			if err := corpora.Add(m.name, c, corpus.NewSearcher(c, be, obs.Default())); err != nil {
				cli.Exitf(2, "swaserver: -corpus: %v", err)
			}
			log.Printf("swaserver: corpus %q mounted: %d sequence(s), %d base(s), k=%d, fingerprint %s",
				m.name, c.Len(), c.TotalBases(), c.K(), c.Fingerprint())
		}
	}

	// The durable job stack: WAL store + chunked job manager, sharing one
	// trace ring with the server so /tracez covers background job runs too.
	var (
		store *jobstore.Store
		mgr   *jobs.Manager
		ring  *obs.TraceRing
	)
	if *dataDir != "" {
		policy, err := jobstore.ParseSyncPolicy(*walSync)
		if err != nil {
			cli.Exitf(2, "swaserver: -wal-sync: %v", err)
		}
		var rep jobstore.ReplayReport
		store, rep, err = jobstore.Open(jobstore.Options{
			Dir:          *dataDir,
			SegmentBytes: *walSegBytes,
			Sync:         policy,
			SyncEvery:    *walSyncEvery,
		})
		cli.Check(err)
		log.Printf("swaserver: job store %s: %d segment(s), %d record(s), %d live job(s)",
			*dataDir, rep.Segments, rep.Records, rep.Jobs)
		if rep.Truncated {
			log.Printf("swaserver: job store repaired: dropped %d byte(s) at %s",
				rep.TruncatedBytes, rep.Corrupt)
		}
		ring = obs.NewTraceRing(64)
		mgr, err = jobs.New(jobs.Config{
			Store:           store,
			Service:         svc,
			ChunkSize:       *chunkSize,
			MaxConcurrent:   *jobConcurrency,
			MaxQueued:       *jobQueue,
			ChunkTimeout:    *jobChunkTimeout,
			TTL:             *jobTTL,
			Traces:          ring,
			Tenants:         reg,
			Corpora:         corpora,
			SearchChunkSize: *searchChunkSize,
		})
		cli.Check(err)
		if recovered := mgr.Stats().Recovered; recovered > 0 {
			log.Printf("swaserver: recovered %d incomplete job(s), resuming from checkpoints", recovered)
		}
	}

	// The coordinator-free cluster layer: -peers names the other swaserver
	// processes; a consistent-hash ring over the score-cache content address
	// routes each pair to its owner node (falling back to local execution on
	// any peer failure), peer health probes feed ring membership, and drain
	// hands the hot key set to the surviving owners.
	var cl *cluster.Cluster
	if *peers != "" {
		if *nodeID == "" {
			cli.Exitf(2, "swaserver: -peers requires -node-id")
		}
		peerList, err := cluster.ParsePeers(*peers)
		if err != nil {
			cli.Exitf(2, "swaserver: -peers: %v", err)
		}
		cl, err = cluster.New(cluster.Config{
			NodeID:        *nodeID,
			Peers:         peerList,
			Local:         svc,
			Scoring:       svc.Scoring(),
			Lanes:         svc.Lanes(),
			PeerTimeout:   *peerTimeout,
			HedgeAfter:    *peerHedgeAfter,
			ProbeInterval: *peerProbeInterval,
			Metrics:       obs.Default(),
		})
		cli.Check(err)
		log.Printf("swaserver: cluster enabled: node %s with %d peer(s), probe every %v",
			*nodeID, len(peerList), *peerProbeInterval)
	}

	srv, err := server.New(server.Config{
		Service:        svc,
		MaxInFlight:    *inflight,
		MaxQueued:      *queued,
		MaxPairs:       *maxPairs,
		MaxSeqLen:      *maxSeqLen,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Jobs:           mgr,
		TraceRing:      ring,
		Cluster:        cl,
		Tenants:        reg,
		Corpora:        corpora,
	})
	cli.Check(err)

	ln, err := net.Listen("tcp", *addr)
	cli.Check(err)
	// The listening line goes to stdout so scripts (and the e2e test) can
	// discover a :0-assigned port.
	fmt.Printf("swaserver listening on %s\n", ln.Addr())

	// Connection hygiene on both listeners: a client that stalls mid-header
	// (slowloris) or parks a dead keep-alive connection must not pin server
	// resources forever. ReadTimeout additionally bounds slow request bodies.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The ops listener is best-effort: it serves pprof and metrics for
	// operators and is simply closed on shutdown (no drain needed).
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		cli.Check(err)
		fmt.Printf("swaserver ops listening on %s\n", opsLn.Addr())
		opsSrv = &http.Server{
			Handler:           srv.OpsHandler(),
			ReadHeaderTimeout: *readHeaderTimeout,
			ReadTimeout:       *readTimeout,
			IdleTimeout:       *idleTimeout,
		}
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("swaserver: ops serve: %v", err)
			}
		}()
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	select {
	case err := <-serveErr:
		if mgr != nil {
			mgr.Close()
			cli.Check(store.Close())
		}
		cl.Close()
		svc.Close()
		if fl != nil {
			fl.Close()
		}
		cli.Die(fmt.Errorf("swaserver: serve: %w", err))
	case <-ctx.Done():
	}
	stop() // a second signal force-kills via Go's default handling

	// Graceful shutdown: refuse new aligns and flip /readyz (still served,
	// so load balancers see not-ready), drain in-flight batches within the
	// grace period — job runners checkpoint and requeue their jobs at the
	// next chunk boundary — then close the listener, the manager, the job
	// store and the service.
	log.Printf("swaserver: signal received, draining (grace %v)", *grace)
	srv.BeginDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	drainErr := srv.Drain(graceCtx)
	if err := httpSrv.Shutdown(graceCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("swaserver: http shutdown: %v", err)
	}
	if opsSrv != nil {
		_ = opsSrv.Close()
	}
	if mgr != nil {
		if requeued := mgr.Stats().Requeued; requeued > 0 {
			log.Printf("swaserver: checkpointed and requeued %d running job(s)", requeued)
		}
		mgr.Close()
		cli.Check(store.Close())
	}
	cl.Close()
	svc.Close()
	if fl != nil {
		fl.Close()
	}
	if drainErr != nil {
		cli.Die(fmt.Errorf("swaserver: %w", drainErr))
	}
	log.Printf("swaserver: drained cleanly")
}

// mountFlags collects repeated -corpus name=dir flags in order.
type mountFlags []corpusMount

type corpusMount struct{ name, dir string }

func (m *mountFlags) String() string {
	parts := make([]string, len(*m))
	for i, c := range *m {
		parts[i] = c.name + "=" + c.dir
	}
	return strings.Join(parts, ",")
}

func (m *mountFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", v)
	}
	for _, c := range *m {
		if c.name == name {
			return fmt.Errorf("corpus %q mounted twice", name)
		}
	}
	*m = append(*m, corpusMount{name: name, dir: dir})
	return nil
}
