package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/server"
	"repro/internal/swa"
)

// TestFleetFlagsEndToEnd boots the real binary with -devices and checks the
// fleet is live end to end: exact scores over HTTP, a service.fleet section
// in /statsz naming every member, per-device gauges in /metricsz, and a
// clean SIGTERM exit. Skipped with -short (it builds and runs the binary).
func TestFleetFlagsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "swaserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-backend", "bitwise-sim", // the fleet shards the simulated GPU tiers
		"-ops-addr", "127.0.0.1:0",
		"-devices", "3",
		"-device-specs", "titanx,titanx-half",
		"-quarantine-after", "3",
		"-probe-interval", "100ms",
		"-grace", "10s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listening line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	base := "http://" + line[strings.LastIndex(line, " ")+1:]
	if !sc.Scan() {
		t.Fatalf("no ops listening line on stdout; stderr:\n%s", stderr.String())
	}
	line = sc.Text()
	opsBase := "http://" + line[strings.LastIndex(line, " ")+1:]
	go io.Copy(io.Discard, stdout)

	rng := rand.New(rand.NewPCG(31, 0))
	pairs := dna.RandomPairs(rng, 64, 8, 16)
	req := server.AlignRequest{Pairs: make([]server.PairJSON, len(pairs))}
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		req.Pairs[i] = server.PairJSON{X: p.X.String(), Y: p.Y.String()}
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align = %d: %s", resp.StatusCode, raw)
	}
	var res server.AlignResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}

	var st server.StatszResponse
	if err := getJSON(base+"/statsz", &st); err != nil {
		t.Fatal(err)
	}
	if st.Service.Fleet == nil {
		t.Fatalf("/statsz has no fleet section: %+v", st.Service)
	}
	if n := len(st.Service.Fleet.Devices); n != 4 {
		t.Fatalf("fleet has %d members, want 3 GPUs + cpu", n)
	}
	if st.Service.Fleet.Shards == 0 {
		t.Fatal("fleet served the batch without sharding")
	}

	mresp, err := http.Get(opsBase + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, m := range []string{
		`fleet_device_state{device="gpu0"}`,
		`fleet_device_state{device="gpu2"}`,
		`fleet_device_state{device="cpu"}`,
		"fleet_shards_total",
	} {
		if !strings.Contains(string(metrics), m) {
			t.Fatalf("/metricsz missing %q:\n%s", m, metrics)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("swaserver exited non-zero: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("swaserver did not exit cleanly; stderr:\n%s", stderr.String())
	}
}
