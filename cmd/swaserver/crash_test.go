package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/server"
	"repro/internal/swa"
)

// buildSwaserver compiles the binary once per test into a temp dir.
func buildSwaserver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swaserver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// startSwaserver launches the binary and returns the process, its base URL
// (parsed from the listening line) and its captured stderr.
func startSwaserver(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no listening line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	go io.Copy(io.Discard, stdout)
	return cmd, "http://" + addr, &stderr
}

// TestSIGKILLCrashRecovery is the durability guarantee on the real binary:
// submit an async job, SIGKILL the server mid-job, restart it on the same
// data dir, and the job must complete with scores byte-identical to the CPU
// reference — with the chunks checkpointed before the kill skipped, not
// re-executed (proven twice: by the manager's counters and by a WAL audit
// for duplicate checkpoint records). The restarted server must then drain
// cleanly on SIGTERM. Skipped with -short (it builds and runs the binary).
func TestSIGKILLCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	bin := buildSwaserver(t)
	dataDir := t.TempDir()

	// Phase 1: every chunk spends ~200ms in the retry ladder (launch
	// failures, breaker off) before the CPU rung serves it — slow enough to
	// SIGKILL mid-job with checkpoints on disk.
	cmd, base, stderr := startSwaserver(t, bin,
		"-addr", "127.0.0.1:0",
		"-backend", "bitwise-sim", // fault-launch retry pacing needs the sim ladder
		"-data-dir", dataDir,
		"-wal-sync", "always",
		"-chunk-size", "4",
		"-job-concurrency", "1",
		"-fault-launch", "1",
		"-breaker-failures", "-1",
		"-max-attempts", "3",
		"-base-backoff", "50ms",
		"-max-backoff", "50ms",
	)
	defer cmd.Process.Kill()

	// 32 deterministic pairs = 8 chunks of 4.
	rng := rand.New(rand.NewPCG(31, 0))
	pairs := dna.RandomPairs(rng, 32, 8, 16)
	want := make([]int, len(pairs))
	req := server.JobSubmitRequest{Pairs: make([]server.PairJSON, len(pairs))}
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		req.Pairs[i] = server.PairJSON{X: p.X.String(), Y: p.Y.String()}
	}
	body, _ := json.Marshal(req)

	hr, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Idempotency-Key", "crash-e2e")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("submit: %v; stderr:\n%s", err, stderr.String())
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || snap.Chunks != 8 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, snap)
	}

	// Wait for at least 2 durable checkpoints, then SIGKILL — no drain, no
	// goodbye, the WAL is all that survives.
	if err := waitFor(30*time.Second, func() bool {
		var cur jobs.Snapshot
		return getJSON(base+"/jobs/"+snap.ID, &cur) == nil && cur.ChunksDone >= 2
	}); err != nil {
		t.Fatalf("no checkpoints before kill: %v; stderr:\n%s", err, stderr.String())
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is meaningless after SIGKILL

	// Phase 2: restart on the same data dir, now fault-free. Recovery must
	// requeue the job and finish only the unfinished chunks.
	cmd2, base2, stderr2 := startSwaserver(t, bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-wal-sync", "always",
		"-chunk-size", "4",
		"-job-concurrency", "1",
		"-grace", "10s",
	)
	defer cmd2.Process.Kill()

	if err := waitFor(30*time.Second, func() bool {
		var cur jobs.Snapshot
		return getJSON(base2+"/jobs/"+snap.ID, &cur) == nil && cur.State == jobstore.StateDone
	}); err != nil {
		t.Fatalf("job never completed after restart: %v; stderr:\n%s", err, stderr2.String())
	}

	// Scores must be byte-identical to the reference.
	var res server.JobResultResponse
	if err := getJSON(base2+"/jobs/"+snap.ID+"/result", &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(want) {
		t.Fatalf("result has %d scores, want %d", len(res.Scores), len(want))
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("recovered score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}

	// The counters must show a real resume: the job recovered, >= 2 chunks
	// skipped, and executed + skipped covering exactly the 8 chunks.
	var stats server.StatszResponse
	if err := getJSON(base2+"/statsz", &stats); err != nil {
		t.Fatal(err)
	}
	js := stats.Jobs
	if js == nil || js.Recovered != 1 {
		t.Fatalf("recovery stats: %+v", js)
	}
	if js.ChunksSkipped < 2 {
		t.Fatalf("only %d chunks skipped — checkpoints were re-executed", js.ChunksSkipped)
	}
	if js.ChunksExecuted+js.ChunksSkipped != 8 {
		t.Fatalf("executed %d + skipped %d != 8 chunks", js.ChunksExecuted, js.ChunksSkipped)
	}

	// The idempotency key survives the crash: re-sending answers 200 with
	// the same job, not a new 202.
	hr2, _ := http.NewRequest(http.MethodPost, base2+"/jobs", bytes.NewReader(body))
	hr2.Header.Set("Idempotency-Key", "crash-e2e")
	resp2, err := http.DefaultClient.Do(hr2)
	if err != nil {
		t.Fatal(err)
	}
	var dup jobs.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&dup); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || dup.ID != snap.ID {
		t.Fatalf("post-crash dedup: %d id=%s want %s", resp2.StatusCode, dup.ID, snap.ID)
	}

	// SIGTERM must still exit 0 with the job stack wired in.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd2.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("swaserver exited non-zero after SIGTERM: %v; stderr:\n%s", err, stderr2.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("swaserver did not exit; stderr:\n%s", stderr2.String())
	}

	// Final authority: replay the WAL and check no (job, chunk) was ever
	// checkpointed twice across the crash boundary.
	recs, _, err := jobstore.ScanDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if rec.Type != jobstore.RecChunk {
			continue
		}
		key := fmt.Sprintf("%s/%d", rec.Chunk.ID, rec.Chunk.Index)
		if seen[key] {
			t.Fatalf("chunk %s checkpointed twice", key)
		}
		seen[key] = true
	}
	if len(seen) != 8 {
		t.Fatalf("WAL holds %d chunk checkpoints, want 8", len(seen))
	}
}
