package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/server"
)

// buildCrashCorpus writes a deterministic on-disk corpus index with a few
// planted homologs of the returned query.
func buildCrashCorpus(t *testing.T, dir string, seqs int) dna.Seq {
	t.Helper()
	rng := rand.New(rand.NewPCG(73, 11))
	q := dna.RandSeq(rng, 64)
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
	b, err := corpus.NewBuilder(dir, corpus.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seqs; i++ {
		y := dna.RandSeq(rng, 128)
		if i%500 == 0 {
			cp := mut.Mutate(rng, q)
			if len(cp) > 128 {
				cp = cp[:128]
			}
			copy(y[rng.IntN(128-len(cp)+1):], cp)
		}
		if err := b.Add(fmt.Sprintf("seq-%06d", i), y); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSIGKILLSearchRecovery is the durability guarantee for search jobs
// on the real binary: submit a kind "search" job that scans the whole
// corpus on the scalar backend, SIGKILL the server mid-search, restart it
// on the same data dir with the striped backend, and the job must finish
// with hits byte-identical to a fresh synchronous /search — with the
// chunks checkpointed before the kill skipped, not re-executed (proven by
// the manager counters and a WAL audit). Skipped with -short.
func TestSIGKILLSearchRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary e2e in -short mode")
	}
	bin := buildSwaserver(t)
	dataDir := t.TempDir()
	corpusDir := filepath.Join(t.TempDir(), "corpus")
	const seqs = 20000
	q := buildCrashCorpus(t, corpusDir, seqs)

	// Phase 1: scalar scoring (cpu-ref) and scan-all params make each
	// 500-sequence chunk slow enough to SIGKILL with checkpoints on disk.
	cmd, base, stderr := startSwaserver(t, bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-wal-sync", "always",
		"-corpus", "ref="+corpusDir,
		"-search-backend", "cpu-ref",
		"-search-chunk-size", "500",
		"-job-concurrency", "1",
	)
	defer cmd.Process.Kill()

	req := server.JobSubmitRequest{
		Kind:        jobstore.KindSearch,
		Corpus:      "ref",
		Query:       q.String(),
		TopK:        10,
		MinKmerHits: -1, // scan everything: 40 predictable chunks
		MaxEdits:    -1,
	}
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Idempotency-Key", "search-crash-e2e")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("submit: %v; stderr:\n%s", err, stderr.String())
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || snap.Kind != jobstore.KindSearch ||
		snap.Chunks != seqs/500 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, snap)
	}

	// Wait for ≥2 durable checkpoints but not completion, then SIGKILL.
	if err := waitFor(60*time.Second, func() bool {
		var cur jobs.Snapshot
		return getJSON(base+"/jobs/"+snap.ID, &cur) == nil && cur.ChunksDone >= 2
	}); err != nil {
		t.Fatalf("no checkpoints before kill: %v; stderr:\n%s", err, stderr.String())
	}
	var atKill jobs.Snapshot
	if err := getJSON(base+"/jobs/"+snap.ID, &atKill); err != nil {
		t.Fatal(err)
	}
	if atKill.State.Terminal() {
		t.Fatalf("job finished before it could be killed: %+v (raise seqs or lower chunk size)", atKill)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: restart on the same data dir with a different (but exact)
	// scoring backend. The fingerprint pinned in the WAL still matches the
	// corpus, so the job resumes and must produce the identical top-K.
	cmd2, base2, stderr2 := startSwaserver(t, bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-wal-sync", "always",
		"-corpus", "ref="+corpusDir,
		"-search-backend", "striped",
		"-search-chunk-size", "500",
		"-job-concurrency", "1",
		"-grace", "10s",
	)
	defer cmd2.Process.Kill()

	if err := waitFor(60*time.Second, func() bool {
		var cur jobs.Snapshot
		return getJSON(base2+"/jobs/"+snap.ID, &cur) == nil && cur.State == jobstore.StateDone
	}); err != nil {
		t.Fatalf("job never completed after restart: %v; stderr:\n%s", err, stderr2.String())
	}

	// The resumed job's hits must be byte-identical to an uninterrupted
	// synchronous search over the same corpus and params.
	var res server.SearchJobResultResponse
	if err := getJSON(base2+"/jobs/"+snap.ID+"/result", &res); err != nil {
		t.Fatal(err)
	}
	sreq, _ := json.Marshal(server.SearchRequest{
		Query: q.String(), TopK: 10, MinKmerHits: -1, MaxEdits: -1,
	})
	sresp, err := http.Post(base2+"/search", "application/json", bytes.NewReader(sreq))
	if err != nil {
		t.Fatal(err)
	}
	var sync server.SearchResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sync); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/search: %d", sresp.StatusCode)
	}
	gotJSON, _ := json.Marshal(res.Hits)
	wantJSON, _ := json.Marshal(sync.Hits)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("resumed hits %s != uninterrupted %s", gotJSON, wantJSON)
	}
	if len(res.Hits) != 10 {
		t.Fatalf("resumed job returned %d hits, want 10", len(res.Hits))
	}

	// The counters must show a real resume: the job recovered, the
	// pre-kill checkpoints skipped, and executed + skipped covering
	// exactly the chunk count.
	var stats server.StatszResponse
	if err := getJSON(base2+"/statsz", &stats); err != nil {
		t.Fatal(err)
	}
	js := stats.Jobs
	if js == nil || js.Recovered != 1 {
		t.Fatalf("recovery stats: %+v", js)
	}
	if js.ChunksSkipped < 2 {
		t.Fatalf("only %d chunks skipped — checkpoints were re-executed", js.ChunksSkipped)
	}
	if js.ChunksExecuted+js.ChunksSkipped != int64(snap.Chunks) {
		t.Fatalf("executed %d + skipped %d != %d chunks",
			js.ChunksExecuted, js.ChunksSkipped, snap.Chunks)
	}
	if stats.Search == nil || len(stats.Search.Corpora) != 1 ||
		stats.Search.Corpora[0].Seqs != seqs {
		t.Fatalf("statsz search section: %+v", stats.Search)
	}

	// SIGTERM must still exit 0 with the search stack wired in.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd2.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("swaserver exited non-zero after SIGTERM: %v; stderr:\n%s", err, stderr2.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("swaserver did not exit; stderr:\n%s", stderr2.String())
	}

	// Final authority: replay the WAL and check no (job, chunk) was ever
	// checkpointed twice across the crash boundary.
	recs, _, err := jobstore.ScanDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if rec.Type != jobstore.RecChunk {
			continue
		}
		key := fmt.Sprintf("%s/%d", rec.Chunk.ID, rec.Chunk.Index)
		if seen[key] {
			t.Fatalf("chunk %s checkpointed twice", key)
		}
		seen[key] = true
	}
	if len(seen) != snap.Chunks {
		t.Fatalf("WAL holds %d chunk checkpoints, want %d", len(seen), snap.Chunks)
	}
}
