// Command swalign aligns two DNA sequences with the Smith-Waterman
// algorithm and prints the optimal local alignment, optionally with the
// full scoring matrix (the paper's Table II view) and the wavefront
// schedule (Table III).
//
// Usage:
//
//	swalign [-match 2] [-mismatch 1] [-gap 1] [-matrix] [-schedule] X Y
//	swalign -demo
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/dna"
	"repro/internal/swa"
)

func main() {
	match := flag.Int("match", 2, "match reward c1")
	mismatch := flag.Int("mismatch", 1, "mismatch penalty c2 (magnitude)")
	gap := flag.Int("gap", 1, "gap penalty (magnitude)")
	matrix := flag.Bool("matrix", false, "print the full scoring matrix")
	schedule := flag.Bool("schedule", false, "print the wavefront schedule (Table III)")
	demo := flag.Bool("demo", false, "run the paper's Table II example (X=TACTG, Y=GAACTGA)")
	flag.Parse()

	var xStr, yStr string
	if *demo {
		xStr, yStr = "TACTG", "GAACTGA"
		*matrix = true
		*schedule = true
	} else {
		if flag.NArg() != 2 {
			flag.PrintDefaults()
			cli.Exitf(2, "usage: swalign [flags] X Y   (or swalign -demo)")
		}
		xStr, yStr = flag.Arg(0), flag.Arg(1)
	}

	x, err := dna.Parse(xStr)
	if err != nil {
		cli.Die(fmt.Errorf("pattern: %w", err))
	}
	y, err := dna.Parse(yStr)
	if err != nil {
		cli.Die(fmt.Errorf("text: %w", err))
	}
	sc := swa.Scoring{Match: *match, Mismatch: *mismatch, Gap: *gap}
	cli.Check(sc.Validate())

	if *matrix {
		d := swa.Matrix(x, y, sc)
		fmt.Printf("      ")
		for _, c := range yStr {
			fmt.Printf("%3c", c)
		}
		fmt.Println()
		for i, row := range d {
			if i == 0 {
				fmt.Printf("   ")
			} else {
				fmt.Printf("%2c ", xStr[i-1])
			}
			for _, v := range row {
				fmt.Printf("%3d", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *schedule {
		tab := swa.ScheduleTable(len(x), len(y))
		fmt.Println("wavefront schedule (anti-diagonal step per cell):")
		for _, row := range tab {
			for _, v := range row {
				fmt.Printf("%4d", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	a := swa.Align(x, y, sc)
	fmt.Println(a)
	fmt.Printf("identity %.1f%%  matches %d  mismatches %d  gaps %d\n",
		a.Identity()*100, a.Matches, a.Mismatches, a.Gaps)
}
