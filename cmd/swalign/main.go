// Command swalign aligns two DNA sequences with the Smith-Waterman
// algorithm and prints the optimal local alignment, optionally with the
// full scoring matrix (the paper's Table II view) and the wavefront
// schedule (Table III).
//
// Usage:
//
//	swalign [-match 2] [-mismatch 1] [-gap 1] [-matrix] [-schedule] [-json] X Y
//	swalign -demo
//
// With -json the result (and, if requested, the matrix and schedule) is
// printed as a single JSON document instead of the text rendering.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/dna"
	"repro/internal/swa"
)

// alignJSON is the -json wire form: stable snake_case names, with the
// matrix and schedule present only when their flags asked for them.
type alignJSON struct {
	X         string        `json:"x"`
	Y         string        `json:"y"`
	Scoring   scoringJSON   `json:"scoring"`
	Alignment alignmentJSON `json:"alignment"`
	Matrix    [][]int       `json:"matrix,omitempty"`
	Schedule  [][]int       `json:"schedule,omitempty"`
}

type scoringJSON struct {
	Match    int `json:"match"`
	Mismatch int `json:"mismatch"`
	Gap      int `json:"gap"`
}

type alignmentJSON struct {
	Score      int     `json:"score"`
	XStart     int     `json:"x_start"`
	XEnd       int     `json:"x_end"`
	YStart     int     `json:"y_start"`
	YEnd       int     `json:"y_end"`
	AlignedX   string  `json:"aligned_x"`
	AlignedY   string  `json:"aligned_y"`
	Matches    int     `json:"matches"`
	Mismatches int     `json:"mismatches"`
	Gaps       int     `json:"gaps"`
	Identity   float64 `json:"identity"`
}

func toAlignmentJSON(a swa.Alignment) alignmentJSON {
	return alignmentJSON{
		Score:  a.Score,
		XStart: a.XStart, XEnd: a.XEnd,
		YStart: a.YStart, YEnd: a.YEnd,
		AlignedX: a.AlignedX, AlignedY: a.AlignedY,
		Matches: a.Matches, Mismatches: a.Mismatches, Gaps: a.Gaps,
		Identity: a.Identity(),
	}
}

func main() {
	match := flag.Int("match", 2, "match reward c1")
	mismatch := flag.Int("mismatch", 1, "mismatch penalty c2 (magnitude)")
	gap := flag.Int("gap", 1, "gap penalty (magnitude)")
	matrix := flag.Bool("matrix", false, "print the full scoring matrix")
	schedule := flag.Bool("schedule", false, "print the wavefront schedule (Table III)")
	demo := flag.Bool("demo", false, "run the paper's Table II example (X=TACTG, Y=GAACTGA)")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	flag.Parse()

	var xStr, yStr string
	if *demo {
		xStr, yStr = "TACTG", "GAACTGA"
		*matrix = true
		*schedule = true
	} else {
		if flag.NArg() != 2 {
			flag.PrintDefaults()
			cli.Exitf(2, "usage: swalign [flags] X Y   (or swalign -demo)")
		}
		xStr, yStr = flag.Arg(0), flag.Arg(1)
	}

	x, err := dna.Parse(xStr)
	if err != nil {
		cli.Die(fmt.Errorf("pattern: %w", err))
	}
	y, err := dna.Parse(yStr)
	if err != nil {
		cli.Die(fmt.Errorf("text: %w", err))
	}
	sc := swa.Scoring{Match: *match, Mismatch: *mismatch, Gap: *gap}
	if err := sc.Validate(); err != nil {
		flag.PrintDefaults()
		cli.Exitf(2, "swalign: %v", err)
	}

	if *asJSON {
		out := alignJSON{
			X: xStr, Y: yStr,
			Scoring:   scoringJSON{Match: sc.Match, Mismatch: sc.Mismatch, Gap: sc.Gap},
			Alignment: toAlignmentJSON(swa.Align(x, y, sc)),
		}
		if *matrix {
			out.Matrix = swa.Matrix(x, y, sc)
		}
		if *schedule {
			out.Schedule = swa.ScheduleTable(len(x), len(y))
		}
		cli.Check(cli.PrintJSON(out))
		return
	}

	if *matrix {
		d := swa.Matrix(x, y, sc)
		fmt.Printf("      ")
		for _, c := range yStr {
			fmt.Printf("%3c", c)
		}
		fmt.Println()
		for i, row := range d {
			if i == 0 {
				fmt.Printf("   ")
			} else {
				fmt.Printf("%2c ", xStr[i-1])
			}
			for _, v := range row {
				fmt.Printf("%3d", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *schedule {
		tab := swa.ScheduleTable(len(x), len(y))
		fmt.Println("wavefront schedule (anti-diagonal step per cell):")
		for _, row := range tab {
			for _, v := range row {
				fmt.Printf("%4d", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	a := swa.Align(x, y, sc)
	fmt.Println(a)
	fmt.Printf("identity %.1f%%  matches %d  mismatches %d  gaps %d\n",
		a.Identity()*100, a.Matches, a.Mismatches, a.Gaps)
}
