// Command dbfilter runs the paper's motivating use case end to end: screen
// a database of texts against a query pattern with the BPBC bulk engine,
// keep the entries whose maximum local-alignment score exceeds a threshold
// τ, and print their detailed CPU alignments.
//
// The database is either a FASTA file of equal-length sequences (-db) or a
// synthetic one generated on the fly (-synthetic N), in which a fraction of
// entries carries a mutated copy of the query.
//
// Usage:
//
//	dbfilter -query ACGT... [-db db.fasta | -synthetic 1024] [-tau T] [-lanes 32] [-json]
//
// With -json the screening summary and hits are printed as one JSON
// document instead of the text rendering.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro/internal/bpbc"
	"repro/internal/cli"
	"repro/internal/dna"
	"repro/internal/swa"
)

// screenJSON is the -json wire form: stable snake_case names, duration in
// milliseconds, hits always a list (possibly empty, never null).
type screenJSON struct {
	Entries   int       `json:"entries"`
	M         int       `json:"m"`
	N         int       `json:"n"`
	Tau       int       `json:"tau"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Hits      []hitJSON `json:"hits"`
}

type hitJSON struct {
	Name       string  `json:"name"`
	Index      int     `json:"index"`
	Score      int     `json:"score"`
	Strand     string  `json:"strand"`
	AlignScore int     `json:"align_score"`
	AlignedX   string  `json:"aligned_x"`
	AlignedY   string  `json:"aligned_y"`
	Identity   float64 `json:"identity"`
}

func main() {
	query := flag.String("query", "", "query pattern (ACGT letters)")
	dbPath := flag.String("db", "", "FASTA file of equal-length database sequences")
	synthetic := flag.Int("synthetic", 0, "generate N synthetic database entries instead of -db")
	synLen := flag.Int("synlen", 1024, "synthetic entry length")
	plant := flag.Float64("plant", 0.05, "fraction of synthetic entries carrying a mutated copy of the query")
	tau := flag.Int("tau", 0, "score threshold τ (default: 3/4 of the maximum score)")
	lanes := flag.Int("lanes", 32, "BPBC lane width: 32 or 64")
	both := flag.Bool("both", false, "also screen the reverse complement of the query (both strands)")
	workers := flag.Int("workers", 1, "lane groups scored concurrently")
	seed := flag.Uint64("seed", 42, "synthetic generator seed")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	flag.Parse()

	if flag.NArg() != 0 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: unexpected arguments %v", flag.Args())
	}
	if *query == "" {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: -query is required")
	}
	if *lanes != 32 && *lanes != 64 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: -lanes must be 32 or 64, got %d", *lanes)
	}
	if *dbPath != "" && *synthetic > 0 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: -db and -synthetic are mutually exclusive")
	}
	q, err := dna.Parse(*query)
	if err != nil {
		cli.Die(fmt.Errorf("query: %w", err))
	}

	// Ctrl-C / SIGTERM aborts between screening passes.
	ctx, stop := cli.SignalContext()
	defer stop()

	var names []string
	var texts []dna.Seq
	switch {
	case *dbPath != "":
		f, err := os.Open(*dbPath)
		cli.Check(err)
		recs, err := dna.ReadFASTA(f)
		f.Close()
		cli.Check(err)
		for _, r := range recs {
			names = append(names, r.Name)
			texts = append(texts, r.Seq)
		}
	case *synthetic > 0:
		rng := rand.New(rand.NewPCG(*seed, 0))
		mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
		for i := 0; i < *synthetic; i++ {
			t := dna.RandSeq(rng, *synLen)
			if rng.Float64() < *plant {
				c := mut.Mutate(rng, q)
				if len(c) > len(t) {
					c = c[:len(t)]
				}
				copy(t[rng.IntN(len(t)-len(c)+1):], c)
			}
			names = append(names, fmt.Sprintf("synthetic-%04d", i))
			texts = append(texts, t)
		}
	default:
		cli.Exitf(2, "dbfilter: need -db or -synthetic")
	}
	if len(texts) == 0 {
		cli.Exitf(1, "dbfilter: empty database")
	}

	pairs := make([]dna.Pair, len(texts))
	for i, t := range texts {
		pairs[i] = dna.Pair{X: q, Y: t}
	}
	threshold := *tau
	if threshold == 0 {
		threshold = swa.PaperScoring.MaxScore(len(q)) * 3 / 4
	}

	screen := func(pairs []dna.Pair) ([]bpbc.ScreenHit, error) {
		opt := bpbc.Options{Workers: *workers}
		switch *lanes {
		case 32:
			return bpbc.ScreenAndAlign[uint32](pairs, threshold, opt)
		case 64:
			return bpbc.ScreenAndAlign[uint64](pairs, threshold, opt)
		}
		return nil, fmt.Errorf("dbfilter: -lanes must be 32 or 64")
	}

	start := time.Now()
	hits, err := screen(pairs)
	cli.Check(err)
	cli.Check(ctx.Err())
	strand := make([]byte, len(hits))
	for i := range hits {
		strand[i] = '+'
	}
	if *both {
		rcPairs := make([]dna.Pair, len(texts))
		rc := q.ReverseComplement()
		for i, t := range texts {
			rcPairs[i] = dna.Pair{X: rc, Y: t}
		}
		rcHits, err := screen(rcPairs)
		cli.Check(err)
		cli.Check(ctx.Err())
		for _, h := range rcHits {
			hits = append(hits, h)
			strand = append(strand, '-')
		}
	}
	elapsed := time.Since(start)

	if *asJSON {
		out := screenJSON{
			Entries: len(pairs), M: len(q), N: len(texts[0]),
			Tau:       threshold,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
			Hits:      []hitJSON{},
		}
		for i, h := range hits {
			out.Hits = append(out.Hits, hitJSON{
				Name: names[h.Index], Index: h.Index,
				Score: h.Score, Strand: string(strand[i]),
				AlignScore: h.Alignment.Score,
				AlignedX:   h.Alignment.AlignedX,
				AlignedY:   h.Alignment.AlignedY,
				Identity:   h.Alignment.Identity(),
			})
		}
		cli.Check(cli.PrintJSON(out))
		return
	}

	fmt.Printf("screened %d entries (m=%d, n=%d) at τ=%d in %v: %d hit(s)\n\n",
		len(pairs), len(q), len(texts[0]), threshold, elapsed.Round(time.Millisecond), len(hits))
	for i, h := range hits {
		fmt.Printf("--- %s (score %d, strand %c) ---\n%s\n\n",
			names[h.Index], h.Score, strand[i], h.Alignment)
	}
}
