// Command dbfilter runs the paper's motivating use case end to end:
// screen a database of sequences against a query and report the best
// local-alignment hits.
//
// The modern path works on a persistent corpus index (internal/corpus,
// the same format swaserver mounts with -corpus):
//
//	dbfilter -build -index ./idx [-db db.fasta | -synthetic 100000]   build the index
//	dbfilter -index ./idx -query ACGT... [-topk 10] [-json]           ranked top-K search
//
// A search runs the two-stage query path: a k-mer posting-list prefilter
// (-minhits, with a bitap edit-distance refinement bounded by -maxedits)
// narrows the corpus, then the exact backend named by -search-backend
// (default striped) scores the survivors and a bounded heap keeps the
// top -topk. -minhits -1 disables the prefilter (exact brute force) —
// useful as an oracle, since both modes return identical hits. When
// -index names a directory without an index and a source (-db or
// -synthetic) is given, the index is built first, then searched.
//
// The legacy path (no -index) keeps the original BPBC bulk screening:
// score every entry with the bitwise-parallel engine, keep entries whose
// maximum score exceeds a threshold τ, and print their detailed CPU
// alignments.
//
//	dbfilter -query ACGT... [-db db.fasta | -synthetic 1024] [-tau T] [-lanes 32]
//
// With -json either path prints one JSON document instead of the text
// rendering.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/bpbc"
	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/pipeline"
	"repro/internal/swa"
)

// screenJSON is the legacy-path -json wire form: stable snake_case names,
// duration in milliseconds, hits always a list (possibly empty, never null).
type screenJSON struct {
	Entries   int       `json:"entries"`
	M         int       `json:"m"`
	N         int       `json:"n"`
	Tau       int       `json:"tau"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Hits      []hitJSON `json:"hits"`
}

type hitJSON struct {
	Name       string  `json:"name"`
	Index      int     `json:"index"`
	Score      int     `json:"score"`
	Strand     string  `json:"strand"`
	AlignScore int     `json:"align_score"`
	AlignedX   string  `json:"aligned_x"`
	AlignedY   string  `json:"aligned_y"`
	Identity   float64 `json:"identity"`
}

// searchJSON is the index-path -json wire form: the ranked hits plus the
// prefilter funnel, mirroring the server's /search response.
type searchJSON struct {
	Index     string       `json:"index"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Hits      []corpus.Hit `json:"hits"`
	Stats     corpus.Stats `json:"stats"`
}

// buildJSON is the -build -json summary.
type buildJSON struct {
	Index       string  `json:"index"`
	Seqs        int     `json:"seqs"`
	TotalBases  int64   `json:"total_bases"`
	K           int     `json:"k"`
	Fingerprint string  `json:"fingerprint"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

func main() {
	query := flag.String("query", "", "query pattern (ACGT letters)")
	dbPath := flag.String("db", "", "FASTA file of database sequences")
	synthetic := flag.Int("synthetic", 0, "generate N synthetic database entries instead of -db")
	synLen := flag.Int("synlen", 1024, "synthetic entry length")
	plant := flag.Float64("plant", 0.05, "fraction of synthetic entries carrying a mutated copy of the query")
	seed := flag.Uint64("seed", 42, "synthetic generator seed")
	asJSON := flag.Bool("json", false, "print the result as JSON")

	index := flag.String("index", "", "corpus index directory (enables the indexed search path)")
	build := flag.Bool("build", false, "build the index from -db/-synthetic and exit (requires -index)")
	kmer := flag.Int("k", 0, "index k-mer length when building (0 = default)")
	topK := flag.Int("topk", 10, "ranked hits to return from an indexed search")
	minHits := flag.Int("minhits", 0, "distinct query k-mers a sequence must share to pass the prefilter (0 = default, -1 = scan all)")
	maxEdits := flag.Int("maxedits", 0, "bitap refinement edit budget (0 = default, -1 = disabled)")
	searchBackend := flag.String("search-backend", alignsvc.BackendStriped,
		"exact scoring backend for the indexed search")

	tau := flag.Int("tau", 0, "legacy screening: score threshold τ (default: 3/4 of the maximum score)")
	lanes := flag.Int("lanes", 32, "legacy screening: BPBC lane width, 32 or 64")
	both := flag.Bool("both", false, "legacy screening: also screen the reverse complement of the query")
	workers := flag.Int("workers", 1, "legacy screening: lane groups scored concurrently")
	flag.Parse()

	if flag.NArg() != 0 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: unexpected arguments %v", flag.Args())
	}
	if *lanes != 32 && *lanes != 64 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: -lanes must be 32 or 64, got %d", *lanes)
	}
	if *dbPath != "" && *synthetic > 0 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: -db and -synthetic are mutually exclusive")
	}
	if *build && *index == "" {
		cli.Exitf(2, "dbfilter: -build requires -index")
	}

	// Ctrl-C / SIGTERM aborts between passes.
	ctx, stop := cli.SignalContext()
	defer stop()

	var q dna.Seq
	if *query != "" {
		var err error
		q, err = dna.Parse(*query)
		if err != nil {
			cli.Die(fmt.Errorf("query: %w", err))
		}
	}

	if *index != "" {
		runIndexed(ctx, q, *index, *build, *kmer, *topK, *minHits, *maxEdits,
			*searchBackend, *dbPath, *synthetic, *synLen, *plant, *seed, *asJSON)
		return
	}

	// Legacy BPBC screening path below.
	if len(q) == 0 {
		flag.PrintDefaults()
		cli.Exitf(2, "dbfilter: -query is required")
	}
	names, texts := loadDatabase(q, *dbPath, *synthetic, *synLen, *plant, *seed)
	if len(texts) == 0 {
		cli.Exitf(1, "dbfilter: empty database")
	}

	pairs := make([]dna.Pair, len(texts))
	for i, t := range texts {
		pairs[i] = dna.Pair{X: q, Y: t}
	}
	threshold := *tau
	if threshold == 0 {
		threshold = swa.PaperScoring.MaxScore(len(q)) * 3 / 4
	}

	screen := func(pairs []dna.Pair) ([]bpbc.ScreenHit, error) {
		opt := bpbc.Options{Workers: *workers}
		switch *lanes {
		case 32:
			return bpbc.ScreenAndAlign[uint32](pairs, threshold, opt)
		case 64:
			return bpbc.ScreenAndAlign[uint64](pairs, threshold, opt)
		}
		return nil, fmt.Errorf("dbfilter: -lanes must be 32 or 64")
	}

	start := time.Now()
	hits, err := screen(pairs)
	cli.Check(err)
	cli.Check(ctx.Err())
	strand := make([]byte, len(hits))
	for i := range hits {
		strand[i] = '+'
	}
	if *both {
		rcPairs := make([]dna.Pair, len(texts))
		rc := q.ReverseComplement()
		for i, t := range texts {
			rcPairs[i] = dna.Pair{X: rc, Y: t}
		}
		rcHits, err := screen(rcPairs)
		cli.Check(err)
		cli.Check(ctx.Err())
		for _, h := range rcHits {
			hits = append(hits, h)
			strand = append(strand, '-')
		}
	}
	elapsed := time.Since(start)

	if *asJSON {
		out := screenJSON{
			Entries: len(pairs), M: len(q), N: len(texts[0]),
			Tau:       threshold,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
			Hits:      []hitJSON{},
		}
		for i, h := range hits {
			out.Hits = append(out.Hits, hitJSON{
				Name: names[h.Index], Index: h.Index,
				Score: h.Score, Strand: string(strand[i]),
				AlignScore: h.Alignment.Score,
				AlignedX:   h.Alignment.AlignedX,
				AlignedY:   h.Alignment.AlignedY,
				Identity:   h.Alignment.Identity(),
			})
		}
		cli.Check(cli.PrintJSON(out))
		return
	}

	fmt.Printf("screened %d entries (m=%d, n=%d) at τ=%d in %v: %d hit(s)\n\n",
		len(pairs), len(q), len(texts[0]), threshold, elapsed.Round(time.Millisecond), len(hits))
	for i, h := range hits {
		fmt.Printf("--- %s (score %d, strand %c) ---\n%s\n\n",
			names[h.Index], h.Score, strand[i], h.Alignment)
	}
}

// loadDatabase reads the FASTA file or generates the synthetic database
// (planting mutated copies of q when q is non-empty).
func loadDatabase(q dna.Seq, dbPath string, synthetic, synLen int, plant float64, seed uint64) ([]string, []dna.Seq) {
	var names []string
	var texts []dna.Seq
	switch {
	case dbPath != "":
		f, err := os.Open(dbPath)
		cli.Check(err)
		recs, err := dna.ReadFASTA(f)
		f.Close()
		cli.Check(err)
		for _, r := range recs {
			names = append(names, r.Name)
			texts = append(texts, r.Seq)
		}
	case synthetic > 0:
		rng := rand.New(rand.NewPCG(seed, 0))
		mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
		for i := 0; i < synthetic; i++ {
			t := dna.RandSeq(rng, synLen)
			if len(q) > 0 && rng.Float64() < plant {
				c := mut.Mutate(rng, q)
				if len(c) > len(t) {
					c = c[:len(t)]
				}
				copy(t[rng.IntN(len(t)-len(c)+1):], c)
			}
			names = append(names, fmt.Sprintf("synthetic-%04d", i))
			texts = append(texts, t)
		}
	default:
		cli.Exitf(2, "dbfilter: need -db or -synthetic")
	}
	return names, texts
}

// runIndexed is the corpus-index path: build and/or open the index, then
// (unless -build) run a ranked top-K search and print the hits.
func runIndexed(ctx context.Context, q dna.Seq, dir string, buildOnly bool, k, topK, minHits, maxEdits int,
	backendName, dbPath string, synthetic, synLen int, plant float64, seed uint64, asJSON bool) {
	c, err := corpus.Open(dir)
	switch {
	case err == nil:
		if buildOnly {
			cli.Exitf(2, "dbfilter: -build: %s already holds an index (fingerprint %s)", dir, c.Fingerprint())
		}
	case errors.Is(err, os.ErrNotExist):
		// Build-or-open: no index yet, so a source must be supplied.
		if dbPath == "" && synthetic == 0 {
			cli.Exitf(2, "dbfilter: %s holds no index and no -db/-synthetic source was given", dir)
		}
		names, texts := loadDatabase(q, dbPath, synthetic, synLen, plant, seed)
		recs := make([]dna.Record, len(texts))
		for i := range texts {
			recs[i] = dna.Record{Name: names[i], Seq: texts[i]}
		}
		start := time.Now()
		c, err = corpus.Build(dir, recs, corpus.IndexOptions{K: k})
		cli.Check(err)
		elapsed := time.Since(start)
		if buildOnly {
			if asJSON {
				cli.Check(cli.PrintJSON(buildJSON{
					Index: dir, Seqs: c.Len(), TotalBases: c.TotalBases(),
					K: c.K(), Fingerprint: c.Fingerprint(),
					ElapsedMS: float64(elapsed) / float64(time.Millisecond),
				}))
			} else {
				fmt.Printf("built index %s: %d sequence(s), %d base(s), k=%d, fingerprint %s in %v\n",
					dir, c.Len(), c.TotalBases(), c.K(), c.Fingerprint(), elapsed.Round(time.Millisecond))
			}
			return
		}
	default:
		cli.Die(fmt.Errorf("dbfilter: open index: %w", err))
	}

	if len(q) == 0 {
		cli.Exitf(2, "dbfilter: -query is required for an indexed search")
	}
	be, err := alignsvc.NewBackend(backendName, pipeline.Config{}, 0)
	if err != nil {
		cli.Die(fmt.Errorf("dbfilter: -search-backend: %w", err))
	}
	s := corpus.NewSearcher(c, be, nil)
	p := corpus.Params{TopK: topK, MinKmerHits: minHits, MaxEdits: maxEdits}
	start := time.Now()
	res, err := s.Search(ctx, q, p)
	cli.Check(err)
	elapsed := time.Since(start)

	if asJSON {
		cli.Check(cli.PrintJSON(searchJSON{
			Index:     dir,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
			Hits:      res.Hits,
			Stats:     res.Stats,
		}))
		return
	}
	st := res.Stats
	fmt.Printf("searched %d sequence(s) in %v: %d candidate(s) after prefilter (%.1f%% pass), %d cell(s) scored\n\n",
		st.Seqs, elapsed.Round(time.Millisecond), st.Candidates, 100*st.PassRate, st.Cells)
	for i, h := range res.Hits {
		fmt.Printf("%2d. %-24s id=%-8d score=%d\n", i+1, h.Name, h.ID, h.Score)
	}
	if len(res.Hits) == 0 {
		fmt.Println("no hits")
	}
}
