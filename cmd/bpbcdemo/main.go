// Command bpbcdemo walks through §II of the paper interactively: the
// straightforward string matching, its BPBC bulk counterpart on the paper's
// four-lane worked example, the Figure 1 bit-transpose trace, and the
// Table I operation-count comparison.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/dna"
	"repro/internal/match"
	"repro/internal/tables"
)

func main() {
	figure := flag.Int("figure", 0, "print only figure N (1); 0 = everything")
	flag.Parse()

	if *figure == 1 {
		fmt.Println(tables.RenderFigure1())
		return
	}
	if *figure != 0 {
		cli.Exitf(2, "bpbcdemo: only figure 1 exists")
	}

	fmt.Println("=== §II straightforward string matching ===")
	x := dna.MustParse("ATTCG")
	y := dna.MustParse("AAATTCGGGA")
	d, err := match.Straightforward(x, y)
	cli.Check(err)
	fmt.Printf("X=%s  Y=%s\nd = %v (0 marks an occurrence; the paper prints this vector as 110111)\n\n", x, y, d)

	fmt.Println("=== §II BPBC bulk matching, the paper's 4-lane example ===")
	xs := []dna.Seq{
		dna.MustParse("ATCGA"), dna.MustParse("TCGAC"),
		dna.MustParse("AAAAA"), dna.MustParse("TTTTT"),
	}
	ys := []dna.Seq{
		dna.MustParse("AATCGACA"), dna.MustParse("AATCGACA"),
		dna.MustParse("AAAAAAAA"), dna.MustParse("AATTTTTT"),
	}
	res, err := match.BulkSeqs[uint32](xs, ys)
	cli.Check(err)
	for j, w := range res.D {
		fmt.Printf("d[%d] = %04b   (paper prints the complement %04b — see EXPERIMENTS.md)\n",
			j, w&0xF, ^w&0xF)
	}
	for k := range xs {
		fmt.Printf("lane %d (%s in %s): occurrences at %v\n", k, xs[k], ys[k], res.LaneOffsets(k))
	}
	fmt.Println()

	fmt.Println(tables.RenderFigure1())
	fmt.Println(tables.RenderTableI())
}
