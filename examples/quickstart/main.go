// Quickstart: score and align two sequences, then bulk-score a small batch
// with the BPBC engine — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Single-pair alignment (the paper's Table II example).
	score, err := core.Score("TACTG", "GAACTGA", core.PaperScoring)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("max local-alignment score:", score)

	a, err := core.Align("TACTG", "GAACTGA", core.PaperScoring)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)
	fmt.Println()

	// Bulk scoring: 64 identical-shape pairs in one BPBC pass. Bit k of
	// every machine word carries pair k, so one sweep over the dynamic
	// program scores 32 pairs at a time (64 with Lanes: 64).
	pairs := make([]core.Pair, 64)
	for i := range pairs {
		pairs[i] = core.Pair{
			X: "ACGTACGTACGTACGT",
			Y: "TTTTACGTACGTACGTACGTTTTTGGGGCCCCAAAATTTT",
		}
	}
	// Give one pair a corrupted text so the scores differ.
	pairs[13].Y = "TTTTACGAACGAACGAACGATTTTGGGGCCCCAAAATTTT"

	res, err := core.Bulk(pairs, core.BulkOptions{Lanes: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk scores: pair 0 = %d, pair 13 = %d (corrupted), pair 63 = %d\n",
		res.Scores[0], res.Scores[13], res.Scores[63])
	fmt.Printf("stage times: W2B=%v SWA=%v B2W=%v\n",
		res.Timing.W2B, res.Timing.SWA, res.Timing.B2W)
}
