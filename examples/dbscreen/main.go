// dbscreen: the paper's motivating workload as a library example — screen a
// synthetic read database against a query with the BPBC bulk engine, then
// align the survivors in detail on the CPU (§III's two-phase design).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"repro/internal/core"
	"repro/internal/dna"
)

func main() {
	const (
		m       = 32   // query length
		n       = 512  // database entry length
		entries = 1024 // database size
	)
	rng := rand.New(rand.NewPCG(2017, 5))
	query := dna.RandSeq(rng, m)

	// Build a database where 3% of entries contain a noisy copy of the
	// query (5% substitutions, occasional indels).
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
	pairs := make([]core.Pair, entries)
	planted := 0
	for i := range pairs {
		text := dna.RandSeq(rng, n)
		if rng.Float64() < 0.03 {
			c := mut.Mutate(rng, query)
			if len(c) > n {
				c = c[:n]
			}
			copy(text[rng.IntN(n-len(c)+1):], c)
			planted++
		}
		pairs[i] = core.Pair{X: query.String(), Y: text.String()}
	}

	// Phase 1+2: bulk screen at τ = 3/4 of the maximum score, then CPU
	// traceback for survivors. 64-bit lanes: 64 entries per sweep.
	tau := core.PaperScoring.MaxScore(m) * 3 / 4
	hits, err := core.Screen(pairs, tau, core.BulkOptions{Lanes: 64, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %s\n", query)
	fmt.Printf("database: %d entries of length %d, %d with a planted homolog\n", entries, n, planted)
	fmt.Printf("screen at τ=%d: %d hit(s)\n\n", tau, len(hits))
	for _, h := range hits {
		region := h.Alignment
		fmt.Printf("entry %4d  score %3d  identity %5.1f%%  Y[%d:%d]\n",
			h.Index, h.Score, region.Identity()*100, region.YStart, region.YEnd)
	}
	if len(hits) > 0 {
		fmt.Println("\nbest alignment:")
		best := hits[0]
		for _, h := range hits[1:] {
			if h.Score > best.Score {
				best = h
			}
		}
		fmt.Println(best.Alignment)
	}
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("screen recovered", len(hits), "of", planted, "planted homologs (plus any chance hits)")
}
