// gameoflife: the paper's §I companion application of BPBC — Conway's Game
// of Life where each word operation advances 64 cells, with the neighbour
// count accumulated by the same bit-sliced adder the Smith-Waterman engine
// uses. Prints a glider travelling, then a throughput comparison.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"repro/internal/life"
)

func main() {
	// A glider on a small board, printed every two generations.
	g, err := life.NewGrid(16, 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range [][2]int{{1, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 2}} {
		g.Set(p[0], p[1], true)
	}
	for gen := 0; gen <= 8; gen += 2 {
		fmt.Printf("generation %d:\n%s\n", gen, g)
		g.Step()
		g.Step()
	}

	// Throughput: BPBC step vs cell-by-cell reference on a larger board.
	rng := rand.New(rand.NewPCG(42, 1))
	big, err := life.NewGrid(1024, 512)
	if err != nil {
		log.Fatal(err)
	}
	big.Randomize(rng, 0.3)
	naive := big.Clone()

	const gens = 20
	start := time.Now()
	for i := 0; i < gens; i++ {
		big.Step()
	}
	bpbcTime := time.Since(start)

	start = time.Now()
	for i := 0; i < gens; i++ {
		naive.StepNaive()
	}
	naiveTime := time.Since(start)

	if !big.Equal(naive) {
		log.Fatal("BPBC and naive evolution diverged")
	}
	cells := float64(1024*512) * gens
	fmt.Printf("%d generations of a 1024x512 board:\n", gens)
	fmt.Printf("  BPBC (64 cells/word op): %8v  (%.0f Mcells/s)\n",
		bpbcTime.Round(time.Millisecond), cells/bpbcTime.Seconds()/1e6)
	fmt.Printf("  naive (1 cell at a time): %8v  (%.0f Mcells/s)\n",
		naiveTime.Round(time.Millisecond), cells/naiveTime.Seconds()/1e6)
	fmt.Printf("  speedup: %.0fx — both boards identical after evolution ✓\n",
		float64(naiveTime)/float64(bpbcTime))
}
