// proteinscreen: the generic ε-bit engine on the 20-letter protein alphabet
// (ε = 5). The paper derives its circuits for general character width and
// evaluates ε=2 (DNA); this example exercises the same machinery where a
// character costs five planes — per cell only the mismatch flag grows.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/alphabet"
	"repro/internal/bpbc"
	"repro/internal/swa"
)

func main() {
	const m, n, entries = 24, 200, 256
	rng := rand.New(rand.NewPCG(11, 22))

	randProt := func(n int) alphabet.Seq {
		s := make(alphabet.Seq, n)
		for i := range s {
			s[i] = uint16(rng.IntN(alphabet.Protein.Size()))
		}
		return s
	}

	query := randProt(m)
	qs, err := alphabet.Protein.Decode(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query peptide (%d aa): %s\n", m, qs)

	// Database with 5%% planted homologs (3 point substitutions each).
	pairs := make([]alphabet.Pair, entries)
	planted := map[int]bool{}
	for i := range pairs {
		text := randProt(n)
		if rng.Float64() < 0.05 {
			c := append(alphabet.Seq(nil), query...)
			for s := 0; s < 3; s++ {
				c[rng.IntN(m)] = uint16(rng.IntN(alphabet.Protein.Size()))
			}
			copy(text[rng.IntN(n-m+1):], c)
			planted[i] = true
		}
		pairs[i] = alphabet.Pair{X: query, Y: text}
	}

	res, err := bpbc.BulkScoresGeneric[uint64](alphabet.Protein, pairs, bpbc.GenericOptions{})
	if err != nil {
		log.Fatal(err)
	}

	tau := swa.PaperScoring.MaxScore(m) * 2 / 3
	fmt.Printf("screened %d entries at τ=%d (ε=%d bit planes per character):\n\n",
		entries, tau, alphabet.Protein.Bits())
	hits := 0
	for i, s := range res.Scores {
		if s > tau {
			hits++
			mark := " "
			if planted[i] {
				mark = "planted"
			}
			fmt.Printf("  entry %3d  score %3d  %s\n", i, s, mark)
		}
	}
	fmt.Printf("\n%d hits, %d homologs planted\n", hits, len(planted))

	// Cross-check one hit against the scalar reference.
	for i := range pairs {
		want := alphabet.Score(pairs[i].X, pairs[i].Y, swa.PaperScoring)
		if res.Scores[i] != want {
			log.Fatalf("entry %d: bulk %d != reference %d", i, res.Scores[i], want)
		}
	}
	fmt.Println("all bulk scores verified against the scalar reference ✓")
}
