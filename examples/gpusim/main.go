// gpusim: run a batch through the simulated GPU pipeline (the paper's five
// steps on the cudasim substrate) and print the Table IV-style stage
// breakdown, comparing bitwise and wordwise kernels.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/dna"
	"repro/internal/pipeline"
)

func main() {
	const pairs, m, n = 256, 64, 512
	rng := rand.New(rand.NewPCG(7, 7))
	batch := dna.RandomPairs(rng, pairs, m, n)

	bw, err := pipeline.RunBitwise[uint32](context.Background(), batch, pipeline.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ww, err := pipeline.RunWordwise(context.Background(), batch, pipeline.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for i := range batch {
		if bw.Scores[i] != ww.Scores[i] {
			log.Fatalf("kernels disagree at pair %d: %d vs %d", i, bw.Scores[i], ww.Scores[i])
		}
	}

	fmt.Printf("simulated GPU run: %d pairs, m=%d, n=%d (functionally exact)\n\n", pairs, m, n)
	fmt.Printf("%-22s %10s %10s\n", "stage", "bitwise-32", "wordwise")
	row := func(name string, a, b any) { fmt.Printf("%-22s %10v %10v\n", name, a, b) }
	row("H2G (PCIe model)", bw.Times.H2G, ww.Times.H2G)
	row("W2B kernel", bw.Times.W2B, "-")
	row("SWA kernel", bw.Times.SWA, ww.Times.SWA)
	row("B2W kernel", bw.Times.B2W, "-")
	row("G2H (PCIe model)", bw.Times.G2H, ww.Times.G2H)
	row("total", bw.Times.Total(), ww.Times.Total())

	fmt.Printf("\nSWA kernel work (exact simulator tallies):\n")
	fmt.Printf("  bitwise : %12d ALU ops, %8d DRAM transactions, %8d shared cycles\n",
		bw.SWAStats.ALUOps, bw.SWAStats.GlobalTransactions, bw.SWAStats.SharedCycles)
	fmt.Printf("  wordwise: %12d ALU ops, %8d DRAM transactions, %8d shared cycles\n",
		ww.SWAStats.ALUOps, ww.SWAStats.GlobalTransactions, ww.SWAStats.SharedCycles)
	fmt.Printf("\nscores match the wordwise kernel on all %d pairs ✓\n", pairs)
	fmt.Printf("example scores: %v\n", bw.Scores[:8])
	fmt.Println("\nnote: at this tiny scale the bitwise kernel launches only",
		(pairs+31)/32, "blocks and cannot fill the simulated device, so the wordwise")
	fmt.Println("kernel (one block per pair) may win on wall clock; at the paper's 32K pairs")
	fmt.Println("the ordering reverses — run `swabench -table 4` for the full comparison.")
}
