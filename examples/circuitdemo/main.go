// circuitdemo: the BPBC idea made literal — compile the Smith-Waterman cell
// into an AND/OR/XOR/NOT netlist, evaluate it for 32 instances with single
// word operations, and compare gate counts with the paper's Theorem 6.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitslice"
	"repro/internal/circuit"
)

func main() {
	par := bitslice.Params{S: 9, Match: 2, Mismatch: 1, Gap: 1}

	folded, err := circuit.SWCellCircuit(par, true)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := circuit.SWCellCircuit(par, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SW cell as a combinational circuit (s=9, DNA characters):")
	fmt.Printf("  paper Theorem 6:     %4d operations (48s-18)\n", 48*par.S-18)
	fs, rs := folded.Stats(), raw.Stats()
	fmt.Printf("  raw netlist:         %4d gates (and=%d or=%d xor=%d andnot=%d not=%d)\n",
		rs.Ops(), rs.And, rs.Or, rs.Xor, rs.AndNot, rs.Not)
	fmt.Printf("  folded netlist:      %4d gates (constant propagation + sharing)\n", fs.Ops())
	fmt.Println()

	// Evaluate the circuit for 32 independent cells at once: inputs are
	// bit-sliced, one bit per instance per plane.
	up := bitslice.NewNum[uint32](par.S)
	left := bitslice.NewNum[uint32](par.S)
	diag := bitslice.NewNum[uint32](par.S)
	var xH, xL, yH, yL uint32
	for k := 0; k < 32; k++ {
		up.Set(k, uint(k))
		left.Set(k, uint(31-k))
		diag.Set(k, uint(k*3%29))
		// Even lanes compare 'A' with 'A' (all bits zero); odd lanes get a
		// low-bit mismatch ('A' vs 'T').
		if k%2 == 1 {
			yL |= 1 << uint(k)
		}
	}
	inputs := make([]uint32, 0, 3*par.S+4)
	inputs = append(inputs, up...)
	inputs = append(inputs, left...)
	inputs = append(inputs, diag...)
	inputs = append(inputs, xL, xH, yL, yH)
	out := circuit.Eval(folded, inputs)

	fmt.Println("one bulk evaluation computed all 32 cells:")
	result := bitslice.Num[uint32](out)
	for k := 0; k < 32; k += 8 {
		fmt.Printf("  lane %2d: max(0, %2d-1, %2d-1, %2d%+d) = %2d\n",
			k, up.Get(k), left.Get(k), diag.Get(k), wk(k), result.Get(k))
	}

	// Cross-check against the hand-written bit-sliced code.
	want := bitslice.NewNum[uint32](par.S)
	sc := bitslice.NewScratch[uint32](par.S)
	e := bitslice.MismatchMask(xH, xL, yH, yL)
	bitslice.SWCell(want, up, left, diag, e, par, sc)
	for k := 0; k < 32; k++ {
		if want.Get(k) != result.Get(k) {
			log.Fatalf("netlist and bit-sliced code disagree at lane %d", k)
		}
	}
	fmt.Println("\nnetlist output identical to the hand-written bit-sliced engine ✓")
}

func wk(k int) int {
	if k%2 == 0 {
		return 2 // match
	}
	return -1 // mismatch
}
