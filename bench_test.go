// Benchmark harness: one bench per table/figure of the paper's evaluation,
// plus the ablations called out in DESIGN.md §5. Absolute numbers depend on
// the host; the shapes (who wins, by what factor, scaling in n) are the
// reproduction targets and are asserted by the test suite in
// internal/tables. CPU benches run the quick-preset pair count; reported
// GCUPS are directly comparable with the paper's Table V.
package repro

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/alphabet"
	"repro/internal/bitap"
	"repro/internal/bitmat"
	"repro/internal/bitslice"
	"repro/internal/bpbc"
	"repro/internal/circuit"
	"repro/internal/dna"
	"repro/internal/life"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/swa"
	"repro/internal/tables"
	"repro/internal/workload"
)

// --- Table I: bit-transpose specialisation -------------------------------

// BenchmarkTableI measures the planner-specialised 32×32 transposes for the
// s values of Table I; the bitops metric is the plan's exact operation
// count (the table's content).
func BenchmarkTableI(b *testing.B) {
	for _, s := range []int{2, 4, 8, 9, 16, 32} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			plan := bitmat.CachedPlan(32, s, bitmat.ValuesToPlanes)
			a := make([]uint32, 32)
			for i := range a {
				a[i] = uint32(i) & (1<<uint(s) - 1)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitmat.Apply(plan, a)
			}
			b.ReportMetric(float64(plan.Counts().BitOps()), "bitops")
		})
	}
}

// --- Table II / III: the reference algorithm ------------------------------

// BenchmarkTableII scores the Table II example with the full-matrix
// reference.
func BenchmarkTableII(b *testing.B) {
	x := dna.MustParse(tables.TableIIExample.X)
	y := dna.MustParse(tables.TableIIExample.Y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := swa.Matrix(x, y, swa.PaperScoring)
		if d[5][6] != 8 {
			b.Fatal("Table II wrong")
		}
	}
}

// BenchmarkTableIII runs the wavefront (anti-diagonal) schedule on a
// realistic shape, confirming it matches the row-major order result.
func BenchmarkTableIII(b *testing.B) {
	spec := workload.Quick
	pairs := spec.Generate(1024)[:1]
	want := swa.Score(pairs[0].X, pairs[0].Y, swa.PaperScoring)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if swa.WavefrontScore(pairs[0].X, pairs[0].Y, swa.PaperScoring) != want {
			b.Fatal("wavefront disagrees")
		}
	}
}

// --- Table IV: the central experiment -------------------------------------

func benchCPUEngine(b *testing.B, n int, run func([]dna.Pair) (*bpbc.Result, error)) {
	b.Helper()
	spec := workload.Quick
	pairs := spec.Generate(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(pairs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perfmodel.GCUPS(spec.Pairs, spec.M, n, b.Elapsed()/time.Duration(max(1, b.N))), "GCUPS")
}

// BenchmarkTableIV_CPU measures the three CPU engines of Table IV on the
// quick preset (128 pairs, m=128). GCUPS compares directly with the paper's
// CPU column (≈0.76 for bitwise-64).
func BenchmarkTableIV_CPU(b *testing.B) {
	for _, n := range workload.Quick.NList {
		b.Run(fmt.Sprintf("bitwise32/n=%d", n), func(b *testing.B) {
			benchCPUEngine(b, n, func(p []dna.Pair) (*bpbc.Result, error) {
				return bpbc.BulkScores[uint32](p, bpbc.Options{})
			})
		})
		b.Run(fmt.Sprintf("bitwise64/n=%d", n), func(b *testing.B) {
			benchCPUEngine(b, n, func(p []dna.Pair) (*bpbc.Result, error) {
				return bpbc.BulkScores[uint64](p, bpbc.Options{})
			})
		})
		b.Run(fmt.Sprintf("wordwise32/n=%d", n), func(b *testing.B) {
			benchCPUEngine(b, n, func(p []dna.Pair) (*bpbc.Result, error) {
				return bpbc.WordwiseScores(p, bpbc.Options{})
			})
		})
	}
}

// BenchmarkTableIV_GPU runs the functional GPU simulator (one lane group /
// a small block batch) for each Table IV engine and reports the modelled
// full-scale SWA stage time as a metric: simulated milliseconds for the
// paper's 32K-pair workload.
func BenchmarkTableIV_GPU(b *testing.B) {
	type engine struct {
		name  string
		pairs int
		fused bool
		regs  int
		run   func(p []dna.Pair) (*pipeline.Result, error)
	}
	engines := []engine{
		{"bitwise32", 32, true, 60, func(p []dna.Pair) (*pipeline.Result, error) {
			return pipeline.RunBitwise[uint32](context.Background(), p, pipeline.Config{})
		}},
		{"bitwise64", 64, true, 96, func(p []dna.Pair) (*pipeline.Result, error) {
			return pipeline.RunBitwise[uint64](context.Background(), p, pipeline.Config{})
		}},
		{"wordwise32", 32, false, 24, func(p []dna.Pair) (*pipeline.Result, error) {
			return pipeline.RunWordwise(context.Background(), p, pipeline.Config{})
		}},
	}
	for _, n := range workload.Quick.NList {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/n=%d", e.name, n), func(b *testing.B) {
				pairs := workload.Spec{Pairs: e.pairs, M: 128, Seed: 9}.Generate(n)
				var last *pipeline.Result
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := e.run(pairs)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.StopTimer()
				// Scale the exact per-batch stats to the paper's 32K pairs.
				factor := int64(32768 / e.pairs)
				st := last.SWAStats
				st.ALUOps *= factor
				st.GlobalTransactions *= factor
				st.SharedCycles *= factor
				st.Blocks *= int(factor)
				simTime := st.Cost(e.fused, e.regs).Time(perfmodel.TitanX)
				b.ReportMetric(float64(simTime.Microseconds())/1000, "simulated-SWA-ms")
			})
		}
	}
}

// --- Table V: throughput and speedup ---------------------------------------

// BenchmarkTableV measures the paper's headline quantity on this host: the
// CPU bitwise-64 engine's GCUPS (the denominator of the paper's speedup).
func BenchmarkTableV(b *testing.B) {
	spec := workload.Quick
	pairs := spec.Generate(1024)
	b.ReportAllocs()
	b.ResetTimer()
	var total *bpbc.Result
	for i := 0; i < b.N; i++ {
		r, err := bpbc.BulkScores[uint64](pairs, bpbc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		total = r
	}
	b.StopTimer()
	gcups := perfmodel.GCUPS(spec.Pairs, spec.M, 1024, b.Elapsed()/time.Duration(max(1, b.N)))
	b.ReportMetric(gcups, "GCUPS")
	_ = total
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFigure1 runs the 8×8 transpose of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	var a [8]uint8
	for i := range a {
		a[i] = uint8(i * 41)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bitmat.Transpose8x8(&a, nil)
	}
}

// BenchmarkFigure2 exercises the wavefront kernel of Figure 2 on the
// simulator (per-iteration: one lane group).
func BenchmarkFigure2(b *testing.B) {
	pairs := workload.Spec{Pairs: 32, M: 64, Seed: 3}.Generate(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.RunBitwise[uint32](context.Background(), pairs, pipeline.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// BenchmarkLaneWidth isolates the 32-vs-64 lane question on one group's
// dynamic program (no transposes): per-lane throughput should roughly double
// with the wider word, matching the paper's CPU observation.
func BenchmarkLaneWidth(b *testing.B) {
	run := func(b *testing.B, lanes int, f func(p []dna.Pair) error) {
		spec := workload.Spec{Pairs: lanes, M: 128, Seed: 5}
		pairs := spec.Generate(1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f(pairs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perfmodel.GCUPS(lanes, 128, 1024, b.Elapsed()/time.Duration(max(1, b.N))), "GCUPS")
	}
	b.Run("lanes=32", func(b *testing.B) {
		run(b, 32, func(p []dna.Pair) error {
			_, err := bpbc.BulkScores[uint32](p, bpbc.Options{})
			return err
		})
	})
	b.Run("lanes=64", func(b *testing.B) {
		run(b, 64, func(p []dna.Pair) error {
			_, err := bpbc.BulkScores[uint64](p, bpbc.Options{})
			return err
		})
	})
}

// BenchmarkCPUParallel is the beyond-paper multi-core ablation.
func BenchmarkCPUParallel(b *testing.B) {
	pairs := workload.Quick.Generate(1024)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bpbc.BulkScores[uint64](pairs, bpbc.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(perfmodel.GCUPS(workload.Quick.Pairs, 128, 1024, b.Elapsed()/time.Duration(max(1, b.N))), "GCUPS")
		})
	}
}

// BenchmarkSBitsWidth is the score-width ablation: the paper's (overflowing)
// 8-bit configuration vs the safe 9-bit default. Narrower planes are faster;
// the ~12% gap is the price of correctness (see EXPERIMENTS.md).
func BenchmarkSBitsWidth(b *testing.B) {
	pairs := workload.Spec{Pairs: 32, M: 128, Seed: 6}.Generate(1024)
	for _, s := range []int{8, 9} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{SBits: s}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCellKernels compares the hand-written bit-sliced SW cell with the
// compiled-netlist evaluation of the same function (circuit ablation).
func BenchmarkCellKernels(b *testing.B) {
	par := bitslice.Params{S: 9, Match: 2, Mismatch: 1, Gap: 1}
	b.Run("bitslice", func(b *testing.B) {
		sc := bitslice.NewScratch[uint32](par.S)
		up := bitslice.NewNum[uint32](par.S)
		left := bitslice.NewNum[uint32](par.S)
		diag := bitslice.NewNum[uint32](par.S)
		dst := bitslice.NewNum[uint32](par.S)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bitslice.SWCell(dst, up, left, diag, 0, par, sc)
		}
	})
	b.Run("netlist", func(b *testing.B) {
		c, err := circuit.SWCellCircuit(par, true)
		if err != nil {
			b.Fatal(err)
		}
		inputs := make([]uint32, c.NumInputs())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			circuit.Eval(c, inputs)
		}
	})
}

// BenchmarkShuffleHandoff compares the §V warp-shuffle handoff against the
// shared-memory baseline on the simulated GPU (cost-model time for a
// machine-filling launch; results are bit-identical either way).
func BenchmarkShuffleHandoff(b *testing.B) {
	pairs := workload.Spec{Pairs: 32, M: 128, Seed: 8}.Generate(512)
	for _, shuffle := range []bool{false, true} {
		name := "shared"
		if shuffle {
			name = "shuffle"
		}
		b.Run(name, func(b *testing.B) {
			var last *pipeline.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := pipeline.RunBitwise[uint32](context.Background(), pairs, pipeline.Config{UseShuffle: shuffle})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.StopTimer()
			b.ReportMetric(float64(last.SWAStats.SharedCycles), "shared-cycles")
		})
	}
}

// BenchmarkIntraVsInterWord contrasts the repository's two bit-parallelism
// styles on approximate matching-flavoured work: Myers' intra-word
// bit-vector DP (one instance, 64 pattern positions per word op) versus the
// BPBC inter-instance engine (32 instances per word op). The workloads
// differ in semantics (edit distance vs SW score); the comparison is about
// cell-update throughput.
func BenchmarkIntraVsInterWord(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 12))
	const m, n = 64, 2048
	b.Run("myers-1-instance", func(b *testing.B) {
		x := dna.RandSeq(rng, m)
		y := dna.RandSeq(rng, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bitap.MyersDistances(x, y); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*m*n/b.Elapsed().Seconds()/1e9, "Gcells/s")
	})
	b.Run("bpbc-32-instances", func(b *testing.B) {
		pairs := dna.RandomPairs(rng, 32, m, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*32*m*n/b.Elapsed().Seconds()/1e9, "Gcells/s")
	})
}

// BenchmarkEpsilonWidth measures how per-cell cost scales with the
// character width ε: DNA (ε=2) on the specialised engine, DNA and protein
// on the generic engine. The paper's Lemma 5 predicts only the 2ε-1
// mismatch-flag operations grow.
func BenchmarkEpsilonWidth(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 14))
	const m, n = 128, 1024
	b.Run("dna-specialised", func(b *testing.B) {
		pairs := dna.RandomPairs(rng, 32, m, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*32*m*n/b.Elapsed().Seconds()/1e9, "Gcells/s")
	})
	for _, alpha := range []*alphabet.Alphabet{alphabet.DNA, alphabet.Protein} {
		b.Run("generic-"+alpha.Name(), func(b *testing.B) {
			pairs := make([]alphabet.Pair, 32)
			for i := range pairs {
				x := make(alphabet.Seq, m)
				y := make(alphabet.Seq, n)
				for j := range x {
					x[j] = uint16(rng.IntN(alpha.Size()))
				}
				for j := range y {
					y[j] = uint16(rng.IntN(alpha.Size()))
				}
				pairs[i] = alphabet.Pair{X: x, Y: y}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bpbc.BulkScoresGeneric[uint32](alpha, pairs, bpbc.GenericOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*32*m*n/b.Elapsed().Seconds()/1e9, "Gcells/s")
		})
	}
}

// BenchmarkLifeBPBC is the §I companion application: Game of Life advanced
// 64 cells per word operation versus cell-at-a-time.
func BenchmarkLifeBPBC(b *testing.B) {
	rng := rand.New(rand.NewPCG(15, 16))
	for _, mode := range []string{"bpbc", "naive"} {
		b.Run(mode, func(b *testing.B) {
			g, err := life.NewGrid(512, 256)
			if err != nil {
				b.Fatal(err)
			}
			g.Randomize(rng, 0.3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "bpbc" {
					g.Step()
				} else {
					g.StepNaive()
				}
			}
			b.ReportMetric(float64(b.N)*512*256/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}
