package alphabet

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/swa"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("tiny", "A"); err == nil {
		t.Error("single-letter alphabet should fail")
	}
	if _, err := New("dup", "AAB"); err == nil {
		t.Error("duplicate letters should fail")
	}
	a, err := New("bin", "01")
	if err != nil || a.Bits() != 1 || a.Size() != 2 {
		t.Errorf("binary alphabet wrong: %v bits=%d", err, a.Bits())
	}
}

func TestBuiltinAlphabets(t *testing.T) {
	if DNA.Bits() != 2 || DNA.Size() != 4 {
		t.Errorf("DNA: bits=%d size=%d", DNA.Bits(), DNA.Size())
	}
	if Protein.Bits() != 5 || Protein.Size() != 20 {
		t.Errorf("Protein: bits=%d size=%d", Protein.Bits(), Protein.Size())
	}
	if DNA.Name() != "DNA" || Protein.Name() != "protein" {
		t.Error("names wrong")
	}
}

func TestDNACodesMatchPaperEncoding(t *testing.T) {
	// The DNA alphabet's code order must reproduce the paper's encoding
	// (A=00, T=01, G=10, C=11) so results interoperate with internal/dna.
	s := DNA.MustEncode("ATGC")
	for i, want := range []uint16{0, 1, 2, 3} {
		if s[i] != want {
			t.Errorf("code %c = %d, want %d", "ATGC"[i], s[i], want)
		}
	}
	// Cross-check against dna.Base.
	for _, c := range []byte("ACGT") {
		b, _ := dna.ParseBase(c)
		code := DNA.MustEncode(string(c))[0]
		if uint16(b) != code {
			t.Errorf("%c: dna code %d, alphabet code %d", c, b, code)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := "MKVLAARNDW"
	codes, err := Protein.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Protein.Decode(codes)
	if err != nil || back != s {
		t.Errorf("round trip: %q %v", back, err)
	}
	if _, err := Protein.Encode("MKZ"); err == nil {
		t.Error("invalid letter should fail")
	}
	if _, err := Protein.Decode(Seq{31}); err == nil {
		t.Error("out-of-range code should fail")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode should panic on bad input")
		}
	}()
	DNA.MustEncode("AX")
}

func randSeq(rng *rand.Rand, a *Alphabet, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = uint16(rng.IntN(a.Size()))
	}
	return s
}

func TestTransposeGroupRoundTrip(t *testing.T) {
	for _, a := range []*Alphabet{DNA, Protein} {
		rng := rand.New(rand.NewPCG(1, uint64(a.Bits())))
		seqs := make([]Seq, 32)
		for i := range seqs {
			seqs[i] = randSeq(rng, a, 40)
		}
		tr, err := TransposeGroup[uint32](a, seqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Planes) != a.Bits() || tr.Len() != 40 {
			t.Fatalf("%s: planes=%d len=%d", a.Name(), len(tr.Planes), tr.Len())
		}
		for k, s := range seqs {
			got := tr.Lane(k)
			for i := range s {
				if got[i] != s[i] {
					t.Fatalf("%s lane %d pos %d: %d != %d", a.Name(), k, i, got[i], s[i])
				}
			}
		}
	}
}

func TestTransposeGroupErrors(t *testing.T) {
	if _, err := TransposeGroup[uint32](DNA, nil); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := TransposeGroup[uint32](DNA, make([]Seq, 40)); err == nil {
		t.Error("oversized group should fail")
	}
	ragged := []Seq{{0, 1}, {0}}
	if _, err := TransposeGroup[uint32](DNA, ragged); err == nil {
		t.Error("ragged group should fail")
	}
}

func TestScoreMatchesDNAReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 70))
		m := 1 + rng.IntN(16)
		n := m + rng.IntN(40)
		x := dna.RandSeq(rng, m)
		y := dna.RandSeq(rng, n)
		// Convert through letters so both paths see identical sequences.
		ax := DNA.MustEncode(x.String())
		ay := DNA.MustEncode(y.String())
		return Score(ax, ay, swa.PaperScoring) == swa.Score(x, y, swa.PaperScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScoreEmpty(t *testing.T) {
	if Score(nil, Seq{1}, swa.PaperScoring) != 0 {
		t.Error("empty pattern should score 0")
	}
}
