// Package alphabet generalises the engine beyond DNA: the paper's §IV
// derivation is parameterised by ε, "the number of bits necessary to encode
// the characters of the input strings", with DNA (ε=2) as the evaluated
// instance. This package provides arbitrary ε-bit alphabets — including the
// 20-letter protein alphabet (ε=5) — their bit-transposed representation,
// and a reference scorer; internal/bpbc builds the generic bulk engine on
// top.
package alphabet

import (
	"fmt"
	"math/bits"

	"repro/internal/bitmat"
	"repro/internal/swa"
	"repro/internal/word"
)

// Alphabet is a finite symbol set with a fixed-width binary code.
type Alphabet struct {
	name    string
	letters []byte
	bits    int
	lut     [256]int16 // ASCII -> code, -1 when invalid
}

// New builds an alphabet from its letters (codes are assigned in order).
func New(name, letters string) (*Alphabet, error) {
	if len(letters) < 2 {
		return nil, fmt.Errorf("alphabet: %q needs at least 2 letters", name)
	}
	if len(letters) > 256 {
		return nil, fmt.Errorf("alphabet: %q has too many letters", name)
	}
	a := &Alphabet{name: name, letters: []byte(letters), bits: bits.Len(uint(len(letters) - 1))}
	for i := range a.lut {
		a.lut[i] = -1
	}
	for code, c := range []byte(letters) {
		if a.lut[c] != -1 {
			return nil, fmt.Errorf("alphabet: %q repeats letter %q", name, c)
		}
		a.lut[c] = int16(code)
	}
	return a, nil
}

func mustNew(name, letters string) *Alphabet {
	a, err := New(name, letters)
	if err != nil {
		panic(err)
	}
	return a
}

// DNA is the four-base alphabet in the paper's code order (A=00, T=01,
// G=10, C=11).
var DNA = mustNew("DNA", "ATGC")

// Protein is the 20 standard amino acids, ε = 5 bits.
var Protein = mustNew("protein", "ARNDCQEGHILKMFPSTWYV")

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Bits returns ε, the character code width.
func (a *Alphabet) Bits() int { return a.bits }

// Size returns the number of letters.
func (a *Alphabet) Size() int { return len(a.letters) }

// Seq is a sequence of alphabet codes.
type Seq []uint16

// Encode converts a letter string into codes.
func (a *Alphabet) Encode(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		c := a.lut[s[i]]
		if c < 0 {
			return nil, fmt.Errorf("alphabet: %q position %d: invalid letter %q", a.name, i, s[i])
		}
		out[i] = uint16(c)
	}
	return out, nil
}

// MustEncode is Encode for constant inputs.
func (a *Alphabet) MustEncode(s string) Seq {
	out, err := a.Encode(s)
	if err != nil {
		panic(err)
	}
	return out
}

// Decode converts codes back into letters.
func (a *Alphabet) Decode(s Seq) (string, error) {
	out := make([]byte, len(s))
	for i, c := range s {
		if int(c) >= len(a.letters) {
			return "", fmt.Errorf("alphabet: %q: code %d out of range", a.name, c)
		}
		out[i] = a.letters[c]
	}
	return string(out), nil
}

// Pair is one generic-alphabet problem instance.
type Pair struct {
	X, Y Seq
}

// Score computes the reference Smith-Waterman score over codes with
// match/mismatch scoring — the oracle for the generic bulk engine.
func Score(x, y Seq, sc swa.Scoring) int {
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 0
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	best := 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			w := -sc.Mismatch
			if x[i-1] == y[j-1] {
				w = sc.Match
			}
			v := max(0, prev[j]-sc.Gap, cur[j-1]-sc.Gap, prev[j-1]+w)
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Transposed holds one lane group of equal-length sequences in bit-transpose
// format: Planes[b][i] carries bit b of position i's code across all lanes.
type Transposed[W word.Word] struct {
	Planes [][]W
	Count  int
}

// Len returns the common sequence length.
func (t *Transposed[W]) Len() int {
	if len(t.Planes) == 0 {
		return 0
	}
	return len(t.Planes[0])
}

// Lane reconstructs sequence k.
func (t *Transposed[W]) Lane(k int) Seq {
	n := t.Len()
	out := make(Seq, n)
	for i := 0; i < n; i++ {
		var code uint16
		for b, plane := range t.Planes {
			code |= uint16(plane[i]>>uint(k)&1) << uint(b)
		}
		out[i] = code
	}
	return out
}

// TransposeGroup converts up to W equal-length sequences into ε bit planes
// using one ε-bit-value column transpose per position (the general form of
// the paper's W2B step). Missing lanes are zero-padded.
func TransposeGroup[W word.Word](a *Alphabet, seqs []Seq) (*Transposed[W], error) {
	lanes := word.Lanes[W]()
	if len(seqs) == 0 || len(seqs) > lanes {
		return nil, fmt.Errorf("alphabet: TransposeGroup needs 1..%d sequences, got %d", lanes, len(seqs))
	}
	n := len(seqs[0])
	for i, s := range seqs {
		if len(s) != n {
			return nil, fmt.Errorf("alphabet: sequence %d has length %d, want %d", i, len(s), n)
		}
	}
	eps := a.bits
	t := &Transposed[W]{Planes: make([][]W, eps), Count: len(seqs)}
	for b := range t.Planes {
		t.Planes[b] = make([]W, n)
	}
	plan := bitmat.CachedPlan(lanes, eps, bitmat.ValuesToPlanes)
	col := make([]W, lanes)
	for i := 0; i < n; i++ {
		for k := range col {
			col[k] = 0
		}
		for k, s := range seqs {
			col[k] = W(s[i])
		}
		bitmat.Apply(plan, col)
		for b := 0; b < eps; b++ {
			t.Planes[b][i] = col[b]
		}
	}
	return t, nil
}
