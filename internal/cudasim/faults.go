package cudasim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// FaultOp names a device operation class that the injector can fail.
type FaultOp string

const (
	FaultHtoD    FaultOp = "HtoD"
	FaultDtoH    FaultOp = "DtoH"
	FaultAlloc   FaultOp = "Alloc"
	FaultLaunch  FaultOp = "Launch"
	FaultBitFlip FaultOp = "BitFlip"
)

// ErrInjected is the sentinel wrapped by every injected fault, so callers
// can distinguish deliberate faults from genuine simulator errors with
// errors.Is(err, cudasim.ErrInjected).
var ErrInjected = errors.New("cudasim: injected fault")

// ErrDeviceKilled is the sentinel wrapped by every operation attempted on a
// device whose KillSwitch is flipped — the simulated equivalent of a card
// falling off the bus. Match with errors.Is(err, cudasim.ErrDeviceKilled).
var ErrDeviceKilled = errors.New("cudasim: device killed")

// KillSwitch is a shared device-death flag: while Kill is in effect, every
// device operation routed through an injector holding the switch fails with
// a *KilledError, and an in-flight LaunchCtx aborts at the next block
// boundary. The switch is independent of the probabilistic fault rates —
// flipping it models whole-device loss (XID error, bus drop, host reboot of
// a peer), not a flaky transfer. Safe for concurrent use; a nil *KillSwitch
// is valid and never killed.
type KillSwitch struct {
	killed atomic.Bool
}

// Kill flips the switch: all subsequent operations fail until Revive.
func (k *KillSwitch) Kill() { k.killed.Store(true) }

// Revive clears the switch, letting operations proceed again.
func (k *KillSwitch) Revive() { k.killed.Store(false) }

// Killed reports whether the switch is currently flipped.
func (k *KillSwitch) Killed() bool { return k != nil && k.killed.Load() }

// KilledError is the typed error every device operation returns while the
// device's KillSwitch is flipped.
type KilledError struct {
	Op FaultOp // which operation class observed the dead device
}

func (e *KilledError) Error() string {
	return fmt.Sprintf("cudasim: %s on killed device", e.Op)
}

// Unwrap makes errors.Is(err, ErrDeviceKilled) hold.
func (e *KilledError) Unwrap() error { return ErrDeviceKilled }

// FaultError is a deterministic injected device fault.
type FaultError struct {
	Op  FaultOp // which operation class failed
	Seq uint64  // injector decision sequence number, for reproducibility
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("cudasim: injected %s fault (decision #%d)", e.Op, e.Seq)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *FaultError) Unwrap() error { return ErrInjected }

// FaultConfig configures deterministic fault injection. Each rate is the
// per-operation probability in [0, 1] that the operation fails (or, for
// BitFlip, that a completed transfer silently corrupts one bit of the
// bytes it moved). The zero value injects nothing.
type FaultConfig struct {
	Seed    uint64
	HtoD    float64 // MemcpyHtoD returns a *FaultError
	DtoH    float64 // MemcpyDtoH returns a *FaultError
	Alloc   float64 // Alloc returns a *FaultError (simulated cudaMalloc failure)
	Launch  float64 // Launch fails before any block runs
	BitFlip float64 // a successful transfer flips one random bit it touched
}

func (c FaultConfig) enabled() bool {
	return c.HtoD > 0 || c.DtoH > 0 || c.Alloc > 0 || c.Launch > 0 || c.BitFlip > 0
}

// FaultCounts tallies injected faults by class.
type FaultCounts struct {
	HtoD, DtoH, Alloc, Launch, BitFlips int
}

// Total sums all classes.
func (c FaultCounts) Total() int {
	return c.HtoD + c.DtoH + c.Alloc + c.Launch + c.BitFlips
}

// FaultInjector draws deterministic fault decisions from a seeded PCG
// stream. It is safe for concurrent use; the decision sequence depends only
// on the seed and the order of device operations.
type FaultInjector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    FaultConfig
	seq    uint64
	counts FaultCounts

	// kill, when non-nil, is checked before every decision: a flipped
	// switch fails the operation with a *KilledError regardless of the
	// probabilistic rates. Shared between injectors so one switch kills
	// every attempt stream derived for the same logical device.
	kill *KillSwitch
}

// NewFaultInjector builds an injector for the config, or nil when the
// config injects nothing (a nil injector is valid and inert everywhere).
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return NewFaultInjectorKilled(cfg, nil)
}

// NewFaultInjectorKilled builds an injector layering the probabilistic
// fault config on a shared kill switch. It returns nil (inert) only when
// the config injects nothing and there is no switch to observe.
func NewFaultInjectorKilled(cfg FaultConfig, kill *KillSwitch) *FaultInjector {
	if !cfg.enabled() && kill == nil {
		return nil
	}
	f := &FaultInjector{cfg: cfg, kill: kill}
	if cfg.enabled() {
		f.rng = rand.New(rand.NewPCG(cfg.Seed, 0x6661756c74))
	}
	return f
}

// killedNow reports whether the injector's kill switch is flipped; the
// launch scheduler polls it between blocks so a kill aborts mid-launch.
func (f *FaultInjector) killedNow() bool {
	return f != nil && f.kill.Killed()
}

// Counts snapshots the faults injected so far.
func (f *FaultInjector) Counts() FaultCounts {
	if f == nil {
		return FaultCounts{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// trip decides whether the next operation of class op fails, returning the
// fault error to surface (nil = proceed).
func (f *FaultInjector) trip(op FaultOp) error {
	if f == nil {
		return nil
	}
	if f.kill.Killed() {
		return &KilledError{Op: op}
	}
	if f.rng == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	var rate float64
	var slot *int
	switch op {
	case FaultHtoD:
		rate, slot = f.cfg.HtoD, &f.counts.HtoD
	case FaultDtoH:
		rate, slot = f.cfg.DtoH, &f.counts.DtoH
	case FaultAlloc:
		rate, slot = f.cfg.Alloc, &f.counts.Alloc
	case FaultLaunch:
		rate, slot = f.cfg.Launch, &f.counts.Launch
	default:
		return nil
	}
	if rate <= 0 || f.rng.Float64() >= rate {
		return nil
	}
	*slot++
	return &FaultError{Op: op, Seq: f.seq}
}

// flipBit decides whether a completed transfer of n bytes silently corrupts
// one bit, returning the bit index to flip in [0, 8n) or -1 for none.
func (f *FaultInjector) flipBit(n int) int64 {
	if f == nil || f.rng == nil || n <= 0 {
		return -1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	if f.cfg.BitFlip <= 0 || f.rng.Float64() >= f.cfg.BitFlip {
		return -1
	}
	f.counts.BitFlips++
	return f.rng.Int64N(int64(n) * 8)
}
