package cudasim

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/perfmodel"
)

// Regression: (bytes+255)&^255 used to wrap negative for huge requests and
// slip past the out-of-memory check, handing out a bogus buffer.
func TestAllocOverflowGuard(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1024)
	for _, bytes := range []int64{math.MaxInt64, math.MaxInt64 - 100, math.MaxInt64 - 255} {
		if _, err := d.Alloc(bytes); err == nil {
			t.Errorf("Alloc(%d) succeeded on a 1 KiB device", bytes)
		}
	}
	// The guard must not break ordinary allocations.
	if _, err := d.Alloc(512); err != nil {
		t.Fatalf("Alloc(512): %v", err)
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, HtoD: 0.5, DtoH: 0.5, Launch: 0.5}
	run := func() []string {
		d := NewDevice(perfmodel.TitanX, 1<<16)
		d.InjectFaults(NewFaultInjector(cfg))
		buf, err := d.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for i := 0; i < 20; i++ {
			if err := d.MemcpyHtoD(buf, make([]byte, 64)); err != nil {
				trace = append(trace, "H")
			} else {
				trace = append(trace, "h")
			}
			if err := d.MemcpyDtoH(make([]byte, 64), buf); err != nil {
				trace = append(trace, "D")
			} else {
				trace = append(trace, "d")
			}
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream not deterministic at step %d: %v vs %v", i, a, b)
		}
	}
	// With 50% rates over 40 decisions, both outcomes must occur.
	hit := map[string]bool{}
	for _, s := range a {
		hit[s] = true
	}
	if !hit["H"] || !hit["h"] || !hit["D"] || !hit["d"] {
		t.Fatalf("expected a mix of faults and successes, got %v", a)
	}
}

func TestFaultErrorsAreInjected(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1<<16)
	d.InjectFaults(NewFaultInjector(FaultConfig{Seed: 1, HtoD: 1, DtoH: 1, Alloc: 1, Launch: 1}))
	if _, err := d.Alloc(64); !errors.Is(err, ErrInjected) {
		t.Fatalf("Alloc: want ErrInjected, got %v", err)
	}
	// Allocate on a clean device, then re-attach faults for the transfers.
	d2 := NewDevice(perfmodel.TitanX, 1<<16)
	buf, err := d2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	d2.InjectFaults(NewFaultInjector(FaultConfig{Seed: 1, HtoD: 1, DtoH: 1, Launch: 1}))
	if err := d2.MemcpyHtoD(buf, make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("HtoD: want ErrInjected, got %v", err)
	}
	if err := d2.MemcpyDtoH(make([]byte, 64), buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("DtoH: want ErrInjected, got %v", err)
	}
	noop := KernelFunc(func(b *Block) {})
	if _, err := d2.Launch(1, 32, noop); !errors.Is(err, ErrInjected) {
		t.Fatalf("Launch: want ErrInjected, got %v", err)
	}
	c := d2.faults.Counts()
	if c.HtoD != 1 || c.DtoH != 1 || c.Launch != 1 {
		t.Fatalf("counts = %+v, want one of each transfer/launch class", c)
	}
	var fe *FaultError
	if err := d2.MemcpyHtoD(buf, make([]byte, 8)); !errors.As(err, &fe) || fe.Op != FaultHtoD {
		t.Fatalf("want typed *FaultError with Op=HtoD, got %v", err)
	}
}

func TestBitFlipCorruptsTransfer(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1<<16)
	buf, err := d.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(NewFaultInjector(FaultConfig{Seed: 3, BitFlip: 1}))
	src := make([]byte, 256)
	if err := d.MemcpyHtoD(buf, src); err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(nil) // read back unfaulted
	got := make([]byte, 256)
	if err := d.MemcpyDtoH(got, buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^src[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("expected exactly one flipped bit, found %d", diff)
	}
}

func TestLaunchCtxCancellation(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1<<16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	noop := KernelFunc(func(b *Block) {})
	if _, err := d.LaunchCtx(ctx, 4, 32, noop); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestLaunchCtxCancelMidGrid(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1<<16)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	k := KernelFunc(func(b *Block) {
		ran++
		if ran == 2 {
			cancel()
		}
	})
	// Force a single worker so the cancel lands deterministically between
	// block iterations.
	_, err := d.LaunchCtx(ctx, 1_000_000, 1, k)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran >= 1_000_000 {
		t.Fatal("cancellation did not stop the block loop early")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	if inj := NewFaultInjector(FaultConfig{}); inj != nil {
		t.Fatal("zero config should yield a nil (inert) injector")
	}
	var inj *FaultInjector
	if err := inj.trip(FaultHtoD); err != nil {
		t.Fatal("nil injector tripped")
	}
	if inj.Counts() != (FaultCounts{}) {
		t.Fatal("nil injector counted")
	}
}
