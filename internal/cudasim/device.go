// Package cudasim is the GPU substrate of this reproduction: a CUDA-like
// functional simulator with an exact cost model. It stands in for the
// paper's GeForce GTX TITAN X (see DESIGN.md §2 for the substitution
// argument).
//
// The execution model is block-synchronous: a kernel implements RunBlock and
// expresses intra-block thread parallelism as phases — calls to
// Block.ForEachThread, separated by Block.Sync barriers — exactly the
// lockstep structure the paper's wavefront kernel has. Within a phase the
// simulator runs the thread bodies sequentially (semantically equivalent for
// barrier-synchronised kernels) while recording, per warp:
//
//   - ALU operation counts (charged explicitly by the kernel, which keeps
//     functional code and cost accounting in one place),
//   - global-memory transactions with coalescing analysis (accesses from
//     one warp in the same access slot are merged into 32-byte sectors),
//   - shared-memory cycles with bank-conflict replay accounting
//     (32 four-byte banks, as on the paper's hardware).
//
// Blocks execute concurrently on host goroutines. The collected LaunchStats
// convert to wall-clock estimates through internal/perfmodel.
package cudasim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/perfmodel"
)

// DefaultHostCap bounds how much host memory one simulated device may pin
// for its global-memory backing. Realistic specs declare many GiB of device
// memory, but a simulated workload only ever touches a fraction of it; the
// cap keeps a fleet of 12 GiB devices from exhausting the host while still
// failing loudly (with a *HostOOMError) if a workload genuinely needs more.
const DefaultHostCap = int64(1) << 30

// Device is a simulated GPU: a spec for the cost model plus a global memory.
// The backing array is allocated lazily — constructing a device with a
// multi-GiB capacity costs nothing until buffers are actually allocated.
type Device struct {
	Spec     perfmodel.DeviceSpec
	global   []byte // grown on demand by Alloc, never beyond capacity/hostCap
	capacity int64  // declared device global-memory size
	hostCap  int64  // hard cap on host bytes actually backed
	used     int64
	faults   *FaultInjector
}

// NewDevice creates a device with the given global-memory capacity. No host
// memory is allocated up front: the backing array grows on demand as Alloc
// reserves buffers, up to min(globalBytes, DefaultHostCap) — use
// SetMaxHostBytes to raise or lower the host-side cap.
func NewDevice(spec perfmodel.DeviceSpec, globalBytes int64) *Device {
	if globalBytes < 0 {
		// Same contract as the old eager make([]byte, globalBytes).
		panic(fmt.Sprintf("cudasim: negative device capacity %d", globalBytes))
	}
	return &Device{Spec: spec, capacity: globalBytes, hostCap: DefaultHostCap}
}

// SetMaxHostBytes overrides the cap on host memory the device may pin for
// its backing array. Call before issuing work; it does not shrink an
// already-grown backing.
func (d *Device) SetMaxHostBytes(n int64) {
	if n < 0 {
		n = 0
	}
	d.hostCap = n
}

// Capacity returns the declared device global-memory size in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// HostBytes returns how much host memory currently backs the device's
// global memory — the lazily grown portion, not the declared capacity.
func (d *Device) HostBytes() int64 { return int64(len(d.global)) }

// HostOOMError reports that growing the device backing would exceed the
// host-side cap: the simulated workload genuinely needs more resident bytes
// than the host is allowed to pin for this device.
type HostOOMError struct {
	Need  int64 // host bytes the backing would have to reach
	Limit int64 // configured host cap
}

func (e *HostOOMError) Error() string {
	return fmt.Sprintf("cudasim: device backing needs %d host bytes, cap is %d", e.Need, e.Limit)
}

// InjectFaults attaches a deterministic fault injector to the device. A nil
// injector (the default) disables injection. Call before issuing work.
func (d *Device) InjectFaults(f *FaultInjector) { d.faults = f }

// Buf is a region of device global memory.
type Buf struct {
	off, size int64
}

// Size returns the buffer length in bytes.
func (b Buf) Size() int64 { return b.size }

// Alloc reserves a global-memory buffer (bump allocator; buffers live for
// the device's lifetime, like a benchmark's cudaMalloc arena).
func (d *Device) Alloc(bytes int64) (Buf, error) {
	if bytes < 0 {
		return Buf{}, fmt.Errorf("cudasim: negative allocation")
	}
	// Guard before aligning: (bytes+255)&^255 would wrap negative for
	// bytes near MaxInt64 and sail past the out-of-memory check below.
	if bytes > math.MaxInt64-255 {
		return Buf{}, fmt.Errorf("cudasim: out of global memory (%d requested, %d free)",
			bytes, d.capacity-d.used)
	}
	if err := d.faults.trip(FaultAlloc); err != nil {
		return Buf{}, err
	}
	aligned := (bytes + 255) &^ 255
	if d.used+aligned > d.capacity {
		return Buf{}, fmt.Errorf("cudasim: out of global memory (%d requested, %d free)",
			aligned, d.capacity-d.used)
	}
	if err := d.grow(d.used + aligned); err != nil {
		return Buf{}, err
	}
	b := Buf{off: d.used, size: bytes}
	d.used += aligned
	return b, nil
}

// grow ensures the backing array covers [0, need) bytes, doubling to
// amortise growth and clamping to the declared capacity and the host cap.
// It runs only from Alloc — the same single-goroutine control path as the
// bump allocator itself — so kernels already in flight (which only touch
// previously allocated, hence already-backed, regions) never race it.
func (d *Device) grow(need int64) error {
	if need <= int64(len(d.global)) {
		return nil
	}
	if need > d.hostCap {
		return &HostOOMError{Need: need, Limit: d.hostCap}
	}
	newLen := max(int64(len(d.global))*2, int64(64<<10))
	for newLen < need {
		newLen *= 2
	}
	newLen = min(newLen, d.capacity, d.hostCap)
	grown := make([]byte, newLen)
	copy(grown, d.global)
	d.global = grown
	return nil
}

// MemcpyHtoD copies host bytes into a device buffer (Step 1 of the paper's
// pipeline; the PCIe time is modelled separately by perfmodel).
func (d *Device) MemcpyHtoD(dst Buf, src []byte) error {
	if int64(len(src)) > dst.size {
		return fmt.Errorf("cudasim: HtoD copy of %d bytes into %d-byte buffer", len(src), dst.size)
	}
	if err := d.faults.trip(FaultHtoD); err != nil {
		return err
	}
	copy(d.global[dst.off:dst.off+int64(len(src))], src)
	if bit := d.faults.flipBit(len(src)); bit >= 0 {
		d.global[dst.off+bit/8] ^= 1 << (bit % 8)
	}
	return nil
}

// MemcpyDtoH copies a device buffer back to host memory (Step 5).
func (d *Device) MemcpyDtoH(dst []byte, src Buf) error {
	if int64(len(dst)) > src.size {
		return fmt.Errorf("cudasim: DtoH copy of %d bytes from %d-byte buffer", len(dst), src.size)
	}
	if err := d.faults.trip(FaultDtoH); err != nil {
		return err
	}
	copy(dst, d.global[src.off:src.off+int64(len(dst))])
	if bit := d.faults.flipBit(len(dst)); bit >= 0 {
		dst[bit/8] ^= 1 << (bit % 8)
	}
	return nil
}

// LaunchStats is the exact work tally of one kernel launch.
type LaunchStats struct {
	ALUOps              int64
	GlobalLoadBytes     int64
	GlobalStoreBytes    int64
	GlobalTransactions  int64 // 32-byte sectors touched, after coalescing
	SharedCycles        int64 // warp shared-access cycles incl. replays
	BankConflictReplays int64
	Barriers            int64
	Blocks              int
	ThreadsPerBlock     int
}

// Cost converts the stats into the perfmodel kernel-cost form. fuseLogic
// marks bitwise-logic kernels eligible for LOP3 fusion; regsPerThread is the
// kernel's register footprint, which drives the occupancy model (see
// perfmodel).
func (s *LaunchStats) Cost(fuseLogic bool, regsPerThread int) perfmodel.KernelCost {
	return perfmodel.KernelCost{
		ALUOps:    s.ALUOps,
		FuseLogic: fuseLogic,
		// Transactions dominate DRAM time; each moves a 32-byte sector.
		GlobalBytes:     s.GlobalTransactions * 32,
		SharedBytes:     s.SharedCycles * 128,
		Blocks:          s.Blocks,
		ThreadsPerBlock: s.ThreadsPerBlock,
		RegsPerThread:   regsPerThread,
	}
}

// Kernel is implemented by simulated CUDA kernels.
type Kernel interface {
	RunBlock(b *Block)
}

// KernelFunc adapts a function to the Kernel interface.
type KernelFunc func(b *Block)

// RunBlock calls f(b).
func (f KernelFunc) RunBlock(b *Block) { f(b) }

// Launch executes the kernel over a 1-D grid with no cancellation point.
// It is LaunchCtx with a background context.
func (d *Device) Launch(blocks, threadsPerBlock int, k Kernel) (*LaunchStats, error) {
	return d.LaunchCtx(context.Background(), blocks, threadsPerBlock, k)
}

// LaunchCtx executes the kernel over a 1-D grid. Blocks run concurrently on
// host goroutines; each gets a fresh shared memory. Returns the merged
// stats of all blocks. The context is observed between blocks: once it is
// done, no further block starts and the context's error is returned, which
// bounds cancellation latency to one block's runtime. A kernel panic
// likewise aborts the grid — no worker claims another block once any block
// has panicked — and the panic from the lowest-indexed panicking block is
// reported, so a multi-block failure is deterministic. On both the
// cancellation and panic paths the returned stats still tally all work
// performed before the abort (partial, but accurate).
func (d *Device) LaunchCtx(ctx context.Context, blocks, threadsPerBlock int, k Kernel) (*LaunchStats, error) {
	if blocks <= 0 || threadsPerBlock <= 0 {
		return nil, fmt.Errorf("cudasim: launch shape %d×%d invalid", blocks, threadsPerBlock)
	}
	if threadsPerBlock > 1024 {
		return nil, fmt.Errorf("cudasim: %d threads per block exceeds the 1024 limit", threadsPerBlock)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := d.faults.trip(FaultLaunch); err != nil {
		return nil, err
	}
	total := &LaunchStats{Blocks: blocks, ThreadsPerBlock: threadsPerBlock}
	workers := min(runtime.GOMAXPROCS(0), blocks)
	var next atomic.Int64
	var abort atomic.Bool
	var wg sync.WaitGroup
	// Each worker tallies into its own slot; the merge happens below, after
	// wg.Wait, in this goroutine. That keeps merging lock-free (no shared
	// mutex serialising concurrent launches or devices) and guarantees a
	// panicking worker's partial tallies are still counted: its slot is
	// populated incrementally as blocks run, not in a final merge step the
	// panic could skip.
	locals := make([]LaunchStats, workers)
	type panicRec struct {
		block int
		val   any
	}
	var panicMu sync.Mutex
	var firstPanic *panicRec
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			claimed := -1
			defer func() {
				if r := recover(); r != nil {
					// Stop the grid: no worker claims another block.
					abort.Store(true)
					panicMu.Lock()
					if firstPanic == nil || claimed < firstPanic.block {
						firstPanic = &panicRec{block: claimed, val: r}
					}
					panicMu.Unlock()
				}
			}()
			local := &locals[w]
			for ctx.Err() == nil && !abort.Load() {
				if d.faults.killedNow() {
					// Device died mid-launch: stop claiming blocks so the
					// kill is observed within one block's runtime.
					abort.Store(true)
					break
				}
				bi := int(next.Add(1)) - 1
				if bi >= blocks {
					break
				}
				claimed = bi
				b := &Block{
					Idx:   bi,
					Dim:   threadsPerBlock,
					dev:   d,
					stats: local,
					warp:  d.Spec.WarpSize,
				}
				k.RunBlock(b)
				b.flushPhase()
			}
		}()
	}
	wg.Wait()
	for w := range locals {
		mergeStats(total, &locals[w])
	}
	if firstPanic != nil {
		return total, fmt.Errorf("cudasim: kernel panicked in block %d: %v", firstPanic.block, firstPanic.val)
	}
	if d.faults.killedNow() {
		// The device was killed while the grid ran. Partial stats are still
		// returned (accurate for the blocks that completed), but the launch
		// as a whole failed with the typed device-loss error.
		return total, &KilledError{Op: FaultLaunch}
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	return total, nil
}

// mergeStats folds src into dst. It is only called from the goroutine that
// owns the launch, after every worker has finished, so it needs no locking.
func mergeStats(dst, src *LaunchStats) {
	dst.ALUOps += src.ALUOps
	dst.GlobalLoadBytes += src.GlobalLoadBytes
	dst.GlobalStoreBytes += src.GlobalStoreBytes
	dst.GlobalTransactions += src.GlobalTransactions
	dst.SharedCycles += src.SharedCycles
	dst.BankConflictReplays += src.BankConflictReplays
	dst.Barriers += src.Barriers
}
