package cudasim

import (
	"encoding/binary"
	"fmt"
)

const segmentBytes = 32 // DRAM transaction granularity (hardware sector size)
const numBanks = 32     // shared-memory banks, 4 bytes wide

// Block is the per-block execution context handed to Kernel.RunBlock.
type Block struct {
	Idx int // blockIdx.x
	Dim int // blockDim.x

	dev   *Device
	stats *LaunchStats
	warp  int

	shared     []uint32
	sharedUsed int

	// Per-phase access tracking: global accesses grouped by (warp, slot)
	// for coalescing, shared accesses by (warp, slot, bank) for conflicts.
	globalAcc map[accKey]map[int64]struct{}
	sharedAcc map[accKey]*bankCount
}

type accKey struct {
	warp, slot int32
}

type bankCount struct {
	perBank  [numBanks]int32
	accesses int32
}

// SharedAlloc reserves words 32-bit words of block shared memory and returns
// a handle. Like __shared__ arrays, contents start zeroed and live for the
// block's duration. The 48 KiB per-block limit of the paper's hardware is
// enforced.
func (b *Block) SharedAlloc(words int) SharedArr {
	if b.sharedUsed+words > 48*1024/4 {
		panic(fmt.Sprintf("cudasim: shared memory exhausted (%d words requested, %d used)",
			words, b.sharedUsed))
	}
	if b.shared == nil {
		b.shared = make([]uint32, 48*1024/4)
	}
	arr := SharedArr{off: b.sharedUsed, len: words}
	b.sharedUsed += words
	return arr
}

// SharedArr is a handle to a shared-memory array.
type SharedArr struct {
	off, len int
}

// Len returns the array length in words.
func (a SharedArr) Len() int { return a.len }

// ForEachThread runs fn once per thread id, in order, as one lockstep phase.
// All threads' memory accesses within the phase are analysed warp-wise for
// coalescing and bank conflicts, matching how the lockstep hardware would
// issue them.
func (b *Block) ForEachThread(fn func(t *Thread)) {
	if b.globalAcc == nil {
		b.globalAcc = make(map[accKey]map[int64]struct{})
		b.sharedAcc = make(map[accKey]*bankCount)
	}
	for tid := 0; tid < b.Dim; tid++ {
		t := Thread{b: b, Tid: tid}
		fn(&t)
	}
	b.flushPhase()
}

// Sync is the __syncthreads barrier marker between phases. (ForEachThread
// already delimits phases; Sync exists so kernels read like their CUDA
// counterparts and so barrier counts reach the stats.)
func (b *Block) Sync() {
	b.stats.Barriers++
}

// flushPhase converts the phase's recorded accesses into transaction and
// conflict counts, then clears the tracking state.
func (b *Block) flushPhase() {
	for k, segs := range b.globalAcc {
		b.stats.GlobalTransactions += int64(len(segs))
		delete(b.globalAcc, k)
	}
	for k, bc := range b.sharedAcc {
		var maxCount int32
		for _, c := range bc.perBank {
			if c > maxCount {
				maxCount = c
			}
		}
		if maxCount > 0 {
			b.stats.SharedCycles += int64(maxCount)
			b.stats.BankConflictReplays += int64(maxCount - 1)
		}
		delete(b.sharedAcc, k)
	}
}

// Thread is the per-thread view inside a phase.
type Thread struct {
	b    *Block
	Tid  int
	slot int32
}

// Ops charges n ALU operations to the launch.
func (t *Thread) Ops(n int) {
	t.b.stats.ALUOps += int64(n)
}

func (t *Thread) nextSlot() int32 {
	s := t.slot
	t.slot++
	return s
}

func (t *Thread) recordGlobal(addr int64, bytes int64, store bool) {
	key := accKey{warp: int32(t.Tid / t.b.warp), slot: t.nextSlot()}
	segs := t.b.globalAcc[key]
	if segs == nil {
		segs = make(map[int64]struct{}, 4)
		t.b.globalAcc[key] = segs
	}
	for seg := addr / segmentBytes; seg <= (addr+bytes-1)/segmentBytes; seg++ {
		segs[seg] = struct{}{}
	}
	if store {
		t.b.stats.GlobalStoreBytes += bytes
	} else {
		t.b.stats.GlobalLoadBytes += bytes
	}
}

func (t *Thread) checkGlobal(buf Buf, off, bytes int64) int64 {
	if off < 0 || off+bytes > buf.size {
		panic(fmt.Sprintf("cudasim: global access at %d..%d outside %d-byte buffer",
			off, off+bytes, buf.size))
	}
	return buf.off + off
}

// GlobalLoad8 reads one byte at byte offset off of buf.
func (t *Thread) GlobalLoad8(buf Buf, off int64) uint8 {
	addr := t.checkGlobal(buf, off, 1)
	t.recordGlobal(addr, 1, false)
	return t.b.dev.global[addr]
}

// GlobalLoad32 reads a 32-bit word at word index idx of buf.
func (t *Thread) GlobalLoad32(buf Buf, idx int64) uint32 {
	addr := t.checkGlobal(buf, idx*4, 4)
	t.recordGlobal(addr, 4, false)
	return binary.LittleEndian.Uint32(t.b.dev.global[addr:])
}

// GlobalStore32 writes a 32-bit word at word index idx of buf.
func (t *Thread) GlobalStore32(buf Buf, idx int64, v uint32) {
	addr := t.checkGlobal(buf, idx*4, 4)
	t.recordGlobal(addr, 4, true)
	binary.LittleEndian.PutUint32(t.b.dev.global[addr:], v)
}

// GlobalLoad64 reads a 64-bit word at word index idx of buf.
func (t *Thread) GlobalLoad64(buf Buf, idx int64) uint64 {
	addr := t.checkGlobal(buf, idx*8, 8)
	t.recordGlobal(addr, 8, false)
	return binary.LittleEndian.Uint64(t.b.dev.global[addr:])
}

// GlobalStore64 writes a 64-bit word at word index idx of buf.
func (t *Thread) GlobalStore64(buf Buf, idx int64, v uint64) {
	addr := t.checkGlobal(buf, idx*8, 8)
	t.recordGlobal(addr, 8, true)
	binary.LittleEndian.PutUint64(t.b.dev.global[addr:], v)
}

func (t *Thread) recordShared(word int) {
	key := accKey{warp: int32(t.Tid / t.b.warp), slot: t.nextSlot()}
	bc := t.b.sharedAcc[key]
	if bc == nil {
		bc = &bankCount{}
		t.b.sharedAcc[key] = bc
	}
	bc.perBank[word%numBanks]++
	bc.accesses++
}

func (t *Thread) checkShared(arr SharedArr, idx int) int {
	if idx < 0 || idx >= arr.len {
		panic(fmt.Sprintf("cudasim: shared access %d outside %d-word array", idx, arr.len))
	}
	return arr.off + idx
}

// SharedLoad reads word idx of a shared array.
func (t *Thread) SharedLoad(arr SharedArr, idx int) uint32 {
	w := t.checkShared(arr, idx)
	t.recordShared(w)
	return t.b.shared[w]
}

// SharedStore writes word idx of a shared array.
func (t *Thread) SharedStore(arr SharedArr, idx int, v uint32) {
	w := t.checkShared(arr, idx)
	t.recordShared(w)
	t.b.shared[w] = v
}
