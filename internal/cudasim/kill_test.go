package cudasim

import (
	"errors"
	"testing"

	"repro/internal/perfmodel"
)

// Lazy backing: constructing a device with a realistic multi-GiB capacity
// must not pin host memory, and the backing must grow only as Alloc
// reserves buffers.
func TestLazyBackingGrowsOnDemand(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 12<<30) // the paper's TITAN X: 12 GiB
	if got := d.HostBytes(); got != 0 {
		t.Fatalf("fresh device pinned %d host bytes, want 0", got)
	}
	if got := d.Capacity(); got != 12<<30 {
		t.Fatalf("Capacity = %d, want %d", got, int64(12<<30))
	}
	buf, err := d.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	host := d.HostBytes()
	if host < 1<<20 {
		t.Fatalf("backing %d bytes after a 1 MiB Alloc", host)
	}
	if host > 4<<20 {
		t.Fatalf("backing %d bytes after a 1 MiB Alloc; doubling overshot", host)
	}
	// Transfers through the grown region must round-trip.
	src := make([]byte, 1<<20)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := d.MemcpyHtoD(buf, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1<<20)
	if err := d.MemcpyDtoH(got, buf); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != src[i] {
			t.Fatalf("round-trip mismatch at byte %d", i)
		}
	}
	// Doubling leaves headroom after a non-power-of-two growth: an Alloc
	// that fits the grown region must not grow the backing again.
	if _, err := d.Alloc(100 << 10); err != nil {
		t.Fatal(err)
	}
	host = d.HostBytes() // 2 MiB after doubling past 1 MiB + 100 KiB
	if _, err := d.Alloc(256); err != nil {
		t.Fatal(err)
	}
	if d.HostBytes() != host {
		t.Fatalf("backing grew from %d to %d for an in-bounds Alloc", host, d.HostBytes())
	}
}

// Growth preserves bytes already written: an Alloc that doubles the backing
// must copy the old contents across.
func TestLazyBackingGrowthPreservesContents(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1<<30)
	first, err := d.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i ^ (i >> 8))
	}
	if err := d.MemcpyHtoD(first, src); err != nil {
		t.Fatal(err)
	}
	before := d.HostBytes()
	if _, err := d.Alloc(8 << 20); err != nil { // forces growth
		t.Fatal(err)
	}
	if d.HostBytes() <= before {
		t.Fatalf("backing did not grow (%d -> %d)", before, d.HostBytes())
	}
	got := make([]byte, 64<<10)
	if err := d.MemcpyDtoH(got, first); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != src[i] {
			t.Fatalf("contents lost during growth at byte %d", i)
		}
	}
}

// The host cap turns a runaway resident set into a typed error instead of
// an actual host OOM.
func TestHostCapTypedError(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 12<<30)
	d.SetMaxHostBytes(1 << 20)
	if _, err := d.Alloc(512 << 10); err != nil {
		t.Fatalf("in-cap Alloc: %v", err)
	}
	_, err := d.Alloc(2 << 20)
	var oom *HostOOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want *HostOOMError, got %v", err)
	}
	if oom.Limit != 1<<20 || oom.Need <= oom.Limit {
		t.Fatalf("HostOOMError fields Need=%d Limit=%d inconsistent", oom.Need, oom.Limit)
	}
	// Device-capacity exhaustion still reports the classic OOM, not a host
	// cap error: the request fits the host cap but not the declared size.
	small := NewDevice(perfmodel.TitanX, 1024)
	if _, err := small.Alloc(4096); err == nil || errors.As(err, &oom) {
		t.Fatalf("device OOM misreported: %v", err)
	}
}

// A flipped kill switch fails every operation class with the typed
// *KilledError wrapping ErrDeviceKilled, and Revive restores service.
func TestKillSwitchFailsOperations(t *testing.T) {
	ks := &KillSwitch{}
	d := NewDevice(perfmodel.TitanX, 1<<20)
	d.InjectFaults(NewFaultInjectorKilled(FaultConfig{}, ks))
	buf, err := d.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	ks.Kill()
	if _, err := d.Alloc(64); !errors.Is(err, ErrDeviceKilled) {
		t.Fatalf("Alloc on killed device: %v", err)
	}
	if err := d.MemcpyHtoD(buf, make([]byte, 64)); !errors.Is(err, ErrDeviceKilled) {
		t.Fatalf("HtoD on killed device: %v", err)
	}
	if err := d.MemcpyDtoH(make([]byte, 64), buf); !errors.Is(err, ErrDeviceKilled) {
		t.Fatalf("DtoH on killed device: %v", err)
	}
	var ke *KilledError
	_, err = d.Launch(2, 32, KernelFunc(func(b *Block) {}))
	if !errors.As(err, &ke) || ke.Op != FaultLaunch {
		t.Fatalf("Launch on killed device: want *KilledError{Launch}, got %v", err)
	}
	ks.Revive()
	if err := d.MemcpyHtoD(buf, make([]byte, 64)); err != nil {
		t.Fatalf("HtoD after revive: %v", err)
	}
	if _, err := d.Launch(2, 32, KernelFunc(func(b *Block) {})); err != nil {
		t.Fatalf("Launch after revive: %v", err)
	}
}

// Killing the device while a grid is running aborts the launch at a block
// boundary: the error is the typed device-loss error, partial stats are
// still tallied, and the grid does not run to completion.
func TestKillMidLaunchAborts(t *testing.T) {
	ks := &KillSwitch{}
	d := NewDevice(perfmodel.TitanX, 1<<20)
	d.InjectFaults(NewFaultInjectorKilled(FaultConfig{}, ks))
	ran := 0
	k := KernelFunc(func(b *Block) {
		ran++
		if ran == 3 {
			ks.Kill()
		}
		b.ForEachThread(func(th *Thread) { th.Ops(1) })
	})
	// One thread per block keeps the scheduler single-worker-friendly; the
	// kill must stop the loop long before the million blocks finish.
	stats, err := d.LaunchCtx(t.Context(), 1_000_000, 1, k)
	if !errors.Is(err, ErrDeviceKilled) {
		t.Fatalf("want ErrDeviceKilled, got %v", err)
	}
	if ran >= 1_000_000 {
		t.Fatal("kill did not stop the block loop early")
	}
	if stats == nil || stats.ALUOps == 0 {
		t.Fatalf("partial stats lost: %+v", stats)
	}
	// Revive: the same device must complete a full grid again.
	ks.Revive()
	if _, err := d.Launch(8, 32, KernelFunc(func(b *Block) {})); err != nil {
		t.Fatalf("launch after revive: %v", err)
	}
}

// A kill-only injector (zero fault rates, just a switch) must behave like
// no injector at all while the switch is off — in particular the rng-free
// paths must not panic and must inject nothing.
func TestKillOnlyInjectorInertUntilKilled(t *testing.T) {
	ks := &KillSwitch{}
	inj := NewFaultInjectorKilled(FaultConfig{}, ks)
	if inj == nil {
		t.Fatal("injector with a switch must not be nil")
	}
	d := NewDevice(perfmodel.TitanX, 1<<20)
	d.InjectFaults(inj)
	buf, err := d.Alloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.MemcpyHtoD(buf, make([]byte, 1<<10)); err != nil {
			t.Fatalf("iter %d HtoD: %v", i, err)
		}
		if err := d.MemcpyDtoH(make([]byte, 1<<10), buf); err != nil {
			t.Fatalf("iter %d DtoH: %v", i, err)
		}
	}
	if c := inj.Counts(); c.Total() != 0 {
		t.Fatalf("kill-only injector injected faults: %+v", c)
	}
	var nilKS *KillSwitch
	if nilKS.Killed() {
		t.Fatal("nil KillSwitch reports killed")
	}
}
