package cudasim

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfmodel"
)

// TestPanicAbortsRemainingBlocks: once any block panics, no worker may claim
// another block — the grid aborts instead of executing every remaining block
// before reporting the error.
func TestPanicAbortsRemainingBlocks(t *testing.T) {
	d := newTestDevice(t)
	const blocks = 10_000
	workers := min(runtime.GOMAXPROCS(0), blocks)

	// Block 0 closes the gate and panics; every other block waits for the
	// gate first, so no block can complete before the panic has happened.
	// The panicking worker sets the abort flag microseconds after the gate
	// closes, while the survivors are still inside their 1ms in-flight
	// block, so each of the other workers completes at most that one block.
	gate := make(chan struct{})
	var executed atomic.Int64
	k := KernelFunc(func(b *Block) {
		if b.Idx == 0 {
			close(gate)
			panic("block 0 failed")
		}
		<-gate
		time.Sleep(time.Millisecond)
		executed.Add(1)
	})
	_, err := d.Launch(blocks, 1, k)
	if err == nil {
		t.Fatal("panicking launch reported no error")
	}
	if got := executed.Load(); got > int64(workers) {
		t.Errorf("after the panic %d blocks still executed (want at most %d in-flight ones out of %d)",
			got, workers, blocks)
	}
}

// TestFirstPanicReportedDeterministically: when several blocks panic, the
// error must carry the lowest-indexed one, not whichever worker lost the
// race to a channel.
func TestFirstPanicReportedDeterministically(t *testing.T) {
	d := newTestDevice(t)
	for i := 0; i < 20; i++ {
		k := KernelFunc(func(b *Block) { panic(b.Idx) })
		_, err := d.Launch(64, 1, k)
		if err == nil {
			t.Fatal("panicking launch reported no error")
		}
		if !strings.Contains(err.Error(), "block 0: 0") {
			t.Fatalf("run %d: want the block-0 panic reported, got %v", i, err)
		}
	}
}

// TestPartialStatsOnPanic: a panicking worker's tallies must not be dropped —
// the stats returned with the error account for the work done before the
// failure.
func TestPartialStatsOnPanic(t *testing.T) {
	d := newTestDevice(t)
	// One block, one worker: the only tallies are the panicking worker's own.
	k := KernelFunc(func(b *Block) {
		b.ForEachThread(func(th *Thread) { th.Ops(10) })
		panic("after the work")
	})
	stats, err := d.Launch(1, 4, k)
	if err == nil {
		t.Fatal("panicking launch reported no error")
	}
	if stats == nil {
		t.Fatal("panicking launch returned nil stats")
	}
	if stats.ALUOps != 40 {
		t.Errorf("partial ALUOps = %d, want 40 (the panicking worker's tallies)", stats.ALUOps)
	}
}

// TestPartialStatsOnCancel: cancellation mid-grid likewise returns the
// tallies of the blocks that did run.
func TestPartialStatsOnCancel(t *testing.T) {
	d := newTestDevice(t)
	ctx, cancel := context.WithCancel(context.Background())
	k := KernelFunc(func(b *Block) {
		b.ForEachThread(func(th *Thread) { th.Ops(5) })
		cancel() // every block cancels; the first one already stops the grid
	})
	stats, err := d.LaunchCtx(ctx, 1_000, 2, k)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats == nil {
		t.Fatal("cancelled launch returned nil stats")
	}
	if stats.ALUOps < 10 {
		t.Errorf("partial ALUOps = %d, want at least the first block's 10", stats.ALUOps)
	}
}

// TestConcurrentLaunchesIndependentStats: launches on distinct devices run
// concurrently and each produces exact stats. Before the fix, a package-wide
// mergeMu serialised every stat merge process-wide; now merging is per-launch
// and lock-free (the race detector guards the claim).
func TestConcurrentLaunchesIndependentStats(t *testing.T) {
	const devices = 4
	const blocks = 64
	var wg sync.WaitGroup
	errs := make([]error, devices)
	stats := make([]*LaunchStats, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := NewDevice(perfmodel.TitanX, 1<<20)
			k := KernelFunc(func(b *Block) {
				b.ForEachThread(func(th *Thread) { th.Ops(i + 1) })
			})
			stats[i], errs[i] = d.Launch(blocks, 32, k)
		}()
	}
	wg.Wait()
	for i := 0; i < devices; i++ {
		if errs[i] != nil {
			t.Fatalf("device %d: %v", i, errs[i])
		}
		if want := int64(blocks * 32 * (i + 1)); stats[i].ALUOps != want {
			t.Errorf("device %d: ALUOps = %d, want %d", i, stats[i].ALUOps, want)
		}
	}
}
