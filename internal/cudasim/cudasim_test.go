package cudasim

import (
	"testing"

	"repro/internal/perfmodel"
)

func newTestDevice(t testing.TB) *Device {
	t.Helper()
	return NewDevice(perfmodel.TitanX, 16<<20)
}

func TestAllocAndCopy(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Size() != 1024 {
		t.Errorf("Size = %d", buf.Size())
	}
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	if err := d.MemcpyHtoD(buf, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1024)
	if err := d.MemcpyDtoH(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: got %d want %d", i, dst[i], src[i])
		}
	}
}

func TestAllocErrors(t *testing.T) {
	d := NewDevice(perfmodel.TitanX, 1024)
	if _, err := d.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
	if _, err := d.Alloc(2048); err == nil {
		t.Error("oversized alloc should fail")
	}
	buf, _ := d.Alloc(256)
	if err := d.MemcpyHtoD(buf, make([]byte, 512)); err == nil {
		t.Error("oversized HtoD should fail")
	}
	if err := d.MemcpyDtoH(make([]byte, 512), buf); err == nil {
		t.Error("oversized DtoH should fail")
	}
}

func TestLaunchShapeErrors(t *testing.T) {
	d := newTestDevice(t)
	noop := KernelFunc(func(b *Block) {})
	if _, err := d.Launch(0, 32, noop); err == nil {
		t.Error("zero blocks should fail")
	}
	if _, err := d.Launch(1, 0, noop); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := d.Launch(1, 2048, noop); err == nil {
		t.Error(">1024 threads should fail")
	}
}

func TestKernelPanicIsReported(t *testing.T) {
	d := newTestDevice(t)
	k := KernelFunc(func(b *Block) { panic("boom") })
	if _, err := d.Launch(4, 32, k); err == nil {
		t.Error("kernel panic should surface as error")
	}
}

// TestVectorAddKernel runs a complete small kernel end to end: global loads,
// ALU, global stores, across many blocks.
func TestVectorAddKernel(t *testing.T) {
	d := newTestDevice(t)
	const n = 4096
	a, _ := d.Alloc(n * 4)
	bBuf, _ := d.Alloc(n * 4)
	c, _ := d.Alloc(n * 4)
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		putU32(host, i, uint32(i))
	}
	if err := d.MemcpyHtoD(a, host); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		putU32(host, i, uint32(3*i+7))
	}
	if err := d.MemcpyHtoD(bBuf, host); err != nil {
		t.Fatal(err)
	}

	const threads = 128
	blocks := n / threads
	k := KernelFunc(func(blk *Block) {
		blk.ForEachThread(func(th *Thread) {
			idx := int64(blk.Idx*threads + th.Tid)
			x := th.GlobalLoad32(a, idx)
			y := th.GlobalLoad32(bBuf, idx)
			th.Ops(1)
			th.GlobalStore32(c, idx, x+y)
		})
	})
	stats, err := d.Launch(blocks, threads, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n*4)
	if err := d.MemcpyDtoH(out, c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := getU32(out, i); got != uint32(i)+uint32(3*i+7) {
			t.Fatalf("c[%d] = %d", i, got)
		}
	}
	if stats.ALUOps != n {
		t.Errorf("ALUOps = %d, want %d", stats.ALUOps, n)
	}
	// Perfectly coalesced: each warp's 32 4-byte accesses span exactly four
	// 32-byte sectors; 3 accesses (2 loads + 1 store) per warp-phase.
	warps := int64(n / 32)
	if stats.GlobalTransactions != 12*warps {
		t.Errorf("GlobalTransactions = %d, want %d", stats.GlobalTransactions, 12*warps)
	}
	if stats.GlobalLoadBytes != int64(n*8) || stats.GlobalStoreBytes != int64(n*4) {
		t.Errorf("traffic = %d/%d bytes", stats.GlobalLoadBytes, stats.GlobalStoreBytes)
	}
}

func TestStridedAccessIsUncoalesced(t *testing.T) {
	d := newTestDevice(t)
	buf, _ := d.Alloc(1 << 20)
	k := KernelFunc(func(blk *Block) {
		blk.ForEachThread(func(th *Thread) {
			// Stride of 128 bytes: every lane in its own sector.
			th.GlobalLoad32(buf, int64(th.Tid*32))
		})
	})
	stats, err := d.Launch(1, 32, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GlobalTransactions != 32 {
		t.Errorf("strided warp made %d transactions, want 32", stats.GlobalTransactions)
	}
}

func TestSharedMemoryAndConflicts(t *testing.T) {
	d := newTestDevice(t)

	// Conflict-free: thread i accesses word i (distinct banks).
	k1 := KernelFunc(func(blk *Block) {
		arr := blk.SharedAlloc(32)
		blk.ForEachThread(func(th *Thread) {
			th.SharedStore(arr, th.Tid, uint32(th.Tid))
		})
		blk.Sync()
		blk.ForEachThread(func(th *Thread) {
			if got := th.SharedLoad(arr, 31-th.Tid); got != uint32(31-th.Tid) {
				panic("shared readback wrong")
			}
		})
	})
	s1, err := d.Launch(1, 32, k1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.BankConflictReplays != 0 {
		t.Errorf("conflict-free kernel reported %d replays", s1.BankConflictReplays)
	}
	if s1.SharedCycles != 2 {
		t.Errorf("SharedCycles = %d, want 2 (one per phase)", s1.SharedCycles)
	}
	if s1.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", s1.Barriers)
	}

	// Worst case: all 32 threads hit bank 0 (stride 32 words).
	k2 := KernelFunc(func(blk *Block) {
		arr := blk.SharedAlloc(32 * 32)
		blk.ForEachThread(func(th *Thread) {
			th.SharedStore(arr, th.Tid*32, 1)
		})
	})
	s2, err := d.Launch(1, 32, k2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.BankConflictReplays != 31 {
		t.Errorf("32-way conflict reported %d replays, want 31", s2.BankConflictReplays)
	}
	if s2.SharedCycles != 32 {
		t.Errorf("SharedCycles = %d, want 32", s2.SharedCycles)
	}
}

func TestSharedAllocLimit(t *testing.T) {
	d := newTestDevice(t)
	k := KernelFunc(func(blk *Block) {
		blk.SharedAlloc(48*1024/4 + 1)
	})
	if _, err := d.Launch(1, 1, k); err == nil {
		t.Error("shared over-allocation should panic -> error")
	}
}

func TestGlobalBoundsChecked(t *testing.T) {
	d := newTestDevice(t)
	buf, _ := d.Alloc(16)
	k := KernelFunc(func(blk *Block) {
		blk.ForEachThread(func(th *Thread) {
			th.GlobalLoad32(buf, 4) // word 4 = bytes 16..20, out of range
		})
	})
	if _, err := d.Launch(1, 1, k); err == nil {
		t.Error("out-of-bounds global access should be caught")
	}
}

func TestSharedBoundsChecked(t *testing.T) {
	d := newTestDevice(t)
	k := KernelFunc(func(blk *Block) {
		arr := blk.SharedAlloc(8)
		blk.ForEachThread(func(th *Thread) {
			th.SharedLoad(arr, 8)
		})
	})
	if _, err := d.Launch(1, 1, k); err == nil {
		t.Error("out-of-bounds shared access should be caught")
	}
}

func TestLoad64RoundTrip(t *testing.T) {
	d := newTestDevice(t)
	buf, _ := d.Alloc(64)
	k := KernelFunc(func(blk *Block) {
		blk.ForEachThread(func(th *Thread) {
			th.GlobalStore64(buf, int64(th.Tid), uint64(th.Tid)*0x0101010101010101)
		})
		blk.ForEachThread(func(th *Thread) {
			if th.GlobalLoad64(buf, int64(th.Tid)) != uint64(th.Tid)*0x0101010101010101 {
				panic("load64 mismatch")
			}
		})
	})
	if _, err := d.Launch(1, 8, k); err != nil {
		t.Fatal(err)
	}
}

func TestLoad8(t *testing.T) {
	d := newTestDevice(t)
	buf, _ := d.Alloc(32)
	host := make([]byte, 32)
	for i := range host {
		host[i] = byte(i * 3)
	}
	if err := d.MemcpyHtoD(buf, host); err != nil {
		t.Fatal(err)
	}
	k := KernelFunc(func(blk *Block) {
		blk.ForEachThread(func(th *Thread) {
			if th.GlobalLoad8(buf, int64(th.Tid)) != byte(th.Tid*3) {
				panic("load8 mismatch")
			}
		})
	})
	stats, err := d.Launch(1, 32, k)
	if err != nil {
		t.Fatal(err)
	}
	// 32 single-byte accesses from one warp in one slot: one segment.
	if stats.GlobalTransactions != 1 {
		t.Errorf("byte loads made %d transactions, want 1", stats.GlobalTransactions)
	}
}

func TestStatsCostConversion(t *testing.T) {
	s := &LaunchStats{
		ALUOps:             1000,
		GlobalTransactions: 10,
		SharedCycles:       5,
		Blocks:             4,
		ThreadsPerBlock:    128,
	}
	c := s.Cost(true, 32)
	if c.ALUOps != 1000 || c.GlobalBytes != 320 || c.SharedBytes != 640 {
		t.Errorf("cost conversion wrong: %+v", c)
	}
	if !c.FuseLogic {
		t.Error("FuseLogic flag not propagated")
	}
	if c.Time(perfmodel.TitanX) <= 0 {
		t.Error("cost time should be positive")
	}
	unfused := s.Cost(false, 32)
	if unfused.Time(perfmodel.TitanX) < c.Time(perfmodel.TitanX) {
		t.Error("unfused ALU stream should not be faster")
	}
}

func putU32(b []byte, i int, v uint32) {
	b[i*4] = byte(v)
	b[i*4+1] = byte(v >> 8)
	b[i*4+2] = byte(v >> 16)
	b[i*4+3] = byte(v >> 24)
}

func getU32(b []byte, i int) uint32 {
	return uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
}
