// Package stats renders result tables in the layout of the paper's Tables
// I-V, aligning measured (or simulated) figures beside the paper's published
// ones so deviations are visible at a glance.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple column-aligned ASCII table builder.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// Ms formats a duration as milliseconds with two decimals, the unit of the
// paper's Table IV.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// Ratio formats a speedup factor with one decimal.
func Ratio(num, den time.Duration) string {
	if den == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(num)/float64(den))
}

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// I64 formats an int64.
func I64(v int64) string { return fmt.Sprintf("%d", v) }
