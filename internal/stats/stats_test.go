package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("very-long-name", "22")
	tab.AddRow("short") // missing cell becomes blank
	tab.AddRow("a", "b", "dropped-extra")
	out := tab.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // title, header, rule, 4 rows
		t.Fatalf("expected 7 lines, got %d:\n%s", len(lines), out)
	}
	// All rows aligned: same prefix width before the second column.
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Error("header or rule missing")
	}
	if strings.Contains(out, "dropped-extra") {
		t.Error("extra cell should be dropped")
	}
	width := len(lines[1])
	for _, l := range lines[3:] {
		if len(l) > width+2 {
			t.Errorf("row wider than header: %q", l)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x")
	if strings.HasPrefix(tab.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1234567*time.Microsecond) != "1234.57" {
		t.Errorf("Ms = %q", Ms(1234567*time.Microsecond))
	}
	if Ratio(10*time.Second, 2*time.Second) != "5.0" {
		t.Errorf("Ratio = %q", Ratio(10*time.Second, 2*time.Second))
	}
	if Ratio(time.Second, 0) != "inf" {
		t.Error("Ratio with zero denominator should be inf")
	}
	if F1(3.14159) != "3.1" || F2(3.14159) != "3.14" {
		t.Error("float formatters wrong")
	}
	if I(42) != "42" || I64(1<<40) != "1099511627776" {
		t.Error("int formatters wrong")
	}
}
