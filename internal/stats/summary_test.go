package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}

func TestSummarizeSingle(t *testing.T) {
	got := Summarize([]int{7})
	want := Summary{N: 1, Min: 7, Max: 7, Mean: 7}
	if got != want {
		t.Errorf("Summarize([7]) = %+v, want %+v", got, want)
	}
}

func TestSummarizeMoments(t *testing.T) {
	got := Summarize([]int{2, 4, 4, 4, 5, 5, 7, 9}) // the classic σ=2 sample
	if got.N != 8 || got.Min != 2 || got.Max != 9 {
		t.Errorf("order stats: %+v", got)
	}
	if math.Abs(got.Mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got.Mean)
	}
	if math.Abs(got.Std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", got.Std)
	}
}

func TestSummarizeNegative(t *testing.T) {
	got := Summarize([]int{-3, -1, -2})
	if got.Min != -3 || got.Max != -1 {
		t.Errorf("min/max on negatives: %+v", got)
	}
	if math.Abs(got.Mean+2) > 1e-12 {
		t.Errorf("mean = %v, want -2", got.Mean)
	}
}
