package stats

import "math"

// Summary holds the order statistics and moments of an integer score
// sample — the per-search score statistics attached to ranked top-K
// results (mean/std separate a lone spurious hit from a dense cluster of
// homologs at a glance).
type Summary struct {
	N    int     // sample size
	Min  int     // smallest observation (0 when N == 0)
	Max  int     // largest observation (0 when N == 0)
	Mean float64 // arithmetic mean (0 when N == 0)
	Std  float64 // population standard deviation (0 when N < 2)
}

// Summarize computes the Summary of a score sample in one pass
// (Welford's online algorithm, so huge samples neither overflow nor
// lose precision to a naive sum-of-squares).
func Summarize(scores []int) Summary {
	if len(scores) == 0 {
		return Summary{}
	}
	s := Summary{N: len(scores), Min: scores[0], Max: scores[0]}
	var mean, m2 float64
	for i, v := range scores {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		d := float64(v) - mean
		mean += d / float64(i+1)
		m2 += d * (float64(v) - mean)
	}
	s.Mean = mean
	if s.N > 1 {
		s.Std = math.Sqrt(m2 / float64(s.N))
	}
	return s
}
