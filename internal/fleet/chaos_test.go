package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/cudasim"
	"repro/internal/perfmodel"
)

// TestFleetChaosKillRevive is the fleet-level no-hang/no-wrong-score
// guarantee: every device carries a ≥10% flaky profile on every fault
// class, a chaos goroutine kills and revives random GPU members throughout,
// and concurrent clients demand that every Run either returns exact scores
// or a typed error within the deadline. Runs in CI under -race.
func TestFleetChaosKillRevive(t *testing.T) {
	flaky := func(seed uint64) cudasim.FaultConfig {
		return cudasim.FaultConfig{Seed: seed, HtoD: 0.12, DtoH: 0.12, Alloc: 0.10, Launch: 0.12, BitFlip: 0.10}
	}
	s, err := New(Config{
		Devices: []DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30, Flaky: flaky(1)},
			{Name: "d1", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30, Flaky: flaky(2)},
			{Name: "d2", Spec: perfmodel.TitanXHalf, GlobalBytes: 6 << 30, Flaky: flaky(3)},
			{Name: "d3", Spec: perfmodel.TitanXQuarter, GlobalBytes: 3 << 30, Flaky: flaky(4)},
			{Name: "cpu", CPU: true},
		},
		QuarantineAfter: 4,
		ProbeInterval:   25 * time.Millisecond,
		HedgeAfter:      20 * time.Millisecond,
		QueueDepth:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	stop := time.After(dur)
	stopCh := make(chan struct{})
	go func() {
		<-stop
		close(stopCh)
	}()

	// Chaos: kill a random GPU, hold it dead a while, revive, repeat.
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewPCG(77, 0xdead))
		names := []string{"d0", "d1", "d2", "d3"}
		for {
			select {
			case <-stopCh:
				// Leave everything alive at the end.
				for _, n := range names {
					s.ReviveDevice(n)
				}
				return
			case <-time.After(time.Duration(10+rng.IntN(30)) * time.Millisecond):
			}
			victim := names[rng.IntN(len(names))]
			s.KillDevice(victim)
			select {
			case <-stopCh:
				for _, n := range names {
					s.ReviveDevice(n)
				}
				return
			case <-time.After(time.Duration(20+rng.IntN(40)) * time.Millisecond):
			}
			s.ReviveDevice(victim)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	var mu sync.Mutex
	okRuns, failedRuns := 0, 0
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				pairs, want := testPairs(uint64(10_000*c+i+1), 24)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				got, err := s.Run(ctx, pairs, scoreExec(t))
				cancel()
				if err != nil {
					// Failure is allowed under chaos — but only typed
					// failure: the shard exhausted the fleet, with the
					// real cause in the chain.
					if !errors.Is(err, ErrNoDevices) && !errors.Is(err, cudasim.ErrDeviceKilled) &&
						!errors.Is(err, cudasim.ErrInjected) {
						errCh <- fmt.Errorf("client %d iter %d: untyped failure: %w", c, i, err)
						return
					}
					mu.Lock()
					failedRuns++
					mu.Unlock()
					continue
				}
				for k := range want {
					if got[k] != want[k] {
						errCh <- fmt.Errorf("client %d iter %d: WRONG SCORE [%d] = %d, want %d",
							c, i, k, got[k], want[k])
						return
					}
				}
				mu.Lock()
				okRuns++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	chaosWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if okRuns == 0 {
		t.Fatal("chaos soak produced zero successful runs")
	}
	st := s.Stats()
	if st.Kills == 0 || st.Requeues == 0 {
		t.Fatalf("chaos did not exercise kill/requeue paths: %+v", st)
	}
	t.Logf("chaos: ok=%d failed=%d stats=%+v", okRuns, failedRuns, st)

	// Aftermath: with chaos over and everything revived, the fleet must
	// recover to full service.
	deadline := time.Now().Add(10 * time.Second)
	for {
		pairs, want := testPairs(424242, 24)
		got, err := s.Run(context.Background(), pairs, scoreExec(t))
		if err == nil {
			ok := true
			for k := range want {
				if got[k] != want[k] {
					ok = false
				}
			}
			if ok {
				break
			}
			t.Fatal("post-chaos wrong scores")
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered post-chaos: %v; stats %+v", err, s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Stats must stay internally consistent while membership churns: the
// aggregates always equal the per-device sums, the device set never
// changes, and every state is valid. Run under -race with concurrent
// traffic, kills, revives and snapshot readers.
func TestStatsConsistentUnderChurn(t *testing.T) {
	s, err := New(Config{
		Devices:         fourGPUsPlusCPU(),
		QuarantineAfter: 2,
		ProbeInterval:   10 * time.Millisecond,
		HedgeAfter:      15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				pairs, _ := testPairs(uint64(c*1000+i+1), 16)
				s.Run(context.Background(), pairs, scoreExec(t))
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(5, 5))
		names := []string{"d0", "d1", "d2", "d3"}
		for {
			select {
			case <-stopCh:
				return
			case <-time.After(2 * time.Millisecond):
			}
			n := names[rng.IntN(len(names))]
			if rng.IntN(2) == 0 {
				s.KillDevice(n)
			} else {
				s.ReviveDevice(n)
			}
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		st := s.Stats()
		snaps++
		if len(st.Devices) != 5 {
			t.Fatalf("device set changed size: %d", len(st.Devices))
		}
		var steals, quar, read int64
		for _, d := range st.Devices {
			if d.State < Healthy || d.State > Probing {
				t.Fatalf("invalid state %v on %s", d.State, d.Name)
			}
			if d.Readmissions > d.Quarantines {
				t.Fatalf("%s readmitted (%d) more than quarantined (%d)", d.Name, d.Readmissions, d.Quarantines)
			}
			steals += d.Steals
			quar += d.Quarantines
			read += d.Readmissions
		}
		if st.Steals != steals || st.Quarantines != quar || st.Readmissions != read {
			t.Fatalf("aggregates drifted from per-device sums: %+v", st)
		}
	}
	close(stopCh)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshots taken")
	}
}
