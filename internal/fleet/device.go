package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/cudasim"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// State is a device's position in the health state machine:
//
//	Healthy ──failure──▶ Suspect ──more failures──▶ Quarantined
//	   ▲                    │                            │ cooldown
//	   │ success            ▼                            ▼
//	   └────────────── (back to Healthy)              Probing
//	   ▲                                                 │
//	   └──────── probe passes (readmission) ◀────────────┘
//	                                          probe fails → Quarantined
type State int

const (
	// Healthy devices take work normally.
	Healthy State = iota
	// Suspect devices still take work but are one failure streak away from
	// quarantine; a breaker opening on a GPU tier also marks GPU members
	// suspect.
	Suspect
	// Quarantined devices take no work; their queued shards are drained by
	// stealing. After the probe cooldown the prober moves them to Probing.
	Quarantined
	// Probing devices are running an out-of-band self-test; they take no
	// traffic until the probe passes and they are readmitted.
	Probing
)

var stateNames = [...]string{"healthy", "suspect", "quarantined", "probing"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalText renders the state name, so snapshots JSON-encode readably.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name.
func (s *State) UnmarshalText(b []byte) error {
	for i, n := range stateNames {
		if n == string(b) {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown state %q", b)
}

// DeviceConfig describes one fleet member.
type DeviceConfig struct {
	// Name identifies the device in stats, metrics and kill/revive calls.
	Name string
	// Spec is the simulated hardware for GPU members (ignored for CPU).
	Spec perfmodel.DeviceSpec
	// GlobalBytes is the member's declared device-memory capacity.
	GlobalBytes int64
	// Flaky is a per-device baseline fault profile layered under whatever
	// faults the caller's exec function injects — a seeded "bad card".
	Flaky cudasim.FaultConfig
	// CPU marks the host-fallback member: it takes work only when no GPU
	// member is eligible or a shard is being re-dispatched after failure.
	CPU bool
}

// Device is one fault domain of the fleet: an identity, a kill switch, a
// health state and a bounded work queue. The immutable identity fields are
// safe to read anywhere; everything mutable is guarded by the scheduler's
// lock.
type Device struct {
	id          int
	name        string
	cpu         bool
	spec        perfmodel.DeviceSpec
	globalBytes int64
	flaky       cudasim.FaultConfig
	ks          *cudasim.KillSwitch

	// All fields below are guarded by the owning Scheduler's mu.
	state         State
	queue         []*task
	consec        int // consecutive failures
	quarantinedAt time.Time
	running       *task
	runningSince  time.Time

	completed, failed int64
	steals            int64 // shards this device stole from another queue
	quarantines       int64
	readmissions      int64
	probes            int64
	timeouts          int64
	pairsDone         int64
	busy              time.Duration
	lastErr           string

	// Metric handles (created once at New; nil when no registry).
	mState, mDepth        *obs.Gauge
	mSteals, mQuar, mRead *obs.Counter
}

// Name returns the device's fleet-unique name.
func (d *Device) Name() string { return d.name }

// CPU reports whether this is the host-fallback member.
func (d *Device) CPU() bool { return d.cpu }

// Spec returns the simulated hardware spec (zero for the CPU member).
func (d *Device) Spec() perfmodel.DeviceSpec { return d.spec }

// GlobalBytes returns the member's declared device-memory capacity.
func (d *Device) GlobalBytes() int64 { return d.globalBytes }

// Killed reports whether the device's kill switch is currently flipped.
func (d *Device) Killed() bool { return d.ks.Killed() }

// NewInjector builds the fault injector an execution on this device must
// use: the device's baseline flaky profile combined with the caller's extra
// fault config (rates compose as independent failure sources), layered on
// the device's kill switch so a KillDevice aborts the execution mid-launch.
// The seed should be unique per execution so re-dispatched shards do not
// replay the identical fault stream.
func (d *Device) NewInjector(extra cudasim.FaultConfig, seed uint64) *cudasim.FaultInjector {
	cfg := cudasim.FaultConfig{
		Seed:    seed ^ d.flaky.Seed ^ (uint64(d.id+1) * 0x9e3779b97f4a7c15),
		HtoD:    combineRates(d.flaky.HtoD, extra.HtoD),
		DtoH:    combineRates(d.flaky.DtoH, extra.DtoH),
		Alloc:   combineRates(d.flaky.Alloc, extra.Alloc),
		Launch:  combineRates(d.flaky.Launch, extra.Launch),
		BitFlip: combineRates(d.flaky.BitFlip, extra.BitFlip),
	}
	return cudasim.NewFaultInjectorKilled(cfg, d.ks)
}

// combineRates merges two independent per-operation failure probabilities.
func combineRates(a, b float64) float64 {
	return 1 - (1-a)*(1-b)
}

// setState transitions the device (caller holds the scheduler lock) and
// mirrors the transition into the state gauge.
func (d *Device) setState(s State) {
	d.state = s
	if d.mState != nil {
		d.mState.Set(float64(s))
	}
}

// noteDepth mirrors the queue depth into its gauge (caller holds the lock).
func (d *Device) noteDepth() {
	if d.mDepth != nil {
		d.mDepth.Set(float64(len(d.queue)))
	}
}

// takesWork reports whether the device may pick up shards (caller holds the
// scheduler lock).
func (d *Device) takesWork() bool {
	return d.state == Healthy || d.state == Suspect
}

// selfTest is the out-of-band probe a quarantined device must pass to be
// readmitted: a fresh tiny simulated device with the member's flaky profile
// and kill switch attached runs an alloc → upload → kernel → download
// round-trip and the readback must be byte-exact. For the CPU member the
// probe is just the kill switch. Runs without the scheduler lock held.
func (d *Device) selfTest(seed uint64) error {
	if d.cpu {
		if d.ks.Killed() {
			return &cudasim.KilledError{Op: cudasim.FaultLaunch}
		}
		return nil
	}
	dev := cudasim.NewDevice(d.spec, 1<<20)
	dev.InjectFaults(d.NewInjector(cudasim.FaultConfig{}, seed))
	buf, err := dev.Alloc(256)
	if err != nil {
		return fmt.Errorf("fleet: probe alloc: %w", err)
	}
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i*31 + 7)
	}
	if err := dev.MemcpyHtoD(buf, src); err != nil {
		return fmt.Errorf("fleet: probe upload: %w", err)
	}
	k := cudasim.KernelFunc(func(b *cudasim.Block) {
		b.ForEachThread(func(t *cudasim.Thread) {
			t.Ops(1)
			_ = t.GlobalLoad8(buf, int64(t.Tid))
		})
	})
	if _, err := dev.Launch(1, 32, k); err != nil {
		return fmt.Errorf("fleet: probe launch: %w", err)
	}
	got := make([]byte, 256)
	if err := dev.MemcpyDtoH(got, buf); err != nil {
		return fmt.Errorf("fleet: probe download: %w", err)
	}
	if !bytes.Equal(got, src) {
		return errors.New("fleet: probe readback mismatch")
	}
	return nil
}
