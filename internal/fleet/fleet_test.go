package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/perfmodel"
	"repro/internal/swa"
)

// testPairs returns a deterministic batch and its reference scores.
func testPairs(seed uint64, n int) ([]dna.Pair, []int) {
	rng := rand.New(rand.NewPCG(seed, 0xf1ee7))
	pairs := dna.RandomPairs(rng, n, 12, 24)
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return pairs, want
}

// scoreExec is the simplest honest exec: it respects the device's kill
// switch and flaky profile via a real (tiny) cudasim round-trip, then
// scores on the host. The round-trip is what makes KillDevice and flaky
// profiles observable at the fleet level without dragging in the full
// pipeline.
func scoreExec(t *testing.T) ExecFunc {
	return func(ctx context.Context, d *Device, pairs []dna.Pair) ([]int, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !d.CPU() {
			dev := cudasim.NewDevice(d.Spec(), 1<<20)
			seed := execSeed.Add(1)
			dev.InjectFaults(d.NewInjector(cudasim.FaultConfig{}, seed))
			buf, err := dev.Alloc(64)
			if err != nil {
				return nil, err
			}
			if err := dev.MemcpyHtoD(buf, make([]byte, 64)); err != nil {
				return nil, err
			}
			if _, err := dev.Launch(1, 32, cudasim.KernelFunc(func(b *cudasim.Block) {})); err != nil {
				return nil, err
			}
		} else if d.Killed() {
			return nil, &cudasim.KilledError{Op: cudasim.FaultLaunch}
		}
		out := make([]int, len(pairs))
		for i, p := range pairs {
			out[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		}
		return out, nil
	}
}

var execSeed atomic.Uint64

func fourGPUsPlusCPU() []DeviceConfig {
	return []DeviceConfig{
		{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
		{Name: "d1", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
		{Name: "d2", Spec: perfmodel.TitanXHalf, GlobalBytes: 6 << 30},
		{Name: "d3", Spec: perfmodel.TitanXQuarter, GlobalBytes: 3 << 30},
		{Name: "cpu", CPU: true},
	}
}

func TestRunExactScores(t *testing.T) {
	s, err := New(Config{Devices: fourGPUsPlusCPU()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for iter := 0; iter < 8; iter++ {
		pairs, want := testPairs(uint64(iter+1), 32)
		got, err := s.Run(context.Background(), pairs, scoreExec(t))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d score[%d] = %d, want %d", iter, i, got[i], want[i])
			}
		}
	}
	st := s.Stats()
	if st.Batches != 8 || st.Shards < 8 {
		t.Fatalf("stats: %+v", st)
	}
	// GPU members should have shared the load; CPU should have taken none
	// (no failures occurred).
	var gpuPairs, cpuPairs int64
	for _, d := range st.Devices {
		if d.CPU {
			cpuPairs += d.PairsDone
		} else {
			gpuPairs += d.PairsDone
		}
	}
	if gpuPairs != 8*32 || cpuPairs != 0 {
		t.Fatalf("pairs split gpu=%d cpu=%d, want 256/0", gpuPairs, cpuPairs)
	}
}

func TestEmptyAndCancelled(t *testing.T) {
	s, err := New(Config{Devices: fourGPUsPlusCPU()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Run(context.Background(), nil, scoreExec(t))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v %v", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs, _ := testPairs(1, 8)
	if _, err := s.Run(ctx, pairs, scoreExec(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: %v", err)
	}
}

// Killing one device mid-traffic: every batch still completes with exact
// scores (lost shards re-queued), the device quarantines, and after revival
// the prober readmits it.
func TestKillQuarantineReadmit(t *testing.T) {
	s, err := New(Config{
		Devices:         fourGPUsPlusCPU(),
		QuarantineAfter: 2,
		ProbeInterval:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	stopTraffic := make(chan struct{})
	errCh := make(chan error, 64)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				pairs, want := testPairs(uint64(1000*c+i+1), 24)
				got, err := s.Run(context.Background(), pairs, scoreExec(t))
				if err != nil {
					errCh <- fmt.Errorf("client %d iter %d: %w", c, i, err)
					return
				}
				for k := range want {
					if got[k] != want[k] {
						errCh <- fmt.Errorf("client %d iter %d: wrong score[%d]", c, i, k)
						return
					}
				}
			}
		}(c)
	}

	time.Sleep(20 * time.Millisecond)
	if err := s.KillDevice("d1"); err != nil {
		t.Fatal(err)
	}
	// The kill surfaces as traffic failures; wait for quarantine.
	waitFor(t, 5*time.Second, func() bool {
		for _, d := range s.Stats().Devices {
			if d.Name == "d1" {
				return d.State == Quarantined
			}
		}
		return false
	}, "d1 quarantined")

	if err := s.ReviveDevice("d1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, d := range s.Stats().Devices {
			if d.Name == "d1" {
				return d.State == Healthy && d.Readmissions >= 1
			}
		}
		return false
	}, "d1 readmitted")

	close(stopTraffic)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := s.Stats()
	if st.Kills != 1 || st.Revives != 1 || st.Quarantines < 1 || st.Readmissions < 1 {
		t.Fatalf("lifecycle counters: %+v", st)
	}
	if st.Requeues == 0 {
		t.Fatalf("kill produced no re-queues: %+v", st)
	}
}

// With every device killed, Run must fail with the typed chain — never
// hang: ErrNoDevices and the underlying ErrDeviceKilled both matchable.
func TestAllKilledFailsTyped(t *testing.T) {
	s, err := New(Config{
		Devices: []DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
			{Name: "cpu", CPU: true},
		},
		QuarantineAfter: 100, // keep devices in rotation so attempts exhaust
		MaxRedispatch:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.KillDevice("d0")
	s.KillDevice("cpu")
	pairs, _ := testPairs(7, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = s.Run(ctx, pairs, scoreExec(t))
	if err == nil {
		t.Fatal("run on fully-killed fleet succeeded")
	}
	if !errors.Is(err, ErrNoDevices) {
		t.Fatalf("want ErrNoDevices in chain, got %v", err)
	}
	if !errors.Is(err, cudasim.ErrDeviceKilled) {
		t.Fatalf("want ErrDeviceKilled in chain, got %v", err)
	}
}

// A stalled device's shard is hedged onto a second device; the batch
// completes promptly with exact scores and nothing is double-merged.
func TestHedgingRescuesStraggler(t *testing.T) {
	stall := make(chan struct{})
	var stalled atomic.Bool
	exec := func(ctx context.Context, d *Device, pairs []dna.Pair) ([]int, error) {
		// The first execution (whichever device claims it) stalls until
		// released; its hedge twin runs through immediately.
		if stalled.CompareAndSwap(false, true) {
			select {
			case <-stall:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		out := make([]int, len(pairs))
		for i, p := range pairs {
			out[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		}
		return out, nil
	}
	s, err := New(Config{
		Devices: []DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
			{Name: "d1", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
			{Name: "cpu", CPU: true},
		},
		HedgeAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(stall); s.Close() }()

	pairs, want := testPairs(3, 16)
	done := make(chan struct{})
	var got []int
	var runErr error
	go func() {
		defer close(done)
		got, runErr = s.Run(context.Background(), pairs, exec)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hedged batch did not complete while d0 stalled")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if st := s.Stats(); st.Hedges == 0 {
		t.Fatalf("straggler was not hedged: %+v", st)
	}
}

// A device with a heavy flaky profile ends up quarantined by ordinary
// traffic while the batch results stay exact.
func TestFlakyDeviceQuarantined(t *testing.T) {
	devs := []DeviceConfig{
		{Name: "good", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
		{Name: "bad", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30,
			Flaky: cudasim.FaultConfig{Seed: 5, HtoD: 0.95, Launch: 0.95}},
		{Name: "cpu", CPU: true},
	}
	s, err := New(Config{Devices: devs, QuarantineAfter: 3, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A per-shard delay keeps one fast worker from draining every queue
	// before the flaky device ever wakes up to take a shard.
	inner := scoreExec(t)
	exec := func(ctx context.Context, d *Device, pairs []dna.Pair) ([]int, error) {
		time.Sleep(300 * time.Microsecond)
		return inner(ctx, d, pairs)
	}
	for i := 0; i < 30; i++ {
		pairs, want := testPairs(uint64(i+1), 16)
		got, err := s.Run(context.Background(), pairs, exec)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("iter %d wrong score[%d]", i, k)
			}
		}
	}
	for _, d := range s.Stats().Devices {
		if d.Name == "bad" && d.State != Quarantined {
			t.Fatalf("flaky device not quarantined: %+v", d)
		}
	}
}

// Work-stealing: with one device slow and one fast, the fast device steals
// from the slow one's queue.
func TestWorkStealing(t *testing.T) {
	exec := func(ctx context.Context, d *Device, pairs []dna.Pair) ([]int, error) {
		if d.Name() == "slow" {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		out := make([]int, len(pairs))
		for i, p := range pairs {
			out[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		}
		return out, nil
	}
	s, err := New(Config{
		Devices: []DeviceConfig{
			{Name: "slow", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
			{Name: "fast", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
		},
		MinShard:   2,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				pairs, want := testPairs(uint64(100*c+i+1), 8)
				got, err := s.Run(context.Background(), pairs, exec)
				if err != nil {
					t.Errorf("run: %v", err)
					return
				}
				for k := range want {
					if got[k] != want[k] {
						t.Errorf("wrong score")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if st := s.Stats(); st.Steals == 0 {
		t.Logf("no steals observed (timing-dependent, not fatal): %+v", st)
	}
}

// Close during in-flight work: Run returns ErrClosed promptly, workers
// exit, nothing hangs.
func TestCloseFailsInflight(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, d *Device, pairs []dna.Pair) ([]int, error) {
		select {
		case <-block:
			return nil, errors.New("released")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, err := New(Config{Devices: []DeviceConfig{
		{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 1 << 30},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pairs, _ := testPairs(1, 8)
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background(), pairs, exec)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	go func() { time.Sleep(10 * time.Millisecond); close(block) }()
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung across Close")
	}
	if _, err := s.Run(context.Background(), pairs, exec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: %v", err)
	}
}

func waitFor(t *testing.T, limit time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
