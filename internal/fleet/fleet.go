// Package fleet schedules alignment work across a fleet of simulated
// devices treated as independent fault domains. It is the scale-out layer
// between alignsvc's degradation ladder and the single-device pipeline:
// batches are split into shards, shards are spread over per-device bounded
// queues with work-stealing for load balance, stragglers are hedged onto a
// second device, and a per-device health state machine (healthy → suspect →
// quarantined → probing → readmitted) takes failing devices out of rotation
// and probes them back in. Device loss is first-class: KillDevice flips a
// cudasim.KillSwitch observed mid-launch, the lost shards are re-queued to
// surviving members (the CPU fallback is the last-resort member), and the
// merge of results is claim-once, so a hedged shard is never double-counted.
//
// The partitioning approach follows SWAPHI's multi-card design (static
// split plus dynamic work distribution); the health machinery mirrors what
// a cross-node cluster will need, kept in-process here (see DESIGN.md §12).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/obs"
)

// ErrClosed is returned by Run after Close.
var ErrClosed = errors.New("fleet: scheduler closed")

// ErrNoDevices is returned (wrapped, with the last shard error) when a
// shard has exhausted every live device.
var ErrNoDevices = errors.New("fleet: no device could run the shard")

// ExecFunc runs one shard on one device and returns exactly one score per
// pair. The fleet derives nothing about how the shard is executed — the
// caller's closure builds the pipeline, typically seeding a fresh injector
// via Device.NewInjector so every execution has an independent fault
// stream.
type ExecFunc func(ctx context.Context, d *Device, pairs []dna.Pair) ([]int, error)

// Config configures a Scheduler. The zero value of every knob gets a
// sensible default at New.
type Config struct {
	// Devices lists the fleet members. At least one is required; exactly
	// one CPU member is recommended as the last-resort fault domain.
	Devices []DeviceConfig
	// QueueDepth bounds each device's work queue (default 16). Run blocks
	// (respecting its context) when every eligible queue is full.
	QueueDepth int
	// MinShard is the smallest shard worth dispatching (default 4 pairs);
	// small batches use fewer shards rather than tiny ones.
	MinShard int
	// SuspectAfter is the consecutive-failure count that marks a device
	// suspect (default 1).
	SuspectAfter int
	// QuarantineAfter is the consecutive-failure count that quarantines a
	// device (default 3).
	QuarantineAfter int
	// ProbeInterval is the quarantine cooldown before a readmission probe
	// (default 1s).
	ProbeInterval time.Duration
	// HedgeAfter re-dispatches a shard still running on one device after
	// this long to a second device (0 = hedging disabled). The first copy
	// to finish wins; the other is discarded, never double-merged.
	HedgeAfter time.Duration
	// ShardTimeout bounds one execution attempt (0 = no per-shard bound).
	ShardTimeout time.Duration
	// MaxRedispatch bounds how many times one shard may be re-queued after
	// failures before the whole batch fails (default 2×len(Devices)+2).
	MaxRedispatch int
	// Metrics receives per-device gauges and fleet counters (nil = none).
	Metrics *obs.Registry
	// Seed feeds probe fault streams (exec seeds are the caller's concern).
	Seed uint64

	// now is a test hook for the clock; nil means time.Now.
	now func() time.Time
}

// Scheduler drives the fleet: one worker goroutine per device plus a prober
// and (when hedging is on) a hedger. Close stops everything and fails the
// in-flight batches with ErrClosed.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	devices  []*Device
	byName   map[string]*Device
	inflight map[*batch]struct{}
	closed   bool

	// Aggregate counters, guarded by mu (kept consistent with the
	// per-device counters: Stats sums both under one lock hold).
	batches, batchesFailed int64
	shards, requeues       int64
	hedges, hedgeWaste     int64
	kills, revives         int64

	seq  atomic.Uint64 // probe-seed derivation
	stop chan struct{}
	wg   sync.WaitGroup

	mBatches, mBatchesFailed, mShards *obs.Counter
	mRequeues, mHedges                *obs.Counter
	mKills, mRevives                  *obs.Counter
}

// batch is one Run call: the pairs, the score sink and the completion latch.
type batch struct {
	ctx    context.Context
	exec   ExecFunc
	pairs  []dna.Pair
	scores []int

	remaining atomic.Int64
	done      chan struct{}
	settled   atomic.Bool
	errMu     sync.Mutex
	err       error
}

// fail settles the batch with err (first settler wins) and releases Run.
func (b *batch) fail(err error) {
	if b.settled.CompareAndSwap(false, true) {
		b.errMu.Lock()
		b.err = err
		b.errMu.Unlock()
		close(b.done)
	}
}

// finishShard records one shard's completion; the last one releases Run.
func (b *batch) finishShard() {
	if b.remaining.Add(-1) == 0 && b.settled.CompareAndSwap(false, true) {
		close(b.done)
	}
}

// finished reports whether the batch has settled (success, failure or
// cancellation); settled batches' queued shards are dropped, not run.
func (b *batch) finished() bool { return b.settled.Load() }

// task is one shard of a batch. claimed is the double-merge guard: with
// hedging, two devices may finish the same shard, and only the CAS winner
// copies its scores and decrements the batch's remaining count.
type task struct {
	b       *batch
	offset  int
	n       int
	claimed atomic.Bool

	// Guarded by the scheduler mu.
	attempts int
	hedged   bool
	tried    map[int]bool // device id → failed here before
}

func (t *task) pairs() []dna.Pair { return t.b.pairs[t.offset : t.offset+t.n] }

// New builds the scheduler and starts its workers.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Devices) == 0 {
		return nil, errors.New("fleet: no devices configured")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MinShard <= 0 {
		cfg.MinShard = 4
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 1
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.MaxRedispatch <= 0 {
		cfg.MaxRedispatch = 2*len(cfg.Devices) + 2
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Scheduler{
		cfg:      cfg,
		byName:   make(map[string]*Device, len(cfg.Devices)),
		inflight: make(map[*batch]struct{}),
		stop:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i, dc := range cfg.Devices {
		if dc.Name == "" {
			return nil, fmt.Errorf("fleet: device %d has no name", i)
		}
		if _, dup := s.byName[dc.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate device name %q", dc.Name)
		}
		d := &Device{
			id:          i,
			name:        dc.Name,
			cpu:         dc.CPU,
			spec:        dc.Spec,
			globalBytes: dc.GlobalBytes,
			flaky:       dc.Flaky,
			ks:          &cudasim.KillSwitch{},
			state:       Healthy,
		}
		if m := cfg.Metrics; m != nil {
			d.mState = m.Gauge(obs.L("fleet_device_state", "device", d.name))
			d.mDepth = m.Gauge(obs.L("fleet_device_queue_depth", "device", d.name))
			d.mSteals = m.Counter(obs.L("fleet_steals_total", "device", d.name))
			d.mQuar = m.Counter(obs.L("fleet_quarantines_total", "device", d.name))
			d.mRead = m.Counter(obs.L("fleet_readmissions_total", "device", d.name))
			d.mState.Set(float64(Healthy))
		}
		s.devices = append(s.devices, d)
		s.byName[dc.Name] = d
	}
	if m := cfg.Metrics; m != nil {
		m.Help("fleet_device_state", "Device health state (0 healthy, 1 suspect, 2 quarantined, 3 probing)")
		m.Help("fleet_device_queue_depth", "Shards waiting in the device's queue")
		s.mBatches = m.Counter("fleet_batches_total")
		s.mBatchesFailed = m.Counter("fleet_batches_failed_total")
		s.mShards = m.Counter("fleet_shards_total")
		s.mRequeues = m.Counter("fleet_requeues_total")
		s.mHedges = m.Counter("fleet_hedges_total")
		s.mKills = m.Counter("fleet_kills_total")
		s.mRevives = m.Counter("fleet_revives_total")
	}
	for _, d := range s.devices {
		s.wg.Add(1)
		go s.worker(d)
	}
	s.wg.Add(1)
	go s.prober()
	if cfg.HedgeAfter > 0 {
		s.wg.Add(1)
		go s.hedger()
	}
	return s, nil
}

// Close stops the workers, fails every in-flight batch with ErrClosed and
// waits for the goroutines to exit. Safe to call once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for b := range s.inflight {
		b.fail(ErrClosed)
	}
	close(s.stop)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Run splits pairs into shards, spreads them over the fleet and blocks
// until every shard completed (returning exactly one score per pair), the
// context is done, or a shard exhausted every device (the returned error
// wraps both ErrNoDevices and the last shard error, so typed causes like
// cudasim.ErrDeviceKilled remain matchable with errors.Is).
func (s *Scheduler) Run(ctx context.Context, pairs []dna.Pair, exec ExecFunc) ([]int, error) {
	if len(pairs) == 0 {
		return []int{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := &batch{
		ctx:    ctx,
		exec:   exec,
		pairs:  pairs,
		scores: make([]int, len(pairs)),
		done:   make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	live := 0
	gpuLive := 0
	for _, d := range s.devices {
		if d.takesWork() {
			live++
			if !d.cpu {
				gpuLive++
			}
		}
	}
	if live == 0 {
		// Everything is quarantined or probing. The CPU member exists to
		// make this near-impossible, but a fully-killed fleet must still
		// fail typed rather than hang.
		s.mu.Unlock()
		return nil, ErrNoDevices
	}
	width := gpuLive
	if width == 0 {
		width = live
	}
	nShards := min(width, max(1, len(pairs)/s.cfg.MinShard))
	tasks := makeShards(b, nShards)
	b.remaining.Store(int64(len(tasks)))
	s.inflight[b] = struct{}{}
	s.batches++
	s.shards += int64(len(tasks))
	if s.mBatches != nil {
		s.mBatches.Inc()
		s.mShards.Add(int64(len(tasks)))
	}
	for _, t := range tasks {
		if err := s.enqueueLocked(t, false); err != nil {
			// Queues full: wait for space, re-checking the context (the
			// prober broadcasts every tick, bounding the wait).
			for err != nil && ctx.Err() == nil && !s.closed {
				s.cond.Wait()
				err = s.enqueueLocked(t, false)
			}
			if err != nil {
				if s.closed {
					err = ErrClosed
				} else {
					err = ctx.Err()
				}
				delete(s.inflight, b)
				s.mu.Unlock()
				b.fail(err)
				return nil, err
			}
		}
	}
	s.mu.Unlock()

	select {
	case <-b.done:
	case <-ctx.Done():
		b.fail(ctx.Err())
	}
	<-b.done

	s.mu.Lock()
	delete(s.inflight, b)
	s.mu.Unlock()

	b.errMu.Lock()
	err := b.err
	b.errMu.Unlock()
	if err != nil {
		s.mu.Lock()
		s.batchesFailed++
		if s.mBatchesFailed != nil {
			s.mBatchesFailed.Inc()
		}
		s.mu.Unlock()
		return nil, err
	}
	return b.scores, nil
}

// makeShards cuts the batch into n contiguous shards of near-equal size.
func makeShards(b *batch, n int) []*task {
	total := len(b.pairs)
	base, rem := total/n, total%n
	tasks := make([]*task, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		if sz == 0 {
			continue
		}
		tasks = append(tasks, &task{b: b, offset: off, n: sz, tried: make(map[int]bool)})
		off += sz
	}
	return tasks
}

// enqueueLocked places t on the best eligible queue. Preference order: the
// shortest queue among devices that take work, have room (unless force) and
// have not already failed this task — GPUs before the CPU member on first
// dispatch, anyone on re-dispatch. force (used for re-queues, where losing
// the shard is worse than overflowing the bound) ignores the depth bound
// and the tried set as a last resort. Caller holds mu.
func (s *Scheduler) enqueueLocked(t *task, force bool) error {
	pick := func(allowTried, allowCPU, bounded bool) *Device {
		var best *Device
		for _, d := range s.devices {
			if !d.takesWork() {
				continue
			}
			if d.cpu && !allowCPU {
				continue
			}
			if !allowTried && t.tried[d.id] {
				continue
			}
			if bounded && len(d.queue) >= s.cfg.QueueDepth {
				continue
			}
			if best == nil || len(d.queue) < len(best.queue) {
				best = d
			}
		}
		return best
	}
	redispatch := t.attempts > 0
	d := pick(false, redispatch, true)
	if d == nil {
		d = pick(false, true, true) // open up the CPU member
	}
	if d == nil && force {
		d = pick(false, true, false) // ignore the depth bound
		if d == nil {
			d = pick(true, true, false) // last resort: retry a tried device
		}
	}
	if d == nil {
		if pick(true, true, false) == nil {
			return ErrNoDevices
		}
		return errQueuesFull
	}
	d.queue = append(d.queue, t)
	d.noteDepth()
	s.cond.Broadcast()
	return nil
}

var errQueuesFull = errors.New("fleet: all eligible queues full")

// worker is one device's execution loop: take a shard (own queue first,
// then steal), run it, account the outcome.
func (s *Scheduler) worker(d *Device) {
	defer s.wg.Done()
	for {
		t := s.take(d)
		if t == nil {
			return
		}
		s.runTask(d, t)
	}
}

// take blocks until the device has a shard to run (or the scheduler is
// closed, returning nil). Quarantined and probing devices do not take work;
// their own queues are drained by the other members' stealing.
func (s *Scheduler) take(d *Device) *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if d.takesWork() {
			// Own queue first (FIFO).
			if t := popFront(&d.queue, d); t != nil {
				d.running, d.runningSince = t, s.cfg.now()
				return t
			}
			// Steal from the longest queue — including quarantined
			// members' queues, which is how their stranded shards escape.
			// The CPU member stays last-resort: while any GPU is live it
			// only steals shards that already failed somewhere or shards
			// orphaned on a member that can no longer run them.
			gpuLive := false
			for _, v := range s.devices {
				if !v.cpu && v.takesWork() {
					gpuLive = true
					break
				}
			}
			var victim *Device
			for _, v := range s.devices {
				if v == d || len(v.queue) == 0 {
					continue
				}
				if victim == nil || len(v.queue) > len(victim.queue) {
					victim = v
				}
			}
			if victim != nil {
				steal := func(*task) bool { return true }
				if d.cpu && gpuLive && victim.takesWork() {
					steal = func(t *task) bool { return t.attempts > 0 }
				}
				if t := popBackWhere(&victim.queue, victim, steal); t != nil {
					d.steals++
					if d.mSteals != nil {
						d.mSteals.Inc()
					}
					d.running, d.runningSince = t, s.cfg.now()
					return t
				}
			}
		}
		s.cond.Wait()
	}
}

// popFront pops the first live task (dropping settled/claimed ones).
func popFront(q *[]*task, d *Device) *task {
	for len(*q) > 0 {
		t := (*q)[0]
		*q = (*q)[1:]
		d.noteDepth()
		if t.b.finished() || t.claimed.Load() {
			continue
		}
		return t
	}
	return nil
}

// popBackWhere pops the last live task matching ok — stealing takes from
// the cold end. Dead (settled/claimed) tasks are dropped regardless;
// non-matching live tasks stay queued.
func popBackWhere(q *[]*task, d *Device, ok func(*task) bool) *task {
	for i := len(*q) - 1; i >= 0; i-- {
		t := (*q)[i]
		if t.b.finished() || t.claimed.Load() {
			*q = append((*q)[:i], (*q)[i+1:]...)
			d.noteDepth()
			continue
		}
		if !ok(t) {
			continue
		}
		*q = append((*q)[:i], (*q)[i+1:]...)
		d.noteDepth()
		return t
	}
	return nil
}

// runTask executes one shard on one device and settles the outcome.
func (s *Scheduler) runTask(d *Device, t *task) {
	ctx := t.b.ctx
	cancel := func() {}
	if s.cfg.ShardTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ShardTimeout)
	}
	start := s.cfg.now()
	scores, err := runGuarded(ctx, t.b.exec, d, t.pairs())
	cancel()
	elapsed := s.cfg.now().Sub(start)
	if err == nil && len(scores) != t.n {
		err = fmt.Errorf("fleet: exec returned %d scores for %d pairs", len(scores), t.n)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	d.running, d.runningSince = nil, time.Time{}
	d.busy += elapsed

	if err == nil {
		d.completed++
		d.pairsDone += int64(t.n)
		s.noteSuccessLocked(d)
		if t.claimed.CompareAndSwap(false, true) {
			copy(t.b.scores[t.offset:t.offset+t.n], scores)
			t.b.finishShard()
		} else {
			s.hedgeWaste++ // the hedge twin won; this result is discarded
		}
		s.cond.Broadcast()
		return
	}

	if t.b.ctx.Err() != nil {
		// The batch was cancelled, not the device failing: the batch is
		// settled by Run; don't punish the device or re-queue.
		s.cond.Broadcast()
		return
	}
	d.failed++
	d.lastErr = err.Error()
	if errors.Is(err, context.DeadlineExceeded) {
		d.timeouts++
	}
	s.noteFailureLocked(d)
	if t.b.finished() || t.claimed.Load() {
		s.cond.Broadcast()
		return // a hedge twin already completed the shard
	}
	t.tried[d.id] = true
	t.attempts++
	if t.attempts > s.cfg.MaxRedispatch {
		t.b.fail(fmt.Errorf("fleet: shard [%d,%d) gave up after %d attempts: %w (last error: %w)",
			t.offset, t.offset+t.n, t.attempts, ErrNoDevices, err))
		s.cond.Broadcast()
		return
	}
	s.requeues++
	if s.mRequeues != nil {
		s.mRequeues.Inc()
	}
	if qerr := s.enqueueLocked(t, true); qerr != nil {
		t.b.fail(fmt.Errorf("fleet: shard [%d,%d) unplaceable: %w (last error: %w)",
			t.offset, t.offset+t.n, ErrNoDevices, err))
	}
	s.cond.Broadcast()
}

// runGuarded invokes exec, converting a panic into an error so one bad
// kernel cannot take down the whole fleet's worker.
func runGuarded(ctx context.Context, exec ExecFunc, d *Device, pairs []dna.Pair) (scores []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: exec panicked on %s: %v", d.Name(), r)
		}
	}()
	return exec(ctx, d, pairs)
}

// noteSuccessLocked resets the failure streak; a suspect device that
// serves successfully is healthy again.
func (s *Scheduler) noteSuccessLocked(d *Device) {
	d.consec = 0
	if d.state == Suspect {
		d.setState(Healthy)
	}
}

// noteFailureLocked advances the failure streak through the state machine.
func (s *Scheduler) noteFailureLocked(d *Device) {
	d.consec++
	switch {
	case d.consec >= s.cfg.QuarantineAfter && d.state != Quarantined:
		d.setState(Quarantined)
		d.quarantinedAt = s.cfg.now()
		d.quarantines++
		if d.mQuar != nil {
			d.mQuar.Inc()
		}
	case d.consec >= s.cfg.SuspectAfter && d.state == Healthy:
		d.setState(Suspect)
	}
}

// KillDevice flips the named device's kill switch: every operation on it —
// including launches already in flight — fails with a typed
// cudasim.ErrDeviceKilled until ReviveDevice. Quarantine follows from the
// traffic-driven failures, exactly as a real device loss would surface.
func (s *Scheduler) KillDevice(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("fleet: unknown device %q", name)
	}
	d.ks.Kill()
	s.kills++
	if s.mKills != nil {
		s.mKills.Inc()
	}
	return nil
}

// ReviveDevice clears the named device's kill switch. Readmission is not
// immediate: the device stays quarantined until the prober's self-test
// passes.
func (s *Scheduler) ReviveDevice(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("fleet: unknown device %q", name)
	}
	d.ks.Revive()
	s.revives++
	if s.mRevives != nil {
		s.mRevives.Inc()
	}
	return nil
}

// NoteBreakerOpen feeds alignsvc's circuit-breaker signal into device
// health: when a GPU tier's breaker opens, every healthy GPU member turns
// suspect, so the next few shard failures quarantine the right device
// quickly instead of re-walking the whole failure streak.
func (s *Scheduler) NoteBreakerOpen(tier string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.devices {
		if !d.cpu && d.state == Healthy {
			d.setState(Suspect)
		}
	}
}

// prober periodically moves quarantined devices (past the cooldown) to
// Probing, runs the self-test off-lock, and readmits or re-quarantines. It
// also broadcasts every tick so enqueue backpressure waits re-check their
// contexts within a bounded delay.
func (s *Scheduler) prober() {
	defer s.wg.Done()
	tick := max(s.cfg.ProbeInterval/4, time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		var due []*Device
		for _, d := range s.devices {
			if d.state == Quarantined && s.cfg.now().Sub(d.quarantinedAt) >= s.cfg.ProbeInterval {
				d.setState(Probing)
				d.probes++
				due = append(due, d)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		for _, d := range due {
			err := d.selfTest(s.seq.Add(1))
			s.mu.Lock()
			if d.state == Probing { // Close may have raced; be defensive
				if err == nil {
					d.setState(Healthy)
					d.consec = 0
					d.readmissions++
					if d.mRead != nil {
						d.mRead.Inc()
					}
					s.cond.Broadcast()
				} else {
					d.setState(Quarantined)
					d.quarantinedAt = s.cfg.now()
					d.lastErr = err.Error()
				}
			}
			s.mu.Unlock()
		}
	}
}

// hedger re-dispatches the slowest outstanding shard: any shard running on
// one device longer than HedgeAfter is duplicated (once) onto another
// eligible device's queue. The claim CAS in runTask guarantees only one
// copy's scores are merged.
func (s *Scheduler) hedger() {
	defer s.wg.Done()
	tick := max(s.cfg.HedgeAfter/2, time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		now := s.cfg.now()
		for _, d := range s.devices {
			t := d.running
			if t == nil || t.hedged || now.Sub(d.runningSince) < s.cfg.HedgeAfter {
				continue
			}
			if t.b.finished() || t.claimed.Load() {
				continue
			}
			// Find a second home: takes work, not the current runner, has
			// room, and hasn't already failed this shard.
			var alt *Device
			for _, v := range s.devices {
				if v == d || !v.takesWork() || t.tried[v.id] || len(v.queue) >= s.cfg.QueueDepth {
					continue
				}
				if alt == nil || len(v.queue) < len(alt.queue) {
					alt = v
				}
			}
			if alt == nil {
				continue
			}
			t.hedged = true
			alt.queue = append(alt.queue, t)
			alt.noteDepth()
			s.hedges++
			if s.mHedges != nil {
				s.mHedges.Inc()
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
