package fleet

// DeviceSnapshot is one device's state at snapshot time.
type DeviceSnapshot struct {
	Name         string `json:"name"`
	State        State  `json:"state"`
	CPU          bool   `json:"cpu,omitempty"`
	Killed       bool   `json:"killed,omitempty"`
	QueueDepth   int    `json:"queue_depth"`
	Completed    int64  `json:"completed"`
	Failed       int64  `json:"failed"`
	Steals       int64  `json:"steals"`
	Quarantines  int64  `json:"quarantines"`
	Readmissions int64  `json:"readmissions"`
	Probes       int64  `json:"probes"`
	Timeouts     int64  `json:"timeouts"`
	PairsDone    int64  `json:"pairs_done"`
	BusyNS       int64  `json:"busy_ns"`
	LastError    string `json:"last_error,omitempty"`
}

// Stats is a consistent point-in-time view of the fleet: every field —
// per-device and aggregate — is read under one hold of the scheduler lock,
// so the aggregates always equal the sums of the per-device rows even while
// devices are being quarantined, readmitted or killed concurrently.
type Stats struct {
	Devices []DeviceSnapshot `json:"devices"`

	Batches       int64 `json:"batches"`
	BatchesFailed int64 `json:"batches_failed"`
	Shards        int64 `json:"shards"`
	Requeues      int64 `json:"requeues"`
	Hedges        int64 `json:"hedges"`
	HedgeWaste    int64 `json:"hedge_waste"`
	Kills         int64 `json:"kills"`
	Revives       int64 `json:"revives"`

	// Sums of the per-device rows, computed under the same lock hold.
	Steals       int64 `json:"steals"`
	Quarantines  int64 `json:"quarantines"`
	Readmissions int64 `json:"readmissions"`
}

// Stats snapshots the fleet under a single lock hold.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Devices:       make([]DeviceSnapshot, 0, len(s.devices)),
		Batches:       s.batches,
		BatchesFailed: s.batchesFailed,
		Shards:        s.shards,
		Requeues:      s.requeues,
		Hedges:        s.hedges,
		HedgeWaste:    s.hedgeWaste,
		Kills:         s.kills,
		Revives:       s.revives,
	}
	for _, d := range s.devices {
		snap := DeviceSnapshot{
			Name:         d.name,
			State:        d.state,
			CPU:          d.cpu,
			Killed:       d.ks.Killed(),
			QueueDepth:   len(d.queue),
			Completed:    d.completed,
			Failed:       d.failed,
			Steals:       d.steals,
			Quarantines:  d.quarantines,
			Readmissions: d.readmissions,
			Probes:       d.probes,
			Timeouts:     d.timeouts,
			PairsDone:    d.pairsDone,
			BusyNS:       int64(d.busy),
			LastError:    d.lastErr,
		}
		st.Steals += snap.Steals
		st.Quarantines += snap.Quarantines
		st.Readmissions += snap.Readmissions
		st.Devices = append(st.Devices, snap)
	}
	return st
}

// Device returns the named device (for exec closures and tests) or nil.
func (s *Scheduler) Device(name string) *Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byName[name]
}

// DeviceNames lists the fleet members in configuration order.
func (s *Scheduler) DeviceNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.devices))
	for i, d := range s.devices {
		names[i] = d.name
	}
	return names
}
