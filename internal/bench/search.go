package bench

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/pipeline"
)

// SearchRun is one k-mer length of the corpus-search selectivity sweep:
// the same synthetic corpus indexed at this k, queried with the same
// query set, timed on the host clock. KmerPassRate is the stage-one
// (posting-list) survivor fraction; PassRate is the final fraction that
// reached SW scoring after the bitap refinement — the funnel the two
// stages buy over scanning everything.
type SearchRun struct {
	K       int `json:"k"`
	Queries int `json:"queries"`

	KmerPassRate       float64 `json:"kmer_pass_rate"`
	PassRate           float64 `json:"pass_rate"`
	CandidatesPerQuery float64 `json:"candidates_per_query"`

	// ScoredCells are the DP cells the prefiltered searches actually
	// paid for; BruteCells is what scanning the whole corpus would have
	// cost for the same queries.
	ScoredCells int64 `json:"scored_cells"`
	BruteCells  int64 `json:"brute_cells"`

	WallNS int64 `json:"wall_ns"`
	// WallGCUPS is ScoredCells over WallNS — the throughput of the
	// prefiltered query path on this host.
	WallGCUPS float64 `json:"wall_gcups"`

	// ExactTopK records that every query's prefiltered top-K came back
	// identical to a scan-all (prefilter disabled) search of the same
	// index — checked outside the timed region. A selective index that
	// drops true hits is not a result.
	ExactTopK bool `json:"exact_vs_brute"`
}

// SearchSection is the optional corpus-search sweep (swabench -search):
// one deterministic synthetic corpus with planted homologs, indexed once
// per k, with per-k selectivity, throughput and exactness-vs-brute-force.
// All numbers live on the host (wall) clock.
type SearchSection struct {
	Seqs     int         `json:"seqs"`
	SeqLen   int         `json:"seq_len"`
	QueryLen int         `json:"query_len"`
	TopK     int         `json:"top_k"`
	Backend  string      `json:"backend"`
	Runs     []SearchRun `json:"runs"`
}

// Shape of the synthetic search corpus. Planting a homolog of the base
// query every plantEvery sequences guarantees far more true hits than
// searchTopK, so the exactness check exercises real ranking pressure.
const (
	searchSeqLen   = 128
	searchQueryLen = 64
	searchTopK     = 10
	plantEvery     = 100
	searchQueries  = 6
)

// CollectSearch builds a deterministic synthetic corpus of seqs
// sequences once per k in ks (on-disk index in a temp dir, removed
// afterwards), runs the same query set through each index on the named
// scoring backend, and attaches the selectivity section to f. Every
// query's prefiltered top-K is verified identical to a scan-all search
// outside the timed region.
func (f *File) CollectSearch(ctx context.Context, seqs int, ks []int, backendName string) error {
	if seqs < plantEvery*2 {
		return fmt.Errorf("bench: search corpus of %d seqs, want at least %d", seqs, plantEvery*2)
	}
	if len(ks) == 0 {
		ks = []int{4, 6, 8}
	}
	be, err := alignsvc.NewBackend(backendName, pipeline.Config{}, 0)
	if err != nil {
		return fmt.Errorf("bench: search: %w", err)
	}

	// One deterministic corpus and query set, reused across every k so
	// the runs differ only in the index.
	rng := rand.New(rand.NewPCG(41, 9))
	base := dna.RandSeq(rng, searchQueryLen)
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
	recs := make([]dna.Record, seqs)
	for i := range recs {
		y := dna.RandSeq(rng, searchSeqLen)
		if i%plantEvery == 0 {
			cp := mut.Mutate(rng, base)
			if len(cp) > searchSeqLen {
				cp = cp[:searchSeqLen]
			}
			copy(y[rng.IntN(searchSeqLen-len(cp)+1):], cp)
		}
		recs[i] = dna.Record{Name: fmt.Sprintf("bench-%06d", i), Seq: y}
	}
	queries := make([]dna.Seq, searchQueries)
	for i := range queries {
		q := mut.Mutate(rng, base)
		if len(q) > searchQueryLen {
			q = q[:searchQueryLen]
		}
		queries[i] = q
	}

	root, err := os.MkdirTemp("", "swabench-corpus-*")
	if err != nil {
		return fmt.Errorf("bench: search: %w", err)
	}
	defer os.RemoveAll(root)

	sec := &SearchSection{
		Seqs: seqs, SeqLen: searchSeqLen, QueryLen: searchQueryLen,
		TopK: searchTopK, Backend: be.Name(),
	}
	for _, k := range ks {
		c, err := corpus.Build(filepath.Join(root, fmt.Sprintf("k%d", k)), recs, corpus.IndexOptions{K: k})
		if err != nil {
			return fmt.Errorf("bench: search: index k=%d: %w", k, err)
		}
		s := corpus.NewSearcher(c, be, nil)

		run := SearchRun{K: k, Queries: len(queries), ExactTopK: true}
		var kmerSurvivors, candidates int64
		results := make([]*corpus.Result, len(queries))
		begin := time.Now()
		for i, q := range queries {
			res, err := s.Search(ctx, q, corpus.Params{TopK: searchTopK})
			if err != nil {
				return fmt.Errorf("bench: search: k=%d query %d: %w", k, i, err)
			}
			results[i] = res
		}
		wall := time.Since(begin)

		// Exactness and the funnel accounting happen outside the timed
		// region: the scan-all baseline costs ~seqs/candidates times the
		// prefiltered search and must not pollute its wall clock.
		for i, q := range queries {
			res := results[i]
			kmerSurvivors += int64(res.Stats.KmerCandidates)
			candidates += int64(res.Stats.Candidates)
			run.ScoredCells += res.Stats.Cells
			run.BruteCells += res.Stats.BruteCells
			brute, err := s.Search(ctx, q, corpus.Params{TopK: searchTopK, MinKmerHits: -1, MaxEdits: -1})
			if err != nil {
				return fmt.Errorf("bench: search: k=%d brute query %d: %w", k, i, err)
			}
			if !reflect.DeepEqual(res.Hits, brute.Hits) {
				run.ExactTopK = false
			}
		}
		nq := float64(len(queries))
		run.KmerPassRate = float64(kmerSurvivors) / nq / float64(seqs)
		run.PassRate = float64(candidates) / nq / float64(seqs)
		run.CandidatesPerQuery = float64(candidates) / nq
		run.WallNS = wall.Nanoseconds()
		if wall < time.Nanosecond {
			wall = time.Nanosecond
		}
		run.WallGCUPS = float64(run.ScoredCells) / 1e9 / wall.Seconds()
		sec.Runs = append(sec.Runs, run)
	}
	f.Search = sec
	return nil
}

// validate checks the search section's invariants for Validate.
func (s *SearchSection) validate() error {
	if s.Seqs <= 0 || s.QueryLen <= 0 || s.TopK <= 0 || s.Backend == "" {
		return fmt.Errorf("bench: search section shape malformed: %+v", s)
	}
	if len(s.Runs) == 0 {
		return fmt.Errorf("bench: search section has no runs")
	}
	seen := make(map[int]bool)
	for i, r := range s.Runs {
		if r.K <= 0 || seen[r.K] {
			return fmt.Errorf("bench: search run %d has k=%d, want positive and distinct", i, r.K)
		}
		seen[r.K] = true
		if r.Queries <= 0 {
			return fmt.Errorf("bench: search run k=%d measured no queries", r.K)
		}
		if r.KmerPassRate < 0 || r.KmerPassRate > 1 || r.PassRate < 0 || r.PassRate > 1 {
			return fmt.Errorf("bench: search run k=%d pass rates (%v kmer, %v final) out of [0, 1]",
				r.K, r.KmerPassRate, r.PassRate)
		}
		if r.PassRate > r.KmerPassRate {
			return fmt.Errorf("bench: search run k=%d final pass rate %v exceeds stage-one rate %v — the bitap stage cannot add candidates",
				r.K, r.PassRate, r.KmerPassRate)
		}
		if r.ScoredCells <= 0 || r.BruteCells < r.ScoredCells {
			return fmt.Errorf("bench: search run k=%d cell accounting inverted (scored %d, brute %d)",
				r.K, r.ScoredCells, r.BruteCells)
		}
		if r.WallNS <= 0 || !finitePositive(r.WallGCUPS) {
			return fmt.Errorf("bench: search run k=%d has wall %dns, WallGCUPS %v, want finite > 0",
				r.K, r.WallNS, r.WallGCUPS)
		}
		if !r.ExactTopK {
			return fmt.Errorf("bench: search run k=%d diverged from the scan-all baseline — the prefilter dropped true hits",
				r.K)
		}
	}
	return nil
}

// SearchRunAt returns the run with the given k, or nil.
func (s *SearchSection) SearchRunAt(k int) *SearchRun {
	if s == nil {
		return nil
	}
	for i := range s.Runs {
		if s.Runs[i].K == k {
			return &s.Runs[i]
		}
	}
	return nil
}
