package bench

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestValidateRejectsNonFiniteWallGCUPS is the regression test for the
// wall-clock metric bug: the old check (`WallGCUPS <= 0`) silently accepted
// +Inf and NaN, which a ~0 elapsed measurement produces when the division
// is not clamped. Validate must reject the whole non-finite family, on both
// clocks and in every section that carries a GCUPS number.
func TestValidateRejectsNonFiniteWallGCUPS(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"wall +Inf", func(f *File) { f.Runs[0].WallGCUPS = math.Inf(1) }},
		{"wall NaN", func(f *File) { f.Runs[0].WallGCUPS = math.NaN() }},
		{"sim +Inf", func(f *File) { f.Runs[1].GCUPS = math.Inf(1) }},
		{"sim NaN", func(f *File) { f.Runs[1].GCUPS = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := collectUnit(t)
			tc.mutate(f)
			if err := f.Validate(); err == nil {
				t.Error("Validate accepted a non-finite GCUPS")
			}
		})
	}
}

// TestWallGCUPSClampIsFinite pins the producer side of the same bug: a
// zero (or negative) elapsed measurement must price to a finite positive
// number, never +Inf/NaN.
func TestWallGCUPSClampIsFinite(t *testing.T) {
	for _, wall := range []time.Duration{0, -5 * time.Nanosecond, time.Nanosecond} {
		v := wallGCUPS(4, 100, 200, wall)
		if !finitePositive(v) {
			t.Fatalf("wallGCUPS(wall=%v) = %v, want finite > 0", wall, v)
		}
	}
}

// TestCollectBackendsSectionValidates runs the real backends over the unit
// workload and checks the section survives Validate, every run is exact
// against the scalar reference, and the headline speedup is filled in and
// sane (striped must beat the simulated-GPU backend on the wall clock).
func TestCollectBackendsSectionValidates(t *testing.T) {
	f := collectUnit(t)
	names := []string{"striped", "bitwise-sim", "cpu-ref"}
	if err := f.CollectBackends(context.Background(), workload.Unit, pipeline.Config{}, 32, names); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Backends) != len(names) {
		t.Fatalf("%d sections, want %d", len(f.Backends), len(names))
	}
	for _, sec := range f.Backends {
		if len(sec.Runs) != len(workload.Unit.NList) {
			t.Fatalf("%s: %d runs, want %d", sec.Name, len(sec.Runs), len(workload.Unit.NList))
		}
		for _, r := range sec.Runs {
			if !r.Exact {
				t.Fatalf("%s: run (m=%d, n=%d) not exact vs reference", sec.Name, r.M, r.N)
			}
		}
	}
	if !finitePositive(f.SpeedupStripedVsBitwiseSim) {
		t.Fatalf("speedup = %v, want finite > 0", f.SpeedupStripedVsBitwiseSim)
	}
	if f.SpeedupStripedVsBitwiseSim <= 1 {
		t.Fatalf("striped %vx bitwise-sim on the wall clock, want > 1", f.SpeedupStripedVsBitwiseSim)
	}
}

// TestCollectBackendsRejectsUnknown pins the error path.
func TestCollectBackendsRejectsUnknown(t *testing.T) {
	f := collectUnit(t)
	if err := f.CollectBackends(context.Background(), workload.Unit, pipeline.Config{}, 32, []string{"quantum"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := f.CollectBackends(context.Background(), workload.Unit, pipeline.Config{}, 32, nil); err == nil {
		t.Fatal("empty name list accepted")
	}
}

// TestValidateRejectsBadBackendSection mutates a good backends section the
// ways CI must catch.
func TestValidateRejectsBadBackendSection(t *testing.T) {
	base := func(t *testing.T) *File {
		f := collectUnit(t)
		if err := f.CollectBackends(context.Background(), workload.Unit, pipeline.Config{}, 32,
			[]string{"striped", "bitwise-sim"}); err != nil {
			t.Fatal(err)
		}
		return f
	}
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"inexact run", func(f *File) { f.Backends[0].Runs[0].Exact = false }},
		{"inf wall gcups", func(f *File) { f.Backends[0].Runs[0].WallGCUPS = math.Inf(1) }},
		{"zero wall", func(f *File) { f.Backends[1].Runs[0].WallNS = 0 }},
		{"nan aggregate", func(f *File) { f.Backends[0].AggregateWallGCUPS = math.NaN() }},
		{"duplicate name", func(f *File) { f.Backends[1].Name = f.Backends[0].Name }},
		{"empty name", func(f *File) { f.Backends[0].Name = "" }},
		{"no runs", func(f *File) { f.Backends[0].Runs = nil }},
		{"inf speedup", func(f *File) { f.SpeedupStripedVsBitwiseSim = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base(t)
			tc.mutate(f)
			if err := f.Validate(); err == nil {
				t.Error("Validate accepted a broken backends section")
			}
		})
	}
}
