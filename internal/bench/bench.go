// Package bench collects machine-readable pipeline benchmark results. It
// runs the bitwise pipeline over a workload's n-sweep and emits one JSON
// document (schema repro/bench-pipeline/v1) with the workload shape, the
// per-stage simulated times of the paper's five-stage breakdown (Table IV),
// the wall-clock cost of the simulation itself, and GCUPS per run — the
// paper's headline metric. swabench -bench-out writes the file; CI's
// bench-smoke job validates it and archives it as an artifact so regressions
// show up as a diffable JSON change.
//
// # Simulated time vs wall time
//
// Every run carries two very different clocks, and they must not be
// compared to each other:
//
//   - sim_total_ns (and the stages_sim breakdown) is what the cost model says
//     the paper's GPU would take: kernel instruction counts and PCIe byte
//     counts priced by perfmodel for the modelled device. It is
//     host-independent and typically hundreds of microseconds. gcups is
//     derived from this clock, so it is comparable to the paper's Table IV.
//   - wall_ns is how long this host needed to execute the simulation of that
//     run — Go code emulating every thread of every block — and is typically
//     three orders of magnitude larger (hundreds of milliseconds). It depends
//     on the host CPU, GOMAXPROCS and load; wall_gcups is the honest
//     throughput of the simulator process itself, and is correspondingly
//     small.
//
// A change that makes the simulator faster moves wall_ns/wall_gcups and
// leaves sim_total_ns/gcups untouched; a change to the modelled kernels or
// cost model moves the simulated numbers. CI's bench-smoke job validates
// both are present and sane but never cross-compares them.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/dna"
	"repro/internal/fleet"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/swa"
	"repro/internal/workload"
)

// Schema identifies the JSON layout. Bump the suffix on breaking changes.
const Schema = "repro/bench-pipeline/v1"

// Host records where the numbers were measured. Simulated stage times are
// host-independent; wall times are not.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Hostname  string `json:"hostname,omitempty"`
}

// StageNS is the five-stage simulated-time breakdown in nanoseconds,
// mirroring pipeline.StageTimes.
type StageNS struct {
	H2G int64 `json:"h2g_ns"`
	W2B int64 `json:"w2b_ns"`
	SWA int64 `json:"swa_ns"`
	B2W int64 `json:"b2w_ns"`
	G2H int64 `json:"g2h_ns"`
}

// Run is one (pairs, m, n) shape of the sweep. See the package comment for
// the sim-clock vs wall-clock distinction its fields straddle.
type Run struct {
	Pairs int `json:"pairs"`
	M     int `json:"m"`
	N     int `json:"n"`
	Lanes int `json:"lanes"`
	SBits int `json:"s_bits"`

	// Stages and SimTotalNS are modelled-GPU time (host-independent).
	Stages     StageNS `json:"stages_sim"`
	SimTotalNS int64   `json:"sim_total_ns"`
	// WallNS is the host's cost of executing the simulation of this run —
	// expect it to be ~1000× SimTotalNS; that gap is the price of emulating
	// every thread in Go, not a performance bug.
	WallNS int64 `json:"wall_ns"`
	// GCUPS is cell updates per second on the simulated clock (comparable
	// to the paper); WallGCUPS is the same cell count over WallNS — the
	// honest throughput of the simulator process on this host.
	GCUPS     float64 `json:"gcups"`
	WallGCUPS float64 `json:"wall_gcups"`
}

// FleetDevice is one fleet member's share of the fleet sweep. Utilization
// is BusyNS over the sweep's wall time — how much of the sweep this member
// spent executing shards on the host clock.
type FleetDevice struct {
	Name        string  `json:"name"`
	Spec        string  `json:"spec,omitempty"` // empty for the CPU member
	CPU         bool    `json:"cpu,omitempty"`
	Shards      int64   `json:"shards"`
	Pairs       int64   `json:"pairs"`
	BusyNS      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"`
	Steals      int64   `json:"steals"`
}

// Fleet is the optional multi-device section: the same n-sweep pushed
// through an internal/fleet scheduler of N simulated devices plus the CPU
// last-resort member. All of its numbers live on the host (wall) clock —
// the per-shard simulated stage times of concurrent devices do not add up
// to a meaningful single-device sim total, so none is reported here.
// AggregateGCUPS is the whole sweep's cell count over WallNS: the honest
// multi-device throughput of the simulator process.
type Fleet struct {
	Devices        []FleetDevice `json:"devices"`
	Shards         int64         `json:"shards"`
	Steals         int64         `json:"steals"`
	WallNS         int64         `json:"wall_ns"`
	AggregateGCUPS float64       `json:"aggregate_gcups"`
}

// File is the full document.
type File struct {
	Schema    string `json:"schema"`
	Workload  string `json:"workload"`
	CreatedAt string `json:"created_at,omitempty"` // RFC 3339 UTC
	Host      Host   `json:"host"`
	Runs      []Run  `json:"runs"`
	// Fleet is present when the sweep was additionally run across a device
	// fleet (swabench -devices N).
	Fleet *Fleet `json:"fleet,omitempty"`
	// Cluster is present when the sweep was additionally run through a
	// multi-node peer cluster (swabench -peers N).
	Cluster *ClusterSection `json:"cluster,omitempty"`
	// Backends is present when the sweep was additionally served by the
	// standalone execution backends (swabench -backends). All of its
	// numbers live on the host (wall) clock.
	Backends []BackendSection `json:"backends,omitempty"`
	// Search is present when the corpus-search selectivity sweep was
	// additionally run (swabench -search). All of its numbers live on
	// the host (wall) clock.
	Search *SearchSection `json:"search,omitempty"`
	// SpeedupStripedVsBitwiseSim is the striped backend's aggregate wall
	// GCUPS over bitwise-sim's, when both sections are present. This is the
	// headline wall-clock win of the native engine over simulating the
	// paper's GPU in Go — it deliberately compares wall clock to wall
	// clock, never wall to simulated.
	SpeedupStripedVsBitwiseSim float64 `json:"speedup_striped_vs_bitwise_sim,omitempty"`
}

// BackendRun is one (pairs, m, n) shape served by one execution backend,
// timed on the host clock.
type BackendRun struct {
	Pairs  int   `json:"pairs"`
	M      int   `json:"m"`
	N      int   `json:"n"`
	WallNS int64 `json:"wall_ns"`
	// WallGCUPS is the run's cell count over WallNS.
	WallGCUPS float64 `json:"wall_gcups"`
	// Exact records that every score of this run was re-checked
	// byte-identical against the scalar swa.Score reference (checked
	// outside the timed region). Validate fails when it is false: a
	// backend that wins the benchmark with wrong scores is not a result.
	Exact bool `json:"exact_vs_reference"`
}

// BackendSection is one backend's sweep.
type BackendSection struct {
	Name string       `json:"name"`
	Runs []BackendRun `json:"runs"`
	// AggregateWallGCUPS is the whole sweep's cell count over its summed
	// wall time.
	AggregateWallGCUPS float64 `json:"aggregate_wall_gcups"`
}

// wallGCUPS prices a run's cell count against host elapsed time, clamping
// the elapsed time to 1ns: a ~0 measurement (coarse clock granularity on a
// trivially small run) yields a large-but-finite number instead of the
// +Inf that a bare division produces — and that +Inf would otherwise
// satisfy a naive "> 0" sanity check and poison downstream aggregates.
func wallGCUPS(pairs, m, n int, wall time.Duration) float64 {
	if wall < time.Nanosecond {
		wall = time.Nanosecond
	}
	return perfmodel.GCUPS(pairs, m, n, wall)
}

// finitePositive reports whether v is a real, positive measurement.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// Collect runs the bitwise pipeline once per n in the spec's sweep and
// returns the filled document. cfg is passed through to the pipeline (zero
// value is fine); ctx cancellation aborts between kernel blocks.
func Collect(ctx context.Context, spec workload.Spec, cfg pipeline.Config) (*File, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hostname, _ := os.Hostname()
	f := &File{
		Schema:    Schema,
		Workload:  spec.Name,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			Hostname:  hostname,
		},
	}
	for _, n := range spec.NList {
		pairs := spec.Generate(n)
		begin := time.Now()
		res, err := pipeline.RunBitwise[uint32](ctx, pairs, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: n = %d: %w", n, err)
		}
		wall := time.Since(begin)
		f.Runs = append(f.Runs, Run{
			Pairs: res.Pairs, M: res.M, N: res.N,
			Lanes: res.Lanes, SBits: res.SBits,
			Stages: StageNS{
				H2G: res.Times.H2G.Nanoseconds(),
				W2B: res.Times.W2B.Nanoseconds(),
				SWA: res.Times.SWA.Nanoseconds(),
				B2W: res.Times.B2W.Nanoseconds(),
				G2H: res.Times.G2H.Nanoseconds(),
			},
			SimTotalNS: res.Times.Total().Nanoseconds(),
			WallNS:     wall.Nanoseconds(),
			GCUPS:      res.GCUPS(),
			WallGCUPS:  wallGCUPS(res.Pairs, res.M, res.N, wall),
		})
	}
	return f, nil
}

// CollectFleet re-runs the spec's n-sweep through a fleet of n simulated
// devices (specs cycled from the given list, 12 GiB lazily-backed capacity
// each) plus the CPU last-resort member, and attaches the per-device
// utilisation and aggregate-GCUPS section to f. Scores are checked against
// the single-device sweep's invariant implicitly: the fleet path runs the
// same bitwise pipeline per shard, so a mismatch surfaces as a pipeline
// error, not silent corruption.
func (f *File) CollectFleet(ctx context.Context, spec workload.Spec, cfg pipeline.Config, n int, specs []perfmodel.DeviceSpec) error {
	if n <= 0 {
		return fmt.Errorf("bench: fleet size %d, want > 0", n)
	}
	if len(specs) == 0 {
		specs = []perfmodel.DeviceSpec{perfmodel.TitanX}
	}
	members := make([]fleet.DeviceConfig, 0, n+1)
	for i := 0; i < n; i++ {
		members = append(members, fleet.DeviceConfig{
			Name:        fmt.Sprintf("gpu%d", i),
			Spec:        specs[i%len(specs)],
			GlobalBytes: 12 << 30,
		})
	}
	members = append(members, fleet.DeviceConfig{Name: "cpu", CPU: true})
	sched, err := fleet.New(fleet.Config{Devices: members})
	if err != nil {
		return err
	}
	defer sched.Close()

	exec := func(ctx context.Context, d *fleet.Device, shard []dna.Pair) ([]int, error) {
		if d.CPU() {
			scores := make([]int, len(shard))
			sc := cfg.Scoring
			if sc == (swa.Scoring{}) {
				sc = swa.PaperScoring
			}
			for i, p := range shard {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				scores[i] = swa.Score(p.X, p.Y, sc)
			}
			return scores, nil
		}
		dcfg := cfg
		dcfg.Device = d.Spec()
		dcfg.GlobalBytes = d.GlobalBytes()
		res, err := pipeline.RunBitwise[uint32](ctx, shard, dcfg)
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	}

	var cells int64
	begin := time.Now()
	for _, nn := range spec.NList {
		pairs := spec.Generate(nn)
		if _, err := sched.Run(ctx, pairs, exec); err != nil {
			return fmt.Errorf("bench: fleet n = %d: %w", nn, err)
		}
		cells += int64(len(pairs)) * int64(spec.M) * int64(nn)
	}
	wall := time.Since(begin)

	st := sched.Stats()
	out := &Fleet{
		Shards: st.Shards,
		Steals: st.Steals,
		WallNS: wall.Nanoseconds(),
	}
	if wall > 0 {
		out.AggregateGCUPS = float64(cells) / 1e9 / wall.Seconds()
	}
	for _, d := range st.Devices {
		fd := FleetDevice{
			Name:   d.Name,
			CPU:    d.CPU,
			Shards: d.Completed,
			Pairs:  d.PairsDone,
			BusyNS: d.BusyNS,
			Steals: d.Steals,
		}
		if !d.CPU {
			if dev := sched.Device(d.Name); dev != nil {
				fd.Spec = dev.Spec().Name
			}
		}
		if wall > 0 {
			fd.Utilization = float64(d.BusyNS) / float64(wall.Nanoseconds())
		}
		out.Devices = append(out.Devices, fd)
	}
	f.Fleet = out
	return nil
}

// CollectBackends serves the spec's n-sweep through each named execution
// backend (constructed standalone via alignsvc.NewBackend) and attaches one
// wall-clock BackendSection per name, in the given order. Every batch's
// scores are re-checked against the scalar swa.Score reference outside the
// timed region, so the sections double as the cross-backend exactness
// oracle. When both "striped" and "bitwise-sim" are among the names, the
// headline SpeedupStripedVsBitwiseSim ratio is filled in.
func (f *File) CollectBackends(ctx context.Context, spec workload.Spec, cfg pipeline.Config, lanes int, names []string) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("bench: no backend names")
	}
	sc := cfg.Scoring
	if sc == (swa.Scoring{}) {
		sc = swa.PaperScoring
	}
	for _, name := range names {
		b, err := alignsvc.NewBackend(name, cfg, lanes)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		sec := BackendSection{Name: name}
		var cells int64
		var wallSum time.Duration
		for _, n := range spec.NList {
			pairs := spec.Generate(n)
			begin := time.Now()
			scores, _, err := b.AlignBatch(ctx, pairs, alignsvc.BatchOpts{})
			wall := time.Since(begin)
			if err != nil {
				return fmt.Errorf("bench: backend %s n = %d: %w", name, n, err)
			}
			exact := len(scores) == len(pairs)
			for i, p := range pairs {
				if !exact || scores[i] != swa.Score(p.X, p.Y, sc) {
					exact = false
					break
				}
			}
			sec.Runs = append(sec.Runs, BackendRun{
				Pairs: len(pairs), M: spec.M, N: n,
				WallNS:    wall.Nanoseconds(),
				WallGCUPS: wallGCUPS(len(pairs), spec.M, n, wall),
				Exact:     exact,
			})
			cells += int64(len(pairs)) * int64(spec.M) * int64(n)
			wallSum += wall
		}
		if wallSum < time.Nanosecond {
			wallSum = time.Nanosecond
		}
		sec.AggregateWallGCUPS = float64(cells) / 1e9 / wallSum.Seconds()
		f.Backends = append(f.Backends, sec)
	}
	if st, bw := f.backendSection("striped"), f.backendSection("bitwise-sim"); st != nil && bw != nil &&
		finitePositive(st.AggregateWallGCUPS) && finitePositive(bw.AggregateWallGCUPS) {
		f.SpeedupStripedVsBitwiseSim = st.AggregateWallGCUPS / bw.AggregateWallGCUPS
	}
	return nil
}

// backendSection returns the named section, or nil.
func (f *File) backendSection(name string) *BackendSection {
	for i := range f.Backends {
		if f.Backends[i].Name == name {
			return &f.Backends[i]
		}
	}
	return nil
}

// Validate checks the invariants CI's bench-smoke job relies on: the right
// schema, at least two distinct (m, n) shapes, and physically sensible
// numbers (positive GCUPS, nonzero simulated time, SWA dominated breakdown
// is NOT required — only presence).
func (f *File) Validate() error {
	if f.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", f.Schema, Schema)
	}
	if len(f.Runs) < 2 {
		return fmt.Errorf("bench: %d run(s), want at least 2 shapes", len(f.Runs))
	}
	shapes := make(map[[2]int]bool)
	for i, r := range f.Runs {
		if r.Pairs <= 0 || r.M <= 0 || r.N < r.M {
			return fmt.Errorf("bench: run %d has degenerate shape (%d pairs, m=%d, n=%d)", i, r.Pairs, r.M, r.N)
		}
		if !finitePositive(r.GCUPS) {
			return fmt.Errorf("bench: run %d (m=%d, n=%d) has GCUPS %v, want finite > 0", i, r.M, r.N, r.GCUPS)
		}
		if r.SimTotalNS <= 0 {
			return fmt.Errorf("bench: run %d (m=%d, n=%d) has zero simulated time", i, r.M, r.N)
		}
		// Historically this read "WallGCUPS <= 0", which a +Inf (from a
		// ~0 wall measurement divided through unclamped) silently passed;
		// reject the whole non-finite family explicitly.
		if r.WallNS > 0 && !finitePositive(r.WallGCUPS) {
			return fmt.Errorf("bench: run %d (m=%d, n=%d) has wall time but WallGCUPS %v, want finite > 0", i, r.M, r.N, r.WallGCUPS)
		}
		sum := r.Stages.H2G + r.Stages.W2B + r.Stages.SWA + r.Stages.B2W + r.Stages.G2H
		if sum != r.SimTotalNS {
			return fmt.Errorf("bench: run %d stage sum %d ≠ total %d", i, sum, r.SimTotalNS)
		}
		shapes[[2]int{r.M, r.N}] = true
	}
	if len(shapes) < 2 {
		return fmt.Errorf("bench: all %d runs share one (m, n) shape", len(f.Runs))
	}
	if fl := f.Fleet; fl != nil {
		if len(fl.Devices) < 2 {
			return fmt.Errorf("bench: fleet section has %d member(s), want a fleet", len(fl.Devices))
		}
		if fl.WallNS <= 0 || !finitePositive(fl.AggregateGCUPS) {
			return fmt.Errorf("bench: fleet section has wall %dns, aggregate %v GCUPS, want both > 0",
				fl.WallNS, fl.AggregateGCUPS)
		}
		var shards, steals, gpuPairs int64
		cpuMembers := 0
		for i, d := range fl.Devices {
			if d.Shards < 0 || d.Pairs < 0 || d.BusyNS < 0 || d.Steals < 0 {
				return fmt.Errorf("bench: fleet device %d (%s) has negative counters: %+v", i, d.Name, d)
			}
			if d.Utilization < 0 || d.Utilization > 1.5 {
				// One worker per device keeps busy ≲ wall; 1.5 allows clock
				// skew without accepting nonsense.
				return fmt.Errorf("bench: fleet device %s utilization %v out of range", d.Name, d.Utilization)
			}
			if d.CPU {
				cpuMembers++
			} else {
				gpuPairs += d.Pairs
			}
			shards += d.Shards
			steals += d.Steals
		}
		if cpuMembers == 0 {
			return fmt.Errorf("bench: fleet section has no CPU last-resort member")
		}
		if gpuPairs == 0 {
			return fmt.Errorf("bench: fleet GPUs scored zero pairs")
		}
		// Per-device Shards counts executions, which can exceed the
		// dispatched-shard aggregate under hedging but never undercut it
		// when every run succeeded.
		if shards < fl.Shards || steals != fl.Steals {
			return fmt.Errorf("bench: fleet aggregates (shards %d, steals %d) inconsistent with per-device sums (%d, %d)",
				fl.Shards, fl.Steals, shards, steals)
		}
	}
	if f.Cluster != nil {
		if err := f.Cluster.validate(); err != nil {
			return err
		}
	}
	if f.Search != nil {
		if err := f.Search.validate(); err != nil {
			return err
		}
	}
	seen := make(map[string]bool)
	for _, sec := range f.Backends {
		if sec.Name == "" || seen[sec.Name] {
			return fmt.Errorf("bench: backend section name %q empty or duplicated", sec.Name)
		}
		seen[sec.Name] = true
		if len(sec.Runs) == 0 {
			return fmt.Errorf("bench: backend %s has no runs", sec.Name)
		}
		for i, r := range sec.Runs {
			if r.Pairs <= 0 || r.M <= 0 || r.N < r.M {
				return fmt.Errorf("bench: backend %s run %d has degenerate shape (%d pairs, m=%d, n=%d)",
					sec.Name, i, r.Pairs, r.M, r.N)
			}
			if r.WallNS <= 0 || !finitePositive(r.WallGCUPS) {
				return fmt.Errorf("bench: backend %s run %d has wall %dns, WallGCUPS %v, want finite > 0",
					sec.Name, i, r.WallNS, r.WallGCUPS)
			}
			if !r.Exact {
				return fmt.Errorf("bench: backend %s run %d (m=%d, n=%d) diverged from the scalar reference",
					sec.Name, i, r.M, r.N)
			}
		}
		if !finitePositive(sec.AggregateWallGCUPS) {
			return fmt.Errorf("bench: backend %s aggregate wall GCUPS %v, want finite > 0",
				sec.Name, sec.AggregateWallGCUPS)
		}
	}
	if f.SpeedupStripedVsBitwiseSim != 0 && !finitePositive(f.SpeedupStripedVsBitwiseSim) {
		return fmt.Errorf("bench: striped-vs-bitwise speedup %v, want finite > 0", f.SpeedupStripedVsBitwiseSim)
	}
	return nil
}

// WriteFile writes the document as indented JSON (trailing newline, so the
// artifact diffs cleanly).
func (f *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a document written by WriteFile. It does not Validate.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}
