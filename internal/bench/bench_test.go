package bench

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func collectUnit(t *testing.T) *File {
	t.Helper()
	f, err := Collect(context.Background(), workload.Unit, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCollectValidates(t *testing.T) {
	f := collectUnit(t)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != len(workload.Unit.NList) {
		t.Fatalf("%d runs, want %d", len(f.Runs), len(workload.Unit.NList))
	}
	for _, r := range f.Runs {
		if r.Lanes != 32 {
			t.Errorf("n=%d: lanes = %d, want 32", r.N, r.Lanes)
		}
		if r.WallNS <= 0 {
			t.Errorf("n=%d: wall time not recorded", r.N)
		}
		if r.WallGCUPS <= 0 {
			t.Errorf("n=%d: wall GCUPS not recorded", r.N)
		}
		if r.WallGCUPS >= r.GCUPS {
			t.Errorf("n=%d: wall GCUPS %v ≥ simulated GCUPS %v — the simulator cannot outrun the modelled GPU",
				r.N, r.WallGCUPS, r.GCUPS)
		}
		if r.Stages.SWA <= 0 {
			t.Errorf("n=%d: SWA stage time is zero", r.N)
		}
	}
	if f.Host.GoVersion == "" || f.Host.NumCPU <= 0 {
		t.Errorf("host info incomplete: %+v", f.Host)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := collectUnit(t)
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Runs) != len(f.Runs) || g.Workload != f.Workload {
		t.Errorf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *File { return collectUnit(t) }
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"wrong schema", func(f *File) { f.Schema = "repro/bench-pipeline/v0" }},
		{"single run", func(f *File) { f.Runs = f.Runs[:1] }},
		{"zero gcups", func(f *File) { f.Runs[0].GCUPS = 0 }},
		{"zero sim time", func(f *File) { f.Runs[1].SimTotalNS = 0 }},
		{"wall time without wall gcups", func(f *File) { f.Runs[0].WallGCUPS = 0 }},
		{"stage sum mismatch", func(f *File) { f.Runs[0].Stages.SWA++ }},
		{"one shape", func(f *File) {
			f.Runs[1] = f.Runs[0]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base()
			tc.mutate(f)
			if err := f.Validate(); err == nil {
				t.Error("Validate accepted a broken file")
			}
		})
	}
}

func TestCollectHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Collect(ctx, workload.Unit, pipeline.Config{}); err == nil {
		t.Error("Collect ignored a canceled context")
	}
}

func TestCollectFleetSectionValidates(t *testing.T) {
	f := collectUnit(t)
	if err := f.CollectFleet(context.Background(), workload.Unit, pipeline.Config{}, 2,
		[]perfmodel.DeviceSpec{perfmodel.TitanX, perfmodel.TitanXHalf}); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	fl := f.Fleet
	if fl == nil || len(fl.Devices) != 3 {
		t.Fatalf("fleet section = %+v, want 2 GPUs + cpu", fl)
	}
	var gpuPairs int64
	for _, d := range fl.Devices {
		if !d.CPU {
			gpuPairs += d.Pairs
		}
	}
	want := int64(len(workload.Unit.NList) * workload.Unit.Pairs)
	if gpuPairs != want {
		t.Fatalf("fleet GPUs scored %d pairs, want %d", gpuPairs, want)
	}
	if fl.AggregateGCUPS <= 0 || fl.WallNS <= 0 {
		t.Fatalf("degenerate fleet aggregates: %+v", fl)
	}

	// The section must survive the JSON round trip.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Fleet == nil || len(back.Fleet.Devices) != 3 || back.Fleet.Shards != fl.Shards {
		t.Fatalf("fleet section did not round-trip: %+v", back.Fleet)
	}
}

func TestValidateRejectsBadFleet(t *testing.T) {
	f := collectUnit(t)
	f.Fleet = &Fleet{
		Devices: []FleetDevice{
			{Name: "gpu0", Shards: 2, Pairs: 64, BusyNS: 100},
			{Name: "cpu", CPU: true},
		},
		Shards: 2,
		WallNS: 200,
		// AggregateGCUPS zero: must be rejected.
	}
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted a fleet section with zero aggregate GCUPS")
	}
	f.Fleet.AggregateGCUPS = 1
	f.Fleet.Devices[0].Utilization = 7 // nonsense
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted utilization 7")
	}
	f.Fleet.Devices[0].Utilization = 0.5
	f.Fleet.Devices[1].CPU = false
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted a fleet with no CPU member")
	}
}

func TestCollectClusterSectionValidates(t *testing.T) {
	f := collectUnit(t)
	if err := f.CollectCluster(context.Background(), workload.Unit, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	c := f.Cluster
	if c == nil || c.Nodes != 3 {
		t.Fatalf("cluster section = %+v, want 3 nodes", c)
	}
	// Four sweeps of the unit preset went through the entry node.
	want := int64(4 * len(workload.Unit.NList) * workload.Unit.Pairs)
	if c.Pairs != want {
		t.Fatalf("cluster swept %d pairs, want %d", c.Pairs, want)
	}
	if c.ForwardedPairs == 0 || c.WarmHitRatio <= 0 {
		t.Fatalf("cluster routing/caching never engaged: %+v", c)
	}
	if c.Rehomes == 0 || c.RingMembers != 2 || c.KilledNode == "" {
		t.Fatalf("node kill not reflected: %+v", c)
	}

	// The section must survive the JSON round trip.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Cluster == nil || back.Cluster.ForwardedPairs != c.ForwardedPairs {
		t.Fatalf("cluster section did not round-trip: %+v", back.Cluster)
	}
}

func TestValidateRejectsBadCluster(t *testing.T) {
	f := collectUnit(t)
	f.Cluster = &ClusterSection{Nodes: 1}
	if err := f.Validate(); err == nil {
		t.Fatal("one-node cluster section should fail validation")
	}
	f.Cluster = &ClusterSection{
		Nodes: 3, Batches: 8, Pairs: 256, WallNS: 1,
		LocalPairs: 100, ForwardedPairs: 156,
		WarmForwarded: 39, WarmPeerHits: 39, WarmHitRatio: 1,
		Rehomes: 0, KilledNode: "bench2", RingMembers: 2,
	}
	if err := f.Validate(); err == nil {
		t.Fatal("a cluster section with no re-home after a kill should fail validation")
	}
}
