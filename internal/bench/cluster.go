package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/swa"
	"repro/internal/workload"
)

// ClusterSection is the optional multi-node section: the same n-sweep pushed
// through N swaserver-shaped nodes joined by the consistent-hash peer layer
// (swabench -peers N). The sweep runs four times: cold, warm (the repeat hits
// the peers' caches, giving the peer hit ratio), immediately after one node's
// HTTP surface is killed (forwards degrade to local fallbacks), and after the
// survivors have quarantined the victim and re-homed its arc. All scores are
// verified exact against the CPU reference, so a routing or merge bug fails
// the collection rather than skewing the numbers.
type ClusterSection struct {
	Nodes   int   `json:"nodes"`
	Batches int64 `json:"batches"` // batches routed through the entry node
	Pairs   int64 `json:"pairs"`   // pairs across all sweeps

	LocalPairs     int64   `json:"local_pairs"`     // owned by the entry node
	ForwardedPairs int64   `json:"forwarded_pairs"` // answered by a peer
	FallbackPairs  int64   `json:"fallback_pairs"`  // served locally after a failed forward
	PeerCacheHits  int64   `json:"peer_cache_hits"` // cache hits peers reported for forwards
	PeerHitRatio   float64 `json:"peer_hit_ratio"`  // PeerCacheHits / ForwardedPairs
	Rehomes        int64   `json:"rehomes"`         // ring rebuilds seen by the entry node
	RingMembers    int     `json:"ring_members"`    // members left after the kill
	WallNS         int64   `json:"wall_ns"`         // host cost of all four sweeps
	KilledNode     string  `json:"killed_node"`     // the member whose HTTP surface was killed
	ShortCircuits  int64   `json:"short_circuits"`  // forwards skipped by an open breaker
	WarmForwarded  int64   `json:"warm_forwarded"`  // forwarded pairs during the warm pass only
	WarmPeerHits   int64   `json:"warm_peer_hits"`  // peer cache hits during the warm pass only
	WarmHitRatio   float64 `json:"warm_hit_ratio"`  // WarmPeerHits / WarmForwarded
}

// benchNode is one in-process cluster member for the bench sweep.
type benchNode struct {
	id  string
	ln  net.Listener
	hs  *http.Server
	svc *alignsvc.Service
	cl  *cluster.Cluster
}

func (n *benchNode) close() {
	if n.hs != nil {
		n.hs.Close()
	}
	if n.cl != nil {
		n.cl.Close()
	}
	if n.svc != nil {
		n.svc.Close()
	}
}

// CollectCluster runs the spec's n-sweep through a cluster of n nodes and
// attaches the routing/caching/re-homing section to f. The entry node is
// nodes[0]; the last node is killed (listener torn down, connections reset)
// between the warm and the degraded sweeps.
func (f *File) CollectCluster(ctx context.Context, spec workload.Spec, n int) error {
	if n < 2 {
		return fmt.Errorf("bench: cluster size %d, want at least 2 nodes", n)
	}
	nodes := make([]*benchNode, n)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.close()
			}
		}
	}()
	// Listeners first, so every node can be configured with the full peer
	// set before any of them serves traffic.
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("bench: cluster listener: %w", err)
		}
		nodes[i] = &benchNode{id: fmt.Sprintf("bench%d", i), ln: ln}
	}
	for i, nd := range nodes {
		var peers []cluster.Peer
		for j, p := range nodes {
			if j != i {
				peers = append(peers, cluster.Peer{ID: p.id, URL: "http://" + p.ln.Addr().String()})
			}
		}
		reg := obs.NewRegistry()
		nd.svc = alignsvc.New(alignsvc.Config{
			Seed:    uint64(1000 + i),
			Queue:   64,
			Cache:   aligncache.New(aligncache.Config{MaxBytes: 64 << 20, Metrics: reg}),
			Metrics: reg,
		})
		cl, err := cluster.New(cluster.Config{
			NodeID:        nd.id,
			Peers:         peers,
			Local:         nd.svc,
			Scoring:       nd.svc.Scoring(),
			Lanes:         nd.svc.Lanes(),
			ProbeInterval: 100 * time.Millisecond,
			Metrics:       reg,
		})
		if err != nil {
			return fmt.Errorf("bench: cluster node %s: %w", nd.id, err)
		}
		nd.cl = cl
		srv, err := server.New(server.Config{Service: nd.svc, Cluster: cl, Metrics: reg})
		if err != nil {
			return fmt.Errorf("bench: cluster node %s: %w", nd.id, err)
		}
		nd.hs = &http.Server{Handler: srv.Handler()}
		go nd.hs.Serve(nd.ln)
	}
	entry, victim := nodes[0], nodes[n-1]

	var batches, pairsDone int64
	sweep := func(verify bool) error {
		for _, nn := range spec.NList {
			pairs := spec.Generate(nn)
			res, err := entry.cl.Align(ctx, pairs)
			if err != nil {
				return fmt.Errorf("bench: cluster n = %d: %w", nn, err)
			}
			if len(res.Scores) != len(pairs) {
				return fmt.Errorf("bench: cluster n = %d: %d scores for %d pairs", nn, len(res.Scores), len(pairs))
			}
			if verify {
				// Spot-check exactness against the CPU reference; a stride
				// bounds the CPU cost on big presets while still catching
				// any merge that scrambles batch order.
				step := max(1, len(pairs)/64)
				for i := 0; i < len(pairs); i += step {
					want := swa.Score(pairs[i].X, pairs[i].Y, swa.PaperScoring)
					if res.Scores[i] != want {
						return fmt.Errorf("bench: cluster n = %d: score[%d] = %d, want %d",
							nn, i, res.Scores[i], want)
					}
				}
			}
			batches++
			pairsDone += int64(len(pairs))
		}
		return nil
	}

	begin := time.Now()
	// Cold, then warm: the repeat forwards the same keys to the same owners,
	// so the delta in peer-reported cache hits is the peer hit ratio.
	if err := sweep(true); err != nil {
		return err
	}
	cold := entry.cl.Stats()
	if err := sweep(false); err != nil {
		return err
	}
	warm := entry.cl.Stats()

	// Kill the last node's HTTP surface: in-ring forwards now fail and must
	// degrade to local execution, still exact.
	victim.hs.Close()
	victim.ln.Close()
	if err := sweep(true); err != nil {
		return err
	}

	// The entry node's prober quarantines the victim and re-homes its arc.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := entry.cl.Stats()
		if st.Rehomes > warm.Rehomes {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: cluster never re-homed after killing %s", victim.id)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := sweep(true); err != nil {
		return err
	}
	wall := time.Since(begin)

	st := entry.cl.Stats()
	out := &ClusterSection{
		Nodes:          n,
		Batches:        batches,
		Pairs:          pairsDone,
		LocalPairs:     st.LocalPairs,
		ForwardedPairs: st.ForwardedPairs,
		FallbackPairs:  st.FallbackPairs,
		PeerCacheHits:  st.PeerCacheHits,
		Rehomes:        st.Rehomes,
		RingMembers:    len(st.RingMembers),
		WallNS:         wall.Nanoseconds(),
		KilledNode:     victim.id,
		ShortCircuits:  st.ShortCircuits,
		WarmForwarded:  warm.ForwardedPairs - cold.ForwardedPairs,
		WarmPeerHits:   warm.PeerCacheHits - cold.PeerCacheHits,
	}
	if out.ForwardedPairs > 0 {
		out.PeerHitRatio = float64(out.PeerCacheHits) / float64(out.ForwardedPairs)
	}
	if out.WarmForwarded > 0 {
		out.WarmHitRatio = float64(out.WarmPeerHits) / float64(out.WarmForwarded)
	}
	f.Cluster = out
	return nil
}

// validateCluster checks the cluster section's invariants for Validate.
func (c *ClusterSection) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("bench: cluster section has %d node(s), want a cluster", c.Nodes)
	}
	if c.Batches <= 0 || c.Pairs <= 0 || c.WallNS <= 0 {
		return fmt.Errorf("bench: cluster section is empty: %+v", c)
	}
	if c.LocalPairs <= 0 || c.ForwardedPairs <= 0 {
		return fmt.Errorf("bench: cluster routing never engaged (local %d, forwarded %d)",
			c.LocalPairs, c.ForwardedPairs)
	}
	if c.PeerHitRatio < 0 || c.PeerHitRatio > 1 {
		return fmt.Errorf("bench: peer hit ratio %v out of range", c.PeerHitRatio)
	}
	if c.WarmHitRatio <= 0 || c.WarmHitRatio > 1 {
		return fmt.Errorf("bench: warm-pass peer hit ratio %v, want (0, 1] — the repeat sweep must hit peer caches", c.WarmHitRatio)
	}
	if c.Rehomes <= 0 {
		return fmt.Errorf("bench: no re-home recorded despite the node kill")
	}
	if c.KilledNode == "" || c.RingMembers >= c.Nodes {
		return fmt.Errorf("bench: ring still has %d/%d members after killing %q",
			c.RingMembers, c.Nodes, c.KilledNode)
	}
	return nil
}
