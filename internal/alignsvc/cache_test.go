package alignsvc

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/aligncache"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/obs"
)

func newCachedService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = aligncache.New(aligncache.Config{
			MaxBytes: 16 << 20,
			Metrics:  obs.NewRegistry(),
		})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// TestCachedAlignExactScores checks the cached path end to end: a cold batch
// with duplicate pairs dispatches only its distinct pairs, a warm identical
// batch is served entirely from the cache with exact scores and no ladder
// attempts.
func TestCachedAlignExactScores(t *testing.T) {
	s := newCachedService(t, Config{Seed: 1})

	// 64 pairs, only 8 distinct: the first 8 repeat in order.
	distinct := plantedPairs(8, 16, 32, 21)
	full := distinct
	for len(full) < 64 {
		full = append(full, distinct[len(full)%8])
	}
	want := refScores(full)

	res, err := s.Align(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, want)
	if res.Report.CacheHits != 0 {
		t.Fatalf("cold batch reported %d cache hits", res.Report.CacheHits)
	}
	cst := s.CacheStats()
	if cst == nil || cst.Misses != 8 {
		t.Fatalf("cold batch: want 8 distinct misses, got %+v", cst)
	}
	if st := s.Stats(); st.Batches != 1 {
		t.Fatalf("cold batch dispatched %d batches, want 1", st.Batches)
	}

	// Warm: the identical batch must not touch the ladder at all.
	res, err = s.Align(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, want)
	if res.Report.CacheHits != len(full) {
		t.Fatalf("warm batch: %d cache hits, want %d", res.Report.CacheHits, len(full))
	}
	if len(res.Report.Attempts) != 0 {
		t.Fatalf("warm batch ran ladder attempts: %+v", res.Report.Attempts)
	}
	if st := s.Stats(); st.Batches != 1 {
		t.Fatalf("warm batch dispatched again: %d batches", st.Batches)
	}
}

// TestCacheRepeatedBatchSpeedup is the issue's acceptance bar: re-aligning an
// identical batch after warming must be at least 5× faster than computing it,
// because a full hit is a hash + map lookup per pair instead of the bitsliced
// DP.
func TestCacheRepeatedBatchSpeedup(t *testing.T) {
	s := newCachedService(t, Config{Seed: 2})
	pairs := plantedPairs(256, 32, 256, 33)

	begin := time.Now()
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(begin)
	assertScores(t, res.Scores, refScores(pairs))

	// Best warm run of a few, to keep scheduler noise out of the ratio.
	warm := cold
	for i := 0; i < 3; i++ {
		begin = time.Now()
		res, err = s.Align(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(begin); d < warm {
			warm = d
		}
	}
	if res.Report.CacheHits != len(pairs) {
		t.Fatalf("warm run hit %d/%d pairs", res.Report.CacheHits, len(pairs))
	}
	if warm*5 > cold {
		t.Fatalf("warm repeat not ≥5× faster: cold=%v warm=%v (%.1f×)",
			cold, warm, float64(cold)/float64(warm))
	}
	t.Logf("cold=%v warm=%v (%.0f×)", cold, warm, float64(cold)/float64(warm))
}

// TestCacheExactUnderFaultInjection extends the chaos suite: with aggressive
// transfer/kernel faults and full validation, concurrent overlapping batches
// through the cached path still return exact scores, and warm hits stay exact
// afterwards — a cached score is only ever published from a validated result.
func TestCacheExactUnderFaultInjection(t *testing.T) {
	s := newCachedService(t, Config{
		Seed:         7,
		ValidateFrac: 1,
		MaxAttempts:  3,
		BaseBackoff:  50 * time.Microsecond,
		MaxBackoff:   500 * time.Microsecond,
		Faults: cudasim.FaultConfig{
			Seed:    7,
			HtoD:    0.3,
			DtoH:    0.3,
			Launch:  0.3,
			BitFlip: 0.3,
		},
	})

	// Eight goroutines share four seed groups, so most batches overlap an
	// identical batch in flight or already cached.
	const workers, rounds = 8, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pairs := plantedPairs(32, 16, 32, uint64(200+(w%4)))
				res, err := s.Align(context.Background(), pairs)
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				assertScores(t, res.Scores, refScores(pairs))
			}
		}(w)
	}
	wg.Wait()

	// Warm re-read of every group: hits must still be exact.
	for g := 0; g < 4; g++ {
		pairs := plantedPairs(32, 16, 32, uint64(200+g))
		res, err := s.Align(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		assertScores(t, res.Scores, refScores(pairs))
		if res.Report.CacheHits != len(pairs) {
			t.Fatalf("group %d warm read: %d/%d hits", g, res.Report.CacheHits, len(pairs))
		}
	}
	cst := s.CacheStats()
	if cst.Hits == 0 || cst.Misses == 0 {
		t.Fatalf("chaos run exercised no cache traffic: %+v", cst)
	}
	t.Logf("cache after chaos: %+v; service: %+v", cst, s.Stats())
}

// TestWarmCache seeds the cache with precomputed scores (the jobs recovery
// path) and checks a subsequent batch is served without any dispatch.
func TestWarmCache(t *testing.T) {
	s := newCachedService(t, Config{Seed: 3})
	pairs := plantedPairs(48, 16, 32, 55)
	scores := refScores(pairs)

	if n := s.WarmCache(pairs, scores); n != len(pairs) {
		t.Fatalf("WarmCache inserted %d, want %d", n, len(pairs))
	}
	if n := s.WarmCache(pairs, scores[:1]); n != 0 {
		t.Fatalf("mismatched lengths warmed %d entries, want 0", n)
	}

	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, scores)
	if res.Report.CacheHits != len(pairs) {
		t.Fatalf("warmed batch: %d hits, want %d", res.Report.CacheHits, len(pairs))
	}
	if st := s.Stats(); st.Batches != 0 {
		t.Fatalf("warmed batch still dispatched: %+v", st)
	}
}

// benchmarkDuplicateWorkload drives the issue's benchmark scenario: batches
// where 90% of pairs repeat a small panel of distinct pairs — the shape of
// database-screening traffic. Run with -bench to compare cache on vs off.
func benchmarkDuplicateWorkload(b *testing.B, withCache bool) {
	cfg := Config{Seed: 5, Metrics: obs.NewRegistry()}
	if withCache {
		cfg.Cache = aligncache.New(aligncache.Config{
			MaxBytes: 64 << 20,
			Metrics:  obs.NewRegistry(),
		})
	}
	s := New(cfg)
	defer s.Close()

	// 256-pair batch, 26 distinct pairs (~90% duplicates).
	distinct := plantedPairs(26, 32, 64, 77)
	pairs := make([]dna.Pair, 256)
	for i := range pairs {
		pairs[i] = distinct[i%len(distinct)]
	}
	want := refScores(pairs)

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Align(ctx, pairs)
		if err != nil {
			b.Fatal(err)
		}
		if res.Scores[0] != want[0] {
			b.Fatalf("score drift: %d != %d", res.Scores[0], want[0])
		}
	}
	b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

func BenchmarkAlignDuplicate90CacheOff(b *testing.B) { benchmarkDuplicateWorkload(b, false) }
func BenchmarkAlignDuplicate90CacheOn(b *testing.B)  { benchmarkDuplicateWorkload(b, true) }

// TestCacheDisabledIsUncachedPath pins the -cache-bytes=0 contract: a zero
// budget yields a nil cache, CacheEnabled is false, and Align takes the
// original dispatch path with no cache fields in the report.
func TestCacheDisabledIsUncachedPath(t *testing.T) {
	s := New(Config{Seed: 4, Cache: aligncache.New(aligncache.Config{MaxBytes: 0}),
		Metrics: obs.NewRegistry()})
	defer s.Close()
	if s.CacheEnabled() {
		t.Fatal("zero-budget cache reported enabled")
	}
	if s.CacheStats() != nil {
		t.Fatal("disabled cache returned stats")
	}
	pairs := plantedPairs(32, 16, 32, 66)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.CacheHits != 0 || res.Report.CacheCoalesced != 0 {
		t.Fatalf("disabled cache produced cache report fields: %+v", res.Report)
	}
}
