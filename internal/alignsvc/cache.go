package alignsvc

// This file is the cache face of the service: Align's cached fast path,
// recovery-time cache warming, and the Stats surface. The cache itself
// (sharding, LRU, TTL, singleflight) lives in internal/aligncache; this
// layer decides how a batch splits into cached and uncached halves and how
// the uncached remainder flows through the existing dispatch machinery.

import (
	"context"
	"time"

	"repro/internal/aligncache"
	"repro/internal/dna"
)

// pending tracks one unique uncached key of a batch: the flight it owns (or
// follows) and every batch index that wants its score.
type pending struct {
	flight *aligncache.Flight
	idxs   []int
}

// alignCached is Align's fast path when a cache is configured. Per pair it
// resolves one of: cache hit (served immediately), flight leader (this call
// computes it, batched with the other leaders through the normal dispatch
// path) or flight follower (another in-flight batch is computing it; wait).
// Within the batch, duplicate pairs collapse onto one leader or follower,
// so a 32K-pair panel with 100 distinct pairs dispatches at most 100.
func (s *Service) alignCached(ctx context.Context, pairs []dna.Pair, backend string) (*BatchResult, error) {
	if len(pairs) == 0 {
		// Preserve the uncached path's validation error for empty batches.
		return s.dispatch(ctx, pairs, backend)
	}
	start := time.Now()
	cache := s.cfg.Cache
	sc := s.scoring()
	lanes := s.cfg.Lanes

	scores := make([]int, len(pairs))
	var (
		leaders   = make(map[aligncache.Key]*pending)
		followers = make(map[aligncache.Key]*pending)
		missPairs []dna.Pair
		missKeys  []aligncache.Key
		hits      int
	)
	for i, p := range pairs {
		k := aligncache.KeyOf(p.X, p.Y, sc, lanes)
		if lp, dup := leaders[k]; dup {
			lp.idxs = append(lp.idxs, i)
			continue
		}
		if fp, dup := followers[k]; dup {
			fp.idxs = append(fp.idxs, i)
			continue
		}
		score, ok, flight, leader := cache.Lookup(k)
		switch {
		case ok:
			scores[i] = score
			hits++
		case leader:
			leaders[k] = &pending{flight: flight, idxs: []int{i}}
			missPairs = append(missPairs, p)
			missKeys = append(missKeys, k)
		default:
			followers[k] = &pending{flight: flight, idxs: []int{i}}
		}
	}

	rep := Report{CacheHits: hits}

	// Dispatch the uncached remainder as one batch through the normal
	// queue/breaker/retry machinery, then publish each score so every
	// follower (here and in concurrent batches) unblocks.
	if len(missPairs) > 0 {
		res, err := s.dispatch(ctx, missPairs, backend)
		if err != nil {
			// Fulfilling with the error releases followers; the key stays
			// retryable (failed flights are never cached).
			for i, k := range missKeys {
				p := missPairs[i]
				cache.Fulfill(k, leaders[k].flight, 0, aligncache.Cost(p.X, p.Y), err)
			}
			return nil, err
		}
		for i, k := range missKeys {
			p := missPairs[i]
			cache.Fulfill(k, leaders[k].flight, res.Scores[i], aligncache.Cost(p.X, p.Y), nil)
			for _, idx := range leaders[k].idxs {
				scores[idx] = res.Scores[i]
			}
		}
		rep = res.Report
		rep.CacheHits = hits
	}

	// Wait for the keys other batches are computing. A failed flight means
	// the other batch's ladder exhausted (or its context died) — recompute
	// those pairs ourselves rather than inheriting a stranger's failure.
	var retryPairs []dna.Pair
	var retryKeys []aligncache.Key
	var retryIdxs [][]int
	for k, fp := range followers {
		score, err := fp.flight.Wait(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil, s.noteCtxErr(ctx.Err())
			}
			i0 := fp.idxs[0]
			retryPairs = append(retryPairs, pairs[i0])
			retryKeys = append(retryKeys, k)
			retryIdxs = append(retryIdxs, fp.idxs)
			continue
		}
		rep.CacheCoalesced += len(fp.idxs)
		for _, idx := range fp.idxs {
			scores[idx] = score
		}
	}
	if len(retryPairs) > 0 {
		res, err := s.dispatch(ctx, retryPairs, backend)
		if err != nil {
			return nil, err
		}
		for i, k := range retryKeys {
			p := retryPairs[i]
			cache.Put(k, res.Scores[i], aligncache.Cost(p.X, p.Y))
			for _, idx := range retryIdxs[i] {
				scores[idx] = res.Scores[i]
			}
		}
		if len(missPairs) == 0 {
			rep = res.Report
			rep.CacheHits = hits
		}
	}

	rep.Elapsed = time.Since(start)
	return &BatchResult{Scores: scores, Report: rep}, nil
}

// WarmCache inserts precomputed (pair, score) results into the cache —
// recovery paths use it to republish scores that are already durable (job
// WAL checkpoints), so replayed and re-submitted work hits even across
// process restarts. It returns how many entries were inserted; without a
// cache it is a cheap no-op.
func (s *Service) WarmCache(pairs []dna.Pair, scores []int) int {
	if !s.cfg.Cache.Enabled() || len(pairs) != len(scores) {
		return 0
	}
	sc := s.scoring()
	for i, p := range pairs {
		s.cfg.Cache.Put(aligncache.KeyOf(p.X, p.Y, sc, s.cfg.Lanes), scores[i], aligncache.Cost(p.X, p.Y))
	}
	return len(pairs)
}

// CacheEnabled reports whether the service has a live score cache.
func (s *Service) CacheEnabled() bool { return s.cfg.Cache.Enabled() }

// CacheStats snapshots the cache counters, or nil when no cache is
// configured. The server renders it as the /statsz "cache" section.
func (s *Service) CacheStats() *aligncache.Stats {
	if !s.cfg.Cache.Enabled() {
		return nil
	}
	st := s.cfg.Cache.Stats()
	return &st
}
