package alignsvc

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cudasim"
	"repro/internal/fleet"
	"repro/internal/striped"
)

// Tier identifies one rung of a degradation ladder. The ladder a batch
// walks is chosen by its backend (see Backend); the numeric order here is
// storage layout, not ladder order — wire formats carry tiers by name.
type Tier int

const (
	// TierBitwise is the paper's five-step BPBC GPU pipeline.
	TierBitwise Tier = iota
	// TierWordwise is the conventional wordwise GPU baseline.
	TierWordwise
	// TierCPU is the swa.Score reference on the host; it cannot produce a
	// wrong score and only fails on cancellation.
	TierCPU
	// TierStriped is the native striped CPU engine (internal/striped):
	// exact like TierCPU, at wall-clock GCUPS. It heads the "striped"
	// backend's ladder. (Declared after TierCPU so the older tiers keep
	// their values; order here is not ladder order.)
	TierStriped
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierBitwise:
		return "bitwise"
	case TierWordwise:
		return "wordwise"
	case TierCPU:
		return "cpu"
	case TierStriped:
		return "striped"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ParseTier is the inverse of Tier.String.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "bitwise":
		return TierBitwise, nil
	case "wordwise":
		return TierWordwise, nil
	case "cpu":
		return TierCPU, nil
	case "striped":
		return TierStriped, nil
	}
	return 0, fmt.Errorf("alignsvc: unknown tier %q", s)
}

// Attempt records one try of one tier for a batch.
type Attempt struct {
	Tier             Tier
	Err              string // "" on success
	ValidationFailed bool   // scores came back but disagreed with the reference sample
	Faults           cudasim.FaultCounts
}

// Report is the per-batch account of what the service did: every attempt,
// the tier that finally produced the scores, and the fault/retry tallies.
//
// With the score cache enabled, CacheHits pairs were served from stored
// scores and CacheCoalesced pairs piggybacked on another batch's in-flight
// computation; neither group touched the ladder. When every pair was served
// from the cache, Attempts is empty and Tier carries no information.
type Report struct {
	Tier      Tier // tier whose scores were returned
	Attempts  []Attempt
	Retries   int    // same-tier re-runs after a failure
	Fallbacks int    // tier downgrades after exhausting a tier's attempts
	Skips     []Tier // tiers skipped because their circuit breaker was open
	Faults    cudasim.FaultCounts
	Validated int           // pairs re-scored on the CPU for validation
	Elapsed   time.Duration // wall time from dequeue to scores

	CacheHits      int // pairs served from the score cache
	CacheCoalesced int // pairs that waited on another batch's computation
}

// String renders a one-line summary, e.g.
// "bitwise×2 → wordwise×1 → cpu ok (2 retries, 2 fallbacks, 5 faults)".
func (r Report) String() string {
	var b strings.Builder
	var runs []string
	i := 0
	for i < len(r.Attempts) {
		j := i
		for j < len(r.Attempts) && r.Attempts[j].Tier == r.Attempts[i].Tier {
			j++
		}
		runs = append(runs, fmt.Sprintf("%s×%d", r.Attempts[i].Tier, j-i))
		i = j
	}
	if r.CacheHits > 0 || r.CacheCoalesced > 0 {
		runs = append([]string{fmt.Sprintf("cache×%d", r.CacheHits+r.CacheCoalesced)}, runs...)
	}
	b.WriteString(strings.Join(runs, " → "))
	fmt.Fprintf(&b, " ok=%s (%d retries, %d fallbacks, %d faults)",
		r.Tier, r.Retries, r.Fallbacks, r.Faults.Total())
	if len(r.Skips) > 0 {
		var names []string
		for _, t := range r.Skips {
			names = append(names, t.String())
		}
		fmt.Fprintf(&b, " [breaker skipped %s]", strings.Join(names, ", "))
	}
	return b.String()
}

// BatchResult is what Align returns: exact scores plus the report.
type BatchResult struct {
	Scores []int
	Report Report
}

// Stats is a snapshot of the service-level counters, for the stats and
// observability layers to export.
type Stats struct {
	// Backend is the service's default backend name (per-request overrides
	// don't change it).
	Backend string

	Batches         int64 // batches completed successfully
	BatchesFailed   int64 // batches that exhausted every tier
	Retries         int64 // same-tier re-runs
	Fallbacks       int64 // tier downgrades
	CPUFallbacks    int64 // batches ultimately served by the CPU reference
	DeadlineHits    int64 // batches aborted by context.DeadlineExceeded
	Cancellations   int64 // batches aborted by context.Canceled
	PanicsRecovered int64 // kernel/pipeline panics converted to errors
	FaultsInjected  int64 // injected faults observed across all attempts

	BreakerTrips         int64 // closed→open and half-open→open transitions
	BreakerShortCircuits int64 // tier attempts skipped by an open breaker
	BreakerProbes        int64 // half-open probe batches admitted
	Breakers             []BreakerSnapshot

	// Fleet is the device-fleet snapshot when the service runs GPU tiers
	// through a fleet scheduler (nil otherwise). It is taken under the
	// fleet's lock in the same Stats call, so the per-device rows and their
	// aggregates are mutually consistent even while devices are being
	// killed, quarantined or readmitted.
	Fleet *fleet.Stats

	// Striped is the native striped engine's counter snapshot. The engine
	// always exists (it also serves the fleet's CPU member and the striped
	// backend), so the snapshot is always present; its counters stay zero
	// while nothing routes to it.
	Striped *striped.Stats
}
