// Package alignsvc is the resilient batch-alignment service layer: it puts
// every scoring engine — the simulated GPU pipelines, the native striped
// CPU engine and the scalar reference — behind one pluggable Backend seam,
// wrapped in a bounded worker pool with backpressure and a fault-tolerance
// ladder. Each batch is retried with exponential backoff and jitter on
// transient device faults, validated against a CPU-reference sample (for
// backends that are not exact by construction), and degraded through its
// backend's ladder, e.g.
//
//	bitwise GPU pipeline → wordwise GPU pipeline → CPU swa.Score
//	striped CPU engine → CPU swa.Score
//
// until a rung produces trustworthy scores, so callers always receive
// correct results (or a context error) together with a per-batch Report of
// attempts, fallbacks and injected faults. The default backend is chosen by
// Config.Backend; Align uses it, AlignBackend overrides it per request.
// Kernel panics are converted into errors instead of killing the process,
// and service-level counters are exposed through Stats for the
// observability layers to build on.
package alignsvc

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aligncache"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/striped"
	"repro/internal/swa"
)

// ErrClosed is returned by Align after Close.
var ErrClosed = errors.New("alignsvc: service closed")

// ValidationError reports a score that disagreed with the CPU reference
// (the signature of silent device-memory corruption).
type ValidationError struct {
	Index     int
	Got, Want int
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("alignsvc: score validation failed at pair %d: got %d, want %d",
		e.Index, e.Got, e.Want)
}

// Config tunes the service. The zero value is usable: bitwise tier first,
// GOMAXPROCS workers, three attempts per tier, millisecond-scale backoff,
// 5%% score validation, no fault injection.
type Config struct {
	// Backend selects the default serving engine and its degradation
	// ladder by name: BackendBitwiseSim (also the "" default, preserving
	// the classic sim ladder), BackendWordwiseSim, BackendStriped or
	// BackendCPURef. Every ladder ends at the CPU reference unless
	// NoCPUFallback is set. New panics on an unknown name — a misspelled
	// backend must not silently serve with a different engine.
	Backend string
	// Pipeline is the base GPU-pipeline configuration (scoring, device,
	// lane behaviour). Its Faults field is overwritten per attempt.
	Pipeline pipeline.Config
	// Lanes selects the bitwise lane width, 32 (default) or 64.
	Lanes int
	// Workers bounds how many batches run concurrently (default
	// GOMAXPROCS). Queue bounds how many more may wait (default Workers);
	// beyond that, Align blocks — the backpressure signal.
	Workers, Queue int
	// MaxAttempts is the number of tries per GPU tier before degrading
	// (default 3). The CPU tier always gets exactly one try.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// same-tier retries (defaults 1ms and 50ms). Jitter halves the low end.
	BaseBackoff, MaxBackoff time.Duration
	// ValidateFrac is the fraction of each batch's scores re-checked
	// against the CPU reference (default 0.05; >= 1 checks every score,
	// negative disables validation). Validation failures count as attempt
	// failures and trigger retry/degradation.
	ValidateFrac float64
	// Seed drives jitter, validation sampling, and the per-attempt fault
	// streams, making whole-service runs reproducible.
	Seed uint64
	// Faults enables deterministic fault injection on every GPU attempt.
	// Each attempt derives its own stream from Faults.Seed, the batch
	// number and the attempt number, so retries see fresh faults.
	Faults cudasim.FaultConfig
	// StartTier skips leading rungs of the default bitwise-sim ladder
	// (e.g. TierWordwise to bypass the bitwise pipeline entirely). The
	// other backends' ladders already start at their engine and ignore it.
	StartTier Tier
	// BreakerFailures is how many consecutive batch-level failures of a GPU
	// tier trip its circuit breaker open (default 5; negative disables the
	// breakers). While a breaker is open the ladder skips that tier
	// entirely instead of paying the retry ladder on every batch.
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// single half-open probe batch is let through (default 500ms). The
	// probe's success closes the breaker; its failure re-opens it.
	BreakerCooldown time.Duration
	// Metrics receives the service's queue-wait and batch-latency
	// histograms plus retry/fallback/breaker counters (nil = obs.Default()).
	// It is also handed to the pipelines unless Pipeline.Metrics is set.
	Metrics *obs.Registry
	// Fleet, when non-nil, spreads each GPU-tier batch across a fleet of
	// simulated devices (shards, work-stealing, hedging, per-device health;
	// see internal/fleet). The degradation ladder is unchanged — a tier
	// fails only when the whole fleet could not serve the batch — and the
	// fleet's CPU member handles shard-level re-dispatch while TierCPU
	// remains the batch-level last rung. Breaker openings on GPU tiers are
	// forwarded to the fleet as health signals.
	Fleet *fleet.Scheduler
	// NoCPUFallback removes TierCPU from the ladder, so a batch that
	// exhausts the GPU tiers fails typed instead of being served by the
	// host reference. Integration tests use it to observe device-loss
	// errors end to end; production configs leave it false.
	NoCPUFallback bool
	// Cache, when non-nil, memoizes per-pair scores by content hash
	// (pattern bytes, text bytes, scoring, lane width). Cache hits bypass
	// the worker pool, the circuit breakers and the retry ladder entirely;
	// a partially cached batch dispatches only its uncached remainder, and
	// concurrent identical pairs coalesce onto one computation. nil (the
	// default) keeps the service byte-identical to the uncached behaviour.
	Cache *aligncache.Cache

	// sleep replaces the backoff sleep in tests.
	sleep func(context.Context, time.Duration) error
	// now replaces the breaker clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Lanes == 0 {
		c.Lanes = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = c.Workers
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 50 * time.Millisecond
	}
	if c.ValidateFrac == 0 {
		c.ValidateFrac = 0.05
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type job struct {
	ctx       context.Context
	pairs     []dna.Pair
	backend   string // serving backend (validated before enqueue)
	seq       uint64
	submitted time.Time // when Align enqueued it, for the queue-wait metric
	res       chan jobResult
}

type jobResult struct {
	batch *BatchResult
	err   error
}

// Service is a long-lived batch-alignment service. Create with New, submit
// with Align (safe for concurrent use), and Close when done.
type Service struct {
	cfg  Config
	jobs chan *job
	quit chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
	batchSeq  atomic.Uint64

	// backends holds one Backend per tier; process routes every attempt
	// through this seam. stripedEng is the shared native engine behind
	// backends[TierStriped] and the fleet's CPU member.
	backends   [numTiers]Backend
	stripedEng *striped.Engine

	// breakers holds the per-tier circuit breakers; the exact rungs (CPU
	// reference and striped engine) stay nil — they cannot be tripped.
	// faults is the live fault config, swappable at runtime via SetFaults
	// for chaos harnesses.
	breakers [numTiers]*breaker
	faults   atomic.Pointer[cudasim.FaultConfig]
	obs      *obs.Registry

	batches, batchesFailed, retries, fallbacks atomic.Int64
	cpuFallbacks, deadlineHits, cancellations  atomic.Int64
	panicsRecovered, faultsInjected            atomic.Int64

	// fleetSeq derives a unique injector seed per fleet shard execution, so
	// a re-dispatched shard never replays the fault stream that killed it.
	fleetSeq atomic.Uint64
}

// New starts the worker pool and returns the service. It panics on an
// unknown Config.Backend name — serving with a different engine than the
// operator asked for is worse than failing fast.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	if _, err := backendTier(cfg.Backend); err != nil {
		panic(err.Error())
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	s := &Service{
		cfg:  cfg,
		jobs: make(chan *job, cfg.Queue),
		quit: make(chan struct{}),
		obs:  reg,
	}
	s.stripedEng = striped.New(striped.Config{})
	s.backends[TierBitwise] = &simBackend{name: BackendBitwiseSim, tier: TierBitwise, svc: s}
	s.backends[TierWordwise] = &simBackend{name: BackendWordwiseSim, tier: TierWordwise, svc: s}
	s.backends[TierStriped] = &stripedBackend{eng: s.stripedEng, scoring: s.scoring}
	s.backends[TierCPU] = &cpuBackend{scoring: s.scoring}
	reg.Help("alignsvc_queue_wait_seconds", "time a batch waited for a worker")
	reg.Help("alignsvc_batch_seconds", "dequeue-to-scores latency of successful batches, by serving tier")
	reg.Help("alignsvc_batches_total", "successful batches by serving tier")
	reg.Help("alignsvc_retries_total", "same-tier re-runs after a failed attempt")
	reg.Help("alignsvc_fallbacks_total", "tier downgrades after exhausting a tier")
	reg.Help("alignsvc_breaker_transitions_total", "circuit-breaker state transitions by tier")
	reg.Help("alignsvc_breaker_state", "current breaker state (0 closed, 1 open, 2 half-open)")
	f := cfg.Faults
	s.faults.Store(&f)
	if cfg.BreakerFailures > 0 {
		for _, t := range []Tier{TierBitwise, TierWordwise} {
			b := newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown, cfg.now)
			state := reg.Gauge(obs.L("alignsvc_breaker_state", "tier", t.String()))
			state.Set(float64(BreakerClosed))
			tier := t.String()
			b.onTransition = func(to BreakerState) {
				reg.Counter(obs.L("alignsvc_breaker_transitions_total",
					"tier", tier, "to", to.String())).Inc()
				state.Set(float64(to))
				// A GPU tier's breaker opening is a fleet-health signal:
				// mark the GPU members suspect so failing devices
				// quarantine on a short streak. (Lock order is breaker →
				// fleet; the fleet never calls back into a breaker.)
				if to == BreakerOpen && cfg.Fleet != nil {
					cfg.Fleet.NoteBreakerOpen(tier)
				}
			}
			s.breakers[t] = b
		}
	}
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker()
	}
	return s
}

// SetFaults replaces the fault-injection config for all future attempts.
// Chaos harnesses use it to start and stop fault storms against a live
// service (and to let tripped breakers recover via their probes).
func (s *Service) SetFaults(f cudasim.FaultConfig) {
	s.faults.Store(&f)
}

// Close stops the workers after the current batches finish. Pending and
// future Align calls return ErrClosed.
func (s *Service) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			wait := time.Since(j.submitted)
			s.obs.Histogram("alignsvc_queue_wait_seconds", obs.LatencyBuckets).ObserveDuration(wait)
			obs.FromContext(j.ctx).AddSpan("alignsvc.queue_wait", j.submitted, wait)
			endSvc := obs.FromContext(j.ctx).StartSpan("alignsvc.process")
			batch, err := s.process(j.ctx, j.pairs, j.seq, j.backend)
			endSvc()
			j.res <- jobResult{batch, err}
		}
	}
}

// Align scores one uniform batch of pairs through the default backend's
// degradation ladder. It blocks while the queue is full (backpressure) and
// honours ctx at every stage: submission, retry backoff, kernel-block
// boundaries, and the CPU fallback loop. On success the scores are exact;
// the report says how many attempts, fallbacks and injected faults it took
// to get them.
//
// With Config.Cache set, pairs whose scores are already cached are served
// without touching the worker pool, breakers or retry ladder; only the
// uncached remainder is dispatched (see alignCached). Scores are exact
// either way — a cache hit is byte-identical to a recompute by key
// construction, whichever backend filled it (see aligncache.KeyOf).
func (s *Service) Align(ctx context.Context, pairs []dna.Pair) (*BatchResult, error) {
	return s.align(ctx, pairs, s.cfg.Backend)
}

// Cells is the DP work a batch represents: Σ |pattern|·|text| matrix cells.
// Tenant cells/sec rate limits and capacity planning meter this quantity —
// request counts alone are meaningless when one request can carry a
// thousand-fold more dynamic-programming work than another.
func Cells(pairs []dna.Pair) int64 {
	var n int64
	for _, p := range pairs {
		n += int64(len(p.X)) * int64(len(p.Y))
	}
	return n
}

// AlignBackend is Align with a per-request backend override: the batch is
// served by the named backend's ladder instead of the configured default.
// An unknown name fails before any work is enqueued.
func (s *Service) AlignBackend(ctx context.Context, pairs []dna.Pair, backend string) (*BatchResult, error) {
	if _, err := backendTier(backend); err != nil {
		return nil, err
	}
	return s.align(ctx, pairs, backend)
}

func (s *Service) align(ctx context.Context, pairs []dna.Pair, backend string) (*BatchResult, error) {
	if s.cfg.Cache.Enabled() {
		return s.alignCached(ctx, pairs, backend)
	}
	return s.dispatch(ctx, pairs, backend)
}

// dispatch is the uncached path: enqueue the batch for a worker and wait.
func (s *Service) dispatch(ctx context.Context, pairs []dna.Pair, backend string) (*BatchResult, error) {
	j := &job{ctx: ctx, pairs: pairs, backend: backend, seq: s.batchSeq.Add(1),
		submitted: time.Now(), res: make(chan jobResult, 1)}
	select {
	case s.jobs <- j:
	case <-ctx.Done():
		return nil, s.noteCtxErr(ctx.Err())
	case <-s.quit:
		return nil, ErrClosed
	}
	select {
	case r := <-j.res:
		return r.batch, r.err
	case <-ctx.Done():
		return nil, s.noteCtxErr(ctx.Err())
	case <-s.quit:
		return nil, ErrClosed
	}
}

// Stats snapshots the service counters, including the per-tier circuit
// breaker states.
func (s *Service) Stats() Stats {
	defaultBackend := s.cfg.Backend
	if defaultBackend == "" {
		defaultBackend = BackendBitwiseSim
	}
	st := Stats{
		Backend:         defaultBackend,
		Batches:         s.batches.Load(),
		BatchesFailed:   s.batchesFailed.Load(),
		Retries:         s.retries.Load(),
		Fallbacks:       s.fallbacks.Load(),
		CPUFallbacks:    s.cpuFallbacks.Load(),
		DeadlineHits:    s.deadlineHits.Load(),
		Cancellations:   s.cancellations.Load(),
		PanicsRecovered: s.panicsRecovered.Load(),
		FaultsInjected:  s.faultsInjected.Load(),
	}
	for _, t := range []Tier{TierBitwise, TierWordwise} {
		snap, trips, shorts, probes := s.breakers[t].snapshot(t)
		st.Breakers = append(st.Breakers, snap)
		st.BreakerTrips += trips
		st.BreakerShortCircuits += shorts
		st.BreakerProbes += probes
	}
	if s.cfg.Fleet != nil {
		fs := s.cfg.Fleet.Stats()
		st.Fleet = &fs
	}
	ss := s.stripedEng.Stats()
	st.Striped = &ss
	return st
}

func (s *Service) noteCtxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineHits.Add(1)
		s.obs.Counter("alignsvc_deadline_total").Inc()
	case errors.Is(err, context.Canceled):
		s.cancellations.Add(1)
		s.obs.Counter("alignsvc_canceled_total").Inc()
	}
	return err
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ladder returns the degradation ladder for a backend: the backend's own
// rung first, then the cheaper rungs it degrades through, always ending at
// the CPU reference. StartTier filters only the default bitwise-sim ladder
// (the other backends' ladders already start at their engine);
// NoCPUFallback drops the reference rung except for the cpu-ref backend,
// whose only rung it is.
func (s *Service) ladder(backend string) []Tier {
	var rungs []Tier
	switch backend {
	case BackendWordwiseSim:
		rungs = []Tier{TierWordwise, TierCPU}
	case BackendStriped:
		rungs = []Tier{TierStriped, TierCPU}
	case BackendCPURef:
		return []Tier{TierCPU}
	default: // BackendBitwiseSim and ""
		for _, t := range []Tier{TierBitwise, TierWordwise, TierCPU} {
			if t >= s.cfg.StartTier {
				rungs = append(rungs, t)
			}
		}
	}
	if s.cfg.NoCPUFallback && len(rungs) > 0 && rungs[len(rungs)-1] == TierCPU {
		rungs = rungs[:len(rungs)-1]
	}
	return rungs
}

// process walks the backend's degradation ladder for one batch, consulting
// each simulated tier's circuit breaker before paying for its attempts.
func (s *Service) process(ctx context.Context, pairs []dna.Pair, seq uint64, backend string) (*BatchResult, error) {
	rep := Report{}
	start := s.cfg.now()
	rng := rand.New(rand.NewPCG(s.cfg.Seed^seq, 0xa1195c7e))
	var lastErr error
	ladder := s.ladder(backend)
	for li, tier := range ladder {
		allowed, probe := s.breakers[tier].allow()
		if !allowed {
			rep.Skips = append(rep.Skips, tier)
			s.obs.Counter(obs.L("alignsvc_breaker_skips_total", "tier", tier.String())).Inc()
			continue
		}
		endTier := obs.FromContext(ctx).StartSpan("alignsvc.tier." + tier.String())
		res, err := s.runTierAttempts(ctx, tier, pairs, seq, rng, &rep)
		endTier()
		switch {
		case err == nil:
			s.breakers[tier].release(tierSucceeded, probe)
			res.Report.Elapsed = s.cfg.now().Sub(start)
			s.obs.Histogram(obs.L("alignsvc_batch_seconds", "tier", tier.String()),
				obs.LatencyBuckets).ObserveDuration(res.Report.Elapsed)
			return res, nil
		case isCtxErr(err):
			s.breakers[tier].release(tierAbandoned, probe)
			return nil, s.noteCtxErr(err)
		default:
			s.breakers[tier].release(tierFailed, probe)
			lastErr = err
			if li+1 < len(ladder) {
				rep.Fallbacks++
				s.fallbacks.Add(1)
				s.obs.Counter(obs.L("alignsvc_fallbacks_total", "from", tier.String())).Inc()
			}
		}
	}
	s.batchesFailed.Add(1)
	s.obs.Counter("alignsvc_batches_failed_total").Inc()
	if lastErr == nil {
		// Every rung was skipped (open breakers with NoCPUFallback): there
		// is no attempt error to propagate, only the configuration.
		return nil, fmt.Errorf("alignsvc: no tier available (%s)", rep.String())
	}
	return nil, fmt.Errorf("alignsvc: all tiers exhausted (%s): %w", rep.String(), lastErr)
}

// runTierAttempts runs up to MaxAttempts tries of one tier with backoff,
// recording every attempt in rep. It returns the batch result on success, a
// bare context error on cancellation, or the last attempt error once the
// tier is exhausted.
func (s *Service) runTierAttempts(ctx context.Context, tier Tier, pairs []dna.Pair, seq uint64, rng *rand.Rand, rep *Report) (*BatchResult, error) {
	attempts := s.cfg.MaxAttempts
	exact := s.backends[tier].Capabilities().Exact
	if exact {
		// Exact backends (striped, CPU reference) have no transient device
		// faults to retry through: one attempt, and any failure is either a
		// context error or a bug.
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scores, counts, err := s.runTier(ctx, tier, pairs, seq, uint64(int(tier)*attempts+a))
		rep.Faults.HtoD += counts.HtoD
		rep.Faults.DtoH += counts.DtoH
		rep.Faults.Alloc += counts.Alloc
		rep.Faults.Launch += counts.Launch
		rep.Faults.BitFlips += counts.BitFlips
		s.faultsInjected.Add(int64(counts.Total()))
		s.obs.Counter("alignsvc_faults_injected_total").Add(int64(counts.Total()))
		at := Attempt{Tier: tier, Faults: counts}
		if err == nil && !exact {
			var checked int
			checked, err = s.validate(ctx, pairs, scores, rng)
			rep.Validated += checked
			var ve *ValidationError
			at.ValidationFailed = errors.As(err, &ve)
		}
		if err == nil {
			rep.Attempts = append(rep.Attempts, at)
			rep.Tier = tier
			s.batches.Add(1)
			s.obs.Counter(obs.L("alignsvc_batches_total", "tier", tier.String())).Inc()
			if tier == TierCPU {
				s.cpuFallbacks.Add(1)
			}
			return &BatchResult{Scores: scores, Report: *rep}, nil
		}
		at.Err = err.Error()
		rep.Attempts = append(rep.Attempts, at)
		if at.ValidationFailed {
			s.obs.Counter(obs.L("alignsvc_validation_failures_total", "tier", tier.String())).Inc()
		}
		if isCtxErr(err) {
			return nil, err
		}
		lastErr = err
		if a+1 < attempts {
			rep.Retries++
			s.retries.Add(1)
			s.obs.Counter(obs.L("alignsvc_retries_total", "tier", tier.String())).Inc()
			if err := s.backoff(ctx, a, rng); err != nil {
				return nil, err
			}
		}
	}
	return nil, lastErr
}

// runTier executes one attempt of one tier through its Backend, converting
// panics to errors and collecting the attempt's injected-fault counts.
func (s *Service) runTier(ctx context.Context, tier Tier, pairs []dna.Pair, seq, attempt uint64) (scores []int, counts cudasim.FaultCounts, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsRecovered.Add(1)
			s.obs.Counter(obs.L("alignsvc_panics_recovered_total", "tier", tier.String())).Inc()
			err = fmt.Errorf("alignsvc: recovered %s-tier panic: %v", tier, r)
		}
	}()
	scores, st, err := s.backends[tier].AlignBatch(ctx, pairs, BatchOpts{Seq: seq, Attempt: attempt})
	return scores, st.Faults, err
}

// runTierFleet runs one GPU-tier attempt through the fleet scheduler: the
// batch is sharded across the fleet's devices, each shard executing the
// tier's pipeline on its device's spec and memory with a per-execution
// fault stream (the device's flaky profile and kill switch layered on the
// service's chaos config). The fleet's CPU member serves re-dispatched
// shards with the native striped engine — still exact (the engine widens
// on overflow down to the scalar reference) but at wall-clock GCUPS, so a
// device loss degrades throughput, not latency class. Injected-fault
// counts are summed across every shard execution, including the ones whose
// shard was later re-run elsewhere.
func (s *Service) runTierFleet(ctx context.Context, tier Tier, pairs []dna.Pair) ([]int, cudasim.FaultCounts, error) {
	var mu sync.Mutex
	var total cudasim.FaultCounts
	exec := func(ctx context.Context, d *fleet.Device, shard []dna.Pair) (scores []int, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.panicsRecovered.Add(1)
				s.obs.Counter(obs.L("alignsvc_panics_recovered_total", "tier", tier.String())).Inc()
				err = fmt.Errorf("alignsvc: recovered %s-tier panic on %s: %v", tier, d.Name(), r)
			}
		}()
		if d.CPU() {
			if d.Killed() {
				return nil, &cudasim.KilledError{Op: cudasim.FaultLaunch}
			}
			scores, _, err := s.stripedEng.ScoreBatch(ctx, shard, s.scoring())
			return scores, err
		}
		cfg := s.cfg.Pipeline
		if cfg.Metrics == nil {
			cfg.Metrics = s.obs
		}
		cfg.Device = d.Spec()
		if d.GlobalBytes() > 0 && cfg.GlobalBytes == 0 {
			cfg.GlobalBytes = d.GlobalBytes()
		}
		inj := d.NewInjector(*s.faults.Load(), s.fleetSeq.Add(1)*0x9e3779b97f4a7c15|1)
		cfg.Faults = inj
		r, err := runPipeline(ctx, tier, shard, cfg, s.cfg.Lanes)
		c := inj.Counts()
		mu.Lock()
		total.HtoD += c.HtoD
		total.DtoH += c.DtoH
		total.Alloc += c.Alloc
		total.Launch += c.Launch
		total.BitFlips += c.BitFlips
		mu.Unlock()
		if err != nil {
			return nil, err
		}
		return r.Scores, nil
	}
	scores, err := s.cfg.Fleet.Run(ctx, pairs, exec)
	mu.Lock()
	counts := total
	mu.Unlock()
	if err != nil {
		return nil, counts, err
	}
	return scores, counts, nil
}

func (s *Service) scoring() swa.Scoring {
	if s.cfg.Pipeline.Scoring == (swa.Scoring{}) {
		return swa.PaperScoring
	}
	return s.cfg.Pipeline.Scoring
}

// Scoring reports the effective scoring scheme the service aligns with.
// The cluster layer uses it to derive the same cache keys this service
// derives, so consistent-hash routing lands forwards on warm caches.
func (s *Service) Scoring() swa.Scoring { return s.scoring() }

// Lanes reports the effective bitwise lane width (32 or 64), the other
// input of the content-address cache key.
func (s *Service) Lanes() int { return s.cfg.Lanes }

// validate re-scores a sample of the batch on the CPU reference and fails
// on the first disagreement. Returns how many pairs were checked.
func (s *Service) validate(ctx context.Context, pairs []dna.Pair, scores []int, rng *rand.Rand) (int, error) {
	if s.cfg.ValidateFrac < 0 || len(pairs) == 0 {
		return 0, nil
	}
	if len(scores) != len(pairs) {
		return 0, fmt.Errorf("alignsvc: got %d scores for %d pairs", len(scores), len(pairs))
	}
	sc := s.scoring()
	check := func(i int) error {
		if want := swa.Score(pairs[i].X, pairs[i].Y, sc); scores[i] != want {
			return &ValidationError{Index: i, Got: scores[i], Want: want}
		}
		return nil
	}
	if s.cfg.ValidateFrac >= 1 {
		for i := range pairs {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return i, err
				}
			}
			if err := check(i); err != nil {
				return i + 1, err
			}
		}
		return len(pairs), nil
	}
	n := max(1, int(float64(len(pairs))*s.cfg.ValidateFrac))
	for k := 0; k < n; k++ {
		if k%64 == 0 {
			if err := ctx.Err(); err != nil {
				return k, err
			}
		}
		if err := check(rng.IntN(len(pairs))); err != nil {
			return k + 1, err
		}
	}
	return n, nil
}

// backoff sleeps base·2^attempt with half-interval jitter, capped at
// MaxBackoff, honouring the context.
func (s *Service) backoff(ctx context.Context, attempt int, rng *rand.Rand) error {
	d := s.cfg.BaseBackoff << attempt
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	d = d/2 + time.Duration(rng.Int64N(int64(d/2)+1))
	return s.cfg.sleep(ctx, d)
}
