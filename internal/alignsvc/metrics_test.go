package alignsvc

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cudasim"
	"repro/internal/obs"
)

// TestServiceMetrics drives a faulty batch through the ladder and checks the
// obs registry picked up queue wait, per-tier counters and the pipeline's
// stage histograms (proving the registry flows service → pipeline).
func TestServiceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Seed:         5,
		Metrics:      reg,
		MaxAttempts:  2,
		ValidateFrac: -1,
		BaseBackoff:  10 * time.Microsecond,
		MaxBackoff:   50 * time.Microsecond,
	})
	defer s.Close()

	pairs := plantedPairs(64, 16, 32, 4)
	tr := obs.NewTrace("")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := s.Align(ctx, pairs); err != nil {
		t.Fatal(err)
	}

	if h := reg.Histogram("alignsvc_queue_wait_seconds", nil); h.Count() != 1 {
		t.Errorf("queue wait observations = %d, want 1", h.Count())
	}
	if c := reg.Counter(obs.L("alignsvc_batches_total", "tier", "bitwise")); c.Value() != 1 {
		t.Errorf("bitwise batches = %d, want 1", c.Value())
	}
	if h := reg.Histogram(obs.L("alignsvc_batch_seconds", "tier", "bitwise"), nil); h.Count() != 1 {
		t.Errorf("batch seconds observations = %d, want 1", h.Count())
	}
	// The pipeline recorded into the same registry.
	if h := reg.Histogram(obs.L("pipeline_stage_sim_seconds", "pipeline", "bitwise", "stage", "swa"), nil); h.Count() != 1 {
		t.Errorf("pipeline swa histogram = %d, want 1", h.Count())
	}

	// The trace carries the queue-wait → service → tier → stage span chain.
	names := make(map[string]bool)
	for _, sp := range tr.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{
		"alignsvc.queue_wait", "alignsvc.process", "alignsvc.tier.bitwise", "pipeline.swa",
	} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

// TestServiceRetryAndFallbackMetrics forces bitwise failures so retries,
// fallbacks and breaker transitions surface in the registry.
func TestServiceRetryAndFallbackMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Seed:            6,
		Metrics:         reg,
		MaxAttempts:     2,
		ValidateFrac:    -1,
		BaseBackoff:     10 * time.Microsecond,
		MaxBackoff:      50 * time.Microsecond,
		BreakerFailures: 1,
		Faults:          cudasim.FaultConfig{Seed: 11, Launch: 1}, // every launch fails
	})
	defer s.Close()

	pairs := plantedPairs(32, 16, 32, 5)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Tier != TierCPU {
		t.Fatalf("served by %v, want cpu under a total launch-fault storm", res.Report.Tier)
	}
	if c := reg.Counter(obs.L("alignsvc_retries_total", "tier", "bitwise")); c.Value() != 1 {
		t.Errorf("bitwise retries = %d, want 1", c.Value())
	}
	if c := reg.Counter(obs.L("alignsvc_fallbacks_total", "from", "bitwise")); c.Value() != 1 {
		t.Errorf("bitwise fallbacks = %d, want 1", c.Value())
	}
	if c := reg.Counter("alignsvc_faults_injected_total"); c.Value() == 0 {
		t.Error("faults injected counter still zero")
	}
	// BreakerFailures=1: both GPU tiers tripped open.
	for _, tier := range []string{"bitwise", "wordwise"} {
		if c := reg.Counter(obs.L("alignsvc_breaker_transitions_total", "tier", tier, "to", "open")); c.Value() != 1 {
			t.Errorf("%s open transitions = %d, want 1", tier, c.Value())
		}
		if g := reg.Gauge(obs.L("alignsvc_breaker_state", "tier", tier)); g.Value() != float64(BreakerOpen) {
			t.Errorf("%s breaker state gauge = %v, want open", tier, g.Value())
		}
	}

	// The whole stack renders to one exposition.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE alignsvc_retries_total counter",
		"# TYPE alignsvc_breaker_state gauge",
		`alignsvc_breaker_transitions_total{tier="bitwise",to="open"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
