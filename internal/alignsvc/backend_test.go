package alignsvc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/aligncache"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/swa"
)

// TestBackendLadderSelection verifies each configured backend serves clean
// batches from its own head rung with exact scores.
func TestBackendLadderSelection(t *testing.T) {
	cases := []struct {
		backend string
		tier    Tier
	}{
		{"", TierBitwise},
		{BackendBitwiseSim, TierBitwise},
		{BackendWordwiseSim, TierWordwise},
		{BackendStriped, TierStriped},
		{BackendCPURef, TierCPU},
	}
	pairs := plantedPairs(32, 24, 48, 7)
	want := refScores(pairs)
	for _, tc := range cases {
		t.Run("backend="+tc.backend, func(t *testing.T) {
			s := New(Config{Seed: 1, Backend: tc.backend, Metrics: obs.NewRegistry()})
			defer s.Close()
			res, err := s.Align(context.Background(), pairs)
			if err != nil {
				t.Fatal(err)
			}
			assertScores(t, res.Scores, want)
			if res.Report.Tier != tc.tier {
				t.Fatalf("served by %v, want %v", res.Report.Tier, tc.tier)
			}
			if len(res.Report.Attempts) != 1 {
				t.Fatalf("attempts: %+v", res.Report.Attempts)
			}
			st := s.Stats()
			wantName := tc.backend
			if wantName == "" {
				wantName = BackendBitwiseSim
			}
			if st.Backend != wantName {
				t.Fatalf("Stats.Backend = %q, want %q", st.Backend, wantName)
			}
			if tc.tier == TierStriped && (st.Striped == nil || st.Striped.Pairs == 0) {
				t.Fatalf("striped stats not populated: %+v", st.Striped)
			}
		})
	}
}

// TestNewPanicsOnUnknownBackend pins the fail-fast contract: a misspelled
// backend must not silently serve with a different engine.
func TestNewPanicsOnUnknownBackend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an unknown backend")
		}
	}()
	New(Config{Backend: "stripd"})
}

// TestAlignBackendOverride verifies per-request backend selection on a
// running service, including rejection of unknown names.
func TestAlignBackendOverride(t *testing.T) {
	s := New(Config{Seed: 3, Backend: BackendStriped, Metrics: obs.NewRegistry()})
	defer s.Close()
	pairs := plantedPairs(16, 20, 40, 9)
	want := refScores(pairs)

	for _, tc := range []struct {
		backend string
		tier    Tier
	}{
		{BackendCPURef, TierCPU},
		{BackendBitwiseSim, TierBitwise},
		{BackendStriped, TierStriped},
	} {
		res, err := s.AlignBackend(context.Background(), pairs, tc.backend)
		if err != nil {
			t.Fatalf("%s: %v", tc.backend, err)
		}
		assertScores(t, res.Scores, want)
		if res.Report.Tier != tc.tier {
			t.Fatalf("%s served by %v, want %v", tc.backend, res.Report.Tier, tc.tier)
		}
	}
	if _, err := s.AlignBackend(context.Background(), pairs, "gpu-magic"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The override must not change the configured default.
	if st := s.Stats(); st.Backend != BackendStriped {
		t.Fatalf("Stats.Backend = %q after overrides, want %q", st.Backend, BackendStriped)
	}
}

// TestStripedBackendDegradesToCPU verifies the striped ladder still ends at
// the reference rung: with the engine's rung poisoned (simulated via a
// backend stub), the batch is served by TierCPU. Rather than stubbing, use
// NoCPUFallback to at least pin the ladder shape.
func TestStripedLadderShape(t *testing.T) {
	s := New(Config{Seed: 5, Backend: BackendStriped, Metrics: obs.NewRegistry()})
	defer s.Close()
	if got := s.ladder(BackendStriped); len(got) != 2 || got[0] != TierStriped || got[1] != TierCPU {
		t.Fatalf("striped ladder = %v", got)
	}
	if got := s.ladder(BackendCPURef); len(got) != 1 || got[0] != TierCPU {
		t.Fatalf("cpu-ref ladder = %v", got)
	}
	s2 := New(Config{Seed: 5, Backend: BackendStriped, NoCPUFallback: true, Metrics: obs.NewRegistry()})
	defer s2.Close()
	if got := s2.ladder(BackendStriped); len(got) != 1 || got[0] != TierStriped {
		t.Fatalf("striped ladder with NoCPUFallback = %v", got)
	}
	// cpu-ref keeps its only rung even with NoCPUFallback: the caller asked
	// for the reference, removing it would leave nothing.
	if got := s2.ladder(BackendCPURef); len(got) != 1 || got[0] != TierCPU {
		t.Fatalf("cpu-ref ladder with NoCPUFallback = %v", got)
	}
}

// countdownErrCtx cancels after n Err() polls; Done() never closes, so only
// poll sites observe the cancellation — which is exactly the regression
// surface: a tight scoring loop that never polls would hang the batch.
type countdownErrCtx struct {
	context.Context
	left int
}

func (c *countdownErrCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestCPUBackendAbortsMidBatch is the regression test for the CPU
// fallback's cancellation latency: a context cancelled mid-batch must abort
// between pairs (the reference polls every cpuPollCells cells, not only at
// batch start) and surface a typed *AbortError that unwraps to the context
// error, with the abort position in range.
func TestCPUBackendAbortsMidBatch(t *testing.T) {
	s := New(Config{Seed: 2, Backend: BackendCPURef, Metrics: obs.NewRegistry()})
	defer s.Close()
	// 64 pairs of 100×100 cells: ~6 pairs per cpuPollCells poll window.
	pairs := plantedPairs(64, 100, 100, 3)
	ctx := &countdownErrCtx{Context: context.Background(), left: 4}
	_, err := s.Align(ctx, pairs)
	if err == nil {
		t.Fatal("cancelled batch succeeded")
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("err = %v (%T), want *AbortError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AbortError does not unwrap to context.Canceled: %v", err)
	}
	if ab.Scored <= 0 || ab.Scored >= len(pairs) {
		t.Fatalf("abort position %d not strictly mid-batch (n=%d)", ab.Scored, len(pairs))
	}
	if st := s.Stats(); st.Cancellations != 1 {
		t.Fatalf("Cancellations = %d, want 1", st.Cancellations)
	}
}

// TestBackendExactnessOracle is the cross-backend oracle: every backend,
// constructed standalone via NewBackend, must return byte-identical scores
// to the scalar swa.Score reference on randomized batches. This is the
// invariant that lets the score cache omit the backend from its key.
func TestBackendExactnessOracle(t *testing.T) {
	for _, name := range BackendNames() {
		t.Run(name, func(t *testing.T) {
			b, err := NewBackend(name, pipeline.Config{Metrics: obs.NewRegistry()}, 32)
			if err != nil {
				t.Fatal(err)
			}
			if b.Name() != name {
				t.Fatalf("Name() = %q", b.Name())
			}
			for trial := 0; trial < 10; trial++ {
				pairs := plantedPairs(8, 16+7*trial, 32+11*trial, uint64(trial))
				scores, _, err := b.AlignBatch(context.Background(), pairs, BatchOpts{})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				for i, p := range pairs {
					if want := swa.Score(p.X, p.Y, swa.PaperScoring); scores[i] != want {
						t.Fatalf("trial %d pair %d: got %d want %d", trial, i, scores[i], want)
					}
				}
			}
		})
	}
	if _, err := NewBackend("nope", pipeline.Config{}, 32); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestCacheSharedAcrossBackends verifies the documented cache invariant
// (see aligncache.KeyOf): entries filled by the striped backend serve
// bitwise-sim requests byte-identically, because the key excludes the
// backend on purpose.
func TestCacheSharedAcrossBackends(t *testing.T) {
	cache := aligncache.New(aligncache.Config{MaxBytes: 1 << 20, Metrics: obs.NewRegistry()})
	pairs := plantedPairs(24, 32, 64, 13)
	want := refScores(pairs)

	fill := New(Config{Seed: 1, Backend: BackendStriped, Cache: cache, Metrics: obs.NewRegistry()})
	res, err := fill.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, want)
	if res.Report.Tier != TierStriped {
		t.Fatalf("fill served by %v, want striped", res.Report.Tier)
	}
	fill.Close()

	serve := New(Config{Seed: 2, Backend: BackendBitwiseSim, Cache: cache, Metrics: obs.NewRegistry()})
	defer serve.Close()
	res2, err := serve.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res2.Scores, want)
	if res2.Report.CacheHits != len(pairs) {
		t.Fatalf("CacheHits = %d, want %d (striped-filled entries must serve bitwise-sim)",
			res2.Report.CacheHits, len(pairs))
	}
	if len(res2.Report.Attempts) != 0 {
		t.Fatalf("cached batch still ran attempts: %+v", res2.Report.Attempts)
	}

	// And the reverse direction: bitwise-filled entries serve striped.
	extra := plantedPairs(8, 40, 40, 17)
	if _, err := serve.Align(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	res3, err := fillAgain(cache, extra)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Report.CacheHits != len(extra) {
		t.Fatalf("reverse CacheHits = %d, want %d", res3.Report.CacheHits, len(extra))
	}
	assertScores(t, res3.Scores, refScores(extra))
}

func fillAgain(cache *aligncache.Cache, pairs []dna.Pair) (*BatchResult, error) {
	s := New(Config{Seed: 3, Backend: BackendStriped, Cache: cache, Metrics: obs.NewRegistry()})
	defer s.Close()
	return s.Align(context.Background(), pairs)
}
