package alignsvc

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/aligncache"
	"repro/internal/cudasim"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

func testFleet(t *testing.T, cfg fleet.Config) *fleet.Scheduler {
	t.Helper()
	s, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// A fleet-backed service must return the same exact scores as the
// single-device path, shard batches across the devices, and expose the
// fleet snapshot through Stats (including its JSON wire form).
func TestFleetBackedAlignExactScores(t *testing.T) {
	fl := testFleet(t, fleet.Config{
		Devices: []fleet.DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
			{Name: "d1", Spec: perfmodel.TitanXHalf, GlobalBytes: 6 << 30},
			{Name: "cpu", CPU: true},
		},
	})
	s := New(Config{Seed: 7, Fleet: fl})
	defer s.Close()

	pairs := plantedPairs(64, 16, 32, 11)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.Tier != TierBitwise {
		t.Fatalf("clean fleet batch served by %v, want bitwise", res.Report.Tier)
	}

	st := s.Stats()
	if st.Fleet == nil {
		t.Fatal("Stats().Fleet is nil with a fleet configured")
	}
	if st.Fleet.Batches == 0 || st.Fleet.Shards < 2 {
		t.Fatalf("batch was not sharded across the fleet: %+v", st.Fleet)
	}
	var gpuPairs int64
	for _, d := range st.Fleet.Devices {
		if !d.CPU {
			gpuPairs += d.PairsDone
		} else if d.PairsDone != 0 {
			t.Fatalf("CPU member served %d pairs of a healthy-fleet batch", d.PairsDone)
		}
	}
	if gpuPairs != int64(len(pairs)) {
		t.Fatalf("GPU members scored %d pairs, want %d", gpuPairs, len(pairs))
	}

	// The fleet section must survive the stable JSON wire format.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fleet == nil || len(back.Fleet.Devices) != 3 || back.Fleet.Shards != st.Fleet.Shards {
		t.Fatalf("fleet stats did not round-trip: %s", b)
	}
}

// Satellite regression: Stats must return a consistent view while fleet
// membership churns (devices killed, quarantined, readmitted mid-snapshot).
// The fleet aggregates must always equal the per-device sums and the device
// set must never change size. Run under -race.
func TestFleetStatsConsistentUnderChurn(t *testing.T) {
	fl := testFleet(t, fleet.Config{
		Devices: []fleet.DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
			{Name: "d1", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
			{Name: "d2", Spec: perfmodel.TitanXHalf, GlobalBytes: 6 << 30},
			{Name: "cpu", CPU: true},
		},
		QuarantineAfter: 2,
		ProbeInterval:   10 * time.Millisecond,
	})
	s := New(Config{Seed: 9, Fleet: fl, MaxAttempts: 2})
	defer s.Close()

	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				pairs := plantedPairs(16, 12, 24, uint64(1000*c+i+1))
				s.Align(context.Background(), pairs)
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(3, 3))
		names := []string{"d0", "d1", "d2"}
		for {
			select {
			case <-stopCh:
				return
			case <-time.After(2 * time.Millisecond):
			}
			n := names[rng.IntN(len(names))]
			if rng.IntN(2) == 0 {
				fl.KillDevice(n)
			} else {
				fl.ReviveDevice(n)
			}
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Fleet == nil {
			t.Fatal("Fleet snapshot vanished mid-churn")
		}
		if len(st.Fleet.Devices) != 4 {
			t.Fatalf("device set changed size: %d", len(st.Fleet.Devices))
		}
		var steals, quar, read int64
		for _, d := range st.Fleet.Devices {
			steals += d.Steals
			quar += d.Quarantines
			read += d.Readmissions
		}
		if st.Fleet.Steals != steals || st.Fleet.Quarantines != quar || st.Fleet.Readmissions != read {
			t.Fatalf("fleet aggregates inconsistent with per-device sums: %+v", st.Fleet)
		}
	}
	close(stopCh)
	wg.Wait()
	// Revive everything so Close drains cleanly.
	for _, n := range []string{"d0", "d1", "d2"} {
		fl.ReviveDevice(n)
	}
}

// With the CPU rung removed and the only device killed, Align must fail with
// a typed error carrying the device loss — never a hang, never an untyped
// string — and the same service must recover once the device is revived.
func TestFleetNoCPUFallbackKilledTyped(t *testing.T) {
	fl := testFleet(t, fleet.Config{
		Devices: []fleet.DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
		},
		QuarantineAfter: 1000, // keep it taking (and failing) work
		MaxRedispatch:   3,
	})
	s := New(Config{
		Seed:            5,
		Fleet:           fl,
		NoCPUFallback:   true,
		MaxAttempts:     1,
		BreakerFailures: -1,
	})
	defer s.Close()

	fl.KillDevice("d0")
	pairs := plantedPairs(24, 12, 24, 21)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := s.Align(ctx, pairs)
	if err == nil {
		t.Fatal("Align succeeded with the only device killed and no CPU rung")
	}
	if !errors.Is(err, cudasim.ErrDeviceKilled) {
		t.Fatalf("device loss not typed in the chain: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Align hung until the deadline instead of failing fast: %v", err)
	}

	fl.ReviveDevice("d0")
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatalf("Align did not recover after revive: %v", err)
	}
	assertScores(t, res.Scores, refScores(pairs))
}

// Singleflight integration: identical batches race while the only device is
// killed and the CPU rung is removed. The leader's flight fails typed, every
// racer fails typed (nobody hangs), the failure is not cached, and after a
// revive the recomputed scores are cached and served as hits.
func TestFleetCacheLeaderKilledNotCached(t *testing.T) {
	fl := testFleet(t, fleet.Config{
		Devices: []fleet.DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
		},
		QuarantineAfter: 1000,
		MaxRedispatch:   2,
	})
	cache := aligncache.New(aligncache.Config{MaxBytes: 1 << 20, Metrics: obs.NewRegistry()})
	s := New(Config{
		Seed:            13,
		Fleet:           fl,
		NoCPUFallback:   true,
		MaxAttempts:     1,
		BreakerFailures: -1,
		Cache:           cache,
	})
	defer s.Close()

	fl.KillDevice("d0")
	pairs := plantedPairs(8, 12, 24, 31)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, err := s.Align(ctx, pairs)
			errCh <- err
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err == nil {
			t.Fatal("Align succeeded with the only device killed")
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("racer hung until its deadline: %v", err)
		}
		if !errors.Is(err, cudasim.ErrDeviceKilled) {
			t.Fatalf("racer error not typed: %v", err)
		}
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("failed flights left %d cached entries", st.Entries)
	}

	fl.ReviveDevice("d0")
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatalf("Align did not recover after revive: %v", err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	res, err = s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.CacheHits != len(pairs) {
		t.Fatalf("recomputed scores not served from cache: %d hits of %d", res.Report.CacheHits, len(pairs))
	}
}
