package alignsvc

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/swa"
)

func plantedPairs(count, m, n int, seed uint64) []dna.Pair {
	rng := rand.New(rand.NewPCG(seed, 0))
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
	return dna.PlantedPairs(rng, count, m, n, 0.2, mut)
}

func refScores(pairs []dna.Pair) []int {
	out := make([]int, len(pairs))
	for i, p := range pairs {
		out[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return out
}

func assertScores(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d scores, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAlignCleanBatch(t *testing.T) {
	s := New(Config{Seed: 1})
	defer s.Close()
	pairs := plantedPairs(64, 16, 32, 2)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.Tier != TierBitwise {
		t.Fatalf("clean batch served by %v, want bitwise", res.Report.Tier)
	}
	if len(res.Report.Attempts) != 1 || res.Report.Retries != 0 || res.Report.Fallbacks != 0 {
		t.Fatalf("clean batch report: %+v", res.Report)
	}
	if st := s.Stats(); st.Batches != 1 || st.Retries != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAlignLanes64(t *testing.T) {
	s := New(Config{Seed: 1, Lanes: 64})
	defer s.Close()
	pairs := plantedPairs(96, 16, 32, 3)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
}

// TestAcceptanceFaultyBatches is the issue's acceptance scenario: ≥1k
// planted pairs at a 30% transfer/kernel fault rate still score exactly,
// with retries and at least one fallback tier exercised along the way.
func TestAcceptanceFaultyBatches(t *testing.T) {
	s := New(Config{
		Seed:         42,
		ValidateFrac: 1, // catch every injected bit flip
		MaxAttempts:  3,
		BaseBackoff:  50 * time.Microsecond,
		MaxBackoff:   500 * time.Microsecond,
		Faults: cudasim.FaultConfig{
			Seed:    42,
			HtoD:    0.3,
			DtoH:    0.3,
			Launch:  0.3,
			BitFlip: 0.3,
		},
	})
	defer s.Close()

	const batches, perBatch = 16, 64 // 1024 pairs total
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sawFallback, sawRetry bool
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			pairs := plantedPairs(perBatch, 16, 32, uint64(100+b))
			res, err := s.Align(context.Background(), pairs)
			if err != nil {
				t.Errorf("batch %d: %v", b, err)
				return
			}
			assertScores(t, res.Scores, refScores(pairs))
			mu.Lock()
			sawFallback = sawFallback || res.Report.Fallbacks > 0
			sawRetry = sawRetry || res.Report.Retries > 0
			mu.Unlock()
		}(b)
	}
	wg.Wait()

	st := s.Stats()
	if st.Batches != batches {
		t.Fatalf("completed %d batches, want %d (stats %+v)", st.Batches, batches, st)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("no faults injected at 30% rates")
	}
	if !sawRetry || st.Retries == 0 {
		t.Fatalf("no retries exercised (stats %+v)", st)
	}
	if !sawFallback || st.Fallbacks == 0 {
		t.Fatalf("no fallback tier exercised (stats %+v)", st)
	}
	t.Logf("stats after %d faulty batches: %+v", batches, st)
}

func TestDeadlinePropagates(t *testing.T) {
	s := New(Config{Seed: 9})
	defer s.Close()
	pairs := plantedPairs(256, 32, 256, 7)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := s.Align(ctx, pairs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if st := s.Stats(); st.DeadlineHits == 0 {
		t.Fatalf("deadline hit not counted: %+v", st)
	}
}

func TestCancellationPropagates(t *testing.T) {
	s := New(Config{Seed: 9})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Align(ctx, plantedPairs(32, 16, 32, 8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDeviceOOMDegradesToCPU(t *testing.T) {
	cfg := Config{Seed: 3, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 50 * time.Microsecond}
	cfg.Pipeline.GlobalBytes = 64 // both GPU tiers fail allocation
	s := New(cfg)
	defer s.Close()
	pairs := plantedPairs(64, 16, 32, 5)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.Tier != TierCPU {
		t.Fatalf("OOM batch served by %v, want cpu", res.Report.Tier)
	}
	if res.Report.Fallbacks != 2 {
		t.Fatalf("want 2 fallbacks (bitwise→wordwise→cpu), got %d", res.Report.Fallbacks)
	}
	if st := s.Stats(); st.CPUFallbacks != 1 {
		t.Fatalf("CPU fallback not counted: %+v", st)
	}
}

func TestPanicRecovery(t *testing.T) {
	cfg := Config{Seed: 3, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 50 * time.Microsecond}
	cfg.Pipeline.GlobalBytes = -1 // make([]byte, -1) panics inside the run
	s := New(cfg)
	defer s.Close()
	pairs := plantedPairs(64, 16, 32, 6)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.Tier != TierCPU {
		t.Fatalf("panicking batch served by %v, want cpu", res.Report.Tier)
	}
	if st := s.Stats(); st.PanicsRecovered == 0 {
		t.Fatalf("panics not recovered/counted: %+v", st)
	}
}

func TestValidationCatchesBitFlips(t *testing.T) {
	s := New(Config{
		Seed:         11,
		ValidateFrac: 1,
		BaseBackoff:  10 * time.Microsecond,
		MaxBackoff:   50 * time.Microsecond,
		// Every transfer flips one bit: the G2H download always corrupts
		// some score, so every GPU attempt must fail validation.
		Faults: cudasim.FaultConfig{Seed: 11, BitFlip: 1},
	})
	defer s.Close()
	pairs := plantedPairs(64, 16, 32, 9) // full lane groups: no padding lanes
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.Tier != TierCPU {
		t.Fatalf("bit-flipped batch served by %v, want cpu", res.Report.Tier)
	}
	var sawValidationFailure bool
	for _, a := range res.Report.Attempts {
		sawValidationFailure = sawValidationFailure || a.ValidationFailed
	}
	if !sawValidationFailure {
		t.Fatalf("no attempt flagged ValidationFailed: %+v", res.Report.Attempts)
	}
	if res.Report.Faults.BitFlips == 0 {
		t.Fatalf("bit flips not reported: %+v", res.Report.Faults)
	}
}

func TestBackoffShape(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	cfg := Config{
		Seed:        1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		MaxAttempts: 4,
		sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return ctx.Err()
		},
	}
	cfg.Pipeline.GlobalBytes = 64 // force retries on both GPU tiers
	s := New(cfg)
	defer s.Close()
	if _, err := s.Align(context.Background(), plantedPairs(32, 16, 32, 4)); err != nil {
		t.Fatal(err)
	}
	// 3 backoffs per GPU tier (4 attempts each), none after the last
	// attempt of a tier or on the CPU rung.
	if len(slept) != 6 {
		t.Fatalf("expected 6 backoff sleeps, got %d: %v", len(slept), slept)
	}
	for i, d := range slept {
		if d < cfg.BaseBackoff/2 || d > cfg.MaxBackoff {
			t.Fatalf("sleep %d = %v outside [base/2, max]", i, d)
		}
	}
}

func TestWorkerPoolConcurrency(t *testing.T) {
	s := New(Config{Seed: 2, Workers: 2, Queue: 1})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pairs := plantedPairs(32, 8, 16, uint64(i))
			res, err := s.Align(context.Background(), pairs)
			if err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
			assertScores(t, res.Scores, refScores(pairs))
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Batches != 16 {
		t.Fatalf("want 16 batches, got %+v", st)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{Seed: 1})
	s.Close()
	if _, err := s.Align(context.Background(), plantedPairs(32, 8, 16, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestStartTierSkipsRungs(t *testing.T) {
	s := New(Config{Seed: 1, StartTier: TierCPU})
	defer s.Close()
	pairs := plantedPairs(48, 16, 32, 12)
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, refScores(pairs))
	if res.Report.Tier != TierCPU || len(res.Report.Attempts) != 1 {
		t.Fatalf("StartTier=cpu report: %+v", res.Report)
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Tier: TierCPU,
		Attempts: []Attempt{
			{Tier: TierBitwise, Err: "x"}, {Tier: TierBitwise, Err: "y"},
			{Tier: TierWordwise, Err: "z"}, {Tier: TierCPU},
		},
		Retries: 1, Fallbacks: 2,
		Faults: cudasim.FaultCounts{HtoD: 2, Launch: 1},
	}
	got := r.String()
	want := "bitwise×2 → wordwise×1 → cpu×1 ok=cpu (1 retries, 2 fallbacks, 3 faults)"
	if got != want {
		t.Fatalf("Report.String() = %q, want %q", got, want)
	}
}

func TestCells(t *testing.T) {
	mk := func(s string) dna.Seq {
		p, err := dna.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pairs := []dna.Pair{
		{X: mk("ACGT"), Y: mk("ACGTACGT")}, // 4·8 = 32
		{X: mk("A"), Y: mk("ACG")},         // 1·3 = 3
	}
	if got := Cells(pairs); got != 35 {
		t.Fatalf("Cells = %d, want 35", got)
	}
	if got := Cells(nil); got != 0 {
		t.Fatalf("Cells(nil) = %d, want 0", got)
	}
}
