package alignsvc

import (
	"encoding/json"
	"time"

	"repro/internal/cudasim"
	"repro/internal/fleet"
	"repro/internal/striped"
)

// This file pins the wire format of Report and Stats: stable snake_case
// field names, tiers and breaker states as their String() forms, durations
// as float milliseconds. /statsz, the server responses and any future
// observability layer all marshal through here, so changes are breaking.

type faultCountsJSON struct {
	HtoD     int `json:"htod"`
	DtoH     int `json:"dtoh"`
	Alloc    int `json:"alloc"`
	Launch   int `json:"launch"`
	BitFlips int `json:"bit_flips"`
}

func toFaultsJSON(c cudasim.FaultCounts) faultCountsJSON {
	return faultCountsJSON{HtoD: c.HtoD, DtoH: c.DtoH, Alloc: c.Alloc,
		Launch: c.Launch, BitFlips: c.BitFlips}
}

func (f faultCountsJSON) counts() cudasim.FaultCounts {
	return cudasim.FaultCounts{HtoD: f.HtoD, DtoH: f.DtoH, Alloc: f.Alloc,
		Launch: f.Launch, BitFlips: f.BitFlips}
}

// MarshalJSON renders the tier name ("bitwise", "wordwise", "cpu",
// "striped").
func (t Tier) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON parses the tier name.
func (t *Tier) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseTier(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// MarshalJSON renders the state name ("closed", "open", "half-open").
func (s BreakerState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the state name.
func (s *BreakerState) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	v, err := ParseBreakerState(str)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

type attemptJSON struct {
	Tier             Tier            `json:"tier"`
	Err              string          `json:"err,omitempty"`
	ValidationFailed bool            `json:"validation_failed,omitempty"`
	Faults           faultCountsJSON `json:"faults"`
}

type reportJSON struct {
	Tier           Tier            `json:"tier"`
	Attempts       []attemptJSON   `json:"attempts"`
	Retries        int             `json:"retries"`
	Fallbacks      int             `json:"fallbacks"`
	Skips          []Tier          `json:"skips,omitempty"`
	Faults         faultCountsJSON `json:"faults"`
	Validated      int             `json:"validated"`
	ElapsedMS      float64         `json:"elapsed_ms"`
	CacheHits      int             `json:"cache_hits,omitempty"`
	CacheCoalesced int             `json:"cache_coalesced,omitempty"`
}

// MarshalJSON implements the stable wire format described above.
func (r Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Tier:           r.Tier,
		Retries:        r.Retries,
		Fallbacks:      r.Fallbacks,
		Skips:          r.Skips,
		Faults:         toFaultsJSON(r.Faults),
		Validated:      r.Validated,
		ElapsedMS:      float64(r.Elapsed) / float64(time.Millisecond),
		CacheHits:      r.CacheHits,
		CacheCoalesced: r.CacheCoalesced,
	}
	for _, a := range r.Attempts {
		out.Attempts = append(out.Attempts, attemptJSON{
			Tier: a.Tier, Err: a.Err,
			ValidationFailed: a.ValidationFailed,
			Faults:           toFaultsJSON(a.Faults),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (r *Report) UnmarshalJSON(b []byte) error {
	var in reportJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*r = Report{
		Tier:           in.Tier,
		Retries:        in.Retries,
		Fallbacks:      in.Fallbacks,
		Skips:          in.Skips,
		Faults:         in.Faults.counts(),
		Validated:      in.Validated,
		Elapsed:        time.Duration(in.ElapsedMS * float64(time.Millisecond)),
		CacheHits:      in.CacheHits,
		CacheCoalesced: in.CacheCoalesced,
	}
	for _, a := range in.Attempts {
		r.Attempts = append(r.Attempts, Attempt{
			Tier: a.Tier, Err: a.Err,
			ValidationFailed: a.ValidationFailed,
			Faults:           a.Faults.counts(),
		})
	}
	return nil
}

type breakerSnapshotJSON struct {
	Tier     Tier         `json:"tier"`
	State    BreakerState `json:"state"`
	Failures int          `json:"consecutive_failures"`
}

type statsJSON struct {
	Backend              string                `json:"backend,omitempty"`
	Batches              int64                 `json:"batches"`
	BatchesFailed        int64                 `json:"batches_failed"`
	Retries              int64                 `json:"retries"`
	Fallbacks            int64                 `json:"fallbacks"`
	CPUFallbacks         int64                 `json:"cpu_fallbacks"`
	DeadlineHits         int64                 `json:"deadline_hits"`
	Cancellations        int64                 `json:"cancellations"`
	PanicsRecovered      int64                 `json:"panics_recovered"`
	FaultsInjected       int64                 `json:"faults_injected"`
	BreakerTrips         int64                 `json:"breaker_trips"`
	BreakerShortCircuits int64                 `json:"breaker_short_circuits"`
	BreakerProbes        int64                 `json:"breaker_probes"`
	Breakers             []breakerSnapshotJSON `json:"breakers,omitempty"`
	Fleet                *fleet.Stats          `json:"fleet,omitempty"`
	Striped              *striped.Stats        `json:"striped,omitempty"`
}

// MarshalJSON implements the stable wire format described above.
func (s Stats) MarshalJSON() ([]byte, error) {
	out := statsJSON{
		Backend:              s.Backend,
		Batches:              s.Batches,
		BatchesFailed:        s.BatchesFailed,
		Retries:              s.Retries,
		Fallbacks:            s.Fallbacks,
		CPUFallbacks:         s.CPUFallbacks,
		DeadlineHits:         s.DeadlineHits,
		Cancellations:        s.Cancellations,
		PanicsRecovered:      s.PanicsRecovered,
		FaultsInjected:       s.FaultsInjected,
		BreakerTrips:         s.BreakerTrips,
		BreakerShortCircuits: s.BreakerShortCircuits,
		BreakerProbes:        s.BreakerProbes,
		Fleet:                s.Fleet,
		Striped:              s.Striped,
	}
	for _, br := range s.Breakers {
		out.Breakers = append(out.Breakers, breakerSnapshotJSON(br))
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Stats) UnmarshalJSON(b []byte) error {
	var in statsJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*s = Stats{
		Backend:              in.Backend,
		Batches:              in.Batches,
		BatchesFailed:        in.BatchesFailed,
		Retries:              in.Retries,
		Fallbacks:            in.Fallbacks,
		CPUFallbacks:         in.CPUFallbacks,
		DeadlineHits:         in.DeadlineHits,
		Cancellations:        in.Cancellations,
		PanicsRecovered:      in.PanicsRecovered,
		FaultsInjected:       in.FaultsInjected,
		BreakerTrips:         in.BreakerTrips,
		BreakerShortCircuits: in.BreakerShortCircuits,
		BreakerProbes:        in.BreakerProbes,
		Fleet:                in.Fleet,
		Striped:              in.Striped,
	}
	for _, br := range in.Breakers {
		s.Breakers = append(s.Breakers, BreakerSnapshot(br))
	}
	return nil
}
