package alignsvc

import (
	"context"
	"slices"
	"testing"
	"time"

	"repro/internal/cudasim"
)

// fakeClock is a manually advanced clock for breaker unit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(2, 100*time.Millisecond, clk.now)

	// Closed: failures below the threshold keep it closed, a success resets.
	if ok, _ := b.allow(); !ok {
		t.Fatal("fresh breaker should allow")
	}
	b.release(tierFailed, false)
	b.release(tierSucceeded, false)
	if snap, _, _, _ := b.snapshot(TierBitwise); snap.State != BreakerClosed || snap.Failures != 0 {
		t.Fatalf("after fail+success: %+v", snap)
	}

	// Two consecutive failures trip it open.
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("closed breaker refused at failure %d", i)
		}
		b.release(tierFailed, false)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker should short-circuit")
	}

	// Cooldown elapses → half-open admits exactly one probe.
	clk.advance(101 * time.Millisecond)
	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("want half-open probe, got ok=%v probe=%v", ok, probe)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("second request during probe should short-circuit")
	}

	// Abandoned probe (context error) releases the slot without deciding.
	b.release(tierAbandoned, true)
	if snap, _, _, _ := b.snapshot(TierBitwise); snap.State != BreakerHalfOpen {
		t.Fatalf("abandoned probe moved state to %v", snap.State)
	}

	// Failed probe re-opens for a fresh cooldown.
	_, probe = b.allow()
	b.release(tierFailed, probe)
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker should re-open after failed probe")
	}

	// Successful probe closes.
	clk.advance(101 * time.Millisecond)
	_, probe = b.allow()
	b.release(tierSucceeded, probe)
	snap, trips, shorts, probes := b.snapshot(TierBitwise)
	if snap.State != BreakerClosed {
		t.Fatalf("after successful probe: %+v", snap)
	}
	if trips != 2 || shorts != 3 || probes != 3 {
		t.Fatalf("counters trips=%d shorts=%d probes=%d, want 2/3/3", trips, shorts, probes)
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *breaker
	if ok, probe := b.allow(); !ok || probe {
		t.Fatalf("nil breaker allow() = %v, %v", ok, probe)
	}
	b.release(tierFailed, false) // must not panic
	if snap, _, _, _ := b.snapshot(TierCPU); snap.State != BreakerClosed {
		t.Fatalf("nil snapshot: %+v", snap)
	}
}

// TestBreakerTripsAndRecovers is the acceptance scenario: repeated bitwise
// failures trip the breaker open so later batches skip the GPU tiers
// entirely, and once the faults stop a half-open probe closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	s := New(Config{
		Seed:            5,
		Workers:         1,
		MaxAttempts:     1,
		BreakerFailures: 2,
		BreakerCooldown: 20 * time.Millisecond,
		BaseBackoff:     10 * time.Microsecond,
		MaxBackoff:      50 * time.Microsecond,
		// Every kernel launch fails: both GPU tiers are down.
		Faults: cudasim.FaultConfig{Seed: 5, Launch: 1},
	})
	defer s.Close()
	pairs := plantedPairs(32, 16, 32, 77)
	want := refScores(pairs)

	// Two batches of launch failures trip both GPU breakers (threshold 2,
	// one attempt per tier per batch). Every batch still gets exact scores
	// from the CPU rung.
	for i := 0; i < 2; i++ {
		res, err := s.Align(context.Background(), pairs)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		assertScores(t, res.Scores, want)
		if res.Report.Tier != TierCPU {
			t.Fatalf("batch %d served by %v, want cpu", i, res.Report.Tier)
		}
	}

	// The next batch must short-circuit: no GPU attempts at all.
	res, err := s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, want)
	if !slices.Contains(res.Report.Skips, TierBitwise) || !slices.Contains(res.Report.Skips, TierWordwise) {
		t.Fatalf("open breakers did not skip GPU tiers: skips=%v", res.Report.Skips)
	}
	if len(res.Report.Attempts) != 1 || res.Report.Attempts[0].Tier != TierCPU {
		t.Fatalf("short-circuited batch still attempted GPU tiers: %+v", res.Report.Attempts)
	}
	st := s.Stats()
	if st.BreakerTrips < 2 || st.BreakerShortCircuits < 2 {
		t.Fatalf("breaker counters: %+v", st)
	}
	for _, br := range st.Breakers {
		if br.State != BreakerOpen {
			t.Fatalf("breaker %v state %v, want open", br.Tier, br.State)
		}
	}

	// Faults stop; after the cooldown a half-open probe runs the bitwise
	// tier again, succeeds, and closes the breaker.
	s.SetFaults(cudasim.FaultConfig{})
	time.Sleep(25 * time.Millisecond)
	res, err = s.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, res.Scores, want)
	if res.Report.Tier != TierBitwise {
		t.Fatalf("recovered batch served by %v, want bitwise", res.Report.Tier)
	}
	st = s.Stats()
	if st.BreakerProbes == 0 {
		t.Fatalf("no half-open probes recorded: %+v", st)
	}
	for _, br := range st.Breakers {
		if br.Tier == TierBitwise && br.State != BreakerClosed {
			t.Fatalf("bitwise breaker state %v after recovery, want closed", br.State)
		}
	}
	if res.Report.Elapsed <= 0 {
		t.Fatalf("Report.Elapsed = %v, want > 0", res.Report.Elapsed)
	}
}

func TestBreakerDisabled(t *testing.T) {
	s := New(Config{
		Seed:            6,
		MaxAttempts:     1,
		BreakerFailures: -1, // disabled
		BaseBackoff:     10 * time.Microsecond,
		MaxBackoff:      50 * time.Microsecond,
		Faults:          cudasim.FaultConfig{Seed: 6, Launch: 1},
	})
	defer s.Close()
	pairs := plantedPairs(32, 16, 32, 78)
	for i := 0; i < 4; i++ {
		res, err := s.Align(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Report.Skips) != 0 {
			t.Fatalf("disabled breaker skipped tiers: %v", res.Report.Skips)
		}
	}
	if st := s.Stats(); st.BreakerTrips != 0 || st.BreakerShortCircuits != 0 {
		t.Fatalf("disabled breaker counted activity: %+v", st)
	}
}
