package alignsvc

// This file is the pluggable-backend seam: every engine the service can
// serve scores with — the two simulated GPU pipelines, the native striped
// CPU engine and the scalar reference — sits behind the Backend interface,
// so the degradation ladder, the fleet sharding, the retry machinery, the
// metrics and the benchmarks all select engines through one seam instead of
// hard-coded tier switches.

import (
	"context"
	"fmt"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/pipeline"
	"repro/internal/striped"
	"repro/internal/swa"
)

// Backend names, as accepted by Config.Backend, AlignBackend and the
// swaserver -backend flag / X-SWA-Backend header.
const (
	// BackendBitwiseSim serves through the paper's bitwise BPBC pipeline on
	// the simulated GPU, degrading wordwise-sim → cpu-ref on failure.
	BackendBitwiseSim = "bitwise-sim"
	// BackendWordwiseSim serves through the conventional wordwise pipeline
	// on the simulated GPU, degrading to cpu-ref on failure.
	BackendWordwiseSim = "wordwise-sim"
	// BackendStriped serves with the native striped CPU engine
	// (internal/striped), degrading to cpu-ref on failure. This is the
	// wall-clock serving path.
	BackendStriped = "striped"
	// BackendCPURef serves with the scalar swa.Score reference directly.
	BackendCPURef = "cpu-ref"
)

// BackendNames lists every backend name, primary serving path first.
func BackendNames() []string {
	return []string{BackendStriped, BackendBitwiseSim, BackendWordwiseSim, BackendCPURef}
}

// backendTier maps a backend name to the ladder rung that serves it.
func backendTier(name string) (Tier, error) {
	switch name {
	case BackendBitwiseSim, "":
		return TierBitwise, nil
	case BackendWordwiseSim:
		return TierWordwise, nil
	case BackendStriped:
		return TierStriped, nil
	case BackendCPURef:
		return TierCPU, nil
	}
	return 0, fmt.Errorf("alignsvc: unknown backend %q", name)
}

// Capabilities describes what a backend guarantees.
type Capabilities struct {
	// Exact backends produce byte-exact scores by construction; the service
	// skips sampling validation for them (there is no wrong answer to
	// catch, only errors).
	Exact bool
	// Simulated backends run on the simulated GPU stack: fault injection,
	// device specs and the fleet scheduler apply to them.
	Simulated bool
}

// BatchOpts carries per-attempt context into a backend.
type BatchOpts struct {
	// Seq is the service-wide batch sequence number, Attempt the attempt
	// ordinal within the batch; together they derive the deterministic
	// fault stream for simulated backends.
	Seq, Attempt uint64
}

// BatchStats is what one backend attempt reports back.
type BatchStats struct {
	// Faults counts the faults injected during the attempt (simulated
	// backends only).
	Faults cudasim.FaultCounts
}

// Backend is one scoring engine behind the service. AlignBatch scores every
// pair or fails as a unit; scores must be exact when err is nil unless the
// service's validation (for non-Exact backends) is expected to catch
// device-induced corruption.
type Backend interface {
	Name() string
	Capabilities() Capabilities
	AlignBatch(ctx context.Context, pairs []dna.Pair, opts BatchOpts) ([]int, BatchStats, error)
}

// NewBackend constructs a standalone backend: no worker pool, no retry
// ladder, no fleet, no fault injection — just the engine. The benchmark
// harness and the cross-backend exactness oracle use it to measure and
// compare engines in isolation. cfg supplies the scoring scheme (and, for
// the simulated backends, the device model); lanes selects the bitwise
// width as in Config.Lanes.
func NewBackend(name string, cfg pipeline.Config, lanes int) (Backend, error) {
	if lanes == 0 {
		lanes = 32
	}
	scoring := func() swa.Scoring {
		if cfg.Scoring == (swa.Scoring{}) {
			return swa.PaperScoring
		}
		return cfg.Scoring
	}
	switch name {
	case BackendBitwiseSim, BackendWordwiseSim:
		tier := TierBitwise
		if name == BackendWordwiseSim {
			tier = TierWordwise
		}
		return &simBackend{name: name, tier: tier, cfg: cfg, lanes: lanes}, nil
	case BackendStriped:
		return &stripedBackend{eng: striped.New(striped.Config{}), scoring: scoring}, nil
	case BackendCPURef:
		return &cpuBackend{scoring: scoring}, nil
	}
	return nil, fmt.Errorf("alignsvc: unknown backend %q", name)
}

// runPipeline invokes the simulated pipeline for a tier with a fully
// prepared config.
func runPipeline(ctx context.Context, tier Tier, pairs []dna.Pair, cfg pipeline.Config, lanes int) (*pipeline.Result, error) {
	switch tier {
	case TierBitwise:
		if lanes == 64 {
			return pipeline.RunBitwise[uint64](ctx, pairs, cfg)
		}
		return pipeline.RunBitwise[uint32](ctx, pairs, cfg)
	case TierWordwise:
		return pipeline.RunWordwise(ctx, pairs, cfg)
	}
	return nil, fmt.Errorf("alignsvc: no simulated pipeline for tier %v", tier)
}

// simBackend serves through a simulated GPU pipeline. Attached to a service
// (svc != nil) it inherits the service's fleet, fault injection and metrics
// registry; standalone it runs the bare pipeline.
type simBackend struct {
	name  string
	tier  Tier
	cfg   pipeline.Config
	lanes int
	svc   *Service // nil in standalone mode
}

func (b *simBackend) Name() string { return b.name }

func (b *simBackend) Capabilities() Capabilities {
	return Capabilities{Exact: false, Simulated: true}
}

func (b *simBackend) AlignBatch(ctx context.Context, pairs []dna.Pair, opts BatchOpts) ([]int, BatchStats, error) {
	if b.svc == nil {
		r, err := runPipeline(ctx, b.tier, pairs, b.cfg, b.lanes)
		if err != nil {
			return nil, BatchStats{}, err
		}
		return r.Scores, BatchStats{}, nil
	}
	s := b.svc
	if s.cfg.Fleet != nil {
		scores, counts, err := s.runTierFleet(ctx, b.tier, pairs)
		return scores, BatchStats{Faults: counts}, err
	}
	cfg := s.cfg.Pipeline
	if cfg.Metrics == nil {
		// Hand the pipelines the service registry so one scrape sees the
		// whole stack.
		cfg.Metrics = s.obs
	}
	fcfg := *s.faults.Load()
	// Derive an independent deterministic fault stream per attempt so a
	// retry does not replay the exact faults that just killed the batch.
	fcfg.Seed ^= (opts.Seq*0x9e3779b97f4a7c15 + opts.Attempt) | 1
	inj := cudasim.NewFaultInjector(fcfg)
	cfg.Faults = inj
	r, err := runPipeline(ctx, b.tier, pairs, cfg, s.cfg.Lanes)
	st := BatchStats{Faults: inj.Counts()}
	if err != nil {
		return nil, st, err
	}
	return r.Scores, st, nil
}

// stripedBackend serves with the native striped CPU engine. It is exact by
// construction (overflowed narrow passes are always re-scored wider, down
// to the scalar reference), so the service skips sampling validation.
type stripedBackend struct {
	eng     *striped.Engine
	scoring func() swa.Scoring
}

func (b *stripedBackend) Name() string { return BackendStriped }

func (b *stripedBackend) Capabilities() Capabilities {
	return Capabilities{Exact: true}
}

func (b *stripedBackend) AlignBatch(ctx context.Context, pairs []dna.Pair, _ BatchOpts) ([]int, BatchStats, error) {
	scores, _, err := b.eng.ScoreBatch(ctx, pairs, b.scoring())
	return scores, BatchStats{}, err
}

// cpuPollCells bounds how many alignment cells the scalar reference scores
// between context polls: a batch of a few huge pairs (or very many small
// ones) aborts promptly on cancellation instead of running to completion.
const cpuPollCells = 1 << 16

// cpuBackend is the scalar swa.Score reference: the last rung of every
// ladder, exact and fault-free, failing only on cancellation.
type cpuBackend struct {
	scoring func() swa.Scoring
}

func (b *cpuBackend) Name() string { return BackendCPURef }

func (b *cpuBackend) Capabilities() Capabilities {
	return Capabilities{Exact: true}
}

func (b *cpuBackend) AlignBatch(ctx context.Context, pairs []dna.Pair, _ BatchOpts) ([]int, BatchStats, error) {
	scores, err := runCPURef(ctx, pairs, b.scoring())
	return scores, BatchStats{}, err
}

// runCPURef scores pairs with the scalar reference, polling the context
// every cpuPollCells cells (not a fixed pair stride: pair sizes vary by
// orders of magnitude, and a stride counted in pairs lets a handful of
// huge pairs run for seconds after cancellation). A mid-batch abort
// returns an *AbortError recording how many pairs were fully scored.
func runCPURef(ctx context.Context, pairs []dna.Pair, sc swa.Scoring) ([]int, error) {
	scores := make([]int, len(pairs))
	cells := cpuPollCells // poll before the first pair too
	for i, p := range pairs {
		if cells >= cpuPollCells {
			if err := ctx.Err(); err != nil {
				return nil, &AbortError{Scored: i, Err: err}
			}
			cells = 0
		}
		scores[i] = swa.Score(p.X, p.Y, sc)
		cells += len(p.X) * len(p.Y)
	}
	return scores, nil
}

// AbortError reports a batch abandoned mid-computation because its context
// was cancelled, recording how far the computation got. It unwraps to the
// context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both see through it.
type AbortError struct {
	// Scored is how many leading pairs had exact scores when the batch
	// aborted (the scores themselves are discarded — the batch fails as a
	// unit).
	Scored int
	// Err is the underlying context error.
	Err error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("alignsvc: batch aborted after %d pairs: %v", e.Scored, e.Err)
}

func (e *AbortError) Unwrap() error { return e.Err }
