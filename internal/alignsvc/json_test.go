package alignsvc

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cudasim"
)

func TestReportJSONRoundTrip(t *testing.T) {
	in := Report{
		Tier: TierWordwise,
		Attempts: []Attempt{
			{Tier: TierBitwise, Err: "boom", Faults: cudasim.FaultCounts{HtoD: 1, BitFlips: 2}},
			{Tier: TierBitwise, Err: "validation", ValidationFailed: true},
			{Tier: TierWordwise},
		},
		Retries:        1,
		Fallbacks:      1,
		Skips:          []Tier{TierBitwise},
		Faults:         cudasim.FaultCounts{HtoD: 1, BitFlips: 2},
		Validated:      7,
		Elapsed:        1500 * time.Microsecond,
		CacheHits:      9,
		CacheCoalesced: 3,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"tier":"wordwise"`, `"elapsed_ms":1.5`, `"bit_flips":2`,
		`"skips":["bitwise"]`, `"validation_failed":true`,
		`"cache_hits":9`, `"cache_coalesced":3`,
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("marshalled report missing %s:\n%s", want, b)
		}
	}
	var out Report
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed report:\n in: %+v\nout: %+v", in, out)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	in := Stats{
		Batches: 10, BatchesFailed: 1, Retries: 4, Fallbacks: 2,
		CPUFallbacks: 1, DeadlineHits: 3, Cancellations: 2,
		PanicsRecovered: 1, FaultsInjected: 42,
		BreakerTrips: 2, BreakerShortCircuits: 5, BreakerProbes: 3,
		Breakers: []BreakerSnapshot{
			{Tier: TierBitwise, State: BreakerOpen, Failures: 0},
			{Tier: TierWordwise, State: BreakerHalfOpen, Failures: 1},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"batches":10`, `"deadline_hits":3`, `"breaker_trips":2`,
		`"state":"open"`, `"state":"half-open"`, `"consecutive_failures":1`,
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("marshalled stats missing %s:\n%s", want, b)
		}
	}
	var out Stats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed stats:\n in: %+v\nout: %+v", in, out)
	}
}

func TestTierJSONRejectsUnknown(t *testing.T) {
	var tier Tier
	if err := json.Unmarshal([]byte(`"quantum"`), &tier); err == nil {
		t.Fatal("unknown tier name unmarshalled without error")
	}
	var st BreakerState
	if err := json.Unmarshal([]byte(`"melted"`), &st); err == nil {
		t.Fatal("unknown breaker state unmarshalled without error")
	}
}
