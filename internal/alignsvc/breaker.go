package alignsvc

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed lets every request through; consecutive tier failures
	// are counted and trip the breaker open at the configured threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits the tier: the ladder skips it without
	// paying the retry/backoff cost, until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe request try the tier; success
	// closes the breaker, failure re-opens it for another cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseBreakerState is the inverse of BreakerState.String.
func ParseBreakerState(s string) (BreakerState, error) {
	switch s {
	case "closed":
		return BreakerClosed, nil
	case "open":
		return BreakerOpen, nil
	case "half-open":
		return BreakerHalfOpen, nil
	}
	return 0, fmt.Errorf("alignsvc: unknown breaker state %q", s)
}

// BreakerSnapshot is the exported view of one tier's breaker, published
// through Stats (and from there /statsz).
type BreakerSnapshot struct {
	Tier     Tier
	State    BreakerState
	Failures int // consecutive tier failures while closed
}

// tierOutcome is what a tier execution reports back to its breaker.
type tierOutcome int

const (
	tierSucceeded tierOutcome = iota
	tierFailed
	// tierAbandoned means the attempt ended on a context error: the tier's
	// health is unknown, so the outcome must not move the breaker, but a
	// half-open probe slot has to be released.
	tierAbandoned
)

// breaker is one tier's circuit breaker. A nil *breaker is valid and always
// allows (used for the CPU tier, which cannot be tripped).
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open duration before the half-open probe
	now       func() time.Time

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	trips, shortCircuits, probes int64

	// onTransition, when set, observes every state change (under the
	// breaker's lock, so it must not call back into the breaker). The
	// service uses it to export transition counters and a state gauge.
	onTransition func(to BreakerState)
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// setState moves the breaker to a new state, notifying the transition hook.
// Callers hold b.mu.
func (b *breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// allow decides whether the tier may run now. probe is true when the caller
// holds the single half-open probe slot and must report back via release.
func (b *breaker) allow() (allowed, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shortCircuits++
			return false, false
		}
		b.setState(BreakerHalfOpen)
		b.probing = false
		fallthrough
	default: // BreakerHalfOpen
		if b.probing {
			b.shortCircuits++
			return false, false
		}
		b.probing = true
		b.probes++
		return true, true
	}
}

// release reports the outcome of an allowed execution. probe must be the
// value allow returned.
func (b *breaker) release(out tierOutcome, probe bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		switch out {
		case tierSucceeded:
			b.setState(BreakerClosed)
			b.failures = 0
		case tierFailed:
			b.setState(BreakerOpen)
			b.openedAt = b.now()
			b.trips++
		}
		return
	}
	// Closed-state execution. (If the breaker tripped concurrently the
	// bookkeeping below is still sound: successes reset, failures count.)
	switch out {
	case tierSucceeded:
		b.failures = 0
	case tierFailed:
		b.failures++
		if b.state == BreakerClosed && b.failures >= b.threshold {
			b.setState(BreakerOpen)
			b.openedAt = b.now()
			b.trips++
		}
	}
}

// snapshot returns the exported view plus the breaker's counters.
func (b *breaker) snapshot(tier Tier) (BreakerSnapshot, int64, int64, int64) {
	if b == nil {
		return BreakerSnapshot{Tier: tier, State: BreakerClosed}, 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{Tier: tier, State: b.state, Failures: b.failures},
		b.trips, b.shortCircuits, b.probes
}
