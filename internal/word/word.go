// Package word defines the lane-word abstraction used throughout the BPBC
// (Bitwise Parallel Bulk Computation) library.
//
// A "word" is the machine unit whose bits carry one bit each of W independent
// problem instances ("lanes"): bit k of a word belongs to instance k. All
// bit-sliced arithmetic, transposes and kernels are generic over the two lane
// widths the paper evaluates, uint32 (32 lanes) and uint64 (64 lanes).
package word

import "math/bits"

// Word is the constraint satisfied by the two lane-word types the paper
// evaluates: 32-bit and 64-bit unsigned integers.
type Word interface {
	~uint32 | ~uint64
}

// Lanes reports the number of lanes (bits) carried by the word type W.
func Lanes[W Word]() int {
	var w W
	return bitsOf(w)
}

func bitsOf[W Word](w W) int {
	// ^W(0) has all lanes set; counting them yields the width.
	return bits.OnesCount64(uint64(^W(0)))
}

// Ones returns the all-ones word: every lane set.
func Ones[W Word]() W {
	return ^W(0)
}

// Bit returns a word with only lane k set. It panics if k is out of range,
// matching slice-indexing semantics.
func Bit[W Word](k int) W {
	if k < 0 || k >= Lanes[W]() {
		panic("word: lane index out of range")
	}
	return W(1) << uint(k)
}

// Broadcast returns the all-ones word when b is true and zero otherwise.
// It is how scalar constants enter bit-sliced arithmetic: bit i of a scalar
// constant becomes Broadcast(bit i) in plane i.
func Broadcast[W Word](b bool) W {
	if b {
		return Ones[W]()
	}
	return 0
}

// Lane reports whether lane k of w is set.
func Lane[W Word](w W, k int) bool {
	return w>>uint(k)&1 != 0
}

// SetLane returns w with lane k forced to v.
func SetLane[W Word](w W, k int, v bool) W {
	m := W(1) << uint(k)
	if v {
		return w | m
	}
	return w &^ m
}

// LowMask returns a word with the n lowest lanes set. n may be 0..Lanes.
func LowMask[W Word](n int) W {
	l := Lanes[W]()
	if n < 0 || n > l {
		panic("word: LowMask width out of range")
	}
	if n == l {
		return Ones[W]()
	}
	return W(1)<<uint(n) - 1
}

// HalfMask returns the mask used at transpose step distance d: within every
// 2d-lane period the low d lanes are set (e.g. d=16 on uint32 gives
// 0x0000FFFF, d=8 gives 0x00FF00FF, ... d=1 gives 0x55555555).
func HalfMask[W Word](d int) W {
	l := Lanes[W]()
	if d <= 0 || d > l/2 || d&(d-1) != 0 {
		panic("word: HalfMask distance must be a power of two in [1, Lanes/2]")
	}
	block := W(1)<<uint(d) - 1
	var m W
	for off := 0; off < l; off += 2 * d {
		m |= block << uint(off)
	}
	return m
}

// PopCount returns the number of set lanes in w.
func PopCount[W Word](w W) int {
	return bits.OnesCount64(uint64(w))
}
