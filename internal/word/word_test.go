package word

import (
	"testing"
	"testing/quick"
)

func TestLanes(t *testing.T) {
	if got := Lanes[uint32](); got != 32 {
		t.Errorf("Lanes[uint32] = %d, want 32", got)
	}
	if got := Lanes[uint64](); got != 64 {
		t.Errorf("Lanes[uint64] = %d, want 64", got)
	}
}

func TestOnes(t *testing.T) {
	if Ones[uint32]() != 0xFFFFFFFF {
		t.Error("Ones[uint32] wrong")
	}
	if Ones[uint64]() != 0xFFFFFFFFFFFFFFFF {
		t.Error("Ones[uint64] wrong")
	}
}

func TestBit(t *testing.T) {
	for k := 0; k < 32; k++ {
		if Bit[uint32](k) != uint32(1)<<k {
			t.Fatalf("Bit[uint32](%d) wrong", k)
		}
	}
	for k := 0; k < 64; k++ {
		if Bit[uint64](k) != uint64(1)<<k {
			t.Fatalf("Bit[uint64](%d) wrong", k)
		}
	}
}

func TestBitPanics(t *testing.T) {
	for _, k := range []int{-1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit[uint32](%d) did not panic", k)
				}
			}()
			Bit[uint32](k)
		}()
	}
}

func TestBroadcast(t *testing.T) {
	if Broadcast[uint32](true) != 0xFFFFFFFF || Broadcast[uint32](false) != 0 {
		t.Error("Broadcast[uint32] wrong")
	}
	if Broadcast[uint64](true) != ^uint64(0) || Broadcast[uint64](false) != 0 {
		t.Error("Broadcast[uint64] wrong")
	}
}

func TestLaneSetLane(t *testing.T) {
	var w uint32
	for k := 0; k < 32; k++ {
		w = SetLane(w, k, k%3 == 0)
	}
	for k := 0; k < 32; k++ {
		if Lane(w, k) != (k%3 == 0) {
			t.Fatalf("lane %d mismatch", k)
		}
	}
}

func TestSetLaneRoundTrip(t *testing.T) {
	f := func(w uint64, k uint8, v bool) bool {
		kk := int(k % 64)
		return Lane(SetLane(w, kk, v), kk) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetLaneClears(t *testing.T) {
	w := Ones[uint32]()
	w = SetLane(w, 7, false)
	if Lane(w, 7) {
		t.Error("SetLane(false) did not clear lane")
	}
	if PopCount(w) != 31 {
		t.Errorf("PopCount = %d, want 31", PopCount(w))
	}
}

func TestLowMask(t *testing.T) {
	if LowMask[uint32](0) != 0 {
		t.Error("LowMask(0) != 0")
	}
	if LowMask[uint32](32) != 0xFFFFFFFF {
		t.Error("LowMask(32) wrong")
	}
	if LowMask[uint32](5) != 0x1F {
		t.Error("LowMask(5) wrong")
	}
	if LowMask[uint64](64) != ^uint64(0) {
		t.Error("LowMask[uint64](64) wrong")
	}
	if LowMask[uint64](33) != (uint64(1)<<33)-1 {
		t.Error("LowMask[uint64](33) wrong")
	}
}

func TestHalfMask32(t *testing.T) {
	want := map[int]uint32{
		16: 0x0000FFFF,
		8:  0x00FF00FF,
		4:  0x0F0F0F0F,
		2:  0x33333333,
		1:  0x55555555,
	}
	for d, m := range want {
		if got := HalfMask[uint32](d); got != m {
			t.Errorf("HalfMask[uint32](%d) = %#x, want %#x", d, got, m)
		}
	}
}

func TestHalfMask64(t *testing.T) {
	want := map[int]uint64{
		32: 0x00000000FFFFFFFF,
		16: 0x0000FFFF0000FFFF,
		8:  0x00FF00FF00FF00FF,
		4:  0x0F0F0F0F0F0F0F0F,
		2:  0x3333333333333333,
		1:  0x5555555555555555,
	}
	for d, m := range want {
		if got := HalfMask[uint64](d); got != m {
			t.Errorf("HalfMask[uint64](%d) = %#x, want %#x", d, got, m)
		}
	}
}

func TestHalfMaskPanics(t *testing.T) {
	for _, d := range []int{0, 3, 32, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HalfMask[uint32](%d) did not panic", d)
				}
			}()
			HalfMask[uint32](d)
		}()
	}
}

func TestHalfMaskComplement(t *testing.T) {
	// b | b<<d must cover the full word: every bit is in exactly one half.
	for _, d := range []int{1, 2, 4, 8, 16} {
		b := HalfMask[uint32](d)
		if b|(b<<uint(d)) != 0xFFFFFFFF {
			t.Errorf("d=%d: halves do not cover word", d)
		}
		if b&(b<<uint(d)) != 0 {
			t.Errorf("d=%d: halves overlap", d)
		}
	}
}
