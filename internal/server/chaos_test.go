package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/swa"
)

// chaosFaults is the storm the soak runs under: every fault class at ≥ 10%,
// including silent bit flips that only full score validation can catch.
var chaosFaults = cudasim.FaultConfig{
	Seed:    20170529,
	HtoD:    0.15,
	DtoH:    0.15,
	Alloc:   0.10,
	Launch:  0.12,
	BitFlip: 0.15,
}

// chaosBatch returns the deterministic batch and reference scores for one
// (client, iteration) slot.
func chaosBatch(client, iter int) ([]dna.Pair, []int) {
	rng := rand.New(rand.NewPCG(uint64(1000*client+iter), 0xc4a05))
	pairs := dna.RandomPairs(rng, 16, 12, 24)
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return pairs, want
}

// TestChaosSoak is the no-hang/no-panic/no-wrong-score guarantee, enforced
// end to end: concurrent clients hammer a server whose simulated device
// fails transfers, allocations and launches and silently flips bits, mixed
// with hostile requests; every single response must be either an exact
// score set or a clean, typed error with the right HTTP status. Afterwards
// the faults stop and the circuit breakers must let the bitwise tier come
// back. Runs in CI under -race with a wall-clock timeout.
func TestChaosSoak(t *testing.T) {
	svc := alignsvc.New(alignsvc.Config{
		Seed:            99,
		Workers:         4,
		Queue:           8,
		MaxAttempts:     2,
		BaseBackoff:     100 * time.Microsecond,
		MaxBackoff:      500 * time.Microsecond,
		ValidateFrac:    1, // catch every injected bit flip
		BreakerFailures: 3,
		BreakerCooldown: 50 * time.Millisecond,
		Faults:          chaosFaults,
	})
	defer svc.Close()
	srv, err := New(Config{
		Service:     svc,
		MaxInFlight: 4,
		MaxQueued:   4,
		MaxPairs:    64,
		MaxSeqLen:   256,
		RetryAfter:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The no-hang guarantee: every request must answer within this client
	// timeout or the test fails.
	client := &http.Client{Timeout: 30 * time.Second}
	clients, iters := 8, 25
	if testing.Short() {
		iters = 6
	}

	type tally struct {
		ok, shed, errored, hostile int
	}
	var mu sync.Mutex
	var total tally
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local tally
			for i := 0; i < iters; i++ {
				// Every 5th iteration is hostile: malformed or oversized
				// input that must be rejected with a typed 4xx, never
				// crashing or wedging the server.
				if i%5 == 4 {
					local.hostile++
					if !sendHostile(t, client, ts.URL, c, i) {
						return
					}
					continue
				}
				pairs, want := chaosBatch(c, i)
				status, raw, err := postWith(client, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
				if err != nil {
					t.Errorf("client %d iter %d: transport: %v", c, i, err)
					return
				}
				switch status {
				case http.StatusOK:
					var res AlignResponse
					if err := json.Unmarshal(raw, &res); err != nil {
						t.Errorf("client %d iter %d: bad 200 body: %v", c, i, err)
						return
					}
					for k := range want {
						if res.Scores[k] != want[k] {
							t.Errorf("client %d iter %d: WRONG SCORE [%d] = %d, want %d (report %s)",
								c, i, k, res.Scores[k], want[k], res.Report)
							return
						}
					}
					local.ok++
				case http.StatusTooManyRequests:
					var e ErrorResponse
					if err := json.Unmarshal(raw, &e); err != nil || e.Code != CodeShed {
						t.Errorf("client %d iter %d: untyped 429: %s", c, i, raw)
						return
					}
					local.shed++
				case http.StatusGatewayTimeout, http.StatusServiceUnavailable, http.StatusInternalServerError:
					var e ErrorResponse
					if err := json.Unmarshal(raw, &e); err != nil || e.Code == "" {
						t.Errorf("client %d iter %d: untyped %d: %s", c, i, status, raw)
						return
					}
					local.errored++
				default:
					t.Errorf("client %d iter %d: unexpected status %d: %s", c, i, status, raw)
					return
				}
			}
			mu.Lock()
			total.ok += local.ok
			total.shed += local.shed
			total.errored += local.errored
			total.hostile += local.hostile
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if total.ok == 0 {
		t.Fatal("chaos soak produced zero successful responses")
	}
	st := svc.Stats()
	if st.FaultsInjected == 0 {
		t.Fatalf("no faults injected during the storm: %+v", st)
	}
	t.Logf("storm: %+v; service stats: retries=%d fallbacks=%d validated-batches=%d trips=%d shorts=%d",
		total, st.Retries, st.Fallbacks, st.Batches, st.BreakerTrips, st.BreakerShortCircuits)

	// Phase 2: the faults stop. Breakers (if tripped) must recover via
	// half-open probes, and the bitwise tier must serve again.
	svc.SetFaults(cudasim.FaultConfig{})
	pairs, want := chaosBatch(0, 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(60 * time.Millisecond) // let a breaker cooldown elapse
		status, raw, err := postWith(client, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("clean-phase request failed: %d %s", status, raw)
		}
		var res AlignResponse
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if res.Scores[k] != want[k] {
				t.Fatalf("clean-phase wrong score [%d] = %d, want %d", k, res.Scores[k], want[k])
			}
		}
		if res.Report.Tier == alignsvc.TierBitwise {
			break // recovered
		}
		if time.Now().After(deadline) {
			t.Fatalf("bitwise tier never recovered; last report %s, stats %+v", res.Report, svc.Stats())
		}
	}

	// Phase 3: drain under load must terminate cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.BeginDrain()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
}

// sendHostile throws one malformed/oversized request and verifies the typed
// rejection. Returns false if the test should stop.
func sendHostile(t *testing.T, client *http.Client, url string, c, i int) bool {
	kind := (c + i) % 3
	var body any
	wantStatus, wantCode := http.StatusBadRequest, CodeBadRequest
	switch kind {
	case 0:
		body = `{"pairs": [{`
	case 1:
		body = AlignRequest{Pairs: []PairJSON{{X: "ACGZ", Y: "ACGTACGT"}}}
	default:
		out := make([]PairJSON, 65) // over the 64-pair cap
		for k := range out {
			out[k] = PairJSON{X: "ACGT", Y: "ACGTACGT"}
		}
		body = AlignRequest{Pairs: out}
		wantStatus, wantCode = http.StatusRequestEntityTooLarge, CodeTooLarge
	}
	status, raw, err := postWith(client, url, body)
	if err != nil {
		t.Errorf("hostile client %d iter %d: transport: %v", c, i, err)
		return false
	}
	if status != wantStatus {
		t.Errorf("hostile client %d iter %d: status %d, want %d (%s)", c, i, status, wantStatus, raw)
		return false
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Code != wantCode {
		t.Errorf("hostile client %d iter %d: untyped rejection: %s", c, i, raw)
		return false
	}
	return true
}

// postWith is tryPostAlign with a caller-supplied (timeout-bearing) client.
func postWith(client *http.Client, url string, body any) (int, []byte, error) {
	var buf []byte
	switch b := body.(type) {
	case string:
		buf = []byte(b)
	default:
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
	}
	resp, err := client.Post(url+"/align", "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}
