// HTTP-level tests of the corpus-search layer: POST /search request
// validation and exactness against the in-process Searcher, the search
// job kind on POST /jobs with its hits result body, the /statsz search
// section, and prefilter-cell quota accounting.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/pipeline"
	"repro/internal/tenant"
)

// newServerCorpus builds a small deterministic corpus with planted
// homologs of the returned query, mounted as "ref" in a fresh registry.
func newServerCorpus(t *testing.T, seqs int) (*corpus.Registry, dna.Seq) {
	t.Helper()
	rng := rand.New(rand.NewPCG(91, 17))
	q := dna.RandSeq(rng, 48)
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
	b, err := corpus.NewBuilder(t.TempDir(), corpus.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seqs; i++ {
		y := dna.RandSeq(rng, 96)
		if i%40 == 0 {
			cp := mut.Mutate(rng, q)
			if len(cp) > 96 {
				cp = cp[:96]
			}
			copy(y[rng.IntN(96-len(cp)+1):], cp)
		}
		if err := b.Add(fmt.Sprintf("ref-%05d", i), y); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	be, err := alignsvc.NewBackend(alignsvc.BackendStriped, pipeline.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := corpus.NewRegistry()
	if err := reg.Add("ref", c, corpus.NewSearcher(c, be, nil)); err != nil {
		t.Fatal(err)
	}
	return reg, q
}

func TestSearchEndpoint(t *testing.T) {
	corpora, q := newServerCorpus(t, 800)
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5, Workers: 2}, Config{Corpora: corpora})

	var got SearchResponse
	resp := doJSON(t, http.MethodPost, ts.URL+"/search",
		SearchRequest{Query: q.String(), TopK: 7}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Corpus != "ref" || len(got.Hits) != 7 {
		t.Fatalf("response: corpus=%q hits=%d", got.Corpus, len(got.Hits))
	}

	// The HTTP answer must match an in-process Search with the same params.
	h, _ := corpora.Get("ref")
	sync, err := h.Searcher.Search(context.Background(), q, corpus.Params{TopK: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Hits, sync.Hits) {
		t.Fatalf("HTTP hits %v != in-process %v", got.Hits, sync.Hits)
	}
	if got.Stats.Seqs != 800 || got.Stats.Candidates == 0 || got.Stats.Cells == 0 {
		t.Fatalf("stats funnel malformed: %+v", got.Stats)
	}

	// /statsz gains a search section with the corpus inventory.
	var statsz StatszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &statsz)
	if statsz.Search == nil {
		t.Fatal("/statsz has no search section")
	}
	if statsz.Search.Requests != 1 || statsz.Search.Completed != 1 ||
		statsz.Search.ScoredCells == 0 {
		t.Fatalf("search counters: %+v", statsz.Search)
	}
	if len(statsz.Search.Corpora) != 1 {
		t.Fatalf("corpus inventory: %+v", statsz.Search.Corpora)
	}
	inv := statsz.Search.Corpora[0]
	if inv.Name != "ref" || inv.Seqs != 800 || inv.K != h.Corpus.K() ||
		inv.Fingerprint != h.Corpus.Fingerprint() || inv.Backend != alignsvc.BackendStriped {
		t.Fatalf("corpus inventory entry: %+v", inv)
	}
}

func TestSearchEndpointRejections(t *testing.T) {
	corpora, q := newServerCorpus(t, 100)
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5, Workers: 2}, Config{Corpora: corpora})

	check := func(method string, body any, wantStatus int, wantCode string) {
		t.Helper()
		var errResp ErrorResponse
		req, _ := http.NewRequest(method, ts.URL+"/search", nil)
		var resp *http.Response
		if body != nil {
			resp = doJSON(t, method, ts.URL+"/search", body, &errResp)
		} else {
			var err error
			resp, err = http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %v: status %d want %d (%+v)", method, body, resp.StatusCode, wantStatus, errResp)
		}
		if wantCode != "" && errResp.Code != wantCode {
			t.Fatalf("%s %v: code %q want %q", method, body, errResp.Code, wantCode)
		}
	}

	check(http.MethodGet, nil, http.StatusMethodNotAllowed, "")
	check(http.MethodPost, SearchRequest{Corpus: "nope", Query: q.String()},
		http.StatusNotFound, CodeNoCorpus)
	check(http.MethodPost, SearchRequest{Query: ""}, http.StatusBadRequest, CodeBadRequest)
	check(http.MethodPost, SearchRequest{Query: "NOTDNA!"}, http.StatusBadRequest, CodeBadRequest)
	check(http.MethodPost, "{bad json", http.StatusBadRequest, CodeBadRequest)

	// A server with no corpora has no /search route at all.
	_, ts2 := newTestServer(t, alignsvc.Config{Seed: 5, Workers: 2}, Config{})
	resp, err := http.Post(ts2.URL+"/search", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted /search: status %d", resp.StatusCode)
	}
}

// TestSearchJobOverHTTP drives the kind "search" job end to end through
// the HTTP API: submit, poll, fetch the hits result, and confirm it
// matches the synchronous endpoint.
func TestSearchJobOverHTTP(t *testing.T) {
	corpora, q := newServerCorpus(t, 600)
	_, ts, _ := newJobsTestServer(t, alignsvc.Config{Seed: 5, Workers: 2},
		Config{Corpora: corpora},
		func(jc *jobs.Config) {
			jc.Corpora = corpora
			jc.SearchChunkSize = 128
		})

	var snap jobs.Snapshot
	resp := doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Kind: jobstore.KindSearch, Corpus: "ref", Query: q.String(), TopK: 4}, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d (%+v)", resp.StatusCode, snap)
	}
	if snap.Kind != jobstore.KindSearch || snap.Corpus != "ref" || snap.TopK != 4 ||
		snap.Pairs != 600 || snap.Chunks != 5 {
		t.Fatalf("submit snapshot: %+v", snap)
	}
	done := pollJobDone(t, ts.URL, snap.ID, 15*time.Second)
	if done.State != jobstore.StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	var res SearchJobResultResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/jobs/"+snap.ID+"/result", nil, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	var sync SearchResponse
	doJSON(t, http.MethodPost, ts.URL+"/search", SearchRequest{Query: q.String(), TopK: 4}, &sync)
	if !reflect.DeepEqual(res.Hits, sync.Hits) {
		t.Fatalf("job hits %v != /search hits %v", res.Hits, sync.Hits)
	}

	// Malformed search submissions are typed 4xx.
	var errResp ErrorResponse
	resp = doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Kind: jobstore.KindSearch, Corpus: "ref", Query: q.String(),
			Preset: "unit"}, &errResp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("search+preset: status %d", resp.StatusCode)
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Kind: "frobnicate", Query: q.String()}, &errResp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", resp.StatusCode)
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Kind: jobstore.KindSearch, Corpus: "nope", Query: q.String()}, &errResp)
	if resp.StatusCode != http.StatusNotFound || errResp.Code != CodeNoCorpus {
		t.Fatalf("unknown corpus: status %d code %q", resp.StatusCode, errResp.Code)
	}
}

// TestSearchTenantCellQuota proves /search charges the tenant cell
// bucket with the post-prefilter candidate cells: a scan-all search
// (prefilter disabled) blows a small bucket, while the default
// prefiltered search of the same query fits.
func TestSearchTenantCellQuota(t *testing.T) {
	corpora, q := newServerCorpus(t, 400)
	reg, err := tenant.NewRegistry(tenant.Config{
		Tenants: []tenant.TenantConfig{
			// Budget sized between the prefiltered cost (a few candidates
			// × 96 bases × 48 query bases) and the scan-all cost (400 × 96
			// × 48 ≈ 1.8M cells).
			{ID: "cells", Key: "sk-cells", Limits: tenant.Limits{CellsPerSec: 500_000}},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5, Workers: 2},
		Config{Corpora: corpora, Tenants: reg})

	post := func(body SearchRequest) (int, ErrorResponse) {
		t.Helper()
		var errResp ErrorResponse
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/search",
			strings.NewReader(mustJSON(t, body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(APIKeyHeader, "sk-cells")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_ = json.NewDecoder(resp.Body).Decode(&errResp)
		return resp.StatusCode, errResp
	}

	// Scan-all: candidate cells ≈ the whole corpus, over budget.
	status, errResp := post(SearchRequest{Query: q.String(), MinKmerHits: -1, MaxEdits: -1})
	if status != http.StatusTooManyRequests || errResp.Reason != ReasonRateLimited {
		t.Fatalf("scan-all: status %d reason %q", status, errResp.Reason)
	}
	// Prefiltered: a handful of candidates, well under budget.
	if status, errResp = post(SearchRequest{Query: q.String()}); status != http.StatusOK {
		t.Fatalf("prefiltered: status %d (%+v)", status, errResp)
	}
}
