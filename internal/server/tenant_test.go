// HTTP-level tests of the multi-tenant layer: credential resolution, typed
// 429 bodies with derived Retry-After, per-tenant /statsz and /metricsz
// sections, tenant-scoped job ownership, and the SSE progress stream.

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// testTenants builds the registry the tests share: acme is key-protected,
// lab is keyless (bare-header addressable), burst is tightly rate-limited.
func testTenants(t *testing.T) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenant.Config{
		Tenants: []tenant.TenantConfig{
			{ID: "acme", Key: "sk-acme", Limits: tenant.Limits{Weight: 4, MaxRunningJobs: 1}},
			{ID: "lab", Limits: tenant.Limits{Weight: 2}},
			{ID: "burst", Key: "sk-burst", Limits: tenant.Limits{RPS: 0.1, Burst: 2}},
			{ID: "cells", Key: "sk-cells", Limits: tenant.Limits{CellsPerSec: 10}},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// postAlignAs is tryPostAlign with tenant credentials attached.
func postAlignAs(t *testing.T, url, apiKey, tenantID string, body any) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/align", strings.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set(APIKeyHeader, apiKey)
	}
	if tenantID != "" {
		req.Header.Set(TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	dec := json.NewDecoder(resp.Body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err == nil {
		buf.Write(raw)
	}
	return resp.StatusCode, []byte(buf.String()), resp.Header
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func alignBody() AlignRequest {
	pairs, _ := testPairs(1, 4, 8, 3)
	return AlignRequest{Pairs: pairsJSON(pairs)}
}

func TestTenantResolution(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5}, Config{Tenants: testTenants(t)})
	body := alignBody()

	cases := []struct {
		name, key, id string
		want          int
	}{
		{"anonymous", "", "", http.StatusOK},
		{"by key", "sk-acme", "", http.StatusOK},
		{"key plus matching header", "sk-acme", "acme", http.StatusOK},
		{"keyless by header", "", "lab", http.StatusOK},
		{"unknown key", "sk-nope", "", http.StatusUnauthorized},
		{"unknown tenant header", "", "nope", http.StatusUnauthorized},
		{"bare header for keyed tenant", "", "acme", http.StatusUnauthorized},
		{"key and header disagree", "sk-acme", "lab", http.StatusUnauthorized},
	}
	for _, tc := range cases {
		status, raw, _ := postAlignAs(t, ts.URL, tc.key, tc.id, body)
		if status != tc.want {
			t.Fatalf("%s: status = %d, want %d\n%s", tc.name, status, tc.want, raw)
		}
		if tc.want == http.StatusUnauthorized {
			e := decodeError(t, raw)
			if e.Code != CodeBadTenant {
				t.Fatalf("%s: code = %q, want %q", tc.name, e.Code, CodeBadTenant)
			}
			if e.TraceID == "" {
				t.Fatalf("%s: 401 body has no trace_id", tc.name)
			}
		}
	}
}

// TestRateLimited429 pins the token-bucket rejection contract: typed code,
// machine-readable reason, trace_id, and a Retry-After derived from the
// bucket's own refill time rather than a fixed guess.
func TestRateLimited429(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5}, Config{Tenants: testTenants(t)})
	body := alignBody()

	// burst: 2 tokens, 0.1/s refill. Two requests pass, the third needs
	// ~10s of refill → Retry-After 10.
	for i := 0; i < 2; i++ {
		if status, raw, _ := postAlignAs(t, ts.URL, "sk-burst", "", body); status != http.StatusOK {
			t.Fatalf("warm-up %d: status = %d\n%s", i, status, raw)
		}
	}
	status, raw, hdr := postAlignAs(t, ts.URL, "sk-burst", "", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", status, raw)
	}
	e := decodeError(t, raw)
	if e.Code != CodeRateLimited || e.Reason != ReasonRateLimited {
		t.Fatalf("code/reason = %q/%q, want %q/%q", e.Code, e.Reason, CodeRateLimited, ReasonRateLimited)
	}
	if e.TraceID == "" {
		t.Fatal("429 body has no trace_id")
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", hdr.Get("Retry-After"), err)
	}
	if ra != 10 {
		t.Fatalf("Retry-After = %d, want 10 (bucket needs 1 token at 0.1/s)", ra)
	}

	// cells: burst 10 cells, but the batch is 4·8 = 32 cells. It can never
	// pass; the hint is the full refill time (22 missing / 10 per sec → 3s).
	status, raw, hdr = postAlignAs(t, ts.URL, "sk-cells", "", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("cells: status = %d, want 429\n%s", status, raw)
	}
	e = decodeError(t, raw)
	if e.Code != CodeRateLimited || e.Reason != ReasonRateLimited {
		t.Fatalf("cells: code/reason = %q/%q", e.Code, e.Reason)
	}
	if got := hdr.Get("Retry-After"); got != "3" {
		t.Fatalf("cells: Retry-After = %q, want %q", got, "3")
	}
}

// TestErrorResponseReasonRoundTrip pins the wire shape of the typed 429
// bodies: reason and trace_id survive a JSON round trip, and reason is
// omitted when empty.
func TestErrorResponseReasonRoundTrip(t *testing.T) {
	in := ErrorResponse{
		Error:   "tenant \"x\" exceeded its request rate limit",
		Code:    CodeRateLimited,
		Reason:  ReasonRateLimited,
		TraceID: "abc123",
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reason":"rate_limited"`, `"trace_id":"abc123"`, `"code":"rate_limited"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("marshalled %s lacks %s", raw, want)
		}
	}
	var out ErrorResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	raw, _ = json.Marshal(ErrorResponse{Error: "x", Code: CodeBadRequest})
	if strings.Contains(string(raw), "reason") {
		t.Fatalf("empty reason not omitted: %s", raw)
	}
}

// TestShedRetryAfterDerived pins the queue-full 429 contract: reason
// queue_full, and a Retry-After inside the scheduler's clamp range that
// parses as an integer — the regression guard for the old fixed 1s guess.
func TestShedRetryAfterDerived(t *testing.T) {
	srv, ts := newTestServer(t, slowServiceConfig(), Config{
		MaxInFlight: 1, MaxQueued: 1,
		RetryAfter: 7 * time.Second, // the fallback before any drain is observed
	})
	pairs, _ := testPairs(1, 4, 8, 3)
	body := AlignRequest{Pairs: pairsJSON(pairs)}

	// Fill the slot and the queue, then overflow.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() { defer func() { done <- struct{}{} }(); tryPostAlign(ts.URL, body) }()
	}
	waitFor(t, time.Second, func() bool {
		return srv.Stats().InFlight == 1 && srv.Stats().Queued == 1
	})
	status, raw, err := tryPostAlign(ts.URL, body)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", status, raw)
	}
	e := decodeError(t, raw)
	if e.Code != CodeShed || e.Reason != ReasonQueueFull {
		t.Fatalf("code/reason = %q/%q, want %q/%q", e.Code, e.Reason, CodeShed, ReasonQueueFull)
	}
	if e.TraceID == "" {
		t.Fatal("shed body has no trace_id")
	}
	// Before ≥8 grants are observed the hint is the clamped fallback (7s);
	// after that it must come from the measured drain rate. Either way it
	// is an integer in the scheduler's [1s, 30s] clamp.
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
	for i := 0; i < 2; i++ {
		<-done
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStatszAndMetricszTenants checks the observability surfaces: /statsz
// grows a per-tenant section and /metricsz carries tenant_* series.
func TestStatszAndMetricszTenants(t *testing.T) {
	reg := testTenants(t)
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5}, Config{Tenants: reg, Metrics: obs.NewRegistry()})
	body := alignBody()
	for i := 0; i < 3; i++ {
		if status, raw, _ := postAlignAs(t, ts.URL, "sk-acme", "", body); status != http.StatusOK {
			t.Fatalf("align %d: %d\n%s", i, status, raw)
		}
	}
	if status, _, _ := postAlignAs(t, ts.URL, "", "lab", body); status != http.StatusOK {
		t.Fatal("lab align failed")
	}

	var stats StatszResponse
	resp := doJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statsz: %d", resp.StatusCode)
	}
	acme, ok := stats.Tenants["acme"]
	if !ok {
		t.Fatalf("/statsz has no acme tenant section: %+v", stats.Tenants)
	}
	if acme.Admitted != 3 || acme.Weight != 4 {
		t.Fatalf("acme stats = %+v, want Admitted 3 Weight 4", acme)
	}
	if lab := stats.Tenants["lab"]; lab.Admitted != 1 {
		t.Fatalf("lab stats = %+v, want Admitted 1", stats.Tenants["lab"])
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metricsz", nil)
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	text := sb.String()
	for _, want := range []string{
		`tenant_requests_total{tenant="acme",outcome="ok"} 3`,
		`tenant_requests_total{tenant="lab",outcome="ok"} 1`,
		`tenant_inflight{tenant="acme"}`,
		`tenant_queued{tenant="acme"}`,
		`tenant_admission_wait_seconds`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metricsz lacks %s\n%s", want, text)
		}
	}
}

// newTenantJobsServer is newJobsTestServer with one registry wired into
// both the server (admission) and the manager (job quotas/ownership).
func newTenantJobsServer(t *testing.T, scfg alignsvc.Config, reg *tenant.Registry) (*Server, string, *jobs.Manager) {
	t.Helper()
	srv, ts, mgr := newJobsTestServer(t, scfg, Config{Tenants: reg}, func(jc *jobs.Config) {
		jc.Tenants = reg
	})
	return srv, ts.URL, mgr
}

// doJSONAs is doJSON with tenant credentials.
func doJSONAs(t *testing.T, method, url, apiKey, tenantID string, body, out any) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body != nil {
		rd = strings.NewReader(mustJSON(t, body))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set(APIKeyHeader, apiKey)
	}
	if tenantID != "" {
		req.Header.Set(TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return resp
}

// TestJobsTenantQuotaAndOwnership drives the tenant-scoped job API over
// HTTP: the running-job cap answers 429 quota_exceeded with Retry-After,
// and another tenant's credentials see 404 for a foreign job.
func TestJobsTenantQuotaAndOwnership(t *testing.T) {
	reg := testTenants(t) // acme: MaxRunningJobs 1
	_, url, _ := newTenantJobsServer(t, slowServiceConfig(), reg)
	pairs, _ := testPairs(8, 4, 8, 11)
	body := JobSubmitRequest{Pairs: pairsJSON(pairs)}

	var first jobs.Snapshot
	resp := doJSONAs(t, http.MethodPost, url+"/jobs", "sk-acme", "", body, &first)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	if first.Tenant != "acme" {
		t.Fatalf("snapshot tenant = %q, want acme", first.Tenant)
	}

	// Second submission while the first job is live: over the cap of 1.
	var e ErrorResponse
	resp = doJSONAs(t, http.MethodPost, url+"/jobs", "sk-acme", "", body, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota submit: %d, want 429", resp.StatusCode)
	}
	if e.Code != CodeQuotaExceeded || e.Reason != ReasonQuotaExceeded {
		t.Fatalf("quota code/reason = %q/%q", e.Code, e.Reason)
	}
	if e.TraceID == "" {
		t.Fatal("quota body has no trace_id")
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
		t.Fatalf("quota Retry-After = %q, want integer in [1,30]", resp.Header.Get("Retry-After"))
	}

	// Another tenant (and anonymous) must not even learn the job exists.
	for _, creds := range [][2]string{{"", "lab"}, {"", ""}} {
		resp = doJSONAs(t, http.MethodGet, url+"/jobs/"+first.ID, creds[0], creds[1], nil, &e)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("foreign GET as %v: %d, want 404", creds, resp.StatusCode)
		}
	}
	resp = doJSONAs(t, http.MethodDelete, url+"/jobs/"+first.ID, "", "lab", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign DELETE: %d, want 404", resp.StatusCode)
	}

	// The owner sees it, and once it finishes the quota frees.
	var snap jobs.Snapshot
	resp = doJSONAs(t, http.MethodGet, url+"/jobs/"+first.ID, "sk-acme", "", nil, &snap)
	if resp.StatusCode != http.StatusOK || snap.ID != first.ID {
		t.Fatalf("owner GET: %d %+v", resp.StatusCode, snap)
	}
	waitFor(t, 30*time.Second, func() bool {
		var s jobs.Snapshot
		doJSONAs(t, http.MethodGet, url+"/jobs/"+first.ID, "sk-acme", "", nil, &s)
		return s.State.Terminal()
	})
	resp = doJSONAs(t, http.MethodPost, url+"/jobs", "sk-acme", "", body, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-terminal submit: %d, want 202", resp.StatusCode)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  jobs.Event
}

// readSSE consumes an SSE stream until it closes, returning the frames.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		}
	}
	return out
}

// TestJobEventsSSE streams a slow job's progress feed end to end: the
// stream opens with a snapshot, reports every chunk checkpoint in order,
// ends after the terminal state, and the handler goroutine is released.
// A disconnected subscriber must also be released without leaking.
func TestJobEventsSSE(t *testing.T) {
	reg := testTenants(t)
	_, url, _ := newTenantJobsServer(t, slowServiceConfig(), reg)
	pairs, _ := testPairs(16, 4, 8, 13) // ChunkSize 4 → 4 chunks
	var snap jobs.Snapshot
	resp := doJSONAs(t, http.MethodPost, url+"/jobs", "", "lab", JobSubmitRequest{Pairs: pairsJSON(pairs)}, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	baseline := runtime.NumGoroutine()

	// A subscriber that disconnects mid-stream must be released.
	ctx, cancel := context.WithCancel(context.Background())
	dreq, _ := http.NewRequestWithContext(ctx, http.MethodGet, url+"/jobs/"+snap.ID+"/events", nil)
	dreq.Header.Set(TenantHeader, "lab")
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	dresp.Body.Close()

	// The patient subscriber sees the whole feed.
	req, _ := http.NewRequest(http.MethodGet, url+"/jobs/"+snap.ID+"/events", nil)
	req.Header.Set(TenantHeader, "lab")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, bufio.NewScanner(sresp.Body))
	if len(events) == 0 || events[0].event != jobs.EventSnapshot {
		t.Fatalf("stream did not open with a snapshot: %+v", events)
	}
	var chunks []int
	var sawDone bool
	lastSeq := uint64(0)
	for i, ev := range events {
		if i > 0 && ev.data.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing past %d", i, ev.data.Seq, lastSeq)
		}
		lastSeq = ev.data.Seq
		switch ev.event {
		case jobs.EventChunk:
			chunks = append(chunks, ev.data.Job.ChunksDone)
		case jobs.EventState:
			if ev.data.Job.State == jobstore.StateDone {
				sawDone = true
			}
		}
	}
	if !sawDone {
		t.Fatalf("stream ended without a done state: %+v", events)
	}
	// Subscribed from the start, so every checkpoint must be observed.
	if len(chunks) != 4 {
		t.Fatalf("chunk events = %v, want all 4 checkpoints", chunks)
	}
	for i, c := range chunks {
		if c != i+1 {
			t.Fatalf("chunk events out of order: %v", chunks)
		}
	}

	// Both handler goroutines (and the disconnected sub) must wind down.
	waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})

	// A foreign tenant cannot subscribe at all.
	fresp := doJSONAs(t, http.MethodGet, url+"/jobs/"+snap.ID+"/events", "sk-acme", "", nil, nil)
	if fresp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign events: %d, want 404", fresp.StatusCode)
	}
}
