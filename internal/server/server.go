// Package server is the network face of the alignment service: a
// long-running HTTP server that wraps alignsvc.Service with the admission
// control a production deployment needs. Requests are bounded three ways —
// body size (http.MaxBytesReader), batch shape (max pairs, max sequence
// length) and concurrency (a semaphore-bounded in-flight limit with a
// bounded wait queue that sheds load with 429 + Retry-After) — and every
// request carries a deadline that flows through context.Context into the
// pipeline and kernel-block plumbing, surfacing as 504 on expiry. /healthz,
// /readyz and /statsz expose liveness, drain state and the JSON counters;
// /metricsz exposes the obs registry in Prometheus text format;
// Server.BeginDrain + Drain implement graceful shutdown.
//
// Every request is assigned a trace ID at the edge (honouring an incoming
// X-Trace-Id header), which propagates through context into the service and
// pipeline, is echoed in the X-Trace-Id response header, and is stamped into
// error bodies. Completed traces land in a bounded ring served by /tracez on
// the opt-in ops handler (OpsHandler), which also mounts net/http/pprof.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Config tunes the server. Service is required; every other field has a
// serving-friendly default.
type Config struct {
	// Service executes the batches. The server does not own it: callers
	// Close it after Drain.
	Service *alignsvc.Service
	// MaxInFlight bounds how many align requests execute concurrently
	// (default 2×GOMAXPROCS). MaxQueued bounds how many more may wait for a
	// slot (default MaxInFlight); beyond that the server sheds load with
	// 429 + Retry-After instead of queueing unboundedly.
	MaxInFlight, MaxQueued int
	// MaxBodyBytes caps the request body via http.MaxBytesReader
	// (default 8 MiB).
	MaxBodyBytes int64
	// MaxPairs and MaxSeqLen cap the batch shape (defaults 4096 pairs,
	// 16384 bases). Oversized requests get 413.
	MaxPairs, MaxSeqLen int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout caps what a client may ask for (defaults 30s, 2m).
	DefaultTimeout, MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Metrics receives the server's request/admission metrics (default:
	// obs.Default()). Point the service at the same registry so one
	// /metricsz scrape covers the whole stack.
	Metrics *obs.Registry
	// TraceRingSize bounds how many completed request traces /tracez
	// retains (default 64).
	TraceRingSize int
	// TraceRing, when set, replaces the ring the server would create —
	// point the job manager's Config.Traces at the same ring so one /tracez
	// covers requests and background job runs alike.
	TraceRing *obs.TraceRing
	// Jobs, when set, mounts the async job API: POST /jobs (202 + job id,
	// Idempotency-Key honoured), GET /jobs/{id}, GET /jobs/{id}/result and
	// DELETE /jobs/{id}. BeginDrain/Drain then also checkpoint-and-requeue
	// in-flight jobs. The server does not own the manager: callers Close it
	// (after Drain) themselves.
	Jobs *jobs.Manager
	// Tenants, when set, turns on multi-tenant admission: API-key/header
	// resolution, per-tenant token-bucket rate limits (requests/sec and DP
	// cells/sec), per-tenant concurrency caps and queue bounds, and
	// weighted-fair (deficit round-robin) slot scheduling. Nil falls back
	// to the anonymous-only registry, which reproduces untenanted
	// admission exactly: one weight-1 queue bounded by MaxQueued.
	Tenants *tenant.Registry
	// Corpora, when set, mounts the corpus-search API: POST /search for
	// synchronous ranked top-K queries against the mounted reference
	// corpora, plus kind "search" on POST /jobs (when Jobs is also set)
	// for durable chunk-checkpointed searches. Adds a search section to
	// /statsz with per-corpus inventory.
	Corpora *corpus.Registry
	// Cluster, when set, routes non-forwarded align batches through the
	// coordinator-free peer layer (consistent-hash ownership with local
	// fallback), mounts POST /cluster/warm for drain handoffs, enforces the
	// X-SWA-Forwarded hop guard, and adds a cluster section to /statsz.
	// BeginDrain then also hands the hot key set to the new owners. The
	// server does not own the cluster: callers Close it themselves.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = c.MaxInFlight
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 4096
	}
	if c.MaxSeqLen <= 0 {
		c.MaxSeqLen = 16384
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 64
	}
	return c
}

// Error codes returned in ErrorResponse.Code — the machine-readable half of
// every non-200 answer.
const (
	CodeBadRequest = "bad_request" // malformed JSON, bad bases, bad shape
	CodeTooLarge   = "too_large"   // body, pairs or sequence length over the cap
	CodeShed       = "shed"        // admission queue full, retry later
	CodeDraining   = "draining"    // server is shutting down
	CodeDeadline   = "deadline"    // per-request deadline expired
	CodeCanceled   = "canceled"    // client went away mid-request
	CodeInternal   = "internal"    // every tier exhausted (should not happen)

	// CodeForwardLoop rejects a forwarded request whose X-SWA-Forwarded
	// chain is longer than one hop or already contains this node: forwards
	// are one-hop by construction, so a longer chain means a stale ring
	// tried to bounce the batch around the cluster.
	CodeForwardLoop = "forward_loop"

	// CodeBadBackend rejects an X-SWA-Backend header naming an unknown
	// serving backend.
	CodeBadBackend = "bad_backend"

	// CodeBadTenant rejects credentials that resolve to no tenant: an
	// unknown API key, an unknown or key-protected tenant named by bare
	// header, or a key/header pair naming different tenants (401).
	CodeBadTenant = "bad_tenant"
	// CodeRateLimited rejects a request that outran the tenant's
	// requests/sec or cells/sec token bucket (429; Retry-After is the
	// bucket's refill time).
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded rejects a job submission beyond the tenant's
	// running-job cap (429; retry after one of the tenant's jobs ends).
	CodeQuotaExceeded = "quota_exceeded"
)

// Machine-readable 429 reasons (ErrorResponse.Reason): clients distinguish
// "slow down" (rate_limited), "finish what you started" (quota_exceeded)
// and "everyone is queueing" (queue_full) without parsing prose.
const (
	ReasonRateLimited   = "rate_limited"
	ReasonQuotaExceeded = "quota_exceeded"
	ReasonQueueFull     = "queue_full"
)

// Tenant resolution headers: the API key is the credential; the bare
// tenant header works alone only for keyless (trusted-network) tenants
// and must agree with the key when both are sent.
const (
	APIKeyHeader = "X-SWA-API-Key"
	TenantHeader = "X-SWA-Tenant"
)

// BackendHeader is the request header that overrides the serving backend
// for one /align request (see alignsvc.BackendNames for the valid values).
const BackendHeader = "X-SWA-Backend"

// AlignRequest is the /align request body. Either Pairs or Preset must be
// set. TimeoutMS overrides the server's default deadline (capped at
// MaxTimeout).
type AlignRequest struct {
	Pairs []PairJSON `json:"pairs,omitempty"`
	// Preset generates the batch server-side from a named workload.Spec
	// ("unit", "quick", "paper"); N selects the text length from the
	// spec's sweep (default: the first entry).
	Preset    string `json:"preset,omitempty"`
	N         int    `json:"n,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// PairJSON is one (pattern, text) pair as ACGT strings.
type PairJSON struct {
	X string `json:"x"`
	Y string `json:"y"`
}

// AlignResponse is the /align success body.
type AlignResponse struct {
	Scores []int           `json:"scores"`
	Report alignsvc.Report `json:"report"`
}

// ErrorResponse is the body of every non-200 answer. TraceID lets a client
// correlate the failure with /tracez and server logs. Reason is set on 429
// responses to say which limit fired (rate_limited, quota_exceeded,
// queue_full).
type ErrorResponse struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	Reason  string `json:"reason,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

// ServerStats counts what the admission layer did, for /statsz.
type ServerStats struct {
	Requests    int64 `json:"requests"`     // align requests received
	Completed   int64 `json:"completed"`    // answered 200 with scores
	Shed        int64 `json:"shed"`         // 429: queue full
	RateLimited int64 `json:"rate_limited"` // 429: tenant token bucket empty
	Rejected    int64 `json:"rejected"`     // 4xx: malformed or oversized
	BadTenant   int64 `json:"bad_tenant"`   // 401: credentials resolved to no tenant
	Deadlines   int64 `json:"deadlines"`    // 504: deadline expired
	Draining    int64 `json:"draining"`     // 503: refused during drain
	InFlight    int64 `json:"in_flight"`    // executing right now
	Queued      int64 `json:"queued"`       // waiting for a slot right now
	MaxQueued   int64 `json:"max_queued"`   // the default per-tenant queue bound
}

// StatszResponse is the /statsz body: admission counters plus the service's
// own counters (including circuit-breaker states), the score-cache counters
// when a cache is configured, and the job manager's counters when the async
// job API is mounted.
type StatszResponse struct {
	Server  ServerStats             `json:"server"`
	Service alignsvc.Stats          `json:"service"`
	Cache   *aligncache.Stats       `json:"cache,omitempty"`
	Jobs    *jobs.Stats             `json:"jobs,omitempty"`
	Cluster *cluster.Stats          `json:"cluster,omitempty"`
	Search  *SearchStats            `json:"search,omitempty"`
	Tenants map[string]tenant.Stats `json:"tenants,omitempty"`
}

// Server is the HTTP alignment server. Create with New, expose Handler()
// behind an http.Server, and BeginDrain + Drain on shutdown.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	reg    *tenant.Registry
	sched  *tenant.Scheduler
	obs    *obs.Registry
	traces *obs.TraceRing

	draining  chan struct{}
	drainOnce func()

	requests, completed, shed, rejected atomic.Int64
	rateLimited, badTenant              atomic.Int64
	deadlines, drainRefusals            atomic.Int64

	searchRequests, searchCompleted atomic.Int64
	searchCandidates, searchCells   atomic.Int64
}

// New builds the server around an existing service.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Service == nil {
		return nil, errors.New("server: Config.Service is required")
	}
	traces := cfg.TraceRing
	if traces == nil {
		traces = obs.NewTraceRing(cfg.TraceRingSize)
	}
	reg := cfg.Tenants
	if reg == nil {
		reg = tenant.Default()
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		reg: reg,
		sched: tenant.NewScheduler(tenant.SchedulerConfig{
			Capacity:     cfg.MaxInFlight,
			DefaultQueue: cfg.MaxQueued,
			Registry:     reg,
		}),
		obs:      cfg.Metrics,
		traces:   traces,
		draining: make(chan struct{}),
	}
	var once atomic.Bool
	s.drainOnce = func() {
		if once.CompareAndSwap(false, true) {
			close(s.draining)
			s.sched.BeginDrain()
		}
	}
	s.obs.Help("http_requests_total", "HTTP requests by route and status code.")
	s.obs.Help("http_request_seconds", "HTTP request wall time by route.")
	s.obs.Help("server_admission_total", "Align admission decisions by outcome.")
	s.obs.Help("server_inflight", "Align requests executing right now.")
	s.obs.Help("server_queued", "Align requests waiting for an execution slot.")
	s.obs.Help("tenant_requests_total", "Align admission outcomes by tenant.")
	s.obs.Help("tenant_admission_wait_seconds", "Admission queue wait by tenant.")
	s.obs.Help("tenant_inflight", "Execution slots held right now, by tenant.")
	s.obs.Help("tenant_queued", "Admission waiters right now, by tenant.")
	s.mux.Handle("/align", s.instrument("align", s.handleAlign))
	if cfg.Cluster != nil {
		s.mux.Handle("/cluster/warm", s.instrument("cluster_warm", s.handleClusterWarm))
	}
	if cfg.Jobs != nil {
		s.mux.Handle("/jobs", s.instrument("jobs", s.handleJobs))
		s.mux.Handle("/jobs/", s.instrument("jobs_id", s.handleJob))
	}
	if cfg.Corpora != nil {
		s.mux.Handle("/search", s.instrument("search", s.handleSearch))
	}
	s.mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.Handle("/statsz", s.instrument("statsz", s.handleStatsz))
	s.mux.Handle("/metricsz", s.instrument("metricsz", s.handleMetricsz))
	return s, nil
}

// statusWriter captures the status code a handler wrote, for the per-route
// request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE responses stream: embedding
// promotes only the ResponseWriter methods, not the Flusher the job-events
// handler type-asserts for.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a route with the edge concerns: a trace (new, or adopted
// from X-Trace-Id) installed into the request context and echoed in the
// response header, plus per-route request/latency metrics. Traces that
// accumulated spans are kept for /tracez.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	reqs := func(code int) *obs.Counter {
		return s.obs.Counter(obs.L("http_requests_total",
			"route", route, "code", strconv.Itoa(code)))
	}
	lat := s.obs.Histogram(obs.L("http_request_seconds", "route", route), obs.LatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get("X-Trace-Id"))
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		w.Header().Set("X-Trace-Id", tr.ID())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		lat.Observe(time.Since(begin).Seconds())
		reqs(sw.status).Inc()
		if len(tr.Spans()) > 0 {
			s.traces.Add(tr)
		}
	})
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips /readyz to 503 and makes new /align and /jobs requests
// fail fast with 503 "draining"; in-flight requests keep running, and job
// runners stop at their next chunk boundary, checkpointing and requeueing
// their jobs (the WAL resumes them on the next start). Safe to call more
// than once.
func (s *Server) BeginDrain() {
	s.drainOnce()
	if s.cfg.Cluster != nil {
		// Coordinator-free handoff: leave our own ring and push the hot key
		// set to the new owners, so peers take over warm. /readyz is already
		// false at this point, so peer probes quarantine us independently.
		s.cfg.Cluster.BeginDrain(context.Background())
	}
	if s.cfg.Jobs != nil {
		s.cfg.Jobs.BeginDrain()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain blocks until every in-flight align request has finished and every
// job runner has checkpointed and parked its job, or ctx expires (the
// grace period). It implies BeginDrain.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if s.sched.InFlight() == 0 && s.sched.Queued() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d request(s) still in flight: %w",
				s.sched.InFlight()+s.sched.Queued(), ctx.Err())
		case <-t.C:
		}
	}
	if s.cfg.Jobs != nil {
		return s.cfg.Jobs.Drain(ctx)
	}
	return nil
}

// Stats snapshots the admission counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:    s.requests.Load(),
		Completed:   s.completed.Load(),
		Shed:        s.shed.Load(),
		RateLimited: s.rateLimited.Load(),
		Rejected:    s.rejected.Load(),
		BadTenant:   s.badTenant.Load(),
		Deadlines:   s.deadlines.Load(),
		Draining:    s.drainRefusals.Load(),
		InFlight:    int64(s.sched.InFlight()),
		Queued:      int64(s.sched.Queued()),
		MaxQueued:   int64(s.cfg.MaxQueued),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false,"reason":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"ready":true}`)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := StatszResponse{
		Server:  s.Stats(),
		Service: s.cfg.Service.Stats(),
		Cache:   s.cfg.Service.CacheStats(),
	}
	if s.cfg.Jobs != nil {
		js := s.cfg.Jobs.Stats()
		resp.Jobs = &js
	}
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		resp.Cluster = &cs
	}
	if s.cfg.Corpora != nil {
		resp.Search = s.searchStats()
	}
	if ts := s.sched.Snapshot(); len(ts) > 0 {
		resp.Tenants = ts
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetricsz renders the obs registry as Prometheus text (exposition
// format 0.0.4). The inflight/queued gauges — global and per-tenant — are
// refreshed at scrape time so they are exact, not sampled.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.obs.Gauge("server_inflight").Set(float64(s.sched.InFlight()))
	s.obs.Gauge("server_queued").Set(float64(s.sched.Queued()))
	for id, st := range s.sched.Snapshot() {
		s.obs.Gauge(obs.L("tenant_inflight", "tenant", id)).Set(float64(st.InFlight))
		s.obs.Gauge(obs.L("tenant_queued", "tenant", id)).Set(float64(st.Queued))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.WritePrometheus(w)
}

// handleTracez dumps the recent-trace ring as JSON, oldest first.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.Snapshot())
}

// OpsHandler returns the operational mux — /metricsz, /tracez and the full
// net/http/pprof suite. It is NOT mounted on Handler(): pprof can dump heap
// contents and stall the process, so serve it on a separate, firewalled
// listener (swaserver's -ops-addr).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	s.requests.Add(1)

	// Hop guard: a forwarded batch is served locally, never re-forwarded.
	// Forwards are one-hop by construction, so a chain longer than one
	// entry — or a chain that already names this node — can only come from
	// a stale or buggy ring and is rejected with a typed error instead of
	// bouncing around the cluster.
	forwarded := false
	if cl := s.cfg.Cluster; cl != nil {
		if hops := forwardChain(r); len(hops) > 0 {
			if len(hops) > 1 || hopsContain(hops, cl.NodeID()) {
				s.rejected.Add(1)
				cl.NoteLoopReject()
				s.writeError(w, r, http.StatusBadRequest, CodeForwardLoop,
					fmt.Sprintf("forward chain %v is more than one hop from %s", hops, cl.NodeID()))
				return
			}
			forwarded = true
			cl.NoteForwardedServed()
		}
	}

	if s.Draining() {
		s.drainRefusals.Add(1)
		s.admissionOutcome("draining")
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}

	// Tenant resolution before parsing: a bad credential is a cheap 401, and
	// everything below charges quota to the resolved tenant.
	t := s.resolveTenant(w, r)
	if t == nil {
		return
	}
	defer obs.FromContext(r.Context()).StartSpan("tenant." + t.ID)()

	pairs, timeout, status, code, err := s.parseRequest(w, r)
	if err != nil {
		s.rejected.Add(1)
		s.writeError(w, r, status, code, err.Error())
		return
	}

	// Per-request backend override, validated before paying for admission.
	backend := r.Header.Get(BackendHeader)
	if backend != "" && !validBackend(backend) {
		s.rejected.Add(1)
		s.writeError(w, r, http.StatusBadRequest, CodeBadBackend,
			fmt.Sprintf("unknown backend %q (valid: %s)", backend,
				strings.Join(alignsvc.BackendNames(), ", ")))
		return
	}

	// Per-tenant rate limits: one request token, then the batch's DP-cell
	// mass. Both are token buckets, so the refusal carries the bucket's own
	// refill time — that, not a fixed guess, becomes Retry-After.
	if ok, wait := t.AllowRequest(); !ok {
		s.rejectRateLimited(w, r, t, wait, "request rate limit")
		return
	}
	if ok, wait := t.AllowCells(float64(alignsvc.Cells(pairs))); !ok {
		s.rejectRateLimited(w, r, t, wait, "cell rate limit")
		return
	}

	// Admission: ask the weighted-fair scheduler for an execution slot. A
	// backlogged tenant waits in its own bounded FIFO and is shed beyond it;
	// Retry-After on shed comes from the observed queue drain rate.
	waitBegin := time.Now()
	release, admit := s.sched.Admit(r.Context(), t.ID)
	s.obs.Histogram(obs.L("tenant_admission_wait_seconds", "tenant", t.ID),
		obs.LatencyBuckets).Observe(time.Since(waitBegin).Seconds())
	switch admit {
	case tenant.AdmitShed:
		s.shed.Add(1)
		s.admissionOutcome("shed")
		s.tenantOutcome(t.ID, "shed")
		setRetryAfter(w, s.sched.RetryAfterHint(s.cfg.RetryAfter))
		s.writeErrorReason(w, r, http.StatusTooManyRequests, CodeShed, ReasonQueueFull,
			fmt.Sprintf("admission queue full for tenant %q", t.ID))
		return
	case tenant.AdmitDraining:
		s.drainRefusals.Add(1)
		s.admissionOutcome("draining")
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	case tenant.AdmitCtxDone:
		s.admissionOutcome("canceled")
		s.writeError(w, r, statusClientClosedRequest, CodeCanceled, "client went away while queued")
		return
	}
	s.admissionOutcome("ok")
	s.tenantOutcome(t.ID, "ok")
	defer release()

	// Deadline propagation: the request context (client disconnects) plus
	// the per-request deadline flow into the service, the pipeline, and the
	// kernel-block scheduler.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	align := s.cfg.Service.Align
	if s.cfg.Cluster != nil && !forwarded {
		// First-hop requests route through the ring; forwarded ones run on
		// the local service directly, which is what terminates every chain.
		align = s.cfg.Cluster.Align
	}
	if backend != "" {
		// An explicit backend override serves on the local service,
		// bypassing the cluster ring: the ring exists to land pairs on warm
		// caches, and the cache is backend-agnostic by key construction, so
		// forwarding steered traffic would add a hop without changing the
		// answer. This also keeps override semantics identical with and
		// without a cluster.
		align = func(ctx context.Context, pairs []dna.Pair) (*alignsvc.BatchResult, error) {
			return s.cfg.Service.AlignBackend(ctx, pairs, backend)
		}
	}
	res, err := align(ctx, pairs)
	if err != nil {
		s.writeAlignError(w, r, err)
		return
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, AlignResponse{Scores: res.Scores, Report: res.Report})
}

// validBackend reports whether name is a serving backend AlignBackend will
// accept.
func validBackend(name string) bool {
	for _, n := range alignsvc.BackendNames() {
		if n == name {
			return true
		}
	}
	return false
}

// forwardChain parses the X-SWA-Forwarded header into its hop list.
func forwardChain(r *http.Request) []string {
	var hops []string
	for _, v := range r.Header.Values(cluster.ForwardHeader) {
		for _, h := range strings.Split(v, ",") {
			if h = strings.TrimSpace(h); h != "" {
				hops = append(hops, h)
			}
		}
	}
	return hops
}

func hopsContain(hops []string, id string) bool {
	for _, h := range hops {
		if h == id {
			return true
		}
	}
	return false
}

// handleClusterWarm accepts a drain handoff: parallel pairs and scores from
// a peer that owned them until it left the ring. The entries land in the
// score cache (best-effort, bounded by the cache's own limits), so the new
// owner starts warm. Accepted while draining too — a late handoff is
// harmless and the entries may still serve forwarded traffic.
func (s *Server) handleClusterWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	var req cluster.WarmRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if len(req.Pairs) != len(req.Scores) {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%d pairs but %d scores", len(req.Pairs), len(req.Scores)))
		return
	}
	// Unlike /align, a warm batch need not be shape-uniform and is not
	// held to MaxPairs: it is a cache payload, not a pipeline batch, and
	// MaxBodyBytes already bounds it. (Senders chunk by their own WarmBatch
	// size, which they cannot assume matches this node's align cap.)
	pairs := make([]dna.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if len(p.X) == 0 || len(p.Y) > s.cfg.MaxSeqLen || len(p.X) > len(p.Y) {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("entry %d has shape (%d,%d)", i, len(p.X), len(p.Y)))
			return
		}
		x, err := dna.Parse(p.X)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("entry %d pattern: %v", i, err))
			return
		}
		y, err := dna.Parse(p.Y)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("entry %d text: %v", i, err))
			return
		}
		pairs[i] = dna.Pair{X: x, Y: y}
	}
	n := s.cfg.Service.WarmCache(pairs, req.Scores)
	s.cfg.Cluster.NoteWarmAccepted(n)
	writeJSON(w, http.StatusOK, map[string]int{"accepted": n})
}

// parseRequest decodes, bounds and validates the request body, returning
// the batch and the effective deadline, or the HTTP status + error code to
// reject with.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (pairs []dna.Pair, timeout time.Duration, status int, code string, err error) {
	var req AlignRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, 0, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return nil, 0, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad JSON: %w", err)
	}

	switch {
	case len(req.Pairs) > 0 && req.Preset != "":
		return nil, 0, http.StatusBadRequest, CodeBadRequest,
			errors.New("pairs and preset are mutually exclusive")
	case req.Preset != "":
		pairs, status, code, err = s.presetPairs(req)
		if err != nil {
			return nil, 0, status, code, err
		}
	case len(req.Pairs) > 0:
		pairs, status, code, err = s.parsePairs(req.Pairs)
		if err != nil {
			return nil, 0, status, code, err
		}
	default:
		return nil, 0, http.StatusBadRequest, CodeBadRequest,
			errors.New("request needs pairs or preset")
	}

	timeout = s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	return pairs, timeout, 0, "", nil
}

// parsePairs converts and bounds client-supplied pairs. The pipeline wants
// a uniform batch (same m, same n, n ≥ m), so reject ragged input here with
// a clear 400 instead of burning the service's retry ladder on it.
func (s *Server) parsePairs(in []PairJSON) ([]dna.Pair, int, string, error) {
	if len(in) > s.cfg.MaxPairs {
		return nil, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("%d pairs exceeds the %d-pair cap", len(in), s.cfg.MaxPairs)
	}
	pairs := make([]dna.Pair, len(in))
	m, n := len(in[0].X), len(in[0].Y)
	if m == 0 || n < m {
		return nil, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid shape: pattern %d bases, text %d (need 0 < m ≤ n)", m, n)
	}
	if n > s.cfg.MaxSeqLen {
		return nil, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("sequence length %d exceeds the %d-base cap", n, s.cfg.MaxSeqLen)
	}
	for i, p := range in {
		if len(p.X) != m || len(p.Y) != n {
			return nil, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("pair %d has shape (%d,%d), want the batch's uniform (%d,%d)",
					i, len(p.X), len(p.Y), m, n)
		}
		x, err := dna.Parse(p.X)
		if err != nil {
			return nil, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("pair %d pattern: %w", i, err)
		}
		y, err := dna.Parse(p.Y)
		if err != nil {
			return nil, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("pair %d text: %w", i, err)
		}
		pairs[i] = dna.Pair{X: x, Y: y}
	}
	return pairs, 0, "", nil
}

// presetPairs generates a named workload server-side, reusing the validated
// workload.Spec presets.
func (s *Server) presetPairs(req AlignRequest) ([]dna.Pair, int, string, error) {
	spec, err := workload.ByName(req.Preset)
	if err != nil {
		return nil, http.StatusBadRequest, CodeBadRequest, err
	}
	if err := spec.Validate(); err != nil {
		return nil, http.StatusBadRequest, CodeBadRequest, err
	}
	n := req.N
	if n == 0 {
		n = spec.NList[0]
	}
	if n < spec.M || n <= 0 {
		return nil, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("preset %q: n = %d invalid (need %d ≤ n)", req.Preset, n, spec.M)
	}
	if spec.Pairs > s.cfg.MaxPairs {
		return nil, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("preset %q generates %d pairs, over the %d-pair cap", req.Preset, spec.Pairs, s.cfg.MaxPairs)
	}
	if n > s.cfg.MaxSeqLen {
		return nil, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Errorf("preset %q at n = %d exceeds the %d-base cap", req.Preset, n, s.cfg.MaxSeqLen)
	}
	return spec.Generate(n), 0, "", nil
}

// resolveTenant maps the request's credentials onto a tenant; on failure it
// writes the 401 itself and returns nil.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) *tenant.Tenant {
	t, err := s.reg.Resolve(r.Header.Get(APIKeyHeader), r.Header.Get(TenantHeader))
	if err != nil {
		s.badTenant.Add(1)
		s.admissionOutcome("bad_tenant")
		s.writeError(w, r, http.StatusUnauthorized, CodeBadTenant, err.Error())
		return nil
	}
	return t
}

// rejectRateLimited writes the typed 429 for an empty token bucket, with
// Retry-After derived from the bucket's refill time (clamped to the same
// sane range as queue-drain hints).
func (s *Server) rejectRateLimited(w http.ResponseWriter, r *http.Request, t *tenant.Tenant, wait time.Duration, what string) {
	s.rateLimited.Add(1)
	s.sched.NoteRateLimited(t.ID)
	s.admissionOutcome("rate_limited")
	s.tenantOutcome(t.ID, "rate_limited")
	setRetryAfter(w, tenant.ClampRetryAfter(wait))
	s.writeErrorReason(w, r, http.StatusTooManyRequests, CodeRateLimited, ReasonRateLimited,
		fmt.Sprintf("tenant %q exceeded its %s", t.ID, what))
}

// setRetryAfter writes the Retry-After header, rounded up to whole seconds
// (the header's only portable unit).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int((d+time.Second-1)/time.Second)))
}

// statusClientClosedRequest is nginx's conventional 499 for a client that
// disconnected before the response was ready.
const statusClientClosedRequest = 499

// admissionOutcome counts an admission decision into the obs registry.
func (s *Server) admissionOutcome(outcome string) {
	s.obs.Counter(obs.L("server_admission_total", "outcome", outcome)).Inc()
}

// tenantOutcome counts a per-tenant admission decision.
func (s *Server) tenantOutcome(id, outcome string) {
	s.obs.Counter(obs.L("tenant_requests_total", "tenant", id, "outcome", outcome)).Inc()
}

// writeAlignError maps service errors onto HTTP statuses + typed codes.
func (s *Server) writeAlignError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlines.Add(1)
		s.writeError(w, r, http.StatusGatewayTimeout, CodeDeadline, "deadline expired: "+err.Error())
	case errors.Is(err, context.Canceled):
		s.writeError(w, r, statusClientClosedRequest, CodeCanceled, "request canceled")
	case errors.Is(err, alignsvc.ErrClosed):
		s.drainRefusals.Add(1)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "service closed")
	default:
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{
		Error:   msg,
		Code:    code,
		TraceID: obs.TraceID(r.Context()),
	})
}

// writeErrorReason is writeError plus the machine-readable 429 reason.
func (s *Server) writeErrorReason(w http.ResponseWriter, r *http.Request, status int, code, reason, msg string) {
	writeJSON(w, status, ErrorResponse{
		Error:   msg,
		Code:    code,
		Reason:  reason,
		TraceID: obs.TraceID(r.Context()),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}
