// The hostile-tenant fairness soak: one tenant floods the server at many
// times its fair share while two well-behaved tenants keep working. The
// weighted-fair scheduler must hold every guarantee at once — victims get
// at least 80% of their weighted share of completions with bounded
// latency, the flooder is shed with typed 429s carrying a sane derived
// Retry-After, and a BeginDrain issued mid-flood completes all in-flight
// work and lets Drain return within grace. Runs in CI under -race.

package server

import (
	"context"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

// tenantChaosRegistry: the flooder has weight 1 and a short queue; each
// victim has weight 2, so under full backlog the victims together hold 4/5
// of the slot throughput.
func tenantChaosRegistry(t *testing.T) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenant.Config{
		Tenants: []tenant.TenantConfig{
			{ID: "flood", Limits: tenant.Limits{Weight: 1, MaxQueued: 4}},
			{ID: "victim-a", Limits: tenant.Limits{Weight: 2}},
			{ID: "victim-b", Limits: tenant.Limits{Weight: 2}},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestTenantChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("tenant chaos soak skipped in -short mode")
	}

	reg := tenantChaosRegistry(t)
	srv, ts := newTestServer(t, slowServiceConfig(), Config{
		MaxInFlight: 4,
		MaxQueued:   8,
		Tenants:     reg,
		Metrics:     obs.NewRegistry(),
	})
	pairs, _ := testPairs(1, 4, 8, 17)
	body := AlignRequest{Pairs: pairsJSON(pairs)}

	type counters struct {
		ok, shed, draining atomic.Int64
	}
	var (
		flood    counters
		victims  = map[string]*counters{"victim-a": {}, "victim-b": {}}
		latMu    sync.Mutex
		victimMS []float64

		badRetryAfter atomic.Int64
		stop          = make(chan struct{})
		wg            sync.WaitGroup
	)

	// The flooder: 12 closed loops with no pacing — more than 10× the
	// ~1/5 share its weight buys it against 4 slots of ~6 req/s each.
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, hdr := postAs(t, ts.URL, "flood", body)
				switch status {
				case http.StatusOK:
					flood.ok.Add(1)
				case http.StatusTooManyRequests:
					flood.shed.Add(1)
					if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
						badRetryAfter.Add(1)
					}
					time.Sleep(2 * time.Millisecond) // hostile: ignores the hint
				case http.StatusServiceUnavailable:
					flood.draining.Add(1)
					time.Sleep(2 * time.Millisecond)
				case 0:
					return // transport error after shutdown
				}
			}
		}()
	}

	// The victims: 4 closed loops each — enough demand to use their share,
	// nothing close to a flood.
	for id, c := range victims {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					begin := time.Now()
					status, _ := postAs(t, ts.URL, id, body)
					switch status {
					case http.StatusOK:
						c.ok.Add(1)
						latMu.Lock()
						victimMS = append(victimMS, float64(time.Since(begin))/float64(time.Millisecond))
						latMu.Unlock()
					case http.StatusServiceUnavailable:
						c.draining.Add(1)
						time.Sleep(2 * time.Millisecond)
					case http.StatusTooManyRequests:
						c.shed.Add(1)
						time.Sleep(2 * time.Millisecond)
					case 0:
						return
					}
				}
			}()
		}
	}

	time.Sleep(4 * time.Second)

	// Mid-flood drain: everything in flight must complete within grace
	// while the flood keeps hammering the (now draining) server.
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("mid-flood drain did not complete: %v", err)
	}
	close(stop)
	wg.Wait()

	floodOK := flood.ok.Load()
	aOK := victims["victim-a"].ok.Load()
	bOK := victims["victim-b"].ok.Load()
	total := floodOK + aOK + bOK
	t.Logf("completions: flood %d, victim-a %d, victim-b %d (total %d)",
		floodOK, aOK, bOK, total)
	t.Logf("flood shed %d times; victims shed %d/%d; drain refusals flood=%d",
		flood.shed.Load(), victims["victim-a"].shed.Load(),
		victims["victim-b"].shed.Load(), flood.draining.Load())

	if total < 30 {
		t.Fatalf("soak too small to judge fairness: %d completions", total)
	}

	// Fairness: each victim holds ≥ 80% of its weighted share (2/5) of the
	// observed throughput, flood or no flood.
	fairShare := 2.0 / 5.0 * float64(total)
	for name, got := range map[string]int64{"victim-a": aOK, "victim-b": bOK} {
		if float64(got) < 0.8*fairShare {
			t.Errorf("%s completed %d, below 80%% of its fair share %.1f", name, got, fairShare)
		}
	}

	// The flooder was actually shed, and every Retry-After it saw parsed
	// as an integer in the scheduler's clamp range.
	if flood.shed.Load() == 0 {
		t.Error("the flooder was never shed with 429")
	}
	if n := badRetryAfter.Load(); n != 0 {
		t.Errorf("%d shed responses carried a missing or out-of-range Retry-After", n)
	}

	// Bounded victim latency: p99 stays within a few service times even
	// with the flooder saturating its queue. The service itself takes
	// 120-240ms per request, so 3s means a bounded, short queue — while an
	// unfair scheduler would park victims behind hundreds of flood waiters.
	latMu.Lock()
	sort.Float64s(victimMS)
	p99 := victimMS[len(victimMS)*99/100]
	latMu.Unlock()
	t.Logf("victim p99 latency: %.0fms over %d requests", p99, len(victimMS))
	if p99 > 3000 {
		t.Errorf("victim p99 latency %.0fms exceeds the 3s bound", p99)
	}

	// Post-drain: new work is refused with the typed draining error.
	status, raw, _ := postAlignAs(t, ts.URL, "", "victim-a", body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain align: %d, want 503\n%s", status, raw)
	}
	if e := decodeError(t, raw); e.Code != CodeDraining {
		t.Fatalf("post-drain code = %q, want %q", e.Code, CodeDraining)
	}

	// Per-tenant accounting survived the storm: /statsz agrees with the
	// client-side counts for admitted work.
	snap := srv.sched.Snapshot()
	if snap["flood"].Shed == 0 {
		t.Error("scheduler snapshot shows no shed for the flooder")
	}
	if got := snap["victim-a"].Admitted + snap["victim-b"].Admitted; got < aOK+bOK {
		t.Errorf("scheduler admitted %d for victims, below their %d completions", got, aOK+bOK)
	}
}

// postAs posts an align request under a bare tenant header, tolerating
// transport errors (status 0) once the server shuts down.
func postAs(t *testing.T, url, tenantID string, body AlignRequest) (int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/align", strings.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, tenantID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header
}
