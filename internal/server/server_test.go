package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/dna"
	"repro/internal/swa"
)

// newTestServer builds a service + server + httptest listener, with cleanup.
func newTestServer(t *testing.T, scfg alignsvc.Config, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := alignsvc.New(scfg)
	cfg.Service = svc
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return srv, ts
}

// slowServiceConfig makes every request spend ~120-240ms in retry backoffs:
// both GPU tiers fail allocation, the breaker is disabled so they keep
// failing, and the CPU rung finally serves the (tiny) batch. Latency is
// sleep-dominated, so it stays stable under -race.
func slowServiceConfig() alignsvc.Config {
	cfg := alignsvc.Config{
		Seed:            1,
		Workers:         8,
		MaxAttempts:     5,
		BaseBackoff:     30 * time.Millisecond,
		MaxBackoff:      30 * time.Millisecond,
		BreakerFailures: -1,
	}
	cfg.Pipeline.GlobalBytes = 64
	return cfg
}

func testPairs(count, m, n int, seed uint64) ([]dna.Pair, []int) {
	rng := rand.New(rand.NewPCG(seed, 0))
	pairs := dna.RandomPairs(rng, count, m, n)
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return pairs, want
}

func pairsJSON(pairs []dna.Pair) []PairJSON {
	out := make([]PairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = PairJSON{X: p.X.String(), Y: p.Y.String()}
	}
	return out
}

// tryPostAlign sends the request and returns the status plus raw body.
// Safe to call from helper goroutines.
func tryPostAlign(url string, body any) (int, []byte, error) {
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, nil, err
		}
	}
	resp, err := http.Post(url+"/align", "application/json", &buf)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// postAlign is tryPostAlign that fails the test on transport errors.
func postAlign(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	status, raw, err := tryPostAlign(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return status, raw
}

func decodeError(t *testing.T, raw []byte) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body is not ErrorResponse JSON: %v\n%s", err, raw)
	}
	return e
}

func TestAlignExactScores(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 2}, Config{})
	pairs, want := testPairs(48, 16, 32, 7)
	status, raw := postAlign(t, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var res AlignResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(want) {
		t.Fatalf("got %d scores, want %d", len(res.Scores), len(want))
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}
	if res.Report.Tier != alignsvc.TierBitwise {
		t.Fatalf("clean batch served by %v", res.Report.Tier)
	}
}

func TestAlignPreset(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 3}, Config{})
	status, raw := postAlign(t, ts.URL, AlignRequest{Preset: "unit"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var res AlignResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 64 { // workload.Unit.Pairs
		t.Fatalf("preset unit returned %d scores, want 64", len(res.Scores))
	}
}

func TestAlignRejections(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 4},
		Config{MaxPairs: 8, MaxSeqLen: 64, MaxBodyBytes: 2048})
	long := strings.Repeat("A", 65)
	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"bad json", `{"pairs": [`, http.StatusBadRequest, CodeBadRequest},
		{"empty", `{}`, http.StatusBadRequest, CodeBadRequest},
		{"pairs and preset", AlignRequest{Preset: "unit", Pairs: []PairJSON{{X: "A", Y: "A"}}},
			http.StatusBadRequest, CodeBadRequest},
		{"unknown preset", AlignRequest{Preset: "bogus"}, http.StatusBadRequest, CodeBadRequest},
		{"oversized preset", AlignRequest{Preset: "paper"}, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"bad base", AlignRequest{Pairs: []PairJSON{{X: "AXGT", Y: "ACGTACGT"}}},
			http.StatusBadRequest, CodeBadRequest},
		{"empty pattern", AlignRequest{Pairs: []PairJSON{{X: "", Y: "ACGT"}}},
			http.StatusBadRequest, CodeBadRequest},
		{"text shorter than pattern", AlignRequest{Pairs: []PairJSON{{X: "ACGTACGT", Y: "ACGT"}}},
			http.StatusBadRequest, CodeBadRequest},
		{"ragged batch", AlignRequest{Pairs: []PairJSON{{X: "ACGT", Y: "ACGTACGT"}, {X: "AC", Y: "ACGTACGT"}}},
			http.StatusBadRequest, CodeBadRequest},
		{"too many pairs", AlignRequest{Pairs: func() []PairJSON {
			out := make([]PairJSON, 9)
			for i := range out {
				out[i] = PairJSON{X: "ACGT", Y: "ACGTACGT"}
			}
			return out
		}()}, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"sequence too long", AlignRequest{Pairs: []PairJSON{{X: "ACGT", Y: long}}},
			http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"body too large", `{"pairs": [{"x":"` + strings.Repeat("A", 4096) + `"}]}`,
			http.StatusRequestEntityTooLarge, CodeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postAlign(t, ts.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, raw)
			}
			if e := decodeError(t, raw); e.Code != tc.code {
				t.Fatalf("code %q, want %q", e.Code, tc.code)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/align")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /align = %d, want 405", resp.StatusCode)
	}
}

func TestAdmissionSheds429(t *testing.T) {
	_, ts := newTestServer(t, slowServiceConfig(), Config{MaxInFlight: 1, MaxQueued: 1})
	pairs, _ := testPairs(4, 8, 16, 9)
	req := AlignRequest{Pairs: pairsJSON(pairs)}

	const clients = 6
	statuses := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(req)
			resp, err := http.Post(ts.URL+"/align", "application/json", &buf)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Errorf("client %d: unexpected status %d", i, st)
		}
	}
	// 1 executing + 1 queued = at most 2 can succeed per ~150ms window; with
	// 6 simultaneous clients at least 3 must be shed.
	if ok < 1 || shed < 3 {
		t.Fatalf("ok=%d shed=%d, want ≥1 and ≥3 (statuses %v)", ok, shed, statuses)
	}
}

func TestDeadlineReturns504(t *testing.T) {
	srv, ts := newTestServer(t, slowServiceConfig(), Config{})
	pairs, _ := testPairs(4, 8, 16, 10)
	status, raw := postAlign(t, ts.URL, AlignRequest{Pairs: pairsJSON(pairs), TimeoutMS: 20})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", status, raw)
	}
	if e := decodeError(t, raw); e.Code != CodeDeadline {
		t.Fatalf("code %q, want %q", e.Code, CodeDeadline)
	}
	if st := srv.Stats(); st.Deadlines != 1 {
		t.Fatalf("deadline counter: %+v", st)
	}
}

func TestHealthEndpoints(t *testing.T) {
	srv, ts := newTestServer(t, alignsvc.Config{Seed: 5}, Config{})
	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	if st, raw := get("/healthz"); st != http.StatusOK || !strings.Contains(string(raw), `"ok":true`) {
		t.Fatalf("/healthz = %d %s", st, raw)
	}
	if st, raw := get("/readyz"); st != http.StatusOK || !strings.Contains(string(raw), `"ready":true`) {
		t.Fatalf("/readyz = %d %s", st, raw)
	}

	// One request so /statsz has something to show.
	pairs, _ := testPairs(8, 8, 16, 11)
	if st, raw := postAlign(t, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)}); st != http.StatusOK {
		t.Fatalf("align: %d %s", st, raw)
	}
	st, raw := get("/statsz")
	if st != http.StatusOK {
		t.Fatalf("/statsz = %d", st)
	}
	var stats StatszResponse
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("statsz JSON: %v\n%s", err, raw)
	}
	if stats.Server.Requests != 1 || stats.Server.Completed != 1 {
		t.Fatalf("server stats: %+v", stats.Server)
	}
	if stats.Service.Batches != 1 {
		t.Fatalf("service stats: %+v", stats.Service)
	}
	if len(stats.Service.Breakers) != 2 {
		t.Fatalf("statsz should expose both GPU breakers: %+v", stats.Service.Breakers)
	}

	srv.BeginDrain()
	if st, raw := get("/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(string(raw), `"ready":false`) {
		t.Fatalf("/readyz while draining = %d %s", st, raw)
	}
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", st)
	}
}

// TestDrainCompletesInFlight is the graceful-shutdown contract: an in-flight
// request finishes with exact scores while /readyz flips to 503 and new
// aligns are refused, and Drain returns once the request is done.
func TestDrainCompletesInFlight(t *testing.T) {
	srv, ts := newTestServer(t, slowServiceConfig(), Config{})
	pairs, want := testPairs(4, 8, 16, 12)

	type result struct {
		status int
		raw    []byte
	}
	done := make(chan result, 1)
	go func() {
		st, raw, err := tryPostAlign(ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
		if err != nil {
			t.Errorf("in-flight request: %v", err)
		}
		done <- result{st, raw}
	}()

	// Let the request get in flight, then start draining.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	srv.BeginDrain()

	// New work is refused while the old request drains.
	status, raw := postAlign(t, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("align during drain = %d (%s), want 503", status, raw)
	}
	if e := decodeError(t, raw); e.Code != CodeDraining {
		t.Fatalf("code %q, want %q", e.Code, CodeDraining)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d (%s), want 200", r.status, r.raw)
	}
	var res AlignResponse
	if err := json.Unmarshal(r.raw, &res); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("drained request score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}
}

func TestDrainTimesOutWithStragglers(t *testing.T) {
	srv, ts := newTestServer(t, slowServiceConfig(), Config{})
	pairs, _ := testPairs(4, 8, 16, 13)
	go tryPostAlign(ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := srv.Drain(ctx)
	if err == nil {
		t.Fatal("1ms drain of a ~150ms request should time out")
	}
	if !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("drain error should count stragglers: %v", err)
	}
}

func TestServerRequiresService(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a service should fail")
	}
}
