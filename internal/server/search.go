// Corpus-search endpoints: POST /search answers a ranked top-K query
// synchronously (small corpora, interactive use), while POST /jobs with
// kind "search" runs the same query as a durable chunk-checkpointed job
// (see jobs.go). Both charge the tenant's cell bucket with the
// *post-prefilter* candidate cells — the work the query will actually
// buy — so a selective prefilter makes searches proportionally cheaper
// against quota, exactly like the DP-cell accounting on /align. The
// endpoints are mounted only when Config.Corpora is set.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// CodeNoCorpus rejects a search naming an unmounted corpus (404: the
// resource addressed by the request does not exist).
const CodeNoCorpus = "no_corpus"

// SearchRequest is the POST /search body. Corpus may be omitted when
// exactly one corpus is mounted. TopK, MinKmerHits and MaxEdits follow
// corpus.Params semantics (zero = default, negative = disabled where
// applicable).
type SearchRequest struct {
	Corpus      string `json:"corpus,omitempty"`
	Query       string `json:"query"`
	TopK        int    `json:"top_k,omitempty"`
	MinKmerHits int    `json:"min_kmer_hits,omitempty"`
	MaxEdits    int    `json:"max_edits,omitempty"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
}

// SearchResponse is the POST /search success body: the ranked hits plus
// the funnel statistics of the query.
type SearchResponse struct {
	Corpus string       `json:"corpus"`
	Hits   []corpus.Hit `json:"hits"`
	Stats  corpus.Stats `json:"stats"`
}

// SearchCorpusInfo is one mounted corpus in the /statsz inventory.
type SearchCorpusInfo struct {
	Name        string `json:"name"`
	Seqs        int    `json:"seqs"`
	K           int    `json:"k"`
	TotalBases  int64  `json:"total_bases"`
	Fingerprint string `json:"fingerprint"`
	Backend     string `json:"backend"`
}

// SearchStats is the /statsz search section: the synchronous /search
// counters plus the mounted-corpus inventory.
type SearchStats struct {
	Requests    int64              `json:"requests"`     // /search requests received
	Completed   int64              `json:"completed"`    // answered 200 with hits
	Candidates  int64              `json:"candidates"`   // sequences that reached SW scoring
	ScoredCells int64              `json:"scored_cells"` // DP cells scored by /search
	Corpora     []SearchCorpusInfo `json:"corpora"`
}

// searchStats assembles the /statsz search section.
func (s *Server) searchStats() *SearchStats {
	st := &SearchStats{
		Requests:    s.searchRequests.Load(),
		Completed:   s.searchCompleted.Load(),
		Candidates:  s.searchCandidates.Load(),
		ScoredCells: s.searchCells.Load(),
	}
	for _, name := range s.cfg.Corpora.Names() {
		h, ok := s.cfg.Corpora.Get(name)
		if !ok {
			continue
		}
		st.Corpora = append(st.Corpora, SearchCorpusInfo{
			Name:        h.Name,
			Seqs:        h.Corpus.Len(),
			K:           h.Corpus.K(),
			TotalBases:  h.Corpus.TotalBases(),
			Fingerprint: h.Corpus.Fingerprint(),
			Backend:     h.Searcher.Backend(),
		})
	}
	return st
}

// corpusHandle resolves a request's corpus name (or the sole mounted
// corpus when the name is empty) to its handle.
func (s *Server) corpusHandle(name string) (*corpus.Handle, error) {
	reg := s.cfg.Corpora
	if name == "" {
		if names := reg.Names(); len(names) == 1 {
			name = names[0]
		} else {
			return nil, fmt.Errorf("corpus is required (mounted: %s)", strings.Join(reg.Names(), ", "))
		}
	}
	h, ok := reg.Get(name)
	if !ok {
		return nil, fmt.Errorf("unknown corpus %q (mounted: %s)", name, strings.Join(reg.Names(), ", "))
	}
	return h, nil
}

// parseSearchQuery validates and converts a query string under the same
// sequence-length cap as /align.
func (s *Server) parseSearchQuery(raw string) (dna.Seq, error) {
	if raw == "" {
		return nil, errors.New("query is required")
	}
	if len(raw) > s.cfg.MaxSeqLen {
		return nil, fmt.Errorf("query length %d exceeds the %d-base cap", len(raw), s.cfg.MaxSeqLen)
	}
	return dna.Parse(raw)
}

// candidateCells is the post-prefilter cost of a query: query length ×
// the total length of the surviving candidate sequences — the DP cells
// the search will actually score, charged to the tenant's cell bucket.
func candidateCells(c *corpus.Corpus, qLen int, cand corpus.Candidates) int64 {
	var total int64
	for _, id := range cand.IDs {
		total += int64(c.SeqLen(int(id)))
	}
	return total * int64(qLen)
}

// handleSearch serves POST /search: resolve the tenant, validate, run
// the prefilter, charge the tenant's cell bucket with the candidate
// cells, take an admission slot, score, answer hits + stats.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	s.searchRequests.Add(1)
	if s.Draining() {
		s.drainRefusals.Add(1)
		s.admissionOutcome("draining")
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	t := s.resolveTenant(w, r)
	if t == nil {
		return
	}
	defer obs.FromContext(r.Context()).StartSpan("tenant." + t.ID)()

	var req SearchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.rejected.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	h, err := s.corpusHandle(req.Corpus)
	if err != nil {
		s.rejected.Add(1)
		s.writeError(w, r, http.StatusNotFound, CodeNoCorpus, err.Error())
		return
	}
	q, err := s.parseSearchQuery(req.Query)
	if err != nil {
		s.rejected.Add(1)
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "query: "+err.Error())
		return
	}
	p := corpus.Params{TopK: req.TopK, MinKmerHits: req.MinKmerHits, MaxEdits: req.MaxEdits}

	// One request token, then the post-prefilter candidate cells. The
	// prefilter is pure and cheap (posting-list walks + bitap), so running
	// it before admission is safe; the expensive SW stage is what the
	// admission slot and the cell bucket actually guard.
	if ok, wait := t.AllowRequest(); !ok {
		s.rejectRateLimited(w, r, t, wait, "request rate limit")
		return
	}
	cand := h.Corpus.Prefilter(q, p)
	if ok, wait := t.AllowCells(float64(candidateCells(h.Corpus, len(q), cand))); !ok {
		s.rejectRateLimited(w, r, t, wait, "cell rate limit")
		return
	}

	waitBegin := time.Now()
	release, admit := s.sched.Admit(r.Context(), t.ID)
	s.obs.Histogram(obs.L("tenant_admission_wait_seconds", "tenant", t.ID),
		obs.LatencyBuckets).Observe(time.Since(waitBegin).Seconds())
	switch admit {
	case tenant.AdmitShed:
		s.shed.Add(1)
		s.admissionOutcome("shed")
		s.tenantOutcome(t.ID, "shed")
		setRetryAfter(w, s.sched.RetryAfterHint(s.cfg.RetryAfter))
		s.writeErrorReason(w, r, http.StatusTooManyRequests, CodeShed, ReasonQueueFull,
			fmt.Sprintf("admission queue full for tenant %q", t.ID))
		return
	case tenant.AdmitDraining:
		s.drainRefusals.Add(1)
		s.admissionOutcome("draining")
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	case tenant.AdmitCtxDone:
		s.admissionOutcome("canceled")
		s.writeError(w, r, statusClientClosedRequest, CodeCanceled, "client went away while queued")
		return
	}
	s.admissionOutcome("ok")
	s.tenantOutcome(t.ID, "ok")
	defer release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := h.Searcher.Search(ctx, q, p)
	if err != nil {
		s.writeAlignError(w, r, err)
		return
	}
	s.searchCompleted.Add(1)
	s.searchCandidates.Add(int64(res.Stats.Candidates))
	s.searchCells.Add(res.Stats.Cells)
	writeJSON(w, http.StatusOK, SearchResponse{Corpus: h.Name, Hits: res.Hits, Stats: res.Stats})
}
