package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/alignsvc"
)

// postAlignBackend is postAlign with an X-SWA-Backend header.
func postAlignBackend(t *testing.T, url, backend string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/align", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(BackendHeader, backend)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestBackendHeaderOverride verifies the X-SWA-Backend header steers one
// request to the named backend (visible in the report's serving tier) with
// exact scores, and that an unknown name is rejected as bad_backend before
// any work runs.
func TestBackendHeaderOverride(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 4, Backend: alignsvc.BackendStriped}, Config{})
	pairs, want := testPairs(24, 20, 40, 11)

	for backend, tier := range map[string]alignsvc.Tier{
		"cpu-ref":     alignsvc.TierCPU,
		"striped":     alignsvc.TierStriped,
		"bitwise-sim": alignsvc.TierBitwise,
	} {
		status, raw := postAlignBackend(t, ts.URL, backend, AlignRequest{Pairs: pairsJSON(pairs)})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", backend, status, raw)
		}
		var res AlignResponse
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if res.Scores[i] != want[i] {
				t.Fatalf("%s: score[%d] = %d, want %d", backend, i, res.Scores[i], want[i])
			}
		}
		if res.Report.Tier != tier {
			t.Fatalf("%s: served by %v, want %v", backend, res.Report.Tier, tier)
		}
	}

	// No header: the configured default (striped) serves.
	status, raw := postAlign(t, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
	if status != http.StatusOK {
		t.Fatalf("default: status %d: %s", status, raw)
	}
	var res AlignResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Report.Tier != alignsvc.TierStriped {
		t.Fatalf("default served by %v, want striped", res.Report.Tier)
	}

	status, raw = postAlignBackend(t, ts.URL, "warp-drive", AlignRequest{Pairs: pairsJSON(pairs)})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d: %s", status, raw)
	}
	if e := decodeError(t, raw); e.Code != CodeBadBackend {
		t.Fatalf("unknown backend: code %q, want %q", e.Code, CodeBadBackend)
	}
}

// TestStatszReportsBackend verifies /statsz carries the service's default
// backend and the striped engine counters after striped-served traffic.
func TestStatszReportsBackend(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 5, Backend: alignsvc.BackendStriped}, Config{})
	pairs, _ := testPairs(8, 16, 32, 3)
	if status, raw := postAlign(t, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)}); status != http.StatusOK {
		t.Fatalf("align: status %d: %s", status, raw)
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service.Backend != alignsvc.BackendStriped {
		t.Fatalf("statsz backend = %q, want striped", st.Service.Backend)
	}
	if st.Service.Striped == nil || st.Service.Striped.Pairs != int64(len(pairs)) {
		t.Fatalf("statsz striped stats = %+v, want %d pairs", st.Service.Striped, len(pairs))
	}
}
