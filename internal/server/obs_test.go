package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alignsvc"
	"repro/internal/obs"
)

// newObsServer wires service and server to one private registry, as a
// production deployment would, so /metricsz exposes the whole stack.
func newObsServer(t *testing.T, scfg alignsvc.Config, cfg Config) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	scfg.Metrics = reg
	cfg.Metrics = reg
	srv, ts := newTestServer(t, scfg, cfg)
	return srv, ts.URL, reg
}

// newOpsServer serves srv.OpsHandler() on its own httptest listener, the way
// swaserver's -ops-addr does.
func newOpsServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func TestMetricszExposesFullStack(t *testing.T) {
	_, url, _ := newObsServer(t, alignsvc.Config{Seed: 7}, Config{})
	pairs, _ := testPairs(16, 16, 32, 9)
	if status, raw := postAlign(t, url, AlignRequest{Pairs: pairsJSON(pairs)}); status != http.StatusOK {
		t.Fatalf("align: %d %s", status, raw)
	}

	status, hdr, raw := get(t, url+"/metricsz")
	if status != http.StatusOK {
		t.Fatalf("/metricsz: %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body := string(raw)
	for _, want := range []string{
		// server layer
		`http_requests_total{route="align",code="200"} 1`,
		`server_admission_total{outcome="ok"} 1`,
		"# TYPE server_inflight gauge",
		`http_request_seconds_bucket{route="align",le="+Inf"} 1`,
		// service layer
		`alignsvc_batches_total{tier="bitwise"} 1`,
		"# TYPE alignsvc_queue_wait_seconds histogram",
		`alignsvc_breaker_state{tier="bitwise"} 0`,
		// pipeline layer
		`pipeline_stage_sim_seconds_bucket{pipeline="bitwise",stage="swa",le="+Inf"} 1`,
		"# TYPE pipeline_gcups histogram",
		`pipeline_runs_total{pipeline="bitwise",result="ok"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}
}

func TestTraceIDFlowsEndToEnd(t *testing.T) {
	_, url, _ := newObsServer(t, alignsvc.Config{Seed: 8}, Config{})

	// A caller-supplied trace ID is honoured and echoed back.
	req, _ := http.NewRequest(http.MethodPost, url+"/align", strings.NewReader(`{"bad json`))
	req.Header.Set("X-Trace-Id", "cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "cafe0123" {
		t.Errorf("X-Trace-Id = %q, want the caller's cafe0123", got)
	}
	e := decodeError(t, raw)
	if e.TraceID != "cafe0123" {
		t.Errorf("error body trace_id = %q, want cafe0123", e.TraceID)
	}

	// Without a header, the server mints an ID.
	status, hdr, raw := get(t, url+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("/statsz: %d %s", status, raw)
	}
	if hdr.Get("X-Trace-Id") == "" {
		t.Error("server did not mint a trace ID")
	}
}

func TestTracezRecordsAlignSpans(t *testing.T) {
	srv, url, _ := newObsServer(t, alignsvc.Config{Seed: 9}, Config{})
	pairs, _ := testPairs(8, 16, 32, 10)
	if status, raw := postAlign(t, url, AlignRequest{Pairs: pairsJSON(pairs)}); status != http.StatusOK {
		t.Fatalf("align: %d %s", status, raw)
	}

	// /tracez lives on the ops handler, not the public mux.
	if status, _, _ := get(t, url+"/tracez"); status != http.StatusNotFound {
		t.Errorf("/tracez on the public mux: %d, want 404", status)
	}
	ops := newOpsServer(t, srv)
	status, _, raw := get(t, ops+"/tracez")
	if status != http.StatusOK {
		t.Fatalf("ops /tracez: %d", status)
	}
	var recs []obs.TraceRecord
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatalf("tracez JSON: %v\n%s", err, raw)
	}
	if len(recs) != 1 {
		t.Fatalf("tracez holds %d traces, want 1 (only the align had spans)", len(recs))
	}
	names := make(map[string]bool)
	for _, sp := range recs[0].Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"alignsvc.queue_wait", "alignsvc.tier.bitwise", "pipeline.swa"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

func TestOpsHandlerServesPprofAndMetrics(t *testing.T) {
	srv, url, _ := newObsServer(t, alignsvc.Config{Seed: 10}, Config{})
	ops := newOpsServer(t, srv)

	status, _, raw := get(t, ops+"/debug/pprof/cmdline")
	if status != http.StatusOK || len(raw) == 0 {
		t.Errorf("pprof cmdline: %d (%d bytes)", status, len(raw))
	}
	if status, _, _ := get(t, ops+"/metricsz"); status != http.StatusOK {
		t.Errorf("ops /metricsz: %d", status)
	}
	// pprof must NOT leak onto the public mux.
	if status, _, _ := get(t, url+"/debug/pprof/cmdline"); status != http.StatusNotFound {
		t.Errorf("pprof on the public mux: %d, want 404", status)
	}
}

func TestAdmissionMetrics(t *testing.T) {
	_, url, reg := newObsServer(t, slowServiceConfig(), Config{MaxInFlight: 1, MaxQueued: 1})
	pairs, _ := testPairs(4, 8, 16, 9)
	req := AlignRequest{Pairs: pairsJSON(pairs)}

	const clients = 6
	var wg sync.WaitGroup
	var ok200, shed429 atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, err := tryPostAlign(url, req)
			if err != nil {
				t.Error(err)
				return
			}
			switch status {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				shed429.Add(1)
			default:
				t.Errorf("unexpected status %d", status)
			}
		}()
	}
	wg.Wait()

	okC := reg.Counter(obs.L("server_admission_total", "outcome", "ok")).Value()
	shedC := reg.Counter(obs.L("server_admission_total", "outcome", "shed")).Value()
	if okC != ok200.Load() || shedC != shed429.Load() {
		t.Errorf("admission counters ok=%d shed=%d, HTTP saw ok=%d shed=%d",
			okC, shedC, ok200.Load(), shed429.Load())
	}
	if shedC == 0 {
		t.Error("no sheds with 6 clients against 1 slot + 1 queue entry")
	}
	reqs := reg.Counter(obs.L("http_requests_total", "route", "align", "code", "429")).Value()
	if reqs != shedC {
		t.Errorf("http_requests_total 429 = %d, admission shed = %d", reqs, shedC)
	}
}
