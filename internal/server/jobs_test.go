package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/obs"
)

// newJobsTestServer builds the full durable stack — store, manager, service,
// server — on a temp WAL dir, with cleanup in dependency order.
func newJobsTestServer(t *testing.T, scfg alignsvc.Config, cfg Config, jtweak func(*jobs.Config)) (*Server, *httptest.Server, *jobs.Manager) {
	t.Helper()
	svc := alignsvc.New(scfg)
	store, _, err := jobstore.Open(jobstore.Options{Dir: t.TempDir(), Sync: jobstore.SyncNever})
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	jcfg := jobs.Config{
		Store:        store,
		Service:      svc,
		ChunkSize:    4,
		ChunkTimeout: 30 * time.Second,
		Metrics:      obs.NewRegistry(),
	}
	if jtweak != nil {
		jtweak(&jcfg)
	}
	mgr, err := jobs.New(jcfg)
	if err != nil {
		store.Close()
		svc.Close()
		t.Fatal(err)
	}
	cfg.Service = svc
	cfg.Jobs = mgr
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv, err := New(cfg)
	if err != nil {
		mgr.Close()
		store.Close()
		svc.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
		store.Close()
		svc.Close()
	})
	return srv, ts, mgr
}

// doJSON issues one request and decodes the response body into out (when
// non-nil), returning the raw response for header/status checks.
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		switch b := body.(type) {
		case string:
			buf.WriteString(b)
		default:
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp
}

func pollJobDone(t *testing.T, url, id string, d time.Duration) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		var snap jobs.Snapshot
		resp := doJSON(t, http.MethodGet, url+"/jobs/"+id, nil, &snap)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
		}
		if snap.State == jobstore.StateDone {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s (%s)", id, snap.State, snap.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, snap.State, d)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobsAPILifecycle(t *testing.T) {
	_, ts, _ := newJobsTestServer(t, alignsvc.Config{Seed: 3, Workers: 2, ValidateFrac: 1}, Config{}, nil)
	pairs, want := testPairs(10, 8, 16, 77)

	var snap jobs.Snapshot
	resp := doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Pairs: pairsJSON(pairs)}, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	if snap.ID == "" || snap.Chunks != 3 {
		t.Fatalf("submit snapshot: %+v", snap)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+snap.ID {
		t.Fatalf("Location = %q", loc)
	}

	pollJobDone(t, ts.URL, snap.ID, 10*time.Second)

	var res JobResultResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/jobs/"+snap.ID+"/result", nil, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d", resp.StatusCode)
	}
	if res.Job.ID != snap.ID || len(res.Scores) != len(want) {
		t.Fatalf("result: %+v", res)
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}

	// /statsz grows a jobs section when the manager is mounted.
	var stats StatszResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &stats)
	if stats.Jobs == nil || stats.Jobs.Submitted != 1 || stats.Jobs.Completed != 1 {
		t.Fatalf("statsz jobs: %+v", stats.Jobs)
	}

	// Unknown IDs are typed 404s on all three verbs.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/jobs/job-ffffffffffffffff"},
		{http.MethodGet, "/jobs/job-ffffffffffffffff/result"},
		{http.MethodDelete, "/jobs/job-ffffffffffffffff"},
	} {
		var e ErrorResponse
		resp := doJSON(t, probe.method, ts.URL+probe.path, nil, &e)
		if resp.StatusCode != http.StatusNotFound || e.Code != CodeNotFound {
			t.Fatalf("%s %s: %d %q", probe.method, probe.path, resp.StatusCode, e.Code)
		}
	}
}

func TestJobsAPIIdempotencyKey(t *testing.T) {
	_, ts, _ := newJobsTestServer(t, alignsvc.Config{Seed: 3, Workers: 2}, Config{}, nil)
	pairs, _ := testPairs(4, 8, 16, 78)
	body := JobSubmitRequest{Pairs: pairsJSON(pairs)}

	send := func(headerKey string, req JobSubmitRequest) (int, jobs.Snapshot) {
		t.Helper()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(req); err != nil {
			t.Fatal(err)
		}
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", &buf)
		if err != nil {
			t.Fatal(err)
		}
		if headerKey != "" {
			hr.Header.Set("Idempotency-Key", headerKey)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap jobs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, snap
	}

	st1, first := send("batch-7", body)
	if st1 != http.StatusAccepted || first.Key != "batch-7" {
		t.Fatalf("first submit: %d %+v", st1, first)
	}
	// Same header key → 200 with the same job, not a second 202.
	st2, second := send("batch-7", body)
	if st2 != http.StatusOK || second.ID != first.ID {
		t.Fatalf("dedup: %d id=%s want %s", st2, second.ID, first.ID)
	}
	// The body field works too, and the header wins when both are present.
	bodyReq := body
	bodyReq.IdempotencyKey = "ignored-when-header-set"
	st3, third := send("batch-7", bodyReq)
	if st3 != http.StatusOK || third.ID != first.ID {
		t.Fatalf("header precedence: %d id=%s want %s", st3, third.ID, first.ID)
	}

	// A NUL byte in the body key is rejected outright: the store namespaces
	// keys by tenant with a NUL separator, so "tenant\x00k" from one client
	// must never alias another tenant's namespaced key.
	nulReq := body
	nulReq.IdempotencyKey = "acme\x00batch-7"
	var e ErrorResponse
	resp := doJSON(t, http.MethodPost, ts.URL+"/jobs", nulReq, &e)
	if resp.StatusCode != http.StatusBadRequest || e.Code != CodeBadRequest {
		t.Fatalf("NUL key: %d %q, want 400 %q", resp.StatusCode, e.Code, CodeBadRequest)
	}
}

func TestJobsAPICancelAndConflicts(t *testing.T) {
	_, ts, _ := newJobsTestServer(t, slowServiceConfig(), Config{}, func(c *jobs.Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 1
	})
	pairs, _ := testPairs(16, 8, 16, 79)

	var snap jobs.Snapshot
	resp := doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Pairs: pairsJSON(pairs)}, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}

	// Result before the job finishes: 409 + not_ready.
	var e ErrorResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/jobs/"+snap.ID+"/result", nil, &e)
	if resp.StatusCode != http.StatusConflict || e.Code != CodeNotReady {
		t.Fatalf("early result: %d %q", resp.StatusCode, e.Code)
	}

	// Cancel, twice (idempotent).
	for i := 0; i < 2; i++ {
		var got jobs.Snapshot
		resp = doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil, &got)
		if resp.StatusCode != http.StatusOK || got.State != jobstore.StateCancelled {
			t.Fatalf("cancel #%d: %d %+v", i, resp.StatusCode, got)
		}
	}

	// Result of a cancelled job: 409 + job_cancelled.
	resp = doJSON(t, http.MethodGet, ts.URL+"/jobs/"+snap.ID+"/result", nil, &e)
	if resp.StatusCode != http.StatusConflict || e.Code != CodeJobCancelled {
		t.Fatalf("cancelled result: %d %q", resp.StatusCode, e.Code)
	}
}

func TestJobsAPIValidationAndRouting(t *testing.T) {
	_, ts, _ := newJobsTestServer(t, alignsvc.Config{Seed: 3, Workers: 2}, Config{MaxPairs: 8}, nil)

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   string
	}{
		{"bad json", http.MethodPost, "/jobs", `{"pairs": [`, http.StatusBadRequest, CodeBadRequest},
		{"no batch", http.MethodPost, "/jobs", JobSubmitRequest{}, http.StatusBadRequest, CodeBadRequest},
		{"bad bases", http.MethodPost, "/jobs",
			JobSubmitRequest{Pairs: []PairJSON{{X: "QQQQ", Y: "ACGTACGT"}}},
			http.StatusBadRequest, CodeBadRequest},
		{"too many pairs", http.MethodPost, "/jobs",
			JobSubmitRequest{Preset: "paper"}, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"get on collection", http.MethodGet, "/jobs", nil, http.StatusMethodNotAllowed, CodeBadRequest},
		{"put on job", http.MethodPut, "/jobs/job-0", nil, http.StatusMethodNotAllowed, CodeBadRequest},
		{"junk subresource", http.MethodGet, "/jobs/job-0/nope", nil, http.StatusNotFound, CodeNotFound},
		{"empty id", http.MethodGet, "/jobs/", nil, http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		var e ErrorResponse
		resp := doJSON(t, tc.method, ts.URL+tc.path, tc.body, &e)
		if resp.StatusCode != tc.wantStatus || e.Code != tc.wantCode {
			t.Errorf("%s: got %d %q, want %d %q (%s)",
				tc.name, resp.StatusCode, e.Code, tc.wantStatus, tc.wantCode, e.Error)
		}
	}
}

func TestJobsAPIQueueFullSheds(t *testing.T) {
	_, ts, _ := newJobsTestServer(t, slowServiceConfig(), Config{}, func(c *jobs.Config) {
		c.MaxConcurrent = 1
		c.MaxQueued = 1
		c.ChunkSize = 1
	})
	pairs, _ := testPairs(16, 8, 16, 80)
	body := JobSubmitRequest{Pairs: pairsJSON(pairs)}

	var sawShed bool
	for i := 0; i < 8; i++ {
		var e ErrorResponse
		resp := doJSON(t, http.MethodPost, ts.URL+"/jobs", body, &e)
		if resp.StatusCode == http.StatusTooManyRequests {
			if e.Code != CodeShed {
				t.Fatalf("shed code = %q", e.Code)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			sawShed = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit #%d: %d", i, resp.StatusCode)
		}
	}
	if !sawShed {
		t.Fatal("queue bound never shed a submission")
	}
}

func TestJobsAPIDrainRequeuesAndRefuses(t *testing.T) {
	srv, ts, mgr := newJobsTestServer(t, slowServiceConfig(), Config{}, func(c *jobs.Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 1
	})
	pairs, _ := testPairs(16, 8, 16, 81)

	var snap jobs.Snapshot
	resp := doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Pairs: pairsJSON(pairs)}, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	// Wait for the runner to claim it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var cur jobs.Snapshot
		doJSON(t, http.MethodGet, ts.URL+"/jobs/"+snap.ID, nil, &cur)
		if cur.State == jobstore.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain checkpointed and requeued the running job rather than losing or
	// finishing it.
	got, err := mgr.Get(snap.ID)
	if err != nil || got.State != jobstore.StateQueued {
		t.Fatalf("post-drain job: %+v err=%v", got, err)
	}
	if mgr.Stats().Requeued != 1 {
		t.Fatalf("requeued: %+v", mgr.Stats())
	}
	// New submissions are refused while draining.
	var e ErrorResponse
	resp = doJSON(t, http.MethodPost, ts.URL+"/jobs",
		JobSubmitRequest{Pairs: pairsJSON(pairs)}, &e)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != CodeDraining {
		t.Fatalf("submit during drain: %d %q", resp.StatusCode, e.Code)
	}
}

func TestStatszOmitsJobsWhenUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, alignsvc.Config{Seed: 3, Workers: 2}, Config{})
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"jobs"`) {
		t.Fatalf("statsz has a jobs section without a manager: %s", raw)
	}
}
