// Async job endpoints: the durable counterpart of POST /align. A batch
// submitted to POST /jobs is persisted to the WAL-backed job store before
// the 202 goes out, executed chunk by chunk in the background, and survives
// crashes and restarts — clients poll GET /jobs/{id}, stream progress from
// GET /jobs/{id}/events (Server-Sent Events), and fetch scores from
// GET /jobs/{id}/result when the job reaches "done". Every route is
// tenant-scoped: jobs belong to the tenant that submitted them, and another
// tenant's credentials see 404, not 403 — existence is tenant-private. The
// endpoints are mounted only when Config.Jobs is set.

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/alignsvc"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/obs"
)

// Job-specific error codes (alongside the Code* constants in server.go).
const (
	CodeNotFound     = "not_found"      // unknown job ID
	CodeNotReady     = "not_ready"      // result requested before the job finished
	CodeJobFailed    = "job_failed"     // result requested for a failed job
	CodeJobCancelled = "job_cancelled"  // result requested for a cancelled job
	CodeConflict     = "state_conflict" // operation illegal in the job's current state
)

// JobSubmitRequest is the POST /jobs body. With Kind empty (alignment)
// either Pairs or Preset must be set (same shapes and caps as /align).
// With Kind "search" the Corpus/Query/TopK/MinKmerHits/MaxEdits fields
// describe a corpus search (same semantics as POST /search) and
// Pairs/Preset must be absent. IdempotencyKey deduplicates re-sent
// submissions per tenant; the Idempotency-Key header takes precedence
// when both are present.
type JobSubmitRequest struct {
	Pairs          []PairJSON `json:"pairs,omitempty"`
	Preset         string     `json:"preset,omitempty"`
	N              int        `json:"n,omitempty"`
	IdempotencyKey string     `json:"idempotency_key,omitempty"`

	// Search-job fields (Kind "search").
	Kind        string `json:"kind,omitempty"`
	Corpus      string `json:"corpus,omitempty"`
	Query       string `json:"query,omitempty"`
	TopK        int    `json:"top_k,omitempty"`
	MinKmerHits int    `json:"min_kmer_hits,omitempty"`
	MaxEdits    int    `json:"max_edits,omitempty"`
}

// JobResultResponse is the GET /jobs/{id}/result success body.
type JobResultResponse struct {
	Job    jobs.Snapshot `json:"job"`
	Scores []int         `json:"scores"`
}

// SearchJobResultResponse is the GET /jobs/{id}/result success body for
// a search job: the merged ranked hits instead of raw scores.
type SearchJobResultResponse struct {
	Job  jobs.Snapshot `json:"job"`
	Hits []corpus.Hit  `json:"hits"`
}

// jobSubmission is the parsed POST /jobs body, one of two kinds.
type jobSubmission struct {
	key string

	// Alignment.
	pairs []dna.Pair

	// Search (search == true).
	search bool
	handle *corpus.Handle
	query  dna.Seq
	params corpus.Params
}

// handleJobs serves POST /jobs: resolve the tenant, validate, charge the
// tenant's rate buckets and job quota, persist, enqueue, answer 202 with
// the job snapshot (or 200 when an idempotency key matched an existing
// job — the Location header points at it either way).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	if s.Draining() {
		s.drainRefusals.Add(1)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	t := s.resolveTenant(w, r)
	if t == nil {
		return
	}
	sub, status, code, err := s.parseJobRequest(w, r)
	if err != nil {
		s.rejected.Add(1)
		s.writeError(w, r, status, code, err.Error())
		return
	}
	// The same token buckets as /align guard the async door: a tenant
	// cannot dodge its rate limits by submitting jobs instead. Search
	// jobs charge their post-prefilter candidate cells, like /search.
	if ok, wait := t.AllowRequest(); !ok {
		s.rejectRateLimited(w, r, t, wait, "request rate limit")
		return
	}
	var cells float64
	if sub.search {
		cand := sub.handle.Corpus.Prefilter(sub.query, sub.params)
		cells = float64(candidateCells(sub.handle.Corpus, len(sub.query), cand))
	} else {
		cells = float64(alignsvc.Cells(sub.pairs))
	}
	if ok, wait := t.AllowCells(cells); !ok {
		s.rejectRateLimited(w, r, t, wait, "cell rate limit")
		return
	}
	var (
		snap    jobs.Snapshot
		created bool
	)
	if sub.search {
		snap, created, err = s.cfg.Jobs.SubmitSearchFor(sub.handle.Name, sub.query, sub.params, sub.key, t.ID)
	} else {
		snap, created, err = s.cfg.Jobs.SubmitFor(sub.pairs, sub.key, t.ID)
	}
	switch {
	case errors.Is(err, jobs.ErrQuota):
		s.sched.NoteQuotaRejected(t.ID)
		s.tenantOutcome(t.ID, "quota_exceeded")
		// A quota slot frees when one of the tenant's own jobs finishes —
		// the queue drain rate is the best available proxy for that.
		setRetryAfter(w, s.sched.RetryAfterHint(s.cfg.RetryAfter))
		s.writeErrorReason(w, r, http.StatusTooManyRequests, CodeQuotaExceeded,
			ReasonQuotaExceeded, err.Error())
		return
	case errors.Is(err, jobs.ErrQueueFull):
		s.shed.Add(1)
		s.tenantOutcome(t.ID, "shed")
		setRetryAfter(w, s.sched.RetryAfterHint(s.cfg.RetryAfter))
		s.writeErrorReason(w, r, http.StatusTooManyRequests, CodeShed, ReasonQueueFull,
			err.Error())
		return
	case errors.Is(err, jobs.ErrDraining):
		s.drainRefusals.Add(1)
		s.writeError(w, r, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	if created {
		writeJSON(w, http.StatusAccepted, snap)
	} else {
		writeJSON(w, http.StatusOK, snap) // idempotency-key dedup hit
	}
}

// handleJob serves the per-job routes: GET /jobs/{id}, GET
// /jobs/{id}/result, GET /jobs/{id}/events (SSE) and DELETE /jobs/{id}
// (cancel). All of them are scoped to the resolved tenant.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "result" && sub != "events") {
		s.writeError(w, r, http.StatusNotFound, CodeNotFound, "no such route")
		return
	}
	t := s.resolveTenant(w, r)
	if t == nil {
		return
	}
	switch {
	case sub == "result" && r.Method == http.MethodGet:
		s.handleJobResult(w, r, id, t.ID)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleJobEvents(w, r, id, t.ID)
	case sub == "" && r.Method == http.MethodGet:
		snap, err := s.cfg.Jobs.GetFor(id, t.ID)
		if err != nil {
			s.writeJobError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	case sub == "" && r.Method == http.MethodDelete:
		snap, err := s.cfg.Jobs.CancelFor(id, t.ID)
		if err != nil {
			s.writeJobError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.writeError(w, r, http.StatusMethodNotAllowed, CodeBadRequest, "GET or DELETE only")
	}
}

// handleJobResult answers with the assembled scores of a done job — or,
// for a search job, its merged ranked hits — or a typed error explaining
// why there are none (yet, or ever).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, id, tenantID string) {
	scores, snap, err := s.cfg.Jobs.ResultFor(id, tenantID)
	if errors.Is(err, jobs.ErrWrongKind) {
		s.handleSearchJobResult(w, r, id, tenantID)
		return
	}
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	if scores == nil {
		// Terminal without a result: failed or cancelled.
		if snap.Error != "" {
			s.writeError(w, r, http.StatusConflict, CodeJobFailed,
				fmt.Sprintf("job %s failed: %s", id, snap.Error))
		} else {
			s.writeError(w, r, http.StatusConflict, CodeJobCancelled,
				fmt.Sprintf("job %s was cancelled", id))
		}
		return
	}
	writeJSON(w, http.StatusOK, JobResultResponse{Job: snap, Scores: scores})
}

// handleSearchJobResult is handleJobResult for kind "search": same
// terminal-state mapping, hits instead of scores.
func (s *Server) handleSearchJobResult(w http.ResponseWriter, r *http.Request, id, tenantID string) {
	hits, snap, err := s.cfg.Jobs.SearchResultFor(id, tenantID)
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	if hits == nil && snap.State.Terminal() && snap.State != jobstore.StateDone {
		if snap.Error != "" {
			s.writeError(w, r, http.StatusConflict, CodeJobFailed,
				fmt.Sprintf("job %s failed: %s", id, snap.Error))
		} else {
			s.writeError(w, r, http.StatusConflict, CodeJobCancelled,
				fmt.Sprintf("job %s was cancelled", id))
		}
		return
	}
	if hits == nil {
		hits = []corpus.Hit{}
	}
	writeJSON(w, http.StatusOK, SearchJobResultResponse{Job: snap, Hits: hits})
}

// handleJobEvents streams a job's progress feed as Server-Sent Events: a
// snapshot of the current state on subscribe (so a late client replays the
// last checkpoint), then one event per state transition and chunk
// checkpoint, ending with the terminal state (or a drain event on manager
// shutdown). The subscription rides a bounded per-subscriber ring that
// drops oldest on a slow reader — the job runner never blocks on a stalled
// client — and is released on disconnect.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id, tenantID string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal,
			"response writer cannot stream")
		return
	}
	sub, err := s.cfg.Jobs.EventsFor(id, tenantID)
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // tell proxies not to buffer
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	defer obs.FromContext(r.Context()).StartSpan("job_events." + id)()
	for {
		ev, err := sub.Next(r.Context())
		if err != nil {
			// ErrSubClosed (feed finished, drain) or the client went away:
			// either way the stream is over.
			return
		}
		payload, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload)
		flusher.Flush()
	}
}

// writeJobError maps manager errors onto HTTP statuses + typed codes.
func (s *Server) writeJobError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.writeError(w, r, http.StatusNotFound, CodeNotFound, err.Error())
	case errors.Is(err, jobs.ErrNotReady):
		s.writeError(w, r, http.StatusConflict, CodeNotReady, err.Error())
	default:
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// parseJobRequest decodes and bounds the POST /jobs body, reusing the
// /align pair and preset validation (alignment kind) or the /search
// query validation (search kind) so every entry point enforces
// identical caps.
func (s *Server) parseJobRequest(w http.ResponseWriter, r *http.Request) (sub jobSubmission, status int, code string, err error) {
	var req JobSubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return sub, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return sub, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad JSON: %w", err)
	}
	sub.key = req.IdempotencyKey
	if h := r.Header.Get("Idempotency-Key"); h != "" {
		sub.key = h
	}
	if strings.ContainsRune(sub.key, 0) {
		// NUL is the store's tenant-namespacing separator: a key like
		// "tenantA\x00k" would collide with tenant A's namespaced key and
		// clobber its idempotent dedup.
		return sub, http.StatusBadRequest, CodeBadRequest,
			errors.New("idempotency key must not contain NUL bytes")
	}

	switch req.Kind {
	case jobstore.KindSearch:
		if s.cfg.Corpora == nil {
			return sub, http.StatusBadRequest, CodeBadRequest,
				errors.New("search jobs are not enabled (no corpora mounted)")
		}
		if len(req.Pairs) > 0 || req.Preset != "" {
			return sub, http.StatusBadRequest, CodeBadRequest,
				errors.New("search jobs take a query, not pairs or preset")
		}
		h, err := s.corpusHandle(req.Corpus)
		if err != nil {
			return sub, http.StatusNotFound, CodeNoCorpus, err
		}
		q, err := s.parseSearchQuery(req.Query)
		if err != nil {
			return sub, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("query: %w", err)
		}
		sub.search = true
		sub.handle = h
		sub.query = q
		sub.params = corpus.Params{TopK: req.TopK, MinKmerHits: req.MinKmerHits, MaxEdits: req.MaxEdits}
		return sub, 0, "", nil
	case "":
		// Alignment, below.
	default:
		return sub, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("unknown job kind %q", req.Kind)
	}

	switch {
	case len(req.Pairs) > 0 && req.Preset != "":
		return sub, http.StatusBadRequest, CodeBadRequest,
			errors.New("pairs and preset are mutually exclusive")
	case req.Preset != "":
		sub.pairs, status, code, err = s.presetPairs(AlignRequest{Preset: req.Preset, N: req.N})
	case len(req.Pairs) > 0:
		sub.pairs, status, code, err = s.parsePairs(req.Pairs)
	default:
		return sub, http.StatusBadRequest, CodeBadRequest,
			errors.New("request needs pairs or preset")
	}
	if err != nil {
		return sub, status, code, err
	}
	return sub, 0, "", nil
}
