package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// clusterNode is one in-process cluster member: a full service + cluster +
// server stack behind an httptest listener whose handler can be "killed"
// (connections torn down mid-byte, like a SIGKILLed process) and revived.
type clusterNode struct {
	id   string
	svc  *alignsvc.Service
	cl   *cluster.Cluster
	srv  *Server
	ts   *httptest.Server
	dead atomic.Bool
	h    atomic.Pointer[http.Handler]
}

// ServeHTTP delegates to the node's real handler, or slams the connection
// shut when the node is "dead". Closing the hijacked connection is the
// closest in-process stand-in for a SIGKILL: in-flight requests see a reset,
// new connections die immediately, and nothing is gracefully refused.
func (n *clusterNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if n.dead.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if c, _, err := hj.Hijack(); err == nil {
				c.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	if h := n.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

func (n *clusterNode) kill()   { n.dead.Store(true) }
func (n *clusterNode) revive() { n.dead.Store(false) }

// newClusterNodes stands up count nodes that know each other by static
// membership. Listeners are created first so every node can be configured
// with the others' URLs before any handler is live.
func newClusterNodes(t *testing.T, count int, tune func(i int, cfg *cluster.Config)) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, count)
	for i := range nodes {
		nodes[i] = &clusterNode{id: fmt.Sprintf("n%d", i)}
		nodes[i].ts = httptest.NewServer(nodes[i])
	}
	for i, n := range nodes {
		var peers []cluster.Peer
		for j, p := range nodes {
			if j != i {
				peers = append(peers, cluster.Peer{ID: p.id, URL: p.ts.URL})
			}
		}
		reg := obs.NewRegistry()
		// Capacity matters: every client batch can fan out into forwarded
		// sub-requests at the peers, so queues must absorb both direct and
		// forwarded traffic or the nodes shed each other into a 429 storm.
		// Each node has a score cache — key-affinity routing and the drain
		// handoff exist to keep these warm.
		n.svc = alignsvc.New(alignsvc.Config{
			Seed:    uint64(100 + i),
			Workers: 4,
			Queue:   64,
			Cache:   aligncache.New(aligncache.Config{MaxBytes: 16 << 20, Metrics: reg}),
			Metrics: reg,
		})
		ccfg := cluster.Config{
			NodeID:          n.id,
			Peers:           peers,
			Local:           n.svc,
			Scoring:         n.svc.Scoring(),
			Lanes:           n.svc.Lanes(),
			PeerTimeout:     750 * time.Millisecond,
			HedgeAfter:      25 * time.Millisecond,
			ProbeInterval:   50 * time.Millisecond,
			SuspectAfter:    1,
			QuarantineAfter: 2,
			BreakerFailures: 3,
			BreakerCooldown: 100 * time.Millisecond,
			RetryBackoff:    time.Millisecond,
			Metrics:         reg,
		}
		if tune != nil {
			tune(i, &ccfg)
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", n.id, err)
		}
		n.cl = cl
		srv, err := New(Config{
			Service:     n.svc,
			Cluster:     cl,
			MaxInFlight: 16,
			MaxQueued:   32,
			MaxPairs:    64,
			MaxSeqLen:   256,
			Metrics:     reg,
		})
		if err != nil {
			t.Fatalf("server.New(%s): %v", n.id, err)
		}
		n.srv = srv
		h := srv.Handler()
		n.h.Store(&h)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.revive()
			n.ts.Close()
			n.cl.Close()
			n.svc.Close()
		}
	})
	return nodes
}

// clusterStatsOf fetches the /statsz cluster section of one node.
func clusterStatsOf(base string) (*cluster.Stats, error) {
	var st StatszResponse
	if err := getServerJSON(base+"/statsz", &st); err != nil {
		return nil, err
	}
	if st.Cluster == nil {
		return nil, fmt.Errorf("statsz has no cluster section")
	}
	return st.Cluster, nil
}

func findPeer(st *cluster.Stats, id string) *cluster.PeerSnapshot {
	if st == nil {
		return nil
	}
	for i := range st.Peers {
		if st.Peers[i].ID == id {
			return &st.Peers[i]
		}
	}
	return nil
}

// waitForPeerState polls base's /statsz until its view of the named peer
// reaches the wanted health state.
func waitForPeerState(base, id string, want cluster.State) error {
	deadline := time.Now().Add(15 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		if st, err := clusterStatsOf(base); err == nil {
			if p := findPeer(st, id); p != nil {
				if p.State == want {
					return nil
				}
				last = p.State.String()
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("peer %s stuck in state %q, want %v", id, last, want)
}

// TestClusterChaosSoak is the multi-node acceptance scenario: three nodes
// serve one logical service; one is killed mid-traffic (connections reset,
// no graceful refusal) and every response must still be exact scores or a
// typed error; aggregate throughput on the survivors must hold ≥60% of the
// three-node baseline; the killed node must be quarantined out of the ring,
// then readmitted after revival; and a second node must drain cleanly,
// handing its hot keys to the new owners. Runs in CI under -race.
func TestClusterChaosSoak(t *testing.T) {
	nodes := newClusterNodes(t, 3, nil)
	n0, n1, n2 := nodes[0], nodes[1], nodes[2]

	// Continuous traffic against n0 and n1 (n2 sees only forwards, so the
	// kill exercises the peer path, not the client path). okCount moves only
	// on verified-exact 200s, so the throughput windows measure correct work.
	var okCount, erroredCount atomic.Int64
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			target := nodes[c%2].ts.URL
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				pairs, want := testPairs(4, 8, 24, uint64(c)*1_000_000+uint64(i))
				status, raw, err := tryPostAlign(target, AlignRequest{Pairs: pairsJSON(pairs)})
				if err != nil {
					t.Errorf("client %d iter %d: transport: %v", c, i, err)
					return
				}
				switch status {
				case http.StatusOK:
					var res AlignResponse
					if err := json.Unmarshal(raw, &res); err != nil {
						t.Errorf("client %d iter %d: bad 200 body: %v", c, i, err)
						return
					}
					for k := range want {
						if res.Scores[k] != want[k] {
							t.Errorf("client %d iter %d: WRONG SCORE [%d] = %d, want %d",
								c, i, k, res.Scores[k], want[k])
							return
						}
					}
					okCount.Add(1)
				case http.StatusTooManyRequests, http.StatusGatewayTimeout,
					http.StatusServiceUnavailable, http.StatusInternalServerError:
					var e ErrorResponse
					if err := json.Unmarshal(raw, &e); err != nil || e.Code == "" {
						t.Errorf("client %d iter %d: untyped %d: %s", c, i, status, raw)
						return
					}
					erroredCount.Add(1)
				default:
					t.Errorf("client %d iter %d: unexpected status %d: %s", c, i, status, raw)
					return
				}
			}
		}(c)
	}
	fail := func(format string, args ...any) {
		close(stopCh)
		wg.Wait()
		t.Fatalf(format, args...)
	}

	window := 1200 * time.Millisecond
	if testing.Short() {
		window = 500 * time.Millisecond
	}
	measure := func() int64 {
		before := okCount.Load()
		time.Sleep(window)
		return okCount.Load() - before
	}

	// Phase A: three-node baseline (after a short warmup).
	time.Sleep(200 * time.Millisecond)
	baseline := measure()
	if baseline == 0 {
		fail("no successful batches during the baseline window")
	}
	// Routing must actually be engaged before the kill: some pairs forwarded
	// by the entry nodes, some forwarded requests served.
	st0, err := clusterStatsOf(n0.ts.URL)
	if err != nil {
		fail("statsz n0: %v", err)
	}
	st1, err := clusterStatsOf(n1.ts.URL)
	if err != nil {
		fail("statsz n1: %v", err)
	}
	if st0.ForwardedPairs+st1.ForwardedPairs == 0 {
		fail("no pairs were forwarded during the baseline window")
	}
	if st0.ForwardedServed+st1.ForwardedServed == 0 {
		fail("no forwarded requests were served peer-to-peer")
	}
	preKillRehomes := st0.Rehomes

	// Kill n2 mid-traffic. In-flight forwards see connection resets and must
	// degrade to local execution; the client loop keeps checking every 200
	// for exact scores throughout.
	n2.kill()
	if err := waitForPeerState(n0.ts.URL, "n2", cluster.Quarantined); err != nil {
		fail("n0 never quarantined n2 after kill: %v", err)
	}
	if err := checkMetric(n0.ts.URL, fmt.Sprintf(`cluster_peer_state{peer="n2"} %d`, int(cluster.Quarantined))); err != nil {
		fail("%v", err)
	}
	st0, err = clusterStatsOf(n0.ts.URL)
	if err != nil {
		fail("statsz n0: %v", err)
	}
	if len(st0.RingMembers) != 2 || st0.Rehomes <= preKillRehomes {
		fail("n2's arc did not re-home: members=%v rehomes=%d (was %d)",
			st0.RingMembers, st0.Rehomes, preKillRehomes)
	}

	// Phase B: degraded throughput with n2 quarantined must hold ≥60% of the
	// baseline (its keys re-homed onto the survivors).
	degraded := measure()
	if degraded*100 < baseline*60 {
		fail("degraded throughput %d < 60%% of baseline %d", degraded, baseline)
	}

	// Revive: the probers must readmit n2 and re-home its arc back.
	n2.revive()
	if err := waitForPeerState(n0.ts.URL, "n2", cluster.Healthy); err != nil {
		fail("n0 never readmitted n2 after revive: %v", err)
	}
	if err := checkMetric(n0.ts.URL, `cluster_readmissions_total{peer="n2"}`); err != nil {
		fail("%v", err)
	}
	st0, err = clusterStatsOf(n0.ts.URL)
	if err != nil {
		fail("statsz n0: %v", err)
	}
	if len(st0.RingMembers) != 3 {
		fail("readmitted ring should have 3 members: %v", st0.RingMembers)
	}
	p2 := findPeer(st0, "n2")
	if p2 == nil || p2.Quarantines == 0 || p2.Readmissions == 0 {
		fail("n2 kill/revive cycle not reflected in n0's /statsz: %+v", p2)
	}

	close(stopCh)
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("soak: baseline=%d degraded=%d ok=%d errored=%d n0=%+v",
		baseline, degraded, okCount.Load(), erroredCount.Load(), st0)

	// Clean drain of a second node: n1 hands its hot keys to the new owners
	// and flips unready; the handoff needs no coordinator.
	st1Before, err := clusterStatsOf(n1.ts.URL)
	if err != nil {
		t.Fatalf("statsz n1: %v", err)
	}
	if st1Before.HotSetEntries == 0 {
		t.Fatal("n1 served traffic but staged no hot keys for handoff")
	}
	n1.srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n1.srv.Drain(ctx); err != nil {
		t.Fatalf("drain n1: %v", err)
	}
	resp, err := http.Get(n1.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining n1 /readyz = %d, want 503", resp.StatusCode)
	}
	st1, err = clusterStatsOf(n1.ts.URL)
	if err != nil {
		t.Fatalf("statsz n1: %v", err)
	}
	if !st1.Draining || st1.HandoffEntries == 0 || st1.HandoffPeers == 0 {
		t.Fatalf("drain handoff did not run: %+v", st1)
	}
	for _, m := range st1.RingMembers {
		if m == "n1" {
			t.Fatalf("draining node still in its own ring: %v", st1.RingMembers)
		}
	}
	accepted := int64(0)
	for _, n := range []*clusterNode{n0, n2} {
		st, err := clusterStatsOf(n.ts.URL)
		if err != nil {
			t.Fatalf("statsz %s: %v", n.id, err)
		}
		accepted += st.WarmAccepted
	}
	if accepted == 0 {
		t.Fatal("no node accepted n1's warm handoff")
	}
}

// TestForwardLoopGuard is the stale-ring containment contract: a forwarded
// request is always served locally (one hop max), and any chain longer than
// one hop — or one that already contains this node — is rejected with a
// typed error instead of bouncing around the ring.
func TestForwardLoopGuard(t *testing.T) {
	reg := obs.NewRegistry()
	svc := alignsvc.New(alignsvc.Config{Seed: 31, Metrics: reg})
	cl, err := cluster.New(cluster.Config{
		NodeID:  "n1",
		Local:   svc,
		Scoring: svc.Scoring(),
		Lanes:   svc.Lanes(),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Service: svc, Cluster: cl, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cl.Close()
		svc.Close()
	})

	pairs, want := testPairs(4, 8, 24, 77)
	post := func(hops string) (int, []byte) {
		t.Helper()
		var body []byte
		body, err := json.Marshal(AlignRequest{Pairs: pairsJSON(pairs)})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/align", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if hops != "" {
			req.Header.Set(cluster.ForwardHeader, hops)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf
	}

	// One hop from a peer: served locally with exact scores.
	status, raw := post("n9")
	if status != http.StatusOK {
		t.Fatalf("single-hop forward = %d: %s", status, raw)
	}
	var res AlignResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Scores, want) {
		t.Fatalf("forwarded scores %v, want %v", res.Scores, want)
	}

	// Two hops: a stale ring somewhere produced a chain; refuse to extend it.
	status, raw = post("n9, n8")
	if status != http.StatusBadRequest {
		t.Fatalf("two-hop forward = %d, want 400: %s", status, raw)
	}
	if e := decodeError(t, raw); e.Code != CodeForwardLoop {
		t.Fatalf("two-hop code %q, want %q", e.Code, CodeForwardLoop)
	}

	// Our own ID in the chain: a true loop; same rejection.
	status, raw = post("n1")
	if status != http.StatusBadRequest {
		t.Fatalf("self-loop forward = %d, want 400: %s", status, raw)
	}
	if e := decodeError(t, raw); e.Code != CodeForwardLoop {
		t.Fatalf("self-loop code %q, want %q", e.Code, CodeForwardLoop)
	}

	st, err := clusterStatsOf(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.ForwardedServed != 1 || st.LoopRejects != 2 {
		t.Fatalf("forwarded_served=%d loop_rejects=%d, want 1 and 2", st.ForwardedServed, st.LoopRejects)
	}
	if err := checkMetric(ts.URL, "cluster_loop_rejects_total 2"); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSingleNodeIdentity pins the degenerate deployment: a one-node
// "cluster" must answer byte-for-byte like a server with no cluster at all.
func TestClusterSingleNodeIdentity(t *testing.T) {
	_, plain := newTestServer(t, alignsvc.Config{Seed: 41}, Config{})

	svc := alignsvc.New(alignsvc.Config{Seed: 41})
	cl, err := cluster.New(cluster.Config{
		NodeID:  "solo",
		Local:   svc,
		Scoring: svc.Scoring(),
		Lanes:   svc.Lanes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Service: svc, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cl.Close()
		svc.Close()
	})

	pairs, _ := testPairs(16, 8, 32, 55)
	req := AlignRequest{Pairs: pairsJSON(pairs)}
	stPlain, rawPlain := postAlign(t, plain.URL, req)
	stClus, rawClus := postAlign(t, ts.URL, req)
	if stPlain != http.StatusOK || stClus != http.StatusOK {
		t.Fatalf("statuses %d / %d", stPlain, stClus)
	}
	var a, b AlignResponse
	if err := json.Unmarshal(rawPlain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawClus, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Scores, b.Scores) || a.Report.Tier != b.Report.Tier {
		t.Fatalf("single-node cluster diverged: %v/%v vs %v/%v",
			a.Scores, a.Report.Tier, b.Scores, b.Report.Tier)
	}
	st, err := clusterStatsOf(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.ForwardedPairs != 0 || st.FallbackPairs != 0 {
		t.Fatalf("single node forwarded work: %+v", st)
	}
	if got := st.RingMembers; !reflect.DeepEqual(got, []string{"solo"}) {
		t.Fatalf("ring members %v, want [solo]", got)
	}
}
