package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// TestFleetChaosSoak is the issue's acceptance scenario, end to end over
// HTTP: four flaky GPUs plus the CPU last-resort member serve full-validation
// traffic under the ≥10% fault storm; one device is killed mid-traffic and
// every in-flight batch must still complete with exact scores (lost shards
// re-queued, no duplicates, no hangs); three-device throughput must stay at
// ≥60% of the four-device baseline; /statsz and /metricsz must show the
// victim quarantined and then, after the revive, readmitted; and the drain
// must come back clean. Runs in CI under -race.
func TestFleetChaosSoak(t *testing.T) {
	reg := obs.NewRegistry()
	fl, err := fleet.New(fleet.Config{
		Devices: []fleet.DeviceConfig{
			{Name: "d0", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
			{Name: "d1", Spec: perfmodel.TitanX, GlobalBytes: 12 << 30},
			{Name: "d2", Spec: perfmodel.TitanXHalf, GlobalBytes: 6 << 30},
			{Name: "d3", Spec: perfmodel.TitanXQuarter, GlobalBytes: 3 << 30},
			{Name: "cpu", CPU: true},
		},
		QuarantineAfter: 4,
		ProbeInterval:   50 * time.Millisecond,
		HedgeAfter:      25 * time.Millisecond,
		QueueDepth:      32,
		Metrics:         reg,
		Seed:            20170529,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	svc := alignsvc.New(alignsvc.Config{
		Seed:            101,
		Fleet:           fl,
		Workers:         4,
		Queue:           8,
		MaxAttempts:     2,
		BaseBackoff:     100 * time.Microsecond,
		MaxBackoff:      500 * time.Microsecond,
		ValidateFrac:    1, // catch every injected bit flip
		BreakerFailures: 8,
		BreakerCooldown: 50 * time.Millisecond,
		Faults:          chaosFaults,
		Metrics:         reg,
	})
	defer svc.Close()
	srv, err := New(Config{
		Service:     svc,
		MaxInFlight: 4,
		MaxQueued:   8,
		MaxPairs:    64,
		MaxSeqLen:   256,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// Continuous traffic: every 200 is checked for exact scores, every
	// non-200 must be typed. okCount only moves on verified-exact responses,
	// so the throughput windows below measure correct work, not just bytes.
	var okCount, erroredCount atomic.Int64
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				pairs, want := chaosBatch(c, i)
				status, raw, err := postWith(client, ts.URL, AlignRequest{Pairs: pairsJSON(pairs)})
				if err != nil {
					t.Errorf("client %d iter %d: transport: %v", c, i, err)
					return
				}
				switch status {
				case http.StatusOK:
					var res AlignResponse
					if err := json.Unmarshal(raw, &res); err != nil {
						t.Errorf("client %d iter %d: bad 200 body: %v", c, i, err)
						return
					}
					for k := range want {
						if res.Scores[k] != want[k] {
							t.Errorf("client %d iter %d: WRONG SCORE [%d] = %d, want %d (report %s)",
								c, i, k, res.Scores[k], want[k], res.Report)
							return
						}
					}
					okCount.Add(1)
				case http.StatusTooManyRequests, http.StatusGatewayTimeout,
					http.StatusServiceUnavailable, http.StatusInternalServerError:
					var e ErrorResponse
					if err := json.Unmarshal(raw, &e); err != nil || e.Code == "" {
						t.Errorf("client %d iter %d: untyped %d: %s", c, i, status, raw)
						return
					}
					erroredCount.Add(1)
				default:
					t.Errorf("client %d iter %d: unexpected status %d: %s", c, i, status, raw)
					return
				}
			}
		}(c)
	}
	fail := func(format string, args ...any) {
		close(stopCh)
		wg.Wait()
		t.Fatalf(format, args...)
	}

	window := 1200 * time.Millisecond
	if testing.Short() {
		window = 500 * time.Millisecond
	}
	measure := func() int64 {
		before := okCount.Load()
		time.Sleep(window)
		return okCount.Load() - before
	}

	// Phase A: four-device baseline (after a short warmup).
	time.Sleep(200 * time.Millisecond)
	baseline := measure()
	if baseline == 0 {
		fail("no successful batches during the baseline window")
	}

	// Kill d1 mid-traffic. The in-flight batches keep being checked for
	// exact scores by the client loop; here we watch the health machine and
	// the observability surfaces react.
	fl.KillDevice("d1")
	if err := waitForState(ts.URL, "d1", fleet.Quarantined); err != nil {
		fail("d1 never quarantined after kill: %v", err)
	}
	if err := checkMetric(ts.URL, fmt.Sprintf(`fleet_device_state{device="d1"} %d`, int(fleet.Quarantined))); err != nil {
		fail("%v", err)
	}

	// Phase B: degraded throughput with the victim quarantined must hold at
	// ≥60% of the baseline (d1 was one of four members; the fleet re-balances
	// onto the survivors).
	degraded := measure()
	if degraded*100 < baseline*60 {
		fail("degraded throughput %d < 60%% of baseline %d", degraded, baseline)
	}

	// Revive: the prober must readmit d1 and the surfaces must flip back.
	fl.ReviveDevice("d1")
	if err := waitForState(ts.URL, "d1", fleet.Healthy); err != nil {
		fail("d1 never readmitted after revive: %v", err)
	}
	var st StatszResponse
	if err := getServerJSON(ts.URL+"/statsz", &st); err != nil {
		fail("statsz: %v", err)
	}
	d1 := findDevice(st.Service.Fleet, "d1")
	if d1 == nil || d1.Quarantines == 0 || d1.Readmissions == 0 {
		fail("d1 kill/revive cycle not reflected in /statsz: %+v", d1)
	}
	if err := checkMetric(ts.URL, fmt.Sprintf(`fleet_device_state{device="d1"} %d`, int(fleet.Healthy))); err != nil {
		fail("%v", err)
	}
	if err := checkMetric(ts.URL, `fleet_readmissions_total{device="d1"}`); err != nil {
		fail("%v", err)
	}

	close(stopCh)
	wg.Wait()
	if t.Failed() {
		return
	}
	fst := st.Service.Fleet
	if fst == nil || fst.Kills == 0 || fst.Requeues == 0 {
		t.Fatalf("soak did not exercise the kill/requeue paths: %+v", fst)
	}
	t.Logf("soak: baseline=%d degraded=%d ok=%d errored=%d fleet=%+v",
		baseline, degraded, okCount.Load(), erroredCount.Load(), fst)

	// Drain under the tail of the load must terminate cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.BeginDrain()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
}

// waitForState polls /statsz until the named fleet device reaches the state.
func waitForState(base, name string, want fleet.State) error {
	deadline := time.Now().Add(15 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		var st StatszResponse
		if err := getServerJSON(base+"/statsz", &st); err == nil && st.Service.Fleet != nil {
			if d := findDevice(st.Service.Fleet, name); d != nil {
				if d.State == want {
					return nil
				}
				last = d.State.String()
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("device %s stuck in state %q, want %v", name, last, want)
}

func findDevice(st *fleet.Stats, name string) *fleet.DeviceSnapshot {
	if st == nil {
		return nil
	}
	for i := range st.Devices {
		if st.Devices[i].Name == name {
			return &st.Devices[i]
		}
	}
	return nil
}

// checkMetric polls until one rendered line is present in /metricsz (the
// health machine may be mid-transition — e.g. a failed probe bouncing
// quarantined → probing → quarantined — when the caller observed the state).
func checkMetric(base, line string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metricsz")
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if strings.Contains(string(raw), line) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/metricsz missing %q", line)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getServerJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
