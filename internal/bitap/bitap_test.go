package bitap

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/match"
)

func TestShiftAndMatchesStraightforward(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		m := 1 + rng.IntN(32)
		n := m + rng.IntN(200)
		x := dna.RandSeq(rng, m)
		y := dna.RandSeq(rng, n)
		if rng.Uint32()&1 == 0 {
			copy(y[rng.IntN(n-m+1):], x) // plant an occurrence
		}
		want, err := match.Occurrences(x, y)
		if err != nil {
			return false
		}
		got, err := ShiftAnd(x, y)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShiftOrEqualsShiftAnd(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m := 1 + rng.IntN(64)
		n := m + rng.IntN(150)
		x := dna.RandSeq(rng, m)
		y := dna.RandSeq(rng, n)
		copy(y[rng.IntN(n-m+1):], x)
		a, err1 := ShiftAnd(x, y)
		o, err2 := ShiftOr(x, y)
		if err1 != nil || err2 != nil || len(a) != len(o) {
			return false
		}
		for i := range a {
			if a[i] != o[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitapPatternLimits(t *testing.T) {
	y := dna.RandSeq(rand.New(rand.NewPCG(1, 1)), 100)
	if _, err := ShiftAnd(nil, y); err == nil {
		t.Error("empty pattern should fail")
	}
	if _, err := ShiftAnd(dna.RandSeq(rand.New(rand.NewPCG(2, 2)), 65), y); err == nil {
		t.Error("pattern > 64 should fail")
	}
	if _, err := ShiftOr(nil, y); err == nil {
		t.Error("ShiftOr empty pattern should fail")
	}
	if _, err := MyersDistances(nil, y); err == nil {
		t.Error("Myers empty pattern should fail")
	}
	if _, err := MyersSearch(dna.MustParse("ACG"), y, -1); err == nil {
		t.Error("negative k should fail")
	}
	// Full 64-base pattern is legal.
	x := dna.RandSeq(rand.New(rand.NewPCG(3, 3)), 64)
	if _, err := ShiftAnd(x, y); err != nil {
		t.Errorf("64-base pattern failed: %v", err)
	}
}

func TestMyersMatchesReferenceDP(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		m := 1 + rng.IntN(60)
		n := 1 + rng.IntN(150)
		x := dna.RandSeq(rng, m)
		y := dna.RandSeq(rng, n)
		got, err := MyersDistances(x, y)
		if err != nil {
			return false
		}
		want := EditDistancesRef(x, y)
		for j := range want {
			if got[j] != want[j] {
				t.Logf("j=%d: myers %d, dp %d (m=%d n=%d)", j, got[j], want[j], m, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMyersSearchFindsApproximateHit(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	x := dna.RandSeq(rng, 24)
	y := dna.RandSeq(rng, 300)
	// Plant a copy with 2 substitutions ending at position 99.
	planted := x.Clone()
	planted[5] ^= 1
	planted[17] ^= 2
	copy(y[100-len(planted):100], planted)
	hits, err := MyersSearch(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.End == 99 && h.Dist <= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted 2-substitution hit not found; hits=%v", hits)
	}
	// With k=1 the planted hit must disappear (its distance is exactly 2).
	hits1, err := MyersSearch(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits1 {
		if h.End == 99 {
			t.Errorf("hit at 99 should need 2 edits, found at k=1 with %d", h.Dist)
		}
	}
}

func TestMyersExactMatchDistanceZero(t *testing.T) {
	x := dna.MustParse("ACGTACGT")
	y := append(dna.MustParse("TTT"), append(x.Clone(), dna.MustParse("GGG")...)...)
	d, err := MyersDistances(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d[3+8-1] != 0 {
		t.Errorf("exact occurrence has distance %d, want 0", d[10])
	}
}

func BenchmarkShiftAnd(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	x := dna.RandSeq(rng, 32)
	y := dna.RandSeq(rng, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShiftAnd(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMyers(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 6))
	x := dna.RandSeq(rng, 64)
	y := dna.RandSeq(rng, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MyersDistances(x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*64*4096/b.Elapsed().Seconds()/1e9, "Gcells/s")
}

func TestMyersMinDistanceMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		x := dna.RandSeq(rng, 1+rng.IntN(64))
		y := dna.RandSeq(rng, rng.IntN(200))
		got, err := MyersMinDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := len(x)
		for _, d := range EditDistancesRef(x, y) {
			if d < want {
				want = d
			}
		}
		if got != want {
			t.Fatalf("trial %d: MyersMinDistance = %d, want %d (m=%d n=%d)",
				trial, got, want, len(x), len(y))
		}
	}
}

func TestMyersMinDistanceEdges(t *testing.T) {
	if _, err := MyersMinDistance(nil, dna.MustParse("ACGT")); err == nil {
		t.Error("empty pattern: want error")
	}
	if _, err := MyersMinDistance(dna.RandSeq(rand.New(rand.NewPCG(8, 8)), 65), nil); err == nil {
		t.Error("pattern over 64: want error")
	}
	d, err := MyersMinDistance(dna.MustParse("ACGT"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Errorf("empty text: distance %d, want 4", d)
	}
}
