// Package bitap implements the classic intra-word bit-parallel string
// algorithms — Shift-And, Shift-Or, and Myers' bit-vector algorithm for
// approximate matching under edit distance. They parallelise across the
// *pattern positions of one instance*, whereas the paper's BPBC technique
// parallelises across *instances*; the repository benchmarks contrast the
// two styles (see EXPERIMENTS.md). Patterns are limited to the word width
// (64 positions), the standard constraint of this family.
package bitap

import (
	"fmt"

	"repro/internal/dna"
)

// maxPattern is the longest pattern the single-word variants support.
const maxPattern = 64

// masks precomputes the per-base occurrence bitmasks B[c]: bit i of B[c] is
// set when pattern position i holds base c.
func masks(x dna.Seq) ([4]uint64, error) {
	if len(x) == 0 || len(x) > maxPattern {
		return [4]uint64{}, fmt.Errorf("bitap: pattern length must be 1..%d, got %d", maxPattern, len(x))
	}
	var b [4]uint64
	for i, c := range x {
		b[c&3] |= 1 << uint(i)
	}
	return b, nil
}

// ShiftAnd returns the offsets where X occurs exactly in Y, using the
// Shift-And automaton: D ← ((D << 1) | 1) & B[y[j]].
func ShiftAnd(x, y dna.Seq) ([]int, error) {
	b, err := masks(x)
	if err != nil {
		return nil, err
	}
	m := len(x)
	accept := uint64(1) << uint(m-1)
	var d uint64
	var out []int
	for j, c := range y {
		d = ((d << 1) | 1) & b[c&3]
		if d&accept != 0 {
			out = append(out, j-m+1)
		}
	}
	return out, nil
}

// ShiftOr returns the same occurrences with the complemented automaton
// (one fewer operation per character: D ← (D << 1) | ^B[y[j]]).
func ShiftOr(x, y dna.Seq) ([]int, error) {
	b, err := masks(x)
	if err != nil {
		return nil, err
	}
	m := len(x)
	accept := uint64(1) << uint(m-1)
	d := ^uint64(0)
	var out []int
	for j, c := range y {
		d = (d << 1) | ^b[c&3]
		if d&accept == 0 {
			out = append(out, j-m+1)
		}
	}
	return out, nil
}

// MyersDistances returns, for every text position j, the minimum edit
// distance (Levenshtein) between X and any substring of Y ending at j —
// Myers' 1999 bit-vector algorithm, the canonical intra-word bit-parallel
// dynamic program.
func MyersDistances(x, y dna.Seq) ([]int, error) {
	b, err := masks(x)
	if err != nil {
		return nil, err
	}
	m := len(x)
	high := uint64(1) << uint(m-1)
	pv := ^uint64(0)
	mv := uint64(0)
	score := m
	out := make([]int, len(y))
	for j, c := range y {
		eq := b[c&3]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&high != 0 {
			score++
		} else if mh&high != 0 {
			score--
		}
		// Search (semi-global) variant: the first row is free, so no
		// carry enters the shifted horizontal deltas (the global-distance
		// variant would OR a 1 into ph here).
		ph <<= 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		out[j] = score
	}
	return out, nil
}

// MyersSearch returns the positions j where X matches a substring of Y
// ending at j with at most k edits, with the distance for each.
type MyersHit struct {
	End  int // inclusive end position in Y
	Dist int
}

// MyersSearch runs the k-differences search.
func MyersSearch(x, y dna.Seq, k int) ([]MyersHit, error) {
	if k < 0 {
		return nil, fmt.Errorf("bitap: negative edit bound %d", k)
	}
	d, err := MyersDistances(x, y)
	if err != nil {
		return nil, err
	}
	var hits []MyersHit
	for j, dist := range d {
		if dist <= k {
			hits = append(hits, MyersHit{End: j, Dist: dist})
		}
	}
	return hits, nil
}

// MyersMinDistance returns the minimum semi-global edit distance between
// X and any substring of Y — min over j of MyersDistances(x, y)[j] —
// without materialising the per-position slice. The corpus prefilter uses
// it to refine k-mer candidates: one O(n) bit-parallel pass per candidate
// decides whether the quadratic Smith-Waterman pass is worth running.
// An empty Y has no substring ending anywhere, so the distance is len(x)
// (delete everything), matching the DP's first column.
func MyersMinDistance(x, y dna.Seq) (int, error) {
	b, err := masks(x)
	if err != nil {
		return 0, err
	}
	m := len(x)
	high := uint64(1) << uint(m-1)
	pv := ^uint64(0)
	mv := uint64(0)
	score := m
	best := m
	for _, c := range y {
		eq := b[c&3]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&high != 0 {
			score++
		} else if mh&high != 0 {
			score--
		}
		ph <<= 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if score < best {
			best = score
		}
	}
	return best, nil
}

// EditDistancesRef is the quadratic reference for MyersDistances: the
// semi-global edit-distance DP (first row free), used by tests.
func EditDistancesRef(x, y dna.Seq) []int {
	m, n := len(x), len(y)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 0; i <= m; i++ {
		prev[i] = i
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		cur[0] = 0
		for i := 1; i <= m; i++ {
			sub := prev[i-1]
			if x[i-1] != y[j-1] {
				sub++
			}
			cur[i] = min(sub, prev[i]+1, cur[i-1]+1)
		}
		out[j-1] = cur[m]
		prev, cur = cur, prev
	}
	return out
}
