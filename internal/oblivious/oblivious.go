// Package oblivious implements the bulk-execution framework the paper
// builds on (§I, citing the authors' UMM line of work): a sequential
// algorithm is *oblivious* when the address it touches at each time step is
// input-independent, and the *bulk execution* runs it for many inputs at
// once. Because every instance touches the same address at the same step,
// the structure-of-arrays layout turns each step into a perfectly coalesced
// sweep — the property that makes bulk execution GPU-efficient, which this
// package demonstrates on the cudasim substrate with exact transaction
// counts. The paper's own example, prefix sums, ships as a built-in
// program.
package oblivious

import (
	"fmt"

	"repro/internal/cudasim"
)

// Op is the operation of one program step.
type Op uint8

const (
	OpCopy  Op = iota // mem[Dst] = mem[A]
	OpAdd             // mem[Dst] = mem[A] + mem[B]
	OpMax             // mem[Dst] = max(mem[A], mem[B])
	OpConst           // mem[Dst] = Imm
)

func (o Op) String() string {
	switch o {
	case OpCopy:
		return "copy"
	case OpAdd:
		return "add"
	case OpMax:
		return "max"
	case OpConst:
		return "const"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Step is one oblivious instruction: fixed addresses, no data-dependent
// control flow.
type Step struct {
	Op   Op
	Dst  int
	A, B int
	Imm  int32
}

// Program is a straight-line oblivious program over a fixed-size memory.
type Program struct {
	Name string
	Mem  int // words of per-instance memory; inputs occupy a prefix
	In   int // number of input words
	Out  int // number of output words (a prefix of memory at the end)
	Step []Step
}

// Validate checks that all addresses are in range.
func (p *Program) Validate() error {
	if p.Mem <= 0 || p.In < 0 || p.In > p.Mem || p.Out < 0 || p.Out > p.Mem {
		return fmt.Errorf("oblivious: %s: bad memory shape mem=%d in=%d out=%d", p.Name, p.Mem, p.In, p.Out)
	}
	for i, s := range p.Step {
		if s.Dst < 0 || s.Dst >= p.Mem || s.A < 0 || s.A >= p.Mem || s.B < 0 || s.B >= p.Mem {
			return fmt.Errorf("oblivious: %s: step %d addresses out of range", p.Name, i)
		}
	}
	return nil
}

// Run executes the program for a single instance. input must have In words;
// the returned slice has Out words.
func (p *Program) Run(input []int32) ([]int32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(input) != p.In {
		return nil, fmt.Errorf("oblivious: %s: want %d inputs, got %d", p.Name, p.In, len(input))
	}
	mem := make([]int32, p.Mem)
	copy(mem, input)
	for _, s := range p.Step {
		switch s.Op {
		case OpCopy:
			mem[s.Dst] = mem[s.A]
		case OpAdd:
			mem[s.Dst] = mem[s.A] + mem[s.B]
		case OpMax:
			mem[s.Dst] = max(mem[s.A], mem[s.B])
		case OpConst:
			mem[s.Dst] = s.Imm
		}
	}
	return mem[:p.Out], nil
}

// RunBulk executes the program for many instances in structure-of-arrays
// layout: the outer loop walks program steps, the inner loop instances, so
// memory access is sequential per step — the bulk execution of §I.
func (p *Program) RunBulk(inputs [][]int32) ([][]int32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	count := len(inputs)
	if count == 0 {
		return nil, fmt.Errorf("oblivious: %s: no instances", p.Name)
	}
	// SoA: mem[addr][instance].
	mem := make([][]int32, p.Mem)
	for a := range mem {
		mem[a] = make([]int32, count)
	}
	for k, in := range inputs {
		if len(in) != p.In {
			return nil, fmt.Errorf("oblivious: %s: instance %d has %d inputs, want %d", p.Name, k, len(in), p.In)
		}
		for a, v := range in {
			mem[a][k] = v
		}
	}
	for _, s := range p.Step {
		dst, a, b := mem[s.Dst], mem[s.A], mem[s.B]
		switch s.Op {
		case OpCopy:
			copy(dst, a)
		case OpAdd:
			for k := range dst {
				dst[k] = a[k] + b[k]
			}
		case OpMax:
			for k := range dst {
				dst[k] = max(a[k], b[k])
			}
		case OpConst:
			for k := range dst {
				dst[k] = s.Imm
			}
		}
	}
	out := make([][]int32, count)
	for k := range out {
		out[k] = make([]int32, p.Out)
		for a := 0; a < p.Out; a++ {
			out[k][a] = mem[a][k]
		}
	}
	return out, nil
}

// PrefixSums returns the paper's example program: in-place prefix sums of
// an n-element array via b[i] ← b[i] + b[i-1] for i = 1..n-1, which is
// oblivious because every address is fixed.
func PrefixSums(n int) *Program {
	p := &Program{Name: fmt.Sprintf("prefix-sums-%d", n), Mem: n, In: n, Out: n}
	for i := 1; i < n; i++ {
		p.Step = append(p.Step, Step{Op: OpAdd, Dst: i, A: i, B: i - 1})
	}
	return p
}

// RunBulkOnGPU executes the bulk program on the simulated GPU: one thread
// per instance, instance k's memory word a at global index a*count+k (SoA),
// so at every step the warp's accesses are consecutive — the launch's
// transaction count proves the §I coalescing claim (asserted in tests).
func (p *Program) RunBulkOnGPU(dev *cudasim.Device, inputs [][]int32) ([][]int32, *cudasim.LaunchStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	count := len(inputs)
	if count == 0 {
		return nil, nil, fmt.Errorf("oblivious: no instances")
	}
	buf, err := dev.Alloc(int64(p.Mem) * int64(count) * 4)
	if err != nil {
		return nil, nil, err
	}
	host := make([]byte, p.Mem*count*4)
	for k, in := range inputs {
		if len(in) != p.In {
			return nil, nil, fmt.Errorf("oblivious: instance %d has %d inputs, want %d", k, len(in), p.In)
		}
		for a, v := range in {
			off := (a*count + k) * 4
			u := uint32(v)
			host[off] = byte(u)
			host[off+1] = byte(u >> 8)
			host[off+2] = byte(u >> 16)
			host[off+3] = byte(u >> 24)
		}
	}
	if err := dev.MemcpyHtoD(buf, host); err != nil {
		return nil, nil, err
	}

	const threads = 128
	blocks := (count + threads - 1) / threads
	kern := cudasim.KernelFunc(func(b *cudasim.Block) {
		for _, s := range p.Step {
			step := s
			b.ForEachThread(func(t *cudasim.Thread) {
				k := b.Idx*threads + t.Tid
				if k >= count {
					return
				}
				var v uint32
				switch step.Op {
				case OpCopy:
					v = t.GlobalLoad32(buf, int64(step.A*count+k))
				case OpAdd:
					v = t.GlobalLoad32(buf, int64(step.A*count+k)) +
						t.GlobalLoad32(buf, int64(step.B*count+k))
					t.Ops(1)
				case OpMax:
					x := int32(t.GlobalLoad32(buf, int64(step.A*count+k)))
					y := int32(t.GlobalLoad32(buf, int64(step.B*count+k)))
					t.Ops(2)
					v = uint32(max(x, y))
				case OpConst:
					v = uint32(step.Imm)
				}
				t.GlobalStore32(buf, int64(step.Dst*count+k), v)
			})
			b.Sync()
		}
	})
	stats, err := dev.Launch(blocks, threads, kern)
	if err != nil {
		return nil, nil, err
	}

	if err := dev.MemcpyDtoH(host, buf); err != nil {
		return nil, nil, err
	}
	out := make([][]int32, count)
	for k := range out {
		out[k] = make([]int32, p.Out)
		for a := 0; a < p.Out; a++ {
			off := (a*count + k) * 4
			out[k][a] = int32(uint32(host[off]) | uint32(host[off+1])<<8 |
				uint32(host[off+2])<<16 | uint32(host[off+3])<<24)
		}
	}
	return out, stats, nil
}
