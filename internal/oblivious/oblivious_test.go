package oblivious

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cudasim"
	"repro/internal/perfmodel"
)

func TestPrefixSumsSingle(t *testing.T) {
	p := PrefixSums(5)
	out, err := p.Run([]int32{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 3, 6, 10, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("prefix[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestRunValidation(t *testing.T) {
	p := PrefixSums(4)
	if _, err := p.Run([]int32{1, 2}); err == nil {
		t.Error("wrong input length should fail")
	}
	bad := &Program{Name: "bad", Mem: 2, In: 1, Out: 1, Step: []Step{{Op: OpAdd, Dst: 5}}}
	if _, err := bad.Run([]int32{1}); err == nil {
		t.Error("out-of-range address should fail")
	}
	if _, err := bad.RunBulk([][]int32{{1}}); err == nil {
		t.Error("bulk with bad program should fail")
	}
	if _, err := p.RunBulk(nil); err == nil {
		t.Error("bulk with no instances should fail")
	}
	if _, err := p.RunBulk([][]int32{{1}}); err == nil {
		t.Error("bulk with wrong input length should fail")
	}
	shape := &Program{Name: "shape", Mem: 0}
	if err := shape.Validate(); err == nil {
		t.Error("zero memory should fail")
	}
}

func TestRunBulkMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		n := 1 + rng.IntN(30)
		count := 1 + rng.IntN(100)
		p := PrefixSums(n)
		inputs := make([][]int32, count)
		for k := range inputs {
			inputs[k] = make([]int32, n)
			for i := range inputs[k] {
				inputs[k][i] = int32(rng.IntN(1000) - 500)
			}
		}
		bulk, err := p.RunBulk(inputs)
		if err != nil {
			return false
		}
		for k := range inputs {
			single, err := p.Run(inputs[k])
			if err != nil {
				return false
			}
			for i := range single {
				if bulk[k][i] != single[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllOpsCovered(t *testing.T) {
	p := &Program{
		Name: "mixed", Mem: 4, In: 2, Out: 4,
		Step: []Step{
			{Op: OpConst, Dst: 2, Imm: 7},
			{Op: OpMax, Dst: 3, A: 0, B: 1},
			{Op: OpAdd, Dst: 2, A: 2, B: 3},
			{Op: OpCopy, Dst: 0, A: 2},
		},
	}
	out, err := p.Run([]int32{-3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// max(-3,5)=5; 7+5=12; copy -> out[0]=12.
	if out[0] != 12 || out[2] != 12 || out[3] != 5 {
		t.Errorf("mixed program output %v", out)
	}
	for op, want := range map[Op]string{OpCopy: "copy", OpAdd: "add", OpMax: "max", OpConst: "const"} {
		if op.String() != want {
			t.Errorf("Op %d string %q", op, op.String())
		}
	}
}

// TestGPUBulkIsCoalesced reproduces the §I claim: the bulk execution of an
// oblivious program on the GPU is perfectly coalesced — every warp
// instruction touches the minimum possible number of memory sectors.
func TestGPUBulkIsCoalesced(t *testing.T) {
	const n, count = 16, 256
	p := PrefixSums(n)
	rng := rand.New(rand.NewPCG(1, 2))
	inputs := make([][]int32, count)
	for k := range inputs {
		inputs[k] = make([]int32, n)
		for i := range inputs[k] {
			inputs[k][i] = int32(rng.IntN(100))
		}
	}
	dev := cudasim.NewDevice(perfmodel.TitanX, 1<<20)
	out, stats, err := p.RunBulkOnGPU(dev, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range inputs {
		single, _ := p.Run(inputs[k])
		for i := range single {
			if out[k][i] != single[i] {
				t.Fatalf("instance %d word %d: GPU %d, reference %d", k, i, out[k][i], single[i])
			}
		}
	}
	// Each OpAdd step: 2 loads + 1 store per thread; a full warp's 32
	// 4-byte accesses span exactly 4 sectors -> 12 sectors per warp-step.
	warps := int64(count / 32)
	steps := int64(len(p.Step))
	wantTx := steps * warps * 12
	if stats.GlobalTransactions != wantTx {
		t.Errorf("transactions = %d, want %d (perfect coalescing)", stats.GlobalTransactions, wantTx)
	}
	if stats.ALUOps != steps*int64(count) {
		t.Errorf("ALU ops = %d, want %d", stats.ALUOps, steps*int64(count))
	}
}

func TestGPUBulkValidation(t *testing.T) {
	dev := cudasim.NewDevice(perfmodel.TitanX, 1<<16)
	p := PrefixSums(4)
	if _, _, err := p.RunBulkOnGPU(dev, nil); err == nil {
		t.Error("no instances should fail")
	}
	if _, _, err := p.RunBulkOnGPU(dev, [][]int32{{1}}); err == nil {
		t.Error("wrong input length should fail")
	}
	tiny := cudasim.NewDevice(perfmodel.TitanX, 16)
	big := PrefixSums(1024)
	in := make([][]int32, 64)
	for k := range in {
		in[k] = make([]int32, 1024)
	}
	if _, _, err := big.RunBulkOnGPU(tiny, in); err == nil {
		t.Error("out-of-memory should fail")
	}
}

func BenchmarkBulkPrefixSums(b *testing.B) {
	const n, count = 64, 4096
	p := PrefixSums(n)
	rng := rand.New(rand.NewPCG(3, 4))
	inputs := make([][]int32, count)
	for k := range inputs {
		inputs[k] = make([]int32, n)
		for i := range inputs[k] {
			inputs[k][i] = int32(rng.IntN(100))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunBulk(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
