package bpbc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/swa"
)

// refArgmax returns the maximum of the scoring matrix and the first
// (row-major) cell attaining it, matching BulkScoresPos's tie-breaking.
func refArgmax(x, y dna.Seq, sc swa.Scoring) (best, bi, bj int) {
	d := swa.Matrix(x, y, sc)
	for i := range d {
		for j := range d[i] {
			if d[i][j] > best {
				best, bi, bj = d[i][j], i, j
			}
		}
	}
	return best, bi, bj
}

func TestBulkScoresPosMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 20))
		count := 1 + rng.IntN(40)
		m := 1 + rng.IntN(16)
		n := m + rng.IntN(48)
		pairs := dna.PlantedPairs(rng, count, m, n, 0.5, dna.MutationModel{SubRate: 0.15})
		res, err := BulkScoresPos[uint32](pairs, Options{})
		if err != nil {
			return false
		}
		for i, p := range pairs {
			score, bi, bj := refArgmax(p.X, p.Y, swa.PaperScoring)
			if res.Scores[i] != score {
				t.Logf("pair %d: score %d want %d", i, res.Scores[i], score)
				return false
			}
			if res.EndI[i] != bi || res.EndJ[i] != bj {
				t.Logf("pair %d: pos (%d,%d) want (%d,%d) score %d",
					i, res.EndI[i], res.EndJ[i], bi, bj, score)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkScoresPos64(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	pairs := dna.PlantedPairs(rng, 70, 12, 50, 0.7, dna.MutationModel{})
	res, err := BulkScoresPos[uint64](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		score, bi, bj := refArgmax(p.X, p.Y, swa.PaperScoring)
		if res.Scores[i] != score || res.EndI[i] != bi || res.EndJ[i] != bj {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	if res.Lanes != 64 {
		t.Errorf("Lanes = %d", res.Lanes)
	}
}

func TestBulkScoresPosZeroScore(t *testing.T) {
	// All-mismatch inputs: score 0, position (0,0).
	x := dna.Seq{dna.A, dna.A, dna.A}
	y := dna.Seq{dna.C, dna.C, dna.C, dna.C}
	pairs := []dna.Pair{{X: x, Y: y}}
	res, err := BulkScoresPos[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] != 0 || res.EndI[0] != 0 || res.EndJ[0] != 0 {
		t.Errorf("zero-score pair reported %d at (%d,%d)",
			res.Scores[0], res.EndI[0], res.EndJ[0])
	}
}

func TestBulkScoresPosErrors(t *testing.T) {
	if _, err := BulkScoresPos[uint32](nil, Options{}); err == nil {
		t.Error("empty batch should fail")
	}
	rng := rand.New(rand.NewPCG(23, 24))
	ok := []dna.Pair{{X: dna.RandSeq(rng, 4), Y: dna.RandSeq(rng, 8)}}
	if _, err := BulkScoresPos[uint32](ok, Options{SBits: 1}); err == nil {
		t.Error("bad SBits should fail")
	}
}

func TestBulkScoresAffineMatchesGotoh(t *testing.T) {
	aff := swa.AffineScoring{Match: 2, Mismatch: 1, GapOpen: 3, GapExtend: 1}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 30))
		count := 1 + rng.IntN(40)
		m := 1 + rng.IntN(14)
		n := m + rng.IntN(40)
		pairs := dna.PlantedPairs(rng, count, m, n, 0.5,
			dna.MutationModel{SubRate: 0.1, InsRate: 0.05, DelRate: 0.05})
		res, err := BulkScoresAffine[uint32](pairs, AffineOptions{Scoring: aff})
		if err != nil {
			return false
		}
		for i, p := range pairs {
			want := swa.ScoreAffine(p.X, p.Y, aff)
			if res.Scores[i] != want {
				t.Logf("pair %d: got %d want %d (m=%d n=%d)", i, res.Scores[i], want, m, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkScoresAffine64(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	aff := swa.AffineScoring{Match: 3, Mismatch: 2, GapOpen: 4, GapExtend: 1}
	pairs := dna.RandomPairs(rng, 100, 10, 60)
	res, err := BulkScoresAffine[uint64](pairs, AffineOptions{Scoring: aff})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if want := swa.ScoreAffine(p.X, p.Y, aff); res.Scores[i] != want {
			t.Fatalf("pair %d: got %d want %d", i, res.Scores[i], want)
		}
	}
}

// TestBulkScoresAffineDefaultsToLinear checks the zero-value option matches
// the paper's linear scheme.
func TestBulkScoresAffineDefaultsToLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	pairs := dna.RandomPairs(rng, 33, 8, 40)
	aff, err := BulkScoresAffine[uint32](pairs, AffineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := BulkScores[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if aff.Scores[i] != lin.Scores[i] {
			t.Fatalf("pair %d: affine-as-linear %d, linear %d", i, aff.Scores[i], lin.Scores[i])
		}
	}
}

func TestBulkScoresAffineErrors(t *testing.T) {
	if _, err := BulkScoresAffine[uint32](nil, AffineOptions{}); err == nil {
		t.Error("empty batch should fail")
	}
	rng := rand.New(rand.NewPCG(35, 36))
	ok := []dna.Pair{{X: dna.RandSeq(rng, 4), Y: dna.RandSeq(rng, 8)}}
	bad := AffineOptions{Scoring: swa.AffineScoring{Match: 2, GapOpen: 1, GapExtend: 2}}
	if _, err := BulkScoresAffine[uint32](ok, bad); err == nil {
		t.Error("extend > open should fail validation")
	}
	tooNarrow := AffineOptions{
		Scoring: swa.AffineScoring{Match: 1, Mismatch: 1, GapOpen: 200, GapExtend: 1},
		SBits:   4,
	}
	if _, err := BulkScoresAffine[uint32](ok, tooNarrow); err == nil {
		t.Error("gap penalty exceeding SBits should fail")
	}
}

func BenchmarkBulkScoresAffine32(b *testing.B) {
	pairs := benchPairs(b, 32, 128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkScoresAffine[uint32](pairs, AffineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 128, 1024)
}

func BenchmarkBulkScoresPos32(b *testing.B) {
	pairs := benchPairs(b, 32, 128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkScoresPos[uint32](pairs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 128, 1024)
}
