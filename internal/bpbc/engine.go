// Package bpbc implements the paper's core contribution: bulk Smith-Waterman
// scoring by Bitwise Parallel Bulk Computation. A batch of (pattern, text)
// pairs is split into lane groups of W pairs; each group is bit-transposed
// (W2B), the dynamic program is evaluated with the bit-sliced SW cell of
// §IV so that one pass over the matrix scores all W pairs simultaneously,
// and the running maxima are un-transposed back to integers (B2W).
//
// The package provides single-goroutine engines (the paper's "CPU
// implementation") for both lane widths, a multi-goroutine bulk driver (a
// beyond-paper extension the paper rules out of scope), and the conventional
// wordwise baseline it compares against.
package bpbc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitmat"
	"repro/internal/bitslice"
	"repro/internal/dna"
	"repro/internal/swa"
	"repro/internal/word"
)

// Options configures a bulk run.
type Options struct {
	// Scoring is the SW scheme; zero value means swa.PaperScoring.
	Scoring swa.Scoring
	// SBits is the score bit width; 0 selects bitslice.RequiredBits
	// (overflow-safe). Setting it to bitslice.PaperRequiredBits reproduces
	// the paper's configuration exactly.
	SBits int
	// Workers is the number of lane groups processed concurrently;
	// 0 or 1 is the paper's single-thread CPU setting.
	Workers int
}

func (o Options) scoring() swa.Scoring {
	if o.Scoring == (swa.Scoring{}) {
		return swa.PaperScoring
	}
	return o.Scoring
}

func (o Options) params(m int) (bitslice.Params, error) {
	sc := o.scoring()
	if err := sc.Validate(); err != nil {
		return bitslice.Params{}, err
	}
	s := o.SBits
	if s == 0 {
		s = bitslice.RequiredBits(uint(sc.Match), m)
	}
	p := bitslice.Params{
		S:        s,
		Match:    uint(sc.Match),
		Mismatch: uint(sc.Mismatch),
		Gap:      uint(sc.Gap),
	}
	if err := p.Validate(); err != nil {
		return bitslice.Params{}, err
	}
	return p, nil
}

// Timing is the per-stage wall-clock breakdown, matching the columns of the
// paper's Table IV (the CPU side has no H2G/G2H transfers).
type Timing struct {
	W2B time.Duration // wordwise -> bit-transpose conversion of inputs
	SWA time.Duration // the bit-sliced dynamic program
	B2W time.Duration // bit-untranspose of the resulting scores
}

// Total returns the summed stage time.
func (t Timing) Total() time.Duration { return t.W2B + t.SWA + t.B2W }

func (t *Timing) add(u Timing) {
	t.W2B += u.W2B
	t.SWA += u.SWA
	t.B2W += u.B2W
}

// Result is the outcome of a bulk scoring run.
type Result struct {
	// Scores[i] is the maximum local-alignment score of pairs[i].
	Scores []int
	Timing Timing
	// Lanes is the lane width used (32 or 64).
	Lanes int
	// SBits is the score bit width used.
	SBits int
}

// FilterAbove returns the indices whose score strictly exceeds tau — the
// paper's screening use (§III): survivors are re-aligned in detail on the
// CPU.
func (r *Result) FilterAbove(tau int) []int {
	var out []int
	for i, s := range r.Scores {
		if s > tau {
			out = append(out, i)
		}
	}
	return out
}

// checkUniform validates that all pairs share one (m, n) shape, which the
// bit-transposed layout requires within a lane group.
func checkUniform(pairs []dna.Pair) (m, n int, err error) {
	if len(pairs) == 0 {
		return 0, 0, fmt.Errorf("bpbc: no pairs")
	}
	m, n = len(pairs[0].X), len(pairs[0].Y)
	if m == 0 || n == 0 || m > n {
		return 0, 0, fmt.Errorf("bpbc: need 0 < m <= n, got m=%d n=%d", m, n)
	}
	for i, p := range pairs {
		if len(p.X) != m || len(p.Y) != n {
			return 0, 0, fmt.Errorf("bpbc: pair %d has shape (%d,%d), want (%d,%d)",
				i, len(p.X), len(p.Y), m, n)
		}
	}
	return m, n, nil
}

// groupState is the per-group working memory, reused across groups by one
// worker and recycled across whole BulkScores calls through a sync.Pool, so
// the steady-state hot path performs no per-group allocation at all.
type groupState[W word.Word] struct {
	par     bitslice.Params
	n       int
	prev    []W // (n+1)*s planes: row i-1
	cur     []W // (n+1)*s planes: row i
	best    bitslice.Num[W]
	scratch *bitslice.Scratch[W]
	unt     []W // lanes words for B2W

	// Transpose working set, reused across groups: the lane slice headers,
	// the W2B column scratch and the two transposed views themselves.
	xsSeqs, ysSeqs []dna.Seq
	col            []W
	xs, ys         dna.Transposed[W]
}

func newGroupState[W word.Word](par bitslice.Params, n int) *groupState[W] {
	lanes := word.Lanes[W]()
	return &groupState[W]{
		par:     par,
		n:       n,
		prev:    make([]W, (n+1)*par.S),
		cur:     make([]W, (n+1)*par.S),
		best:    bitslice.NewNum[W](par.S),
		scratch: bitslice.NewScratch[W](par.S),
		unt:     make([]W, lanes),
		xsSeqs:  make([]dna.Seq, 0, lanes),
		ysSeqs:  make([]dna.Seq, 0, lanes),
		col:     make([]W, lanes),
	}
}

// statePool32/64 recycle groupStates across BulkScores calls. Two pools keyed
// by lane width keep the stored type homogeneous per pool; a state whose
// (params, n) shape doesn't match the current run is simply dropped for the
// GC, so reuse is an optimisation, never a correctness dependency.
var statePool32, statePool64 sync.Pool

func statePool[W word.Word]() *sync.Pool {
	if word.Lanes[W]() == 64 {
		return &statePool64
	}
	return &statePool32
}

func getGroupState[W word.Word](par bitslice.Params, n int) *groupState[W] {
	if v := statePool[W]().Get(); v != nil {
		if g, ok := v.(*groupState[W]); ok && g.par == par && g.n == n {
			return g
		}
	}
	return newGroupState[W](par, n)
}

func putGroupState[W word.Word](g *groupState[W]) {
	// Drop the sequence references so a pooled state does not pin the last
	// batch's data between runs.
	clear(g.xsSeqs[:cap(g.xsSeqs)])
	clear(g.ysSeqs[:cap(g.ysSeqs)])
	g.xsSeqs, g.ysSeqs = g.xsSeqs[:0], g.ysSeqs[:0]
	statePool[W]().Put(g)
}

func (g *groupState[W]) reset() {
	for i := range g.prev {
		g.prev[i] = 0
	}
	for i := range g.cur {
		g.cur[i] = 0
	}
	g.best.Zero()
}

// num returns the s-plane view of cell j in row.
func num[W word.Word](row []W, j, s int) bitslice.Num[W] {
	return bitslice.Num[W](row[j*s : (j+1)*s : (j+1)*s])
}

// runGroup scores one lane group of pairs (already bit-transposed) and
// leaves the per-lane maxima in g.best.
func runGroup[W word.Word](g *groupState[W], xs, ys *dna.Transposed[W]) {
	s := g.par.S
	m, n := xs.Len(), ys.Len()
	g.reset()
	for i := 1; i <= m; i++ {
		xH, xL := xs.H[i-1], xs.L[i-1]
		// Row border d[i][0] = 0 is already zero in cur[0] (reset keeps
		// borders zero because SWCell never writes cell 0).
		for j := 1; j <= n; j++ {
			e := bitslice.MismatchMask(xH, xL, ys.H[j-1], ys.L[j-1])
			bitslice.SWCell(
				num(g.cur, j, s),
				num(g.prev, j, s),   // up:   d[i-1][j]
				num(g.cur, j-1, s),  // left: d[i][j-1]
				num(g.prev, j-1, s), // diag: d[i-1][j-1]
				e, g.par, g.scratch)
			bitslice.Max(g.best, g.best, num(g.cur, j, s))
		}
		g.prev, g.cur = g.cur, g.prev
	}
}

// extractScores un-transposes g.best into per-lane integers (B2W).
func extractScores[W word.Word](g *groupState[W], count int, out []int) {
	for i := range g.unt {
		g.unt[i] = 0
	}
	copy(g.unt[:g.par.S], g.best)
	bitmat.PlanesToValuesInPlace(g.unt, g.par.S)
	for k := 0; k < count; k++ {
		out[k] = int(g.unt[k])
	}
}

// failGroup is a test seam: when non-nil, it is consulted before scoring
// each lane group so tests can force the parallel driver's error path, which
// is unreachable through the public API (inputs are fully validated before
// any group runs).
var failGroup func(gi int) error

// BulkScores computes the maximum local-alignment score of every pair using
// the BPBC engine with lane width W. All pairs must share one (m, n) shape.
//
// If a group fails mid-run, the returned Result is non-nil alongside the
// error: its Scores are incomplete, but Timing aggregates every group that
// finished, so callers can still account for the work done.
func BulkScores[W word.Word](pairs []dna.Pair, opt Options) (*Result, error) {
	m, n, err := checkUniform(pairs)
	if err != nil {
		return nil, err
	}
	par, err := opt.params(m)
	if err != nil {
		return nil, err
	}
	lanes := word.Lanes[W]()
	res := &Result{
		Scores: make([]int, len(pairs)),
		Lanes:  lanes,
		SBits:  par.S,
	}

	groups := (len(pairs) + lanes - 1) / lanes
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}

	if workers == 1 {
		g := getGroupState[W](par, n)
		defer putGroupState(g)
		for gi := 0; gi < groups; gi++ {
			if err := scoreOneGroup(g, pairs, gi, lanes, res); err != nil {
				return res, err
			}
		}
		return res, nil
	}

	// Parallel driver: each worker owns its state and a disjoint result
	// range, so no synchronisation beyond the work channel is needed.
	work := make(chan int)
	errs := make(chan error, workers)
	timings := make(chan Timing, workers)
	for w := 0; w < workers; w++ {
		go func() {
			g := getGroupState[W](par, n)
			defer putGroupState(g)
			var local Timing
			for gi := range work {
				if err := scoreOneGroupTimed(g, pairs, gi, lanes, res, &local); err != nil {
					errs <- err
					// Drain remaining work so the sender never blocks.
					for range work {
					}
					timings <- local
					return
				}
			}
			errs <- nil
			timings <- local
		}()
	}
	for gi := 0; gi < groups; gi++ {
		work <- gi
	}
	close(work)
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
		res.Timing.add(<-timings)
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

func scoreOneGroup[W word.Word](g *groupState[W], pairs []dna.Pair, gi, lanes int, res *Result) error {
	return scoreOneGroupTimed(g, pairs, gi, lanes, res, &res.Timing)
}

func scoreOneGroupTimed[W word.Word](g *groupState[W], pairs []dna.Pair, gi, lanes int, res *Result, tm *Timing) error {
	if failGroup != nil {
		if err := failGroup(gi); err != nil {
			return err
		}
	}
	lo := gi * lanes
	hi := min(lo+lanes, len(pairs))
	g.xsSeqs, g.ysSeqs = g.xsSeqs[:0], g.ysSeqs[:0]
	for i := lo; i < hi; i++ {
		g.xsSeqs = append(g.xsSeqs, pairs[i].X)
		g.ysSeqs = append(g.ysSeqs, pairs[i].Y)
	}

	t0 := time.Now()
	if err := dna.TransposeGroupInto(&g.xs, g.col, g.xsSeqs); err != nil {
		return err
	}
	if err := dna.TransposeGroupInto(&g.ys, g.col, g.ysSeqs); err != nil {
		return err
	}
	t1 := time.Now()
	runGroup(g, &g.xs, &g.ys)
	t2 := time.Now()
	extractScores(g, hi-lo, res.Scores[lo:hi])
	t3 := time.Now()

	tm.W2B += t1.Sub(t0)
	tm.SWA += t2.Sub(t1)
	tm.B2W += t3.Sub(t2)
	return nil
}
