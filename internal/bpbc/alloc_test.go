package bpbc

import (
	"runtime/debug"
	"testing"

	"repro/internal/dna"
)

// TestScoreGroupZeroSteadyStateAllocs is the issue's allocation bar: once a
// worker owns a groupState, scoring one lane group must not allocate at all —
// the transpose views, column scratch and DP rows are all reused in place.
// The direct call bypasses the sync.Pool so the result is deterministic (a GC
// clearing the pool cannot fake an allocation).
func TestScoreGroupZeroSteadyStateAllocs(t *testing.T) {
	pairs := makePairs(32, 16, 32)
	par, err := Options{}.params(16)
	if err != nil {
		t.Fatal(err)
	}
	g := newGroupState[uint32](par, 32)
	res := &Result{Scores: make([]int, len(pairs))}
	var tm Timing

	// One warm call initialises lazy package state (the cached bitmat plan).
	if err := scoreOneGroupTimed(g, pairs, 0, 32, res, &tm); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := scoreOneGroupTimed(g, pairs, 0, 32, res, &tm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("scoreOneGroupTimed allocates %.1f objects per group in steady state, want 0", allocs)
	}
}

// TestBulkScoresAllocsIndependentOfGroups checks the pool actually feeds
// BulkScores: per-call allocations are a small fixed overhead (the Result and
// its score slice), not proportional to the number of lane groups. GC is
// disabled during the measurement so a sweep cannot empty the sync.Pool and
// masquerade as a regression — with the pool intact, an 8-group call must
// allocate no more than a 1-group call.
func TestBulkScoresAllocsIndependentOfGroups(t *testing.T) {
	if raceEnabled {
		// Under -race, sync.Pool deliberately drops and misses at random to
		// widen race coverage, so pool-hit allocation counts are not
		// meaningful. TestScoreGroupZeroSteadyStateAllocs still runs: it
		// bypasses the pool and is deterministic either way.
		t.Skip("sync.Pool behaviour is randomised under the race detector")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	opt := Options{Workers: 1}
	measure := func(groups int) float64 {
		pairs := makePairs(groups*32, 16, 32)
		if _, err := BulkScores[uint32](pairs, opt); err != nil {
			t.Fatal(err) // warm the pool and the cached plan
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := BulkScores[uint32](pairs, opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	one := measure(1)
	eight := measure(8)
	if eight > one {
		t.Fatalf("BulkScores allocations grow with group count: %.1f for 1 group, %.1f for 8; per-group state is not being reused", one, eight)
	}
	t.Logf("allocs/call: 1 group %.1f, 8 groups %.1f", one, eight)
}

func makePairs(count, m, n int) []dna.Pair {
	pairs := make([]dna.Pair, count)
	for i := range pairs {
		x := make(dna.Seq, m)
		y := make(dna.Seq, n)
		for j := range x {
			x[j] = dna.Base((i + j) % 4)
		}
		for j := range y {
			y[j] = dna.Base((i*3 + j*7) % 4)
		}
		pairs[i] = dna.Pair{X: x, Y: y}
	}
	return pairs
}
