package bpbc

import (
	"fmt"
	"time"

	"repro/internal/alphabet"
	"repro/internal/bitslice"
	"repro/internal/swa"
	"repro/internal/word"
)

// GenericOptions configures the arbitrary-alphabet bulk engine.
type GenericOptions struct {
	Scoring swa.Scoring // zero value = swa.PaperScoring
	SBits   int         // 0 = bitslice.RequiredBits
}

// BulkScoresGeneric scores pairs over any ε-bit alphabet — the paper's §IV
// formulation with ε left general instead of fixed at 2. The per-cell cost
// grows only in the mismatch flag (2ε-1 operations), so protein scoring
// (ε=5) costs three word operations per cell more than DNA.
func BulkScoresGeneric[W word.Word](a *alphabet.Alphabet, pairs []alphabet.Pair, opt GenericOptions) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("bpbc: nil alphabet")
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("bpbc: no pairs")
	}
	m, n := len(pairs[0].X), len(pairs[0].Y)
	if m == 0 || n == 0 || m > n {
		return nil, fmt.Errorf("bpbc: need 0 < m <= n, got m=%d n=%d", m, n)
	}
	for i, p := range pairs {
		if len(p.X) != m || len(p.Y) != n {
			return nil, fmt.Errorf("bpbc: pair %d has shape (%d,%d), want (%d,%d)",
				i, len(p.X), len(p.Y), m, n)
		}
		for _, c := range p.X {
			if int(c) >= a.Size() {
				return nil, fmt.Errorf("bpbc: pair %d pattern has code %d outside alphabet %s", i, c, a.Name())
			}
		}
		for _, c := range p.Y {
			if int(c) >= a.Size() {
				return nil, fmt.Errorf("bpbc: pair %d text has code %d outside alphabet %s", i, c, a.Name())
			}
		}
	}
	sc := opt.Scoring
	if sc == (swa.Scoring{}) {
		sc = swa.PaperScoring
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	s := opt.SBits
	if s == 0 {
		s = bitslice.RequiredBits(uint(sc.Match), m)
	}
	par := bitslice.Params{S: s, Match: uint(sc.Match), Mismatch: uint(sc.Mismatch), Gap: uint(sc.Gap)}
	if err := par.Validate(); err != nil {
		return nil, err
	}

	lanes := word.Lanes[W]()
	eps := a.Bits()
	res := &Result{Scores: make([]int, len(pairs)), Lanes: lanes, SBits: s}
	g := newGroupState[W](par, n)
	xCol := make([]W, eps)

	groups := (len(pairs) + lanes - 1) / lanes
	for gi := 0; gi < groups; gi++ {
		lo := gi * lanes
		hi := min(lo+lanes, len(pairs))
		xsSeqs := make([]alphabet.Seq, hi-lo)
		ysSeqs := make([]alphabet.Seq, hi-lo)
		for i := lo; i < hi; i++ {
			xsSeqs[i-lo] = pairs[i].X
			ysSeqs[i-lo] = pairs[i].Y
		}
		t0 := time.Now()
		xs, err := alphabet.TransposeGroup[W](a, xsSeqs)
		if err != nil {
			return nil, err
		}
		ys, err := alphabet.TransposeGroup[W](a, ysSeqs)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()

		g.reset()
		for i := 1; i <= m; i++ {
			for b := 0; b < eps; b++ {
				xCol[b] = xs.Planes[b][i-1]
			}
			for j := 1; j <= n; j++ {
				var e W
				for b := 0; b < eps; b++ {
					e |= xCol[b] ^ ys.Planes[b][j-1]
				}
				bitslice.SWCell(
					num(g.cur, j, s),
					num(g.prev, j, s),
					num(g.cur, j-1, s),
					num(g.prev, j-1, s),
					e, par, g.scratch)
				bitslice.Max(g.best, g.best, num(g.cur, j, s))
			}
			g.prev, g.cur = g.cur, g.prev
		}
		t2 := time.Now()
		extractScores(g, hi-lo, res.Scores[lo:hi])
		t3 := time.Now()

		res.Timing.W2B += t1.Sub(t0)
		res.Timing.SWA += t2.Sub(t1)
		res.Timing.B2W += t3.Sub(t2)
	}
	return res, nil
}
