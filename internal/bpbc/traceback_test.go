package bpbc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/swa"
)

// rescore recomputes an alignment's score from its rendered columns.
func rescore(a swa.Alignment, sc swa.Scoring) int {
	s := 0
	for i := 0; i < len(a.AlignedX); i++ {
		cx, cy := a.AlignedX[i], a.AlignedY[i]
		switch {
		case cx == '-' || cy == '-':
			s -= sc.Gap
		case cx == cy:
			s += sc.Match
		default:
			s -= sc.Mismatch
		}
	}
	return s
}

func TestBulkAlignMatchesReferenceScores(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 60))
		count := 1 + rng.IntN(40)
		m := 1 + rng.IntN(14)
		n := m + rng.IntN(40)
		pairs := dna.PlantedPairs(rng, count, m, n, 0.6, dna.MutationModel{SubRate: 0.15})
		aligns, err := BulkAlign[uint32](pairs, Options{})
		if err != nil {
			return false
		}
		for i, p := range pairs {
			want := swa.Score(p.X, p.Y, swa.PaperScoring)
			a := aligns[i]
			if a.Score != want {
				t.Logf("pair %d: score %d want %d", i, a.Score, want)
				return false
			}
			// The reconstructed alignment must itself score to the
			// reported value.
			if want > 0 && rescore(a, swa.PaperScoring) != want {
				t.Logf("pair %d: alignment rescored to %d, want %d (%q/%q)",
					i, rescore(a, swa.PaperScoring), want, a.AlignedX, a.AlignedY)
				return false
			}
			// Coordinates must be consistent with the rendered strings.
			gapsInX := 0
			for _, c := range a.AlignedX {
				if c == '-' {
					gapsInX++
				}
			}
			if a.XEnd-a.XStart != len(a.AlignedX)-gapsInX {
				t.Logf("pair %d: X span inconsistent", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkAlign64(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	pairs := dna.PlantedPairs(rng, 70, 10, 36, 0.8, dna.MutationModel{})
	aligns, err := BulkAlign[uint64](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if aligns[i].Score != swa.Score(p.X, p.Y, swa.PaperScoring) {
			t.Fatalf("pair %d score mismatch", i)
		}
	}
}

// TestBulkAlignExactPlant checks a perfect plant reconstructs a gapless
// full-identity alignment at the planted coordinates.
func TestBulkAlignExactPlant(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	const m, n, at = 16, 120, 40
	x := dna.RandSeq(rng, m)
	y := dna.RandSeq(rng, n)
	copy(y[at:], x)
	pairs := make([]dna.Pair, 33) // exercise a partial second group
	for i := range pairs {
		pairs[i] = dna.Pair{X: x, Y: y}
	}
	aligns, err := BulkAlign[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range aligns {
		if a.Score != swa.PaperScoring.MaxScore(m) {
			t.Fatalf("lane %d: score %d", i, a.Score)
		}
		if a.Gaps != 0 || a.Mismatches != 0 || a.Matches != m {
			t.Fatalf("lane %d: stats %d/%d/%d", i, a.Matches, a.Mismatches, a.Gaps)
		}
		if a.YStart != at || a.YEnd != at+m || a.XStart != 0 || a.XEnd != m {
			t.Fatalf("lane %d: coords X[%d:%d] Y[%d:%d]", i, a.XStart, a.XEnd, a.YStart, a.YEnd)
		}
	}
}

func TestBulkAlignZeroScore(t *testing.T) {
	pairs := []dna.Pair{{
		X: dna.Seq{dna.A, dna.A},
		Y: dna.Seq{dna.C, dna.C, dna.C},
	}}
	aligns, err := BulkAlign[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aligns[0].Score != 0 || aligns[0].AlignedX != "" {
		t.Errorf("zero-score alignment wrong: %+v", aligns[0])
	}
}

func TestBulkAlignCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(65, 66))
	pairs := []dna.Pair{{X: dna.RandSeq(rng, 1024), Y: dna.RandSeq(rng, 8192)}}
	if _, err := BulkAlign[uint32](pairs, Options{}); err == nil {
		t.Error("oversized matrix should hit the traceback cap")
	}
	if _, err := BulkAlign[uint32](nil, Options{}); err == nil {
		t.Error("empty batch should fail")
	}
	ok := []dna.Pair{{X: dna.RandSeq(rng, 4), Y: dna.RandSeq(rng, 8)}}
	if _, err := BulkAlign[uint32](ok, Options{SBits: 1}); err == nil {
		t.Error("bad SBits should fail")
	}
}

// TestPosThenBandedRealign exercises the recommended large-text flow: bulk
// argmax, then a banded re-alignment around the hit diagonal.
func TestPosThenBandedRealign(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 68))
	const m, n = 24, 2048
	x := dna.RandSeq(rng, m)
	pairs := make([]dna.Pair, 32)
	plantAt := make([]int, 32)
	for i := range pairs {
		y := dna.RandSeq(rng, n)
		at := rng.IntN(n - m)
		copy(y[at:], x)
		pairs[i] = dna.Pair{X: x, Y: y}
		plantAt[i] = at
	}
	pos, err := BulkScoresPos[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		band := swa.Band{Offset: pos.EndJ[i] - pos.EndI[i], Width: 8}
		a, err := swa.AlignBanded(pairs[i].X, pairs[i].Y, swa.PaperScoring, band)
		if err != nil {
			t.Fatal(err)
		}
		if a.Score != pos.Scores[i] {
			t.Fatalf("pair %d: banded realign %d, bulk %d", i, a.Score, pos.Scores[i])
		}
		if a.YStart != plantAt[i] {
			t.Fatalf("pair %d: realigned at %d, planted at %d", i, a.YStart, plantAt[i])
		}
	}
}

func BenchmarkBulkAlign32(b *testing.B) {
	pairs := benchPairs(b, 32, 64, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkAlign[uint32](pairs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 64, 512)
}
