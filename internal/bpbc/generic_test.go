package bpbc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/alphabet"
	"repro/internal/swa"
)

func randAlphaSeq(rng *rand.Rand, a *alphabet.Alphabet, n int) alphabet.Seq {
	s := make(alphabet.Seq, n)
	for i := range s {
		s[i] = uint16(rng.IntN(a.Size()))
	}
	return s
}

func TestGenericMatchesReferenceProtein(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 80))
		count := 1 + rng.IntN(40)
		m := 1 + rng.IntN(14)
		n := m + rng.IntN(36)
		pairs := make([]alphabet.Pair, count)
		for i := range pairs {
			x := randAlphaSeq(rng, alphabet.Protein, m)
			y := randAlphaSeq(rng, alphabet.Protein, n)
			if rng.Uint32()&1 == 0 {
				copy(y[rng.IntN(n-m+1):], x) // plant a homolog
			}
			pairs[i] = alphabet.Pair{X: x, Y: y}
		}
		res, err := BulkScoresGeneric[uint32](alphabet.Protein, pairs, GenericOptions{})
		if err != nil {
			return false
		}
		for i, p := range pairs {
			want := alphabet.Score(p.X, p.Y, swa.PaperScoring)
			if res.Scores[i] != want {
				t.Logf("pair %d: got %d want %d", i, res.Scores[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGenericMatchesDNAEngine(t *testing.T) {
	// The generic engine at ε=2 must agree with the specialised DNA engine.
	rng := rand.New(rand.NewPCG(81, 82))
	const count, m, n = 40, 12, 48
	dnaPairs := make([]alphabet.Pair, count)
	for i := range dnaPairs {
		x := randAlphaSeq(rng, alphabet.DNA, m)
		y := randAlphaSeq(rng, alphabet.DNA, n)
		dnaPairs[i] = alphabet.Pair{X: x, Y: y}
	}
	gen, err := BulkScoresGeneric[uint64](alphabet.DNA, dnaPairs, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dnaPairs {
		want := alphabet.Score(p.X, p.Y, swa.PaperScoring)
		if gen.Scores[i] != want {
			t.Fatalf("pair %d: generic %d, reference %d", i, gen.Scores[i], want)
		}
	}
}

func TestGenericCustomScoringAndWidth(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 84))
	sc := swa.Scoring{Match: 4, Mismatch: 2, Gap: 1}
	pairs := make([]alphabet.Pair, 16)
	for i := range pairs {
		pairs[i] = alphabet.Pair{
			X: randAlphaSeq(rng, alphabet.Protein, 10),
			Y: randAlphaSeq(rng, alphabet.Protein, 30),
		}
	}
	res, err := BulkScoresGeneric[uint32](alphabet.Protein, pairs, GenericOptions{Scoring: sc, SBits: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if want := alphabet.Score(p.X, p.Y, sc); res.Scores[i] != want {
			t.Fatalf("pair %d: got %d want %d", i, res.Scores[i], want)
		}
	}
	if res.SBits != 7 {
		t.Errorf("SBits = %d", res.SBits)
	}
}

func TestGenericErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(85, 86))
	ok := []alphabet.Pair{{
		X: randAlphaSeq(rng, alphabet.Protein, 4),
		Y: randAlphaSeq(rng, alphabet.Protein, 8),
	}}
	if _, err := BulkScoresGeneric[uint32](nil, ok, GenericOptions{}); err == nil {
		t.Error("nil alphabet should fail")
	}
	if _, err := BulkScoresGeneric[uint32](alphabet.Protein, nil, GenericOptions{}); err == nil {
		t.Error("empty batch should fail")
	}
	ragged := []alphabet.Pair{ok[0], {X: randAlphaSeq(rng, alphabet.Protein, 5), Y: ok[0].Y}}
	if _, err := BulkScoresGeneric[uint32](alphabet.Protein, ragged, GenericOptions{}); err == nil {
		t.Error("ragged batch should fail")
	}
	outOfRange := []alphabet.Pair{{X: alphabet.Seq{25}, Y: alphabet.Seq{0, 1}}}
	if _, err := BulkScoresGeneric[uint32](alphabet.Protein, outOfRange, GenericOptions{}); err == nil {
		t.Error("out-of-alphabet code in X should fail")
	}
	outOfRangeY := []alphabet.Pair{{X: alphabet.Seq{1}, Y: alphabet.Seq{0, 25}}}
	if _, err := BulkScoresGeneric[uint32](alphabet.Protein, outOfRangeY, GenericOptions{}); err == nil {
		t.Error("out-of-alphabet code in Y should fail")
	}
	bad := GenericOptions{Scoring: swa.Scoring{Match: -1}}
	if _, err := BulkScoresGeneric[uint32](alphabet.Protein, ok, bad); err == nil {
		t.Error("invalid scoring should fail")
	}
	if _, err := BulkScoresGeneric[uint32](alphabet.Protein, ok, GenericOptions{SBits: 1}); err == nil {
		t.Error("too-narrow SBits should fail")
	}
}

func BenchmarkGenericProtein(b *testing.B) {
	rng := rand.New(rand.NewPCG(87, 88))
	pairs := make([]alphabet.Pair, 32)
	for i := range pairs {
		pairs[i] = alphabet.Pair{
			X: randAlphaSeq(rng, alphabet.Protein, 128),
			Y: randAlphaSeq(rng, alphabet.Protein, 1024),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkScoresGeneric[uint32](alphabet.Protein, pairs, GenericOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 128, 1024)
}
