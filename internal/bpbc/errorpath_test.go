package bpbc

import (
	"errors"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dna"
)

// withFailGroup installs the test seam for one test and removes it after.
func withFailGroup(t *testing.T, f func(gi int) error) {
	t.Helper()
	failGroup = f
	t.Cleanup(func() { failGroup = nil })
}

// waitGoroutines polls until the goroutine count drops back to at most base,
// tolerating the runtime's own background goroutines settling.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), base)
}

// TestParallelDriverErrorPath forces a mid-run group failure and checks the
// driver's guarantees: the error surfaces, the work channel is drained so
// the sender never blocks, no worker goroutine leaks, and the returned
// Result aggregates the Timing of every group that finished.
func TestParallelDriverErrorPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	// 16 groups of 32 lanes: plenty of work queued behind the failure so a
	// non-draining worker would deadlock the sender.
	pairs := dna.RandomPairs(rng, 16*32, 16, 64)

	boom := errors.New("group detonated")
	var scored atomic.Int64
	withFailGroup(t, func(gi int) error {
		if gi == 3 {
			return boom
		}
		scored.Add(1)
		return nil
	})

	base := runtime.NumGoroutine()
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = BulkScores[uint32](pairs, Options{Workers: 4})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BulkScores deadlocked on the error path (work channel not drained)")
	}

	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected group failure", err)
	}
	if res == nil {
		t.Fatal("error path returned a nil Result; want partial Result with Timing")
	}
	if scored.Load() == 0 {
		t.Fatal("no group finished before the failure; test is vacuous")
	}
	if res.Timing.Total() <= 0 {
		t.Errorf("partial Result.Timing = %+v, want the finished groups' time aggregated", res.Timing)
	}
	waitGoroutines(t, base)
}

// TestParallelDriverAllWorkersFail makes every group fail so all workers hit
// the error path at once: exactly one error wins, and nothing leaks.
func TestParallelDriverAllWorkersFail(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 0))
	pairs := dna.RandomPairs(rng, 8*32, 8, 32)
	withFailGroup(t, func(gi int) error {
		return errors.New("every group fails")
	})

	base := runtime.NumGoroutine()
	res, err := BulkScores[uint32](pairs, Options{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "every group fails") {
		t.Fatalf("err = %v", err)
	}
	if res == nil {
		t.Fatal("want a partial Result even when everything failed")
	}
	waitGoroutines(t, base)
}

// TestSerialDriverErrorReturnsPartialResult pins the serial path to the same
// contract as the parallel one.
func TestSerialDriverErrorReturnsPartialResult(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 0))
	pairs := dna.RandomPairs(rng, 4*32, 8, 32)
	boom := errors.New("second group fails")
	withFailGroup(t, func(gi int) error {
		if gi == 1 {
			return boom
		}
		return nil
	})
	res, err := BulkScores[uint32](pairs, Options{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if res == nil || res.Timing.Total() <= 0 {
		t.Fatalf("res = %+v, want partial Result with group 0's Timing", res)
	}
}
