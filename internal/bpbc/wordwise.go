package bpbc

import (
	"time"

	"repro/internal/dna"
	"repro/internal/swa"
)

// WordwiseScores is the conventional baseline the paper compares against:
// each pair is scored independently with the plain integer recurrence
// (one 32-bit word per matrix cell, no transposes). Workers > 1 spreads
// pairs over goroutines; the paper's configuration is Workers = 1.
func WordwiseScores(pairs []dna.Pair, opt Options) (*Result, error) {
	if _, _, err := checkUniform(pairs); err != nil {
		return nil, err
	}
	sc := opt.scoring()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Scores: make([]int, len(pairs)), Lanes: 1, SBits: 32}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	start := time.Now()
	if workers == 1 {
		for i, p := range pairs {
			res.Scores[i] = swa.Score(p.X, p.Y, sc)
		}
	} else {
		work := make(chan int)
		done := make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range work {
					res.Scores[i] = swa.Score(pairs[i].X, pairs[i].Y, sc)
				}
				done <- struct{}{}
			}()
		}
		for i := range pairs {
			work <- i
		}
		close(work)
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	res.Timing.SWA = time.Since(start)
	return res, nil
}

// ScreenAndAlign runs the paper's full use case: a bulk BPBC screen at
// threshold tau followed by detailed CPU alignment of the survivors.
// The W type parameter selects the screen's lane width.
func ScreenAndAlign[W wordConstraint](pairs []dna.Pair, tau int, opt Options) ([]ScreenHit, error) {
	res, err := BulkScores[W](pairs, opt)
	if err != nil {
		return nil, err
	}
	sc := opt.scoring()
	var hits []ScreenHit
	for _, idx := range res.FilterAbove(tau) {
		a := swa.Align(pairs[idx].X, pairs[idx].Y, sc)
		hits = append(hits, ScreenHit{Index: idx, Score: res.Scores[idx], Alignment: a})
	}
	return hits, nil
}

// ScreenHit is one pair that passed the bulk screen, with its detailed
// alignment.
type ScreenHit struct {
	Index     int
	Score     int // score reported by the bulk screen
	Alignment swa.Alignment
}

// wordConstraint mirrors word.Word locally so the public generic signature
// reads cleanly.
type wordConstraint interface {
	~uint32 | ~uint64
}
