package bpbc

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/bitslice"
	"repro/internal/dna"
	"repro/internal/swa"
	"repro/internal/word"
)

// AffineOptions configures the bit-sliced Gotoh (affine-gap) bulk engine, a
// beyond-paper extension (the paper's recurrence is linear-gap only and
// names such couplings as future work). The recurrence
//
//	E[i][j] = max(E[i][j-1] - extend, H[i][j-1] - open)
//	F[i][j] = max(F[i-1][j] - extend, H[i-1][j] - open)
//	H[i][j] = max(0, H[i-1][j-1] + w(x,y), E[i][j], F[i][j])
//
// is evaluated entirely with the paper's saturating bit-sliced primitives.
// Saturation is sound here for the same reason as in matching_B: clamping E
// and F at zero can only replace a negative value with 0, and 0 already
// participates in H's outer max; the clamped chains satisfy
// E' = max(E_true, 0) inductively, so H is unchanged.
type AffineOptions struct {
	Scoring swa.AffineScoring // zero value = PaperScoring.Linear()
	SBits   int               // 0 = bitslice.RequiredBits
}

func (o AffineOptions) scoring() swa.AffineScoring {
	if o.Scoring == (swa.AffineScoring{}) {
		return swa.PaperScoring.Linear()
	}
	return o.Scoring
}

// BulkScoresAffine computes max local-alignment scores under affine gaps for
// every pair, W lanes at a time.
func BulkScoresAffine[W word.Word](pairs []dna.Pair, opt AffineOptions) (*Result, error) {
	m, n, err := checkUniform(pairs)
	if err != nil {
		return nil, err
	}
	sc := opt.scoring()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	s := opt.SBits
	if s == 0 {
		s = bitslice.RequiredBits(uint(sc.Match), m)
	}
	par := bitslice.Params{S: s, Match: uint(sc.Match), Mismatch: uint(sc.Mismatch)}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if bits.Len(uint(sc.GapOpen)) > s || bits.Len(uint(sc.GapExtend)) > s {
		return nil, fmt.Errorf("bpbc: affine gap penalties do not fit in %d bits", s)
	}
	lanes := word.Lanes[W]()
	res := &Result{Scores: make([]int, len(pairs)), Lanes: lanes, SBits: s}

	// Row state: H and F for the previous and current row, E as a running
	// register within a row.
	hPrev := make([]W, (n+1)*s)
	hCur := make([]W, (n+1)*s)
	fPrev := make([]W, (n+1)*s)
	fCur := make([]W, (n+1)*s)
	e := bitslice.NewNum[W](s)
	tmp := bitslice.NewNum[W](s)
	best := bitslice.NewNum[W](s)
	scratch := bitslice.NewScratch[W](s)
	unt := make([]W, lanes)

	groups := (len(pairs) + lanes - 1) / lanes
	for gi := 0; gi < groups; gi++ {
		lo := gi * lanes
		hi := min(lo+lanes, len(pairs))
		xsSeqs := make([]dna.Seq, hi-lo)
		ysSeqs := make([]dna.Seq, hi-lo)
		for i := lo; i < hi; i++ {
			xsSeqs[i-lo] = pairs[i].X
			ysSeqs[i-lo] = pairs[i].Y
		}
		t0 := time.Now()
		xs, err := dna.TransposeGroup[W](xsSeqs)
		if err != nil {
			return nil, err
		}
		ys, err := dna.TransposeGroup[W](ysSeqs)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()

		zero(hPrev)
		zero(hCur)
		zero(fPrev)
		zero(fCur)
		best.Zero()
		for i := 1; i <= m; i++ {
			xH, xL := xs.H[i-1], xs.L[i-1]
			e.Zero()
			for j := 1; j <= n; j++ {
				// E = max(E - extend, H[i][j-1] - open), clamped at 0.
				bitslice.SSubScalar(e, e, uint(sc.GapExtend))
				bitslice.SSubScalar(tmp, num(hCur, j-1, s), uint(sc.GapOpen))
				bitslice.Max(e, e, tmp)
				// F = max(F[i-1][j] - extend, H[i-1][j] - open), clamped.
				f := num(fCur, j, s)
				bitslice.SSubScalar(f, num(fPrev, j, s), uint(sc.GapExtend))
				bitslice.SSubScalar(tmp, num(hPrev, j, s), uint(sc.GapOpen))
				bitslice.Max(f, f, tmp)
				// H = max(matching(H_diag), E, F); matching saturates, and
				// 0 is implied by the saturating operands.
				mmask := bitslice.MismatchMask(xH, xL, ys.H[j-1], ys.L[j-1])
				h := num(hCur, j, s)
				bitslice.Matching(h, num(hPrev, j-1, s), mmask, par, scratch)
				bitslice.Max(h, h, e)
				bitslice.Max(h, h, f)
				bitslice.Max(best, best, h)
			}
			hPrev, hCur = hCur, hPrev
			fPrev, fCur = fCur, fPrev
		}
		t2 := time.Now()

		extractPlanes(best, unt, hi-lo, res.Scores[lo:hi])
		t3 := time.Now()

		res.Timing.W2B += t1.Sub(t0)
		res.Timing.SWA += t2.Sub(t1)
		res.Timing.B2W += t3.Sub(t2)
	}
	return res, nil
}

func zero[W word.Word](w []W) {
	for i := range w {
		w[i] = 0
	}
}
