//go:build !race

package bpbc

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
