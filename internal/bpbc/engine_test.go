package bpbc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/bitslice"
	"repro/internal/dna"
	"repro/internal/swa"
)

func refScores(pairs []dna.Pair, sc swa.Scoring) []int {
	out := make([]int, len(pairs))
	for i, p := range pairs {
		out[i] = swa.Score(p.X, p.Y, sc)
	}
	return out
}

func TestBulkScoresMatchesReference32(t *testing.T) {
	testBulkMatchesReference[uint32](t)
}

func TestBulkScoresMatchesReference64(t *testing.T) {
	testBulkMatchesReference[uint64](t)
}

func testBulkMatchesReference[W wordConstraint](t *testing.T) {
	t.Helper()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		count := 1 + rng.IntN(70)
		m := 1 + rng.IntN(20)
		n := m + rng.IntN(60)
		pairs := dna.PlantedPairs(rng, count, m, n, 0.5,
			dna.MutationModel{SubRate: 0.1})
		res, err := BulkScores[W](pairs, Options{})
		if err != nil {
			t.Logf("BulkScores error: %v", err)
			return false
		}
		want := refScores(pairs, swa.PaperScoring)
		for i := range want {
			if res.Scores[i] != want[i] {
				t.Logf("pair %d: got %d want %d (m=%d n=%d count=%d)",
					i, res.Scores[i], want[i], m, n, count)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkScoresCustomScoring(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	sc := swa.Scoring{Match: 3, Mismatch: 2, Gap: 1}
	pairs := dna.RandomPairs(rng, 40, 12, 48)
	res, err := BulkScores[uint32](pairs, Options{Scoring: sc})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, sc)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d: got %d want %d", i, res.Scores[i], want[i])
		}
	}
	if res.SBits != bitslice.RequiredBits(3, 12) {
		t.Errorf("SBits = %d, want %d", res.SBits, bitslice.RequiredBits(3, 12))
	}
}

func TestBulkScoresParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	pairs := dna.RandomPairs(rng, 200, 16, 64)
	seq, err := BulkScores[uint32](pairs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BulkScores[uint32](pairs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Scores {
		if seq.Scores[i] != par.Scores[i] {
			t.Fatalf("pair %d: sequential %d, parallel %d", i, seq.Scores[i], par.Scores[i])
		}
	}
}

func TestBulkScoresPartialLastGroup(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	// 33 pairs on a 32-lane engine: second group has one real lane.
	pairs := dna.RandomPairs(rng, 33, 8, 32)
	res, err := BulkScores[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, swa.PaperScoring)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d: got %d want %d", i, res.Scores[i], want[i])
		}
	}
}

func TestBulkScoresPerfectMatchHitsMaxScore(t *testing.T) {
	// The overflow regression: a pattern that matches the text perfectly
	// must report exactly c1*m, which requires the widened SBits default.
	rng := rand.New(rand.NewPCG(7, 8))
	const m = 128
	x := dna.RandSeq(rng, m)
	y := append(x.Clone(), dna.RandSeq(rng, 64)...)
	pairs := make([]dna.Pair, 32)
	for i := range pairs {
		pairs[i] = dna.Pair{X: x, Y: y}
	}
	res, err := BulkScores[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := swa.PaperScoring.MaxScore(m) // 256
	for i, s := range res.Scores {
		if s != want {
			t.Fatalf("pair %d: score %d, want %d", i, s, want)
		}
	}
	if res.SBits != 9 {
		t.Errorf("SBits = %d, want 9", res.SBits)
	}
}

func TestBulkScoresPaperWidthWraps(t *testing.T) {
	// With the paper's 8-bit width the same workload wraps — kept as a
	// demonstration of the s = ⌈log2(c1·m)⌉ off-by-one (EXPERIMENTS.md).
	rng := rand.New(rand.NewPCG(9, 10))
	const m = 128
	x := dna.RandSeq(rng, m)
	y := append(x.Clone(), dna.RandSeq(rng, 64)...)
	pairs := []dna.Pair{{X: x, Y: y}}
	res, err := BulkScores[uint32](pairs, Options{SBits: bitslice.PaperRequiredBits(2, m)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] == swa.PaperScoring.MaxScore(m) {
		t.Errorf("8-bit engine reported %d; expected wrap-around corruption", res.Scores[0])
	}
}

func TestBulkScoresErrors(t *testing.T) {
	if _, err := BulkScores[uint32](nil, Options{}); err == nil {
		t.Error("empty batch should fail")
	}
	rng := rand.New(rand.NewPCG(11, 12))
	ragged := []dna.Pair{
		{X: dna.RandSeq(rng, 8), Y: dna.RandSeq(rng, 32)},
		{X: dna.RandSeq(rng, 9), Y: dna.RandSeq(rng, 32)},
	}
	if _, err := BulkScores[uint32](ragged, Options{}); err == nil {
		t.Error("ragged batch should fail")
	}
	longPattern := []dna.Pair{{X: dna.RandSeq(rng, 8), Y: dna.RandSeq(rng, 4)}}
	if _, err := BulkScores[uint32](longPattern, Options{}); err == nil {
		t.Error("m > n should fail")
	}
	badScoring := Options{Scoring: swa.Scoring{Match: -1}}
	ok := []dna.Pair{{X: dna.RandSeq(rng, 4), Y: dna.RandSeq(rng, 8)}}
	if _, err := BulkScores[uint32](ok, badScoring); err == nil {
		t.Error("invalid scoring should fail")
	}
	if _, err := BulkScores[uint32](ok, Options{SBits: 1}); err == nil {
		t.Error("SBits too small for Match should fail")
	}
}

func TestTimingPopulated(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	pairs := dna.RandomPairs(rng, 64, 32, 256)
	res, err := BulkScores[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.SWA <= 0 {
		t.Error("SWA timing not recorded")
	}
	if res.Timing.W2B <= 0 {
		t.Error("W2B timing not recorded")
	}
	if res.Timing.Total() < res.Timing.SWA {
		t.Error("Total inconsistent")
	}
}

func TestWordwiseScoresMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	pairs := dna.RandomPairs(rng, 50, 16, 80)
	res, err := WordwiseScores(pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, swa.PaperScoring)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	par, err := WordwiseScores(pairs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if par.Scores[i] != want[i] {
			t.Fatalf("parallel wordwise pair %d mismatch", i)
		}
	}
	if _, err := WordwiseScores(nil, Options{}); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := WordwiseScores(pairs, Options{Scoring: swa.Scoring{Match: -3}}); err == nil {
		t.Error("bad scoring should fail")
	}
}

func TestFilterAbove(t *testing.T) {
	r := &Result{Scores: []int{5, 20, 7, 20, 3}}
	got := r.FilterAbove(7)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("FilterAbove = %v, want [1 3]", got)
	}
	if r.FilterAbove(100) != nil {
		t.Error("FilterAbove above max should be empty")
	}
}

func TestScreenAndAlign(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	const m, n = 24, 160
	planted := dna.PlantedPairs(rng, 6, m, n, 1.0, dna.MutationModel{SubRate: 0.05})
	noise := dna.RandomPairs(rng, 26, m, n)
	pairs := append(planted, noise...)
	tau := swa.PaperScoring.MaxScore(m) * 3 / 4
	hits, err := ScreenAndAlign[uint32](pairs, tau, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 6 {
		t.Fatalf("expected >= 6 hits, got %d", len(hits))
	}
	for _, h := range hits {
		if h.Alignment.Score != h.Score {
			t.Errorf("hit %d: alignment score %d != screen score %d",
				h.Index, h.Alignment.Score, h.Score)
		}
		if h.Score <= tau {
			t.Errorf("hit %d below threshold", h.Index)
		}
	}
	if _, err := ScreenAndAlign[uint32](nil, 0, Options{}); err == nil {
		t.Error("empty batch should fail")
	}
}

// TestLaneWidthsAgree cross-checks the two lane widths on one workload.
func TestLaneWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	pairs := dna.RandomPairs(rng, 96, 20, 100)
	r32, err := BulkScores[uint32](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r64, err := BulkScores[uint64](pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if r32.Scores[i] != r64.Scores[i] {
			t.Fatalf("pair %d: 32-lane %d, 64-lane %d", i, r32.Scores[i], r64.Scores[i])
		}
	}
}

func benchPairs(b *testing.B, count, m, n int) []dna.Pair {
	b.Helper()
	rng := rand.New(rand.NewPCG(21, 22))
	return dna.RandomPairs(rng, count, m, n)
}

func BenchmarkBulkScores32(b *testing.B) {
	pairs := benchPairs(b, 32, 128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkScores[uint32](pairs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 128, 1024)
}

func BenchmarkBulkScores64(b *testing.B) {
	pairs := benchPairs(b, 64, 128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkScores[uint64](pairs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 128, 1024)
}

func BenchmarkWordwise(b *testing.B) {
	pairs := benchPairs(b, 32, 128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WordwiseScores(pairs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportGCUPS(b, len(pairs), 128, 1024)
}

func reportGCUPS(b *testing.B, pairs, m, n int) {
	cells := float64(b.N) * float64(pairs) * float64(m) * float64(n)
	b.ReportMetric(cells/b.Elapsed().Seconds()/1e9, "GCUPS")
}
