package bpbc

import (
	"fmt"
	"math/bits"

	"repro/internal/bitslice"
	"repro/internal/dna"
	"repro/internal/swa"
	"repro/internal/word"
)

// Direction codes recorded per cell, matching the reference traceback's
// branch priority (diagonal, then up, then left).
const (
	dirStop = 0 // cell value is 0
	dirDiag = 1
	dirUp   = 2
	dirLeft = 3
)

// maxTracebackCells bounds the direction-plane storage: 2 words per cell
// per lane group. The screen-then-align flow should band-realign large
// texts instead (see swa.AlignBanded).
const maxTracebackCells = 1 << 22

// BulkAlign scores every pair AND records a bit-transposed traceback
// matrix alongside (the paper notes "the traceback matrix can be computed
// along with the scoring matrix"); it then reconstructs each lane's optimal
// local alignment from the recorded direction planes without re-running any
// dynamic program. All pairs must share one shape, and m*n is capped at
// 2^22 cells because the direction planes hold the full matrix.
func BulkAlign[W word.Word](pairs []dna.Pair, opt Options) ([]swa.Alignment, error) {
	m, n, err := checkUniform(pairs)
	if err != nil {
		return nil, err
	}
	if m*n > maxTracebackCells {
		return nil, fmt.Errorf("bpbc: BulkAlign matrix %d×%d exceeds the %d-cell cap; use BulkScoresPos + swa.AlignBanded",
			m, n, maxTracebackCells)
	}
	par, err := opt.params(m)
	if err != nil {
		return nil, err
	}
	lanes := word.Lanes[W]()
	s := par.S
	iBits := bits.Len(uint(m))
	jBits := bits.Len(uint(n))

	out := make([]swa.Alignment, len(pairs))

	g := newGroupState[W](par, n)
	// Direction planes, (m+1)×(n+1) cells, row-major; row/col 0 unused.
	dirH := make([]W, (m+1)*(n+1))
	dirL := make([]W, (m+1)*(n+1))
	mt := bitslice.NewNum[W](s)  // matching(diag) recomputation
	sst := bitslice.NewNum[W](s) // SSub(up, gap) recomputation
	bestI := bitslice.NewNum[W](iBits)
	bestJ := bitslice.NewNum[W](jBits)
	iConst := bitslice.NewNum[W](iBits)
	jConst := bitslice.NewNum[W](jBits)

	groups := (len(pairs) + lanes - 1) / lanes
	for gi := 0; gi < groups; gi++ {
		lo := gi * lanes
		hi := min(lo+lanes, len(pairs))
		xsSeqs := make([]dna.Seq, hi-lo)
		ysSeqs := make([]dna.Seq, hi-lo)
		for i := lo; i < hi; i++ {
			xsSeqs[i-lo] = pairs[i].X
			ysSeqs[i-lo] = pairs[i].Y
		}
		xs, err := dna.TransposeGroup[W](xsSeqs)
		if err != nil {
			return nil, err
		}
		ys, err := dna.TransposeGroup[W](ysSeqs)
		if err != nil {
			return nil, err
		}

		g.reset()
		bestI.Zero()
		bestJ.Zero()
		for i := 1; i <= m; i++ {
			xH, xL := xs.H[i-1], xs.L[i-1]
			iConst.SetAll(uint(i))
			for j := 1; j <= n; j++ {
				e := bitslice.MismatchMask(xH, xL, ys.H[j-1], ys.L[j-1])
				cur := num(g.cur, j, s)
				up := num(g.prev, j, s)
				left := num(g.cur, j-1, s)
				diag := num(g.prev, j-1, s)
				bitslice.SWCell(cur, up, left, diag, e, par, g.scratch)

				// Recompute the two candidate branches to classify which
				// one produced the cell, per lane.
				bitslice.Matching(mt, diag, e, par, g.scratch)
				bitslice.SSubScalar(sst, up, par.Gap)
				zero := isZero(cur)
				dDiag := eq(cur, mt) &^ zero
				dUp := eq(cur, sst) &^ zero &^ dDiag
				dLeft := ^zero &^ dDiag &^ dUp
				idx := i*(n+1) + j
				dirH[idx] = dUp | dLeft
				dirL[idx] = dDiag | dLeft

				gt := bitslice.GreaterThan(cur, g.best)
				bitslice.Select(g.best, g.best, cur, gt)
				bitslice.Select(bestI, bestI, iConst, gt)
				jConst.SetAll(uint(j))
				bitslice.Select(bestJ, bestJ, jConst, gt)
			}
			g.prev, g.cur = g.cur, g.prev
		}

		scores := make([]int, hi-lo)
		endI := make([]int, hi-lo)
		endJ := make([]int, hi-lo)
		extractScores(g, hi-lo, scores)
		extractPlanes(bestI, g.unt, hi-lo, endI)
		extractPlanes(bestJ, g.unt, hi-lo, endJ)

		for k := 0; k < hi-lo; k++ {
			out[lo+k] = walkDirections(pairs[lo+k], scores[k], endI[k], endJ[k],
				dirH, dirL, n, k)
		}
	}
	return out, nil
}

// isZero returns, per lane, 1 where the bit-sliced number is zero.
func isZero[W word.Word](a bitslice.Num[W]) W {
	var or W
	for _, p := range a {
		or |= p
	}
	return ^or
}

// eq returns, per lane, 1 where a == b.
func eq[W word.Word](a, b bitslice.Num[W]) W {
	var diff W
	for h := range a {
		diff |= a[h] ^ b[h]
	}
	return ^diff
}

// walkDirections replays lane k's recorded directions from its best cell.
func walkDirections[W word.Word](p dna.Pair, score, ei, ej int, dirH, dirL []W, n, lane int) swa.Alignment {
	a := swa.Alignment{Score: score}
	if score == 0 {
		return a
	}
	var ax, ay []byte
	i, j := ei, ej
	for i > 0 && j > 0 {
		idx := i*(n+1) + j
		hiBit := int(dirH[idx]>>uint(lane)&1)<<1 | int(dirL[idx]>>uint(lane)&1)
		switch hiBit {
		case dirDiag:
			ax = append(ax, p.X[i-1].Byte())
			ay = append(ay, p.Y[j-1].Byte())
			if p.X[i-1] == p.Y[j-1] {
				a.Matches++
			} else {
				a.Mismatches++
			}
			i, j = i-1, j-1
		case dirUp:
			ax = append(ax, p.X[i-1].Byte())
			ay = append(ay, '-')
			a.Gaps++
			i--
		case dirLeft:
			ax = append(ax, '-')
			ay = append(ay, p.Y[j-1].Byte())
			a.Gaps++
			j--
		default: // dirStop
			goto done
		}
	}
done:
	a.XStart, a.XEnd = i, ei
	a.YStart, a.YEnd = j, ej
	for l, r := 0, len(ax)-1; l < r; l, r = l+1, r-1 {
		ax[l], ax[r] = ax[r], ax[l]
		ay[l], ay[r] = ay[r], ay[l]
	}
	a.AlignedX, a.AlignedY = string(ax), string(ay)
	return a
}
