package bpbc

import (
	"math/bits"
	"time"

	"repro/internal/bitmat"
	"repro/internal/bitslice"
	"repro/internal/dna"
	"repro/internal/word"
)

// PosResult extends the bulk score with the coordinates of the best cell —
// what a screening pipeline needs to seed a banded re-alignment around the
// hit instead of re-scanning the whole text. The paper notes the traceback
// can be computed "along with the scoring matrix"; tracking the argmax in
// bit-sliced form is the bulk analogue.
type PosResult struct {
	Scores []int
	// EndI[i], EndJ[i] are the 1-based matrix coordinates of the first
	// (row-major) cell attaining Scores[i]; both are 0 when the score is 0.
	EndI, EndJ []int
	Timing     Timing
	Lanes      int
	SBits      int
}

// BulkScoresPos computes, per pair, the maximum local-alignment score and
// the position of the first cell attaining it, all in bit-sliced form:
// alongside the running-max planes it maintains bit-sliced row and column
// registers updated under the strict-greater mask.
func BulkScoresPos[W word.Word](pairs []dna.Pair, opt Options) (*PosResult, error) {
	m, n, err := checkUniform(pairs)
	if err != nil {
		return nil, err
	}
	par, err := opt.params(m)
	if err != nil {
		return nil, err
	}
	lanes := word.Lanes[W]()
	res := &PosResult{
		Scores: make([]int, len(pairs)),
		EndI:   make([]int, len(pairs)),
		EndJ:   make([]int, len(pairs)),
		Lanes:  lanes,
		SBits:  par.S,
	}
	iBits := bits.Len(uint(m))
	jBits := bits.Len(uint(n))

	g := newGroupState[W](par, n)
	bestI := bitslice.NewNum[W](iBits)
	bestJ := bitslice.NewNum[W](jBits)
	iConst := bitslice.NewNum[W](iBits)
	jConsts := make([]bitslice.Num[W], n+1)
	for j := 1; j <= n; j++ {
		jConsts[j] = bitslice.NewNum[W](jBits)
		jConsts[j].SetAll(uint(j))
	}

	groups := (len(pairs) + lanes - 1) / lanes
	for gi := 0; gi < groups; gi++ {
		lo := gi * lanes
		hi := min(lo+lanes, len(pairs))
		xsSeqs := make([]dna.Seq, hi-lo)
		ysSeqs := make([]dna.Seq, hi-lo)
		for i := lo; i < hi; i++ {
			xsSeqs[i-lo] = pairs[i].X
			ysSeqs[i-lo] = pairs[i].Y
		}
		t0 := time.Now()
		xs, err := dna.TransposeGroup[W](xsSeqs)
		if err != nil {
			return nil, err
		}
		ys, err := dna.TransposeGroup[W](ysSeqs)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()

		s := par.S
		g.reset()
		bestI.Zero()
		bestJ.Zero()
		for i := 1; i <= m; i++ {
			xH, xL := xs.H[i-1], xs.L[i-1]
			iConst.SetAll(uint(i))
			for j := 1; j <= n; j++ {
				e := bitslice.MismatchMask(xH, xL, ys.H[j-1], ys.L[j-1])
				cur := num(g.cur, j, s)
				bitslice.SWCell(cur,
					num(g.prev, j, s), num(g.cur, j-1, s), num(g.prev, j-1, s),
					e, par, g.scratch)
				gt := bitslice.GreaterThan(cur, g.best)
				bitslice.Select(g.best, g.best, cur, gt)
				bitslice.Select(bestI, bestI, iConst, gt)
				bitslice.Select(bestJ, bestJ, jConsts[j], gt)
			}
			g.prev, g.cur = g.cur, g.prev
		}
		t2 := time.Now()

		extractScores(g, hi-lo, res.Scores[lo:hi])
		extractPlanes(bestI, g.unt, hi-lo, res.EndI[lo:hi])
		extractPlanes(bestJ, g.unt, hi-lo, res.EndJ[lo:hi])
		t3 := time.Now()

		res.Timing.W2B += t1.Sub(t0)
		res.Timing.SWA += t2.Sub(t1)
		res.Timing.B2W += t3.Sub(t2)
	}
	return res, nil
}

// extractPlanes un-transposes an arbitrary bit-sliced number into integers.
func extractPlanes[W word.Word](v bitslice.Num[W], scratch []W, count int, out []int) {
	for i := range scratch {
		scratch[i] = 0
	}
	copy(scratch[:len(v)], v)
	bitmat.PlanesToValuesInPlace(scratch, len(v))
	for k := 0; k < count; k++ {
		out[k] = int(scratch[k])
	}
}
