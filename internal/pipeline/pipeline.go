// Package pipeline orchestrates the paper's five-step GPU flow (§V) on the
// cudasim substrate:
//
//	Step 1  H2G   copy wordwise inputs to device global memory
//	Step 2  W2B   bit-transpose kernel
//	Step 3  SWA   BPBC wavefront Smith-Waterman kernel
//	Step 4  B2W   bit-untranspose kernel
//	Step 5  G2H   copy wordwise maximum scores back to the host
//
// Every run is functionally exact — the returned scores are validated
// against the CPU reference in the tests — and produces the per-stage
// simulated-time breakdown of the paper's Table IV GPU columns via the
// perfmodel cost conversion.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bitslice"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/swa"
	"repro/internal/word"
)

// Config selects the scoring scheme and lane width behaviour.
type Config struct {
	Scoring swa.Scoring // zero value = swa.PaperScoring
	SBits   int         // 0 = bitslice.RequiredBits
	Device  perfmodel.DeviceSpec
	PCIe    perfmodel.PCIeLink
	// UseShuffle enables the §V warp-shuffle handoff in the SWA kernel.
	UseShuffle bool
	// GlobalBytes overrides the device global-memory capacity (0 = size
	// automatically for the batch). Small values force allocation failures,
	// which the alignsvc degradation ladder and the OOM tests rely on.
	GlobalBytes int64
	// Faults, when non-nil, is attached to the simulated device so
	// transfers, allocations and launches can fail (or flip bits)
	// deterministically. See cudasim.FaultConfig.
	Faults *cudasim.FaultInjector
	// Metrics receives the per-stage latency histograms, run counters and
	// GCUPS figures (nil = obs.Default()). Tests pass a private registry.
	Metrics *obs.Registry
}

func (c Config) metrics() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default()
}

func (c Config) withDefaults() Config {
	if c.Scoring == (swa.Scoring{}) {
		c.Scoring = swa.PaperScoring
	}
	if c.Device.SMs == 0 {
		c.Device = perfmodel.TitanX
	}
	if c.PCIe.Bandwidth == 0 {
		c.PCIe = perfmodel.PaperPCIe
	}
	return c
}

// StageTimes is the Table IV GPU breakdown.
type StageTimes struct {
	H2G, W2B, SWA, B2W, G2H time.Duration
}

// Total sums all stages.
func (s StageTimes) Total() time.Duration {
	return s.H2G + s.W2B + s.SWA + s.B2W + s.G2H
}

// Result is the outcome of a simulated GPU run.
type Result struct {
	Scores []int
	Times  StageTimes
	// Wall is the measured host wall-clock per stage: the time the
	// functional simulator itself took, as opposed to Times, the modelled
	// device time. Both distributions are exported as histograms.
	Wall StageTimes
	// Stats exposes the exact kernel work tallies (W2B covers both input
	// arrays; launches are summed).
	W2BStats, SWAStats, B2WStats cudasim.LaunchStats
	Lanes, SBits                 int
	// Pairs, M, N record the batch shape, so GCUPS is computable from the
	// result alone.
	Pairs, M, N int
}

// GCUPS returns the modelled throughput of the run in billions of cell
// updates per second (the paper's headline metric), based on the modelled
// device time.
func (r *Result) GCUPS() float64 {
	return perfmodel.GCUPS(r.Pairs, r.M, r.N, r.Times.Total())
}

// stageRecorder observes one pipeline run's per-stage wall and modelled
// durations into the registry's histograms and the context's trace.
type stageRecorder struct {
	reg  *obs.Registry
	tr   *obs.Trace
	pipe string // "bitwise" or "wordwise"
}

func newStageRecorder(ctx context.Context, cfg Config, pipe string) stageRecorder {
	reg := cfg.metrics()
	reg.Help("pipeline_stage_wall_seconds", "host wall-clock per pipeline stage")
	reg.Help("pipeline_stage_sim_seconds", "modelled device time per pipeline stage")
	reg.Help("pipeline_runs_total", "pipeline runs by outcome")
	reg.Help("pipeline_gcups", "modelled GCUPS per completed run")
	return stageRecorder{reg: reg, tr: obs.FromContext(ctx), pipe: pipe}
}

// stage records one completed stage given its host start time and modelled
// duration, and returns the wall time it measured.
func (s stageRecorder) stage(name string, begin time.Time, sim time.Duration) time.Duration {
	wall := time.Since(begin)
	s.reg.Histogram(obs.L("pipeline_stage_wall_seconds", "pipeline", s.pipe, "stage", name),
		obs.LatencyBuckets).ObserveDuration(wall)
	s.reg.Histogram(obs.L("pipeline_stage_sim_seconds", "pipeline", s.pipe, "stage", name),
		obs.LatencyBuckets).ObserveDuration(sim)
	s.tr.AddSpan("pipeline."+name, begin, wall)
	return wall
}

// finish records the run counter and, on success, the run's GCUPS.
func (s stageRecorder) finish(res *Result, err error) {
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	s.reg.Counter(obs.L("pipeline_runs_total", "pipeline", s.pipe, "result", outcome)).Inc()
	if err == nil && res != nil {
		g := res.GCUPS()
		s.reg.Histogram(obs.L("pipeline_gcups", "pipeline", s.pipe), obs.GCUPSBuckets).Observe(g)
		s.reg.Gauge(obs.L("pipeline_last_gcups", "pipeline", s.pipe)).Set(g)
	}
}

// RunBitwise executes the full BPBC pipeline for a uniform batch of pairs
// with lane width W, returning exact scores and modelled stage times. The
// context is observed before every stage and between kernel blocks, so
// cancellation and deadlines propagate with block-level latency.
func RunBitwise[W word.Word](ctx context.Context, pairs []dna.Pair, cfg Config) (res *Result, err error) {
	cfg = cfg.withDefaults()
	rec := newStageRecorder(ctx, cfg, "bitwise")
	defer func() { rec.finish(res, err) }()
	lanes := word.Lanes[W]()
	l, err := layoutFor(pairs, lanes, cfg)
	if err != nil {
		return nil, err
	}
	par := bitslice.Params{
		S:        l.S,
		Match:    uint(cfg.Scoring.Match),
		Mismatch: uint(cfg.Scoring.Mismatch),
		Gap:      uint(cfg.Scoring.Gap),
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}

	dev := newDevice(cfg, l)
	bufs, err := kernels.AllocBuffers(dev, l)
	if err != nil {
		return nil, err
	}

	res = &Result{Lanes: lanes, SBits: l.S, Pairs: l.Pairs, M: l.M, N: l.N}

	// Step 1: H2G. Wordwise chars, one byte each (what cudaMemcpy moves).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	begin := time.Now()
	if err := uploadWordwise(dev, bufs, pairs, l); err != nil {
		return nil, fmt.Errorf("pipeline: H2G: %w", err)
	}
	res.Times.H2G = cfg.PCIe.Transfer(int64(l.Pairs) * int64(l.M+l.N))
	res.Wall.H2G = rec.stage("h2g", begin, res.Times.H2G)

	// Step 2: W2B, one launch per input array.
	begin = time.Now()
	kx := &kernels.W2BKernel[W]{L: l, Src: bufs.XWord, DstH: bufs.XH, DstL: bufs.XL, Length: l.M}
	sx, err := dev.LaunchCtx(ctx, kx.GridDim(), kernels.TransposeThreads, kx)
	if err != nil {
		return nil, wrapStage("W2B", err)
	}
	ky := &kernels.W2BKernel[W]{L: l, Src: bufs.YWord, DstH: bufs.YH, DstL: bufs.YL, Length: l.N}
	sy, err := dev.LaunchCtx(ctx, ky.GridDim(), kernels.TransposeThreads, ky)
	if err != nil {
		return nil, wrapStage("W2B", err)
	}
	res.W2BStats = *sx
	mergeInto(&res.W2BStats, sy)
	regsT := kernels.TransposeRegs(lanes)
	res.Times.W2B = sx.Cost(true, regsT).Time(cfg.Device) + sy.Cost(true, regsT).Time(cfg.Device)
	res.Wall.W2B = rec.stage("w2b", begin, res.Times.W2B)

	// Step 3: the BPBC wavefront kernel, one block per lane group.
	begin = time.Now()
	ks := &kernels.SWAKernel[W]{L: l, B: bufs, Par: par, UseShuffle: cfg.UseShuffle}
	ss, err := dev.LaunchCtx(ctx, l.Groups(), l.M, ks)
	if err != nil {
		return nil, wrapStage("SWA", err)
	}
	res.SWAStats = *ss
	res.Times.SWA = ss.Cost(true, kernels.SWARegs(l.S, lanes)).Time(cfg.Device)
	res.Wall.SWA = rec.stage("swa", begin, res.Times.SWA)

	// Step 4: B2W.
	begin = time.Now()
	kb := &kernels.B2WKernel[W]{L: l, B: bufs}
	sb, err := dev.LaunchCtx(ctx, kb.GridDim(), kernels.TransposeThreads, kb)
	if err != nil {
		return nil, wrapStage("B2W", err)
	}
	res.B2WStats = *sb
	res.Times.B2W = sb.Cost(true, regsT).Time(cfg.Device)
	res.Wall.B2W = rec.stage("b2w", begin, res.Times.B2W)

	// Step 5: G2H — one word per pair.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	begin = time.Now()
	res.Scores, err = downloadScores[W](dev, bufs, l)
	if err != nil {
		return nil, fmt.Errorf("pipeline: G2H: %w", err)
	}
	res.Times.G2H = cfg.PCIe.Transfer(int64(l.Pairs) * 4)
	res.Wall.G2H = rec.stage("g2h", begin, res.Times.G2H)
	return res, nil
}

// RunWordwise executes the conventional baseline: H2G, the wordwise
// wavefront kernel (one block per pair), G2H. No transposes. Context
// semantics match RunBitwise.
func RunWordwise(ctx context.Context, pairs []dna.Pair, cfg Config) (res *Result, err error) {
	cfg = cfg.withDefaults()
	rec := newStageRecorder(ctx, cfg, "wordwise")
	defer func() { rec.finish(res, err) }()
	l, err := layoutFor(pairs, 32, cfg)
	if err != nil {
		return nil, err
	}
	dev := newDevice(cfg, l)
	bufs, err := kernels.AllocBuffers(dev, l)
	if err != nil {
		return nil, err
	}
	res = &Result{Lanes: 1, SBits: 32, Pairs: l.Pairs, M: l.M, N: l.N}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	begin := time.Now()
	if err := uploadWordwise(dev, bufs, pairs, l); err != nil {
		return nil, fmt.Errorf("pipeline: H2G: %w", err)
	}
	res.Times.H2G = cfg.PCIe.Transfer(int64(l.Pairs) * int64(l.M+l.N))
	res.Wall.H2G = rec.stage("h2g", begin, res.Times.H2G)

	begin = time.Now()
	k := &kernels.WordwiseKernel{
		L: l, B: bufs,
		Match:  int32(cfg.Scoring.Match),
		Mismat: int32(cfg.Scoring.Mismatch),
		Gap:    int32(cfg.Scoring.Gap),
	}
	ss, err := dev.LaunchCtx(ctx, l.Pairs, l.M, k)
	if err != nil {
		return nil, wrapStage("SWA", err)
	}
	res.SWAStats = *ss
	res.Times.SWA = ss.Cost(false, kernels.WordwiseRegs).Time(cfg.Device)
	res.Wall.SWA = rec.stage("swa", begin, res.Times.SWA)

	// G2H: one int32 per pair.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	begin = time.Now()
	raw := make([]byte, 4*l.Pairs)
	if err := dev.MemcpyDtoH(raw, bufs.Scores); err != nil {
		return nil, fmt.Errorf("pipeline: G2H: %w", err)
	}
	res.Scores = make([]int, l.Pairs)
	for i := range res.Scores {
		res.Scores[i] = int(uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
			uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24)
	}
	res.Times.G2H = cfg.PCIe.Transfer(int64(l.Pairs) * 4)
	res.Wall.G2H = rec.stage("g2h", begin, res.Times.G2H)
	return res, nil
}

// newDevice builds the simulated device for a run, honouring the capacity
// override and attaching the fault injector if configured.
func newDevice(cfg Config, l kernels.Layout) *cudasim.Device {
	bytes := cfg.GlobalBytes
	if bytes == 0 {
		bytes = deviceBytes(l)
	}
	dev := cudasim.NewDevice(cfg.Device, bytes)
	dev.InjectFaults(cfg.Faults)
	return dev
}

// wrapStage names the failing pipeline stage while keeping context errors
// bare, so callers can compare against context.Canceled/DeadlineExceeded.
func wrapStage(stage string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("pipeline: %s: %w", stage, err)
}

func layoutFor(pairs []dna.Pair, lanes int, cfg Config) (kernels.Layout, error) {
	if len(pairs) == 0 {
		return kernels.Layout{}, fmt.Errorf("pipeline: no pairs")
	}
	m, n := len(pairs[0].X), len(pairs[0].Y)
	// Guard before bitslice.RequiredBits below, which panics on m = 0.
	if m == 0 || n < m {
		return kernels.Layout{}, fmt.Errorf("pipeline: invalid sequence shape (m=%d, n=%d)", m, n)
	}
	for i, p := range pairs {
		if len(p.X) != m || len(p.Y) != n {
			return kernels.Layout{}, fmt.Errorf("pipeline: pair %d has shape (%d,%d), want (%d,%d)",
				i, len(p.X), len(p.Y), m, n)
		}
	}
	if err := cfg.Scoring.Validate(); err != nil {
		return kernels.Layout{}, err
	}
	s := cfg.SBits
	if s == 0 {
		s = bitslice.RequiredBits(uint(cfg.Scoring.Match), m)
	}
	l := kernels.Layout{Pairs: len(pairs), M: m, N: n, Lanes: lanes, S: s}
	return l, l.Validate()
}

func deviceBytes(l kernels.Layout) int64 {
	lb := int64(l.LaneBytes())
	g := int64(l.Groups())
	total := int64(l.Pairs)*int64(l.M+l.N) + // wordwise
		2*g*int64(l.M)*lb + 2*g*int64(l.N)*lb + // transposed
		g*int64(l.S)*lb + g*int64(l.Lanes)*lb + // scores
		1<<16 // alignment slack
	return total * 2
}

func uploadWordwise(dev *cudasim.Device, bufs *kernels.Buffers, pairs []dna.Pair, l kernels.Layout) error {
	xb := make([]byte, l.Pairs*l.M)
	yb := make([]byte, l.Pairs*l.N)
	for p, pr := range pairs {
		for i, c := range pr.X {
			xb[p*l.M+i] = byte(c)
		}
		for j, c := range pr.Y {
			yb[p*l.N+j] = byte(c)
		}
	}
	if err := dev.MemcpyHtoD(bufs.XWord, xb); err != nil {
		return err
	}
	return dev.MemcpyHtoD(bufs.YWord, yb)
}

func downloadScores[W word.Word](dev *cudasim.Device, bufs *kernels.Buffers, l kernels.Layout) ([]int, error) {
	lb := l.LaneBytes()
	raw := make([]byte, l.Groups()*l.Lanes*lb)
	if err := dev.MemcpyDtoH(raw, bufs.Scores); err != nil {
		return nil, err
	}
	out := make([]int, l.Pairs)
	for p := range out {
		off := p * lb
		var v uint64
		for b := 0; b < lb; b++ {
			v |= uint64(raw[off+b]) << (8 * b)
		}
		out[p] = int(v)
	}
	return out, nil
}

func mergeInto(dst *cudasim.LaunchStats, src *cudasim.LaunchStats) {
	dst.ALUOps += src.ALUOps
	dst.GlobalLoadBytes += src.GlobalLoadBytes
	dst.GlobalStoreBytes += src.GlobalStoreBytes
	dst.GlobalTransactions += src.GlobalTransactions
	dst.SharedCycles += src.SharedCycles
	dst.BankConflictReplays += src.BankConflictReplays
	dst.Barriers += src.Barriers
	dst.Blocks += src.Blocks
}
