package pipeline

import (
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/cudasim"
	"repro/internal/dna"
)

func errPairs(t *testing.T, count, m, n int) []dna.Pair {
	t.Helper()
	return dna.RandomPairs(rand.New(rand.NewPCG(11, 0)), count, m, n)
}

func TestRunBitwiseDeviceOOM(t *testing.T) {
	pairs := errPairs(t, 32, 16, 64)
	// 64 bytes of device memory cannot hold even the first buffer.
	_, err := RunBitwise[uint32](context.Background(), pairs, Config{GlobalBytes: 64})
	if err == nil || !strings.Contains(err.Error(), "out of global memory") {
		t.Fatalf("want device OOM error, got %v", err)
	}
	if !strings.Contains(err.Error(), "XWord") {
		t.Fatalf("OOM error should name the failing buffer: %v", err)
	}
	if _, err := RunWordwise(context.Background(), pairs, Config{GlobalBytes: 64}); err == nil ||
		!strings.Contains(err.Error(), "out of global memory") {
		t.Fatalf("wordwise: want device OOM error, got %v", err)
	}
}

func TestLayoutForOversizedPattern(t *testing.T) {
	// m = 1025 exceeds the 1024-thread block limit.
	pairs := errPairs(t, 1, 1025, 1025)
	if _, err := RunBitwise[uint32](context.Background(), pairs, Config{}); err == nil {
		t.Fatal("m > 1024 accepted")
	}
	if _, err := RunWordwise(context.Background(), pairs, Config{}); err == nil {
		t.Fatal("wordwise: m > 1024 accepted")
	}
}

func TestLayoutForEmptySequences(t *testing.T) {
	pairs := []dna.Pair{{X: dna.Seq{}, Y: dna.Seq{}}}
	if _, err := RunBitwise[uint32](context.Background(), pairs, Config{}); err == nil {
		t.Fatal("empty sequences accepted")
	}
	// Text shorter than the pattern violates n >= m.
	short := []dna.Pair{{X: dna.MustParse("ACGTACGT"), Y: dna.MustParse("ACG")}}
	if _, err := RunBitwise[uint32](context.Background(), short, Config{}); err == nil {
		t.Fatal("n < m accepted")
	}
}

func TestLayoutForMismatchedPairCounts(t *testing.T) {
	pairs := errPairs(t, 4, 8, 16)
	pairs[2].Y = pairs[2].Y[:12] // ragged text length
	_, err := RunBitwise[uint32](context.Background(), pairs, Config{})
	if err == nil || !strings.Contains(err.Error(), "pair 2") {
		t.Fatalf("want shape error naming pair 2, got %v", err)
	}
}

func TestRunBitwiseCancelledContext(t *testing.T) {
	pairs := errPairs(t, 32, 16, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBitwise[uint32](ctx, pairs, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := RunWordwise(ctx, pairs, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("wordwise: want context.Canceled, got %v", err)
	}
}

func TestRunBitwiseInjectedTransferFault(t *testing.T) {
	pairs := errPairs(t, 32, 16, 64)
	cfg := Config{Faults: cudasim.NewFaultInjector(cudasim.FaultConfig{Seed: 5, HtoD: 1})}
	_, err := RunBitwise[uint32](context.Background(), pairs, cfg)
	if !errors.Is(err, cudasim.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if !strings.Contains(err.Error(), "H2G") {
		t.Fatalf("fault should be attributed to the H2G stage: %v", err)
	}
}

func TestRunBitwiseInjectedLaunchFault(t *testing.T) {
	pairs := errPairs(t, 32, 16, 64)
	cfg := Config{Faults: cudasim.NewFaultInjector(cudasim.FaultConfig{Seed: 5, Launch: 1})}
	_, err := RunBitwise[uint32](context.Background(), pairs, cfg)
	if !errors.Is(err, cudasim.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if !strings.Contains(err.Error(), "W2B") {
		t.Fatalf("first launch fault should hit the W2B stage: %v", err)
	}
}
