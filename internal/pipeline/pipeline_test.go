package pipeline

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/swa"
)

func refScores(pairs []dna.Pair, sc swa.Scoring) []int {
	out := make([]int, len(pairs))
	for i, p := range pairs {
		out[i] = swa.Score(p.X, p.Y, sc)
	}
	return out
}

func TestBitwisePipelineMatchesReference32(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	pairs := dna.PlantedPairs(rng, 70, 24, 96, 0.5, dna.MutationModel{SubRate: 0.1})
	res, err := RunBitwise[uint32](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, swa.PaperScoring)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d: GPU sim %d, reference %d", i, res.Scores[i], want[i])
		}
	}
	if res.Lanes != 32 || res.SBits != 6 { // c1=2, m=24 -> 48 -> 6 bits
		t.Errorf("Lanes=%d SBits=%d", res.Lanes, res.SBits)
	}
}

func TestBitwisePipelineMatchesReference64(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	pairs := dna.PlantedPairs(rng, 130, 16, 64, 0.5, dna.MutationModel{SubRate: 0.2})
	res, err := RunBitwise[uint64](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, swa.PaperScoring)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d: GPU sim %d, reference %d", i, res.Scores[i], want[i])
		}
	}
}

func TestWordwisePipelineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	pairs := dna.PlantedPairs(rng, 40, 20, 80, 0.5, dna.MutationModel{SubRate: 0.1})
	res, err := RunWordwise(context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, swa.PaperScoring)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d: wordwise GPU sim %d, reference %d", i, res.Scores[i], want[i])
		}
	}
}

func TestPipelineCustomScoring(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	sc := swa.Scoring{Match: 3, Mismatch: 2, Gap: 2}
	pairs := dna.RandomPairs(rng, 33, 12, 48)
	res, err := RunBitwise[uint32](context.Background(), pairs, Config{Scoring: sc})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, sc)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d: got %d want %d", i, res.Scores[i], want[i])
		}
	}
}

func TestPipelineStageTimesPopulated(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	pairs := dna.RandomPairs(rng, 64, 16, 64)
	res, err := RunBitwise[uint32](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Times
	for name, d := range map[string]int64{
		"H2G": int64(ts.H2G), "W2B": int64(ts.W2B), "SWA": int64(ts.SWA),
		"B2W": int64(ts.B2W), "G2H": int64(ts.G2H),
	} {
		if d <= 0 {
			t.Errorf("stage %s has non-positive simulated time", name)
		}
	}
	if ts.Total() != ts.H2G+ts.W2B+ts.SWA+ts.B2W+ts.G2H {
		t.Error("Total inconsistent")
	}
	if res.SWAStats.ALUOps == 0 || res.SWAStats.GlobalTransactions == 0 {
		t.Error("SWA kernel stats empty")
	}
	if res.W2BStats.ALUOps == 0 || res.B2WStats.ALUOps == 0 {
		t.Error("transpose kernel stats empty")
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := RunBitwise[uint32](context.Background(), nil, Config{}); err == nil {
		t.Error("empty batch should fail")
	}
	rng := rand.New(rand.NewPCG(6, 6))
	ragged := []dna.Pair{
		{X: dna.RandSeq(rng, 8), Y: dna.RandSeq(rng, 32)},
		{X: dna.RandSeq(rng, 8), Y: dna.RandSeq(rng, 33)},
	}
	if _, err := RunBitwise[uint32](context.Background(), ragged, Config{}); err == nil {
		t.Error("ragged batch should fail")
	}
	if _, err := RunWordwise(context.Background(), nil, Config{}); err == nil {
		t.Error("wordwise empty batch should fail")
	}
	bad := []dna.Pair{{X: dna.RandSeq(rng, 8), Y: dna.RandSeq(rng, 32)}}
	if _, err := RunBitwise[uint32](context.Background(), bad, Config{Scoring: swa.Scoring{Match: -1}}); err == nil {
		t.Error("bad scoring should fail")
	}
}

// TestSWAStatsLinearInN verifies that per-block kernel stats grow exactly
// linearly in n beyond the wavefront ramp-up — the property that lets
// tables extrapolate simulator-measured stats to the paper's full n without
// simulating 65536-column matrices functionally.
func TestSWAStatsLinearInN(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	const m = 32
	stats := func(n int) [5]int64 {
		pairs := dna.RandomPairs(rng, 32, m, n)
		res, err := RunBitwise[uint32](context.Background(), pairs, Config{SBits: 9})
		if err != nil {
			t.Fatal(err)
		}
		s := res.SWAStats
		return [5]int64{s.ALUOps, s.GlobalLoadBytes, s.GlobalTransactions,
			s.SharedCycles, s.Barriers}
	}
	a, b, c := stats(128), stats(192), stats(256)
	for f := 0; f < 5; f++ {
		d1 := b[f] - a[f]
		d2 := c[f] - b[f]
		if d1 != d2 {
			t.Errorf("stat %d not linear: deltas %d vs %d", f, d1, d2)
		}
	}
}

// TestSWAStatsProportionalToGroups verifies per-block stats are identical
// across blocks (data-independent control flow), the other extrapolation
// axis.
func TestSWAStatsProportionalToGroups(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	const m, n = 16, 64
	one, err := RunBitwise[uint32](context.Background(), dna.RandomPairs(rng, 32, m, n), Config{SBits: 9})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunBitwise[uint32](context.Background(), dna.RandomPairs(rng, 128, m, n), Config{SBits: 9})
	if err != nil {
		t.Fatal(err)
	}
	if four.SWAStats.ALUOps != 4*one.SWAStats.ALUOps {
		t.Errorf("ALUOps not proportional: %d vs 4×%d", four.SWAStats.ALUOps, one.SWAStats.ALUOps)
	}
	if four.SWAStats.SharedCycles != 4*one.SWAStats.SharedCycles {
		t.Errorf("SharedCycles not proportional")
	}
	if four.SWAStats.GlobalTransactions != 4*one.SWAStats.GlobalTransactions {
		t.Errorf("GlobalTransactions not proportional")
	}
}

// TestBitwiseBeatsWordwiseOnSimulatedGPU checks the paper's headline GPU
// comparison holds in the model at full machine utilisation: kernel stats
// are measured functionally at a small pair count, then scaled to a
// machine-filling launch (per-block stats are exactly proportional, see
// TestSWAStatsProportionalToGroups) before comparing times — the same
// extrapolation the tables use.
func TestBitwiseBeatsWordwiseOnSimulatedGPU(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	pairs := dna.RandomPairs(rng, 128, 32, 256)
	bw, err := RunBitwise[uint32](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ww, err := RunWordwise(context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const scale = 256 // 128 pairs -> 32768 pairs
	dev := Config{}.withDefaults().Device
	bwCost := scaleStats(bw.SWAStats, scale).Cost(true, 60)
	wwCost := scaleStats(ww.SWAStats, scale).Cost(false, 24)
	bt, wt := bwCost.Time(dev), wwCost.Time(dev)
	ratio := float64(wt) / float64(bt)
	if ratio < 2 {
		t.Errorf("wordwise/bitwise simulated SWA ratio = %.2f, expected > 2 (paper: ~3-5×)", ratio)
	}
	t.Logf("simulated GPU SWA at 32K pairs: bitwise %v, wordwise %v (ratio %.1f×)", bt, wt, ratio)
}

func scaleStats(s cudasim.LaunchStats, k int64) *cudasim.LaunchStats {
	s.ALUOps *= k
	s.GlobalLoadBytes *= k
	s.GlobalStoreBytes *= k
	s.GlobalTransactions *= k
	s.SharedCycles *= k
	s.BankConflictReplays *= k
	s.Barriers *= k
	s.Blocks *= int(k)
	return &s
}

func TestPipelinePartialGroup(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	pairs := dna.RandomPairs(rng, 33, 8, 24) // 2 groups, second nearly empty
	res, err := RunBitwise[uint32](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := refScores(pairs, swa.PaperScoring)
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

// TestShuffleHandoffEquivalence verifies the §V shuffle optimisation: same
// scores, strictly less shared-memory traffic, slightly more ALU work.
func TestShuffleHandoffEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	pairs := dna.PlantedPairs(rng, 96, 48, 192, 0.5, dna.MutationModel{SubRate: 0.1})
	plain, err := RunBitwise[uint32](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := RunBitwise[uint32](context.Background(), pairs, Config{UseShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if plain.Scores[i] != shuf.Scores[i] {
			t.Fatalf("pair %d: plain %d, shuffle %d", i, plain.Scores[i], shuf.Scores[i])
		}
	}
	if shuf.SWAStats.SharedCycles >= plain.SWAStats.SharedCycles {
		t.Errorf("shuffle did not reduce shared traffic: %d vs %d",
			shuf.SWAStats.SharedCycles, plain.SWAStats.SharedCycles)
	}
	if shuf.SWAStats.ALUOps <= plain.SWAStats.ALUOps {
		t.Errorf("shuffle should charge shuffle instructions: %d vs %d",
			shuf.SWAStats.ALUOps, plain.SWAStats.ALUOps)
	}
	t.Logf("shared cycles: %d -> %d (%.1fx less); ALU: %d -> %d",
		plain.SWAStats.SharedCycles, shuf.SWAStats.SharedCycles,
		float64(plain.SWAStats.SharedCycles)/float64(shuf.SWAStats.SharedCycles),
		plain.SWAStats.ALUOps, shuf.SWAStats.ALUOps)
}

// TestShuffleHandoffEquivalence64 covers the two-words-per-value path.
func TestShuffleHandoffEquivalence64(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	pairs := dna.RandomPairs(rng, 64, 40, 160)
	plain, err := RunBitwise[uint64](context.Background(), pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := RunBitwise[uint64](context.Background(), pairs, Config{UseShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if plain.Scores[i] != shuf.Scores[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestPipelineMetricsAndGCUPS(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewPCG(9, 9))
	pairs := dna.RandomPairs(rng, 40, 24, 96)
	tr := obs.NewTrace("")
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := RunBitwise[uint32](ctx, pairs, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 40 || res.M != 24 || res.N != 96 {
		t.Errorf("shape = (%d, %d, %d), want (40, 24, 96)", res.Pairs, res.M, res.N)
	}
	if res.GCUPS() <= 0 {
		t.Errorf("GCUPS = %v, want > 0", res.GCUPS())
	}
	if res.Wall.Total() <= 0 {
		t.Errorf("wall total = %v, want > 0", res.Wall.Total())
	}

	// Every stage histogram has exactly one observation; the run counter and
	// GCUPS gauge are set.
	for _, stage := range []string{"h2g", "w2b", "swa", "b2w", "g2h"} {
		for _, fam := range []string{"pipeline_stage_wall_seconds", "pipeline_stage_sim_seconds"} {
			h := reg.Histogram(obs.L(fam, "pipeline", "bitwise", "stage", stage), nil)
			if h.Count() != 1 {
				t.Errorf("%s{stage=%q} count = %d, want 1", fam, stage, h.Count())
			}
		}
	}
	if c := reg.Counter(obs.L("pipeline_runs_total", "pipeline", "bitwise", "result", "ok")); c.Value() != 1 {
		t.Errorf("runs ok = %d, want 1", c.Value())
	}
	if g := reg.Gauge(obs.L("pipeline_last_gcups", "pipeline", "bitwise")); g.Value() != res.GCUPS() {
		t.Errorf("last gcups gauge = %v, want %v", g.Value(), res.GCUPS())
	}

	// The trace carries one span per stage.
	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5: %+v", len(spans), spans)
	}
	if spans[2].Name != "pipeline.swa" {
		t.Errorf("span 2 = %q, want pipeline.swa", spans[2].Name)
	}

	// Prometheus text exposition includes the per-stage histograms.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `pipeline_stage_sim_seconds_bucket{pipeline="bitwise",stage="swa",le="+Inf"} 1`) {
		t.Errorf("exposition missing swa histogram:\n%s", b.String())
	}
}

func TestPipelineErrorCountsRun(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewPCG(10, 10))
	pairs := dna.RandomPairs(rng, 8, 16, 64)
	inj := cudasim.NewFaultInjector(cudasim.FaultConfig{Seed: 3, Launch: 1})
	_, err := RunWordwise(context.Background(), pairs, Config{Metrics: reg, Faults: inj})
	if err == nil {
		t.Fatal("forced launch fault did not error")
	}
	if c := reg.Counter(obs.L("pipeline_runs_total", "pipeline", "wordwise", "result", "error")); c.Value() != 1 {
		t.Errorf("runs error = %d, want 1", c.Value())
	}
}
