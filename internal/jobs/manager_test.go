package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/swa"
)

// testBatch returns count deterministic pairs and their reference scores.
func testBatch(seed uint64, count int) ([]dna.Pair, []int) {
	rng := rand.New(rand.NewPCG(seed, 0x7e57))
	pairs := dna.RandomPairs(rng, count, 8, 16)
	want := make([]int, count)
	for i, p := range pairs {
		want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return pairs, want
}

// newTestService builds a fast service: microsecond backoffs, full
// validation, exact scores.
func newTestService(t *testing.T, faults cudasim.FaultConfig) *alignsvc.Service {
	t.Helper()
	svc := alignsvc.New(alignsvc.Config{
		Seed:         7,
		Workers:      2,
		MaxAttempts:  2,
		BaseBackoff:  50 * time.Microsecond,
		MaxBackoff:   200 * time.Microsecond,
		ValidateFrac: 1,
		Faults:       faults,
		Metrics:      obs.NewRegistry(),
	})
	t.Cleanup(svc.Close)
	return svc
}

// newSlowService builds a service where every GPU attempt fails (forcing
// the full retry ladder down to the CPU rung) with real backoffs, so each
// chunk takes tens of milliseconds — long enough for tests to observe jobs
// mid-flight. Scores are still exact: the CPU rung computes them.
func newSlowService(t *testing.T) *alignsvc.Service {
	t.Helper()
	svc := alignsvc.New(alignsvc.Config{
		Seed:            7,
		Workers:         2,
		MaxAttempts:     2,
		BaseBackoff:     10 * time.Millisecond,
		MaxBackoff:      10 * time.Millisecond,
		ValidateFrac:    1,
		Faults:          cudasim.FaultConfig{Seed: 1, Launch: 1.0},
		BreakerFailures: -1,
		Metrics:         obs.NewRegistry(),
	})
	t.Cleanup(svc.Close)
	return svc
}

func newTestManager(t *testing.T, dir string, svc *alignsvc.Service, tweak func(*Config)) (*Manager, *jobstore.Store) {
	t.Helper()
	store, _, err := jobstore.Open(jobstore.Options{Dir: dir, Sync: jobstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:        store,
		Service:      svc,
		ChunkSize:    4,
		ChunkTimeout: 30 * time.Second,
		Metrics:      obs.NewRegistry(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	return m, store
}

func waitState(t *testing.T, m *Manager, id string, want jobstore.State, d time.Duration) Snapshot {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached terminal %s (%s), want %s", id, snap.State, snap.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d chunks), want %s",
				id, snap.State, snap.ChunksDone, snap.Chunks, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	svc := newTestService(t, cudasim.FaultConfig{})
	m, store := newTestManager(t, t.TempDir(), svc, nil)
	defer store.Close()
	defer m.Close()

	pairs, want := testBatch(1, 10)
	snap, created, err := m.Submit(pairs, "key-a")
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if snap.Chunks != 3 || snap.Pairs != 10 || snap.State != jobstore.StateQueued {
		t.Fatalf("submit snapshot: %+v", snap)
	}
	done := waitState(t, m, snap.ID, jobstore.StateDone, 10*time.Second)
	if done.ChunksDone != 3 {
		t.Fatalf("done with %d/%d chunks", done.ChunksDone, done.Chunks)
	}
	scores, res, err := m.Result(snap.ID)
	if err != nil || res.State != jobstore.StateDone {
		t.Fatalf("result: %v (%+v)", err, res)
	}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, scores[i], want[i])
		}
	}
	st := m.Stats()
	if st.Completed != 1 || st.ChunksExecuted != 3 || st.ChunksCheckpointed != 3 || st.ChunksSkipped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestIdempotencyKeyDedup(t *testing.T) {
	svc := newTestService(t, cudasim.FaultConfig{})
	m, store := newTestManager(t, t.TempDir(), svc, nil)
	defer store.Close()
	defer m.Close()

	pairs, _ := testBatch(2, 4)
	first, created, err := m.Submit(pairs, "same-key")
	if err != nil || !created {
		t.Fatal(err)
	}
	second, created, err := m.Submit(pairs, "same-key")
	if err != nil {
		t.Fatal(err)
	}
	if created || second.ID != first.ID {
		t.Fatalf("dedup miss: created=%v id=%s want %s", created, second.ID, first.ID)
	}
	if m.Stats().DedupHits != 1 {
		t.Fatalf("dedup hits: %+v", m.Stats())
	}
	// A different key makes a different job.
	third, created, err := m.Submit(pairs, "other-key")
	if err != nil || !created || third.ID == first.ID {
		t.Fatalf("distinct key reused job: %v %v", third.ID, err)
	}
}

func TestQueueBoundRejectsWithErrQueueFull(t *testing.T) {
	// One runner, pinned down by a slow job; the queue fills behind it.
	svc := newSlowService(t)
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueued = 2
		c.ChunkSize = 1
	})
	defer store.Close()
	defer m.Close()

	big, _ := testBatch(3, 32)
	if _, _, err := m.Submit(big, ""); err != nil {
		t.Fatal(err)
	}
	small, _ := testBatch(4, 1)
	var sawFull bool
	for i := 0; i < 8; i++ {
		if _, _, err := m.Submit(small, ""); errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("queue bound never tripped")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	svc := newSlowService(t)
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 1
	})
	defer store.Close()
	defer m.Close()

	long, _ := testBatch(5, 16)
	running, _, err := m.Submit(long, "")
	if err != nil {
		t.Fatal(err)
	}
	queuedPairs, _ := testBatch(6, 4)
	queued, _, err := m.Submit(queuedPairs, "")
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job before the runner reaches it.
	snap, err := m.Cancel(queued.ID)
	if err != nil || snap.State != jobstore.StateCancelled {
		t.Fatalf("cancel queued: %+v err=%v", snap, err)
	}
	// Cancel is idempotent on terminal jobs.
	if snap, err = m.Cancel(queued.ID); err != nil || snap.State != jobstore.StateCancelled {
		t.Fatalf("re-cancel: %+v err=%v", snap, err)
	}

	waitState(t, m, running.ID, jobstore.StateRunning, 5*time.Second)
	if snap, err = m.Cancel(running.ID); err != nil || snap.State != jobstore.StateCancelled {
		t.Fatalf("cancel running: %+v err=%v", snap, err)
	}
	// Result answers with the terminal snapshot, not an error.
	if _, res, err := m.Result(running.ID); err != nil || res.State != jobstore.StateCancelled {
		t.Fatalf("result of cancelled job: %+v err=%v", res, err)
	}
	if m.Stats().Cancelled != 2 {
		t.Fatalf("cancelled count: %+v", m.Stats())
	}
	// The cancelled-while-queued job must never have executed a chunk.
	cur, err := m.Get(queued.ID)
	if err != nil || cur.ChunksDone != 0 {
		t.Fatalf("cancelled queued job ran: %+v err=%v", cur, err)
	}
}

func TestRecoveryResumesFromCheckpoints(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: run a job partially on a slow service, then hard-close
	// (crash semantics — the job is left running in the WAL).
	slow := newSlowService(t)
	m1, store1 := newTestManager(t, dir, slow, func(c *Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 2
	})
	pairs, want := testBatch(7, 20) // 10 chunks
	snap, _, err := m1.Submit(pairs, "resume-key")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, err := m1.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.ChunksDone >= 3 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job never reached 3 checkpoints: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close() // hard stop: no drain, no requeue
	store1.Close()

	// Phase 2: reopen with a fast service; recovery must requeue the job
	// and finish it without re-executing the checkpointed chunks.
	fast := newTestService(t, cudasim.FaultConfig{})
	m2, store2 := newTestManager(t, dir, fast, func(c *Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 2
	})
	defer store2.Close()
	defer m2.Close()

	st := m2.Stats()
	if st.Recovered != 1 || st.RecoveredChunks < 3 {
		t.Fatalf("recovery stats: %+v", st)
	}
	preDone := st.RecoveredChunks

	done := waitState(t, m2, snap.ID, jobstore.StateDone, 15*time.Second)
	if done.ChunksDone != 10 {
		t.Fatalf("resumed job chunks: %+v", done)
	}
	scores, _, err := m2.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("resumed score[%d] = %d, want %d", i, scores[i], want[i])
		}
	}
	st = m2.Stats()
	if st.ChunksSkipped != preDone {
		t.Fatalf("skipped %d chunks, want the %d recovered ones", st.ChunksSkipped, preDone)
	}
	if st.ChunksExecuted != 10-preDone {
		t.Fatalf("executed %d chunks, want %d", st.ChunksExecuted, 10-preDone)
	}
	// The WAL is the proof: no chunk index may be checkpointed twice.
	assertNoDuplicateChunks(t, dir)
	// Idempotency keys survive recovery.
	dup, created, err := m2.Submit(pairs, "resume-key")
	if err != nil || created || dup.ID != snap.ID {
		t.Fatalf("post-recovery dedup: created=%v id=%s err=%v", created, dup.ID, err)
	}
}

// assertNoDuplicateChunks replays the WAL and fails if any (job, chunk)
// was checkpointed more than once — the duplicate-execution detector shared
// with the chaos soak.
func assertNoDuplicateChunks(t *testing.T, dir string) {
	t.Helper()
	recs, _, err := jobstore.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, rec := range recs {
		if rec.Type != jobstore.RecChunk {
			continue
		}
		key := fmt.Sprintf("%s/%d", rec.Chunk.ID, rec.Chunk.Index)
		if seen[key] {
			t.Fatalf("chunk %s checkpointed twice", key)
		}
		seen[key] = true
	}
}

func TestDrainRequeuesRunningJob(t *testing.T) {
	dir := t.TempDir()
	slow := newSlowService(t)
	m, store := newTestManager(t, dir, slow, func(c *Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 1
	})
	defer store.Close()

	long, _ := testBatch(8, 16)
	snap, _, err := m.Submit(long, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobstore.StateRunning, 5*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cur, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.State != jobstore.StateQueued {
		t.Fatalf("drained job state = %s, want queued (checkpoint-and-requeue)", cur.State)
	}
	if m.Stats().Requeued != 1 {
		t.Fatalf("requeued count: %+v", m.Stats())
	}
	// Submissions during drain fail fast.
	if _, _, err := m.Submit(long, ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v", err)
	}
	m.Close()

	// The requeued job resumes on the next manager and completes.
	fast := newTestService(t, cudasim.FaultConfig{})
	m2, store2 := newTestManager(t, dir, fast, func(c *Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 1
	})
	defer store2.Close()
	defer m2.Close()
	done := waitState(t, m2, snap.ID, jobstore.StateDone, 20*time.Second)
	if done.ChunksDone != 16 {
		t.Fatalf("post-drain completion: %+v", done)
	}
	assertNoDuplicateChunks(t, dir)
}

func TestGCDropsExpiredTerminalJobs(t *testing.T) {
	svc := newTestService(t, cudasim.FaultConfig{})
	now := time.Now()
	clock := func() time.Time { return now }
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) {
		c.TTL = time.Hour
		c.GCInterval = time.Hour // sweeps driven manually below
		c.now = clock
	})
	defer store.Close()
	defer m.Close()

	pairs, _ := testBatch(9, 4)
	snap, _, err := m.Submit(pairs, "gc-key")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobstore.StateDone, 10*time.Second)

	m.gcOnce() // fresh terminal job survives
	if _, err := m.Get(snap.ID); err != nil {
		t.Fatalf("fresh job GC'd: %v", err)
	}
	now = now.Add(2 * time.Hour)
	m.gcOnce()
	if _, err := m.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired job survived GC: %v", err)
	}
	if m.Stats().GCDropped != 1 {
		t.Fatalf("gc stats: %+v", m.Stats())
	}
	// The key is free again: a re-submission makes a new job.
	again, created, err := m.Submit(pairs, "gc-key")
	if err != nil || !created || again.ID == snap.ID {
		t.Fatalf("post-GC resubmit: created=%v err=%v", created, err)
	}
}

func TestJobUnderFaultsStillExact(t *testing.T) {
	svc := newTestService(t, cudasim.FaultConfig{
		Seed: 42, HtoD: 0.2, DtoH: 0.2, Launch: 0.2, BitFlip: 0.2,
	})
	m, store := newTestManager(t, t.TempDir(), svc, nil)
	defer store.Close()
	defer m.Close()

	pairs, want := testBatch(10, 16)
	snap, _, err := m.Submit(pairs, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobstore.StateDone, 30*time.Second)
	scores, _, err := m.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("faulty-path score[%d] = %d, want %d", i, scores[i], want[i])
		}
	}
}

func TestResultErrors(t *testing.T) {
	svc := newSlowService(t)
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) {
		c.MaxConcurrent = 1
		c.ChunkSize = 1
	})
	defer store.Close()
	defer m.Close()

	if _, _, err := m.Result("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing job: %v", err)
	}
	long, _ := testBatch(11, 16)
	if _, _, err := m.Submit(long, ""); err != nil {
		t.Fatal(err)
	}
	pairs, _ := testBatch(12, 8)
	snap, _, err := m.Submit(pairs, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Result(snap.ID); !errors.Is(err, ErrNotReady) {
		t.Fatalf("queued job result: %v", err)
	}
}
