package jobs

import (
	"context"
	"testing"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/cudasim"
	"repro/internal/jobstore"
	"repro/internal/obs"
)

// newCachedTestService is newTestService plus a score cache.
func newCachedTestService(t *testing.T) *alignsvc.Service {
	t.Helper()
	svc := alignsvc.New(alignsvc.Config{
		Seed:         7,
		Workers:      2,
		ValidateFrac: 1,
		Cache: aligncache.New(aligncache.Config{
			MaxBytes: 4 << 20,
			Metrics:  obs.NewRegistry(),
		}),
		Metrics: obs.NewRegistry(),
	})
	t.Cleanup(svc.Close)
	return svc
}

// TestRecoveryWarmsCacheFromCheckpoints runs a job to completion, then
// reopens the store against a fresh service+cache: the new manager must
// republish every checkpointed score into the cache, so re-submitted
// identical pairs are served without a single dispatch — the durable cache
// story across process restarts.
func TestRecoveryWarmsCacheFromCheckpoints(t *testing.T) {
	dir := t.TempDir()
	pairs, want := testBatch(5, 12)

	svc1 := newCachedTestService(t)
	m1, store1 := newTestManager(t, dir, svc1, nil)
	snap, _, err := m1.Submit(pairs, "warm-key")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, jobstore.StateDone, 10*time.Second)
	m1.Close()
	store1.Close()

	// "Restart": fresh service, empty cache, same WAL.
	svc2 := newCachedTestService(t)
	m2, store2 := newTestManager(t, dir, svc2, nil)
	defer store2.Close()
	defer m2.Close()

	if got := m2.Stats().CacheWarmed; got != int64(len(pairs)) {
		t.Fatalf("CacheWarmed = %d, want %d", got, len(pairs))
	}
	cst := svc2.CacheStats()
	if cst == nil || cst.Entries != int64(len(pairs)) {
		t.Fatalf("cache after warming: %+v, want %d entries", cst, len(pairs))
	}

	res, err := svc2.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Scores[i] != want[i] {
			t.Fatalf("warmed score[%d] = %d, want %d", i, res.Scores[i], want[i])
		}
	}
	if res.Report.CacheHits != len(pairs) {
		t.Fatalf("warmed batch: %d/%d hits", res.Report.CacheHits, len(pairs))
	}
	if st := svc2.Stats(); st.Batches != 0 {
		t.Fatalf("warmed batch still dispatched: %+v", st)
	}
}

// TestWarmingSkippedWithoutCache pins that a cache-less service keeps the
// original recovery behaviour and reports zero warmed entries.
func TestWarmingSkippedWithoutCache(t *testing.T) {
	dir := t.TempDir()
	pairs, _ := testBatch(6, 8)

	svc1 := newTestService(t, cudasim.FaultConfig{})
	m1, store1 := newTestManager(t, dir, svc1, nil)
	snap, _, err := m1.Submit(pairs, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, jobstore.StateDone, 10*time.Second)
	m1.Close()
	store1.Close()

	svc2 := newTestService(t, cudasim.FaultConfig{})
	m2, store2 := newTestManager(t, dir, svc2, nil)
	defer store2.Close()
	defer m2.Close()
	if got := m2.Stats().CacheWarmed; got != 0 {
		t.Fatalf("CacheWarmed = %d without a cache", got)
	}
}
