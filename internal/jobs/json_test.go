package jobs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/jobstore"
)

func TestSnapshotJSONRoundTrip(t *testing.T) {
	created := time.Date(2026, 8, 6, 10, 30, 0, 0, time.UTC)
	in := Snapshot{
		ID:         "job-00000000deadbeef",
		Key:        "batch-42",
		State:      jobstore.StateFailed,
		Error:      "chunk 3/8: deadline exceeded after 1m0s",
		Pairs:      100,
		ChunkSize:  16,
		Chunks:     7,
		ChunksDone: 3,
		Created:    created,
		Updated:    created.Add(1500 * time.Millisecond),
		Elapsed:    1500 * time.Millisecond,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// The wire format is snake_case with ms-denominated times.
	for _, want := range []string{
		`"id":"job-00000000deadbeef"`,
		`"idempotency_key":"batch-42"`,
		`"state":"failed"`,
		`"error":"chunk 3/8: deadline exceeded after 1m0s"`,
		`"pairs":100`,
		`"chunk_size":16`,
		`"chunks":7`,
		`"chunks_done":3`,
		`"created_unix_ms":`,
		`"updated_unix_ms":`,
		`"elapsed_ms":1500`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("marshal missing %s in %s", want, b)
		}
	}
	var out Snapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestSnapshotJSONOmitsEmpty(t *testing.T) {
	b, err := json.Marshal(Snapshot{ID: "job-1", State: jobstore.StateQueued})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "idempotency_key") {
		t.Errorf("empty key not omitted: %s", b)
	}
	if strings.Contains(string(b), `"error"`) {
		t.Errorf("empty error not omitted: %s", b)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	in := Stats{
		Submitted: 10, DedupHits: 2, Completed: 6, Failed: 1, Cancelled: 1,
		Recovered: 3, RecoveredChunks: 12, Requeued: 2,
		ChunksExecuted: 40, ChunksCheckpointed: 40, ChunksSkipped: 12,
		GCDropped: 4, Queued: 1, Running: 1, JobsHeld: 8, MaxQueued: 64,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"submitted":10`, `"dedup_hits":2`, `"completed":6`, `"failed":1`,
		`"cancelled":1`, `"recovered":3`, `"recovered_chunks":12`,
		`"requeued":2`, `"chunks_executed":40`, `"chunks_checkpointed":40`,
		`"chunks_skipped":12`, `"gc_dropped":4`, `"queued":1`, `"running":1`,
		`"jobs_held":8`, `"max_queued":64`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("marshal missing %s in %s", want, b)
		}
	}
	var out Stats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
	}
}
