// The job event hub: live progress feeds for async jobs, consumed by the
// server's SSE endpoint (GET /jobs/{id}/events). Publishing is strictly
// non-blocking — each subscriber owns a bounded ring buffer that drops its
// oldest event when full, so a stalled SSE client can never hold up chunk
// checkpointing — and a subscriber that goes away just unhooks itself from
// the hub; the runner never learns or cares.

package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
)

// Event types published on a job's feed.
const (
	// EventSnapshot seeds every new subscription with the job's current
	// state, so subscribing after progress replays the last checkpoint.
	EventSnapshot = "snapshot"
	// EventState marks a state-machine transition (queued, running, done,
	// failed, cancelled — and the running→queued park on drain).
	EventState = "state"
	// EventChunk marks one chunk checkpoint reaching the WAL.
	EventChunk = "chunk"
	// EventDrain is the final event of a feed when the manager shuts down;
	// the subscription is closed right after it.
	EventDrain = "drain"
)

// Event is one entry on a job's progress feed. Seq increases by 1 per
// published event of the job (the snapshot seed reuses the latest seq), so
// subscribers can detect drops.
type Event struct {
	Seq  uint64
	Type string
	Job  Snapshot
}

type eventJSON struct {
	Seq  uint64   `json:"seq"`
	Type string   `json:"type"`
	Job  Snapshot `json:"job"`
}

// MarshalJSON follows the package's stable snake_case wire format.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON(e))
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (e *Event) UnmarshalJSON(b []byte) error {
	var in eventJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*e = Event(in)
	return nil
}

// ErrSubClosed ends a subscriber's Next loop: the subscription was closed
// by Close, the job feed finishing, or manager shutdown.
var ErrSubClosed = errors.New("jobs: subscription closed")

// Sub is one subscriber's bounded view of a job feed. Read with Next,
// release with Close (idempotent; Close is the disconnect path and must
// always be called, or the hub keeps a dead entry until shutdown).
type Sub struct {
	hub   *hub
	jobID string

	mu      sync.Mutex
	buf     []Event // ring: oldest at head
	head, n int
	dropped uint64
	closed  bool
	notify  chan struct{} // cap 1: "buffer went non-empty or closed"
}

// push appends an event, dropping the oldest when the ring is full. Called
// by the hub with sub.mu NOT held; never blocks.
func (s *Sub) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next pops the oldest buffered event, blocking until one arrives, ctx
// expires, or the subscription closes (ErrSubClosed).
func (s *Sub) Next(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev := s.buf[s.head]
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.mu.Unlock()
			return ev, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, ErrSubClosed
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// Dropped counts events this subscriber lost to ring overflow.
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscriber from the hub. Buffered events remain
// readable until drained; then Next returns ErrSubClosed. Idempotent.
func (s *Sub) Close() {
	s.hub.unsubscribe(s.jobID, s)
	s.markClosed()
}

// markClosed flips the closed flag and wakes a blocked Next.
func (s *Sub) markClosed() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// hub fans job events out to subscribers. All methods are safe for
// concurrent use and none of them ever blocks on a subscriber.
type hub struct {
	mu       sync.Mutex
	subs     map[string][]*Sub // job ID → subscribers
	seq      map[string]uint64 // job ID → last published seq
	bufSize  int
	shutdown bool
}

func newHub(bufSize int) *hub {
	if bufSize <= 0 {
		bufSize = 16
	}
	return &hub{
		subs:    make(map[string][]*Sub),
		seq:     make(map[string]uint64),
		bufSize: bufSize,
	}
}

// subscribe registers a subscriber seeded with a snapshot event carrying
// the job's current progress at the feed's current seq. A subscription to
// an already-terminal job (its feed ended at the terminal publish) is born
// closed: it delivers the snapshot and then ErrSubClosed, and is never
// registered with the hub.
func (h *hub) subscribe(jobID string, seed Snapshot) *Sub {
	s := &Sub{
		hub:    h,
		jobID:  jobID,
		buf:    make([]Event, h.bufSize),
		notify: make(chan struct{}, 1),
	}
	h.mu.Lock()
	seedEv := Event{Seq: h.seq[jobID], Type: EventSnapshot, Job: seed}
	// Seed before the Sub becomes visible to publish, while still holding
	// the hub lock: the snapshot is guaranteed first in the ring, and no
	// concurrent publish can slip a newer event ahead of it.
	s.push(seedEv)
	switch {
	case h.shutdown:
		h.mu.Unlock()
		s.push(Event{Seq: seedEv.Seq, Type: EventDrain, Job: seed})
		s.markClosed()
	case seed.State.Terminal():
		h.mu.Unlock()
		s.markClosed()
	default:
		h.subs[jobID] = append(h.subs[jobID], s)
		h.mu.Unlock()
	}
	return s
}

func (h *hub) unsubscribe(jobID string, s *Sub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	list := h.subs[jobID]
	for i, cur := range list {
		if cur == s {
			h.subs[jobID] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(h.subs[jobID]) == 0 {
		delete(h.subs, jobID)
	}
}

// publish fans one event out to the job's subscribers (drop-oldest per
// subscriber) and, when the event is terminal for the feed, closes them.
func (h *hub) publish(jobID, typ string, job Snapshot) {
	h.mu.Lock()
	if h.shutdown {
		h.mu.Unlock()
		return
	}
	h.seq[jobID]++
	ev := Event{Seq: h.seq[jobID], Type: typ, Job: job}
	subs := append([]*Sub(nil), h.subs[jobID]...)
	terminal := job.State.Terminal()
	if terminal {
		delete(h.subs, jobID)
		delete(h.seq, jobID)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
		if terminal {
			s.markClosed()
		}
	}
}

// close shuts the hub down: every subscriber gets a final drain event and
// is closed; later publishes are dropped and later subscribes are born
// closed (seeded with snapshot + drain). Idempotent.
func (h *hub) close() {
	h.mu.Lock()
	if h.shutdown {
		h.mu.Unlock()
		return
	}
	h.shutdown = true
	var all []*Sub
	var evs []Event
	for jobID, list := range h.subs {
		for _, s := range list {
			all = append(all, s)
			evs = append(evs, Event{Seq: h.seq[jobID] + 1, Type: EventDrain})
		}
	}
	h.subs = make(map[string][]*Sub)
	h.mu.Unlock()
	for i, s := range all {
		s.push(evs[i])
		s.markClosed()
	}
}

// subscribers counts live subscriptions (tests use it for leak checks).
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, list := range h.subs {
		n += len(list)
	}
	return n
}
