package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/jobstore"
	"repro/internal/obs"
)

// Search-specific manager errors.
var (
	// ErrWrongKind is returned when a kind-specific accessor is used on a
	// job of the other kind (it aliases the store's sentinel so errors.Is
	// matches wherever the mismatch surfaced).
	ErrWrongKind = jobstore.ErrWrongKind
	// ErrNoCorpus rejects a search submission naming an unmounted corpus.
	ErrNoCorpus = errors.New("jobs: unknown corpus")
)

// SubmitSearchFor persists a new corpus-search job owned by a tenant and
// queues it. The search parameters are resolved (defaults filled) before
// they hit the WAL, and the corpus content fingerprint is pinned
// alongside them, so a resumed job re-derives exactly the submit-time
// candidate set — or fails typed if the corpus was rebuilt underneath
// it. Idempotency keys and tenant quotas behave exactly as in SubmitFor.
func (m *Manager) SubmitSearchFor(corpusName string, query dna.Seq, p corpus.Params, key, tenantID string) (snap Snapshot, created bool, err error) {
	tid := normalizeTenant(tenantID)
	if m.Draining() {
		return Snapshot{}, false, ErrDraining
	}
	if len(query) == 0 {
		return Snapshot{}, false, errors.New("jobs: empty query")
	}
	if strings.ContainsRune(key, 0) {
		return Snapshot{}, false, errors.New("jobs: idempotency key must not contain NUL bytes")
	}
	h, ok := m.corpora().Get(corpusName)
	if !ok {
		return Snapshot{}, false, fmt.Errorf("%w: %q", ErrNoCorpus, corpusName)
	}
	sk := storeKey(tid, key)
	if sk != "" {
		if j, ok := m.store.ByKey(sk); ok && j.Tenant == tid {
			m.dedupHits.Add(1)
			m.obs.Counter("jobs_dedup_hits_total").Inc()
			return m.snapshot(j), false, nil
		}
	}
	if max := m.cfg.Tenants.MaxRunningJobs(tid); max > 0 {
		if live := m.store.ActiveByTenant(tid); live >= max {
			return Snapshot{}, false, fmt.Errorf("%w: tenant %q has %d live job(s), cap %d",
				ErrQuota, displayTenant(tid), live, max)
		}
	}
	if m.queue.len() >= m.cfg.MaxQueued {
		return Snapshot{}, false, fmt.Errorf("%w (%d queued)", ErrQueueFull, m.cfg.MaxQueued)
	}
	p = p.Resolved(len(query))
	spec := jobstore.SearchSpec{
		Corpus:      corpusName,
		Fingerprint: h.Corpus.Fingerprint(),
		Query:       query.String(),
		TopK:        p.TopK,
		MinKmerHits: p.MinKmerHits,
		MaxEdits:    p.MaxEdits,
		SeqCount:    h.Corpus.Len(),
	}
	j, err := m.store.SubmitSearch(m.newJobID(), sk, tid, m.cfg.SearchChunkSize, spec)
	if err != nil {
		return Snapshot{}, false, err
	}
	m.submitted.Add(1)
	m.obs.Counter("jobs_submitted_total").Inc()
	m.refreshStateGauges()
	m.hub.publish(j.ID, EventState, m.snapshot(j))
	m.queue.push(j.ID)
	return m.snapshot(j), true, nil
}

// corpora returns the configured corpus registry, or an empty one so
// lookup sites need no nil checks.
func (m *Manager) corpora() *corpus.Registry {
	if m.cfg.Corpora == nil {
		return emptyCorpora
	}
	return m.cfg.Corpora
}

var emptyCorpora = corpus.NewRegistry()

// SearchResult returns the merged ranked hits of a done search job.
// Unfinished jobs fail with ErrNotReady; failed/cancelled jobs return
// their snapshot alongside nil hits (mirroring Result); alignment jobs
// fail with ErrWrongKind.
func (m *Manager) SearchResult(id string) ([]corpus.Hit, Snapshot, error) {
	j, ok := m.store.Get(id)
	if !ok {
		return nil, Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	snap := m.snapshot(j)
	if j.Kind != jobstore.KindSearch {
		return nil, snap, fmt.Errorf("%w: job %s is an alignment job", ErrWrongKind, id)
	}
	switch j.State {
	case jobstore.StateDone:
		data, err := j.SearchHits()
		if err != nil {
			return nil, snap, err
		}
		hits := make([]corpus.Hit, len(data))
		for i, h := range data {
			hits[i] = corpus.Hit{ID: h.ID, Name: h.Name, Score: h.Score}
		}
		return hits, snap, nil
	case jobstore.StateFailed, jobstore.StateCancelled:
		return nil, snap, nil
	}
	return nil, snap, fmt.Errorf("%w: %s is %s", ErrNotReady, id, j.State)
}

// SearchResultFor is SearchResult scoped to the owning tenant.
func (m *Manager) SearchResultFor(id, tenantID string) ([]corpus.Hit, Snapshot, error) {
	if _, err := m.owned(id, tenantID); err != nil {
		return nil, Snapshot{}, err
	}
	return m.SearchResult(id)
}

// runSearchJob executes a claimed search job chunk by chunk over the
// corpus sequence-ID space, checkpointing each chunk's top-K hits. The
// prefilter is recomputed up front — it is deterministic in (corpus,
// query, params), all of which the WAL pins — so a resumed job sees the
// identical candidate set and skips exactly its checkpointed chunks.
// finish/endJob are runJob's state-transition closures.
func (m *Manager) runSearchJob(ctx context.Context, id string, j *jobstore.Job, tr *obs.Trace,
	finish func(jobstore.State, string), endJob func()) {
	spec := j.Search
	h, ok := m.corpora().Get(spec.Corpus)
	if !ok {
		finish(jobstore.StateFailed, fmt.Sprintf("corpus %q not mounted", spec.Corpus))
		return
	}
	if fp := h.Corpus.Fingerprint(); fp != spec.Fingerprint {
		finish(jobstore.StateFailed, fmt.Sprintf(
			"corpus %q fingerprint %s does not match submit-time %s (corpus rebuilt?)",
			spec.Corpus, fp, spec.Fingerprint))
		return
	}
	if h.Corpus.Len() != spec.SeqCount {
		finish(jobstore.StateFailed, fmt.Sprintf("corpus %q has %d sequences, submit-time %d",
			spec.Corpus, h.Corpus.Len(), spec.SeqCount))
		return
	}
	q, err := dna.Parse(spec.Query)
	if err != nil {
		finish(jobstore.StateFailed, fmt.Sprintf("query: %v", err))
		return
	}
	p := corpus.Params{TopK: spec.TopK, MinKmerHits: spec.MinKmerHits, MaxEdits: spec.MaxEdits}
	cand := h.Corpus.Prefilter(q, p)

	chunkLat := m.obs.Histogram("jobs_chunk_seconds", obs.LatencyBuckets)
	for c := 0; c < j.NumChunks(); c++ {
		if _, done := j.SearchChunks[c]; done {
			// Checkpointed before a crash or drain: skip, never re-execute.
			m.chunksSkipped.Add(1)
			m.obs.Counter("jobs_chunks_skipped_total").Inc()
			continue
		}
		if m.closing.Load() {
			// Hard stop: leave the job running in the WAL, exactly like a
			// crash; the next open recovers and resumes it.
			endJob()
			return
		}
		if m.Draining() {
			finish(jobstore.StateQueued, "") // checkpoint-and-requeue
			return
		}
		if cur, ok := m.store.Get(id); !ok || cur.State != jobstore.StateRunning {
			endJob() // cancelled (or dropped) underneath us
			if m.cfg.Traces != nil {
				m.cfg.Traces.Add(tr)
			}
			return
		}

		lo, hi := j.ChunkBounds(c)
		chunkCtx, cancel := context.WithTimeout(ctx, m.cfg.ChunkTimeout)
		endChunk := tr.StartSpan(fmt.Sprintf("jobs.search.chunk.%d", c))
		begin := time.Now()
		hits, _, err := h.Searcher.ScoreRange(chunkCtx, q, cand.IDs, lo, hi, spec.TopK)
		cancel()
		endChunk()
		if err != nil {
			if m.closing.Load() {
				endJob()
				return // crash semantics, see above
			}
			if cur, ok := m.store.Get(id); ok && cur.State.Terminal() {
				endJob() // cancelled mid-chunk; state already terminal
				if m.cfg.Traces != nil {
					m.cfg.Traces.Add(tr)
				}
				return
			}
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				finish(jobstore.StateFailed, fmt.Sprintf("chunk %d/%d: deadline exceeded after %v",
					c, j.NumChunks(), m.cfg.ChunkTimeout))
			case errors.Is(err, context.Canceled):
				finish(jobstore.StateFailed, fmt.Sprintf("chunk %d/%d: canceled", c, j.NumChunks()))
			default:
				finish(jobstore.StateFailed, fmt.Sprintf("chunk %d/%d: %v", c, j.NumChunks(), err))
			}
			return
		}
		m.chunksExecuted.Add(1)
		m.obs.Counter("jobs_chunks_executed_total").Inc()
		chunkLat.ObserveDuration(time.Since(begin))
		data := make([]jobstore.HitData, len(hits))
		for i, ht := range hits {
			data[i] = jobstore.HitData{ID: ht.ID, Name: ht.Name, Score: ht.Score}
		}
		if err := m.store.AddSearchChunk(id, c, data); err != nil {
			if cur, ok := m.store.Get(id); ok && cur.State.Terminal() {
				endJob() // cancelled between scoring and checkpoint
				if m.cfg.Traces != nil {
					m.cfg.Traces.Add(tr)
				}
				return
			}
			finish(jobstore.StateFailed, fmt.Sprintf("checkpoint chunk %d: %v", c, err))
			return
		}
		m.chunksCheckpointed.Add(1)
		m.obs.Counter("jobs_chunks_checkpointed_total").Inc()
		m.publishEvent(id, EventChunk)
	}
	finish(jobstore.StateDone, "")
}
