// Package jobs turns the synchronous alignment service into durable async
// batch jobs. A Manager splits each submitted batch into fixed-size chunks,
// runs every chunk through alignsvc.Align (inheriting its retry, circuit
// breaker and degradation machinery), and checkpoints each completed
// chunk's scores to a jobstore WAL — so a crash, SIGKILL or drain loses at
// most the chunk in flight. On startup the manager replays the WAL and
// requeues every incomplete job, resuming from the last checkpoint:
// already-checkpointed chunks are skipped, never re-executed (the store
// rejects duplicate checkpoints outright).
//
// Execution is a bounded pool: MaxConcurrent runner goroutines pull job IDs
// from a FIFO queue whose depth Submit enforces (ErrQueueFull beyond it).
// Terminal jobs are garbage-collected after a TTL. BeginDrain stops runners
// at the next chunk boundary and requeues their jobs (running → queued in
// the WAL) instead of waiting for completion — the durable analogue of the
// server's graceful drain.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// Typed manager errors, mapped onto HTTP statuses by the server.
var (
	// ErrQueueFull rejects a submission when MaxQueued jobs are already
	// waiting (backpressure; retryable).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects submissions during shutdown.
	ErrDraining = errors.New("jobs: manager draining")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrNotReady is returned by Result for a job that has no result yet.
	ErrNotReady = errors.New("jobs: job not finished")
	// ErrQuota rejects a submission that would exceed the tenant's
	// running-job cap (429 quota_exceeded at the server; retry after a job
	// finishes).
	ErrQuota = errors.New("jobs: tenant running-job quota exceeded")
)

// Config tunes the manager. Store and Service are required.
type Config struct {
	// Store is the WAL-backed job store (already opened and replayed).
	// The manager does not own it: callers Close it after Manager.Close.
	Store *jobstore.Store
	// Service executes the chunks. Shared with the synchronous /align path.
	Service *alignsvc.Service
	// ChunkSize is the number of pairs per chunk — the checkpoint (and
	// resume) granularity (default 64).
	ChunkSize int
	// Corpora, when set, enables kind:"search" jobs against its mounted
	// corpora (see SubmitSearchFor). Nil rejects search submissions.
	Corpora *corpus.Registry
	// SearchChunkSize is the number of corpus sequence IDs per search-job
	// chunk — the search checkpoint granularity (default 4096).
	SearchChunkSize int
	// MaxConcurrent bounds how many jobs execute at once (default 2).
	// MaxQueued bounds how many more may wait in FIFO order (default 64);
	// beyond that Submit fails fast with ErrQueueFull.
	MaxConcurrent, MaxQueued int
	// ChunkTimeout is the per-chunk deadline flowing into the service's
	// ladder (default 60s). A chunk that exceeds it fails the job.
	ChunkTimeout time.Duration
	// TTL is how long terminal jobs stay queryable before GC drops them
	// from the store (default 15m). GCInterval is the sweep period
	// (default 1m).
	TTL, GCInterval time.Duration
	// Metrics receives job-state gauges, checkpoint/recovery counters and
	// chunk-latency histograms (default obs.Default()).
	Metrics *obs.Registry
	// Traces, when set, receives one trace per finished job run with spans
	// for every executed chunk (the server wires its /tracez ring here).
	Traces *obs.TraceRing
	// Tenants, when set, supplies per-tenant running-job caps enforced by
	// SubmitFor against the WAL-backed store (so quotas hold across
	// restarts). Nil means every tenant is unlimited.
	Tenants *tenant.Registry
	// EventBuffer is each progress subscriber's ring-buffer depth; a slow
	// SSE client beyond it loses its oldest events instead of slowing the
	// runners (default 16).
	EventBuffer int

	// now replaces the GC clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64
	}
	if c.SearchChunkSize <= 0 {
		c.SearchChunkSize = 4096
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.ChunkTimeout <= 0 {
		c.ChunkTimeout = 60 * time.Second
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// fifo is the unbounded job queue: Submit enforces the depth bound, while
// recovery may exceed it (durable jobs are never dropped for queue space).
type fifo struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []string
	closed bool
}

func newFIFO() *fifo {
	q := &fifo{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fifo) push(id string) {
	q.mu.Lock()
	q.items = append(q.items, id)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks for the next ID; ok is false once the queue is closed and
// empty of signals (drain/shutdown).
func (q *fifo) pop() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id := q.items[0]
	q.items = q.items[1:]
	return id, true
}

func (q *fifo) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *fifo) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Manager runs the durable job state machine. Create with New (which
// recovers and requeues incomplete jobs from the store), submit with
// Submit, and shut down with BeginDrain + Drain + Close.
type Manager struct {
	cfg   Config
	store *jobstore.Store
	queue *fifo
	hub   *hub

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	gcQuit     chan struct{}
	gcDone     chan struct{}

	draining  chan struct{}
	drainOnce sync.Once
	closing   atomic.Bool

	running atomic.Int64

	submitted, dedupHits                          atomic.Int64
	completed, failed, cancelled                  atomic.Int64
	recovered, requeued                           atomic.Int64
	chunksExecuted, chunksCheckpointed            atomic.Int64
	chunksSkipped, gcDropped, recoveredChunksDone atomic.Int64
	cacheWarmed                                   atomic.Int64

	obs *obs.Registry
}

// New builds the manager, initializes the state gauges from the replayed
// store, requeues every incomplete job (resuming from its checkpoints), and
// starts the runner pool and the GC sweep.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil || cfg.Service == nil {
		return nil, errors.New("jobs: Config.Store and Config.Service are required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		store:      cfg.Store,
		queue:      newFIFO(),
		hub:        newHub(cfg.EventBuffer),
		baseCtx:    ctx,
		baseCancel: cancel,
		gcQuit:     make(chan struct{}),
		gcDone:     make(chan struct{}),
		draining:   make(chan struct{}),
		obs:        cfg.Metrics,
	}
	m.obs.Help("jobs_state", "Jobs currently in each state.")
	m.obs.Help("jobs_submitted_total", "Jobs accepted by Submit (excluding idempotency dedup hits).")
	m.obs.Help("jobs_terminal_total", "Jobs reaching a terminal state, by state.")
	m.obs.Help("jobs_chunks_executed_total", "Chunks actually computed by the alignment service.")
	m.obs.Help("jobs_chunks_checkpointed_total", "Chunk score checkpoints appended to the WAL.")
	m.obs.Help("jobs_chunks_skipped_total", "Already-checkpointed chunks skipped on resume.")
	m.obs.Help("jobs_recovered_total", "Incomplete jobs requeued by startup recovery.")
	m.obs.Help("jobs_requeued_total", "Running jobs checkpointed and requeued by drain.")
	m.obs.Help("jobs_chunk_seconds", "Wall time per executed chunk.")
	m.obs.Help("jobs_cache_warmed_total", "Pair scores republished from WAL checkpoints into the score cache at startup.")

	// Recovery: every incomplete job in the replayed store goes back on the
	// FIFO in submission order. Jobs the crash left "running" are returned
	// to queued first, so the WAL and the gauges agree with reality.
	for _, j := range m.store.List() {
		switch j.State {
		case jobstore.StateRunning:
			if _, err := m.store.SetState(j.ID, jobstore.StateQueued, ""); err != nil {
				return nil, fmt.Errorf("jobs: recover %s: %w", j.ID, err)
			}
			fallthrough
		case jobstore.StateQueued:
			m.queue.push(j.ID)
			m.recovered.Add(1)
			m.recoveredChunksDone.Add(int64(j.ChunksDone()))
			m.obs.Counter("jobs_recovered_total").Inc()
		}
	}
	m.refreshStateGauges()

	// Checkpointed chunk scores are durable and exact, so republish them
	// into the service's score cache: replayed chunks and re-submitted
	// identical pairs then hit instead of recomputing, even across process
	// restarts. Warming walks every job — terminal ones included, since
	// their scores are just as valid for future submissions.
	if cfg.Service.CacheEnabled() {
		warmed := 0
		for _, j := range m.store.List() {
			if j.Kind != "" {
				continue // search checkpoints hold hits, not pair scores
			}
			for c, scores := range j.Chunks {
				lo, hi := j.ChunkBounds(c)
				pairs, err := parsePairs(j.Pairs[lo:hi])
				if err != nil {
					continue // corrupt pairs fail the job at execution time, not here
				}
				warmed += cfg.Service.WarmCache(pairs, scores)
			}
		}
		if warmed > 0 {
			m.cacheWarmed.Add(int64(warmed))
			m.obs.Counter("jobs_cache_warmed_total").Add(int64(warmed))
		}
	}

	m.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go m.runner()
	}
	go m.gcLoop()
	return m, nil
}

// refreshStateGauges re-derives the per-state job gauges from the store.
func (m *Manager) refreshStateGauges() {
	counts := m.store.StateCounts()
	for _, st := range []jobstore.State{jobstore.StateQueued, jobstore.StateRunning,
		jobstore.StateDone, jobstore.StateFailed, jobstore.StateCancelled} {
		m.obs.Gauge(obs.L("jobs_state", "state", st.String())).Set(float64(counts[st]))
	}
}

// newJobID returns a fresh random job ID, re-rolling on the (cosmic-ray)
// chance of a collision with a live job.
func (m *Manager) newJobID() string {
	for {
		id := fmt.Sprintf("job-%016x", rand.Uint64())
		if _, exists := m.store.Get(id); !exists {
			return id
		}
	}
}

// normalizeTenant maps the wire tenant ID onto the store's owner field:
// the anonymous tenant is stored as "" (matching pre-tenancy WAL records).
func normalizeTenant(id string) string {
	if id == tenant.AnonymousID {
		return ""
	}
	return id
}

// displayTenant is the inverse of normalizeTenant, for errors and wire
// output.
func displayTenant(id string) string {
	if id == "" {
		return tenant.AnonymousID
	}
	return id
}

// storeKey namespaces an idempotency key by owning tenant, so equal keys
// from different tenants deduplicate independently (and one tenant can
// never be handed another tenant's job by key collision). Anonymous keys
// stay bare for WAL back-compat. The NUL separator cannot appear in either
// side: tenant.NewRegistry rejects NUL in tenant IDs and SubmitFor (plus
// the server's request validation) rejects NUL in client keys, so the
// namespacing is not forgeable through the JSON body.
func storeKey(tenantID, key string) string {
	if key == "" || tenantID == "" {
		return key
	}
	return tenantID + "\x00" + key
}

// Submit persists a new job owned by the anonymous tenant — see SubmitFor.
func (m *Manager) Submit(pairs []dna.Pair, key string) (snap Snapshot, created bool, err error) {
	return m.SubmitFor(pairs, key, "")
}

// SubmitFor persists a new job owned by a tenant and queues it, returning
// its snapshot. A non-empty idempotency key that matches one of the
// tenant's live jobs returns that job instead (created=false) — re-sent
// submissions are deduplicated, not re-executed. Submissions beyond the
// tenant's MaxRunningJobs cap fail with ErrQuota.
func (m *Manager) SubmitFor(pairs []dna.Pair, key, tenantID string) (snap Snapshot, created bool, err error) {
	tid := normalizeTenant(tenantID)
	if m.Draining() {
		return Snapshot{}, false, ErrDraining
	}
	if len(pairs) == 0 {
		return Snapshot{}, false, errors.New("jobs: empty batch")
	}
	if strings.ContainsRune(key, 0) {
		return Snapshot{}, false, errors.New("jobs: idempotency key must not contain NUL bytes")
	}
	sk := storeKey(tid, key)
	if sk != "" {
		if j, ok := m.store.ByKey(sk); ok && j.Tenant == tid {
			m.dedupHits.Add(1)
			m.obs.Counter("jobs_dedup_hits_total").Inc()
			return m.snapshot(j), false, nil
		}
	}
	if max := m.cfg.Tenants.MaxRunningJobs(tid); max > 0 {
		if live := m.store.ActiveByTenant(tid); live >= max {
			return Snapshot{}, false, fmt.Errorf("%w: tenant %q has %d live job(s), cap %d",
				ErrQuota, displayTenant(tid), live, max)
		}
	}
	if m.queue.len() >= m.cfg.MaxQueued {
		return Snapshot{}, false, fmt.Errorf("%w (%d queued)", ErrQueueFull, m.cfg.MaxQueued)
	}
	data := make([]jobstore.PairData, len(pairs))
	for i, p := range pairs {
		data[i] = jobstore.PairData{X: p.X.String(), Y: p.Y.String()}
	}
	j, err := m.store.SubmitOwned(m.newJobID(), sk, tid, m.cfg.ChunkSize, data)
	if err != nil {
		return Snapshot{}, false, err
	}
	m.submitted.Add(1)
	m.obs.Counter("jobs_submitted_total").Inc()
	m.refreshStateGauges()
	m.hub.publish(j.ID, EventState, m.snapshot(j))
	m.queue.push(j.ID)
	return m.snapshot(j), true, nil
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (Snapshot, error) {
	j, ok := m.store.Get(id)
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return m.snapshot(j), nil
}

// owned fetches a job iff the tenant owns it. Another tenant's job answers
// ErrNotFound — existence itself is tenant-private.
func (m *Manager) owned(id, tenantID string) (*jobstore.Job, error) {
	j, ok := m.store.Get(id)
	if !ok || j.Tenant != normalizeTenant(tenantID) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

// GetFor is Get scoped to the owning tenant.
func (m *Manager) GetFor(id, tenantID string) (Snapshot, error) {
	j, err := m.owned(id, tenantID)
	if err != nil {
		return Snapshot{}, err
	}
	return m.snapshot(j), nil
}

// ResultFor is Result scoped to the owning tenant.
func (m *Manager) ResultFor(id, tenantID string) ([]int, Snapshot, error) {
	if _, err := m.owned(id, tenantID); err != nil {
		return nil, Snapshot{}, err
	}
	return m.Result(id)
}

// CancelFor is Cancel scoped to the owning tenant.
func (m *Manager) CancelFor(id, tenantID string) (Snapshot, error) {
	if _, err := m.owned(id, tenantID); err != nil {
		return Snapshot{}, err
	}
	return m.Cancel(id)
}

// EventsFor subscribes to a job's live progress feed, scoped to the owning
// tenant. The subscription is seeded with a snapshot event carrying the
// job's current progress (so a late subscriber replays the last
// checkpoint), then receives a state event per transition and a chunk
// event per checkpoint. The caller must Close the subscription.
func (m *Manager) EventsFor(id, tenantID string) (*Sub, error) {
	j, err := m.owned(id, tenantID)
	if err != nil {
		return nil, err
	}
	return m.hub.subscribe(id, m.snapshot(j)), nil
}

// Result returns the assembled scores of a done job. Unfinished jobs fail
// with ErrNotReady; failed/cancelled jobs return their snapshot alongside a
// nil score slice so callers can surface the terminal reason.
func (m *Manager) Result(id string) ([]int, Snapshot, error) {
	j, ok := m.store.Get(id)
	if !ok {
		return nil, Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	snap := m.snapshot(j)
	switch j.State {
	case jobstore.StateDone:
		scores, err := j.Scores()
		return scores, snap, err
	case jobstore.StateFailed, jobstore.StateCancelled:
		return nil, snap, nil
	}
	return nil, snap, fmt.Errorf("%w: %s is %s", ErrNotReady, id, j.State)
}

// Cancel moves a job to cancelled. Queued jobs are cancelled in place (the
// runner skips them); running jobs are cancelled authoritatively in the
// store, and the runner's next write observes the terminal state and stops.
// Cancelling an already-terminal job is a no-op.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	j, ok := m.store.Get(id)
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if j.State.Terminal() {
		return m.snapshot(j), nil
	}
	if _, err := m.store.SetState(id, jobstore.StateCancelled, ""); err != nil {
		// A racing transition (the runner finishing this instant) may win;
		// surface the job as it now is.
		if j2, ok := m.store.Get(id); ok && j2.State.Terminal() {
			return m.snapshot(j2), nil
		}
		return Snapshot{}, err
	}
	m.cancelled.Add(1)
	m.obs.Counter(obs.L("jobs_terminal_total", "state", "cancelled")).Inc()
	m.refreshStateGauges()
	m.publishEvent(id, EventState)
	j, _ = m.store.Get(id)
	return m.snapshot(j), nil
}

// publishEvent publishes the job's current store state on its feed.
func (m *Manager) publishEvent(id, typ string) {
	if j, ok := m.store.Get(id); ok {
		m.hub.publish(id, typ, m.snapshot(j))
	}
}

// BeginDrain stops runners at their next chunk boundary (requeueing their
// jobs) and makes Submit fail fast. Queued jobs stay queued — they are
// durable and resume on the next start. Safe to call more than once.
func (m *Manager) BeginDrain() {
	m.drainOnce.Do(func() {
		close(m.draining)
		m.queue.close()
		// Progress feeds end with a drain event; SSE handlers unblock
		// immediately instead of stalling the HTTP server's shutdown.
		m.hub.close()
	})
}

// Draining reports whether BeginDrain has been called.
func (m *Manager) Draining() bool {
	select {
	case <-m.draining:
		return true
	default:
		return false
	}
}

// Drain blocks until every runner has checkpointed and parked its job, or
// ctx expires. It implies BeginDrain.
func (m *Manager) Drain(ctx context.Context) error {
	m.BeginDrain()
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if m.running.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("jobs: drain: %d job(s) still running: %w", m.running.Load(), ctx.Err())
		case <-t.C:
		}
	}
}

// Close hard-stops the manager: the runner pool and GC exit without
// waiting for chunk boundaries (in-flight chunks are abandoned exactly as a
// crash would abandon them — the WAL keeps those jobs resumable). For a
// graceful stop, Drain first.
func (m *Manager) Close() {
	m.closing.Store(true)
	m.baseCancel()
	m.BeginDrain()
	m.wg.Wait()
	close(m.gcQuit)
	<-m.gcDone
}

// runner is one slot of the bounded pool: pull a job ID, run it to a
// terminal state (or a drain/crash boundary), repeat.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		id, ok := m.queue.pop()
		if !ok {
			return
		}
		m.runJob(id)
	}
}

// runJob executes one job chunk by chunk, checkpointing each completed
// chunk. It resumes past chunks that are already checkpointed (recovery),
// parks the job at a chunk boundary when draining, and converts service
// errors into a failed state with a typed message.
func (m *Manager) runJob(id string) {
	// Claim: queued → running. Losing this transition means the job was
	// cancelled while queued — nothing to do.
	if _, err := m.store.SetState(id, jobstore.StateRunning, ""); err != nil {
		return
	}
	m.running.Add(1)
	defer m.running.Add(-1)
	m.refreshStateGauges()
	m.publishEvent(id, EventState)

	j, ok := m.store.Get(id)
	if !ok {
		return
	}
	tr := obs.NewTrace("")
	ctx := obs.WithTrace(m.baseCtx, tr)
	endJob := tr.StartSpan("jobs.run." + id)

	finish := func(to jobstore.State, msg string) {
		if _, err := m.store.SetState(id, to, msg); err == nil {
			switch to {
			case jobstore.StateDone:
				m.completed.Add(1)
				m.obs.Counter(obs.L("jobs_terminal_total", "state", "done")).Inc()
			case jobstore.StateFailed:
				m.failed.Add(1)
				m.obs.Counter(obs.L("jobs_terminal_total", "state", "failed")).Inc()
			case jobstore.StateQueued:
				m.requeued.Add(1)
				m.obs.Counter("jobs_requeued_total").Inc()
			}
			m.publishEvent(id, EventState)
		}
		m.refreshStateGauges()
		endJob()
		if m.cfg.Traces != nil {
			m.cfg.Traces.Add(tr)
		}
	}

	if j.Kind == jobstore.KindSearch {
		m.runSearchJob(ctx, id, j, tr, finish, endJob)
		return
	}

	chunkLat := m.obs.Histogram("jobs_chunk_seconds", obs.LatencyBuckets)
	for c := 0; c < j.NumChunks(); c++ {
		if _, done := j.Chunks[c]; done {
			// Checkpointed before a crash or drain: skip, never re-execute.
			m.chunksSkipped.Add(1)
			m.obs.Counter("jobs_chunks_skipped_total").Inc()
			continue
		}
		if m.closing.Load() {
			// Hard stop: leave the job running in the WAL, exactly like a
			// crash; the next open recovers and resumes it.
			endJob()
			return
		}
		if m.Draining() {
			finish(jobstore.StateQueued, "") // checkpoint-and-requeue
			return
		}
		if cur, ok := m.store.Get(id); !ok || cur.State != jobstore.StateRunning {
			// Cancelled (or dropped) underneath us; the store already holds
			// the terminal state.
			endJob()
			if m.cfg.Traces != nil {
				m.cfg.Traces.Add(tr)
			}
			return
		}

		lo, hi := j.ChunkBounds(c)
		pairs, err := parsePairs(j.Pairs[lo:hi])
		if err != nil {
			finish(jobstore.StateFailed, fmt.Sprintf("chunk %d: %v", c, err))
			return
		}
		chunkCtx, cancel := context.WithTimeout(ctx, m.cfg.ChunkTimeout)
		endChunk := tr.StartSpan(fmt.Sprintf("jobs.chunk.%d", c))
		begin := time.Now()
		res, err := m.cfg.Service.Align(chunkCtx, pairs)
		cancel()
		endChunk()
		if err != nil {
			if m.closing.Load() {
				endJob()
				return // crash semantics, see above
			}
			if cur, ok := m.store.Get(id); ok && cur.State.Terminal() {
				endJob() // cancelled mid-chunk; state already terminal
				if m.cfg.Traces != nil {
					m.cfg.Traces.Add(tr)
				}
				return
			}
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				finish(jobstore.StateFailed, fmt.Sprintf("chunk %d/%d: deadline exceeded after %v",
					c, j.NumChunks(), m.cfg.ChunkTimeout))
			case errors.Is(err, context.Canceled):
				finish(jobstore.StateFailed, fmt.Sprintf("chunk %d/%d: canceled", c, j.NumChunks()))
			default:
				finish(jobstore.StateFailed, fmt.Sprintf("chunk %d/%d: %v", c, j.NumChunks(), err))
			}
			return
		}
		m.chunksExecuted.Add(1)
		m.obs.Counter("jobs_chunks_executed_total").Inc()
		chunkLat.ObserveDuration(time.Since(begin))
		if err := m.store.AddChunk(id, c, res.Scores); err != nil {
			if cur, ok := m.store.Get(id); ok && cur.State.Terminal() {
				endJob() // cancelled between Align and checkpoint
				if m.cfg.Traces != nil {
					m.cfg.Traces.Add(tr)
				}
				return
			}
			finish(jobstore.StateFailed, fmt.Sprintf("checkpoint chunk %d: %v", c, err))
			return
		}
		m.chunksCheckpointed.Add(1)
		m.obs.Counter("jobs_chunks_checkpointed_total").Inc()
		m.publishEvent(id, EventChunk)
	}
	finish(jobstore.StateDone, "")
}

// parsePairs converts stored ACGT strings back into dna.Pairs.
func parsePairs(data []jobstore.PairData) ([]dna.Pair, error) {
	out := make([]dna.Pair, len(data))
	for i, p := range data {
		x, err := dna.Parse(p.X)
		if err != nil {
			return nil, fmt.Errorf("pair %d pattern: %w", i, err)
		}
		y, err := dna.Parse(p.Y)
		if err != nil {
			return nil, fmt.Errorf("pair %d text: %w", i, err)
		}
		out[i] = dna.Pair{X: x, Y: y}
	}
	return out, nil
}

// gcLoop drops terminal jobs older than TTL on every sweep.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	t := time.NewTicker(m.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-m.gcQuit:
			return
		case <-t.C:
			m.gcOnce()
		}
	}
}

// gcOnce performs one GC sweep (exported to tests via gc_test hooks).
func (m *Manager) gcOnce() {
	cutoff := m.cfg.now().Add(-m.cfg.TTL)
	for _, j := range m.store.List() {
		if j.State.Terminal() && j.Updated.Before(cutoff) {
			if _, err := m.store.Drop(j.ID); err == nil {
				m.gcDropped.Add(1)
				m.obs.Counter("jobs_gc_dropped_total").Inc()
			}
		}
	}
	m.refreshStateGauges()
}

// Stats snapshots the manager counters for /statsz.
func (m *Manager) Stats() Stats {
	counts := m.store.StateCounts()
	return Stats{
		Submitted:          m.submitted.Load(),
		DedupHits:          m.dedupHits.Load(),
		Completed:          m.completed.Load(),
		Failed:             m.failed.Load(),
		Cancelled:          m.cancelled.Load(),
		Recovered:          m.recovered.Load(),
		RecoveredChunks:    m.recoveredChunksDone.Load(),
		Requeued:           m.requeued.Load(),
		ChunksExecuted:     m.chunksExecuted.Load(),
		ChunksCheckpointed: m.chunksCheckpointed.Load(),
		ChunksSkipped:      m.chunksSkipped.Load(),
		CacheWarmed:        m.cacheWarmed.Load(),
		GCDropped:          m.gcDropped.Load(),
		Queued:             int64(counts[jobstore.StateQueued]),
		Running:            int64(counts[jobstore.StateRunning]),
		JobsHeld:           int64(m.store.Len()),
		MaxQueued:          int64(m.cfg.MaxQueued),
	}
}
