package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/corpus"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// slowBackend throttles every scoring batch, giving tests a window to
// interrupt a running search job. Scores stay exact.
type slowBackend struct {
	alignsvc.Backend
	delay time.Duration
}

func (s slowBackend) AlignBatch(ctx context.Context, pairs []dna.Pair, opts alignsvc.BatchOpts) ([]int, alignsvc.BatchStats, error) {
	time.Sleep(s.delay)
	return s.Backend.AlignBatch(ctx, pairs, opts)
}

// newSearchCorpus builds a small deterministic corpus with a few planted
// homologs of the returned query, mounted as "ref" in a fresh registry.
// delay > 0 throttles each scoring batch (see slowBackend).
func newSearchCorpus(t *testing.T, seqs int, delay time.Duration) (*corpus.Registry, dna.Seq) {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, 41))
	q := dna.RandSeq(rng, 48)
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}
	b, err := corpus.NewBuilder(t.TempDir(), corpus.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seqs; i++ {
		y := dna.RandSeq(rng, 96)
		if i%50 == 0 {
			cp := mut.Mutate(rng, q)
			if len(cp) > 96 {
				cp = cp[:96]
			}
			copy(y[rng.IntN(96-len(cp)+1):], cp)
		}
		if err := b.Add(fmt.Sprintf("ref-%05d", i), y); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	be, err := alignsvc.NewBackend(alignsvc.BackendStriped, pipeline.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delay > 0 {
		be = slowBackend{Backend: be, delay: delay}
	}
	reg := corpus.NewRegistry()
	if err := reg.Add("ref", c, corpus.NewSearcher(c, be, nil)); err != nil {
		t.Fatal(err)
	}
	return reg, q
}

func TestSearchJobRunsToCompletion(t *testing.T) {
	corpora, q := newSearchCorpus(t, 1000, 0)
	svc := newTestService(t, cudasim.FaultConfig{})
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) {
		c.Corpora = corpora
		c.SearchChunkSize = 100
	})
	defer store.Close()
	defer m.Close()

	p := corpus.Params{TopK: 5}
	snap, created, err := m.SubmitSearchFor("ref", q, p, "key-s", "")
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if snap.Kind != jobstore.KindSearch || snap.Corpus != "ref" || snap.TopK != 5 ||
		snap.Chunks != 10 || snap.Pairs != 1000 {
		t.Fatalf("submit snapshot: %+v", snap)
	}

	// Same key dedups to the same job.
	again, created, err := m.SubmitSearchFor("ref", q, p, "key-s", "")
	if err != nil || created || again.ID != snap.ID {
		t.Fatalf("dedup: created=%v id=%s err=%v", created, again.ID, err)
	}

	waitState(t, m, snap.ID, jobstore.StateDone, 10*time.Second)
	hits, res, err := m.SearchResult(snap.ID)
	if err != nil || res.State != jobstore.StateDone {
		t.Fatalf("search result: %v (%+v)", err, res)
	}

	// The async result must equal a synchronous Search with the same params.
	h, _ := corpora.Get("ref")
	sync, err := h.Searcher.Search(context.Background(), q, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hits, sync.Hits) {
		t.Fatalf("job hits %v != sync hits %v", hits, sync.Hits)
	}
	if len(hits) != 5 || hits[0].Score < hits[len(hits)-1].Score {
		t.Fatalf("ranked hits malformed: %v", hits)
	}

	// Result() on a search job is a typed kind mismatch.
	if _, _, err := m.Result(snap.ID); !errors.Is(err, ErrWrongKind) {
		t.Errorf("Result on search job: %v, want ErrWrongKind", err)
	}
}

func TestSearchSubmitRejections(t *testing.T) {
	corpora, q := newSearchCorpus(t, 100, 0)
	svc := newTestService(t, cudasim.FaultConfig{})
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) { c.Corpora = corpora })
	defer store.Close()
	defer m.Close()

	if _, _, err := m.SubmitSearchFor("nope", q, corpus.Params{}, "", ""); !errors.Is(err, ErrNoCorpus) {
		t.Errorf("unknown corpus: %v, want ErrNoCorpus", err)
	}
	if _, _, err := m.SubmitSearchFor("ref", nil, corpus.Params{}, "", ""); err == nil {
		t.Error("empty query: want error")
	}
	if _, _, err := m.SubmitSearchFor("ref", q, corpus.Params{}, "a\x00b", ""); err == nil {
		t.Error("NUL in key: want error")
	}

	// A manager with no registry rejects every search.
	m2, store2 := newTestManager(t, t.TempDir(), svc, nil)
	defer store2.Close()
	defer m2.Close()
	if _, _, err := m2.SubmitSearchFor("ref", q, corpus.Params{}, "", ""); !errors.Is(err, ErrNoCorpus) {
		t.Errorf("no registry: %v, want ErrNoCorpus", err)
	}
}

// TestSearchJobResumesFromCheckpoints is the in-process analogue of the
// SIGKILL e2e: close the manager mid-search (crash semantics), reopen,
// and verify the resumed job skips its checkpointed chunks and produces
// hits identical to an uninterrupted search.
func TestSearchJobResumesFromCheckpoints(t *testing.T) {
	corpora, q := newSearchCorpus(t, 1000, 5*time.Millisecond)
	dir := t.TempDir()
	svc := newTestService(t, cudasim.FaultConfig{})
	p := corpus.Params{TopK: 5, MinKmerHits: -1, MaxEdits: -1} // scan everything: plenty of chunks

	m1, store1 := newTestManager(t, dir, svc, func(c *Config) {
		c.Corpora = corpora
		c.SearchChunkSize = 50 // 20 chunks
	})
	snap, _, err := m1.SubmitSearchFor("ref", q, p, "", "")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one checkpoint, then hard-stop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := m1.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.ChunksDone >= 1 {
			break
		}
		if s.State.Terminal() {
			t.Fatalf("job finished before it could be interrupted: %+v", s)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()
	store1.Close()

	m2, store2 := newTestManager(t, dir, svc, func(c *Config) {
		c.Corpora = corpora
		c.SearchChunkSize = 50
	})
	defer store2.Close()
	defer m2.Close()
	waitState(t, m2, snap.ID, jobstore.StateDone, 10*time.Second)
	if st := m2.Stats(); st.Recovered < 1 || st.ChunksSkipped < 1 {
		t.Fatalf("recovery stats: recovered=%d skipped=%d, want ≥1 each", st.Recovered, st.ChunksSkipped)
	}
	hits, _, err := m2.SearchResult(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := corpora.Get("ref")
	sync, err := h.Searcher.Search(context.Background(), q, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hits, sync.Hits) {
		t.Fatalf("resumed hits %v != uninterrupted %v", hits, sync.Hits)
	}

	// WAL audit: no chunk checkpointed twice.
	recs, _, err := jobstore.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if r.Type == jobstore.RecChunk && r.Chunk.ID == snap.ID {
			if seen[r.Chunk.Index] {
				t.Fatalf("chunk %d checkpointed twice", r.Chunk.Index)
			}
			seen[r.Chunk.Index] = true
		}
	}
	if len(seen) != snap.Chunks {
		t.Fatalf("%d chunk records in WAL, want %d", len(seen), snap.Chunks)
	}
}

// TestSearchJobFingerprintMismatch proves a resume against a rebuilt
// corpus fails typed instead of silently mixing result sets.
func TestSearchJobFingerprintMismatch(t *testing.T) {
	corpora, q := newSearchCorpus(t, 100, 0)
	svc := newTestService(t, cudasim.FaultConfig{})
	dir := t.TempDir()

	// Submit against "ref", then run the job under a registry whose "ref"
	// is a different corpus.
	store, _, err := jobstore.Open(jobstore.Options{Dir: dir, Sync: jobstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	h, _ := corpora.Get("ref")
	spec := jobstore.SearchSpec{
		Corpus:      "ref",
		Fingerprint: "00000000", // not the mounted corpus's fingerprint
		Query:       q.String(),
		TopK:        5,
		MinKmerHits: 4,
		MaxEdits:    12,
		SeqCount:    h.Corpus.Len(),
	}
	if _, err := store.SubmitSearch("job-fp", "", "", 50, spec); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store, Service: svc, Corpora: corpora, SearchChunkSize: 50,
		ChunkTimeout: 30 * time.Second, Metrics: obs.NewRegistry()}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := m.Get("job-fp")
		if err != nil {
			t.Fatal(err)
		}
		if s.State == jobstore.StateFailed {
			if !strings.Contains(s.Error, "fingerprint") {
				t.Fatalf("failure %q does not mention the fingerprint", s.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not fail: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}
