package jobs

import (
	"encoding/json"
	"strings"
	"time"

	"repro/internal/jobstore"
)

// This file pins the wire format of the job API types: stable snake_case
// field names, states as their String() forms, durations as float
// milliseconds, timestamps as Unix milliseconds — the same conventions as
// alignsvc.Report/Stats. The /jobs endpoints and /statsz marshal through
// here, so changes are breaking.

// Snapshot is the client-visible view of one job: identity, state machine
// position and chunk progress.
type Snapshot struct {
	ID         string
	Key        string // idempotency key, "" when none was sent
	Tenant     string // owning tenant ID ("" = anonymous)
	Kind       string // "" = alignment, "search" = corpus search
	Corpus     string // search jobs: corpus mount name
	TopK       int    // search jobs: requested hit count
	State      jobstore.State
	Error      string // failure message for failed jobs
	Pairs      int    // batch size (alignment) or corpus size (search)
	ChunkSize  int
	Chunks     int // total chunks
	ChunksDone int // checkpointed chunks
	Created    time.Time
	Updated    time.Time
	Elapsed    time.Duration // Updated - Created at snapshot time
}

// snapshot builds the wire view from a store job.
func (m *Manager) snapshot(j *jobstore.Job) Snapshot {
	// The stored key may be tenant-namespaced (see storeKey); clients get
	// back exactly the key they sent.
	key := j.Key
	if i := strings.IndexByte(key, 0); i >= 0 {
		key = key[i+1:]
	}
	s := Snapshot{
		ID:         j.ID,
		Key:        key,
		Tenant:     j.Tenant,
		Kind:       j.Kind,
		State:      j.State,
		Error:      j.Error,
		Pairs:      len(j.Pairs),
		ChunkSize:  j.ChunkSize,
		Chunks:     j.NumChunks(),
		ChunksDone: j.ChunksDone(),
		Created:    j.Created,
		Updated:    j.Updated,
		Elapsed:    j.Updated.Sub(j.Created),
	}
	if j.Kind == jobstore.KindSearch {
		s.Corpus = j.Search.Corpus
		s.TopK = j.Search.TopK
		s.Pairs = j.Search.SeqCount
	}
	return s
}

type snapshotJSON struct {
	ID            string         `json:"id"`
	Key           string         `json:"idempotency_key,omitempty"`
	Tenant        string         `json:"tenant,omitempty"`
	Kind          string         `json:"kind,omitempty"`
	Corpus        string         `json:"corpus,omitempty"`
	TopK          int            `json:"top_k,omitempty"`
	State         jobstore.State `json:"state"`
	Error         string         `json:"error,omitempty"`
	Pairs         int            `json:"pairs"`
	ChunkSize     int            `json:"chunk_size"`
	Chunks        int            `json:"chunks"`
	ChunksDone    int            `json:"chunks_done"`
	CreatedUnixMS int64          `json:"created_unix_ms"`
	UpdatedUnixMS int64          `json:"updated_unix_ms"`
	ElapsedMS     float64        `json:"elapsed_ms"`
}

// MarshalJSON implements the stable wire format described above.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(snapshotJSON{
		ID:            s.ID,
		Key:           s.Key,
		Tenant:        s.Tenant,
		Kind:          s.Kind,
		Corpus:        s.Corpus,
		TopK:          s.TopK,
		State:         s.State,
		Error:         s.Error,
		Pairs:         s.Pairs,
		ChunkSize:     s.ChunkSize,
		Chunks:        s.Chunks,
		ChunksDone:    s.ChunksDone,
		CreatedUnixMS: s.Created.UnixMilli(),
		UpdatedUnixMS: s.Updated.UnixMilli(),
		ElapsedMS:     float64(s.Elapsed) / float64(time.Millisecond),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON. Timestamps come back with
// millisecond precision in UTC.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var in snapshotJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*s = Snapshot{
		ID:         in.ID,
		Key:        in.Key,
		Tenant:     in.Tenant,
		Kind:       in.Kind,
		Corpus:     in.Corpus,
		TopK:       in.TopK,
		State:      in.State,
		Error:      in.Error,
		Pairs:      in.Pairs,
		ChunkSize:  in.ChunkSize,
		Chunks:     in.Chunks,
		ChunksDone: in.ChunksDone,
		Created:    time.UnixMilli(in.CreatedUnixMS).UTC(),
		Updated:    time.UnixMilli(in.UpdatedUnixMS).UTC(),
		Elapsed:    time.Duration(in.ElapsedMS * float64(time.Millisecond)),
	}
	return nil
}

// Stats is a snapshot of the manager counters, for /statsz and the chaos
// harnesses.
type Stats struct {
	Submitted int64 // jobs accepted (excluding dedup hits)
	DedupHits int64 // submissions answered by an existing job's key
	Completed int64 // jobs reaching done
	Failed    int64 // jobs reaching failed
	Cancelled int64 // jobs reaching cancelled

	Recovered       int64 // incomplete jobs requeued by startup recovery
	RecoveredChunks int64 // chunks already checkpointed on those jobs
	Requeued        int64 // running jobs parked back to queued by drain

	ChunksExecuted     int64 // chunks actually computed
	ChunksCheckpointed int64 // chunk records appended to the WAL
	ChunksSkipped      int64 // checkpointed chunks skipped on resume
	CacheWarmed        int64 // checkpointed pair scores republished into the score cache at startup

	GCDropped int64 // terminal jobs dropped by TTL GC

	Queued    int64 // jobs waiting right now
	Running   int64 // jobs executing right now
	JobsHeld  int64 // live jobs in the store
	MaxQueued int64 // the queue bound
}

type statsJSON struct {
	Submitted          int64 `json:"submitted"`
	DedupHits          int64 `json:"dedup_hits"`
	Completed          int64 `json:"completed"`
	Failed             int64 `json:"failed"`
	Cancelled          int64 `json:"cancelled"`
	Recovered          int64 `json:"recovered"`
	RecoveredChunks    int64 `json:"recovered_chunks"`
	Requeued           int64 `json:"requeued"`
	ChunksExecuted     int64 `json:"chunks_executed"`
	ChunksCheckpointed int64 `json:"chunks_checkpointed"`
	ChunksSkipped      int64 `json:"chunks_skipped"`
	CacheWarmed        int64 `json:"cache_warmed"`
	GCDropped          int64 `json:"gc_dropped"`
	Queued             int64 `json:"queued"`
	Running            int64 `json:"running"`
	JobsHeld           int64 `json:"jobs_held"`
	MaxQueued          int64 `json:"max_queued"`
}

// MarshalJSON implements the stable wire format described above.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON(s))
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Stats) UnmarshalJSON(b []byte) error {
	var in statsJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*s = Stats(in)
	return nil
}
