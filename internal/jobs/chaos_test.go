package jobs

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/alignsvc"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/swa"
)

// jobsChaosFaults puts every fault class at >= 10%, including silent bit
// flips that only full score validation catches.
var jobsChaosFaults = cudasim.FaultConfig{
	Seed:    20170529,
	HtoD:    0.15,
	DtoH:    0.15,
	Alloc:   0.10,
	Launch:  0.12,
	BitFlip: 0.15,
}

// TestJobsChaosSoak is the durability guarantee under fire, enforced end to
// end: rounds of a kill/restart loop over one shared WAL directory, each
// round running the manager against a service whose simulated device fails
// transfers, allocations and launches and silently flips bits, with random
// job cancellations thrown in. All but the last round end in a hard Close
// mid-execution (the in-process stand-in for SIGKILL); every restart must
// replay the WAL, requeue incomplete jobs and resume them from their last
// checkpoint. At the end, every job must be terminal with either exact
// reference scores or a clean cancellation — and the WAL audit must show no
// (job, chunk) checkpointed twice, i.e. recovery never re-executed
// completed work. Runs in CI under -race with a wall-clock timeout.
func TestJobsChaosSoak(t *testing.T) {
	dir := t.TempDir()
	rounds, jobsPerRound := 6, 5
	if testing.Short() {
		rounds, jobsPerRound = 3, 4
	}

	newChaosManager := func() (*Manager, *jobstore.Store, *alignsvc.Service) {
		svc := alignsvc.New(alignsvc.Config{
			Seed:            99,
			Workers:         4,
			MaxAttempts:     2,
			BaseBackoff:     100 * time.Microsecond,
			MaxBackoff:      500 * time.Microsecond,
			ValidateFrac:    1, // catch every injected bit flip
			BreakerFailures: 3,
			BreakerCooldown: 20 * time.Millisecond,
			Faults:          jobsChaosFaults,
			Metrics:         obs.NewRegistry(),
		})
		store, _, err := jobstore.Open(jobstore.Options{Dir: dir, Sync: jobstore.SyncNever})
		if err != nil {
			svc.Close()
			t.Fatal(err)
		}
		m, err := New(Config{
			Store:         store,
			Service:       svc,
			ChunkSize:     4,
			MaxConcurrent: 2,
			MaxQueued:     256,
			ChunkTimeout:  30 * time.Second,
			TTL:           time.Hour, // no GC during the soak: every job stays auditable
			Metrics:       obs.NewRegistry(),
		})
		if err != nil {
			store.Close()
			svc.Close()
			t.Fatal(err)
		}
		return m, store, svc
	}

	// Each job is identified by its idempotency key; the key's number seeds
	// the deterministic batch, so reference scores are recomputable at the
	// end without carrying state across kills. Sequences are long enough
	// that a job takes real wall time even when open breakers short-circuit
	// the ladder straight to the CPU rung — the kill must land mid-work.
	chaosJobBatch := func(n int) ([]dna.Pair, []int) {
		rng := rand.New(rand.NewPCG(uint64(n), 0xc4a05))
		pairs := dna.RandomPairs(rng, 32, 64, 128)
		want := make([]int, len(pairs))
		for i, p := range pairs {
			want[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		}
		return pairs, want
	}
	keyOf := func(n int) string { return fmt.Sprintf("chaos-%04d", n) }
	nextJob := 0
	var totalRecovered, totalSkipped int64

	for round := 0; round < rounds; round++ {
		m, store, svc := newChaosManager()
		rng := rand.New(rand.NewPCG(uint64(round), 0xdead))
		totalRecovered += m.Stats().Recovered

		// Submit this round's fresh jobs (32 pairs = 8 chunks each)...
		ids := make(map[string]string)
		for i := 0; i < jobsPerRound; i++ {
			pairs, _ := chaosJobBatch(nextJob)
			snap, _, err := m.Submit(pairs, keyOf(nextJob))
			if err != nil {
				t.Fatalf("round %d submit %d: %v", round, nextJob, err)
			}
			ids[keyOf(nextJob)] = snap.ID
			nextJob++
		}
		// ...and re-send a few old keys: dedup must answer, not re-enqueue.
		for i := 0; i < 3 && round > 0; i++ {
			n := rng.IntN(nextJob - jobsPerRound)
			pairs, _ := chaosJobBatch(n)
			if _, created, err := m.Submit(pairs, keyOf(n)); err != nil {
				t.Fatalf("round %d resubmit %d: %v", round, n, err)
			} else if created {
				t.Fatalf("round %d: resubmitted key %s created a second job", round, keyOf(n))
			}
		}

		// Random cancellations while the pool is churning.
		for _, id := range ids {
			if rng.Float64() < 0.2 {
				if _, err := m.Cancel(id); err != nil {
					t.Fatalf("round %d cancel %s: %v", round, id, err)
				}
			}
		}

		if round < rounds-1 {
			// Let some chunks land, then kill the manager mid-flight.
			time.Sleep(time.Duration(rng.IntN(15)) * time.Millisecond)
			m.Close() // hard stop: crash semantics, jobs left running in the WAL
		} else {
			// Final round: run everything to a terminal state.
			deadline := time.Now().Add(2 * time.Minute)
			for {
				counts := store.StateCounts()
				if counts[jobstore.StateQueued]+counts[jobstore.StateRunning] == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("soak never settled: %v", counts)
				}
				time.Sleep(5 * time.Millisecond)
			}
			totalSkipped = m.Stats().ChunksSkipped
			m.Close()
		}
		store.Close()
		svc.Close()
	}

	// Audit pass over the final WAL: replay it fresh and check every job.
	store, rep, err := jobstore.Open(jobstore.Options{Dir: dir, Sync: jobstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if rep.Truncated || rep.Corrupt != "" {
		t.Fatalf("soak WAL needed repair on clean shutdown: %+v", rep)
	}
	if rep.Jobs != nextJob {
		t.Fatalf("audit sees %d jobs, submitted %d", rep.Jobs, nextJob)
	}
	var done, cancelled int
	for n := 0; n < nextJob; n++ {
		j, ok := store.ByKey(keyOf(n))
		if !ok {
			t.Fatalf("job %s lost", keyOf(n))
		}
		switch j.State {
		case jobstore.StateDone:
			done++
			scores, err := j.Scores()
			if err != nil {
				t.Fatalf("job %s done but unassemblable: %v", keyOf(n), err)
			}
			_, want := chaosJobBatch(n)
			for i := range want {
				if scores[i] != want[i] {
					t.Fatalf("job %s score[%d] = %d, want %d", keyOf(n), i, scores[i], want[i])
				}
			}
		case jobstore.StateCancelled:
			cancelled++
		case jobstore.StateFailed:
			if j.Error == "" {
				t.Fatalf("job %s failed without a message", keyOf(n))
			}
		default:
			t.Fatalf("job %s not terminal after final round: %s", keyOf(n), j.State)
		}
	}
	// Recovery must genuinely have fired across the kill/restart loop, and
	// the WAL must show no (job, chunk) ever checkpointed twice.
	if totalRecovered == 0 {
		t.Fatal("kill/restart loop never recovered a job — soak too weak")
	}
	assertNoDuplicateChunks(t, dir)
	t.Logf("soak: %d jobs (%d done, %d cancelled), %d recoveries, %d chunks skipped on resume",
		nextJob, done, cancelled, totalRecovered, totalSkipped)
}
