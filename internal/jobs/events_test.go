package jobs

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/jobstore"
	"repro/internal/tenant"
)

// snap is a minimal Snapshot for direct hub tests.
func snap(state jobstore.State, chunksDone int) Snapshot {
	return Snapshot{ID: "j", State: state, ChunksDone: chunksDone, Chunks: 4}
}

func TestHubDropOldestNeverBlocksPublisher(t *testing.T) {
	h := newHub(4)
	sub := h.subscribe("j", snap(jobstore.StateQueued, 0))
	defer sub.Close()

	// A stalled subscriber (nobody calls Next): publishing far beyond the
	// ring must return promptly — the hub has no blocking path at all.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.publish("j", EventChunk, snap(jobstore.StateRunning, i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a stalled subscriber")
	}

	// The ring kept the NEWEST events: the seed and the early chunks were
	// dropped-oldest.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventChunk || ev.Job.ChunksDone != 996 {
		t.Fatalf("oldest surviving event = %+v, want chunk 996", ev)
	}
	if sub.Dropped() != 1000+1-4 {
		t.Fatalf("dropped = %d, want %d", sub.Dropped(), 1000+1-4)
	}
}

func TestHubSubscribeAfterProgressReplaysCheckpoint(t *testing.T) {
	h := newHub(8)
	h.publish("j", EventState, snap(jobstore.StateRunning, 0))
	h.publish("j", EventChunk, snap(jobstore.StateRunning, 1))
	h.publish("j", EventChunk, snap(jobstore.StateRunning, 2))

	// A late subscriber's first event is a snapshot carrying the progress
	// so far, at the feed's current seq.
	sub := h.subscribe("j", snap(jobstore.StateRunning, 2))
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventSnapshot || ev.Job.ChunksDone != 2 || ev.Seq != 3 {
		t.Fatalf("seed event = %+v, want snapshot of 2 chunks at seq 3", ev)
	}

	// Subsequent events follow with increasing seq.
	h.publish("j", EventChunk, snap(jobstore.StateRunning, 3))
	if ev, err = sub.Next(ctx); err != nil || ev.Seq != 4 || ev.Type != EventChunk {
		t.Fatalf("follow-up event = %+v, %v", ev, err)
	}
}

func TestHubCloseAndTerminalFreeSubscribers(t *testing.T) {
	h := newHub(4)
	a := h.subscribe("j", snap(jobstore.StateRunning, 0))
	b := h.subscribe("j", snap(jobstore.StateRunning, 0))
	if h.subscribers() != 2 {
		t.Fatalf("subscribers = %d, want 2", h.subscribers())
	}

	// Client disconnect: Close unhooks the sub from the hub.
	a.Close()
	if h.subscribers() != 1 {
		t.Fatalf("after Close: subscribers = %d, want 1", h.subscribers())
	}

	// Terminal event: the feed ends and the remaining sub is closed after
	// delivering the terminal event.
	h.publish("j", EventState, snap(jobstore.StateDone, 4))
	if h.subscribers() != 0 {
		t.Fatalf("after terminal: subscribers = %d, want 0", h.subscribers())
	}
	ctx := context.Background()
	if ev, err := b.Next(ctx); err != nil || ev.Type != EventSnapshot {
		t.Fatalf("buffered seed: %+v, %v", ev, err)
	}
	if ev, err := b.Next(ctx); err != nil || ev.Job.State != jobstore.StateDone {
		t.Fatalf("buffered terminal event: %+v, %v", ev, err)
	}
	if _, err := b.Next(ctx); !errors.Is(err, ErrSubClosed) {
		t.Fatalf("drained closed sub err = %v, want ErrSubClosed", err)
	}

	// Hub shutdown: new subscriptions are born closed, seeded with
	// snapshot + drain.
	h.close()
	c := h.subscribe("j2", snap(jobstore.StateQueued, 0))
	if ev, err := c.Next(ctx); err != nil || ev.Type != EventSnapshot {
		t.Fatalf("post-shutdown seed: %+v, %v", ev, err)
	}
	if ev, err := c.Next(ctx); err != nil || ev.Type != EventDrain {
		t.Fatalf("post-shutdown drain event: %+v, %v", ev, err)
	}
	if _, err := c.Next(ctx); !errors.Is(err, ErrSubClosed) {
		t.Fatalf("post-shutdown sub err = %v, want ErrSubClosed", err)
	}
}

// TestHubSubscribeTerminalBornClosed: subscribing to a job whose feed
// already ended (publish deleted it at the terminal event) must deliver the
// snapshot and then close, without registering anything with the hub — a
// subscription that never closes would pin its SSE handler goroutine until
// the client disconnected or the server drained.
func TestHubSubscribeTerminalBornClosed(t *testing.T) {
	h := newHub(4)
	h.publish("j", EventState, snap(jobstore.StateDone, 4)) // ends the feed

	sub := h.subscribe("j", snap(jobstore.StateDone, 4))
	defer sub.Close()
	if h.subscribers() != 0 {
		t.Fatalf("terminal subscribe registered: subscribers = %d, want 0", h.subscribers())
	}
	ctx := context.Background()
	if ev, err := sub.Next(ctx); err != nil || ev.Type != EventSnapshot || ev.Job.State != jobstore.StateDone {
		t.Fatalf("terminal seed = %+v, %v, want done snapshot", ev, err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, ErrSubClosed) {
		t.Fatalf("after terminal seed: err = %v, want ErrSubClosed", err)
	}
}

// TestHubSubscribeSeedAlwaysFirst races subscribe against a publisher: the
// seed snapshot must always be the first event in the ring with no seq
// regression after it — the old code registered the Sub under the hub lock
// but pushed the seed after unlocking, letting a concurrent publish deliver
// a newer event ahead of the older snapshot.
func TestHubSubscribeSeedAlwaysFirst(t *testing.T) {
	for i := 0; i < 200; i++ {
		h := newHub(64)
		h.publish("j", EventState, snap(jobstore.StateRunning, 0))
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 1; c <= 5; c++ {
				h.publish("j", EventChunk, snap(jobstore.StateRunning, c))
			}
		}()
		sub := h.subscribe("j", snap(jobstore.StateRunning, 0))
		wg.Wait()

		first, err := sub.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if first.Type != EventSnapshot {
			t.Fatalf("iteration %d: first event = %s (seq %d), want snapshot", i, first.Type, first.Seq)
		}
		last := first.Seq
		for { // drain the settled buffer; seq must never move backwards
			sub.mu.Lock()
			empty := sub.n == 0
			sub.mu.Unlock()
			if empty {
				break
			}
			ev, err := sub.Next(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if ev.Seq < last {
				t.Fatalf("iteration %d: seq regressed from %d to %d (%s)", i, last, ev.Seq, ev.Type)
			}
			last = ev.Seq
		}
		sub.Close()
	}
}

// TestEventsObserveEveryChunk runs a real job with a live subscriber and
// asserts the feed carries every chunk checkpoint exactly once, ending
// with the done state — and that disconnecting subscribers leaks no
// goroutines.
func TestEventsObserveEveryChunk(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := newTestService(t, cudasim.FaultConfig{})
	m, store := newTestManager(t, t.TempDir(), svc, func(c *Config) {
		c.EventBuffer = 64
	})
	defer store.Close()
	defer m.Close()

	pairs, _ := testBatch(11, 16) // ChunkSize 4 → 4 chunks
	snap, _, err := m.Submit(pairs, "")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.EventsFor(snap.ID, tenant.AnonymousID)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var chunks []int
	var sawDone bool
	var lastSeq uint64
	for {
		ev, err := sub.Next(ctx)
		if errors.Is(err, ErrSubClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq < lastSeq {
			t.Fatalf("seq went backwards: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Type == EventChunk {
			chunks = append(chunks, ev.Job.ChunksDone)
		}
		if ev.Job.State == jobstore.StateDone {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatal("feed ended without a done state")
	}
	if len(chunks) != snap.Chunks {
		t.Fatalf("observed %d chunk events (%v), want %d", len(chunks), chunks, snap.Chunks)
	}
	for i, c := range chunks {
		if c != i+1 {
			t.Fatalf("chunk progress out of order: %v", chunks)
		}
	}

	// Goroutine-leak check: churn subscribers that disconnect mid-feed.
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		snap2, _, err := m.Submit(testPairsOnly(uint64(i)+100, 8), "")
		if err != nil {
			t.Fatal(err)
		}
		sub2, err := m.EventsFor(snap2.ID, "")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, ccancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer ccancel()
			_, _ = sub2.Next(cctx) // reads a bit, then "disconnects"
			sub2.Close()
		}()
	}
	wg.Wait()
	// The first job's feed ended at terminal state (auto-unhooked), and
	// every churned sub Closed itself: the hub must hold nothing.
	if n := m.hub.subscribers(); n != 0 {
		t.Fatalf("hub holds %d subscribers after churn, want 0", n)
	}
	waitForLeakCheck(t, before)
}

// testPairsOnly is testBatch without the reference scores.
func testPairsOnly(seed uint64, count int) []dna.Pair {
	p, _ := testBatch(seed, count)
	return p
}

// waitForLeakCheck polls the goroutine count back down to near the
// baseline (runner goroutines belong to the manager and are still alive;
// the check is that subscriber churn added nothing that lingers).
func waitForLeakCheck(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		// Manager pool + GC goroutines are expected; 10 is generous slack
		// for them, but 50 leaked subscriber goroutines would trip it.
		if runtime.NumGoroutine() <= before+10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after churn", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTenantQuotaAndOwnership(t *testing.T) {
	reg, err := tenant.NewRegistry(tenant.Config{Tenants: []tenant.TenantConfig{
		{ID: "acme", Key: "sk", Limits: tenant.Limits{MaxRunningJobs: 2}},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := newSlowService(t)
	dir := t.TempDir()
	m, store := newTestManager(t, dir, svc, func(c *Config) {
		c.Tenants = reg
		c.MaxConcurrent = 1
	})

	pairs, _ := testBatch(3, 4)
	j1, _, err := m.SubmitFor(pairs, "k1", "acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitFor(pairs, "k2", "acme"); err != nil {
		t.Fatal(err)
	}
	// Third live job exceeds MaxRunningJobs: typed ErrQuota.
	if _, _, err := m.SubmitFor(pairs, "k3", "acme"); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota submit err = %v, want ErrQuota", err)
	}
	// Idempotent re-send of a live job is a dedup hit, not a quota hit.
	if dup, created, err := m.SubmitFor(pairs, "k1", "acme"); err != nil || created || dup.ID != j1.ID {
		t.Fatalf("dedup under quota: %+v created=%v err=%v", dup, created, err)
	}
	// The same key from another tenant is that tenant's own namespace.
	anonJob, created, err := m.SubmitFor(pairs, "k1", "")
	if err != nil || !created || anonJob.ID == j1.ID {
		t.Fatalf("cross-tenant key collision: %+v created=%v err=%v", anonJob, created, err)
	}
	if anonJob.Key != "k1" {
		t.Fatalf("client-visible key = %q, want k1", anonJob.Key)
	}

	// Ownership: another tenant cannot see, cancel or subscribe to the job.
	if _, err := m.GetFor(j1.ID, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant GetFor err = %v, want ErrNotFound", err)
	}
	if _, err := m.CancelFor(j1.ID, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant CancelFor err = %v, want ErrNotFound", err)
	}
	if _, _, err := m.ResultFor(j1.ID, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant ResultFor err = %v, want ErrNotFound", err)
	}
	if _, err := m.EventsFor(j1.ID, "anonymous"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant EventsFor err = %v, want ErrNotFound", err)
	}
	// The owner can.
	if got, err := m.GetFor(j1.ID, "acme"); err != nil || got.Tenant != "acme" {
		t.Fatalf("owner GetFor: %+v, %v", got, err)
	}

	// Quota state is WAL-resident: reopen and the cap still binds.
	m.Close()
	store.Close()
	m2, store2 := newTestManager(t, dir, svc, func(c *Config) {
		c.Tenants = reg
		c.MaxConcurrent = 1
	})
	defer store2.Close()
	defer m2.Close()
	if _, _, err := m2.SubmitFor(pairs, "k4", "acme"); !errors.Is(err, ErrQuota) {
		t.Fatalf("post-replay over-quota submit err = %v, want ErrQuota", err)
	}
}
