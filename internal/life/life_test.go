package life

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewGrid(5, -1); err == nil {
		t.Error("negative height should fail")
	}
	g, err := NewGrid(100, 40)
	if err != nil || g.Width() != 100 || g.Height() != 40 {
		t.Fatalf("grid creation: %v", err)
	}
}

func TestGetSet(t *testing.T) {
	g, _ := NewGrid(70, 10) // spans two words per row
	g.Set(0, 0, true)
	g.Set(69, 9, true)
	g.Set(64, 5, true)
	if !g.Get(0, 0) || !g.Get(69, 9) || !g.Get(64, 5) {
		t.Error("Set/Get round trip failed")
	}
	if g.Get(-1, 0) || g.Get(0, -1) || g.Get(70, 0) || g.Get(0, 10) {
		t.Error("out-of-range Get should be dead")
	}
	if g.Population() != 3 {
		t.Errorf("population = %d", g.Population())
	}
	g.Set(0, 0, false)
	if g.Get(0, 0) {
		t.Error("clearing failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Set should panic")
		}
	}()
	g.Set(70, 0, true)
}

func TestBlinkerOscillates(t *testing.T) {
	g, _ := NewGrid(5, 5)
	for x := 1; x <= 3; x++ {
		g.Set(x, 2, true) // horizontal blinker
	}
	orig := g.Clone()
	g.Step()
	for y := 1; y <= 3; y++ {
		if !g.Get(2, y) {
			t.Fatalf("blinker should be vertical after one step:\n%s", g)
		}
	}
	if g.Population() != 3 {
		t.Fatalf("blinker population changed: %d", g.Population())
	}
	g.Step()
	if !g.Equal(orig) {
		t.Errorf("blinker period-2 failed:\n%s", g)
	}
}

func TestBlockIsStill(t *testing.T) {
	g, _ := NewGrid(6, 6)
	for _, p := range [][2]int{{2, 2}, {3, 2}, {2, 3}, {3, 3}} {
		g.Set(p[0], p[1], true)
	}
	orig := g.Clone()
	for i := 0; i < 5; i++ {
		g.Step()
	}
	if !g.Equal(orig) {
		t.Errorf("block moved:\n%s", g)
	}
}

func TestGliderTravels(t *testing.T) {
	g, _ := NewGrid(20, 20)
	// Standard glider heading down-right.
	for _, p := range [][2]int{{1, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 2}} {
		g.Set(p[0], p[1], true)
	}
	start := g.Clone()
	for i := 0; i < 4; i++ {
		g.Step()
	}
	// After 4 generations a glider is the same shape shifted by (1, 1).
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if g.Get(x+1, y+1) != start.Get(x, y) {
				t.Fatalf("glider not translated by (1,1) at (%d,%d):\n%s", x, y, g)
			}
		}
	}
}

func TestStepMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 90))
		w := 1 + rng.IntN(150) // force multi-word rows regularly
		h := 1 + rng.IntN(20)
		g, err := NewGrid(w, h)
		if err != nil {
			return false
		}
		g.Randomize(rng, 0.35)
		fast := g.Clone()
		slow := g.Clone()
		for step := 0; step < 3; step++ {
			fast.Step()
			slow.StepNaive()
			if !fast.Equal(slow) {
				t.Logf("divergence at step %d (w=%d h=%d)", step, w, h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWordBoundaryNeighbours(t *testing.T) {
	// A blinker straddling the bit-63/64 boundary exercises the cross-word
	// carry in both shift directions.
	g, _ := NewGrid(130, 5)
	for x := 62; x <= 66; x++ {
		g.Set(x, 2, x >= 63 && x <= 65)
	}
	ref := g.Clone()
	g.Step()
	ref.StepNaive()
	if !g.Equal(ref) {
		t.Errorf("cross-word stencil wrong:\n%s\nvs\n%s", g, ref)
	}
}

func TestStringRender(t *testing.T) {
	g, _ := NewGrid(3, 2)
	g.Set(1, 0, true)
	s := g.String()
	if !strings.Contains(s, ".#.") {
		t.Errorf("render wrong:\n%s", s)
	}
	if strings.Count(s, "\n") != 2 {
		t.Error("row count wrong")
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	a, _ := NewGrid(4, 4)
	b, _ := NewGrid(5, 4)
	if a.Equal(b) {
		t.Error("different sizes compare equal")
	}
}

func BenchmarkStepBPBC(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	g, _ := NewGrid(1024, 256)
	g.Randomize(rng, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
	b.ReportMetric(float64(b.N)*1024*256/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

func BenchmarkStepNaive(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	g, _ := NewGrid(1024, 256)
	g.Randomize(rng, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StepNaive()
	}
	b.ReportMetric(float64(b.N)*1024*256/b.Elapsed().Seconds()/1e6, "Mcells/s")
}
