// Package life implements Conway's Game of Life with the BPBC technique,
// exactly as the paper's §I describes its companion work: "a state of each
// cell is stored in a bit of a 32-bit integer, and the combinational logic
// circuit to compute the next state is simulated by bitwise logic
// operations". One word operation advances 64 cells; the neighbour count is
// accumulated with the same bit-sliced adder the Smith-Waterman engine uses
// (internal/bitslice), making the "circuit simulation" framing concrete on
// a second problem.
package life

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/bitslice"
)

// Grid is a finite Life board with dead borders. Cells are packed one per
// bit, 64 per word, row-major.
type Grid struct {
	w, h  int
	words int // words per row
	rows  [][]uint64
}

// NewGrid creates an empty w×h board.
func NewGrid(w, h int) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("life: grid size %dx%d invalid", w, h)
	}
	g := &Grid{w: w, h: h, words: (w + 63) / 64}
	g.rows = make([][]uint64, h)
	for y := range g.rows {
		g.rows[y] = make([]uint64, g.words)
	}
	return g, nil
}

// Width returns the board width.
func (g *Grid) Width() int { return g.w }

// Height returns the board height.
func (g *Grid) Height() int { return g.h }

// Get reports whether cell (x, y) is alive.
func (g *Grid) Get(x, y int) bool {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return false
	}
	return g.rows[y][x/64]>>(uint(x)%64)&1 != 0
}

// Set forces cell (x, y) to v. Out-of-range coordinates panic.
func (g *Grid) Set(x, y int, v bool) {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		panic(fmt.Sprintf("life: Set(%d,%d) outside %dx%d grid", x, y, g.w, g.h))
	}
	m := uint64(1) << (uint(x) % 64)
	if v {
		g.rows[y][x/64] |= m
	} else {
		g.rows[y][x/64] &^= m
	}
}

// Randomize fills the board with density-p noise.
func (g *Grid) Randomize(rng *rand.Rand, p float64) {
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			g.Set(x, y, rng.Float64() < p)
		}
	}
}

// Population returns the number of live cells.
func (g *Grid) Population() int {
	n := 0
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			if g.Get(x, y) {
				n++
			}
		}
	}
	return n
}

// Clone copies the board.
func (g *Grid) Clone() *Grid {
	c, _ := NewGrid(g.w, g.h)
	for y := range g.rows {
		copy(c.rows[y], g.rows[y])
	}
	return c
}

// Equal reports whether two boards have identical live cells.
func (g *Grid) Equal(o *Grid) bool {
	if g.w != o.w || g.h != o.h {
		return false
	}
	for y := range g.rows {
		for i := range g.rows[y] {
			if g.rows[y][i] != o.rows[y][i] {
				return false
			}
		}
	}
	return true
}

// String renders the board with '#' for live cells.
func (g *Grid) String() string {
	var sb strings.Builder
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			if g.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// shiftLeft returns row shifted one cell toward lower x (bits move right),
// carrying across word boundaries; dst must not alias row.
func shiftLeft(dst, row []uint64) {
	for i := range row {
		v := row[i] >> 1
		if i+1 < len(row) {
			v |= row[i+1] << 63
		}
		dst[i] = v
	}
}

// shiftRight returns row shifted one cell toward higher x.
func shiftRight(dst, row []uint64, w int) {
	for i := range row {
		v := row[i] << 1
		if i > 0 {
			v |= row[i-1] >> 63
		}
		dst[i] = v
	}
	// Mask cells beyond the board width in the last word.
	if rem := w % 64; rem != 0 {
		dst[len(dst)-1] &= uint64(1)<<uint(rem) - 1
	}
}

// Step advances the board one generation using the BPBC circuit: for every
// word (64 cells) the eight neighbour bit vectors are accumulated with a
// 4-plane bit-sliced adder, and the survival rule
//
//	alive' = (count == 3) | (alive & count == 2)
//
// is evaluated with plane logic — 64 cells per word operation.
func (g *Grid) Step() {
	const s = 4 // neighbour counts reach 8
	next := make([][]uint64, g.h)
	zeroRow := make([]uint64, g.words)
	count := bitslice.NewNum[uint64](s)
	one := bitslice.NewNum[uint64](s)

	rowAt := func(y int) []uint64 {
		if y < 0 || y >= g.h {
			return zeroRow
		}
		return g.rows[y]
	}

	// Pre-shifted copies of the three stencil rows, refreshed per y.
	shL := [3][]uint64{}
	shR := [3][]uint64{}
	for d := range shL {
		shL[d] = make([]uint64, g.words)
		shR[d] = make([]uint64, g.words)
	}

	var widthMask uint64 = ^uint64(0)
	if rem := g.w % 64; rem != 0 {
		widthMask = uint64(1)<<uint(rem) - 1
	}

	for y := 0; y < g.h; y++ {
		next[y] = make([]uint64, g.words)
		for d := 0; d < 3; d++ {
			row := rowAt(y + d - 1)
			shiftLeft(shL[d], row)
			shiftRight(shR[d], row, g.w)
		}
		for i := 0; i < g.words; i++ {
			count.Zero()
			addNeighbour := func(bits uint64) {
				one[0] = bits
				bitslice.Add(count, count, one)
			}
			for d := 0; d < 3; d++ {
				addNeighbour(shL[d][i])
				addNeighbour(shR[d][i])
				if d != 1 {
					addNeighbour(rowAt(y + d - 1)[i])
				}
			}
			// count == 3: planes 0b0011; count == 2: planes 0b0010.
			is3 := count[0] & count[1] &^ count[2] &^ count[3]
			is2 := ^count[0] & count[1] &^ count[2] &^ count[3]
			alive := g.rows[y][i]
			next[y][i] = is3 | (alive & is2)
		}
		next[y][g.words-1] &= widthMask
	}
	g.rows = next
}

// StepNaive is the cell-by-cell reference used to validate Step.
func (g *Grid) StepNaive() {
	next, _ := NewGrid(g.w, g.h)
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			n := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if g.Get(x+dx, y+dy) {
						n++
					}
				}
			}
			next.Set(x, y, n == 3 || (g.Get(x, y) && n == 2))
		}
	}
	g.rows = next.rows
}
