package jobstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testPairs(n int) []PairData {
	out := make([]PairData, n)
	for i := range out {
		out[i] = PairData{X: "ACGT", Y: "ACGTACGT"}
	}
	return out
}

func mustOpen(t *testing.T, dir string) (*Store, ReplayReport) {
	t.Helper()
	s, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rep
}

func TestSubmitGetByKey(t *testing.T) {
	s, rep := mustOpen(t, t.TempDir())
	defer s.Close()
	if rep.Records != 0 || rep.Jobs != 0 {
		t.Fatalf("fresh dir replay: %+v", rep)
	}
	j, err := s.Submit("j1", "key-1", 4, testPairs(10))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.NumChunks() != 3 || j.ChunksDone() != 0 {
		t.Fatalf("submitted job: %+v", j)
	}
	if lo, hi := j.ChunkBounds(2); lo != 8 || hi != 10 {
		t.Fatalf("last chunk bounds = [%d,%d), want [8,10)", lo, hi)
	}
	got, ok := s.Get("j1")
	if !ok || got.ID != "j1" || got.Key != "key-1" {
		t.Fatalf("Get: %+v ok=%v", got, ok)
	}
	byKey, ok := s.ByKey("key-1")
	if !ok || byKey.ID != "j1" {
		t.Fatalf("ByKey: %+v ok=%v", byKey, ok)
	}
	if _, err := s.Submit("j1", "", 4, testPairs(1)); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
}

func TestStateMachineTransitions(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	defer s.Close()
	if _, err := s.Submit("j", "", 2, testPairs(4)); err != nil {
		t.Fatal(err)
	}
	// queued → done is illegal.
	if _, err := s.SetState("j", StateDone, ""); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("queued→done: %v", err)
	}
	if prev, err := s.SetState("j", StateRunning, ""); err != nil || prev != StateQueued {
		t.Fatalf("queued→running: prev=%v err=%v", prev, err)
	}
	// running → queued (drain requeue) is legal.
	if _, err := s.SetState("j", StateQueued, ""); err != nil {
		t.Fatalf("running→queued: %v", err)
	}
	if _, err := s.SetState("j", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetState("j", StateCancelled, ""); err != nil {
		t.Fatalf("running→cancelled: %v", err)
	}
	// Terminal states are frozen.
	if _, err := s.SetState("j", StateRunning, ""); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("cancelled→running: %v", err)
	}
	if err := s.AddChunk("j", 0, []int{1, 2}); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("chunk on terminal job: %v", err)
	}
	if _, err := s.SetState("missing", StateRunning, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing job: %v", err)
	}
}

func TestChunkCheckpointsAndScores(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	defer s.Close()
	if _, err := s.Submit("j", "", 3, testPairs(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetState("j", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AddChunk("j", 0, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Wrong length, bad index, duplicate.
	if err := s.AddChunk("j", 1, []int{4}); err == nil {
		t.Fatal("short chunk accepted")
	}
	if err := s.AddChunk("j", 3, []int{1}); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if err := s.AddChunk("j", 0, []int{1, 2, 3}); !errors.Is(err, ErrDuplicateChunk) {
		t.Fatalf("duplicate chunk: %v", err)
	}
	if err := s.AddChunk("j", 1, []int{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Get("j")
	if _, err := j.Scores(); err == nil {
		t.Fatal("Scores with a missing chunk succeeded")
	}
	if err := s.AddChunk("j", 2, []int{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetState("j", StateDone, ""); err != nil {
		t.Fatal(err)
	}
	j, _ = s.Get("j")
	scores, err := j.Scores()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("scores = %v, want %v", scores, want)
		}
	}
}

func TestReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if _, err := s.Submit("a", "ka", 2, testPairs(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("b", "kb", 2, testPairs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetState("a", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AddChunk("a", 0, []int{5, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetState("b", StateCancelled, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep := mustOpen(t, dir)
	defer s2.Close()
	if rep.Truncated || rep.Jobs != 2 || rep.Records != 5 {
		t.Fatalf("replay report: %+v", rep)
	}
	a, ok := s2.Get("a")
	if !ok || a.State != StateRunning || a.ChunksDone() != 1 || a.Chunks[0][0] != 5 {
		t.Fatalf("replayed job a: %+v", a)
	}
	b, ok := s2.Get("b")
	if !ok || b.State != StateCancelled {
		t.Fatalf("replayed job b: %+v", b)
	}
	if _, ok := s2.ByKey("ka"); !ok {
		t.Fatal("idempotency key lost in replay")
	}
	// Appends continue cleanly after replay.
	if err := s2.AddChunk("a", 1, []int{7, 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDropGC(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if _, err := s.Submit("j", "k", 2, testPairs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drop("j"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("drop of non-terminal job: %v", err)
	}
	if _, err := s.SetState("j", StateCancelled, ""); err != nil {
		t.Fatal(err)
	}
	if prev, err := s.Drop("j"); err != nil || prev != StateCancelled {
		t.Fatalf("drop: prev=%v err=%v", prev, err)
	}
	if _, ok := s.Get("j"); ok {
		t.Fatal("dropped job still visible")
	}
	if _, ok := s.ByKey("k"); ok {
		t.Fatal("dropped job's key still mapped")
	}
	s.Close()
	s2, rep := mustOpen(t, dir)
	defer s2.Close()
	if rep.Jobs != 0 {
		t.Fatalf("dropped job resurrected by replay: %+v", rep)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(fmt.Sprintf("j%d", i), "", 4, testPairs(4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("no rotation happened: segments %v", segs)
	}
	s2, rep := mustOpen(t, dir)
	defer s2.Close()
	if rep.Jobs != 8 || rep.Segments != len(segs) || rep.Truncated {
		t.Fatalf("multi-segment replay: %+v", rep)
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(fmt.Sprintf("j%d", i), "", 4, testPairs(4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Tear the final record mid-line, as a crash mid-append would.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep := mustOpen(t, dir)
	if !rep.Truncated || rep.Records != 2 || rep.Jobs != 2 || rep.TruncatedBytes == 0 {
		t.Fatalf("torn-tail replay: %+v", rep)
	}
	if !strings.Contains(rep.Corrupt, "torn record") {
		t.Fatalf("report reason: %q", rep.Corrupt)
	}
	// The torn job is gone; the survivors are intact and appendable.
	if _, ok := s2.Get("j2"); ok {
		t.Fatal("torn job j2 survived")
	}
	if _, err := s2.Submit("j3", "", 4, testPairs(4)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	// A third open sees a clean log: truncation repaired the file on disk.
	s3, rep3 := mustOpen(t, dir)
	defer s3.Close()
	if rep3.Truncated || rep3.Jobs != 3 {
		t.Fatalf("post-repair replay: %+v", rep3)
	}
}

func TestMidLogCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(fmt.Sprintf("j%d", i), "", 4, testPairs(4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Skipf("expected ≥3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the middle segment: replay must recover only
	// the records before it and drop the later segments entirely.
	mid := filepath.Join(dir, segs[1])
	raw, _ := os.ReadFile(mid)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(mid, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rep := mustOpen(t, dir)
	defer s2.Close()
	if !rep.Truncated {
		t.Fatalf("corruption not reported: %+v", rep)
	}
	if rep.Jobs >= 6 {
		t.Fatalf("corrupt replay kept all jobs: %+v", rep)
	}
	left, _ := listSegments(dir)
	for _, seg := range left[1:] {
		if seg > segs[1] {
			t.Fatalf("post-corruption segment %s survived", seg)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			s, _, err := Open(Options{Dir: t.TempDir(), Sync: pol, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Submit("j", "", 1, testPairs(1)); err != nil {
				t.Fatal(err)
			}
			if pol == SyncInterval {
				time.Sleep(5 * time.Millisecond) // let the ticker fire once
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := ParseSyncPolicy("interval"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Fatal("bad sync policy accepted")
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	for st := StateQueued; st < numStates; st++ {
		b, err := st.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != st {
			t.Fatalf("state %v round-tripped to %v", st, back)
		}
	}
	var s State
	if err := s.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("bogus state accepted")
	}
	if err := s.UnmarshalJSON([]byte(`7`)); err == nil {
		t.Fatal("numeric state accepted")
	}
}

func TestStateCountsAndList(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(fmt.Sprintf("j%d", i), "", 1, testPairs(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SetState("j1", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	counts := s.StateCounts()
	if counts[StateQueued] != 2 || counts[StateRunning] != 1 {
		t.Fatalf("state counts: %v", counts)
	}
	list := s.List()
	if len(list) != 3 || list[0].ID != "j0" || list[2].ID != "j2" {
		t.Fatalf("list order: %v", list)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestDirSyncedOnSegmentLifecycle asserts the WAL fsyncs its parent
// directory at every point a directory entry is born: initial segment
// creation, and each rotation (seal + next segment's create). Without the
// directory sync, a crash right after rotation could lose the new segment's
// directory entry even though its contents were fsynced.
func TestDirSyncedOnSegmentLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var calls int
	var dirs []string
	s.w.syncDir = func(d string) error {
		calls++
		dirs = append(dirs, d)
		return nil
	}

	before := calls
	start := s.w.segNum
	for i := 0; calls == before && i < 64; i++ {
		if _, err := s.Submit(fmt.Sprintf("sync%d", i), "", 4, testPairs(4)); err != nil {
			t.Fatal(err)
		}
	}
	if s.w.segNum == start {
		t.Fatalf("no rotation happened within the append budget")
	}
	// One rotation = two dir syncs: after the seal and after the new
	// segment's creation.
	if calls < 2 {
		t.Fatalf("rotation synced the directory %d time(s), want >= 2", calls)
	}
	for _, d := range dirs {
		if d != dir {
			t.Fatalf("synced the wrong directory %q, want %q", d, dir)
		}
	}

	// A rotate whose directory sync fails must surface the error, not
	// silently continue on a possibly-lost segment.
	s.w.syncDir = func(string) error { return fmt.Errorf("boom") }
	var rotateErr error
	for i := 0; i < 64; i++ {
		if _, err := s.Submit(fmt.Sprintf("fail%d", i), "", 4, testPairs(4)); err != nil {
			rotateErr = err
			break
		}
	}
	if rotateErr == nil || !strings.Contains(rotateErr.Error(), "fsync dir") {
		t.Fatalf("rotate with failing dir sync: err = %v, want fsync dir error", rotateErr)
	}
}

// TestOpenSyncsDirOnFirstSegment pins the initial create: a brand-new WAL
// directory must be synced as soon as the first segment exists, which the
// default (real) fsyncDir implementation performs against the real dir.
func TestOpenSyncsDirOnFirstSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1<<20, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if w.syncDir == nil {
		t.Fatal("wal has no syncDir hook")
	}
	// The seam must default to a working implementation.
	if err := w.syncDir(dir); err != nil {
		t.Fatalf("default syncDir(%s): %v", dir, err)
	}
	if err := fsyncDir(filepath.Join(dir, "nonexistent")); err == nil {
		t.Fatal("fsyncDir on a missing directory should fail")
	}
}

func TestTenantOwnershipSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if _, err := s.SubmitOwned("t1", "", "acme", 2, testPairs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitOwned("t2", "", "acme", 2, testPairs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("t3", "", 2, testPairs(2)); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveByTenant("acme"); got != 2 {
		t.Fatalf("ActiveByTenant(acme) = %d, want 2", got)
	}
	if got := s.ActiveByTenant(""); got != 1 {
		t.Fatalf("ActiveByTenant(anonymous) = %d, want 1", got)
	}
	// Terminal jobs stop counting against the quota.
	if _, err := s.SetState("t1", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AddChunk("t1", 0, []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetState("t1", StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveByTenant("acme"); got != 1 {
		t.Fatalf("ActiveByTenant(acme) after done = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Ownership and the active count are WAL-resident: both survive reopen.
	s2, rep := mustOpen(t, dir)
	defer s2.Close()
	if rep.Truncated {
		t.Fatalf("replay report: %+v", rep)
	}
	j, ok := s2.Get("t2")
	if !ok || j.Tenant != "acme" {
		t.Fatalf("replayed job t2 tenant = %+v ok=%v", j, ok)
	}
	if got := s2.ActiveByTenant("acme"); got != 1 {
		t.Fatalf("replayed ActiveByTenant(acme) = %d, want 1", got)
	}
	if j3, ok := s2.Get("t3"); !ok || j3.Tenant != "" {
		t.Fatalf("untenanted submit gained a tenant: %+v", j3)
	}
}
