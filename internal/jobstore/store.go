package jobstore

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// State is one node of the job state machine:
//
//	queued → running → done
//	              ↘  → failed
//	queued/running → cancelled
//	running → queued        (drain requeue / crash recovery)
type State int

const (
	// StateQueued jobs wait in FIFO order for a runner slot.
	StateQueued State = iota
	// StateRunning jobs have a runner executing chunks.
	StateRunning
	// StateDone jobs have every chunk checkpointed; scores are assembled
	// from the checkpoints.
	StateDone
	// StateFailed jobs hit a non-retryable error (recorded in Job.Error).
	StateFailed
	// StateCancelled jobs were cancelled by the client.
	StateCancelled
	numStates
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState is the inverse of State.String.
func ParseState(s string) (State, error) {
	for st := StateQueued; st < numStates; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("jobstore: unknown job state %q", s)
}

func (s State) known() bool { return s >= 0 && s < numStates }

// Terminal reports whether the state ends the job's lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// MarshalJSON renders the state name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the state name.
func (s *State) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("jobstore: state must be a JSON string, got %q", b)
	}
	v, err := ParseState(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// validTransition is the state machine's edge set.
func validTransition(from, to State) bool {
	switch from {
	case StateQueued:
		return to == StateRunning || to == StateCancelled
	case StateRunning:
		return to == StateDone || to == StateFailed || to == StateCancelled || to == StateQueued
	}
	return false
}

// Job is the durable view of one async job, rebuilt from the WAL on
// every open. Alignment jobs (Kind "") carry Pairs and checkpoint scores
// into Chunks; search jobs (KindSearch) carry a SearchSpec and
// checkpoint per-chunk top-K hits into SearchChunks.
type Job struct {
	ID        string
	Key       string // idempotency key ("" when the client sent none)
	Tenant    string // owning tenant ID ("" = the anonymous tenant)
	Kind      string // "" = alignment, KindSearch = corpus search
	State     State
	Error     string // failure message for StateFailed
	ChunkSize int
	Pairs     []PairData
	Search    *SearchSpec
	Chunks    map[int][]int
	// SearchChunks holds the checkpointed per-chunk top-K hits of a
	// search job by chunk index (present-but-empty is a legitimate
	// checkpoint: no candidate fell in the chunk's ID range).
	SearchChunks map[int][]HitData
	SubmitSeq    uint64    // WAL sequence of the submit record: FIFO order
	Created      time.Time // submit record timestamp
	Updated      time.Time // timestamp of the job's latest record
}

// units is how many items the job chunks over: pairs for alignment,
// corpus sequences for search.
func (j *Job) units() int {
	if j.Kind == KindSearch {
		return j.Search.SeqCount
	}
	return len(j.Pairs)
}

// NumChunks is how many chunks the job splits into.
func (j *Job) NumChunks() int {
	return (j.units() + j.ChunkSize - 1) / j.ChunkSize
}

// ChunkBounds returns the [lo, hi) item range of chunk idx: pair indices
// for alignment jobs, corpus sequence IDs for search jobs.
func (j *Job) ChunkBounds(idx int) (lo, hi int) {
	lo = idx * j.ChunkSize
	hi = min(lo+j.ChunkSize, j.units())
	return lo, hi
}

// ChunksDone counts checkpointed chunks of either kind.
func (j *Job) ChunksDone() int { return len(j.Chunks) + len(j.SearchChunks) }

// Scores assembles an alignment job's final score slice from the chunk
// checkpoints, failing if any chunk is missing or misshapen.
func (j *Job) Scores() ([]int, error) {
	if j.Kind == KindSearch {
		return nil, fmt.Errorf("%w: job %s is a search job", ErrWrongKind, j.ID)
	}
	out := make([]int, 0, len(j.Pairs))
	for c := 0; c < j.NumChunks(); c++ {
		lo, hi := j.ChunkBounds(c)
		scores, ok := j.Chunks[c]
		if !ok {
			return nil, fmt.Errorf("jobstore: job %s: chunk %d not checkpointed", j.ID, c)
		}
		if len(scores) != hi-lo {
			return nil, fmt.Errorf("jobstore: job %s: chunk %d has %d scores, want %d",
				j.ID, c, len(scores), hi-lo)
		}
		out = append(out, scores...)
	}
	return out, nil
}

// SearchHits merges a search job's per-chunk checkpoints into the final
// ranked top-K (score descending, then ID ascending — the same total
// order the searcher uses, so the merge is byte-identical to an
// uninterrupted search). Fails if any chunk is missing.
func (j *Job) SearchHits() ([]HitData, error) {
	if j.Kind != KindSearch {
		return nil, fmt.Errorf("%w: job %s is an alignment job", ErrWrongKind, j.ID)
	}
	var union []HitData
	for c := 0; c < j.NumChunks(); c++ {
		hits, ok := j.SearchChunks[c]
		if !ok {
			return nil, fmt.Errorf("jobstore: job %s: chunk %d not checkpointed", j.ID, c)
		}
		union = append(union, hits...)
	}
	sort.Slice(union, func(a, b int) bool {
		if union[a].Score != union[b].Score {
			return union[a].Score > union[b].Score
		}
		return union[a].ID < union[b].ID
	})
	if len(union) > j.Search.TopK {
		union = union[:j.Search.TopK]
	}
	return union, nil
}

// clone snapshots the job for readers. Pairs and per-chunk slices are
// shared (append-only once written), the chunk maps are copied.
func (j *Job) clone() *Job {
	c := *j
	c.Chunks = make(map[int][]int, len(j.Chunks))
	for k, v := range j.Chunks {
		c.Chunks[k] = v
	}
	c.SearchChunks = make(map[int][]HitData, len(j.SearchChunks))
	for k, v := range j.SearchChunks {
		c.SearchChunks[k] = v
	}
	return &c
}

// Typed store errors.
var (
	// ErrNotFound is returned for an unknown job ID.
	ErrNotFound = errors.New("jobstore: job not found")
	// ErrBadTransition is returned for a state change the machine forbids
	// (including any write to a terminal job).
	ErrBadTransition = errors.New("jobstore: invalid state transition")
	// ErrDuplicateChunk is returned when a chunk index is checkpointed
	// twice — the signature of duplicate chunk execution.
	ErrDuplicateChunk = errors.New("jobstore: chunk already checkpointed")
	// ErrWrongKind is returned when a kind-specific accessor or
	// checkpoint is used on a job of the other kind (e.g. Scores on a
	// search job).
	ErrWrongKind = errors.New("jobstore: wrong job kind")
)

// Options configures Open.
type Options struct {
	// Dir is the WAL directory (created if missing). Required.
	Dir string
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways). SyncEvery is the
	// SyncInterval period (default 100ms).
	Sync      SyncPolicy
	SyncEvery time.Duration

	// now replaces the record-timestamp clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Store is the durable job store: an in-memory job map kept in lockstep
// with the WAL. Every mutation appends a record first, then applies it, so
// a crash at any point replays to a state the process actually reached.
// Safe for concurrent use.
type Store struct {
	opts Options

	mu    sync.Mutex
	w     *wal
	jobs  map[string]*Job
	byKey map[string]string // idempotency key → job ID
	seq   uint64
	open  bool

	syncQuit chan struct{}
	syncDone chan struct{}
}

// Open replays the WAL in dir (creating it if missing), truncates any torn
// or corrupt tail, rebuilds the job map, and returns the store positioned
// for appends. The report says how much was recovered and whether anything
// was cut.
func Open(opts Options) (*Store, ReplayReport, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, ReplayReport{}, errors.New("jobstore: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, ReplayReport{}, fmt.Errorf("jobstore: create dir: %w", err)
	}
	recs, rep, segs, plan, err := scanDir(opts.Dir)
	if err != nil {
		return nil, rep, err
	}
	if err := applyTruncPlan(opts.Dir, segs, plan); err != nil {
		return nil, rep, err
	}
	s := &Store{
		opts:  opts,
		jobs:  make(map[string]*Job),
		byKey: make(map[string]string),
		open:  true,
	}
	for _, rec := range recs {
		s.apply(rec) // replay is lenient: asserted valid at append time
		s.seq = rec.Seq
	}
	rep.Jobs = len(s.jobs)
	w, err := openWAL(opts.Dir, opts.SegmentBytes, opts.Sync, s.seq)
	if err != nil {
		return nil, rep, err
	}
	s.w = w
	if opts.Sync == SyncInterval {
		s.syncQuit = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, rep, nil
}

func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.syncQuit:
			return
		case <-t.C:
			s.mu.Lock()
			if s.open {
				_ = s.w.sync()
			}
			s.mu.Unlock()
		}
	}
}

// Close fsyncs and closes the WAL. Further mutations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return nil
	}
	s.open = false
	err := s.w.close()
	s.mu.Unlock()
	if s.syncQuit != nil {
		close(s.syncQuit)
		<-s.syncDone
	}
	return err
}

// Sync forces an fsync of the current segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return errors.New("jobstore: store closed")
	}
	return s.w.sync()
}

// apply folds one (already validated) record into the in-memory state.
// Replay and live appends share it, so memory always matches the log.
func (s *Store) apply(rec Record) {
	t := time.UnixMilli(rec.TimeMS)
	switch rec.Type {
	case RecSubmit:
		sub := rec.Submit
		j := &Job{
			ID:           sub.ID,
			Key:          sub.Key,
			Tenant:       sub.Tenant,
			Kind:         sub.Kind,
			State:        StateQueued,
			ChunkSize:    sub.ChunkSize,
			Pairs:        sub.Pairs,
			Search:       sub.Search,
			Chunks:       make(map[int][]int),
			SearchChunks: make(map[int][]HitData),
			SubmitSeq:    rec.Seq,
			Created:      t,
			Updated:      t,
		}
		s.jobs[sub.ID] = j
		if sub.Key != "" {
			s.byKey[sub.Key] = sub.ID
		}
	case RecState:
		if j, ok := s.jobs[rec.State.ID]; ok {
			j.State = rec.State.State
			j.Error = rec.State.Error
			j.Updated = t
		}
	case RecChunk:
		if j, ok := s.jobs[rec.Chunk.ID]; ok {
			if rec.Chunk.Search {
				hits := rec.Chunk.Hits
				if hits == nil {
					hits = []HitData{}
				}
				j.SearchChunks[rec.Chunk.Index] = hits
			} else {
				j.Chunks[rec.Chunk.Index] = rec.Chunk.Scores
			}
			j.Updated = t
		}
	case RecDrop:
		if j, ok := s.jobs[rec.Drop.ID]; ok {
			if j.Key != "" && s.byKey[j.Key] == j.ID {
				delete(s.byKey, j.Key)
			}
			delete(s.jobs, rec.Drop.ID)
		}
	}
}

// appendLocked persists one record and folds it into memory. Caller holds
// s.mu and has validated the mutation.
func (s *Store) appendLocked(rec Record) error {
	if !s.open {
		return errors.New("jobstore: store closed")
	}
	s.seq++
	rec.Seq = s.seq
	rec.TimeMS = nowMS(s.opts.now())
	if err := s.w.append(rec); err != nil {
		s.seq-- // the record never hit the log; keep seq in lockstep
		return err
	}
	s.apply(rec)
	return nil
}

// Submit persists a new job in StateQueued owned by the anonymous tenant.
// The ID must be unused.
func (s *Store) Submit(id, key string, chunkSize int, pairs []PairData) (*Job, error) {
	return s.SubmitOwned(id, key, "", chunkSize, pairs)
}

// SubmitOwned persists a new job in StateQueued owned by a tenant. The
// tenant ID is written to the WAL, so ownership (and any per-tenant
// running-job quota derived from it) survives replay.
func (s *Store) SubmitOwned(id, key, tenant string, chunkSize int, pairs []PairData) (*Job, error) {
	if id == "" || chunkSize <= 0 || len(pairs) == 0 {
		return nil, fmt.Errorf("jobstore: submit needs id, positive chunk size and pairs")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.jobs[id]; exists {
		return nil, fmt.Errorf("jobstore: job %s already exists", id)
	}
	err := s.appendLocked(Record{Type: RecSubmit,
		Submit: &SubmitRecord{ID: id, Key: key, Tenant: tenant, ChunkSize: chunkSize, Pairs: pairs}})
	if err != nil {
		return nil, err
	}
	return s.jobs[id].clone(), nil
}

// SubmitSearch persists a new corpus-search job in StateQueued. The spec
// must arrive fully resolved (positive TopK and SeqCount, corpus name,
// fingerprint and query set) so a replayed job re-derives the exact same
// candidate set; ChunkSize divides the corpus sequence-ID space.
func (s *Store) SubmitSearch(id, key, tenant string, chunkSize int, spec SearchSpec) (*Job, error) {
	if id == "" || chunkSize <= 0 {
		return nil, fmt.Errorf("jobstore: search submit needs id and positive chunk size")
	}
	if spec.Corpus == "" || spec.Query == "" || spec.SeqCount <= 0 || spec.TopK <= 0 {
		return nil, fmt.Errorf("jobstore: search submit needs corpus, query, positive seq count and top-k")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.jobs[id]; exists {
		return nil, fmt.Errorf("jobstore: job %s already exists", id)
	}
	sp := spec
	err := s.appendLocked(Record{Type: RecSubmit,
		Submit: &SubmitRecord{ID: id, Key: key, Tenant: tenant, Kind: KindSearch, ChunkSize: chunkSize, Search: &sp}})
	if err != nil {
		return nil, err
	}
	return s.jobs[id].clone(), nil
}

// SetState transitions a job, returning its previous state (for callers
// maintaining per-state gauges). Invalid transitions — including any write
// to a terminal job — fail with ErrBadTransition.
func (s *Store) SetState(id string, to State, errMsg string) (prev State, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !validTransition(j.State, to) {
		return j.State, fmt.Errorf("%w: %s: %s → %s", ErrBadTransition, id, j.State, to)
	}
	prev = j.State
	err = s.appendLocked(Record{Type: RecState,
		State: &StateRecord{ID: id, State: to, Error: errMsg}})
	return prev, err
}

// AddChunk checkpoints chunk idx of a running job. Checkpointing the same
// index twice fails with ErrDuplicateChunk — re-executing a checkpointed
// chunk is a bug, and the log is the proof.
func (s *Store) AddChunk(id string, idx int, scores []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if j.Kind != "" {
		return fmt.Errorf("%w: job %s is a %s job", ErrWrongKind, id, j.Kind)
	}
	if j.State != StateRunning {
		return fmt.Errorf("%w: %s: chunk checkpoint in state %s", ErrBadTransition, id, j.State)
	}
	if idx < 0 || idx >= j.NumChunks() {
		return fmt.Errorf("jobstore: job %s: chunk index %d out of range [0,%d)", id, idx, j.NumChunks())
	}
	if _, dup := j.Chunks[idx]; dup {
		return fmt.Errorf("%w: job %s chunk %d", ErrDuplicateChunk, id, idx)
	}
	lo, hi := j.ChunkBounds(idx)
	if len(scores) != hi-lo {
		return fmt.Errorf("jobstore: job %s: chunk %d got %d scores, want %d", id, idx, len(scores), hi-lo)
	}
	return s.appendLocked(Record{Type: RecChunk,
		Chunk: &ChunkRecord{ID: id, Index: idx, Scores: scores}})
}

// AddSearchChunk checkpoints chunk idx of a running search job with the
// chunk's top-K hits (possibly empty). Like AddChunk, checkpointing the
// same index twice fails with ErrDuplicateChunk — re-executing a
// checkpointed chunk is a bug, and the log is the proof.
func (s *Store) AddSearchChunk(id string, idx int, hits []HitData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if j.Kind != KindSearch {
		return fmt.Errorf("%w: job %s is an alignment job", ErrWrongKind, id)
	}
	if j.State != StateRunning {
		return fmt.Errorf("%w: %s: chunk checkpoint in state %s", ErrBadTransition, id, j.State)
	}
	if idx < 0 || idx >= j.NumChunks() {
		return fmt.Errorf("jobstore: job %s: chunk index %d out of range [0,%d)", id, idx, j.NumChunks())
	}
	if _, dup := j.SearchChunks[idx]; dup {
		return fmt.Errorf("%w: job %s chunk %d", ErrDuplicateChunk, id, idx)
	}
	if len(hits) > j.Search.TopK {
		return fmt.Errorf("jobstore: job %s: chunk %d got %d hits, top-k is %d", id, idx, len(hits), j.Search.TopK)
	}
	return s.appendLocked(Record{Type: RecChunk,
		Chunk: &ChunkRecord{ID: id, Index: idx, Search: true, Hits: hits}})
}

// Drop garbage-collects a terminal job.
func (s *Store) Drop(id string) (prev State, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.State.Terminal() {
		return j.State, fmt.Errorf("%w: %s: drop in state %s", ErrBadTransition, id, j.State)
	}
	prev = j.State
	err = s.appendLocked(Record{Type: RecDrop, Drop: &DropRecord{ID: id}})
	return prev, err
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// ByKey returns a snapshot of the job holding an idempotency key.
func (s *Store) ByKey(key string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	return s.jobs[id].clone(), true
}

// List snapshots every job in submission (FIFO) order.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SubmitSeq < out[b].SubmitSeq })
	return out
}

// ActiveByTenant counts a tenant's live (queued or running) jobs — the
// quantity per-tenant running-job quotas are enforced against. Because
// ownership is WAL-resident, the count is correct immediately after replay.
func (s *Store) ActiveByTenant(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.Tenant == tenant && !j.State.Terminal() {
			n++
		}
	}
	return n
}

// StateCounts tallies jobs per state without cloning payloads.
func (s *Store) StateCounts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, int(numStates))
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}

// Len is the number of live (non-dropped) jobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}
