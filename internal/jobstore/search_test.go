package jobstore

import (
	"errors"
	"reflect"
	"testing"
)

func testSpec() SearchSpec {
	return SearchSpec{
		Corpus:      "ref",
		Fingerprint: "deadbeef",
		Query:       "ACGTACGT",
		TopK:        3,
		MinKmerHits: 4,
		MaxEdits:    2,
		SeqCount:    10,
	}
}

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSubmitSearchValidation(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	bad := []SearchSpec{
		{},
		{Corpus: "ref", Query: "ACGT", SeqCount: 10}, // no top-k
		{Corpus: "ref", Query: "ACGT", TopK: 3},      // no seq count
		{Corpus: "ref", TopK: 3, SeqCount: 10},       // no query
		{Query: "ACGT", TopK: 3, SeqCount: 10},       // no corpus
	}
	for i, sp := range bad {
		if _, err := s.SubmitSearch("job-x", "", "", 4, sp); err == nil {
			t.Errorf("spec %d: want error", i)
		}
	}
	if _, err := s.SubmitSearch("job-x", "", "", 0, testSpec()); err == nil {
		t.Error("zero chunk size: want error")
	}
	if _, err := s.SubmitSearch("", "", "", 4, testSpec()); err == nil {
		t.Error("empty id: want error")
	}
}

func TestSearchJobLifecycleAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	spec := testSpec()
	j, err := s.SubmitSearch("job-s", "key-s", "acme", 4, spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.Kind != KindSearch || j.NumChunks() != 3 || j.Search.TopK != 3 {
		t.Fatalf("submitted job: kind=%q chunks=%d spec=%+v", j.Kind, j.NumChunks(), j.Search)
	}
	if lo, hi := j.ChunkBounds(2); lo != 8 || hi != 10 {
		t.Fatalf("chunk 2 bounds [%d,%d), want [8,10)", lo, hi)
	}

	// Kind confusion is typed.
	if err := s.AddChunk("job-s", 0, []int{1, 2, 3, 4}); !errors.Is(err, ErrWrongKind) {
		t.Errorf("AddChunk on search job: %v, want ErrWrongKind", err)
	}
	if _, err := j.Scores(); !errors.Is(err, ErrWrongKind) {
		t.Errorf("Scores on search job: %v, want ErrWrongKind", err)
	}

	if err := s.AddSearchChunk("job-s", 0, nil); !errors.Is(err, ErrBadTransition) {
		t.Errorf("checkpoint while queued: %v, want ErrBadTransition", err)
	}
	if _, err := s.SetState("job-s", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	chunks := map[int][]HitData{
		0: {{ID: 1, Name: "a", Score: 9}, {ID: 3, Name: "b", Score: 9}},
		1: {}, // empty checkpoint: no candidates in range
		2: {{ID: 8, Name: "c", Score: 12}},
	}
	for idx, hits := range chunks {
		if err := s.AddSearchChunk("job-s", idx, hits); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddSearchChunk("job-s", 1, nil); !errors.Is(err, ErrDuplicateChunk) {
		t.Errorf("duplicate chunk: %v, want ErrDuplicateChunk", err)
	}
	if err := s.AddSearchChunk("job-s", 3, nil); err == nil {
		t.Error("out-of-range chunk: want error")
	}
	if err := s.AddSearchChunk("job-s", 0, make([]HitData, 4)); !errors.Is(err, ErrDuplicateChunk) {
		// (dup wins over the over-top-k check; both are rejections)
		t.Errorf("oversized dup chunk: %v", err)
	}
	if _, err := s.SetState("job-s", StateDone, ""); err != nil {
		t.Fatal(err)
	}

	want := []HitData{{ID: 8, Name: "c", Score: 12}, {ID: 1, Name: "a", Score: 9}, {ID: 3, Name: "b", Score: 9}}
	got, _ := s.Get("job-s")
	if got.ChunksDone() != 3 {
		t.Fatalf("ChunksDone = %d, want 3", got.ChunksDone())
	}
	hits, err := got.SearchHits()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hits, want) {
		t.Fatalf("merged hits %v, want %v", hits, want)
	}

	// Replay: reopen and check everything — including the empty chunk 1
	// checkpoint — survived.
	s.Close()
	s2 := openTestStore(t, dir)
	re, ok := s2.Get("job-s")
	if !ok {
		t.Fatal("job lost on replay")
	}
	if re.Kind != KindSearch || !reflect.DeepEqual(re.Search, &spec) || re.Tenant != "acme" {
		t.Fatalf("replayed job: kind=%q tenant=%q spec=%+v", re.Kind, re.Tenant, re.Search)
	}
	if h, ok := re.SearchChunks[1]; !ok || len(h) != 0 {
		t.Fatalf("empty chunk checkpoint lost on replay: %v ok=%v", h, ok)
	}
	rehits, err := re.SearchHits()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rehits, want) {
		t.Fatalf("replayed hits %v, want %v", rehits, want)
	}
}

func TestSearchHitsMissingChunk(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	if _, err := s.SubmitSearch("job-m", "", "", 4, testSpec()); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Get("job-m")
	if _, err := j.SearchHits(); err == nil {
		t.Error("SearchHits with no checkpoints: want error")
	}
	// And the wrong-kind direction: SearchHits on an alignment job.
	if _, err := s.Submit("job-a", "", 2, []PairData{{X: "AC", Y: "GT"}}); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get("job-a")
	if _, err := a.SearchHits(); !errors.Is(err, ErrWrongKind) {
		t.Errorf("SearchHits on alignment job: %v, want ErrWrongKind", err)
	}
}

func TestSearchRecordValidate(t *testing.T) {
	spec := testSpec()
	cases := []struct {
		name string
		rec  Record
		ok   bool
	}{
		{"search-submit", Record{Type: RecSubmit, Submit: &SubmitRecord{
			ID: "j", Kind: KindSearch, ChunkSize: 4, Search: &spec}}, true},
		{"search-submit-with-pairs", Record{Type: RecSubmit, Submit: &SubmitRecord{
			ID: "j", Kind: KindSearch, ChunkSize: 4, Search: &spec,
			Pairs: []PairData{{X: "A", Y: "C"}}}}, false},
		{"align-submit-with-spec", Record{Type: RecSubmit, Submit: &SubmitRecord{
			ID: "j", ChunkSize: 4, Pairs: []PairData{{X: "A", Y: "C"}}, Search: &spec}}, false},
		{"unknown-kind", Record{Type: RecSubmit, Submit: &SubmitRecord{
			ID: "j", Kind: "mystery", ChunkSize: 4, Search: &spec}}, false},
		{"search-submit-no-spec", Record{Type: RecSubmit, Submit: &SubmitRecord{
			ID: "j", Kind: KindSearch, ChunkSize: 4}}, false},
		{"search-chunk-empty-hits", Record{Type: RecChunk, Chunk: &ChunkRecord{
			ID: "j", Index: 0, Search: true}}, true},
		{"search-chunk-with-scores", Record{Type: RecChunk, Chunk: &ChunkRecord{
			ID: "j", Index: 0, Search: true, Scores: []int{1}}}, false},
		{"align-chunk-with-hits", Record{Type: RecChunk, Chunk: &ChunkRecord{
			ID: "j", Index: 0, Scores: []int{1}, Hits: []HitData{{ID: 1}}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.rec.Seq, tc.rec.TimeMS = 1, 1
			err := tc.rec.validate()
			if (err == nil) != tc.ok {
				t.Errorf("validate() = %v, want ok=%v", err, tc.ok)
			}
			if err != nil {
				return
			}
			// Valid records must round-trip the encoder.
			line, err := encodeRecord(tc.rec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := decodeRecord(line[:len(line)-1])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.rec) {
				t.Errorf("round-trip %+v != %+v", got, tc.rec)
			}
		})
	}
}
