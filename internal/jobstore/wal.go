// Package jobstore persists the async job subsystem's state machine in an
// append-only write-ahead log so alignment jobs survive process crashes.
//
// The log is a directory of JSON-lines segments (wal-00000001.log, …). Each
// record is one line of the form
//
//	crc32hex<space>payload-json\n
//
// where the CRC-32 (IEEE) covers exactly the payload bytes. Records carry a
// strictly increasing sequence number, a timestamp, and one of four typed
// payloads: a job submission (id, idempotency key, chunk size, and either
// the alignment pairs or a corpus-search spec), a state transition
// (queued → running → done/failed/cancelled, plus the running → queued
// requeue used by drain), a chunk checkpoint (chunk index + scores, or
// per-chunk top-K hits for search jobs), or a drop (TTL garbage collection
// of a terminal job).
//
// Replay tolerates crashes at any byte: a torn or corrupt tail is truncated
// back to the last whole record (never a panic, always a typed
// *CorruptError in the report), and everything before the corruption point
// is recovered. Durability is tunable via SyncPolicy: fsync every append,
// on a background interval, or never (the OS decides).
package jobstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"
)

// RecordType discriminates the WAL record payloads.
type RecordType string

const (
	// RecSubmit introduces a job: id, idempotency key, chunk size, pairs.
	RecSubmit RecordType = "submit"
	// RecState transitions a job's state.
	RecState RecordType = "state"
	// RecChunk checkpoints one completed chunk's scores.
	RecChunk RecordType = "chunk"
	// RecDrop removes a terminal job (TTL garbage collection).
	RecDrop RecordType = "drop"
)

// PairData is one (pattern, text) pair as ACGT strings — the durable form
// of a dna.Pair (jobstore stays stdlib-only; callers convert).
type PairData struct {
	X string `json:"x"`
	Y string `json:"y"`
}

// KindSearch marks a corpus-search job. The zero kind ("") is an
// alignment job, so logs written before search jobs existed replay
// unchanged.
const KindSearch = "search"

// SearchSpec is the durable description of a corpus-search job: the
// corpus it runs against (pinned by fingerprint, so a resume against a
// rebuilt corpus fails instead of silently mixing result sets), the
// query, and the fully resolved search parameters — defaults are
// resolved before submit so a replayed job re-derives the exact same
// candidate set.
type SearchSpec struct {
	Corpus      string `json:"corpus"`      // registry mount name
	Fingerprint string `json:"fingerprint"` // corpus content fingerprint at submit
	Query       string `json:"query"`       // ACGT query string
	TopK        int    `json:"top_k"`
	MinKmerHits int    `json:"min_kmer_hits"`
	MaxEdits    int    `json:"max_edits"`
	SeqCount    int    `json:"seq_count"` // corpus size at submit; chunking divides it
}

// HitData is one ranked hit in durable form (jobstore stays
// stdlib-only; callers convert to/from corpus.Hit).
type HitData struct {
	ID    int    `json:"id"`
	Name  string `json:"name,omitempty"`
	Score int    `json:"score"`
}

// SubmitRecord introduces a job. Tenant is the owning tenant's ID; it is
// omitempty so logs written before multi-tenancy replay unchanged (an
// absent tenant means the anonymous tenant). Kind/Search are likewise
// omitempty: absent means an alignment job, set means a search job
// (which carries a SearchSpec instead of pairs).
type SubmitRecord struct {
	ID        string      `json:"id"`
	Key       string      `json:"key,omitempty"` // idempotency key
	Tenant    string      `json:"tenant,omitempty"`
	Kind      string      `json:"kind,omitempty"`
	ChunkSize int         `json:"chunk_size"`
	Pairs     []PairData  `json:"pairs,omitempty"`
	Search    *SearchSpec `json:"search,omitempty"`
}

// StateRecord transitions a job's state. Error is set for StateFailed.
type StateRecord struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// ChunkRecord checkpoints chunk Index of job ID. Alignment chunks carry
// the chunk's exact scores; search chunks set Search and carry the
// chunk's top-K hits instead — Hits may legitimately be empty (no
// candidate in the chunk's ID range), which is why the Search flag
// exists rather than inferring the kind from a non-empty Hits.
type ChunkRecord struct {
	ID     string    `json:"id"`
	Index  int       `json:"index"`
	Scores []int     `json:"scores,omitempty"`
	Search bool      `json:"search,omitempty"`
	Hits   []HitData `json:"hits,omitempty"`
}

// DropRecord removes a terminal job from the store.
type DropRecord struct {
	ID string `json:"id"`
}

// Record is the WAL record envelope: exactly one payload field is non-nil,
// matching Type.
type Record struct {
	Seq    uint64        `json:"seq"`
	TimeMS int64         `json:"time_ms"`
	Type   RecordType    `json:"type"`
	Submit *SubmitRecord `json:"submit,omitempty"`
	State  *StateRecord  `json:"state,omitempty"`
	Chunk  *ChunkRecord  `json:"chunk,omitempty"`
	Drop   *DropRecord   `json:"drop,omitempty"`
}

// ErrCorrupt is the sentinel wrapped by every WAL decode failure, so callers
// can errors.Is() corruption apart from I/O errors.
var ErrCorrupt = errors.New("jobstore: corrupt WAL record")

// CorruptError describes where and why a WAL record failed to decode.
type CorruptError struct {
	Segment string // segment file name ("" when decoding a bare line)
	Offset  int64  // byte offset of the record start within the segment
	Reason  string
}

func (e *CorruptError) Error() string {
	if e.Segment == "" {
		return fmt.Sprintf("jobstore: corrupt WAL record: %s", e.Reason)
	}
	return fmt.Sprintf("jobstore: corrupt WAL record at %s+%d: %s", e.Segment, e.Offset, e.Reason)
}

// Unwrap ties every CorruptError to the ErrCorrupt sentinel.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// encodeRecord renders one record line: crc32hex, space, JSON, newline.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobstore: marshal record: %w", err)
	}
	var b bytes.Buffer
	b.Grow(len(payload) + 10)
	fmt.Fprintf(&b, "%08x ", crc32.ChecksumIEEE(payload))
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes(), nil
}

// decodeRecord parses one line (without the trailing newline). Every failure
// is a *CorruptError; it never panics on arbitrary bytes.
func decodeRecord(line []byte) (Record, error) {
	corrupt := func(reason string) (Record, error) {
		return Record{}, &CorruptError{Reason: reason}
	}
	if len(line) < 10 || line[8] != ' ' {
		return corrupt("short or malformed header")
	}
	sum64, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return corrupt("bad CRC hex: " + err.Error())
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(sum64) {
		return corrupt(fmt.Sprintf("CRC mismatch: header %08x, payload %08x", uint32(sum64), got))
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return corrupt("bad JSON: " + err.Error())
	}
	if err := rec.validate(); err != nil {
		return corrupt(err.Error())
	}
	return rec, nil
}

// validate checks the envelope invariant: exactly one payload, matching Type.
func (r Record) validate() error {
	var set int
	for _, p := range []bool{r.Submit != nil, r.State != nil, r.Chunk != nil, r.Drop != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("%d payloads set, want exactly 1", set)
	}
	switch r.Type {
	case RecSubmit:
		if r.Submit == nil {
			return errors.New("type submit without submit payload")
		}
		if r.Submit.ID == "" || r.Submit.ChunkSize <= 0 {
			return errors.New("submit payload missing id or chunk size")
		}
		switch r.Submit.Kind {
		case "":
			if len(r.Submit.Pairs) == 0 {
				return errors.New("submit payload missing pairs")
			}
			if r.Submit.Search != nil {
				return errors.New("alignment submit carrying a search spec")
			}
		case KindSearch:
			sp := r.Submit.Search
			if sp == nil {
				return errors.New("search submit without search spec")
			}
			if len(r.Submit.Pairs) != 0 {
				return errors.New("search submit carrying pairs")
			}
			if sp.Corpus == "" || sp.Query == "" || sp.SeqCount <= 0 || sp.TopK <= 0 {
				return errors.New("search spec missing corpus, query, seq count or top-k")
			}
		default:
			return fmt.Errorf("unknown submit kind %q", r.Submit.Kind)
		}
	case RecState:
		if r.State == nil {
			return errors.New("type state without state payload")
		}
		if r.State.ID == "" || !r.State.State.known() {
			return errors.New("state payload missing id or unknown state")
		}
	case RecChunk:
		if r.Chunk == nil {
			return errors.New("type chunk without chunk payload")
		}
		if r.Chunk.ID == "" || r.Chunk.Index < 0 {
			return errors.New("chunk payload missing id or index")
		}
		if r.Chunk.Search {
			if len(r.Chunk.Scores) != 0 {
				return errors.New("search chunk carrying scores")
			}
		} else if len(r.Chunk.Scores) == 0 {
			return errors.New("chunk payload missing scores")
		} else if len(r.Chunk.Hits) != 0 {
			return errors.New("alignment chunk carrying hits")
		}
	case RecDrop:
		if r.Drop == nil {
			return errors.New("type drop without drop payload")
		}
		if r.Drop.ID == "" {
			return errors.New("drop payload missing id")
		}
	default:
		return fmt.Errorf("unknown record type %q", r.Type)
	}
	return nil
}

const segmentPattern = "wal-%08d.log"

// segmentName renders the numbered segment file name.
func segmentName(n int) string { return fmt.Sprintf(segmentPattern, n) }

// segmentNumber parses a segment file name, reporting ok=false for
// foreign files.
func segmentNumber(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, segmentPattern, &n); err != nil || segmentName(n) != name {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment file names in dir, in log order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		if _, ok := segmentNumber(e.Name()); ok && !e.IsDir() {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// ReplayReport says what replay found — and what it had to throw away.
type ReplayReport struct {
	Segments  int    `json:"segments"`  // segment files scanned
	Records   int    `json:"records"`   // whole records recovered
	Truncated bool   `json:"truncated"` // a torn/corrupt tail was cut
	Corrupt   string `json:"corrupt,omitempty"`
	// TruncatedBytes counts bytes discarded at and after the corruption
	// point (including any later segments removed wholesale).
	TruncatedBytes int64 `json:"truncated_bytes"`
	Jobs           int   `json:"jobs"` // live jobs after applying the records
}

// scanSegment reads whole records from one segment file, stopping at the
// first torn or corrupt record. lastSeq is the sequence number of the last
// record in the previous segment (0 for the first), continuing the strictly
// increasing sequence check across the boundary. It returns the records, the
// byte offset of the first bad record (== file size when the whole file is
// clean), and the corruption that stopped it (nil when clean).
func scanSegment(path string, lastSeq uint64) (recs []Record, goodLen int64, corrupt *CorruptError, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return recs, off, nil, nil
		}
		if err == io.EOF {
			// Bytes after the final newline: a torn record from a crash
			// mid-append.
			return recs, off, &CorruptError{Segment: filepath.Base(path), Offset: off,
				Reason: "torn record at end of segment"}, nil
		}
		if err != nil {
			return nil, 0, nil, err
		}
		rec, derr := decodeRecord(bytes.TrimSuffix(line, []byte("\n")))
		if derr != nil {
			ce := derr.(*CorruptError)
			ce.Segment, ce.Offset = filepath.Base(path), off
			return recs, off, ce, nil
		}
		if rec.Seq <= lastSeq {
			return recs, off, &CorruptError{Segment: filepath.Base(path), Offset: off,
				Reason: fmt.Sprintf("sequence regression: %d after %d", rec.Seq, lastSeq)}, nil
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off += int64(len(line))
	}
}

// truncPlan says how to repair a corrupt log: cut segment segs[index] back
// to goodLen bytes and delete every later segment.
type truncPlan struct {
	index   int
	goodLen int64
}

// scanDir reads every whole record from the WAL directory, stopping at the
// first corruption and returning the repair plan (nil when clean). Missing
// directories scan as empty.
func scanDir(dir string) (all []Record, rep ReplayReport, segs []string, plan *truncPlan, err error) {
	segs, err = listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, rep, nil, nil, nil
		}
		return nil, rep, nil, nil, err
	}
	var lastSeq uint64
	for i, seg := range segs {
		path := filepath.Join(dir, seg)
		recs, goodLen, corrupt, err := scanSegment(path, lastSeq)
		if err != nil {
			return nil, rep, nil, nil, err
		}
		rep.Segments++
		all = append(all, recs...)
		rep.Records += len(recs)
		if len(recs) > 0 {
			lastSeq = recs[len(recs)-1].Seq
		}
		if corrupt != nil {
			plan = &truncPlan{index: i, goodLen: goodLen}
			rep.Truncated = true
			rep.Corrupt = corrupt.Error()
			if st, err := os.Stat(path); err == nil {
				rep.TruncatedBytes += st.Size() - goodLen
			}
			for _, later := range segs[i+1:] {
				if st, err := os.Stat(filepath.Join(dir, later)); err == nil {
					rep.TruncatedBytes += st.Size()
				}
			}
			break
		}
	}
	return all, rep, segs, plan, nil
}

// ScanDir reads every whole record from the WAL directory without mutating
// anything, stopping at the first corruption. Tests and tooling use it to
// audit a log (e.g. proving no chunk was checkpointed twice); Open uses the
// same scan and then truncates.
func ScanDir(dir string) ([]Record, ReplayReport, error) {
	all, rep, _, _, err := scanDir(dir)
	return all, rep, err
}

// SyncPolicy selects when appends reach the disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — the crash-safe default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery).
	SyncInterval
	// SyncNever leaves flushing to the OS page cache.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// ParseSyncPolicy is the inverse of SyncPolicy.String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("jobstore: unknown sync policy %q (want always, interval or never)", s)
}

// wal is the append side of the log: the current segment file plus the
// rotation and sync machinery. Callers (Store) serialize access.
type wal struct {
	dir      string
	segBytes int64
	policy   SyncPolicy

	f      *os.File
	segNum int
	size   int64
	seq    uint64 // last sequence number written or replayed

	// syncDir fsyncs the WAL directory; a test seam (defaults to
	// fsyncDir). File fsync alone does not persist the *directory entry*
	// of a freshly created segment: a crash right after rotation could
	// lose the new segment's name even though its bytes were synced.
	syncDir func(string) error
}

// fsyncDir opens a directory and fsyncs it, making recent entry
// creations (new segment files) durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// openWAL positions the writer after replay: appends go to the last
// surviving segment (already truncated past any corruption), or a fresh
// first segment for an empty directory.
func openWAL(dir string, segBytes int64, policy SyncPolicy, lastSeq uint64) (*wal, error) {
	w := &wal{dir: dir, segBytes: segBytes, policy: policy, seq: lastSeq, segNum: 1, syncDir: fsyncDir}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return w, w.openSegment(1, 0)
	}
	last := segs[len(segs)-1]
	n, _ := segmentNumber(last)
	st, err := os.Stat(filepath.Join(dir, last))
	if err != nil {
		return nil, err
	}
	return w, w.openSegment(n, st.Size())
}

func (w *wal) openSegment(n int, size int64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(n)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f, w.segNum, w.size = f, n, size
	if size == 0 {
		// The segment was (possibly) just created: fsync the directory so
		// the entry itself survives a crash, not just the file contents.
		if err := w.syncDir(w.dir); err != nil {
			return fmt.Errorf("jobstore: fsync dir after segment create: %w", err)
		}
	}
	return nil
}

// append encodes, writes and (per policy) fsyncs one record, rotating the
// segment afterwards when it crossed the size threshold.
func (w *wal) append(rec Record) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	w.size += int64(len(line))
	w.seq = rec.Seq
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("jobstore: fsync: %w", err)
		}
	}
	if w.size >= w.segBytes {
		return w.rotate()
	}
	return nil
}

// rotate seals the current segment (fsynced regardless of policy, so a
// sealed segment is always durable) and starts the next one. The directory
// is fsynced after the seal and again after the new segment's creation
// (inside openSegment), so neither the sealed segment nor its successor can
// vanish from the directory on a crash.
func (w *wal) rotate() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: fsync on rotate: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("jobstore: close on rotate: %w", err)
	}
	if err := w.syncDir(w.dir); err != nil {
		return fmt.Errorf("jobstore: fsync dir after seal: %w", err)
	}
	return w.openSegment(w.segNum+1, 0)
}

func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// applyTruncPlan repairs the corruption scanDir found: cut the corrupt
// segment back to its last whole record and delete every later segment, so
// the next append continues from a clean tail.
func applyTruncPlan(dir string, segs []string, plan *truncPlan) error {
	if plan == nil {
		return nil
	}
	path := filepath.Join(dir, segs[plan.index])
	if err := os.Truncate(path, plan.goodLen); err != nil {
		return fmt.Errorf("jobstore: truncate torn tail: %w", err)
	}
	for _, later := range segs[plan.index+1:] {
		if err := os.Remove(filepath.Join(dir, later)); err != nil {
			return fmt.Errorf("jobstore: remove post-corruption segment: %w", err)
		}
	}
	return nil
}

// nowMS converts a clock reading to the WAL's millisecond timestamps.
func nowMS(t time.Time) int64 { return t.UnixMilli() }
