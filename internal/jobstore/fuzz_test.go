package jobstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// validLine renders one well-formed record line for seeding the fuzzers.
func validLine(t testInterface, seq uint64) []byte {
	line, err := encodeRecord(Record{Seq: seq, TimeMS: 1700000000000, Type: RecSubmit,
		Submit: &SubmitRecord{ID: "j", ChunkSize: 2, Pairs: []PairData{{X: "AC", Y: "ACGT"}}}})
	if err != nil {
		t.Fatal(err)
	}
	return line
}

type testInterface interface{ Fatal(...any) }

// FuzzDecodeRecord throws arbitrary bytes at the line decoder: it must
// never panic, and every rejection must be a typed *CorruptError wrapping
// ErrCorrupt. Accepted records must re-encode to a decodable line.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("short"))
	f.Add([]byte("00000000 {}"))
	f.Add([]byte("zzzzzzzz {\"seq\":1}"))
	f.Add(bytes.TrimSuffix(validLine(f, 1), []byte("\n")))
	f.Add([]byte("ffffffff " + string(make([]byte, 64))))
	f.Add([]byte("00000000 {\"type\":\"submit\"}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := decodeRecord(line)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Valid records survive an encode/decode round trip.
		out, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of accepted record: %v", err)
		}
		if _, err := decodeRecord(bytes.TrimSuffix(out, []byte("\n"))); err != nil {
			t.Fatalf("re-decode of re-encoded record: %v", err)
		}
	})
}

// FuzzWALReplay writes arbitrary bytes as a segment file and opens the
// store over it: Open must never panic, must report rather than fail on
// corruption, and the truncation it performs must leave a log that a second
// Open replays identically and cleanly.
func FuzzWALReplay(f *testing.F) {
	good := validLine(f, 1)
	two := append(append([]byte{}, good...), validLine(f, 2)...)
	f.Add([]byte(""))
	f.Add(good)
	f.Add(two)
	f.Add(two[:len(two)-5])                     // torn tail
	f.Add(append([]byte("garbage\n"), good...)) // corrupt head
	f.Add([]byte("00000000 not-json\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		s, rep, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open on arbitrary bytes errored (should report, not fail): %v", err)
		}
		// The store must accept appends after any repair.
		if _, err := s.Submit("fuzz-post", "", 1, []PairData{{X: "A", Y: "AC"}}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// A second open replays the repaired log cleanly: same records plus
		// the append, and nothing left to truncate.
		s2, rep2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("re-open after repair: %v", err)
		}
		defer s2.Close()
		if rep2.Truncated {
			t.Fatalf("repair did not converge: first %+v, second %+v", rep, rep2)
		}
		if rep2.Records != rep.Records+1 {
			t.Fatalf("records changed across repair: first %d, second %d", rep.Records, rep2.Records)
		}
		if _, ok := s2.Get("fuzz-post"); !ok {
			t.Fatal("post-repair append lost")
		}
	})
}

// TestFuzzSeedsDirect runs the fuzz bodies over their seed corpus so the
// properties hold in plain `go test` runs too.
func TestFuzzSeedsDirect(t *testing.T) {
	for _, line := range [][]byte{
		[]byte(""), []byte("short"), []byte("00000000 {}"),
		bytes.TrimSuffix(validLine(t, 1), []byte("\n")),
	} {
		if _, err := decodeRecord(line); err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped error for %q: %v", line, err)
			}
		}
	}
}
