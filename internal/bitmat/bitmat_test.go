package bitmat

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTransposeInPlaceMatchesNaive32(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		src := make([]uint32, 32)
		for i := range src {
			src[i] = rng.Uint32()
		}
		want := make([]uint32, 32)
		TransposeNaive(want, src)
		got := append([]uint32(nil), src...)
		TransposeInPlace(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d word %d: got %#x want %#x", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTransposeInPlaceMatchesNaive64(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		src := make([]uint64, 64)
		for i := range src {
			src[i] = rng.Uint64()
		}
		want := make([]uint64, 64)
		TransposeNaive(want, src)
		got := append([]uint64(nil), src...)
		TransposeInPlace(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d word %d mismatch", trial, i)
			}
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		a := make([]uint32, 32)
		for i := range a {
			a[i] = rng.Uint32()
		}
		orig := append([]uint32(nil), a...)
		TransposeInPlace(a)
		TransposeInPlace(a)
		for i := range a {
			if a[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullPlanMatchesTransposeInPlace(t *testing.T) {
	plan := CachedPlan(32, 32, Full)
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		a := make([]uint32, 32)
		for i := range a {
			a[i] = rng.Uint32()
		}
		b := append([]uint32(nil), a...)
		TransposeInPlace(a)
		Apply(plan, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d word %d mismatch", trial, i)
			}
		}
	}
}

// TestLemma1 verifies the paper's Lemma 1: a 32×32 bit matrix is transposed
// by 80 swaps = 560 operations.
func TestLemma1(t *testing.T) {
	p := CachedPlan(32, 32, Full)
	c := p.Counts()
	if c.Swaps != 80 || c.Copies != 0 || c.CopyDowns != 0 {
		t.Errorf("full 32x32 plan = %+v, want 80 swaps only", c)
	}
	if got := c.BitOps(); got != 560 {
		t.Errorf("full 32x32 plan costs %d ops, want 560 (Lemma 1)", got)
	}
}

// TestTableICounts checks the planner against the rows of the paper's
// Table I that are stated unambiguously. Our backward-liveness planner
// matches the paper exactly at s = 2, 4, 8 and 32; the paper's hand-made
// schedules for the remaining widths exploit extra freedom (plane
// permutation), so there we only require the planner not to exceed the
// naive count; the achieved numbers are recorded in EXPERIMENTS.md.
func TestTableICounts(t *testing.T) {
	exact := map[int]int{
		32: 560,
		8:  180,
		4:  140,
		2:  127,
	}
	for s, want := range exact {
		p := CachedPlan(32, s, ValuesToPlanes)
		if got := p.Counts().BitOps(); got != want {
			t.Errorf("s=%d: planner costs %d ops, paper Table I says %d", s, got, want)
		}
	}
	paper := map[int]int{16: 272, 7: 177, 6: 168, 5: 164, 3: 131}
	for s, paperOps := range paper {
		p := CachedPlan(32, s, ValuesToPlanes)
		got := p.Counts().BitOps()
		if got > 560 {
			t.Errorf("s=%d: planner costs %d ops, exceeds full transpose", s, got)
		}
		t.Logf("s=%d: planner %d ops, paper %d ops", s, got, paperOps)
	}
}

// TestTableIStructure checks the swap/copy composition of the rows our
// planner reproduces exactly.
func TestTableIStructure(t *testing.T) {
	cases := []struct {
		s             int
		swaps, copies int
	}{
		{32, 80, 0},
		{8, 12, 24},
		{4, 4, 28},
		{2, 1, 30},
	}
	for _, tc := range cases {
		c := CachedPlan(32, tc.s, ValuesToPlanes).Counts()
		if c.Swaps != tc.swaps || c.Copies+c.CopyDowns != tc.copies {
			t.Errorf("s=%d: got %d swaps %d copies, want %d swaps %d copies",
				tc.s, c.Swaps, c.Copies+c.CopyDowns, tc.swaps, tc.copies)
		}
	}
}

func valuesToPlanesNaive32(vals []uint32, s int) []uint32 {
	planes := make([]uint32, s)
	for k, v := range vals {
		for h := 0; h < s; h++ {
			if v>>uint(h)&1 != 0 {
				planes[h] |= 1 << uint(k)
			}
		}
	}
	return planes
}

func TestValuesToPlanesAllS32(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for s := 1; s <= 32; s++ {
		for trial := 0; trial < 10; trial++ {
			vals := make([]uint32, 32)
			for i := range vals {
				vals[i] = rng.Uint32() & (uint32(1)<<uint(s) - 1)
				if s == 32 {
					vals[i] = rng.Uint32()
				}
			}
			want := valuesToPlanesNaive32(vals, s)
			a := append([]uint32(nil), vals...)
			ValuesToPlanesInPlace(a, s)
			for h := 0; h < s; h++ {
				if a[h] != want[h] {
					t.Fatalf("s=%d trial %d plane %d: got %#x want %#x", s, trial, h, a[h], want[h])
				}
			}
		}
	}
}

func TestValuesToPlanesAllS64(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for s := 1; s <= 64; s++ {
		vals := make([]uint64, 64)
		for i := range vals {
			if s == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (uint64(1)<<uint(s) - 1)
			}
		}
		a := append([]uint64(nil), vals...)
		ValuesToPlanesInPlace(a, s)
		for h := 0; h < s; h++ {
			var wantPlane uint64
			for k, v := range vals {
				if v>>uint(h)&1 != 0 {
					wantPlane |= 1 << uint(k)
				}
			}
			if a[h] != wantPlane {
				t.Fatalf("s=%d plane %d mismatch", s, h)
			}
		}
	}
}

func TestPlanesToValuesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, lanes := range []int{32, 64} {
		for s := 1; s <= lanes; s++ {
			if lanes == 64 && s > 1 && s < 64 && s%7 != 0 && s != 9 && s != 32 {
				continue // sample s for 64 lanes to keep the test quick
			}
			if lanes == 32 {
				vals := make([]uint32, 32)
				for i := range vals {
					vals[i] = rng.Uint32()
				}
				MaskValues(vals, s)
				a := append([]uint32(nil), vals...)
				ValuesToPlanesInPlace(a, s)
				for h := s; h < 32; h++ {
					a[h] = 0 // planes beyond s are zero by construction
				}
				PlanesToValuesInPlace(a, s)
				for k := range vals {
					if a[k] != vals[k] {
						t.Fatalf("lanes=32 s=%d lane %d: got %#x want %#x", s, k, a[k], vals[k])
					}
				}
			} else {
				vals := make([]uint64, 64)
				for i := range vals {
					vals[i] = rng.Uint64()
				}
				MaskValues(vals, s)
				a := append([]uint64(nil), vals...)
				ValuesToPlanesInPlace(a, s)
				for h := s; h < 64; h++ {
					a[h] = 0
				}
				PlanesToValuesInPlace(a, s)
				for k := range vals {
					if a[k] != vals[k] {
						t.Fatalf("lanes=64 s=%d lane %d mismatch", s, k)
					}
				}
			}
		}
	}
}

func TestNewPlanValidatesArgs(t *testing.T) {
	if _, err := NewPlan(16, 4, Full); err == nil {
		t.Error("NewPlan(16,...) should fail")
	}
	if _, err := NewPlan(32, 0, ValuesToPlanes); err == nil {
		t.Error("NewPlan(s=0) should fail")
	}
	if _, err := NewPlan(32, 33, ValuesToPlanes); err == nil {
		t.Error("NewPlan(s=33) should fail")
	}
}

func TestCachedPlanReturnsSameInstance(t *testing.T) {
	a := CachedPlan(32, 9, ValuesToPlanes)
	b := CachedPlan(32, 9, ValuesToPlanes)
	if a != b {
		t.Error("CachedPlan did not cache")
	}
	// Full ignores s.
	if CachedPlan(32, 5, Full) != CachedPlan(32, 31, Full) {
		t.Error("Full plans with different s should be identical")
	}
}

func TestMaskValues(t *testing.T) {
	a := []uint32{0xFFFFFFFF, 0x12345678}
	MaskValues(a, 9)
	if a[0] != 0x1FF || a[1] != 0x78 {
		t.Errorf("MaskValues wrong: %#x %#x", a[0], a[1])
	}
}

func TestTranspose8x8(t *testing.T) {
	var a [8]uint8
	rng := rand.New(rand.NewPCG(13, 14))
	for i := range a {
		a[i] = uint8(rng.Uint32())
	}
	orig := a
	stages := 0
	Transpose8x8(&a, func(stage int, _ [8]uint8) { stages++ })
	if stages != 3 {
		t.Errorf("expected 3 trace stages, got %d", stages)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			got := a[i] >> uint(j) & 1
			want := orig[j] >> uint(i) & 1
			if got != want {
				t.Fatalf("bit (%d,%d): got %d want %d", i, j, got, want)
			}
		}
	}
	// Involution.
	Transpose8x8(&a, nil)
	if a != orig {
		t.Error("Transpose8x8 twice is not identity")
	}
}

func TestPlanCostsAreMonotonicInS(t *testing.T) {
	// More value bits can never make the conversion cheaper.
	prev := 0
	for s := 1; s <= 32; s++ {
		ops := CachedPlan(32, s, ValuesToPlanes).Counts().BitOps()
		if ops < prev {
			t.Errorf("s=%d costs %d < s=%d costs %d", s, ops, s-1, prev)
		}
		prev = ops
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpSwap.String() != "swap" || OpCopy.String() != "copy" || OpCopyDown.String() != "copydown" {
		t.Error("OpKind strings wrong")
	}
	if OpSwap.Cost() != 7 || OpCopy.Cost() != 4 || OpCopyDown.Cost() != 4 {
		t.Error("OpKind costs wrong")
	}
	if Full.String() != "full" || ValuesToPlanes.String() != "values->planes" || PlanesToValues.String() != "planes->values" {
		t.Error("PlanKind strings wrong")
	}
}

func TestApplyPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply with wrong length did not panic")
		}
	}()
	Apply(CachedPlan(32, 32, Full), make([]uint32, 16))
}

func BenchmarkTransposeInPlace32(b *testing.B) {
	a := make([]uint32, 32)
	for i := range a {
		a[i] = uint32(i) * 0x9E3779B9
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransposeInPlace(a)
	}
}

func BenchmarkTransposeInPlace64(b *testing.B) {
	a := make([]uint64, 64)
	for i := range a {
		a[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransposeInPlace(a)
	}
}

func BenchmarkValuesToPlanesS2(b *testing.B) {
	a := make([]uint32, 32)
	for i := range a {
		a[i] = uint32(i) & 3
	}
	plan := CachedPlan(32, 2, ValuesToPlanes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Apply(plan, a)
	}
}

// TestTableICounts64 extends Table I's reasoning to 64-lane words: the full
// 64×64 transpose needs 6 stages × 32 swaps = 1344 operations, and the
// 2-bit specialisation degrades all but the final stage to copies.
func TestTableICounts64(t *testing.T) {
	full := CachedPlan(64, 64, Full).Counts()
	if full.Swaps != 192 || full.BitOps() != 1344 {
		t.Errorf("full 64x64: %+v (%d ops), want 192 swaps / 1344 ops", full, full.BitOps())
	}
	s2 := CachedPlan(64, 2, ValuesToPlanes).Counts()
	// Copies 32+16+8+4+2 = 62, one final swap: 62*4 + 7 = 255.
	if s2.Swaps != 1 || s2.Copies+s2.CopyDowns != 62 || s2.BitOps() != 255 {
		t.Errorf("64-lane s=2: %+v (%d ops), want 1 swap + 62 copies = 255", s2, s2.BitOps())
	}
}

// TestPlanWorksForEveryS64 exhaustively validates 64-lane plans.
func TestPlanWorksForEveryS64(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	for s := 1; s <= 64; s++ {
		vals := make([]uint64, 64)
		for i := range vals {
			vals[i] = rng.Uint64()
		}
		MaskValues(vals, s)
		a := append([]uint64(nil), vals...)
		ValuesToPlanesInPlace(a, s)
		for h := 0; h < s; h++ {
			var want uint64
			for k, v := range vals {
				if v>>uint(h)&1 != 0 {
					want |= 1 << uint(k)
				}
			}
			if a[h] != want {
				t.Fatalf("s=%d plane %d wrong", s, h)
			}
		}
	}
}

// TestCopyDownPrimitive exercises the reverse-direction copy on a plan that
// needs it (PlanesToValues produces them for small s).
func TestCopyDownPrimitive(t *testing.T) {
	sawCopyDown := false
	for s := 1; s <= 32; s++ {
		for _, op := range CachedPlan(32, s, PlanesToValues).Ops {
			if op.Kind == OpCopyDown {
				sawCopyDown = true
			}
		}
	}
	for s := 1; s <= 32 && !sawCopyDown; s++ {
		for _, op := range CachedPlan(32, s, ValuesToPlanes).Ops {
			if op.Kind == OpCopyDown {
				sawCopyDown = true
			}
		}
	}
	if !sawCopyDown {
		t.Skip("no plan currently emits copydown; primitive covered by Apply test below")
	}
}

// TestApplyCopyDownSemantics checks the OpCopyDown executor directly.
func TestApplyCopyDownSemantics(t *testing.T) {
	plan := &Plan{Lanes: 32, S: 32, Kind: Full, Ops: []Op{
		{Kind: OpCopyDown, A: 0, B: 1, Shift: 16, Mask: 0x0000FFFF},
	}}
	a := make([]uint32, 32)
	a[0], a[1] = 0xABCD1234, 0xFFFF0000
	want1 := uint32(0xFFFF0000&^0x0000FFFF) | (a[0]>>16)&0x0000FFFF
	orig0 := a[0]
	Apply(plan, a)
	if a[0] != orig0 {
		t.Error("copydown must not modify A")
	}
	if a[1] != want1 {
		t.Errorf("copydown B = %#x, want %#x", a[1], want1)
	}
}
