// Package bitmat implements bit-matrix transpose in the style of
// Hacker's Delight §7.3, as used by the paper's BPBC technique to convert
// between the ordinary "wordwise" data layout and the "bit-transpose" layout
// in which bit k of every word belongs to problem instance k.
//
// The package provides:
//
//   - a straightforward full w×w in-place transpose (TransposeInPlace),
//   - a planner that specialises the transpose for s-bit inputs, replacing
//     masked swaps (7 bitwise operations) with masked copies (4 operations)
//     and dropping operations whose effect is never observed — this
//     reproduces Table I of the paper,
//   - value↔plane conversion helpers used by the W2B / B2W pipeline stages.
//
// Terminology follows the paper: a "swap" exchanges a pair of half-blocks
// between two words; a "copy" moves one half-block without preserving the
// displaced data, legal whenever that data is dead.
package bitmat

import (
	"fmt"
	"sync"

	"repro/internal/word"
)

// OpKind identifies one of the three primitive block operations a plan may
// contain.
type OpKind uint8

const (
	// OpSwap exchanges the high half-block of word A with the low
	// half-block of word B (7 bitwise operations).
	OpSwap OpKind = iota
	// OpCopy writes B's low half-block into A's high half-block, keeping
	// A's low half-block; B is untouched (4 bitwise operations).
	OpCopy
	// OpCopyDown writes A's high half-block into B's low half-block,
	// keeping B's high half-block; A is untouched (4 bitwise operations).
	OpCopyDown
)

func (k OpKind) String() string {
	switch k {
	case OpSwap:
		return "swap"
	case OpCopy:
		return "copy"
	case OpCopyDown:
		return "copydown"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Cost returns the number of bitwise operations (shift/and/or/xor) the
// primitive performs, matching the accounting of the paper (§II).
func (k OpKind) Cost() int {
	if k == OpSwap {
		return 7
	}
	return 4
}

// Op is a single planned block operation. Mask is stored widened to uint64
// so one Plan serves both lane widths of its word size.
type Op struct {
	Kind  OpKind
	A, B  int // word indices; the op touches a[A] and a[B]
	Shift int // block distance d
	Mask  uint64
}

// PlanKind selects the data-layout conversion a plan performs.
type PlanKind uint8

const (
	// Full is the unrestricted w×w transpose: every input bit may be
	// non-zero and every output bit is required.
	Full PlanKind = iota
	// ValuesToPlanes ("W2B") transposes w words that each hold one s-bit
	// value in their low s bits into s bit-plane words (plane h in word h).
	// Input bits at positions >= s MUST be zero; see MaskValues.
	ValuesToPlanes
	// PlanesToValues ("B2W") transposes s bit-plane words (stored in words
	// 0..s-1, words s..w-1 zero) back into w words holding one s-bit value
	// each in their low s bits. Only the low s bits of each output word are
	// produced; callers needing clean words apply MaskValues afterwards.
	PlanesToValues
)

func (k PlanKind) String() string {
	switch k {
	case Full:
		return "full"
	case ValuesToPlanes:
		return "values->planes"
	case PlanesToValues:
		return "planes->values"
	}
	return fmt.Sprintf("PlanKind(%d)", uint8(k))
}

// Plan is a compiled sequence of block operations realising one transpose
// specialisation. Plans are immutable after construction and safe for
// concurrent use.
type Plan struct {
	Lanes int // word size w (32 or 64)
	S     int // value bit width (== Lanes for Full)
	Kind  PlanKind
	Ops   []Op
}

// Counts tallies the plan's operations by kind.
type Counts struct {
	Swaps, Copies, CopyDowns int
}

// BitOps returns the total number of bitwise operations, 7 per swap and
// 4 per copy/copydown — the metric of the paper's Table I and Lemma 1.
func (c Counts) BitOps() int {
	return 7*c.Swaps + 4*(c.Copies+c.CopyDowns)
}

// Counts returns the operation tally of the plan.
func (p *Plan) Counts() Counts {
	var c Counts
	for _, op := range p.Ops {
		switch op.Kind {
		case OpSwap:
			c.Swaps++
		case OpCopy:
			c.Copies++
		case OpCopyDown:
			c.CopyDowns++
		}
	}
	return c
}

// symbolic cell contents used during planning: -1 means known-zero, any other
// value identifies the original bit r*lanes+c it carries.
const symZero = int16(-1)

type symState []int16 // lanes*lanes cells, [i*lanes+p] = content of word i bit p

func (s symState) clone() symState {
	t := make(symState, len(s))
	copy(t, s)
	return t
}

// fullSchedule returns the standard Hacker's Delight schedule for a w×w
// transpose: for each block distance d = w/2 .. 1, a swap for every word pair
// (i, i+d) with i's d-bit clear, using the d-periodic half mask.
func fullSchedule(lanes int) []Op {
	var ops []Op
	for d := lanes / 2; d >= 1; d >>= 1 {
		var mask uint64
		if lanes == 64 {
			mask = uint64(word.HalfMask[uint64](d))
		} else {
			mask = uint64(word.HalfMask[uint32](d))
		}
		for i := 0; i < lanes; i++ {
			if i&d != 0 {
				continue
			}
			ops = append(ops, Op{Kind: OpSwap, A: i, B: i + d, Shift: d, Mask: mask})
		}
	}
	return ops
}

// maskBits iterates the set bit positions of mask up to lanes.
func maskBits(mask uint64, lanes int) []int {
	bits := make([]int, 0, lanes/2)
	for p := 0; p < lanes; p++ {
		if mask>>uint(p)&1 != 0 {
			bits = append(bits, p)
		}
	}
	return bits
}

// applySym applies op to a symbolic state in place, honouring the exact
// data-movement semantics of each primitive (copies duplicate, swaps
// exchange).
func applySym(st symState, op Op, lanes int) {
	for _, p := range maskBits(op.Mask, lanes) {
		hi := op.A*lanes + p + op.Shift
		lo := op.B*lanes + p
		switch op.Kind {
		case OpSwap:
			st[hi], st[lo] = st[lo], st[hi]
		case OpCopy:
			st[hi] = st[lo]
		case OpCopyDown:
			st[lo] = st[hi]
		}
	}
}

// initialState returns the symbolic contents of the input words for a plan
// kind, and needState returns the required final contents (entries of -2 mean
// "don't care").
const symAny = int16(-2)

func initialState(lanes, s int, kind PlanKind) symState {
	st := make(symState, lanes*lanes)
	for i := 0; i < lanes; i++ {
		for p := 0; p < lanes; p++ {
			live := false
			switch kind {
			case Full:
				live = true
			case ValuesToPlanes:
				live = p < s // each word holds an s-bit value in its low bits
			case PlanesToValues:
				live = i < s // planes occupy words 0..s-1, full width
			}
			if live {
				st[i*lanes+p] = int16(i*lanes + p)
			} else {
				st[i*lanes+p] = symZero
			}
		}
	}
	return st
}

func requiredState(lanes, s int, kind PlanKind) symState {
	req := make(symState, lanes*lanes)
	for i := 0; i < lanes; i++ {
		for p := 0; p < lanes; p++ {
			need := false
			switch kind {
			case Full:
				need = true
			case ValuesToPlanes:
				need = i < s // only plane words 0..s-1 are read afterwards
			case PlanesToValues:
				need = p < s // only the low s bits of each word are read
			}
			if !need {
				req[i*lanes+p] = symAny
				continue
			}
			// Transposed content: word i bit p must hold original word p
			// bit i. For pruned inputs the original may be known-zero.
			src := int16(p*lanes + i)
			switch kind {
			case ValuesToPlanes:
				if i >= s { // original bit position >= s was zero
					src = symZero
				}
			case PlanesToValues:
				if p >= s { // original word index >= s was zero
					src = symZero
				}
			}
			req[i*lanes+p] = src
		}
	}
	return req
}

// NewPlan compiles a transpose plan for the given lane count (32 or 64),
// value width s (1..lanes; forced to lanes for Full), and conversion kind.
// The planner starts from the standard full schedule and prunes it with a
// backward liveness pass: operations whose moved data is never observed are
// dropped, and operations needed in only one direction degrade from a
// 7-operation swap to a 4-operation copy. This reproduces the paper's
// Table I optimisation (e.g. 127 operations for s=2 on 32 lanes, 560 for the
// full 32×32 transpose of Lemma 1).
func NewPlan(lanes, s int, kind PlanKind) (*Plan, error) {
	if lanes != 32 && lanes != 64 {
		return nil, fmt.Errorf("bitmat: lanes must be 32 or 64, got %d", lanes)
	}
	if kind == Full {
		s = lanes
	}
	if s < 1 || s > lanes {
		return nil, fmt.Errorf("bitmat: s must be in [1,%d], got %d", lanes, s)
	}

	sched := fullSchedule(lanes)

	// Forward pass: record the symbolic state before every op.
	states := make([]symState, len(sched)+1)
	states[0] = initialState(lanes, s, kind)
	for t, op := range sched {
		next := states[t].clone()
		applySym(next, op, lanes)
		states[t+1] = next
	}

	// Backward liveness pass.
	need := make([]bool, lanes*lanes)
	req := requiredState(lanes, s, kind)
	for idx, r := range req {
		if r != symAny {
			need[idx] = true
		}
	}
	kinds := make([]int8, len(sched)) // -1 skip, else OpKind
	for t := len(sched) - 1; t >= 0; t-- {
		op := sched[t]
		st := states[t]
		bits := maskBits(op.Mask, lanes)
		needBA, needAB := false, false // B→A useful; A→B useful
		for _, p := range bits {
			hi := op.A*lanes + p + op.Shift
			lo := op.B*lanes + p
			if st[hi] == st[lo] {
				continue // movement would not change contents
			}
			if need[hi] {
				needBA = true
			}
			if need[lo] {
				needAB = true
			}
		}
		switch {
		case needBA && needAB:
			kinds[t] = int8(OpSwap)
			for _, p := range bits {
				hi := op.A*lanes + p + op.Shift
				lo := op.B*lanes + p
				need[hi], need[lo] = need[lo], need[hi]
			}
		case needBA:
			kinds[t] = int8(OpCopy)
			for _, p := range bits {
				hi := op.A*lanes + p + op.Shift
				lo := op.B*lanes + p
				need[lo] = need[lo] || need[hi]
				need[hi] = false
			}
		case needAB:
			kinds[t] = int8(OpCopyDown)
			for _, p := range bits {
				hi := op.A*lanes + p + op.Shift
				lo := op.B*lanes + p
				need[hi] = need[hi] || need[lo]
				need[lo] = false
			}
		default:
			kinds[t] = -1
		}
	}

	var ops []Op
	for t, op := range sched {
		if kinds[t] < 0 {
			continue
		}
		op.Kind = OpKind(kinds[t])
		ops = append(ops, op)
	}
	p := &Plan{Lanes: lanes, S: s, Kind: kind, Ops: ops}

	// Defensive verification: re-simulate the pruned plan with the exact
	// duplicate-leaving semantics of copy and confirm every required final
	// cell holds the required content.
	st := initialState(lanes, s, kind)
	for _, op := range p.Ops {
		applySym(st, op, lanes)
	}
	for idx, want := range req {
		if want == symAny {
			continue
		}
		if st[idx] != want {
			return nil, fmt.Errorf("bitmat: internal error: pruned plan invalid at word %d bit %d (lanes=%d s=%d kind=%v): got %d want %d",
				idx/lanes, idx%lanes, lanes, s, kind, st[idx], want)
		}
	}
	return p, nil
}

type planKey struct {
	lanes, s int
	kind     PlanKind
}

var (
	planMu    sync.Mutex
	planCache = map[planKey]*Plan{}
)

// CachedPlan returns a shared compiled plan, building it on first use.
// It panics on invalid parameters, which are programmer errors.
func CachedPlan(lanes, s int, kind PlanKind) *Plan {
	if kind == Full {
		s = lanes
	}
	key := planKey{lanes, s, kind}
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[key]; ok {
		return p
	}
	p, err := NewPlan(lanes, s, kind)
	if err != nil {
		panic(err)
	}
	planCache[key] = p
	return p
}
