package bitmat

import (
	"fmt"

	"repro/internal/word"
)

// Apply executes a compiled plan on a in place. len(a) must equal the plan's
// lane count, and the word type's width must match as well.
func Apply[W word.Word](p *Plan, a []W) {
	if len(a) != p.Lanes || word.Lanes[W]() != p.Lanes {
		panic(fmt.Sprintf("bitmat: Apply: plan is %d-lane, got %d words of %d lanes",
			p.Lanes, len(a), word.Lanes[W]()))
	}
	for _, op := range p.Ops {
		mask := W(op.Mask)
		k := uint(op.Shift)
		switch op.Kind {
		case OpSwap:
			c := ((a[op.A] >> k) ^ a[op.B]) & mask
			a[op.A] ^= c << k
			a[op.B] ^= c
		case OpCopy:
			a[op.A] = (a[op.A] & mask) | ((a[op.B] & mask) << k)
		case OpCopyDown:
			a[op.B] = (a[op.B] &^ mask) | ((a[op.A] >> k) & mask)
		}
	}
}

// TransposeInPlace performs the full w×w bit-matrix transpose of a, where
// w is the lane width of W and len(a) == w. After the call, bit j of a[i]
// holds what was bit i of a[j]. This is the unrolled masked-swap network of
// Hacker's Delight §7.3 (80 swaps / 560 bitwise operations for 32×32,
// Lemma 1 of the paper).
func TransposeInPlace[W word.Word](a []W) {
	lanes := word.Lanes[W]()
	if len(a) != lanes {
		panic(fmt.Sprintf("bitmat: TransposeInPlace: need %d words, got %d", lanes, len(a)))
	}
	for d := lanes / 2; d >= 1; d >>= 1 {
		mask := word.HalfMask[W](d)
		k := uint(d)
		for i := 0; i < lanes; i++ {
			if i&d != 0 {
				continue
			}
			c := ((a[i] >> k) ^ a[i+d]) & mask
			a[i] ^= c << k
			a[i+d] ^= c
		}
	}
}

// TransposeNaive is the reference bit-by-bit transpose used to validate the
// fast paths. dst and src must both have length w and must not alias.
func TransposeNaive[W word.Word](dst, src []W) {
	lanes := word.Lanes[W]()
	if len(dst) != lanes || len(src) != lanes {
		panic("bitmat: TransposeNaive: wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < lanes; i++ {
		for j := 0; j < lanes; j++ {
			if src[i]>>uint(j)&1 != 0 {
				dst[j] |= W(1) << uint(i)
			}
		}
	}
}

// ValuesToPlanesInPlace converts w words, each holding an s-bit value in its
// low s bits (higher bits MUST be zero — see MaskValues), into bit-plane
// form: afterwards a[h] (h < s) holds plane h, i.e. bit k of a[h] is bit h of
// the value that was in a[k]. Words a[s..] hold unspecified data.
func ValuesToPlanesInPlace[W word.Word](a []W, s int) {
	Apply(CachedPlan(word.Lanes[W](), s, ValuesToPlanes), a)
}

// PlanesToValuesInPlace is the inverse of ValuesToPlanesInPlace: a[0..s-1]
// hold bit planes (a[s..] must be zero); afterwards a[k] holds the s-bit
// value of lane k in its low s bits, with higher bits cleaned to zero.
func PlanesToValuesInPlace[W word.Word](a []W, s int) {
	Apply(CachedPlan(word.Lanes[W](), s, PlanesToValues), a)
	MaskValues(a, s)
}

// MaskValues clears every bit at position >= s in each word of a,
// establishing the precondition of ValuesToPlanesInPlace.
func MaskValues[W word.Word](a []W, s int) {
	m := word.LowMask[W](s)
	for i := range a {
		a[i] &= m
	}
}

// Transpose8x8 transposes an 8×8 bit matrix held in eight bytes, the small
// worked example of the paper's Figure 1. If trace is non-nil it is invoked
// with the matrix state after each of the three stages.
func Transpose8x8(a *[8]uint8, trace func(stage int, state [8]uint8)) {
	step := func(d int, mask uint8, stage int) {
		for i := 0; i < 8; i++ {
			if i&d != 0 {
				continue
			}
			c := ((a[i] >> uint(d)) ^ a[i+d]) & mask
			a[i] ^= c << uint(d)
			a[i+d] ^= c
		}
		if trace != nil {
			trace(stage, *a)
		}
	}
	step(4, 0x0F, 1)
	step(2, 0x33, 2)
	step(1, 0x55, 3)
}
