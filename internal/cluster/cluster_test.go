package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/dna"
	"repro/internal/swa"
)

// fakeLocal is a deterministic Local: scores with the exact CPU reference,
// records every call, and can be told to fail.
type fakeLocal struct {
	mu      sync.Mutex
	calls   int
	pairs   int
	warmed  int
	failErr error
	delay   time.Duration
}

func (f *fakeLocal) Align(ctx context.Context, pairs []dna.Pair) (*alignsvc.BatchResult, error) {
	f.mu.Lock()
	f.calls++
	f.pairs += len(pairs)
	err := f.failErr
	delay := f.delay
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err != nil {
		return nil, err
	}
	scores := make([]int, len(pairs))
	for i, p := range pairs {
		scores[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return &alignsvc.BatchResult{Scores: scores, Report: alignsvc.Report{Tier: alignsvc.TierCPU}}, nil
}

func (f *fakeLocal) WarmCache(pairs []dna.Pair, scores []int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.warmed += len(pairs)
	return len(pairs)
}

func (f *fakeLocal) stats() (calls, pairs, warmed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.pairs, f.warmed
}

func testPairs(t *testing.T, n int) []dna.Pair {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 0))
	return dna.RandomPairs(rng, n, 16, 64)
}

func wantScores(pairs []dna.Pair) []int {
	out := make([]int, len(pairs))
	for i, p := range pairs {
		out[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
	}
	return out
}

// peerServer is a minimal in-test peer speaking the /align, /readyz and
// /cluster/warm wire protocol.
type peerServer struct {
	t        *testing.T
	ts       *httptest.Server
	aligns   atomic.Int64
	warms    atomic.Int64
	warmed   atomic.Int64
	ready    atomic.Bool
	fail     atomic.Bool  // 500 every /align
	shed     atomic.Int32 // next N /align answers are 429
	shedWait string       // Retry-After value sent with 429s
	lastHops atomic.Value // string: last X-SWA-Forwarded seen
	sleep    time.Duration
}

func newPeerServer(t *testing.T) *peerServer {
	p := &peerServer{t: t}
	p.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/align", func(w http.ResponseWriter, r *http.Request) {
		p.aligns.Add(1)
		p.lastHops.Store(r.Header.Get(ForwardHeader))
		if p.sleep > 0 {
			time.Sleep(p.sleep)
		}
		if p.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if n := p.shed.Load(); n > 0 && p.shed.CompareAndSwap(n, n-1) {
			if p.shedWait != "" {
				w.Header().Set("Retry-After", p.shedWait)
			}
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		var req wireAlignReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		scores := make([]int, len(req.Pairs))
		for i, wp := range req.Pairs {
			x, _ := dna.Parse(wp.X)
			y, _ := dna.Parse(wp.Y)
			scores[i] = swa.Score(x, y, swa.PaperScoring)
		}
		resp := map[string]any{
			"scores": scores,
			"report": map[string]any{"cache_hits": len(scores)},
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !p.ready.Load() {
			http.Error(w, `{"ready":false}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"ready":true}`)
	})
	mux.HandleFunc("/cluster/warm", func(w http.ResponseWriter, r *http.Request) {
		p.warms.Add(1)
		var req WarmRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Pairs) != len(req.Scores) {
			http.Error(w, "mismatch", http.StatusBadRequest)
			return
		}
		p.warmed.Add(int64(len(req.Pairs)))
		fmt.Fprintf(w, `{"accepted":%d}`, len(req.Pairs))
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// --- ring ---

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"n1", "n2", "n3"}
	a := buildRing(members, 64)
	b := buildRing([]string{"n3", "n1", "n2"}, 64) // order-independent
	if !reflect.DeepEqual(a.hashes, b.hashes) || !reflect.DeepEqual(a.owners, b.owners) {
		t.Fatal("ring must be deterministic and member-order independent")
	}
	if got := a.members(); !reflect.DeepEqual(got, []string{"n1", "n2", "n3"}) {
		t.Fatalf("members: %v", got)
	}
	owned := map[string]int{}
	rng := rand.New(rand.NewPCG(7, 0))
	for i := 0; i < 5000; i++ {
		x, y := dna.RandSeq(rng, 8), dna.RandSeq(rng, 32)
		k := aligncache.KeyOf(x, y, swa.PaperScoring, 32)
		owner := a.owner(pointOf(k))
		if owner == "" {
			t.Fatal("ring returned no owner")
		}
		owned[owner]++
	}
	for _, m := range members {
		if owned[m] == 0 {
			t.Fatalf("member %s owns nothing: %v", m, owned)
		}
		// With 64 vnodes the split should be vaguely even; accept wide slack.
		if owned[m] < 500 {
			t.Fatalf("member %s owns only %d/5000 keys: %v", m, owned[m], owned)
		}
	}
}

func TestRingRehomesMinimally(t *testing.T) {
	full := buildRing([]string{"n1", "n2", "n3"}, 64)
	reduced := buildRing([]string{"n1", "n3"}, 64)
	rng := rand.New(rand.NewPCG(11, 0))
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		x, y := dna.RandSeq(rng, 8), dna.RandSeq(rng, 32)
		h := pointOf(aligncache.KeyOf(x, y, swa.PaperScoring, 32))
		before, after := full.owner(h), reduced.owner(h)
		if before == "n2" {
			continue // n2's arc must re-home somewhere, by definition
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed node stay put.
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving nodes moved (kept %d)", moved, kept)
	}
	if full.owner(pointOf(aligncache.Key{})) == "" {
		t.Fatal("zero key must have an owner")
	}
	var nilRing *ring
	if nilRing.owner(42) != "" || nilRing.members() != nil {
		t.Fatal("nil ring must own nothing")
	}
}

// --- parsing / construction ---

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("n2=http://h2:1234, n3=http://h3:1234/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{{ID: "n2", URL: "http://h2:1234"}, {ID: "n3", URL: "http://h3:1234"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v", got)
	}
	for _, bad := range []string{"n2", "=url", "n2=", "n2=u,n2=v"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) should fail", bad)
		}
	}
	if got, err := ParsePeers(""); err != nil || got != nil {
		t.Fatalf("empty peers: %v %v", got, err)
	}
}

func TestNewValidation(t *testing.T) {
	local := &fakeLocal{}
	if _, err := New(Config{Local: local}); err == nil {
		t.Fatal("missing NodeID should fail")
	}
	if _, err := New(Config{NodeID: "n1"}); err == nil {
		t.Fatal("missing Local should fail")
	}
	if _, err := New(Config{NodeID: "n1", Local: local, Peers: []Peer{{ID: "n1", URL: "http://x"}}}); err == nil {
		t.Fatal("self-referencing peer should fail")
	}
	if _, err := New(Config{NodeID: "n1", Local: local,
		Peers: []Peer{{ID: "n2", URL: "http://x"}, {ID: "n2", URL: "http://y"}}}); err == nil {
		t.Fatal("duplicate peer should fail")
	}
}

// --- single-node identity ---

func TestSingleNodeIdentity(t *testing.T) {
	local := &fakeLocal{}
	c := newTestCluster(t, Config{NodeID: "solo", Local: local,
		Scoring: swa.PaperScoring, Lanes: 32})
	pairs := testPairs(t, 32)
	res, err := c.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := local.Align(context.Background(), pairs)
	if !reflect.DeepEqual(res.Scores, direct.Scores) {
		t.Fatal("single-node cluster must be byte-identical to no cluster")
	}
	if res.Report.Tier != direct.Report.Tier {
		t.Fatalf("report tier differs: %v vs %v", res.Report.Tier, direct.Report.Tier)
	}
	st := c.Stats()
	if st.ForwardedPairs != 0 || st.FallbackPairs != 0 {
		t.Fatalf("single node must not forward: %+v", st)
	}
	if st.LocalPairs != int64(len(pairs)) {
		t.Fatalf("local pairs = %d, want %d", st.LocalPairs, len(pairs))
	}
}

// --- forwarding ---

func TestForwardAndMerge(t *testing.T) {
	peer := newPeerServer(t)
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:         []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval: time.Hour, // keep the prober quiet
	})
	pairs := testPairs(t, 64)
	res, err := c.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Scores, wantScores(pairs)) {
		t.Fatal("merged scores differ from the reference")
	}
	st := c.Stats()
	if st.ForwardedPairs == 0 {
		t.Fatal("a 2-node ring should forward some pairs")
	}
	if st.LocalPairs == 0 {
		t.Fatal("a 2-node ring should keep some pairs local")
	}
	if st.ForwardedPairs+st.LocalPairs != int64(len(pairs)) {
		t.Fatalf("forwarded %d + local %d != %d", st.ForwardedPairs, st.LocalPairs, len(pairs))
	}
	if st.PeerCacheHits == 0 {
		t.Fatal("peer-reported cache hits should be tallied")
	}
	if hops, _ := peer.lastHops.Load().(string); hops != "n1" {
		t.Fatalf("forward must carry one hop %q, got %q", "n1", hops)
	}
	// The forwarded pairs must NOT be recorded as our hotset (we don't own them).
	if got := c.hot.len(); int64(got) != st.LocalPairs {
		t.Fatalf("hotset has %d entries, want exactly the %d locally-owned", got, st.LocalPairs)
	}
}

func TestDeadPeerFallsBackToLocal(t *testing.T) {
	peer := newPeerServer(t)
	url := peer.ts.URL
	peer.ts.Close() // dead from the start
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:         []Peer{{ID: "n2", URL: url}},
		ProbeInterval: time.Hour,
		MaxRetries:    -1, // no retries: fail straight to local
		PeerTimeout:   200 * time.Millisecond,
	})
	pairs := testPairs(t, 48)
	res, err := c.Align(context.Background(), pairs)
	if err != nil {
		t.Fatalf("a dead peer must never fail the request: %v", err)
	}
	if !reflect.DeepEqual(res.Scores, wantScores(pairs)) {
		t.Fatal("fallback scores differ from the reference")
	}
	st := c.Stats()
	if st.FallbackPairs == 0 {
		t.Fatal("expected local fallbacks for the dead peer's pairs")
	}
	if st.ForwardedPairs != 0 {
		t.Fatal("nothing should have been served by the dead peer")
	}
}

func TestBreakerShortCircuitsDeadPeer(t *testing.T) {
	peer := newPeerServer(t)
	url := peer.ts.URL
	peer.ts.Close()
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:           []Peer{{ID: "n2", URL: url}},
		ProbeInterval:   time.Hour,
		MaxRetries:      -1,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
		PeerTimeout:     200 * time.Millisecond,
	})
	pairs := testPairs(t, 8)
	for i := 0; i < 6; i++ {
		if _, err := c.Align(context.Background(), pairs); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ShortCircuits == 0 {
		t.Fatalf("breaker never short-circuited: %+v", st)
	}
	if len(st.Peers) != 1 || st.Peers[0].Breaker != BreakerOpen {
		t.Fatalf("peer breaker should be open: %+v", st.Peers)
	}
}

func TestRetryAfterHonoredOn429(t *testing.T) {
	peer := newPeerServer(t)
	peer.shedWait = "1"
	peer.shed.Store(1) // first /align sheds, second succeeds
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:         []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval: time.Hour,
		PeerTimeout:   5 * time.Second,
	})
	// Find pairs owned by the peer so a forward definitely happens.
	pairs := ownedBy(t, c, "n2", 4)
	begin := time.Now()
	res, err := c.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Scores, wantScores(pairs)) {
		t.Fatal("scores differ")
	}
	st := c.Stats()
	if st.Retry429Waits == 0 {
		t.Fatal("the 429 wait was not recorded")
	}
	if waited := time.Since(begin); waited < 900*time.Millisecond {
		t.Fatalf("Retry-After: 1 was not honoured (returned after %v)", waited)
	}
	if st.ForwardedPairs != int64(len(pairs)) {
		t.Fatalf("the retried forward should have succeeded: %+v", st)
	}
	// A shedding peer is healthy: 429 must not advance the health machine.
	if st.Peers[0].State != Healthy {
		t.Fatalf("429 marked the peer %v", st.Peers[0].State)
	}
	if st.Peers[0].Breaker != BreakerClosed {
		t.Fatalf("429 moved the breaker to %v", st.Peers[0].Breaker)
	}
}

// ownedBy generates pairs the given node owns under c's current ring.
func ownedBy(t *testing.T, c *Cluster, owner string, n int) []dna.Pair {
	t.Helper()
	rng := rand.New(rand.NewPCG(99, 0))
	r := c.currentRing()
	var out []dna.Pair
	for tries := 0; len(out) < n && tries < 100000; tries++ {
		p := dna.Pair{X: dna.RandSeq(rng, 16), Y: dna.RandSeq(rng, 64)}
		k := aligncache.KeyOf(p.X, p.Y, c.cfg.Scoring, c.cfg.Lanes)
		if r.owner(pointOf(k)) == owner {
			out = append(out, p)
		}
	}
	if len(out) < n {
		t.Fatalf("could not generate %d pairs owned by %s", n, owner)
	}
	return out
}

func TestOwnerNeverForwardsToItself(t *testing.T) {
	peer := newPeerServer(t)
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:         []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval: time.Hour,
	})
	pairs := ownedBy(t, c, "n1", 16)
	if _, err := c.Align(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	if got := peer.aligns.Load(); got != 0 {
		t.Fatalf("self-owned pairs hit the peer %d time(s)", got)
	}
	st := c.Stats()
	if st.LocalPairs != int64(len(pairs)) || st.ForwardedPairs != 0 {
		t.Fatalf("self-owned batch must be fully local: %+v", st)
	}
}

// --- health machine / re-homing ---

func TestQuarantineAndReadmission(t *testing.T) {
	peer := newPeerServer(t)
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:           []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval:   50 * time.Millisecond,
		QuarantineAfter: 2,
		PeerTimeout:     time.Second,
	})
	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Stats().Peers[0].State == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("peer never became %v (now %v)", want, c.Stats().Peers[0].State)
	}

	waitState(Healthy)
	membersBefore := len(c.Stats().RingMembers)
	if membersBefore != 2 {
		t.Fatalf("ring should have 2 members, has %d", membersBefore)
	}

	peer.ready.Store(false) // the peer "dies" (readyz 503)
	waitState(Quarantined)
	st := c.Stats()
	if len(st.RingMembers) != 1 || st.RingMembers[0] != "n1" {
		t.Fatalf("quarantined peer still in ring: %v", st.RingMembers)
	}
	if st.Peers[0].Quarantines == 0 {
		t.Fatal("quarantine not counted")
	}
	rehomesAfterDeath := st.Rehomes

	// All pairs — including n2's arc — now run locally without forwards.
	pairs := testPairs(t, 32)
	res, err := c.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Scores, wantScores(pairs)) {
		t.Fatal("scores wrong while peer dead")
	}

	peer.ready.Store(true) // the peer comes back
	waitState(Healthy)
	st = c.Stats()
	if len(st.RingMembers) != 2 {
		t.Fatalf("readmitted peer missing from ring: %v", st.RingMembers)
	}
	if st.Peers[0].Readmissions == 0 {
		t.Fatal("readmission not counted")
	}
	if st.Rehomes <= rehomesAfterDeath {
		t.Fatal("readmission must re-home keys back")
	}
}

// --- hedging ---

func TestHedgeLocalWinsAgainstSlowPeer(t *testing.T) {
	peer := newPeerServer(t)
	peer.sleep = 2 * time.Second // peer is alive but glacial
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:         []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval: time.Hour,
		HedgeAfter:    30 * time.Millisecond,
		PeerTimeout:   10 * time.Second,
	})
	pairs := ownedBy(t, c, "n2", 8)
	begin := time.Now()
	res, err := c.Align(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the slow forward (took %v)", elapsed)
	}
	if !reflect.DeepEqual(res.Scores, wantScores(pairs)) {
		t.Fatal("hedged scores differ")
	}
	st := c.Stats()
	if st.Hedges == 0 || st.HedgeLocalWins == 0 {
		t.Fatalf("hedge not recorded: %+v", st)
	}
}

// --- drain handoff ---

func TestDrainHandsHotKeysToNewOwners(t *testing.T) {
	peer := newPeerServer(t)
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:         []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval: time.Hour,
		WarmBatch:     8,
	})
	// Serve a batch so the locally-owned pairs populate the hotset.
	pairs := testPairs(t, 64)
	if _, err := c.Align(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	hot := c.hot.len()
	if hot == 0 {
		t.Fatal("no hot entries to hand off")
	}

	c.BeginDrain(context.Background())
	if !c.Draining() {
		t.Fatal("not draining after BeginDrain")
	}
	st := c.Stats()
	if st.HandoffEntries != int64(hot) {
		t.Fatalf("handed off %d of %d hot entries", st.HandoffEntries, hot)
	}
	if got := peer.warmed.Load(); got != int64(hot) {
		t.Fatalf("peer accepted %d of %d entries", got, hot)
	}
	if peer.warms.Load() < int64(hot/8) {
		t.Fatalf("handoff should chunk by WarmBatch: %d POSTs for %d entries", peer.warms.Load(), hot)
	}
	// The self-less ring: everything now routes to n2 or runs locally as
	// fallback; our own ID is gone.
	for _, m := range st.RingMembers {
		if m == "n1" {
			t.Fatal("draining node still in its own ring")
		}
	}
	// Second BeginDrain is a no-op.
	c.BeginDrain(context.Background())
	if got := c.Stats().HandoffEntries; got != st.HandoffEntries {
		t.Fatal("double drain handed off twice")
	}
}

// --- hotset ---

func TestHotsetBoundsAndEvicts(t *testing.T) {
	h := newHotset(4)
	mk := func(i int) (aligncache.Key, dna.Pair) {
		p := dna.Pair{X: dna.MustParse("ACGT"), Y: dna.MustParse("ACGTACGT")}
		var k aligncache.Key
		k[0] = byte(i)
		return k, p
	}
	for i := 0; i < 10; i++ {
		k, p := mk(i)
		h.add(k, p, i)
	}
	if h.len() != 4 {
		t.Fatalf("hotset grew to %d, cap 4", h.len())
	}
	// Re-adding an existing key updates, not duplicates.
	k, p := mk(9)
	h.add(k, p, 99)
	if h.len() != 4 {
		t.Fatalf("duplicate add changed size to %d", h.len())
	}
	found := false
	for _, e := range h.snapshot() {
		if e.key == k && e.score == 99 {
			found = true
		}
	}
	if !found {
		t.Fatal("update lost")
	}
}

// --- concurrency smoke (for -race) ---

func TestConcurrentAlignWithChurn(t *testing.T) {
	peer := newPeerServer(t)
	local := &fakeLocal{}
	c := newTestCluster(t, Config{
		NodeID: "n1", Local: local, Scoring: swa.PaperScoring, Lanes: 32,
		Peers:           []Peer{{ID: "n2", URL: peer.ts.URL}},
		ProbeInterval:   20 * time.Millisecond,
		QuarantineAfter: 2,
		PeerTimeout:     500 * time.Millisecond,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // membership churn: peer flaps
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
				peer.ready.Store(!peer.ready.Load())
				peer.fail.Store(!peer.fail.Load())
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0))
			for i := 0; i < 20; i++ {
				pairs := dna.RandomPairs(rng, 8, 8, 32)
				res, err := c.Align(context.Background(), pairs)
				if err != nil {
					t.Errorf("align: %v", err)
					return
				}
				if !reflect.DeepEqual(res.Scores, wantScores(pairs)) {
					t.Error("wrong scores under churn")
					return
				}
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	_ = c.Stats() // must not race with anything above
}
