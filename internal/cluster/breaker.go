package cluster

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is one of the three classic circuit-breaker states, applied
// here per peer: a peer whose forwards keep failing is short-circuited so a
// dead node costs at most one timeout per cooldown, not one per request.
type BreakerState int

const (
	// BreakerClosed forwards normally; consecutive transport failures are
	// counted and trip the breaker open at the configured threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits the peer: Align falls straight back to
	// local execution without paying a connect/timeout, until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe forward try the peer; success
	// closes the breaker, failure re-opens it for another cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalText renders the state name, so peer snapshots JSON-encode readably.
func (s BreakerState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a breaker state name.
func (s *BreakerState) UnmarshalText(b []byte) error {
	for _, st := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		if st.String() == string(b) {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown breaker state %q", b)
}

// breaker is one peer's circuit breaker. Mirrors the alignsvc tier breaker:
// closed→open on a failure streak, open→half-open after the cooldown with a
// single probe slot, half-open→closed on probe success. A 429 from a peer is
// deliberately NOT reported here — an alive-but-shedding peer is healthy.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	trips, shortCircuits int64
}

func newPeerBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow decides whether a forward to the peer may be attempted now. probe is
// true when the caller holds the single half-open probe slot; it must report
// the outcome via success/fail (or release on a context error).
func (b *breaker) allow() (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			b.shortCircuits++
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	case BreakerHalfOpen:
		if b.probing {
			b.shortCircuits++
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// success records a completed forward, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// fail records a transport failure, advancing toward (or re-entering) open.
func (b *breaker) fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.probing = false
		b.trips++
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.trips++
		}
	}
}

// release frees a half-open probe slot after a context cancellation, where
// the peer's health is unknown and the outcome must not move the breaker.
func (b *breaker) release(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// snapshot returns the current state and counters for Stats.
func (b *breaker) snapshot() (state BreakerState, trips, shortCircuits int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.shortCircuits
}
