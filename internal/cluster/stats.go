package cluster

// Stats is the cluster snapshot published through the server's /statsz.
// Counters are monotonic since process start; the ring fields describe the
// current membership view.
type Stats struct {
	NodeID      string   `json:"node_id"`
	Draining    bool     `json:"draining"`
	RingMembers []string `json:"ring_members"`
	RingVersion int64    `json:"ring_version"`
	Rehomes     int64    `json:"rehomes"` // membership changes that moved key arcs

	Batches        int64 `json:"batches"`         // batches routed through the cluster
	LocalPairs     int64 `json:"local_pairs"`     // pairs served because we own them
	ForwardedPairs int64 `json:"forwarded_pairs"` // pairs answered by a peer
	FallbackPairs  int64 `json:"fallback_pairs"`  // peer-owned pairs served locally after a failed forward
	ShortCircuits  int64 `json:"short_circuits"`  // forwards skipped by an open breaker
	Hedges         int64 `json:"hedges"`          // local races started against slow forwards
	HedgeLocalWins int64 `json:"hedge_local_wins"`
	Retry429Waits  int64 `json:"retry_after_waits"` // Retry-After waits honoured on peer 429s
	PeerCacheHits  int64 `json:"peer_cache_hits"`   // cache hits peers reported for our forwards

	ForwardedServed int64 `json:"forwarded_served"` // forwarded requests we served for peers
	LoopRejects     int64 `json:"loop_rejects"`     // forwards rejected by the hop guard

	HotSetEntries  int64 `json:"hotset_entries"`  // entries staged for a drain handoff
	HandoffEntries int64 `json:"handoff_entries"` // entries pushed to new owners at drain
	HandoffPeers   int64 `json:"handoff_peers"`   // peers that received a handoff
	WarmAccepted   int64 `json:"warm_accepted"`   // handoff entries accepted from draining peers

	Peers []PeerSnapshot `json:"peers"`
}

// PeerSnapshot is the exported view of one peer's health and counters.
type PeerSnapshot struct {
	ID             string       `json:"id"`
	URL            string       `json:"url"`
	State          State        `json:"state"`
	ConsecFailures int          `json:"consec_failures"`
	Quarantines    int64        `json:"quarantines"`
	Readmissions   int64        `json:"readmissions"`
	Forwards       int64        `json:"forwards"`
	ForwardErrors  int64        `json:"forward_errors"`
	PeerCacheHits  int64        `json:"peer_cache_hits"`
	Breaker        BreakerState `json:"breaker"`
	BreakerTrips   int64        `json:"breaker_trips"`
	LastError      string       `json:"last_error,omitempty"`
}

// Stats snapshots the cluster. The membership fields are taken under the
// membership lock, so ring members and peer states are mutually consistent.
// Nil-safe: a nil cluster returns a zero Stats.
func (c *Cluster) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		NodeID:          c.self,
		Draining:        c.draining.Load(),
		Batches:         c.batches.Load(),
		LocalPairs:      c.localPairs.Load(),
		ForwardedPairs:  c.forwardedPairs.Load(),
		FallbackPairs:   c.fallbackPairs.Load(),
		ShortCircuits:   c.shortCircuits.Load(),
		Hedges:          c.hedges.Load(),
		HedgeLocalWins:  c.hedgeLocalWins.Load(),
		Retry429Waits:   c.retry429Waits.Load(),
		ForwardedServed: c.forwardedServed.Load(),
		LoopRejects:     c.loopRejects.Load(),
		HotSetEntries:   int64(c.hot.len()),
		HandoffEntries:  c.handoffEntries.Load(),
		HandoffPeers:    c.handoffPeers.Load(),
		WarmAccepted:    c.warmAccepted.Load(),
	}
	c.mu.Lock()
	st.RingMembers = append([]string(nil), c.currentRing().members()...)
	st.RingVersion = c.ringVersion
	st.Rehomes = c.rehomes
	for _, p := range c.order {
		brState, trips, _ := p.br.snapshot()
		snap := PeerSnapshot{
			ID:             p.id,
			URL:            p.url,
			State:          p.state,
			ConsecFailures: p.consec,
			Quarantines:    p.quarantines,
			Readmissions:   p.readmissions,
			Forwards:       p.forwards.Load(),
			ForwardErrors:  p.forwardErrs.Load(),
			PeerCacheHits:  p.peerCacheHits.Load(),
			Breaker:        brState,
			BreakerTrips:   trips,
			LastError:      p.lastErr,
		}
		st.PeerCacheHits += snap.PeerCacheHits
		st.Peers = append(st.Peers, snap)
	}
	c.mu.Unlock()
	return st
}
