package cluster

// This file is the routing half of the cluster layer: a consistent-hash
// ring mapping aligncache content addresses onto node IDs. Each member
// contributes Replicas virtual points (SHA-256 of "id#vnode", first eight
// bytes), so membership changes move only ~1/N of the key space — the
// property that makes peer caches worth forwarding to: when a node dies,
// only its arc re-homes; when it is readmitted, the same arc re-homes back,
// landing on whatever its cache still holds.
//
// The ring itself is immutable once built; the Cluster swaps a new ring on
// every membership change and readers work on the snapshot they grabbed, so
// routing never blocks on the health machinery.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/aligncache"
)

// ring is one immutable consistent-hash table: virtual points sorted by
// hash, each owned by a member node ID.
type ring struct {
	hashes []uint64
	owners []string // owners[i] owns arc ending at hashes[i]
	nodes  []string // distinct members, sorted (for stats)
}

// buildRing constructs the ring over the given members with the given
// virtual-point count per member. An empty member list yields a nil ring;
// callers treat a nil ring as "route everything locally".
func buildRing(members []string, replicas int) *ring {
	if len(members) == 0 {
		return nil
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{
		hashes: make([]uint64, 0, len(members)*replicas),
		owners: make([]string, 0, len(members)*replicas),
		nodes:  append([]string(nil), members...),
	}
	sort.Strings(r.nodes)
	type pt struct {
		h    uint64
		node string
	}
	pts := make([]pt, 0, len(members)*replicas)
	for _, m := range r.nodes {
		for v := 0; v < replicas; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", m, v)))
			pts = append(pts, pt{binary.BigEndian.Uint64(sum[:8]), m})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node // deterministic on (astronomically unlikely) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.node)
	}
	return r
}

// pointOf projects a content address onto the ring's hash space. The key is
// already a uniform SHA-256, so its first eight bytes are the point.
func pointOf(k aligncache.Key) uint64 {
	return binary.BigEndian.Uint64(k[:8])
}

// owner returns the member owning the given point: the first virtual point
// clockwise (≥ h), wrapping at the top. A nil ring owns nothing and returns
// "", which callers treat as local.
func (r *ring) owner(h uint64) string {
	if r == nil || len(r.hashes) == 0 {
		return ""
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// members returns the distinct member IDs, sorted.
func (r *ring) members() []string {
	if r == nil {
		return nil
	}
	return r.nodes
}
