// Package cluster is the coordinator-free peer layer that lets N swaserver
// processes serve as one logical alignment service.
//
// Membership is static (a -peers list); everything dynamic is inferred, no
// coordinator. A consistent-hash ring over the aligncache content address
// routes every pair to its owner node, so repeated screening workloads hit
// the owner's score cache no matter which node the client happened to ask.
// Batches with mixed ownership are split per owner and merged, mirroring the
// cached/uncached split inside alignsvc.
//
// Forwarding is strictly best-effort: every node can serve every request
// locally, so a peer failure is a performance event, never a correctness
// event. The forward path carries per-peer circuit breakers, deadline
// propagation, Retry-After-honouring 429 handling (an alive-but-shedding
// peer is not a failing peer), bounded retry with jitter, and an optional
// hedge that races local execution against a slow forward. Every failure
// mode degrades to local execution.
//
// Peer health is probed (healthy → suspect → quarantined → probing, the
// fleet scheduler's machine shape) and feeds ring membership: keys re-home
// when a node dies and re-home back when it is readmitted. A draining node
// removes itself from its own ring and hands the hot part of its key space
// to the new owners (POST /cluster/warm), so a rolling restart does not
// cold-start the cache.
//
// Forwarded requests carry the X-SWA-Forwarded header and are always served
// locally by the receiver — one hop, never chains — so a stale ring cannot
// create forwarding loops.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/swa"
)

// ForwardHeader marks a request as already forwarded once by a peer. The
// receiving server must serve it locally and never re-forward; a request
// whose chain is longer than one hop (or names the receiver itself) is
// rejected with a typed error, so a stale ring cannot loop.
const ForwardHeader = "X-SWA-Forwarded"

const (
	defaultReplicas     = 64
	defaultPeerTimeout  = 5 * time.Second
	defaultMaxRetries   = 1
	defaultRetryBackoff = 25 * time.Millisecond
	defaultSuspect      = 1
	defaultQuarantine   = 3
	defaultProbeEvery   = time.Second
	defaultBrFailures   = 5
	defaultBrCooldown   = 500 * time.Millisecond
	defaultHotSet       = 4096
	defaultWarmBatch    = 256

	// maxPeerRespBytes bounds how much of a peer response we will buffer;
	// a misbehaving peer must not be able to balloon our memory.
	maxPeerRespBytes = 16 << 20
)

// Peer names one static cluster member: a stable node ID and its base URL.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag format "id1=http://h1:p1,id2=http://h2:p2".
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return peers, nil
}

// Local is the node-local execution engine a Cluster routes around —
// *alignsvc.Service satisfies it. Align must be safe for concurrent use.
type Local interface {
	Align(ctx context.Context, pairs []dna.Pair) (*alignsvc.BatchResult, error)
	WarmCache(pairs []dna.Pair, scores []int) int
}

// Config configures a Cluster. NodeID, Local and (for multi-node operation)
// Peers are required; everything else defaults sensibly.
type Config struct {
	// NodeID is this node's stable identity in the ring. It must differ
	// from every peer's ID.
	NodeID string
	// Peers are the other static members. The ring is built over
	// NodeID + the IDs of peers currently considered live.
	Peers []Peer
	// Local executes batches on this node and accepts warm handoffs.
	Local Local
	// Scoring and Lanes must match the local service's, so the routing key
	// equals the aligncache key and forwards land on warm caches.
	Scoring swa.Scoring
	Lanes   int

	// Replicas is the number of virtual ring points per member (default 64).
	Replicas int
	// PeerTimeout bounds one forward attempt (default 5s).
	PeerTimeout time.Duration
	// HedgeAfter, when >0, starts local execution if a forward has not
	// answered within this duration; the first success wins.
	HedgeAfter time.Duration
	// MaxRetries is how many times one forward is re-attempted after the
	// first failure (default 1). Every exhaustion falls back to local.
	MaxRetries int
	// RetryBackoff is the base backoff between forward retries, jittered
	// up to 2x (default 25ms). Also the fallback wait for a 429 whose
	// Retry-After is absent.
	RetryBackoff time.Duration

	// SuspectAfter / QuarantineAfter are the consecutive-failure thresholds
	// of the health machine (defaults 1 and 3).
	SuspectAfter    int
	QuarantineAfter int
	// ProbeInterval is how long a quarantined peer waits before a readmission
	// probe, and the cadence of background health probes (default 1s).
	ProbeInterval time.Duration

	// BreakerFailures / BreakerCooldown configure the per-peer circuit
	// breaker (defaults 5 and 500ms).
	BreakerFailures int
	BreakerCooldown time.Duration

	// HotSetSize bounds the recently-served key set kept for drain handoff
	// (default 4096 entries).
	HotSetSize int
	// WarmBatch bounds how many entries one /cluster/warm POST carries
	// (default 256).
	WarmBatch int

	// Metrics, when set, receives the cluster_* counters and gauges.
	Metrics *obs.Registry
	// Client is the HTTP client used for forwards and probes (a seam for
	// tests; defaults to a dedicated client with sane pooling).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = defaultPeerTimeout
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = defaultMaxRetries
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = defaultSuspect
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = defaultQuarantine
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = defaultProbeEvery
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = defaultBrFailures
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = defaultBrCooldown
	}
	if c.HotSetSize <= 0 {
		c.HotSetSize = defaultHotSet
	}
	if c.WarmBatch <= 0 {
		c.WarmBatch = defaultWarmBatch
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	return c
}

// State is one peer's health state, the fleet scheduler's machine shape
// applied to remote nodes.
type State int

const (
	// Healthy peers are ring members and receive forwards.
	Healthy State = iota
	// Suspect peers are still ring members but one failure streak away
	// from quarantine.
	Suspect
	// Quarantined peers are out of the ring — their keys have re-homed —
	// until the probe cooldown elapses.
	Quarantined
	// Probing peers are being health-checked for readmission; still out of
	// the ring until the probe succeeds.
	Probing
)

var stateNames = [...]string{"healthy", "suspect", "quarantined", "probing"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalText renders the state name, so snapshots JSON-encode readably.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name.
func (s *State) UnmarshalText(b []byte) error {
	for i, n := range stateNames {
		if n == string(b) {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown state %q", b)
}

// peer is one remote member plus everything we know about it.
type peer struct {
	id, url string
	br      *breaker

	// health fields are guarded by the Cluster's mu (membership changes
	// must atomically rebuild the ring).
	state         State
	consec        int
	lastErr       string
	quarantinedAt time.Time
	lastProbe     time.Time
	quarantines   int64
	readmissions  int64

	forwards      atomic.Int64 // forward calls answered by this peer
	forwardErrs   atomic.Int64 // forward calls that failed (transport/HTTP)
	peerCacheHits atomic.Int64 // cache hits reported in peer responses

	mState *obs.Gauge
	mQuar  *obs.Counter
	mRead  *obs.Counter
	mFwd   *obs.Counter
	mFErr  *obs.Counter
}

// Cluster routes batches across the peer set. It is safe for concurrent use.
// A nil *Cluster is inert: the server treats it as "no cluster".
type Cluster struct {
	cfg  Config
	self string

	mu          sync.Mutex // peers' health + ring rebuilds
	peers       map[string]*peer
	order       []*peer // deterministic iteration for stats
	ring        atomic.Pointer[ring]
	ringVersion int64
	rehomes     int64

	draining atomic.Bool
	closed   chan struct{}
	wg       sync.WaitGroup

	hot *hotset

	batches         atomic.Int64
	localPairs      atomic.Int64
	forwardedPairs  atomic.Int64
	fallbackPairs   atomic.Int64
	shortCircuits   atomic.Int64
	hedges          atomic.Int64
	hedgeLocalWins  atomic.Int64
	retry429Waits   atomic.Int64
	forwardedServed atomic.Int64
	loopRejects     atomic.Int64
	handoffEntries  atomic.Int64
	handoffPeers    atomic.Int64
	warmAccepted    atomic.Int64

	mRing     *obs.Gauge
	mRingVer  *obs.Gauge
	mRehomes  *obs.Counter
	mFallback *obs.Counter
	mShortC   *obs.Counter
	mHedges   *obs.Counter
	mPeerHits *obs.Counter
	mServed   *obs.Counter
	mLoops    *obs.Counter
	mHandoff  *obs.Counter
	mWarm     *obs.Counter
}

// New builds a Cluster and starts its health prober. Close stops it.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeID == "" {
		return nil, errors.New("cluster: NodeID is required")
	}
	if cfg.Local == nil {
		return nil, errors.New("cluster: Local is required")
	}
	c := &Cluster{
		cfg:    cfg,
		self:   cfg.NodeID,
		peers:  make(map[string]*peer, len(cfg.Peers)),
		closed: make(chan struct{}),
		hot:    newHotset(cfg.HotSetSize),
	}
	for _, p := range cfg.Peers {
		if p.ID == cfg.NodeID {
			return nil, fmt.Errorf("cluster: peer id %q equals our own NodeID", p.ID)
		}
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs both id and url, got %+v", p)
		}
		if _, dup := c.peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		pr := &peer{id: p.ID, url: p.URL, br: newPeerBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)}
		c.peers[p.ID] = pr
		c.order = append(c.order, pr)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i].id < c.order[j].id })
	c.initMetrics()
	c.mu.Lock()
	c.rebuildRingLocked()
	c.mu.Unlock()
	if len(c.peers) > 0 {
		c.wg.Add(1)
		go c.prober()
	}
	return c, nil
}

func (c *Cluster) initMetrics() {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	m.Help("cluster_ring_members", "Nodes currently in the consistent-hash ring (including self unless draining).")
	m.Help("cluster_ring_version", "Monotonic ring rebuild counter; each bump re-homes some key arcs.")
	m.Help("cluster_rehomes_total", "Ring rebuilds caused by membership changes (quarantine, readmission, drain).")
	m.Help("cluster_peer_state", "Peer health state (0 healthy, 1 suspect, 2 quarantined, 3 probing).")
	m.Help("cluster_fallbacks_total", "Owner groups served locally after a failed forward.")
	m.Help("cluster_short_circuits_total", "Forwards skipped by an open peer breaker.")
	m.Help("cluster_hedges_total", "Local executions raced against a slow forward.")
	m.Help("cluster_peer_cache_hits_total", "Cache hits reported by peers for forwarded pairs.")
	m.Help("cluster_forwarded_served_total", "Forwarded requests this node served for a peer.")
	m.Help("cluster_loop_rejects_total", "Forwarded requests rejected by the hop guard.")
	m.Help("cluster_handoff_entries_total", "Hot cache entries pushed to new owners during drain.")
	m.Help("cluster_warm_accepted_total", "Warm handoff entries accepted from draining peers.")
	c.mRing = m.Gauge("cluster_ring_members")
	c.mRingVer = m.Gauge("cluster_ring_version")
	c.mRehomes = m.Counter("cluster_rehomes_total")
	c.mFallback = m.Counter("cluster_fallbacks_total")
	c.mShortC = m.Counter("cluster_short_circuits_total")
	c.mHedges = m.Counter("cluster_hedges_total")
	c.mPeerHits = m.Counter("cluster_peer_cache_hits_total")
	c.mServed = m.Counter("cluster_forwarded_served_total")
	c.mLoops = m.Counter("cluster_loop_rejects_total")
	c.mHandoff = m.Counter("cluster_handoff_entries_total")
	c.mWarm = m.Counter("cluster_warm_accepted_total")
	for _, p := range c.order {
		p.mState = m.Gauge(obs.L("cluster_peer_state", "peer", p.id))
		p.mQuar = m.Counter(obs.L("cluster_quarantines_total", "peer", p.id))
		p.mRead = m.Counter(obs.L("cluster_readmissions_total", "peer", p.id))
		p.mFwd = m.Counter(obs.L("cluster_forwards_total", "peer", p.id))
		p.mFErr = m.Counter(obs.L("cluster_forward_errors_total", "peer", p.id))
	}
}

// Close stops the prober. In-flight Aligns finish normally.
func (c *Cluster) Close() {
	if c == nil {
		return
	}
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	c.wg.Wait()
}

// NodeID returns this node's ring identity.
func (c *Cluster) NodeID() string {
	if c == nil {
		return ""
	}
	return c.self
}

// rebuildRingLocked recomputes ring membership from the current health
// states: self (unless draining) plus every peer not quarantined or probing.
// Callers hold c.mu.
func (c *Cluster) rebuildRingLocked() {
	members := make([]string, 0, len(c.peers)+1)
	if !c.draining.Load() {
		members = append(members, c.self)
	}
	for _, p := range c.order {
		if p.state == Healthy || p.state == Suspect {
			members = append(members, p.id)
		}
	}
	c.ring.Store(buildRing(members, c.cfg.Replicas))
	c.ringVersion++
	if c.mRing != nil {
		c.mRing.Set(float64(len(members)))
		c.mRingVer.Set(float64(c.ringVersion))
	}
}

// setStateLocked moves a peer's health state, exporting the gauge.
func (c *Cluster) setStateLocked(p *peer, to State) {
	if p.state == to {
		return
	}
	p.state = to
	if p.mState != nil {
		p.mState.Set(float64(to))
	}
}

// noteSuccess resets a peer's failure streak; quarantined/probing peers are
// readmitted and the ring re-homes their arcs back.
func (c *Cluster) noteSuccess(p *peer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.consec = 0
	p.lastErr = ""
	switch p.state {
	case Healthy:
	case Suspect:
		c.setStateLocked(p, Healthy)
	case Quarantined, Probing:
		c.setStateLocked(p, Healthy)
		p.readmissions++
		if p.mRead != nil {
			p.mRead.Inc()
		}
		c.rehomes++
		if c.mRehomes != nil {
			c.mRehomes.Inc()
		}
		c.rebuildRingLocked()
	}
}

// noteFailure advances a peer's failure streak through the health machine;
// crossing the quarantine threshold removes it from the ring (keys re-home).
func (c *Cluster) noteFailure(p *peer, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.consec++
	if err != nil {
		p.lastErr = err.Error()
	}
	switch {
	case p.consec >= c.cfg.QuarantineAfter && p.state != Quarantined && p.state != Probing:
		c.setStateLocked(p, Quarantined)
		p.quarantinedAt = time.Now()
		p.quarantines++
		if p.mQuar != nil {
			p.mQuar.Inc()
		}
		c.rehomes++
		if c.mRehomes != nil {
			c.mRehomes.Inc()
		}
		c.rebuildRingLocked()
	case p.consec >= c.cfg.SuspectAfter && p.state == Healthy:
		c.setStateLocked(p, Suspect)
	case p.state == Probing:
		// Failed readmission probe: back to quarantine, restart cooldown.
		c.setStateLocked(p, Quarantined)
		p.quarantinedAt = time.Now()
	}
}

// currentRing returns the live ring snapshot (nil means "all local").
func (c *Cluster) currentRing() *ring { return c.ring.Load() }

// Align routes one batch: pairs owned by this node run locally, pairs owned
// by live peers are forwarded (and fall back to local on any failure), and
// the per-owner results are merged back in request order. With no live peers
// — or a single-node cluster — this is exactly Local.Align.
func (c *Cluster) Align(ctx context.Context, pairs []dna.Pair) (*alignsvc.BatchResult, error) {
	if len(pairs) == 0 {
		return c.cfg.Local.Align(ctx, pairs)
	}
	c.batches.Add(1)
	r := c.currentRing()
	keys := make([]aligncache.Key, len(pairs))
	groups := make(map[string][]int, 3)
	var order []string // first-appearance order, deterministic merge
	for i, p := range pairs {
		keys[i] = aligncache.KeyOf(p.X, p.Y, c.cfg.Scoring, c.cfg.Lanes)
		owner := r.owner(pointOf(keys[i]))
		if owner == c.self {
			owner = "" // local sentinel: a node that owns a key never forwards it
		}
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}

	if len(order) == 1 && order[0] == "" {
		// Entire batch is ours: the exact no-cluster code path.
		res, err := c.cfg.Local.Align(ctx, pairs)
		if err == nil {
			c.localPairs.Add(int64(len(pairs)))
			c.recordHot(keys, pairs, res.Scores)
		}
		return res, err
	}

	type groupOut struct {
		scores []int
		rep    *alignsvc.Report
		err    error
	}
	outs := make([]groupOut, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		idx := groups[owner]
		sub := make([]dna.Pair, len(idx))
		subKeys := make([]aligncache.Key, len(idx))
		for j, i := range idx {
			sub[j] = pairs[i]
			subKeys[j] = keys[i]
		}
		wg.Add(1)
		go func(gi int, owner string, sub []dna.Pair, subKeys []aligncache.Key) {
			defer wg.Done()
			if owner == "" {
				res, err := c.cfg.Local.Align(ctx, sub)
				if err != nil {
					outs[gi] = groupOut{err: err}
					return
				}
				c.localPairs.Add(int64(len(sub)))
				c.recordHot(subKeys, sub, res.Scores)
				outs[gi] = groupOut{scores: res.Scores, rep: &res.Report}
				return
			}
			scores, rep, err := c.alignVia(ctx, owner, sub)
			outs[gi] = groupOut{scores: scores, rep: rep, err: err}
		}(gi, owner, sub, subKeys)
	}
	wg.Wait()

	scores := make([]int, len(pairs))
	var merged alignsvc.Report
	for gi, owner := range order {
		o := outs[gi]
		if o.err != nil {
			return nil, o.err
		}
		for j, i := range groups[owner] {
			scores[i] = o.scores[j]
		}
		if o.rep != nil {
			mergeReport(&merged, o.rep)
		}
	}
	return &alignsvc.BatchResult{Scores: scores, Report: merged}, nil
}

// mergeReport folds one group's local report into the batch report. Remote
// groups contribute nothing here (their ladder ran elsewhere); their cache
// hits are tracked in the cluster stats, not the batch report.
func mergeReport(dst *alignsvc.Report, src *alignsvc.Report) {
	if len(dst.Attempts) == 0 && dst.Retries == 0 && dst.CacheHits == 0 && dst.CacheCoalesced == 0 {
		dst.Tier = src.Tier
	} else if src.Tier > dst.Tier {
		dst.Tier = src.Tier // report the worst tier any local group needed
	}
	dst.Attempts = append(dst.Attempts, src.Attempts...)
	dst.Retries += src.Retries
	dst.Fallbacks += src.Fallbacks
	dst.Skips = append(dst.Skips, src.Skips...)
	dst.Faults.HtoD += src.Faults.HtoD
	dst.Faults.DtoH += src.Faults.DtoH
	dst.Faults.Alloc += src.Faults.Alloc
	dst.Faults.Launch += src.Faults.Launch
	dst.Faults.BitFlips += src.Faults.BitFlips
	dst.Validated += src.Validated
	if src.Elapsed > dst.Elapsed {
		dst.Elapsed = src.Elapsed
	}
	dst.CacheHits += src.CacheHits
	dst.CacheCoalesced += src.CacheCoalesced
}

// alignVia forwards one owner group to its peer, degrading to local
// execution on every failure mode: unknown peer (stale config), open
// breaker, transport errors, shedding beyond budget, malformed responses.
func (c *Cluster) alignVia(ctx context.Context, owner string, sub []dna.Pair) ([]int, *alignsvc.Report, error) {
	c.mu.Lock()
	p := c.peers[owner]
	c.mu.Unlock()
	if p == nil {
		return c.localFallback(ctx, sub)
	}
	if c.cfg.HedgeAfter > 0 {
		return c.alignHedged(ctx, p, sub)
	}
	scores, err := c.forward(ctx, p, sub)
	if err == nil {
		c.forwardedPairs.Add(int64(len(sub)))
		return scores, nil, nil
	}
	if ctx.Err() != nil {
		return nil, nil, ctx.Err()
	}
	return c.localFallback(ctx, sub)
}

// localFallback serves a peer-owned group on this node. The pairs are not
// recorded in the hotset: they belong to another node's arc.
func (c *Cluster) localFallback(ctx context.Context, sub []dna.Pair) ([]int, *alignsvc.Report, error) {
	c.fallbackPairs.Add(int64(len(sub)))
	if c.mFallback != nil {
		c.mFallback.Inc()
	}
	res, err := c.cfg.Local.Align(ctx, sub)
	if err != nil {
		return nil, nil, err
	}
	return res.Scores, &res.Report, nil
}

// alignHedged races the forward against local execution started HedgeAfter
// later; the first success wins and the loser is cancelled.
func (c *Cluster) alignHedged(ctx context.Context, p *peer, sub []dna.Pair) ([]int, *alignsvc.Report, error) {
	fctx, cancelF := context.WithCancel(ctx)
	defer cancelF()
	type out struct {
		scores []int
		rep    *alignsvc.Report
		err    error
	}
	fch := make(chan out, 1)
	go func() {
		s, err := c.forward(fctx, p, sub)
		fch <- out{scores: s, err: err}
	}()

	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	var lch chan out
	startLocal := func() {
		lch = make(chan out, 1)
		go func() {
			res, err := c.cfg.Local.Align(ctx, sub)
			if err != nil {
				lch <- out{err: err}
				return
			}
			lch <- out{scores: res.Scores, rep: &res.Report}
		}()
	}

	var ferr, lerr error
	fwd := fch
	for fwd != nil || lch != nil {
		select {
		case <-timer.C:
			if lch == nil && fwd != nil {
				c.hedges.Add(1)
				if c.mHedges != nil {
					c.mHedges.Inc()
				}
				startLocal()
			}
		case o := <-fwd:
			fwd = nil
			if o.err == nil {
				c.forwardedPairs.Add(int64(len(sub)))
				return o.scores, nil, nil
			}
			ferr = o.err
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			if lch == nil {
				// Forward failed before the hedge fired: this is a plain
				// fallback, not a hedge.
				return c.localFallback(ctx, sub)
			}
		case o := <-lch:
			lch = nil
			if o.err == nil {
				c.hedgeLocalWins.Add(1)
				cancelF()
				return o.scores, o.rep, nil
			}
			lerr = o.err
		}
	}
	if lerr != nil {
		return nil, nil, lerr
	}
	return nil, nil, ferr
}

// errShortCircuit reports a forward skipped by an open breaker; the caller
// degrades to local without having paid any network cost.
var errShortCircuit = errors.New("cluster: peer breaker open")

// forward sends one owner group to its peer and returns the scores. It
// enforces the per-attempt PeerTimeout, propagates the caller's remaining
// deadline in the body, honours Retry-After on 429 without charging the
// peer's health, and retries transport failures with jittered backoff up to
// MaxRetries. Any error return means "fall back to local".
func (c *Cluster) forward(ctx context.Context, p *peer, sub []dna.Pair) ([]int, error) {
	allowed, probe := p.br.allow()
	if !allowed {
		c.shortCircuits.Add(1)
		if c.mShortC != nil {
			c.mShortC.Inc()
		}
		return nil, errShortCircuit
	}

	body, err := json.Marshal(c.wireRequest(ctx, sub))
	if err != nil {
		p.br.release(probe)
		return nil, fmt.Errorf("cluster: encode forward: %w", err)
	}

	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			backoff := c.cfg.RetryBackoff + time.Duration(rand.Int63n(int64(c.cfg.RetryBackoff)))
			if !sleepCtx(ctx, backoff) {
				p.br.release(probe)
				return nil, ctx.Err()
			}
		}
		scores, retryAfter, err := c.post(ctx, p, body, len(sub))
		if err == nil {
			p.br.success()
			c.noteSuccess(p)
			p.forwards.Add(1)
			if p.mFwd != nil {
				p.mFwd.Inc()
			}
			return scores, nil
		}
		lastErr = err
		p.forwardErrs.Add(1)
		if p.mFErr != nil {
			p.mFErr.Inc()
		}
		if ctx.Err() != nil {
			p.br.release(probe)
			return nil, err
		}
		if retryAfter >= 0 {
			// 429: the peer is alive and shedding load — deliberately not a
			// breaker or health failure. Wait as instructed if the budget
			// allows, then retry; otherwise degrade to local.
			c.retry429Waits.Add(1)
			if !sleepCtx(ctx, retryAfter) {
				p.br.release(probe)
				return nil, err
			}
			continue
		}
		p.br.fail()
		c.noteFailure(p, err)
		if probe {
			// The half-open probe failed; don't burn retries on a peer the
			// breaker just re-opened.
			return nil, err
		}
	}
	return nil, lastErr
}

// wireRequest builds the forwarded /align body, propagating the remaining
// deadline budget so the peer never works past our own deadline.
func (c *Cluster) wireRequest(ctx context.Context, sub []dna.Pair) wireAlignReq {
	req := wireAlignReq{Pairs: make([]WirePair, len(sub))}
	for i, p := range sub {
		req.Pairs[i] = WirePair{X: p.X.String(), Y: p.Y.String()}
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}
	return req
}

// post performs one forward attempt. retryAfter is ≥0 only for a 429, carrying
// the peer's requested wait (capped at PeerTimeout).
func (c *Cluster) post(ctx context.Context, p *peer, body []byte, wantScores int) (scores []int, retryAfter time.Duration, err error) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, p.url+"/align", bytes.NewReader(body))
	if err != nil {
		return nil, -1, fmt.Errorf("cluster: peer %s: %w", p.id, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, -1, fmt.Errorf("cluster: peer %s: %w", p.id, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerRespBytes))
	if err != nil {
		return nil, -1, fmt.Errorf("cluster: peer %s: read response: %w", p.id, err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		wait := c.cfg.RetryBackoff
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		if wait > c.cfg.PeerTimeout {
			wait = c.cfg.PeerTimeout
		}
		return nil, wait, fmt.Errorf("cluster: peer %s shedding (429)", p.id)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(raw))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, -1, fmt.Errorf("cluster: peer %s: HTTP %d: %s", p.id, resp.StatusCode, msg)
	}
	var out wireAlignResp
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, -1, fmt.Errorf("cluster: peer %s: decode response: %w", p.id, err)
	}
	if len(out.Scores) != wantScores {
		return nil, -1, fmt.Errorf("cluster: peer %s returned %d scores for %d pairs", p.id, len(out.Scores), wantScores)
	}
	if out.Report.CacheHits > 0 {
		p.peerCacheHits.Add(int64(out.Report.CacheHits))
		if c.mPeerHits != nil {
			c.mPeerHits.Add(int64(out.Report.CacheHits))
		}
	}
	return out.Scores, -1, nil
}

// WirePair is one (pattern, text) pair as ACGT strings on the peer wire —
// the same shape as the server's PairJSON, defined here (with the private
// wireAlignReq/wireAlignResp mirrors of /align) because internal/server
// imports this package, not the other way round.
type WirePair struct {
	X string `json:"x"`
	Y string `json:"y"`
}

type wireAlignReq struct {
	Pairs     []WirePair `json:"pairs"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
}

type wireAlignResp struct {
	Scores []int `json:"scores"`
	Report struct {
		CacheHits int `json:"cache_hits"`
	} `json:"report"`
}

// WarmRequest is the /cluster/warm body: parallel pairs and scores a
// draining peer hands to the new owner of their arc.
type WarmRequest struct {
	Pairs  []WirePair `json:"pairs"`
	Scores []int      `json:"scores"`
}

// sleepCtx sleeps for d or until the context ends; reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// prober is the background health loop: it probes live peers at
// ProbeInterval (so silent deaths and draining peers are noticed even
// without traffic) and quarantined peers after their cooldown, readmitting
// on success.
func (c *Cluster) prober() {
	defer c.wg.Done()
	tick := c.cfg.ProbeInterval / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
		}
		now := time.Now()
		var due []*peer
		c.mu.Lock()
		for _, p := range c.order {
			switch p.state {
			case Healthy, Suspect:
				if now.Sub(p.lastProbe) >= c.cfg.ProbeInterval {
					p.lastProbe = now
					due = append(due, p)
				}
			case Quarantined:
				if now.Sub(p.quarantinedAt) >= c.cfg.ProbeInterval {
					c.setStateLocked(p, Probing)
					p.lastProbe = now
					due = append(due, p)
				}
			}
		}
		c.mu.Unlock()
		for _, p := range due {
			// Off-lock: a probe is one bounded GET, but N of them must not
			// serialize behind the membership lock.
			if err := c.probeOne(p); err != nil {
				c.noteFailure(p, err)
			} else {
				c.noteSuccess(p)
			}
		}
	}
}

// probeOne checks a peer's /readyz. A draining or dead peer fails here and
// leaves the ring, so its keys re-home even when no traffic touches it.
func (c *Cluster) probeOne(p *peer) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: probe %s: %w", p.id, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: /readyz %d", p.id, resp.StatusCode)
	}
	return nil
}

// Draining reports whether BeginDrain has run.
func (c *Cluster) Draining() bool {
	if c == nil {
		return false
	}
	return c.draining.Load()
}

// NoteForwardedServed counts a forwarded request this node served for a
// peer; the server calls it from the hop guard. Nil-safe.
func (c *Cluster) NoteForwardedServed() {
	if c == nil {
		return
	}
	c.forwardedServed.Add(1)
	if c.mServed != nil {
		c.mServed.Inc()
	}
}

// NoteLoopReject counts a forwarded request rejected by the hop guard.
// Nil-safe.
func (c *Cluster) NoteLoopReject() {
	if c == nil {
		return
	}
	c.loopRejects.Add(1)
	if c.mLoops != nil {
		c.mLoops.Inc()
	}
}

// NoteWarmAccepted counts entries accepted from a draining peer's handoff;
// the server's /cluster/warm handler calls it. Nil-safe.
func (c *Cluster) NoteWarmAccepted(entries int) {
	if c == nil || entries <= 0 {
		return
	}
	c.warmAccepted.Add(int64(entries))
	if c.mWarm != nil {
		c.mWarm.Add(int64(entries))
	}
}

// BeginDrain removes this node from its own ring and hands the hot part of
// its key space to the new owners: the hotset is re-bucketed under the
// self-less ring and each bucket is pushed to its owner via /cluster/warm.
// Best-effort and coordinator-free — peers notice the drain independently
// through their own probes ( /readyz goes false) and stop forwarding to us.
func (c *Cluster) BeginDrain(ctx context.Context) {
	if c == nil || !c.draining.CompareAndSwap(false, true) {
		return
	}
	c.mu.Lock()
	c.rebuildRingLocked() // self is gone: our arcs re-home to the survivors
	c.rehomes++
	if c.mRehomes != nil {
		c.mRehomes.Inc()
	}
	r := c.currentRing()
	live := make(map[string]*peer, len(c.peers))
	for id, p := range c.peers {
		if p.state == Healthy || p.state == Suspect {
			live[id] = p
		}
	}
	c.mu.Unlock()

	entries := c.hot.snapshot()
	if len(entries) == 0 || len(live) == 0 || r == nil {
		return
	}
	buckets := make(map[string][]hotEntry, len(live))
	for _, e := range entries {
		owner := r.owner(pointOf(e.key))
		if _, ok := live[owner]; !ok {
			continue
		}
		buckets[owner] = append(buckets[owner], e)
	}
	for owner, bucket := range buckets {
		p := live[owner]
		sent := 0
		for start := 0; start < len(bucket); start += c.cfg.WarmBatch {
			end := min(start+c.cfg.WarmBatch, len(bucket))
			if err := c.postWarm(ctx, p, bucket[start:end]); err != nil {
				break // best-effort: the peer can always recompute
			}
			sent += end - start
		}
		if sent > 0 {
			c.handoffEntries.Add(int64(sent))
			c.handoffPeers.Add(1)
			if c.mHandoff != nil {
				c.mHandoff.Add(int64(sent))
			}
		}
	}
}

// postWarm pushes one handoff chunk to the given peer.
func (c *Cluster) postWarm(ctx context.Context, p *peer, entries []hotEntry) error {
	req := WarmRequest{Pairs: make([]WirePair, len(entries)), Scores: make([]int, len(entries))}
	for i, e := range entries {
		req.Pairs[i] = WirePair{X: e.pair.X.String(), Y: e.pair.Y.String()}
		req.Scores[i] = e.score
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	pctx, cancel := context.WithTimeout(ctx, c.cfg.PeerTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(pctx, http.MethodPost, p.url+"/cluster/warm", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardHeader, c.self)
	resp, err := c.cfg.Client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: warm %s: HTTP %d", p.id, resp.StatusCode)
	}
	return nil
}

// recordHot remembers locally-owned served pairs for a future drain handoff.
func (c *Cluster) recordHot(keys []aligncache.Key, pairs []dna.Pair, scores []int) {
	if len(pairs) != len(scores) {
		return
	}
	for i := range pairs {
		c.hot.add(keys[i], pairs[i], scores[i])
	}
}

// hotEntry is one recently-served (pair, score) this node owned.
type hotEntry struct {
	key   aligncache.Key
	pair  dna.Pair
	score int
}

// hotset is a bounded FIFO-evicting set of recently-served entries, the
// working set a draining node hands to its successors.
type hotset struct {
	mu      sync.Mutex
	cap     int
	entries []hotEntry
	index   map[aligncache.Key]int
	next    int // FIFO eviction cursor once full
}

func newHotset(capacity int) *hotset {
	return &hotset{cap: capacity, index: make(map[aligncache.Key]int, capacity)}
}

func (h *hotset) add(k aligncache.Key, p dna.Pair, score int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i, ok := h.index[k]; ok {
		h.entries[i].score = score
		return
	}
	if len(h.entries) < h.cap {
		h.entries = append(h.entries, hotEntry{key: k, pair: p, score: score})
		h.index[k] = len(h.entries) - 1
		return
	}
	delete(h.index, h.entries[h.next].key)
	h.entries[h.next] = hotEntry{key: k, pair: p, score: score}
	h.index[k] = h.next
	h.next = (h.next + 1) % h.cap
}

func (h *hotset) snapshot() []hotEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]hotEntry(nil), h.entries...)
}

func (h *hotset) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}
