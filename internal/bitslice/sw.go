package bitslice

import "repro/internal/word"

// Params fixes the Smith-Waterman scoring scheme for the bit-sliced engine.
// All three costs are magnitudes: a match adds Match, a mismatch subtracts
// Mismatch (saturating at 0 per the paper's matching_B), and a gap subtracts
// Gap (saturating at 0 per SSub_B).
type Params struct {
	S        int  // score bit width (see RequiredBits)
	Match    uint // c1: score added on x == y
	Mismatch uint // c2: penalty subtracted on x != y
	Gap      uint // gap: penalty subtracted per gap
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.S < 1:
		return errParam("S must be >= 1")
	case p.Match == 0:
		return errParam("Match must be positive")
	case uintBits(p.Match) > p.S:
		return errParam("Match does not fit in S bits")
	case uintBits(p.Mismatch) > p.S:
		return errParam("Mismatch does not fit in S bits")
	case uintBits(p.Gap) > p.S:
		return errParam("Gap does not fit in S bits")
	}
	return nil
}

type errParam string

func (e errParam) Error() string { return "bitslice: invalid params: " + string(e) }

func uintBits(v uint) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// MismatchMask returns, per lane, 1 where the 2-bit characters differ:
// e = (xH ⊕ yH) ∨ (xL ⊕ yL). This is the ε=2 (DNA) case of the paper's
// matching flag.
func MismatchMask[W word.Word](xH, xL, yH, yL W) W {
	return (xH ^ yH) | (xL ^ yL)
}

// MismatchMaskPlanes is the general-ε form of the matching flag: x and y
// hold one word per character bit plane, and the result has 1 in every lane
// whose characters differ. Cost: 2ε-1 operations, as the paper's Lemma 5
// accounting assumes.
func MismatchMaskPlanes[W word.Word](x, y []W) W {
	if len(x) != len(y) {
		panic("bitslice: MismatchMaskPlanes width mismatch")
	}
	var e W
	for b := range x {
		e |= x[b] ^ y[b]
	}
	return e
}

// Scratch holds the temporaries the SW cell update needs, so the hot loop
// performs no allocation. One Scratch may be reused across cells but not
// across concurrent goroutines.
type Scratch[W word.Word] struct {
	t, u, r Num[W]
}

// NewScratch allocates scratch space for s-bit cell updates.
func NewScratch[W word.Word](s int) *Scratch[W] {
	return &Scratch[W]{t: NewNum[W](s), u: NewNum[W](s), r: NewNum[W](s)}
}

// Matching stores C + w(x,y) into dst per lane, where w is +Match on equal
// characters and -Mismatch (saturating at 0) on differing ones; e is the
// per-lane mismatch mask from MismatchMask. dst must not alias c.
// Cost: ≤ 21s-9 operations (Lemma 5).
func Matching[W word.Word](dst, c Num[W], e W, par Params, sc *Scratch[W]) {
	AddScalar(sc.r, c, par.Match)     // R = C + c1
	SSubScalar(sc.t, c, par.Mismatch) // T = max(C - c2, 0)
	s := len(c)
	for i := 0; i < s; i++ {
		dst[i] = (sc.r[i] &^ e) | (sc.t[i] & e)
	}
}

// SWCell evaluates the Smith-Waterman recurrence for one cell across all
// lanes:
//
//	dst = max(0, up-gap, left-gap, diag + w(x,y))
//
// following the paper's SW function: T = max(up, left); U = SSub(T, gap);
// T = matching(diag, x, y); dst = max(T, U). The explicit 0 term is implied
// because SSub and Matching both saturate at zero. e is the mismatch mask
// for this cell's character pair. dst may alias up, left or diag.
// Cost: 48s-18 operations (Theorem 6; see OpCounts for the exact figure).
func SWCell[W word.Word](dst, up, left, diag Num[W], e W, par Params, sc *Scratch[W]) {
	Max(sc.t, up, left)
	SSubScalar(sc.u, sc.t, par.Gap)
	Matching(sc.t, diag, e, par, sc)
	Max(dst, sc.t, sc.u)
}

// OpCounts reports the analytic bitwise-operation counts of each primitive
// for an s-bit, ε-bit-character configuration, alongside the counts the
// paper states in Lemmas 2-5 and Theorem 6. Small systematic differences
// exist (the paper's add pseudocode contains a carry-initialisation typo and
// its matching bound rounds 2ε up to 2s); both figures are reported so the
// reproduction can show its work. See EXPERIMENTS.md.
type OpCount struct {
	Name  string
	Ours  int
	Paper int
}

// OpCounts returns the operation-count table for width s and character
// width eps (2 for DNA).
func OpCounts(s, eps int) []OpCount {
	greaterEq := 3 + 5*(s-1) // 5s-2
	maxB := greaterEq + 4*s  // 9s-2
	add := 2 + 6*(s-1)       // 6s-4 (paper: 6s-5 via its carry-init typo)
	// SSub: plane 0 costs 3 (q0 = a^b; borrow = ^a & b); planes 1..s-1 cost
	// 7 (2 for q, 5 for borrow); saturation costs 1 (^p) plus s ANDs.
	// Total 8s-3. The paper's 9s-4 charges the saturation at 2 ops/plane.
	ssub := 3 + 7*(s-1) + 1 + s
	// Matching: add + ssub + mismatch flag (2ε-1 ops) + select at 3 ops per
	// plane. The paper bounds the flag+select by "4s + 2ε < 6s".
	matching := add + ssub + (2*eps - 1) + 3*s
	sw := 2*maxB + ssub + matching
	return []OpCount{
		{"greaterthan", greaterEq, 5*s - 2},
		{"max_B", maxB, 9*s - 2},
		{"add_B", add, 6*s - 5},
		{"SSub_B", ssub, 9*s - 4},
		{"matching_B", matching, 21*s - 9},
		{"SW", sw, 48*s - 18},
	}
}
