// Package bitslice implements the bit-sliced ("bit-parallel") arithmetic of
// the paper's §IV-A: comparison, maximum, addition, saturating subtraction,
// the matching function, and the full Smith-Waterman cell update, all
// operating on s-plane numbers.
//
// A bit-sliced number holds W independent s-bit values, one per lane: plane
// h (a machine word) carries bit h of every lane's value. Evaluating a
// boolean circuit once over the planes evaluates it for all W lanes
// simultaneously — the essence of Bitwise Parallel Bulk Computation.
package bitslice

import (
	"fmt"
	"math/bits"

	"repro/internal/word"
)

// Num is a bit-sliced unsigned number of s = len(n) bits: n[h] is bit-plane
// h, i.e. lane k of n[h] is bit h of the value held by lane k.
type Num[W word.Word] []W

// NewNum allocates an all-zero s-plane number.
func NewNum[W word.Word](s int) Num[W] {
	if s < 1 {
		panic("bitslice: number width must be >= 1")
	}
	return make(Num[W], s)
}

// Bits returns the bit width s of n.
func (n Num[W]) Bits() int { return len(n) }

// Zero clears every lane of n.
func (n Num[W]) Zero() {
	for i := range n {
		n[i] = 0
	}
}

// CopyFrom copies src into n. Both must have the same width.
func (n Num[W]) CopyFrom(src Num[W]) {
	if len(n) != len(src) {
		panic("bitslice: CopyFrom width mismatch")
	}
	copy(n, src)
}

// Get extracts the value held by lane k.
func (n Num[W]) Get(k int) uint {
	var v uint
	for h, plane := range n {
		if word.Lane(plane, k) {
			v |= 1 << uint(h)
		}
	}
	return v
}

// Set stores v into lane k. It panics if v does not fit in the number's
// width, which would silently corrupt results otherwise.
func (n Num[W]) Set(k int, v uint) {
	if bits.Len(v) > len(n) {
		panic(fmt.Sprintf("bitslice: value %d does not fit in %d bits", v, len(n)))
	}
	for h := range n {
		n[h] = word.SetLane(n[h], k, v>>uint(h)&1 != 0)
	}
}

// SetAll stores v into every lane.
func (n Num[W]) SetAll(v uint) {
	if bits.Len(v) > len(n) {
		panic(fmt.Sprintf("bitslice: value %d does not fit in %d bits", v, len(n)))
	}
	for h := range n {
		n[h] = word.Broadcast[W](v>>uint(h)&1 != 0)
	}
}

// Lanes returns all lane values as a slice (mostly for tests and examples).
func (n Num[W]) Lanes() []uint {
	out := make([]uint, word.Lanes[W]())
	for k := range out {
		out[k] = n.Get(k)
	}
	return out
}

// GreaterEq returns, per lane, 1 where a >= b and 0 where a < b. It is the
// paper's "greaterthan" compare function: p accumulates the borrow of a-b
// from the least significant plane, so the final p is 1 exactly when a < b,
// and the complement is returned. Cost: 5s-2 operations (Lemma 2's
// comparator part).
func GreaterEq[W word.Word](a, b Num[W]) W {
	s := mustSameWidth(a, b)
	p := ^a[0] & b[0]
	for i := 1; i < s; i++ {
		p = (b[i] & p) | (^a[i] & (b[i] ^ p))
	}
	return ^p
}

// GreaterThan returns, per lane, 1 where a > b strictly (the complement of
// b >= a).
func GreaterThan[W word.Word](a, b Num[W]) W {
	return ^GreaterEq(b, a)
}

// Max stores max(a, b) into dst, per lane. dst may alias a or b.
// Cost: 9s-2 operations (Lemma 2).
func Max[W word.Word](dst, a, b Num[W]) {
	s := mustSameWidth(a, b)
	mustWidth(dst, s)
	p := GreaterEq(a, b) // 1 where a >= b
	for i := 0; i < s; i++ {
		dst[i] = (a[i] & p) | (b[i] &^ p)
	}
}

// Add stores a+b into dst, per lane, modulo 2^s. The caller is responsible
// for choosing s wide enough that no lane overflows (see RequiredBits).
// dst may alias a or b. Cost: 6s-5 operations (Lemma 3).
func Add[W word.Word](dst, a, b Num[W]) {
	s := mustSameWidth(a, b)
	mustWidth(dst, s)
	a0, b0 := a[0], b[0]
	p := a0 ^ b0
	dst[0] = p
	p = a0 & b0 // carry out of plane 0 (the paper folds this into plane 1)
	for i := 1; i < s; i++ {
		ai, bi := a[i], b[i]
		dst[i] = ai ^ bi ^ p
		p = (ai & (bi ^ p)) | (bi & p)
	}
}

// AddScalar stores a+v into dst, per lane, modulo 2^s, broadcasting the
// scalar constant v across all lanes (constant planes are all-ones or
// all-zero words). dst may alias a.
func AddScalar[W word.Word](dst, a Num[W], v uint) {
	s := len(a)
	mustWidth(dst, s)
	if bits.Len(v) > s {
		panic(fmt.Sprintf("bitslice: AddScalar constant %d does not fit in %d bits", v, s))
	}
	a0 := a[0]
	b0 := word.Broadcast[W](v&1 != 0)
	dst[0] = a0 ^ b0
	p := a0 & b0
	for i := 1; i < s; i++ {
		ai := a[i]
		bi := word.Broadcast[W](v>>uint(i)&1 != 0)
		dst[i] = ai ^ bi ^ p
		p = (ai & (bi ^ p)) | (bi & p)
	}
}

// SSub stores max(a-b, 0) into dst, per lane: an s-bit subtraction whose
// result is forced to zero in lanes that would underflow ("saturation
// subtraction", the paper's SSub_B). dst may alias a or b.
// Cost: 9s-4 operations (Lemma 4).
func SSub[W word.Word](dst, a, b Num[W]) {
	s := mustSameWidth(a, b)
	mustWidth(dst, s)
	a0, b0 := a[0], b[0]
	dst[0] = a0 ^ b0
	p := ^a0 & b0
	for i := 1; i < s; i++ {
		ai, bi := a[i], b[i]
		dst[i] = ai ^ bi ^ p
		p = (^ai & (bi ^ p)) | (bi & p)
	}
	np := ^p // p = final borrow: lanes where a < b saturate to zero
	for i := 0; i < s; i++ {
		dst[i] &= np
	}
}

// SSubScalar stores max(a-v, 0) into dst per lane, broadcasting the scalar v.
// dst may alias a.
func SSubScalar[W word.Word](dst, a Num[W], v uint) {
	s := len(a)
	mustWidth(dst, s)
	if bits.Len(v) > s {
		panic(fmt.Sprintf("bitslice: SSubScalar constant %d does not fit in %d bits", v, s))
	}
	a0 := a[0]
	b0 := word.Broadcast[W](v&1 != 0)
	dst[0] = a0 ^ b0
	p := ^a0 & b0
	for i := 1; i < s; i++ {
		ai := a[i]
		bi := word.Broadcast[W](v>>uint(i)&1 != 0)
		dst[i] = ai ^ bi ^ p
		p = (^ai & (bi ^ p)) | (bi & p)
	}
	np := ^p
	for i := 0; i < s; i++ {
		dst[i] &= np
	}
}

// Select stores, per lane, a where cond is 0 and b where cond is 1.
// dst may alias a or b.
func Select[W word.Word](dst, a, b Num[W], cond W) {
	s := mustSameWidth(a, b)
	mustWidth(dst, s)
	for i := 0; i < s; i++ {
		dst[i] = (a[i] &^ cond) | (b[i] & cond)
	}
}

func mustSameWidth[W word.Word](a, b Num[W]) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitslice: width mismatch %d vs %d", len(a), len(b)))
	}
	return len(a)
}

func mustWidth[W word.Word](n Num[W], s int) {
	if len(n) != s {
		panic(fmt.Sprintf("bitslice: want width %d, got %d", s, len(n)))
	}
}

// RequiredBits returns the bit width s needed so that no Smith-Waterman
// score can overflow: the maximum reachable score with match reward c1 and
// pattern length m is c1*m, so s = ⌈log2(c1*m + 1)⌉ = bits.Len(c1*m).
//
// Note: the paper states s = ⌈log2(c1·m)⌉, which is one bit short exactly
// when c1·m is a power of two (e.g. the paper's own c1=2, m=128 ⇒ max score
// 256 needs 9 bits, not 8). See EXPERIMENTS.md.
func RequiredBits(c1 uint, m int) int {
	if c1 == 0 || m <= 0 {
		panic("bitslice: RequiredBits needs positive c1 and m")
	}
	return bits.Len(c1 * uint(m))
}

// PaperRequiredBits returns the paper's (off-by-one prone) width formula
// ⌈log2(c1·m)⌉, provided so the original configuration can be reproduced.
func PaperRequiredBits(c1 uint, m int) int {
	if c1 == 0 || m <= 0 {
		panic("bitslice: PaperRequiredBits needs positive c1 and m")
	}
	v := c1*uint(m) - 1
	return bits.Len(v)
}
