package bitslice

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/word"
)

const testS = 9 // bit width used by most tests (the paper config's width)

func randNum[W word.Word](rng *rand.Rand, s int) Num[W] {
	n := NewNum[W](s)
	for k := 0; k < word.Lanes[W](); k++ {
		n.Set(k, uint(rng.Uint64N(1<<uint(s))))
	}
	return n
}

func TestGetSetRoundTrip(t *testing.T) {
	n := NewNum[uint32](testS)
	for k := 0; k < 32; k++ {
		n.Set(k, uint(k*13)%512)
	}
	for k := 0; k < 32; k++ {
		if got := n.Get(k); got != uint(k*13)%512 {
			t.Fatalf("lane %d: got %d", k, got)
		}
	}
}

func TestSetPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set with oversized value did not panic")
		}
	}()
	NewNum[uint32](4).Set(0, 16)
}

func TestSetAll(t *testing.T) {
	n := NewNum[uint64](7)
	n.SetAll(93)
	for _, v := range n.Lanes() {
		if v != 93 {
			t.Fatalf("lane holds %d, want 93", v)
		}
	}
}

func TestGreaterEqExhaustiveSmall(t *testing.T) {
	// Exhaustive over all pairs of 4-bit values, one pair per lane batch.
	const s = 4
	a := NewNum[uint32](s)
	b := NewNum[uint32](s)
	for base := 0; base < 256; base += 32 {
		for k := 0; k < 32; k++ {
			pair := base + k
			a.Set(k, uint(pair>>4))
			b.Set(k, uint(pair&15))
		}
		ge := GreaterEq(a, b)
		for k := 0; k < 32; k++ {
			pair := base + k
			want := (pair >> 4) >= (pair & 15)
			if word.Lane(ge, k) != want {
				t.Fatalf("GreaterEq(%d,%d) lane says %v", pair>>4, pair&15, !want)
			}
		}
	}
}

func TestMaxProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		a := randNum[uint64](rng, testS)
		b := randNum[uint64](rng, testS)
		dst := NewNum[uint64](testS)
		Max(dst, a, b)
		for k := 0; k < 64; k++ {
			want := max(a.Get(k), b.Get(k))
			if dst.Get(k) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxAliasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randNum[uint32](rng, testS)
	b := randNum[uint32](rng, testS)
	want := NewNum[uint32](testS)
	Max(want, a, b)
	aCopy := NewNum[uint32](testS)
	aCopy.CopyFrom(a)
	Max(aCopy, aCopy, b) // dst aliases a
	for k := 0; k < 32; k++ {
		if aCopy.Get(k) != want.Get(k) {
			t.Fatalf("aliased Max wrong at lane %d", k)
		}
	}
}

func TestAddProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		// Keep inputs small enough that no lane overflows s bits.
		a := NewNum[uint32](testS)
		b := NewNum[uint32](testS)
		for k := 0; k < 32; k++ {
			a.Set(k, uint(rng.Uint64N(1<<(testS-1))))
			b.Set(k, uint(rng.Uint64N(1<<(testS-1))))
		}
		dst := NewNum[uint32](testS)
		Add(dst, a, b)
		for k := 0; k < 32; k++ {
			if dst.Get(k) != a.Get(k)+b.Get(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddWrapsModuloS(t *testing.T) {
	a := NewNum[uint32](4)
	b := NewNum[uint32](4)
	a.SetAll(12)
	b.SetAll(9)
	dst := NewNum[uint32](4)
	Add(dst, a, b)
	if got := dst.Get(0); got != (12+9)%16 {
		t.Errorf("Add wrap: got %d want %d", got, (12+9)%16)
	}
}

func TestAddScalarMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, v := range []uint{0, 1, 2, 5, 255} {
		a := NewNum[uint64](testS)
		for k := 0; k < 64; k++ {
			a.Set(k, uint(rng.Uint64N(1<<8)))
		}
		b := NewNum[uint64](testS)
		b.SetAll(v)
		want := NewNum[uint64](testS)
		Add(want, a, b)
		got := NewNum[uint64](testS)
		AddScalar(got, a, v)
		for k := 0; k < 64; k++ {
			if got.Get(k) != want.Get(k) {
				t.Fatalf("AddScalar(%d) lane %d: got %d want %d", v, k, got.Get(k), want.Get(k))
			}
		}
	}
}

func TestSSubProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		a := randNum[uint32](rng, testS)
		b := randNum[uint32](rng, testS)
		dst := NewNum[uint32](testS)
		SSub(dst, a, b)
		for k := 0; k < 32; k++ {
			av, bv := a.Get(k), b.Get(k)
			want := uint(0)
			if av > bv {
				want = av - bv
			}
			if dst.Get(k) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSubScalarMatchesSSub(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	for _, v := range []uint{0, 1, 3, 100, 511} {
		a := randNum[uint32](rng, testS)
		b := NewNum[uint32](testS)
		b.SetAll(v)
		want := NewNum[uint32](testS)
		SSub(want, a, b)
		got := NewNum[uint32](testS)
		SSubScalar(got, a, v)
		for k := 0; k < 32; k++ {
			if got.Get(k) != want.Get(k) {
				t.Fatalf("SSubScalar(%d) lane %d mismatch", v, k)
			}
		}
	}
}

func TestSelect(t *testing.T) {
	a := NewNum[uint32](4)
	b := NewNum[uint32](4)
	a.SetAll(3)
	b.SetAll(12)
	dst := NewNum[uint32](4)
	var cond uint32 = 0xAAAAAAAA // odd lanes take b
	Select(dst, a, b, cond)
	for k := 0; k < 32; k++ {
		want := uint(3)
		if k%2 == 1 {
			want = 12
		}
		if dst.Get(k) != want {
			t.Fatalf("Select lane %d: got %d want %d", k, dst.Get(k), want)
		}
	}
}

func TestMismatchMask(t *testing.T) {
	// Lane 0: equal chars; lane 1: high bit differs; lane 2: low differs.
	var xH, xL, yH, yL uint32
	xH, xL = 0b010, 0b100
	yH, yL = 0b000, 0b000
	e := MismatchMask(xH, xL, yH, yL)
	if word.Lane(e, 0) {
		t.Error("lane 0 should match")
	}
	if !word.Lane(e, 1) || !word.Lane(e, 2) {
		t.Error("lanes 1,2 should mismatch")
	}
}

var paperParams = Params{S: testS, Match: 2, Mismatch: 1, Gap: 1}

func TestParamsValidate(t *testing.T) {
	if err := paperParams.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := []Params{
		{S: 0, Match: 1},
		{S: 4, Match: 0},
		{S: 4, Match: 16},
		{S: 4, Match: 1, Mismatch: 16},
		{S: 4, Match: 1, Gap: 16},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should be invalid: %+v", i, p)
		}
	}
}

// refSWCell is the plain-integer Smith-Waterman recurrence used as oracle.
func refSWCell(up, left, diag int, match bool, par Params) int {
	w := -int(par.Mismatch)
	if match {
		w = int(par.Match)
	}
	return max(0, up-int(par.Gap), left-int(par.Gap), diag+w)
}

func TestMatchingProperty(t *testing.T) {
	sc := NewScratch[uint32](testS)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 8))
		c := NewNum[uint32](testS)
		var e uint32
		for k := 0; k < 32; k++ {
			c.Set(k, uint(rng.Uint64N(1<<8))) // headroom for +Match
			e = word.SetLane(e, k, rng.Uint64()&1 != 0)
		}
		dst := NewNum[uint32](testS)
		Matching(dst, c, e, paperParams, sc)
		for k := 0; k < 32; k++ {
			cv := int(c.Get(k))
			var want int
			if word.Lane(e, k) {
				want = max(cv-int(paperParams.Mismatch), 0)
			} else {
				want = cv + int(paperParams.Match)
			}
			if int(dst.Get(k)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMatchingSaturationIsSafe demonstrates the design note from DESIGN.md:
// clamping C-c2 at zero inside matching_B never changes the SW recurrence
// outcome, because the outer max already includes 0.
func TestMatchingSaturationIsSafe(t *testing.T) {
	par := paperParams
	for diag := 0; diag <= 4; diag++ {
		for up := 0; up <= 4; up++ {
			for left := 0; left <= 4; left++ {
				// Exact (non-saturating) mismatch arithmetic:
				exact := max(0, up-int(par.Gap), left-int(par.Gap), diag-int(par.Mismatch))
				sat := max(0, up-int(par.Gap), left-int(par.Gap), max(diag-int(par.Mismatch), 0))
				if exact != sat {
					t.Fatalf("saturation changed result at diag=%d up=%d left=%d", diag, up, left)
				}
			}
		}
	}
}

func TestSWCellProperty32(t *testing.T) {
	testSWCellProperty[uint32](t)
}

func TestSWCellProperty64(t *testing.T) {
	testSWCellProperty[uint64](t)
}

func testSWCellProperty[W word.Word](t *testing.T) {
	t.Helper()
	sc := NewScratch[W](testS)
	lanes := word.Lanes[W]()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		up := NewNum[W](testS)
		left := NewNum[W](testS)
		diag := NewNum[W](testS)
		var e W
		for k := 0; k < lanes; k++ {
			up.Set(k, uint(rng.Uint64N(257)))
			left.Set(k, uint(rng.Uint64N(257)))
			diag.Set(k, uint(rng.Uint64N(255))) // ≤254 so +2 fits
			e = word.SetLane(e, k, rng.Uint64()&1 != 0)
		}
		dst := NewNum[W](testS)
		SWCell(dst, up, left, diag, e, paperParams, sc)
		for k := 0; k < lanes; k++ {
			want := refSWCell(int(up.Get(k)), int(left.Get(k)), int(diag.Get(k)),
				!word.Lane(e, k), paperParams)
			if int(dst.Get(k)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSWCellAliasesDst(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	sc := NewScratch[uint32](testS)
	up := widen(randNum[uint32](rng, 8))
	left := widen(randNum[uint32](rng, 8))
	diag := widen(randNum[uint32](rng, 8))
	var e uint32 = 0x0F0F0F0F
	want := NewNum[uint32](testS)
	SWCell(want, up, left, diag, e, paperParams, sc)
	leftCopy := NewNum[uint32](testS)
	leftCopy.CopyFrom(left)
	SWCell(leftCopy, up, leftCopy, diag, e, paperParams, sc)
	for k := 0; k < 32; k++ {
		if leftCopy.Get(k) != want.Get(k) {
			t.Fatalf("dst aliasing left broke SWCell at lane %d", k)
		}
	}
}

func widen(n Num[uint32]) Num[uint32] {
	out := NewNum[uint32](testS)
	copy(out, n)
	return out[:testS]
}

func TestRequiredBits(t *testing.T) {
	// Paper config: c1=2, m=128 → max score 256 → 9 bits.
	if got := RequiredBits(2, 128); got != 9 {
		t.Errorf("RequiredBits(2,128) = %d, want 9", got)
	}
	// The paper's own formula yields 8 for the same config.
	if got := PaperRequiredBits(2, 128); got != 8 {
		t.Errorf("PaperRequiredBits(2,128) = %d, want 8", got)
	}
	if got := RequiredBits(2, 100); got != 8 {
		t.Errorf("RequiredBits(2,100) = %d, want 8 (max 200)", got)
	}
	if got := PaperRequiredBits(2, 100); got != 8 {
		t.Errorf("PaperRequiredBits(2,100) = %d, want 8", got)
	}
}

// TestPaperWidthOverflows demonstrates why RequiredBits adds the extra bit:
// with the paper's 8-bit width and c1=2, m=128, a perfect match overflows.
func TestPaperWidthOverflows(t *testing.T) {
	const s = 8
	par := Params{S: s, Match: 2, Mismatch: 1, Gap: 1}
	sc := NewScratch[uint32](s)
	diag := NewNum[uint32](s)
	diag.SetAll(254) // score after 127 consecutive matches
	up := NewNum[uint32](s)
	left := NewNum[uint32](s)
	dst := NewNum[uint32](s)
	SWCell(dst, up, left, diag, 0 /* all match */, par, sc)
	if dst.Get(0) == 256 {
		t.Fatal("impossible: 256 cannot be represented in 8 bits")
	}
	if dst.Get(0) != (254+2)%256 {
		t.Errorf("expected wrap to %d, got %d", (254+2)%256, dst.Get(0))
	}
}

func TestOpCounts(t *testing.T) {
	rows := OpCounts(9, 2)
	byName := map[string]OpCount{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Paper formulas at s=9.
	checks := map[string]int{
		"greaterthan": 5*9 - 2,
		"max_B":       9*9 - 2,
		"add_B":       6*9 - 5,
		"SSub_B":      9*9 - 4,
		"matching_B":  21*9 - 9,
		"SW":          48*9 - 18,
	}
	for name, paper := range checks {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing op count for %s", name)
		}
		if r.Paper != paper {
			t.Errorf("%s: paper formula gives %d, row says %d", name, paper, r.Paper)
		}
		if r.Ours <= 0 || r.Ours > 2*paper {
			t.Errorf("%s: our count %d implausible vs paper %d", name, r.Ours, paper)
		}
	}
	// Our exact counts must track the paper's within the documented deltas.
	if byName["greaterthan"].Ours != byName["greaterthan"].Paper {
		t.Error("greaterthan count should match the paper exactly")
	}
	if byName["max_B"].Ours != byName["max_B"].Paper {
		t.Error("max_B count should match the paper exactly")
	}
}

func BenchmarkSWCell32(b *testing.B) {
	benchSWCell[uint32](b)
}

func BenchmarkSWCell64(b *testing.B) {
	benchSWCell[uint64](b)
}

func benchSWCell[W word.Word](b *testing.B) {
	rng := rand.New(rand.NewPCG(12, 13))
	sc := NewScratch[W](testS)
	up := randNum[W](rng, testS)
	left := randNum[W](rng, testS)
	diag := NewNum[W](testS)
	dst := NewNum[W](testS)
	var e W
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SWCell(dst, up, left, diag, e, paperParams, sc)
	}
	lanes := word.Lanes[W]()
	b.ReportMetric(float64(b.N)*float64(lanes)/b.Elapsed().Seconds()/1e9, "Gcells/s")
}
