package bitslice_test

import (
	"fmt"

	"repro/internal/bitslice"
)

// ExampleSWCell evaluates the Smith-Waterman recurrence for 32 independent
// cells with one pass of word operations — the essence of BPBC.
func ExampleSWCell() {
	par := bitslice.Params{S: 9, Match: 2, Mismatch: 1, Gap: 1}
	up := bitslice.NewNum[uint32](par.S)
	left := bitslice.NewNum[uint32](par.S)
	diag := bitslice.NewNum[uint32](par.S)
	dst := bitslice.NewNum[uint32](par.S)

	// Lane 0: all zeros, matching characters -> 0+2 = 2.
	// Lane 1: diag=5 with a mismatch -> max(0, 5-1) = 4.
	diag.Set(1, 5)
	var e uint32 = 1 << 1 // mismatch only in lane 1

	sc := bitslice.NewScratch[uint32](par.S)
	bitslice.SWCell(dst, up, left, diag, e, par, sc)
	fmt.Println(dst.Get(0), dst.Get(1))
	// Output:
	// 2 4
}

// ExampleMax shows per-lane maximum of two bit-sliced numbers.
func ExampleMax() {
	a := bitslice.NewNum[uint32](4)
	b := bitslice.NewNum[uint32](4)
	a.Set(0, 3)
	b.Set(0, 9)
	a.Set(1, 7)
	b.Set(1, 2)
	dst := bitslice.NewNum[uint32](4)
	bitslice.Max(dst, a, b)
	fmt.Println(dst.Get(0), dst.Get(1))
	// Output:
	// 9 7
}
