//go:build race

package tables

// raceEnabled gates wall-clock performance assertions that the race
// detector's instrumentation overhead invalidates.
const raceEnabled = true
