package tables

import (
	"fmt"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/swa"
)

// RenderFigure1 reproduces the paper's Figure 1: the three swap stages of an
// 8×8 bit-matrix transpose, showing which original bit (row,col) occupies
// each position after every stage.
func RenderFigure1() string {
	// Track provenance: byte i bit j initially holds original bit (i, j).
	// We transpose an identity-tagged matrix by running the real algorithm
	// on 8 parallel "plane" matrices — simpler: simulate positions.
	type tag struct{ r, c int }
	pos := [8][8]tag{}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pos[i][j] = tag{i, j}
		}
	}
	var sb strings.Builder
	dump := func(title string) {
		sb.WriteString(title + "\n")
		for i := 0; i < 8; i++ {
			fmt.Fprintf(&sb, "A[%d] ", i)
			for j := 7; j >= 0; j-- {
				fmt.Fprintf(&sb, " %d,%d", pos[i][j].r, pos[i][j].c)
			}
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Figure 1 — bit transpose of an 8x8 matrix (cell shows original row,col)\n\n")
	dump("initial")
	// The same swap schedule the real Transpose8x8 performs.
	for stage, d := range []int{4, 2, 1} {
		mask := []uint8{0x0F, 0x33, 0x55}[stage]
		for i := 0; i < 8; i++ {
			if i&d != 0 {
				continue
			}
			for p := 0; p < 8; p++ {
				if mask>>uint(p)&1 == 0 {
					continue
				}
				pos[i][p+d], pos[i+d][p] = pos[i+d][p], pos[i][p+d]
			}
		}
		dump(fmt.Sprintf("after stage %d (block size %d)", stage+1, d))
	}
	return sb.String()
}

// VerifyFigure1 checks that the provenance trace of RenderFigure1 agrees
// with the executable Transpose8x8 (used by tests).
func VerifyFigure1() error {
	var a [8]uint8
	for i := range a {
		a[i] = uint8(i*37 + 11)
	}
	orig := a
	bitmat.Transpose8x8(&a, nil)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if a[i]>>uint(j)&1 != orig[j]>>uint(i)&1 {
				return fmt.Errorf("tables: Figure 1 trace inconsistent at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// RenderFigure2 reproduces the paper's Figure 2: the wavefront assignment of
// cells to threads and the values each thread exchanges. Rendered for the
// Table II example (5 threads, 7 columns).
func RenderFigure2() string {
	m, n := len(TableIIExample.X), len(TableIIExample.Y)
	sched := swa.ScheduleTable(m, n)
	var sb strings.Builder
	sb.WriteString("Figure 2 — wavefront computation: thread i computes row i;\n")
	sb.WriteString("cell (i,j) is evaluated at anti-diagonal step t = i+j+1:\n\n")
	sb.WriteString("          " + strings.Join(strings.Split(TableIIExample.Y, ""), "   ") + "\n")
	for i := 0; i < m; i++ {
		fmt.Fprintf(&sb, "thread %d  ", i)
		for j := 0; j < n; j++ {
			fmt.Fprintf(&sb, "t%-3d", sched[i][j])
		}
		fmt.Fprintf(&sb, "  (row %c)\n", TableIIExample.X[i])
	}
	sb.WriteString("\nper step, thread i: reads y[t-i]; computes d[i][t-i] from\n")
	sb.WriteString("  d[i][t-i-1] (own register), d[i-1][t-i] (received from thread i-1),\n")
	sb.WriteString("  d[i-1][t-i-1] (previous received value); sends d[i][t-i] to thread i+1\n")
	sb.WriteString("  via shared memory; keeps R_i = max(R_i, d[i][t-i]).\n")
	sb.WriteString("when a row finishes, R_i merges down the chain; thread m-1 writes the result.\n")
	return sb.String()
}
