// Package tables regenerates every table and figure of the paper, pairing
// the paper's published numbers with this reproduction's measured or
// simulated ones. cmd/swabench and the repository-level benchmarks are thin
// wrappers around these drivers; EXPERIMENTS.md records their output.
package tables

import (
	"fmt"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/bitslice"
	"repro/internal/circuit"
	"repro/internal/dna"
	"repro/internal/stats"
	"repro/internal/swa"
)

// TableIRow is one row of the paper's Table I: the cost of a 32×32 bit
// transpose specialised for s-bit inputs.
type TableIRow struct {
	S         int
	PaperOps  int // the paper's total operation count (garbled rows omitted from comparison)
	OurSwaps  int
	OurCopies int
	OurOps    int
	Match     bool // planner total equals the paper's
}

// paperTableI lists the total-operation column of Table I as published.
var paperTableI = map[int]int{
	32: 560, 16: 272, 8: 180, 7: 177, 6: 168, 5: 164, 4: 140, 3: 131, 2: 127,
}

// TableI computes the transpose-cost table with this repository's
// backward-liveness planner.
func TableI() []TableIRow {
	out := make([]TableIRow, 0, len(paperTableI))
	for _, s := range []int{32, 16, 8, 7, 6, 5, 4, 3, 2} {
		p := bitmat.CachedPlan(32, s, bitmat.ValuesToPlanes)
		c := p.Counts()
		out = append(out, TableIRow{
			S:         s,
			PaperOps:  paperTableI[s],
			OurSwaps:  c.Swaps,
			OurCopies: c.Copies + c.CopyDowns,
			OurOps:    c.BitOps(),
			Match:     c.BitOps() == paperTableI[s],
		})
	}
	return out
}

// RenderTableI renders the comparison.
func RenderTableI() string {
	t := stats.NewTable("Table I — operations for bit transpose of a 32x32 bit matrix (s-bit inputs)",
		"s", "paper ops", "our swaps", "our copies", "our ops", "match")
	for _, r := range TableI() {
		mark := ""
		if r.Match {
			mark = "yes"
		} else if r.OurOps < r.PaperOps {
			mark = "ours better"
		} else {
			mark = fmt.Sprintf("+%d", r.OurOps-r.PaperOps)
		}
		t.AddRow(stats.I(r.S), stats.I(r.PaperOps), stats.I(r.OurSwaps),
			stats.I(r.OurCopies), stats.I(r.OurOps), mark)
	}
	return t.String()
}

// TableIIExample is the fixed example of the paper's Table II.
var TableIIExample = struct {
	X, Y string
}{X: "TACTG", Y: "GAACTGA"}

// TableII computes the scoring matrix of the paper's Table II.
func TableII() [][]int {
	x := dna.MustParse(TableIIExample.X)
	y := dna.MustParse(TableIIExample.Y)
	return swa.Matrix(x, y, swa.PaperScoring)
}

// RenderTableII renders the matrix with sequence labels.
func RenderTableII() string {
	d := TableII()
	var sb strings.Builder
	sb.WriteString("Table II — Smith-Waterman scoring matrix for X=" + TableIIExample.X +
		", Y=" + TableIIExample.Y + " (c1=2, c2=1, gap=1)\n")
	sb.WriteString("      ")
	for _, c := range TableIIExample.Y {
		fmt.Fprintf(&sb, "%3c", c)
	}
	sb.WriteByte('\n')
	for i, row := range d {
		if i == 0 {
			sb.WriteString("   ")
		} else {
			fmt.Fprintf(&sb, "%2c ", TableIIExample.X[i-1])
		}
		for _, v := range row {
			fmt.Fprintf(&sb, "%3d", v)
		}
		sb.WriteByte('\n')
	}
	best, bi, bj := swa.MatrixMax(d)
	fmt.Fprintf(&sb, "maximum score %d at (%d,%d)\n", best, bi, bj)
	return sb.String()
}

// TableIII computes the wavefront schedule of the paper's Table III.
func TableIII() [][]int {
	return swa.ScheduleTable(len(TableIIExample.X), len(TableIIExample.Y))
}

// RenderTableIII renders the schedule.
func RenderTableIII() string {
	tab := TableIII()
	var sb strings.Builder
	sb.WriteString("Table III — anti-diagonal step t at which each cell is computed\n")
	sb.WriteString("    ")
	for _, c := range TableIIExample.Y {
		fmt.Fprintf(&sb, "%3c", c)
	}
	sb.WriteByte('\n')
	for i, row := range tab {
		fmt.Fprintf(&sb, "%2c ", TableIIExample.X[i])
		for _, v := range row {
			fmt.Fprintf(&sb, "%3d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LemmaRow compares one operation-count claim of the paper with this
// repository's exact counts.
type LemmaRow struct {
	Name      string
	Paper     int // count the paper states
	Ours      int // straight-line bit-sliced code count
	GateCount int // folded netlist gates (0 where not applicable)
	Note      string
}

// Lemmas verifies Lemma 1-5 and Theorem 6 for the paper's configuration
// (s = 9 overflow-safe width for c1=2, m=128; ε = 2).
func Lemmas() []LemmaRow {
	const s, eps = 9, 2
	rows := []LemmaRow{}

	full := bitmat.CachedPlan(32, 32, bitmat.Full).Counts().BitOps()
	rows = append(rows, LemmaRow{
		Name: "Lemma 1: 32x32 transpose", Paper: 560, Ours: full,
		Note: "exact match",
	})

	par := bitslice.Params{S: s, Match: 2, Mismatch: 1, Gap: 1}
	gates := map[string]int{}
	if c, err := circuit.SWCellCircuit(par, true); err == nil {
		gates["SW"] = c.Stats().Ops()
	}
	for _, oc := range bitslice.OpCounts(s, eps) {
		note := ""
		switch {
		case oc.Ours == oc.Paper:
			note = "exact match"
		case oc.Ours < oc.Paper:
			note = "ours lower (andnot as 1 op / saturation accounting)"
		default:
			note = "ours higher (paper's add carry-init typo)"
		}
		rows = append(rows, LemmaRow{
			Name: oc.Name, Paper: oc.Paper, Ours: oc.Ours,
			GateCount: gates[oc.Name], Note: note,
		})
	}
	return rows
}

// RenderLemmas renders the lemma table.
func RenderLemmas() string {
	t := stats.NewTable("Operation-count claims (s=9, DNA characters)",
		"claim", "paper", "ours", "netlist gates", "note")
	for _, r := range Lemmas() {
		g := ""
		if r.GateCount > 0 {
			g = stats.I(r.GateCount)
		}
		t.AddRow(r.Name, stats.I(r.Paper), stats.I(r.Ours), g, r.Note)
	}
	return t.String()
}
