package tables

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitslice"
	"repro/internal/bpbc"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/kernels"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/swa"
	"repro/internal/workload"
)

// Engine identifies one of the three implementations Table IV compares.
type Engine string

const (
	Bitwise32  Engine = "bitwise-32"
	Bitwise64  Engine = "bitwise-64"
	Wordwise32 Engine = "wordwise-32"
)

// Engines lists them in the paper's row order.
var Engines = []Engine{Bitwise32, Bitwise64, Wordwise32}

// paperTotals holds the paper's published Table IV "Total" columns in
// milliseconds, and the SWA kernel columns, keyed by engine then n.
var paperCPUTotalMs = map[Engine]map[int]float64{
	Bitwise32:  {1024: 11144.07, 2048: 22225.32, 4096: 45781.57, 8192: 91566.72, 16384: 183129.05, 32768: 363030.58, 65536: 729800.04},
	Bitwise64:  {1024: 5666.71, 2048: 11343.36, 4096: 22838.67, 8192: 45596.74, 16384: 90828.78, 32768: 180865.26, 65536: 357870.14},
	Wordwise32: {1024: 6803.99, 2048: 13590.92, 4096: 27169.32, 8192: 54358.14, 16384: 108680.38, 32768: 217621.17, 65536: 435637.82},
}

var paperGPUTotalMs = map[Engine]map[int]float64{
	Bitwise32:  {1024: 12.66, 2048: 23.52, 4096: 43.59, 8192: 86.94, 16384: 177.21, 32768: 351.27, 65536: 695.42},
	Bitwise64:  {1024: 19.28, 2048: 36.51, 4096: 67.97, 8192: 132.64, 16384: 264.14, 32768: 528.46, 65536: 1054.04},
	Wordwise32: {1024: 36.51, 2048: 63.20, 4096: 131.91, 8192: 243.32, 16384: 525.07, 32768: 992.78, 65536: 2176.96},
}

// PaperCPUTotal returns the paper's published CPU total for an engine/n.
func PaperCPUTotal(e Engine, n int) time.Duration {
	return time.Duration(paperCPUTotalMs[e][n] * float64(time.Millisecond))
}

// PaperGPUTotal returns the paper's published GPU total for an engine/n.
func PaperGPUTotal(e Engine, n int) time.Duration {
	return time.Duration(paperGPUTotalMs[e][n] * float64(time.Millisecond))
}

// TableIVRow is one (engine, n) cell group of Table IV: measured CPU stage
// times (rescaled to the paper's 32K pairs) and simulated GPU stage times.
type TableIVRow struct {
	Engine Engine
	N      int
	// CPU stages, rescaled to the paper's pair count. Wordwise has only SWA.
	CPU bpbc.Timing
	// CPUMeasuredN records the n the measurement actually ran at (smaller
	// presets extrapolate the largest measured n linearly).
	CPUMeasuredN int
	// GPU stages at full paper scale, from the simulator cost model.
	GPU pipeline.StageTimes
	// Paper's published totals, for side-by-side comparison.
	PaperCPU, PaperGPU time.Duration
}

// TableIVResult is the full reproduction of Table IV.
type TableIVResult struct {
	Preset workload.Spec
	NList  []int
	Rows   []TableIVRow
}

// BuildTableIV measures the CPU engines on the preset workload and runs the
// GPU simulator extrapolation, producing a row per engine per n of the
// paper's sweep. All times are normalised to the paper's 32K-pair workload
// so they are directly comparable with the published table. The context is
// checked between measurements, so Ctrl-C interrupts long CPU sweeps.
func BuildTableIV(ctx context.Context, preset workload.Spec, progress func(string)) (*TableIVResult, error) {
	if progress == nil {
		progress = func(string) {}
	}
	target := workload.Paper
	res := &TableIVResult{Preset: preset, NList: target.NList}

	// --- CPU measurements at the preset scale. ---
	type cpuKey struct {
		e Engine
		n int
	}
	cpuMeasured := map[cpuKey]bpbc.Timing{}
	for _, e := range Engines {
		// Warm-up run: populates transpose-plan caches and page-faults the
		// working set so the first timed row is not inflated.
		if _, err := runCPU(e, preset.Generate(preset.NList[0])[:min(preset.Pairs, 64)]); err != nil {
			return nil, err
		}
		for _, n := range preset.NList {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			progress(fmt.Sprintf("CPU %s n=%d (%d pairs)", e, n, preset.Pairs))
			pairs := preset.Generate(n)
			t, err := runCPU(e, pairs)
			if err != nil {
				return nil, err
			}
			cpuMeasured[cpuKey{e, n}] = t
		}
	}
	maxMeasuredN := preset.NList[len(preset.NList)-1]

	// --- GPU extrapolation bases (two small functional runs per engine). ---
	gpuBases := map[Engine]*gpuBase{}
	for _, e := range Engines {
		progress(fmt.Sprintf("GPU simulator calibration %s", e))
		b, err := measureGPUBase(ctx, e, preset.M)
		if err != nil {
			return nil, err
		}
		gpuBases[e] = b
	}

	for _, e := range Engines {
		for _, n := range target.NList {
			row := TableIVRow{
				Engine:   e,
				N:        n,
				PaperCPU: PaperCPUTotal(e, n),
				PaperGPU: PaperGPUTotal(e, n),
			}
			// CPU: use the measurement at this n when available, else
			// extrapolate the largest measured n (every stage is linear
			// in n for n >> m).
			mn := n
			t, ok := cpuMeasured[cpuKey{e, mn}]
			if !ok {
				mn = maxMeasuredN
				base := cpuMeasured[cpuKey{e, mn}]
				t = bpbc.Timing{
					W2B: scaleByN(base.W2B, mn, n, preset.M),
					SWA: time.Duration(float64(base.SWA) * float64(n) / float64(mn)),
					B2W: base.B2W,
				}
			}
			row.CPUMeasuredN = mn
			row.CPU = bpbc.Timing{
				W2B: perfmodel.Scale(t.W2B, preset.Pairs, target.Pairs),
				SWA: perfmodel.Scale(t.SWA, preset.Pairs, target.Pairs),
				B2W: perfmodel.Scale(t.B2W, preset.Pairs, target.Pairs),
			}
			// GPU: simulator-extrapolated at full paper scale.
			row.GPU = gpuBases[e].stagesAt(n, target.Pairs, preset.M)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// scaleByN rescales the W2B stage, whose work is proportional to m+n.
func scaleByN(d time.Duration, fromN, toN, m int) time.Duration {
	return time.Duration(float64(d) * float64(toN+m) / float64(fromN+m))
}

func runCPU(e Engine, pairs []dna.Pair) (bpbc.Timing, error) {
	opt := bpbc.Options{Scoring: swa.PaperScoring}
	var r *bpbc.Result
	var err error
	switch e {
	case Bitwise32:
		r, err = bpbc.BulkScores[uint32](pairs, opt)
	case Bitwise64:
		r, err = bpbc.BulkScores[uint64](pairs, opt)
	case Wordwise32:
		r, err = bpbc.WordwiseScores(pairs, opt)
	default:
		return bpbc.Timing{}, fmt.Errorf("tables: unknown engine %q", e)
	}
	if err != nil {
		return bpbc.Timing{}, err
	}
	return r.Timing, nil
}

// gpuBase holds two functional simulator runs at small n from which every
// per-block kernel stat extrapolates exactly (stats are affine in n and
// proportional in the block count; see the pipeline linearity tests).
type gpuBase struct {
	engine   Engine
	lanes    int
	nA, nB   int
	a, b     gpuStats
	dev      perfmodel.DeviceSpec
	pcie     perfmodel.PCIeLink
	basePair int // pairs used in the measurement runs (one group)
}

type gpuStats struct {
	w2b, swa, b2w cudasim.LaunchStats
}

func measureGPUBase(ctx context.Context, e Engine, m int) (*gpuBase, error) {
	const nA, nB = 256, 512
	lanes := 32
	if e == Bitwise64 {
		lanes = 64
	}
	basePairs := lanes // exactly one lane group
	if e == Wordwise32 {
		basePairs = 32 // 32 blocks, one per pair
	}
	run := func(n int) (gpuStats, error) {
		pairs := workload.Spec{Pairs: basePairs, M: m, Seed: 99}.Generate(n)
		var r *pipeline.Result
		var err error
		switch e {
		case Bitwise32:
			r, err = pipeline.RunBitwise[uint32](ctx, pairs, pipeline.Config{})
		case Bitwise64:
			r, err = pipeline.RunBitwise[uint64](ctx, pairs, pipeline.Config{})
		case Wordwise32:
			r, err = pipeline.RunWordwise(ctx, pairs, pipeline.Config{})
		default:
			return gpuStats{}, fmt.Errorf("tables: unknown engine %q", e)
		}
		if err != nil {
			return gpuStats{}, err
		}
		return gpuStats{w2b: r.W2BStats, swa: r.SWAStats, b2w: r.B2WStats}, nil
	}
	a, err := run(nA)
	if err != nil {
		return nil, err
	}
	b, err := run(nB)
	if err != nil {
		return nil, err
	}
	return &gpuBase{
		engine: e, lanes: lanes, nA: nA, nB: nB, a: a, b: b,
		dev: perfmodel.TitanX, pcie: perfmodel.PaperPCIe, basePair: basePairs,
	}, nil
}

// lerpStats extrapolates one launch's stats to text length n (affine in n)
// and scales to `factor` times the measured block count.
func lerpStats(a, b cudasim.LaunchStats, nA, nB, n int, factor int64) cudasim.LaunchStats {
	li := func(x, y int64) int64 {
		return (x + (y-x)*int64(n-nA)/int64(nB-nA)) * factor
	}
	return cudasim.LaunchStats{
		ALUOps:              li(a.ALUOps, b.ALUOps),
		GlobalLoadBytes:     li(a.GlobalLoadBytes, b.GlobalLoadBytes),
		GlobalStoreBytes:    li(a.GlobalStoreBytes, b.GlobalStoreBytes),
		GlobalTransactions:  li(a.GlobalTransactions, b.GlobalTransactions),
		SharedCycles:        li(a.SharedCycles, b.SharedCycles),
		BankConflictReplays: li(a.BankConflictReplays, b.BankConflictReplays),
		Barriers:            li(a.Barriers, b.Barriers),
		Blocks:              int(li(int64(a.Blocks), int64(b.Blocks))),
		ThreadsPerBlock:     a.ThreadsPerBlock,
	}
}

// stagesAt produces the simulated GPU stage times for the paper-scale
// workload of `pairs` pairs at text length n.
func (g *gpuBase) stagesAt(n, pairs, m int) pipeline.StageTimes {
	factor := int64(pairs / g.basePair)
	var st pipeline.StageTimes
	st.H2G = g.pcie.Transfer(int64(pairs) * int64(m+n))
	st.G2H = g.pcie.Transfer(int64(pairs) * 4)
	swaStats := lerpStats(g.a.swa, g.b.swa, g.nA, g.nB, n, factor)
	if g.engine == Wordwise32 {
		st.SWA = swaStats.Cost(false, kernels.WordwiseRegs).Time(g.dev)
	} else {
		s := bitslice.RequiredBits(uint(swa.PaperScoring.Match), m)
		st.SWA = swaStats.Cost(true, kernels.SWARegs(s, g.lanes)).Time(g.dev)
		regsT := kernels.TransposeRegs(g.lanes)
		w2b := lerpStats(g.a.w2b, g.b.w2b, g.nA, g.nB, n, factor)
		b2w := lerpStats(g.a.b2w, g.b.b2w, g.nA, g.nB, n, factor)
		st.W2B = w2b.Cost(true, regsT).Time(g.dev)
		st.B2W = b2w.Cost(true, regsT).Time(g.dev)
	}
	return st
}

// RenderTableIV renders the reproduction beside the paper's totals.
func RenderTableIV(r *TableIVResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Table IV — running time (ms) for the SWA, normalised to 32K pairs (CPU measured on preset %q, GPU simulated)", r.Preset.Name),
		"engine", "n",
		"cpu W2B", "cpu SWA", "cpu B2W", "cpu Total", "paper cpu",
		"H2G", "gpu W2B", "gpu SWA", "gpu B2W", "G2H", "gpu Total", "paper gpu")
	for _, row := range r.Rows {
		t.AddRow(string(row.Engine), stats.I(row.N),
			stats.Ms(row.CPU.W2B), stats.Ms(row.CPU.SWA), stats.Ms(row.CPU.B2W),
			stats.Ms(row.CPU.Total()), stats.Ms(row.PaperCPU),
			stats.Ms(row.GPU.H2G), stats.Ms(row.GPU.W2B), stats.Ms(row.GPU.SWA),
			stats.Ms(row.GPU.B2W), stats.Ms(row.GPU.G2H),
			stats.Ms(row.GPU.Total()), stats.Ms(row.PaperGPU))
	}
	return t.String()
}

// TableVRow is one row of the paper's Table V: throughput and speedup with
// the best word size per platform (CPU bitwise-64 vs GPU bitwise-32).
type TableVRow struct {
	N                   int
	CPUGCUPS, GPUGCUPS  float64
	Speedup             float64
	PaperCPUGCUPS       float64
	PaperSpeedup        float64
	PaperImpliedGCUPS   float64 // paper CPU GCUPS × paper speedup
	PaperPrintedGPUGCUP float64 // the (inconsistent) printed GPU column
}

var paperTableV = map[int][3]float64{ // n -> {cpu GCUPS, gpu GCUPS printed, speedup}
	1024:  {0.76, 1877.40, 447.6},
	2048:  {0.76, 2022.85, 482.3},
	4096:  {0.75, 2197.58, 523.9},
	8192:  {0.75, 2199.75, 524.5},
	16384: {0.76, 2149.79, 512.5},
	32768: {0.76, 2159.60, 514.9},
	65536: {0.77, 2158.43, 514.6},
}

// BuildTableV derives Table V from a Table IV result.
func BuildTableV(iv *TableIVResult) []TableVRow {
	target := workload.Paper
	byKey := map[Engine]map[int]TableIVRow{}
	for _, r := range iv.Rows {
		if byKey[r.Engine] == nil {
			byKey[r.Engine] = map[int]TableIVRow{}
		}
		byKey[r.Engine][r.N] = r
	}
	var out []TableVRow
	for _, n := range iv.NList {
		cpu := byKey[Bitwise64][n]
		gpu := byKey[Bitwise32][n]
		p := paperTableV[n]
		row := TableVRow{
			N:                   n,
			CPUGCUPS:            perfmodel.GCUPS(target.Pairs, target.M, n, cpu.CPU.Total()),
			GPUGCUPS:            perfmodel.GCUPS(target.Pairs, target.M, n, gpu.GPU.Total()),
			PaperCPUGCUPS:       p[0],
			PaperPrintedGPUGCUP: p[1],
			PaperSpeedup:        p[2],
			PaperImpliedGCUPS:   p[0] * p[2],
		}
		if gpu.GPU.Total() > 0 {
			row.Speedup = float64(cpu.CPU.Total()) / float64(gpu.GPU.Total())
		}
		out = append(out, row)
	}
	return out
}

// RenderTableV renders the throughput/speedup comparison.
func RenderTableV(rows []TableVRow) string {
	t := stats.NewTable(
		"Table V — GCUPS and speedup (CPU bitwise-64 vs GPU bitwise-32, best word sizes)",
		"n", "cpu GCUPS", "paper cpu", "gpu GCUPS", "paper implied", "paper printed", "speedup", "paper speedup")
	for _, r := range rows {
		t.AddRow(stats.I(r.N),
			stats.F2(r.CPUGCUPS), stats.F2(r.PaperCPUGCUPS),
			stats.F1(r.GPUGCUPS), stats.F1(r.PaperImpliedGCUPS), stats.F1(r.PaperPrintedGPUGCUP),
			stats.F1(r.Speedup), stats.F1(r.PaperSpeedup))
	}
	return t.String() +
		"note: the paper's printed GPU GCUPS column is ~5.5x its own Total-column arithmetic\n" +
		"(cells/total = paper cpu GCUPS x paper speedup); both are shown. See EXPERIMENTS.md.\n"
}
