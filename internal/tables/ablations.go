package tables

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bpbc"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationRow is one design-choice measurement.
type AblationRow struct {
	Name   string
	Config string
	Value  string
	Note   string
}

// BuildAblations runs the design-choice experiments of DESIGN.md §5 at the
// given preset scale and returns a comparison table.
func BuildAblations(ctx context.Context, preset workload.Spec) ([]AblationRow, error) {
	var rows []AblationRow
	n := preset.NList[0]
	pairs := preset.Generate(n)

	// Lane width: per-lane CPU throughput (the paper's Table IV CPU story).
	t32, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{})
	if err != nil {
		return nil, err
	}
	t64, err := bpbc.BulkScores[uint64](pairs, bpbc.Options{})
	if err != nil {
		return nil, err
	}
	g32 := perfmodel.GCUPS(preset.Pairs, preset.M, n, t32.Timing.Total())
	g64 := perfmodel.GCUPS(preset.Pairs, preset.M, n, t64.Timing.Total())
	rows = append(rows,
		AblationRow{"lane width", "32 lanes", fmt.Sprintf("%.2f GCUPS", g32), ""},
		AblationRow{"lane width", "64 lanes", fmt.Sprintf("%.2f GCUPS", g64),
			fmt.Sprintf("%.2fx", g64/g32)},
	)

	// Score width: paper's 8-bit (overflowing) vs safe 9-bit.
	s8, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{SBits: 8})
	if err != nil {
		return nil, err
	}
	s9, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{SBits: 9})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{"score width", "s=8 (paper, can wrap)", stats.Ms(s8.Timing.SWA) + " ms", ""},
		AblationRow{"score width", "s=9 (overflow-safe)", stats.Ms(s9.Timing.SWA) + " ms",
			fmt.Sprintf("+%.0f%%", 100*(float64(s9.Timing.SWA)/float64(s8.Timing.SWA)-1))},
	)

	// Multi-core bulk (beyond paper).
	for _, w := range []int{1, 4} {
		start := time.Now()
		if _, err := bpbc.BulkScores[uint64](pairs, bpbc.Options{Workers: w}); err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			"CPU workers", fmt.Sprintf("workers=%d", w),
			fmt.Sprintf("%.2f GCUPS", perfmodel.GCUPS(preset.Pairs, preset.M, n, time.Since(start))),
			"beyond-paper"})
	}

	// Shuffle vs shared-memory handoff on the simulated GPU (§V).
	simPairs := workload.Spec{Pairs: 32, M: preset.M, Seed: 77}.Generate(min(n, 512))
	plain, err := pipeline.RunBitwise[uint32](ctx, simPairs, pipeline.Config{})
	if err != nil {
		return nil, err
	}
	shuf, err := pipeline.RunBitwise[uint32](ctx, simPairs, pipeline.Config{UseShuffle: true})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{"GPU handoff", "shared memory", fmt.Sprintf("%d shared cycles", plain.SWAStats.SharedCycles), ""},
		AblationRow{"GPU handoff", "warp shuffle (§V)", fmt.Sprintf("%d shared cycles", shuf.SWAStats.SharedCycles),
			fmt.Sprintf("%.1fx less shared traffic", float64(plain.SWAStats.SharedCycles)/float64(shuf.SWAStats.SharedCycles))},
	)
	return rows, nil
}

// RenderAblations renders the ablation comparison.
func RenderAblations(rows []AblationRow) string {
	t := stats.NewTable("Ablations (DESIGN.md §5)", "experiment", "configuration", "result", "note")
	for _, r := range rows {
		t.AddRow(r.Name, r.Config, r.Value, r.Note)
	}
	return t.String()
}
