package tables

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestTableIRows(t *testing.T) {
	rows := TableI()
	if len(rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(rows))
	}
	matches := 0
	for _, r := range rows {
		if r.OurOps <= 0 || r.OurOps > 560 {
			t.Errorf("s=%d: our ops %d out of range", r.S, r.OurOps)
		}
		if r.Match {
			matches++
		}
		// Lemma 1 row.
		if r.S == 32 && (r.OurOps != 560 || !r.Match) {
			t.Errorf("s=32 should match exactly, got %+v", r)
		}
		if r.S == 2 && r.OurOps != 127 {
			t.Errorf("s=2 should cost 127 ops, got %d", r.OurOps)
		}
	}
	if matches < 5 {
		t.Errorf("planner matches paper on only %d rows, expected >= 5", matches)
	}
	out := RenderTableI()
	if !strings.Contains(out, "560") || !strings.Contains(out, "127") {
		t.Error("rendered Table I missing landmark values")
	}
}

func TestTableIIValues(t *testing.T) {
	d := TableII()
	if d[5][6] != 8 {
		t.Errorf("d[5][6] = %d, want 8", d[5][6])
	}
	out := RenderTableII()
	if !strings.Contains(out, "maximum score 8") {
		t.Errorf("rendered Table II missing max score:\n%s", out)
	}
}

func TestTableIIIValues(t *testing.T) {
	tab := TableIII()
	if tab[0][0] != 1 || tab[4][6] != 11 {
		t.Errorf("schedule corners wrong: %d, %d", tab[0][0], tab[4][6])
	}
	if !strings.Contains(RenderTableIII(), "11") {
		t.Error("rendered Table III missing final step")
	}
}

func TestLemmas(t *testing.T) {
	rows := Lemmas()
	if len(rows) != 7 {
		t.Fatalf("expected 7 lemma rows, got %d", len(rows))
	}
	if rows[0].Paper != 560 || rows[0].Ours != 560 {
		t.Errorf("Lemma 1 row wrong: %+v", rows[0])
	}
	sawSW := false
	for _, r := range rows {
		if r.Name == "SW" {
			sawSW = true
			if r.GateCount <= 0 {
				t.Error("SW row should carry a netlist gate count")
			}
			if r.Paper != 48*9-18 {
				t.Errorf("SW paper count = %d", r.Paper)
			}
		}
	}
	if !sawSW {
		t.Error("missing SW row")
	}
	if !strings.Contains(RenderLemmas(), "Lemma 1") {
		t.Error("render missing Lemma 1")
	}
}

func TestFigure1(t *testing.T) {
	if err := VerifyFigure1(); err != nil {
		t.Fatal(err)
	}
	out := RenderFigure1()
	if !strings.Contains(out, "after stage 3") {
		t.Error("Figure 1 missing final stage")
	}
	// Final stage must show the transposed provenance: A[0]'s leftmost
	// (bit 7) cell holds original (7,0).
	if !strings.Contains(out, "A[0]  7,0 6,0 5,0 4,0 3,0 2,0 1,0 0,0") {
		t.Errorf("Figure 1 final state wrong:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	out := RenderFigure2()
	if !strings.Contains(out, "thread 4") || !strings.Contains(out, "t11") {
		t.Errorf("Figure 2 missing wavefront cells:\n%s", out)
	}
}

// TestBuildTableIVUnit runs the full Table IV/V machinery on the tiny unit
// preset: every cell must be populated and the headline orderings must hold.
func TestBuildTableIVUnit(t *testing.T) {
	iv, err := BuildTableIV(context.Background(), workload.Unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(iv.Rows) != 3*len(workload.Paper.NList) {
		t.Fatalf("expected %d rows, got %d", 3*len(workload.Paper.NList), len(iv.Rows))
	}
	byKey := map[Engine]map[int]TableIVRow{}
	for _, r := range iv.Rows {
		if byKey[r.Engine] == nil {
			byKey[r.Engine] = map[int]TableIVRow{}
		}
		byKey[r.Engine][r.N] = r
		if r.CPU.SWA <= 0 {
			t.Errorf("%s n=%d: CPU SWA not measured", r.Engine, r.N)
		}
		if r.GPU.SWA <= 0 || r.GPU.H2G <= 0 {
			t.Errorf("%s n=%d: GPU stages missing", r.Engine, r.N)
		}
		if r.PaperCPU <= 0 || r.PaperGPU <= 0 {
			t.Errorf("%s n=%d: paper references missing", r.Engine, r.N)
		}
		if r.Engine == Wordwise32 && (r.CPU.W2B != 0 || r.GPU.W2B != 0) {
			t.Errorf("wordwise should have no transpose stages")
		}
	}
	// Shape check 1: GPU total beats CPU total everywhere (the paper's
	// central claim).
	for _, e := range Engines {
		for _, n := range iv.NList {
			r := byKey[e][n]
			if r.GPU.Total() >= r.CPU.Total() {
				t.Errorf("%s n=%d: GPU (%v) not faster than CPU (%v)",
					e, n, r.GPU.Total(), r.CPU.Total())
			}
		}
	}
	// Shape check 2: on the GPU, bitwise-32 beats bitwise-64 beats wordwise
	// (paper's Table IV ordering).
	for _, n := range iv.NList {
		b32 := byKey[Bitwise32][n].GPU.Total()
		b64 := byKey[Bitwise64][n].GPU.Total()
		ww := byKey[Wordwise32][n].GPU.Total()
		if !(b32 < b64 && b64 < ww) {
			t.Errorf("n=%d: GPU ordering b32=%v b64=%v ww=%v, want b32<b64<ww",
				n, b32, b64, ww)
		}
	}
	// Shape check 3: on the CPU, bitwise-64 is the fastest engine
	// (paper: ~20%% faster than wordwise; bitwise-32 slowest). Skipped
	// under the race detector, whose per-access instrumentation distorts
	// the engines' relative throughput.
	for _, n := range iv.NList {
		if raceEnabled {
			break
		}
		b64 := byKey[Bitwise64][n].CPU.Total()
		b32 := byKey[Bitwise32][n].CPU.Total()
		ww := byKey[Wordwise32][n].CPU.Total()
		if b64 >= ww || b64 >= b32 {
			t.Errorf("n=%d: CPU ordering b32=%v b64=%v ww=%v, want b64 fastest",
				n, b32, b64, ww)
		}
	}

	v := BuildTableV(iv)
	if len(v) != len(iv.NList) {
		t.Fatalf("Table V rows = %d", len(v))
	}
	for _, r := range v {
		if r.Speedup < 50 {
			t.Errorf("n=%d: speedup %.1f implausibly low", r.N, r.Speedup)
		}
		if r.GPUGCUPS <= r.CPUGCUPS {
			t.Errorf("n=%d: GPU GCUPS not above CPU", r.N)
		}
		if r.PaperSpeedup < 400 || r.PaperSpeedup > 530 {
			t.Errorf("paper speedup reference wrong: %v", r.PaperSpeedup)
		}
	}
	if !strings.Contains(RenderTableIV(iv), "bitwise-32") {
		t.Error("Table IV render broken")
	}
	if !strings.Contains(RenderTableV(v), "speedup") {
		t.Error("Table V render broken")
	}
}

func TestPaperReferenceLookups(t *testing.T) {
	if PaperCPUTotal(Bitwise32, 1024) != time.Duration(11144.07*float64(time.Millisecond)) {
		t.Error("paper CPU total lookup wrong")
	}
	if PaperGPUTotal(Bitwise32, 65536) != time.Duration(695.42*float64(time.Millisecond)) {
		t.Error("paper GPU total lookup wrong")
	}
}

func TestBuildAblations(t *testing.T) {
	rows, err := BuildAblations(context.Background(), workload.Unit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("expected >= 8 ablation rows, got %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Value == "" {
			t.Errorf("row %q/%q has empty value", r.Name, r.Config)
		}
	}
	for _, want := range []string{"lane width", "score width", "CPU workers", "GPU handoff"} {
		if !names[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
	if !strings.Contains(RenderAblations(rows), "warp shuffle") {
		t.Error("render missing shuffle row")
	}
}
